(* Dedicated ivar suite: multiple waiters resumed together, read after
   fill, poison of waiting and future readers, double-resolution errors,
   and peek on poisoned ivars. Complements the smoke tests in
   test_sync.ml. *)

open Desim

exception Boom

let test_all_waiters_resumed_with_value () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let got = ref [] in
  for i = 0 to 3 do
    Engine.spawn eng (fun () ->
        let v = Ivar.read iv in
        got := (i, v, Engine.now eng) :: !got)
  done;
  Engine.spawn eng (fun () ->
      Engine.wait 2.5;
      Ivar.fill iv 7);
  Engine.run eng;
  Alcotest.(check int) "all four resumed" 4 (List.length !got);
  List.iter
    (fun (_, v, t) ->
      Alcotest.(check int) "value" 7 v;
      Alcotest.(check (float 1e-9)) "resumed at fill time" 2.5 t)
    !got

let test_read_after_fill_is_immediate () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  Ivar.fill iv "ready";
  let t_read = ref nan in
  Engine.spawn eng (fun () ->
      Engine.wait 4.;
      let (_ : string) = Ivar.read iv in
      t_read := Engine.now eng);
  Engine.run eng;
  (* a filled ivar must not block the reader *)
  Alcotest.(check (float 1e-9)) "no blocking" 4. !t_read

let test_poison_rejects_waiting_and_future_readers () =
  let eng = Engine.create () in
  let iv : unit Ivar.t = Ivar.create () in
  let caught = ref 0 in
  Engine.spawn eng (fun () ->
      try Ivar.read iv with Boom -> incr caught);
  Engine.spawn eng (fun () ->
      Engine.wait 1.;
      Ivar.poison iv Boom);
  Engine.spawn eng (fun () ->
      Engine.wait 2.;
      (* reader arriving after the poison *)
      try Ivar.read iv with Boom -> incr caught);
  Engine.run eng;
  Alcotest.(check int) "both readers rejected" 2 !caught

let test_poison_then_fill_rejected () =
  let iv : int Ivar.t = Ivar.create () in
  Ivar.poison iv Boom;
  Alcotest.check_raises "fill after poison"
    (Invalid_argument "Ivar.fill: already resolved") (fun () -> Ivar.fill iv 1)

let test_double_poison_rejected () =
  let iv : int Ivar.t = Ivar.create () in
  Ivar.poison iv Boom;
  Alcotest.check_raises "double poison"
    (Invalid_argument "Ivar.poison: already resolved") (fun () ->
      Ivar.poison iv Boom)

let test_peek_and_is_filled_on_poisoned () =
  let iv : int Ivar.t = Ivar.create () in
  Ivar.poison iv Boom;
  Alcotest.(check (option int)) "peek sees no value" None (Ivar.peek iv);
  Alcotest.(check bool) "not filled" false (Ivar.is_filled iv)

let test_fill_from_sibling_process () =
  (* the commit-protocol shape: a cohort fills the ivar a coordinator is
     reading, both being simulation processes *)
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let order = ref [] in
  Engine.spawn eng (fun () ->
      order := "wait" :: !order;
      let v = Ivar.read iv in
      order := Printf.sprintf "got %d" v :: !order);
  Engine.spawn eng (fun () ->
      Engine.wait 1.;
      order := "fill" :: !order;
      Ivar.fill iv 99);
  Engine.run eng;
  Alcotest.(check (list string))
    "reader resumes after the fill"
    [ "wait"; "fill"; "got 99" ]
    (List.rev !order)

let suite =
  [
    Alcotest.test_case "all waiters resumed with the value" `Quick
      test_all_waiters_resumed_with_value;
    Alcotest.test_case "read after fill is immediate" `Quick
      test_read_after_fill_is_immediate;
    Alcotest.test_case "poison rejects waiting and future readers" `Quick
      test_poison_rejects_waiting_and_future_readers;
    Alcotest.test_case "fill after poison rejected" `Quick
      test_poison_then_fill_rejected;
    Alcotest.test_case "double poison rejected" `Quick
      test_double_poison_rejected;
    Alcotest.test_case "peek on poisoned ivar" `Quick
      test_peek_and_is_filled_on_poisoned;
    Alcotest.test_case "fill from sibling process" `Quick
      test_fill_from_sibling_process;
  ]
