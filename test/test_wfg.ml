open Ddbm_cc
open Ddbm_model

let mk_cycle_graph h txns edges =
  let g = Wfg.create () in
  List.iter
    (fun (w, ho) ->
      Wfg.add_edge g ~waiter:(List.nth txns w) ~holder:(List.nth txns ho))
    edges;
  ignore h;
  g

let test_two_cycle () =
  let h = Cc_harness.make () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let g = mk_cycle_graph h [ t0; t1 ] [ (0, 1); (1, 0) ] in
  match Wfg.find_cycle_through g t0 ~removed:(Hashtbl.create 4) with
  | Some cycle ->
      Alcotest.(check int) "cycle length" 2 (List.length cycle);
      let victim = Wfg.youngest cycle in
      Alcotest.(check int) "youngest is t1" 1 victim.Txn.tid
  | None -> Alcotest.fail "cycle not found"

let test_no_cycle () =
  let h = Cc_harness.make () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let t2 = Cc_harness.txn h ~tid:2 ~time:2. () in
  let g = mk_cycle_graph h [ t0; t1; t2 ] [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "acyclic" true
    (Wfg.find_cycle_through g t0 ~removed:(Hashtbl.create 4) = None)

let test_three_cycle_via_middle () =
  let h = Cc_harness.make () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let t2 = Cc_harness.txn h ~tid:2 ~time:2. () in
  let g = mk_cycle_graph h [ t0; t1; t2 ] [ (0, 1); (1, 2); (2, 0) ] in
  (match Wfg.find_cycle_through g t1 ~removed:(Hashtbl.create 4) with
  | Some cycle -> Alcotest.(check int) "3-cycle" 3 (List.length cycle)
  | None -> Alcotest.fail "cycle not found");
  let victims = Wfg.break_all_cycles g in
  Alcotest.(check int) "one victim" 1 (List.length victims);
  Alcotest.(check int) "victim is youngest (t2)" 2 (List.hd victims).Txn.tid

let test_doomed_breaks_cycle () =
  let h = Cc_harness.make () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  t1.Txn.doomed <- true;
  let g = mk_cycle_graph h [ t0; t1 ] [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "doomed vertex breaks cycle" true
    (Wfg.find_cycle_through g t0 ~removed:(Hashtbl.create 4) = None);
  Alcotest.(check int) "no victims" 0 (List.length (Wfg.break_all_cycles g))

let test_self_edges_ignored () =
  let h = Cc_harness.make () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let g = Wfg.create () in
  Wfg.add_edge g ~waiter:t0 ~holder:t0;
  Alcotest.(check bool) "self edge dropped" true
    (Wfg.find_cycle_through g t0 ~removed:(Hashtbl.create 4) = None)

let test_two_disjoint_cycles () =
  let h = Cc_harness.make () in
  let txns = List.init 4 (fun i -> Cc_harness.txn h ~tid:i ~time:(float_of_int i) ()) in
  let g = mk_cycle_graph h txns [ (0, 1); (1, 0); (2, 3); (3, 2) ] in
  let victims = Wfg.break_all_cycles g in
  Alcotest.(check int) "two victims" 2 (List.length victims);
  let tids = List.sort Int.compare (List.map (fun (t : Txn.t) -> t.Txn.tid) victims) in
  Alcotest.(check (list int)) "youngest of each" [ 1; 3 ] tids

let test_of_edges () =
  let h = Cc_harness.make () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let g =
    Wfg.of_edges
      [
        { Cc_intf.waiter = t0; holder = t1 };
        { Cc_intf.waiter = t1; holder = t0 };
      ]
  in
  Alcotest.(check bool) "cycle from edge list" true
    (Wfg.find_cycle_through g t0 ~removed:(Hashtbl.create 4) <> None)

let prop_break_all_yields_acyclic =
  QCheck.Test.make ~name:"break_all_cycles leaves graph acyclic" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 30) (pair (int_range 0 9) (int_range 0 9)))
    (fun edge_specs ->
      let h = Cc_harness.make () in
      let txns =
        Array.init 10 (fun i -> Cc_harness.txn h ~tid:i ~time:(float_of_int i) ())
      in
      let g = Wfg.create () in
      List.iter
        (fun (w, ho) -> Wfg.add_edge g ~waiter:txns.(w) ~holder:txns.(ho))
        edge_specs;
      let victims = Wfg.break_all_cycles g in
      (* mark victims doomed and verify no cycle remains *)
      List.iter (fun (v : Txn.t) -> v.Txn.doomed <- true) victims;
      Array.for_all
        (fun t ->
          Wfg.find_cycle_through g t ~removed:(Hashtbl.create 4) = None)
        txns)

let suite =
  [
    Alcotest.test_case "2-cycle + youngest victim" `Quick test_two_cycle;
    Alcotest.test_case "no cycle" `Quick test_no_cycle;
    Alcotest.test_case "3-cycle via middle" `Quick test_three_cycle_via_middle;
    Alcotest.test_case "doomed breaks cycle" `Quick test_doomed_breaks_cycle;
    Alcotest.test_case "self edges ignored" `Quick test_self_edges_ignored;
    Alcotest.test_case "disjoint cycles" `Quick test_two_disjoint_cycles;
    Alcotest.test_case "of_edges" `Quick test_of_edges;
    QCheck_alcotest.to_alcotest prop_break_all_yields_acyclic;
  ]
