open Desim

let test_emit_and_read () =
  let eng = Engine.create () in
  let tr = Trace.create eng ~capacity:10 in
  Engine.spawn eng (fun () ->
      Trace.emit tr ~tag:"a" "first";
      Engine.wait 1.5;
      Trace.emit tr ~tag:"b" "second");
  Engine.run eng;
  match Trace.events tr with
  | [ e1; e2 ] ->
      Alcotest.(check string) "tag" "a" e1.Trace.tag;
      Alcotest.(check (float 1e-9)) "time 0" 0. e1.Trace.time;
      Alcotest.(check (float 1e-9)) "time 1.5" 1.5 e2.Trace.time;
      Alcotest.(check string) "message" "second" e2.Trace.message
  | evs -> Alcotest.fail (Printf.sprintf "expected 2 events, got %d" (List.length evs))

let test_ring_bounded () =
  let eng = Engine.create () in
  let tr = Trace.create eng ~capacity:3 in
  for i = 1 to 10 do
    Trace.emit tr ~tag:"x" (string_of_int i)
  done;
  Alcotest.(check int) "emitted counts all" 10 (Trace.emitted tr);
  let kept = List.map (fun e -> e.Trace.message) (Trace.events tr) in
  Alcotest.(check (list string)) "last three kept" [ "8"; "9"; "10" ] kept

let test_tag_filter () =
  let eng = Engine.create () in
  let tr = Trace.create eng ~capacity:10 in
  Trace.emit tr ~tag:"commit" "c1";
  Trace.emit tr ~tag:"abort" "a1";
  Trace.emit tr ~tag:"commit" "c2";
  Alcotest.(check int) "two commits" 2
    (List.length (Trace.events_with_tag tr "commit"))

let test_enabled_toggle () =
  let eng = Engine.create () in
  let tr = Trace.create eng ~capacity:10 in
  Alcotest.(check bool) "enabled by default" true (Trace.enabled tr);
  Trace.set_enabled tr false;
  Trace.emit tr ~tag:"x" "dropped";
  Alcotest.(check int) "emit dropped when disabled" 0 (Trace.emitted tr);
  Trace.set_enabled tr true;
  Trace.emit tr ~tag:"x" "kept";
  Alcotest.(check int) "emit recorded when re-enabled" 1 (Trace.emitted tr)

let test_emitf_lazy () =
  let eng = Engine.create () in
  let tr = Trace.create eng ~capacity:10 in
  let calls = ref 0 in
  Trace.set_enabled tr false;
  Trace.emitf tr ~tag:"x" (fun () ->
      incr calls;
      "expensive");
  Alcotest.(check int) "message not built when disabled" 0 !calls;
  Alcotest.(check int) "nothing emitted" 0 (Trace.emitted tr);
  Trace.set_enabled tr true;
  Trace.emitf tr ~tag:"x" (fun () ->
      incr calls;
      "expensive");
  Alcotest.(check int) "message built when enabled" 1 !calls;
  Alcotest.(check int) "one event emitted" 1 (Trace.emitted tr)

let test_sink () =
  let eng = Engine.create () in
  let tr = Trace.create eng ~capacity:10 in
  let seen = ref [] in
  Trace.set_sink tr (Some (fun e -> seen := e.Trace.message :: !seen));
  Trace.emit tr ~tag:"t" "hello";
  Alcotest.(check (list string)) "sink called" [ "hello" ] !seen

let test_format () =
  let eng = Engine.create () in
  let tr = Trace.create eng ~capacity:4 in
  Trace.emit tr ~tag:"tag" "msg";
  match Trace.events tr with
  | [ ev ] ->
      Alcotest.(check string) "formatted" "t=0.000000 [tag] msg"
        (Trace.format_event ev)
  | _ -> Alcotest.fail "one event expected"

let test_machine_trace () =
  let open Ddbm_model in
  let d = Params.default in
  let params =
    {
      Params.database =
        { d.Params.database with Params.num_proc_nodes = 4;
          partitioning_degree = 4; file_size = 60 };
      workload =
        { d.Params.workload with Params.think_time = 0.; num_terminals = 32 };
      resources = d.Params.resources;
      cc = { d.Params.cc with Params.algorithm = Params.Wound_wait };
      run =
        { Params.seed = 4; warmup = 0.; measure = 30.;
          restart_delay_floor = 0.5; fresh_restart_plan = false };
      durability = Params.default_durability;
      faults = Fault_plan.zero;
      arrivals = Arrival.zero;
    }
  in
  let m = Ddbm.Machine.create params in
  let tr = Ddbm.Machine.enable_trace m in
  let r = Ddbm.Machine.execute m in
  Alcotest.(check int) "commit events = commits... at least window's worth"
    r.Ddbm.Sim_result.commits
    (List.length
       (List.filter
          (fun (e : Desim.Trace.event) ->
            e.Desim.Trace.time >= 0.)
          (Desim.Trace.events_with_tag tr "commit"))
    |> fun kept -> Stdlib.min kept r.Ddbm.Sim_result.commits);
  Alcotest.(check bool) "wound trace present" true
    (List.length (Desim.Trace.events_with_tag tr "abort-request") > 0);
  Alcotest.(check bool) "abort trace present" true
    (List.length (Desim.Trace.events_with_tag tr "abort") > 0)

let suite =
  [
    Alcotest.test_case "emit and read" `Quick test_emit_and_read;
    Alcotest.test_case "ring bounded" `Quick test_ring_bounded;
    Alcotest.test_case "tag filter" `Quick test_tag_filter;
    Alcotest.test_case "enabled toggle" `Quick test_enabled_toggle;
    Alcotest.test_case "emitf is lazy" `Quick test_emitf_lazy;
    Alcotest.test_case "sink" `Quick test_sink;
    Alcotest.test_case "format" `Quick test_format;
    Alcotest.test_case "machine trace" `Slow test_machine_trace;
  ]
