(* Regenerates the [faults_off_expected] pin table in test_faults.ml.
   Run from the repo root after any intentional change to simulation
   numerics (e.g. a CPU-kernel rewrite), then paste the output over the
   old table:

     dune exec test/gen_pins.exe

   The configuration here must stay in lockstep with
   [Test_faults.faulty_params]. *)

let faulty_params ~algorithm =
  let d = Ddbm_model.Params.default in
  {
    d with
    Ddbm_model.Params.database =
      {
        d.Ddbm_model.Params.database with
        Ddbm_model.Params.num_proc_nodes = 4;
        partitioning_degree = 4;
      };
    workload =
      {
        d.Ddbm_model.Params.workload with
        Ddbm_model.Params.num_terminals = 16;
        think_time = 1.0;
      };
    cc = { d.Ddbm_model.Params.cc with Ddbm_model.Params.algorithm };
    run =
      {
        d.Ddbm_model.Params.run with
        Ddbm_model.Params.seed = 42;
        warmup = 2.0;
        measure = 20.0;
      };
    faults = Ddbm_model.Fault_plan.zero;
  }

let () =
  List.iter
    (fun algorithm ->
      let r = Ddbm.Machine.run (faulty_params ~algorithm) in
      Printf.printf
        "    (Params.%s, %d, %d, %d, %d, %d, \"%.17g\", \"%.17g\");\n"
        (match algorithm with
        | Ddbm_model.Params.No_dc -> "No_dc"
        | Twopl -> "Twopl"
        | Wound_wait -> "Wound_wait"
        | Bto -> "Bto"
        | Opt -> "Opt"
        | Wait_die -> "Wait_die"
        | Twopl_defer -> "Twopl_defer"
        | O2pl -> "O2pl")
        r.Ddbm.Sim_result.commits r.Ddbm.Sim_result.aborts
        r.Ddbm.Sim_result.completions r.Ddbm.Sim_result.messages
        r.Ddbm.Sim_result.sim_events r.Ddbm.Sim_result.throughput
        r.Ddbm.Sim_result.mean_response)
    [
      Ddbm_model.Params.No_dc;
      Twopl;
      Wound_wait;
      Bto;
      Opt;
      Wait_die;
      Twopl_defer;
      O2pl;
    ]
