(* Snoop global deadlock detector tests: cross-node cycle detection,
   victim selection, rotation, and message accounting. *)

open Desim
open Ddbm_cc
open Ddbm_model

type fixture = {
  h : Cc_harness.t;
  net : Net.t;
  node_edges : Cc_intf.edge list array;
  victims : (Txn.t * Txn.abort_reason) list ref;
  snoop : Snoop.t;
}

let mk ?(num_nodes = 3) ?(inst_per_msg = 1_000.) () =
  let h = Cc_harness.make () in
  let eng = h.Cc_harness.eng in
  let cpus =
    Array.init num_nodes (fun _ -> Cpu.create eng ~rate:1_000_000.)
  in
  let host_cpu = Cpu.create eng ~rate:10_000_000. in
  let cpu_of = function
    | Ids.Host -> host_cpu
    | Ids.Proc i -> cpus.(i)
  in
  let net = Net.create ~inst_per_msg ~cpu_of () in
  let node_edges = Array.make num_nodes [] in
  let victims = ref [] in
  let snoop =
    Snoop.create eng ~net ~num_nodes ~detection_interval:1.0
      ~edges_of:(fun i -> node_edges.(i))
      ~request_abort:(fun ~from_node:_ txn reason ->
        if not txn.Txn.doomed then begin
          txn.Txn.doomed <- true;
          victims := (txn, reason) :: !victims
        end)
  in
  { h; net; node_edges; victims; snoop }

let test_cross_node_cycle () =
  let f = mk () in
  let t0 = Cc_harness.txn f.h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn f.h ~tid:1 ~time:1. () in
  (* t0 waits for t1 at node 0; t1 waits for t0 at node 2 *)
  f.node_edges.(0) <- [ { Cc_intf.waiter = t0; holder = t1 } ];
  f.node_edges.(2) <- [ { Cc_intf.waiter = t1; holder = t0 } ];
  Engine.spawn f.h.Cc_harness.eng (fun () ->
      Snoop.detection_round f.snoop ~snoop_node:0);
  Cc_harness.settle f.h;
  (match !(f.victims) with
  | [ (victim, Txn.Global_deadlock) ] ->
      Alcotest.(check int) "youngest victimized" 1 victim.Txn.tid
  | _ -> Alcotest.fail "expected exactly one global-deadlock victim");
  Alcotest.(check bool) "messages exchanged" true (Net.messages_sent f.net > 0)

let test_no_cycle_no_victim () =
  let f = mk () in
  let t0 = Cc_harness.txn f.h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn f.h ~tid:1 ~time:1. () in
  f.node_edges.(0) <- [ { Cc_intf.waiter = t0; holder = t1 } ];
  Engine.spawn f.h.Cc_harness.eng (fun () ->
      Snoop.detection_round f.snoop ~snoop_node:1);
  Cc_harness.settle f.h;
  Alcotest.(check int) "no victims" 0 (List.length !(f.victims))

let test_local_cycle_found_globally () =
  (* the Snoop also sees single-node cycles that escaped local detection *)
  let f = mk () in
  let t0 = Cc_harness.txn f.h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn f.h ~tid:1 ~time:1. () in
  f.node_edges.(1) <-
    [
      { Cc_intf.waiter = t0; holder = t1 };
      { Cc_intf.waiter = t1; holder = t0 };
    ];
  Engine.spawn f.h.Cc_harness.eng (fun () ->
      Snoop.detection_round f.snoop ~snoop_node:0);
  Cc_harness.settle f.h;
  Alcotest.(check int) "one victim" 1 (List.length !(f.victims))

let test_rotation_runs_rounds () =
  let f = mk ~num_nodes:2 () in
  Snoop.start f.snoop;
  Engine.run ~until:5.5 f.h.Cc_harness.eng;
  (* with a 1 s dwell per node, about 5 rounds fit in 5.5 s *)
  let rounds = Snoop.rounds f.snoop in
  Alcotest.(check bool)
    (Printf.sprintf "rounds %d in [4,6]" rounds)
    true
    (rounds >= 4 && rounds <= 6)

let test_doomed_not_revictimized () =
  let f = mk () in
  let t0 = Cc_harness.txn f.h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn f.h ~tid:1 ~time:1. () in
  t1.Txn.doomed <- true;
  f.node_edges.(0) <- [ { Cc_intf.waiter = t0; holder = t1 } ];
  f.node_edges.(1) <- [ { Cc_intf.waiter = t1; holder = t0 } ];
  Engine.spawn f.h.Cc_harness.eng (fun () ->
      Snoop.detection_round f.snoop ~snoop_node:0);
  Cc_harness.settle f.h;
  Alcotest.(check int) "already-doomed cycle ignored" 0
    (List.length !(f.victims))

let test_message_cost_charged () =
  let f = mk ~num_nodes:3 ~inst_per_msg:1_000. () in
  Engine.spawn f.h.Cc_harness.eng (fun () ->
      Snoop.detection_round f.snoop ~snoop_node:0);
  Cc_harness.settle f.h;
  (* 2 remote nodes x (request + reply) = 4 messages *)
  Alcotest.(check int) "four messages" 4 (Net.messages_sent f.net);
  (* each message costs 1 ms at 1 MIPS on each end; collection needs two
     sequential hops *)
  Alcotest.(check bool) "took simulated time" true
    (Engine.now f.h.Cc_harness.eng >= 0.002)

let suite =
  [
    Alcotest.test_case "cross-node cycle" `Quick test_cross_node_cycle;
    Alcotest.test_case "no cycle, no victim" `Quick test_no_cycle_no_victim;
    Alcotest.test_case "local cycle found globally" `Quick
      test_local_cycle_found_globally;
    Alcotest.test_case "rotation runs rounds" `Quick test_rotation_runs_rounds;
    Alcotest.test_case "doomed not re-victimized" `Quick
      test_doomed_not_revictimized;
    Alcotest.test_case "message cost charged" `Quick test_message_cost_charged;
  ]
