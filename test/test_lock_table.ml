open Desim
open Ddbm_cc
open Ddbm_model

exception Rejected

let mk () =
  let h = Cc_harness.make () in
  let blocking = Stats.Tally.create () in
  (h, Lock_table.create h.Cc_harness.eng ~blocking, blocking)

(* Acquire in a spawned process; returns a ref set to `Granted/`Rejected. *)
let async_request h locks txn page mode =
  let state = ref `Waiting in
  Engine.spawn h.Cc_harness.eng (fun () ->
      try
        Lock_table.request locks txn page mode ~on_block:(fun _ -> ());
        state := `Granted
      with Txn.Aborted _ -> state := `Rejected);
  state

let test_shared_compatible () =
  let h, locks, _ = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  let s0 = async_request h locks t0 p Lock_table.S in
  let s1 = async_request h locks t1 p Lock_table.S in
  Cc_harness.settle h;
  Alcotest.(check bool) "both granted" true (!s0 = `Granted && !s1 = `Granted)

let test_exclusive_blocks () =
  let h, locks, _ = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  let s0 = async_request h locks t0 p Lock_table.X in
  let s1 = async_request h locks t1 p Lock_table.S in
  Cc_harness.settle h;
  Alcotest.(check bool) "holder granted" true (!s0 = `Granted);
  Alcotest.(check bool) "reader blocked" true (!s1 = `Waiting);
  (* release on commit: waiter granted *)
  Lock_table.release_all locks t0 ~reject:Rejected;
  Cc_harness.settle h;
  Alcotest.(check bool) "waiter granted after release" true (!s1 = `Granted)

let test_fcfs_no_queue_jump () =
  let h, locks, _ = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let t2 = Cc_harness.txn h ~tid:2 ~time:2. () in
  let p = Cc_harness.page 1 in
  let s0 = async_request h locks t0 p Lock_table.S in
  Cc_harness.settle h;
  let s1 = async_request h locks t1 p Lock_table.X in
  (* t2's S is compatible with t0's S but must not jump t1's X *)
  let s2 = async_request h locks t2 p Lock_table.S in
  Cc_harness.settle h;
  Alcotest.(check bool) "t0 granted" true (!s0 = `Granted);
  Alcotest.(check bool) "t1 waits" true (!s1 = `Waiting);
  Alcotest.(check bool) "t2 does not jump" true (!s2 = `Waiting);
  Lock_table.release_all locks t0 ~reject:Rejected;
  Cc_harness.settle h;
  Alcotest.(check bool) "t1 granted next" true (!s1 = `Granted);
  Alcotest.(check bool) "t2 still waits" true (!s2 = `Waiting);
  Lock_table.release_all locks t1 ~reject:Rejected;
  Cc_harness.settle h;
  Alcotest.(check bool) "t2 finally granted" true (!s2 = `Granted)

let test_upgrade_sole_holder () =
  let h, locks, _ = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let p = Cc_harness.page 1 in
  let s = async_request h locks t0 p Lock_table.S in
  Cc_harness.settle h;
  let x = async_request h locks t0 p Lock_table.X in
  Cc_harness.settle h;
  Alcotest.(check bool) "upgrade immediate" true (!s = `Granted && !x = `Granted);
  Alcotest.(check bool) "held in X" true
    (match Lock_table.held locks t0 p with
    | Some Lock_table.X -> true
    | Some Lock_table.S | None -> false)

let test_upgrade_waits_for_other_reader () =
  let h, locks, _ = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (async_request h locks t0 p Lock_table.S);
  ignore (async_request h locks t1 p Lock_table.S);
  Cc_harness.settle h;
  let up = async_request h locks t0 p Lock_table.X in
  Cc_harness.settle h;
  Alcotest.(check bool) "conversion waits" true (!up = `Waiting);
  Lock_table.release_all locks t1 ~reject:Rejected;
  Cc_harness.settle h;
  Alcotest.(check bool) "conversion granted after release" true (!up = `Granted)

let test_conversion_jumps_queue () =
  let h, locks, _ = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let t2 = Cc_harness.txn h ~tid:2 ~time:2. () in
  let p = Cc_harness.page 1 in
  ignore (async_request h locks t0 p Lock_table.S);
  ignore (async_request h locks t1 p Lock_table.S);
  Cc_harness.settle h;
  (* t2 queues an X; then t1 converts: the conversion goes ahead of t2 *)
  let x2 = async_request h locks t2 p Lock_table.X in
  Cc_harness.settle h;
  let up1 = async_request h locks t1 p Lock_table.X in
  Cc_harness.settle h;
  Alcotest.(check bool) "both waiting" true (!x2 = `Waiting && !up1 = `Waiting);
  Lock_table.release_all locks t0 ~reject:Rejected;
  Cc_harness.settle h;
  Alcotest.(check bool) "conversion wins" true (!up1 = `Granted);
  Alcotest.(check bool) "plain X still waits" true (!x2 = `Waiting)

let test_release_rejects_waiters () =
  let h, locks, _ = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (async_request h locks t0 p Lock_table.X);
  Cc_harness.settle h;
  let s1 = async_request h locks t1 p Lock_table.S in
  Cc_harness.settle h;
  Alcotest.(check bool) "t1 waiting" true (!s1 = `Waiting);
  (* aborting t1 rejects its blocked request *)
  Lock_table.release_all locks t1 ~reject:(Txn.Aborted Txn.Peer_abort);
  Cc_harness.settle h;
  Alcotest.(check bool) "t1 rejected" true (!s1 = `Rejected);
  (* the holder is untouched *)
  Alcotest.(check bool) "t0 still holds" true
    (match Lock_table.held locks t0 p with
    | Some Lock_table.X -> true
    | Some Lock_table.S | None -> false)

let test_blockers_reported () =
  let h, locks, _ = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (async_request h locks t0 p Lock_table.X);
  Cc_harness.settle h;
  let seen = ref [] in
  Engine.spawn h.Cc_harness.eng (fun () ->
      try
        Lock_table.request locks t1 p Lock_table.S ~on_block:(fun blockers ->
            seen := blockers)
      with Txn.Aborted _ -> ());
  Cc_harness.settle h;
  (match !seen with
  | [ b ] -> Alcotest.(check int) "blocker is t0" 0 b.Txn.tid
  | other ->
      Alcotest.fail (Printf.sprintf "expected 1 blocker, got %d" (List.length other)));
  Lock_table.release_all locks t1 ~reject:Rejected

let test_edges () =
  let h, locks, _ = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (async_request h locks t0 p Lock_table.X);
  Cc_harness.settle h;
  ignore (async_request h locks t1 p Lock_table.X);
  Cc_harness.settle h;
  match Lock_table.edges locks with
  | [ { Cc_intf.waiter; holder } ] ->
      Alcotest.(check (pair int int))
        "edge t1 -> t0" (1, 0)
        (waiter.Txn.tid, holder.Txn.tid)
  | edges ->
      Alcotest.fail (Printf.sprintf "expected 1 edge, got %d" (List.length edges))

let test_blocking_tally () =
  let h, locks, blocking = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (async_request h locks t0 p Lock_table.X);
  Cc_harness.settle h;
  ignore (async_request h locks t1 p Lock_table.S);
  (* release at t=5: blocked duration recorded *)
  ignore
    (Engine.schedule h.Cc_harness.eng ~at:5. (fun () ->
         Lock_table.release_all locks t0 ~reject:Rejected));
  Cc_harness.settle h;
  Alcotest.(check int) "one block recorded" 1 (Stats.Tally.count blocking);
  Alcotest.(check bool) "blocked ~5s" true
    (abs_float (Stats.Tally.mean blocking -. 5.) < 1e-9)

let test_reacquire_held () =
  let h, locks, _ = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let p = Cc_harness.page 1 in
  ignore (async_request h locks t0 p Lock_table.X);
  Cc_harness.settle h;
  (* S and X under an existing X are both immediate no-ops *)
  let s = async_request h locks t0 p Lock_table.S in
  let x = async_request h locks t0 p Lock_table.X in
  Cc_harness.settle h;
  Alcotest.(check bool) "covered requests granted" true
    (!s = `Granted && !x = `Granted)

(* Invariant: at any quiescent point, a page has either one X holder and
   nothing else, or only S holders. *)
let prop_no_conflicting_holders =
  QCheck.Test.make ~name:"lock table never grants conflicting holders"
    ~count:60
    QCheck.(
      list_of_size
        Gen.(int_range 1 40)
        (triple (int_range 0 5) (int_range 0 3) bool))
    (fun ops ->
      let h, locks, _ = mk () in
      let txns =
        Array.init 6 (fun i -> Cc_harness.txn h ~tid:i ~time:(float_of_int i) ())
      in
      List.iter
        (fun (tid, page_idx, exclusive) ->
          let mode = if exclusive then Lock_table.X else Lock_table.S in
          let p = Cc_harness.page page_idx in
          Engine.spawn h.Cc_harness.eng (fun () ->
              try
                Lock_table.request locks txns.(tid) p mode ~on_block:(fun _ ->
                    ())
              with Txn.Aborted _ -> ()))
        ops;
      Cc_harness.settle h;
      (* check pairwise compatibility of the locks actually held per page
         (cyclic waits may remain outstanding; that is fine here) *)
      let ok = ref true in
      for page_idx = 0 to 3 do
        let p = Cc_harness.page page_idx in
        let modes =
          Array.to_list txns
          |> List.filter_map (fun t -> Lock_table.held locks t p)
        in
        let xs = List.length (List.filter (fun m -> m = Lock_table.X) modes) in
        if xs > 1 || (xs = 1 && List.length modes > 1) then ok := false
      done;
      (* cleanup: release every txn, rejecting any stuck waiter *)
      Array.iter
        (fun t ->
          Lock_table.release_all locks t ~reject:(Txn.Aborted Txn.Peer_abort))
        txns;
      Cc_harness.settle h;
      !ok && Lock_table.num_waiting locks = 0)

let suite =
  [
    Alcotest.test_case "shared compatible" `Quick test_shared_compatible;
    Alcotest.test_case "exclusive blocks" `Quick test_exclusive_blocks;
    Alcotest.test_case "fcfs no queue jump" `Quick test_fcfs_no_queue_jump;
    Alcotest.test_case "upgrade sole holder" `Quick test_upgrade_sole_holder;
    Alcotest.test_case "upgrade waits for reader" `Quick
      test_upgrade_waits_for_other_reader;
    Alcotest.test_case "conversion jumps queue" `Quick
      test_conversion_jumps_queue;
    Alcotest.test_case "release rejects waiters" `Quick
      test_release_rejects_waiters;
    Alcotest.test_case "blockers reported" `Quick test_blockers_reported;
    Alcotest.test_case "waits-for edges" `Quick test_edges;
    Alcotest.test_case "blocking tally" `Quick test_blocking_tally;
    Alcotest.test_case "re-acquire held lock" `Quick test_reacquire_held;
    QCheck_alcotest.to_alcotest prop_no_conflicting_holders;
  ]
