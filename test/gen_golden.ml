(* Regenerate the golden Chrome trace used by test_observability:

     dune exec test/gen_golden.exe

   writes test/golden/trace_tiny.json (run from the repo root). The run
   parameters here MUST match [Test_observability.golden_params]. *)

open Ddbm_model

let golden_params =
  let d = Params.default in
  {
    Params.database =
      {
        d.Params.database with
        Params.num_proc_nodes = 2;
        partitioning_degree = 2;
        file_size = 60;
      };
    workload =
      { d.Params.workload with Params.think_time = 0.; num_terminals = 2 };
    resources = d.Params.resources;
    cc = { d.Params.cc with Params.algorithm = Params.Twopl };
    run =
      {
        Params.seed = 3;
        warmup = 0.;
        measure = 1.5;
        restart_delay_floor = 0.5;
        fresh_restart_plan = false;
      };
    durability = Params.default_durability;
    faults = Fault_plan.zero;
    arrivals = Arrival.zero;
  }

let () =
  let m = Ddbm.Machine.create golden_params in
  Ddbm.Machine.enable_sampler m ~interval:1.;
  let tracer = Ddbm.Machine.enable_events m in
  let buf = Buffer.create 4096 in
  let chrome =
    Ddbm.Trace_export.Chrome.create
      ~num_nodes:golden_params.Params.database.Params.num_proc_nodes
      (Buffer.add_string buf)
  in
  Tracer.attach tracer (Ddbm.Trace_export.Chrome.sink chrome);
  ignore (Ddbm.Machine.execute m : Ddbm.Sim_result.t);
  Ddbm.Trace_export.Chrome.close chrome;
  let path = "test/golden/trace_tiny.json" in
  let oc = open_out_bin path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote %d bytes to %s\n" (Buffer.length buf) path
