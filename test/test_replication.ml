(* Replicated-data tests: copy placement, plan construction with replica
   application duties, end-to-end replicated runs (including the O2PL
   message saving), and serializability under replication. *)

open Ddbm_model

let db ?(nodes = 8) ?(degree = 8) ?(replication = 1) () =
  {
    Params.default.Params.database with
    Params.num_proc_nodes = nodes;
    partitioning_degree = degree;
    replication;
  }

let test_copy_nodes_distinct () =
  let c = Catalog.create (db ~replication:3 ()) in
  for file = 0 to Catalog.num_files c - 1 do
    let copies = Catalog.copy_nodes c ~file in
    Alcotest.(check int) "three copies" 3 (List.length copies);
    Alcotest.(check int) "distinct nodes" 3
      (List.length (List.sort_uniq Int.compare copies));
    (* primary first *)
    match (Catalog.node_of c ~file, copies) with
    | Ids.Proc p, first :: _ -> Alcotest.(check int) "primary first" p first
    | _ -> Alcotest.fail "host cannot hold copies"
  done

let test_no_replication_single_copy () =
  let c = Catalog.create (db ()) in
  Alcotest.(check int) "one copy" 1
    (List.length (Catalog.copy_nodes c ~file:5))

let test_replication_validated () =
  let params =
    { Params.default with Params.database = db ~nodes:2 ~degree:2 ~replication:3 () }
  in
  match Params.validate params with
  | Ok () -> Alcotest.fail "replication > nodes must be rejected"
  | Error _ -> ()

let mk_workload ~replication =
  let params =
    { Params.default with Params.database = db ~replication () }
  in
  let catalog = Catalog.create params.Params.database in
  (catalog, Workload.create params catalog (Desim.Rng.create 17))

let test_plan_apply_ops_cover_copies () =
  let catalog, w = mk_workload ~replication:2 in
  for terminal = 0 to 31 do
    let plan = Workload.generate_plan w ~terminal in
    (* every update must appear as an apply op at every non-primary copy *)
    let applies =
      List.concat_map
        (fun (c : Plan.cohort_plan) ->
          List.map (fun p -> (c.Plan.node, p)) c.Plan.apply_ops)
        plan.Plan.cohorts
    in
    List.iter
      (fun (c : Plan.cohort_plan) ->
        List.iter
          (fun (op : Plan.page_op) ->
            if op.Plan.update then
              List.iter
                (fun copy_node ->
                  if copy_node <> c.Plan.node then
                    Alcotest.(check bool)
                      "copy site has the apply op" true
                      (List.exists
                         (fun (n, p) ->
                           n = copy_node && Ids.Page.equal p op.Plan.page)
                         applies))
                (Catalog.copy_nodes catalog ~file:op.Plan.page.Ids.Page.file))
          c.Plan.ops)
      plan.Plan.cohorts;
    (* and apply counts match: each update has (replication - 1) applies *)
    Alcotest.(check int) "apply count"
      (Plan.total_writes plan)
      (Plan.total_replica_applies plan)
  done

let test_plan_no_applies_without_replication () =
  let _, w = mk_workload ~replication:1 in
  let plan = Workload.generate_plan w ~terminal:7 in
  Alcotest.(check int) "no applies" 0 (Plan.total_replica_applies plan)

let replicated_params ?(algorithm = Params.Twopl) ?(replication = 2)
    ?(inst_per_msg = 1000.) () =
  let d = Params.default in
  {
    Params.database =
      { (db ~nodes:4 ~degree:4 ~replication ()) with Params.file_size = 80 };
    workload =
      { d.Params.workload with Params.think_time = 1.; num_terminals = 32 };
    resources = { d.Params.resources with Params.inst_per_msg };
    cc = { d.Params.cc with Params.algorithm };
    run =
      { Params.seed = 9; warmup = 10.; measure = 50.;
        restart_delay_floor = 0.5; fresh_restart_plan = false };
      durability = Params.default_durability;
      faults = Fault_plan.zero;
      arrivals = Arrival.zero;
  }

let test_replicated_runs_all_algorithms () =
  List.iter
    (fun algorithm ->
      let r = Ddbm.Machine.run (replicated_params ~algorithm ()) in
      Alcotest.(check bool)
        (Params.cc_algorithm_name algorithm ^ " commits under replication")
        true
        (r.Ddbm.Sim_result.commits > 0))
    [
      Params.No_dc; Params.Twopl; Params.O2pl; Params.Wound_wait; Params.Bto;
      Params.Opt; Params.Wait_die; Params.Twopl_defer;
    ]

let test_o2pl_saves_messages () =
  let msgs algorithm =
    (Ddbm.Machine.run (replicated_params ~algorithm ~replication:3 ()))
      .Ddbm.Sim_result.messages
  in
  let m2pl = msgs Params.Twopl and mo2pl = msgs Params.O2pl in
  Alcotest.(check bool)
    (Printf.sprintf "O2PL (%d) sends far fewer messages than 2PL (%d)" mo2pl
       m2pl)
    true
    (float_of_int mo2pl < 0.75 *. float_of_int m2pl)

let test_replication_increases_messages_for_2pl () =
  let msgs replication =
    (Ddbm.Machine.run (replicated_params ~algorithm:Params.Twopl ~replication ()))
      .Ddbm.Sim_result.messages
  in
  Alcotest.(check bool) "write-all messages" true (msgs 3 > msgs 1)

let test_replicated_histories_serializable () =
  List.iter
    (fun algorithm ->
      let machine = Ddbm.Machine.create (replicated_params ~algorithm ()) in
      let audit = Ddbm.Machine.enable_audit machine in
      let result = Ddbm.Machine.execute machine in
      Alcotest.(check bool) "commits" true (result.Ddbm.Sim_result.commits > 0);
      match Ddbm.Audit.check audit with
      | Ok _ -> ()
      | Error msg ->
          Alcotest.fail (Params.cc_algorithm_name algorithm ^ ": " ^ msg))
    [ Params.Twopl; Params.O2pl; Params.Bto; Params.Opt; Params.Wound_wait ]

let suite =
  [
    Alcotest.test_case "copy nodes distinct" `Quick test_copy_nodes_distinct;
    Alcotest.test_case "single copy without replication" `Quick
      test_no_replication_single_copy;
    Alcotest.test_case "replication validated" `Quick test_replication_validated;
    Alcotest.test_case "plan applies cover copies" `Quick
      test_plan_apply_ops_cover_copies;
    Alcotest.test_case "no applies without replication" `Quick
      test_plan_no_applies_without_replication;
    Alcotest.test_case "all algorithms run replicated" `Slow
      test_replicated_runs_all_algorithms;
    Alcotest.test_case "O2PL saves messages" `Slow test_o2pl_saves_messages;
    Alcotest.test_case "write-all message growth" `Slow
      test_replication_increases_messages_for_2pl;
    Alcotest.test_case "replicated histories serializable" `Slow
      test_replicated_histories_serializable;
  ]
