open Desim

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_tally_basic () =
  let t = Stats.Tally.create () in
  List.iter (Stats.Tally.add t) [ 1.; 2.; 3.; 4.; 5. ];
  Alcotest.(check int) "count" 5 (Stats.Tally.count t);
  Alcotest.(check bool) "mean" true (feq (Stats.Tally.mean t) 3.);
  Alcotest.(check bool) "total" true (feq (Stats.Tally.total t) 15.);
  Alcotest.(check bool) "variance" true (feq (Stats.Tally.variance t) 2.5);
  Alcotest.(check bool) "min" true (feq (Stats.Tally.min t) 1.);
  Alcotest.(check bool) "max" true (feq (Stats.Tally.max t) 5.)

let test_tally_empty () =
  let t = Stats.Tally.create () in
  Alcotest.(check int) "count" 0 (Stats.Tally.count t);
  Alcotest.(check bool) "mean 0" true (feq (Stats.Tally.mean t) 0.);
  Alcotest.(check bool) "var 0" true (feq (Stats.Tally.variance t) 0.);
  Alcotest.(check bool) "ci 0" true (feq (Stats.Tally.ci95 t) 0.)

let test_tally_reset () =
  let t = Stats.Tally.create () in
  Stats.Tally.add t 10.;
  Stats.Tally.reset t;
  Alcotest.(check int) "count after reset" 0 (Stats.Tally.count t);
  Stats.Tally.add t 4.;
  Alcotest.(check bool) "mean after reset" true (feq (Stats.Tally.mean t) 4.)

let test_timeseries_average () =
  let ts = Stats.Timeseries.create ~now:0. ~value:0. in
  Stats.Timeseries.update ts ~now:1. ~value:2.;
  Stats.Timeseries.update ts ~now:3. ~value:1.;
  (* signal: 0 on [0,1), 2 on [1,3), 1 on [3,4) -> area 0+4+1 = 5 over 4 *)
  Alcotest.(check bool) "avg" true
    (feq (Stats.Timeseries.average ts ~now:4.) 1.25)

let test_timeseries_window () =
  let ts = Stats.Timeseries.create ~now:0. ~value:5. in
  Stats.Timeseries.set_window ts ~now:10.;
  Stats.Timeseries.update ts ~now:12. ~value:1.;
  (* from 10: 5 on [10,12), 1 on [12,14) -> (10+2)/4 = 3 *)
  Alcotest.(check bool) "windowed avg" true
    (feq (Stats.Timeseries.average ts ~now:14.) 3.)

let test_utilization () =
  let u = Stats.Utilization.create ~now:0. in
  Stats.Utilization.set_busy_level u ~now:0. ~level:1.;
  Stats.Utilization.set_busy_level u ~now:3. ~level:0.;
  Alcotest.(check bool) "75% busy" true
    (feq (Stats.Utilization.value u ~now:4.) 0.75)

let test_histogram_quantile () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  for i = 0 to 99 do
    Stats.Histogram.add h (float_of_int (i mod 10) +. 0.5)
  done;
  Alcotest.(check int) "count" 100 (Stats.Histogram.count h);
  let med = Stats.Histogram.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "median %.2f near 5" med)
    true
    (abs_float (med -. 5.) < 1.)

let test_histogram_clamps () =
  let h = Stats.Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Stats.Histogram.add h (-5.);
  Stats.Histogram.add h 100.;
  Alcotest.(check int) "clamped count" 2 (Stats.Histogram.count h);
  match Stats.Histogram.bins h with
  | (_, _, first) :: rest ->
      let _, _, last = List.nth rest (List.length rest - 1) in
      Alcotest.(check int) "low clamped" 1 first;
      Alcotest.(check int) "high clamped" 1 last
  | [] -> Alcotest.fail "no bins"

let test_batch_means_mean () =
  let b = Stats.Batch_means.create ~batch_size:4 in
  for i = 1 to 16 do
    Stats.Batch_means.add b (float_of_int i)
  done;
  Alcotest.(check int) "batches" 4 (Stats.Batch_means.batches b);
  Alcotest.(check int) "count" 16 (Stats.Batch_means.count b);
  Alcotest.(check bool) "grand mean 8.5" true
    (feq (Stats.Batch_means.mean b) 8.5)

let test_batch_means_partial_batch_excluded () =
  let b = Stats.Batch_means.create ~batch_size:10 in
  for _ = 1 to 9 do
    Stats.Batch_means.add b 1.
  done;
  Alcotest.(check int) "no complete batch" 0 (Stats.Batch_means.batches b);
  Alcotest.(check bool) "ci 0 without batches" true
    (feq (Stats.Batch_means.ci95 b) 0.)

let test_batch_means_constant_signal () =
  let b = Stats.Batch_means.create ~batch_size:5 in
  for _ = 1 to 50 do
    Stats.Batch_means.add b 3.
  done;
  Alcotest.(check bool) "zero-width ci" true (feq (Stats.Batch_means.ci95 b) 0.);
  Alcotest.(check bool) "mean" true (feq (Stats.Batch_means.mean b) 3.)

let test_batch_means_reset () =
  let b = Stats.Batch_means.create ~batch_size:2 in
  Stats.Batch_means.add b 1.;
  Stats.Batch_means.add b 2.;
  Stats.Batch_means.reset b;
  Alcotest.(check int) "count reset" 0 (Stats.Batch_means.count b);
  Alcotest.(check int) "batches reset" 0 (Stats.Batch_means.batches b)

let prop_batch_ci_covers_true_mean =
  (* iid uniform noise: the 95% batch-means CI should usually contain the
     true mean; we only require it is positive and not absurdly wide *)
  QCheck.Test.make ~name:"batch-means CI is sane on iid noise" ~count:50
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let b = Stats.Batch_means.create ~batch_size:20 in
      for _ = 1 to 400 do
        Stats.Batch_means.add b (Rng.float rng)
      done;
      let ci = Stats.Batch_means.ci95 b in
      ci > 0. && ci < 0.2
      && abs_float (Stats.Batch_means.mean b -. 0.5) < 0.15)

let prop_tally_mean_matches_list =
  QCheck.Test.make ~name:"tally mean equals list mean" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let t = Stats.Tally.create () in
      List.iter (Stats.Tally.add t) xs;
      let m = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      abs_float (Stats.Tally.mean t -. m) < 1e-6 *. (1. +. abs_float m))

let prop_tally_minmax =
  QCheck.Test.make ~name:"tally min/max bound all samples" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let t = Stats.Tally.create () in
      List.iter (Stats.Tally.add t) xs;
      List.for_all
        (fun x -> x >= Stats.Tally.min t && x <= Stats.Tally.max t)
        xs)

(* ---- HDR log-scaled histogram ------------------------------------- *)

(* The exact sorted-sample quantile with the repo's rank convention
   (Metrics.response_percentile): the order statistic at min (n-1)
   (int (n*q)). *)
let exact_quantile xs q =
  let sorted = List.sort Float.compare xs in
  let n = List.length sorted in
  let idx = Stdlib.min (n - 1) (int_of_float (float_of_int n *. q)) in
  List.nth sorted idx

let hdr_of xs =
  let h = Stats.Hdr.create () in
  List.iter (Stats.Hdr.add h) xs;
  h

(* Positive samples within the default tracked range [2^-20, 2^12). *)
let in_range_samples =
  QCheck.(
    list_of_size
      Gen.(int_range 1 200)
      (map (fun x -> 1e-5 +. (x *. 4000.)) (float_bound_exclusive 1.)))

let test_hdr_basic () =
  let h = Stats.Hdr.create () in
  Alcotest.(check (float 0.)) "empty quantile" 0. (Stats.Hdr.quantile h 0.99);
  List.iter (Stats.Hdr.add h) [ 1.; 2.; 4.; 8. ];
  Alcotest.(check int) "count" 4 (Stats.Hdr.count h);
  Alcotest.(check (float 1e-12)) "total" 15. (Stats.Hdr.total h);
  (* exact powers of two are bucket lower edges; the quantile returns the
     bucket's upper edge, a hair above the sample *)
  let q = Stats.Hdr.quantile h 0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "median edge %.6f just above 4" q)
    true
    (q > 4. && q <= 4. *. (1. +. Stats.Hdr.rel_error h));
  Stats.Hdr.reset h;
  Alcotest.(check int) "count after reset" 0 (Stats.Hdr.count h)

let test_hdr_clamps () =
  let h = Stats.Hdr.create () in
  (* below range, zero, nan, negative -> bucket 0; above range -> last *)
  List.iter (Stats.Hdr.add h) [ 1e-30; 0.; Float.nan; -3.; 1e30 ];
  Alcotest.(check int) "count" 5 (Stats.Hdr.count h);
  Alcotest.(check int) "low clamp" 0 (Stats.Hdr.index h 1e-30);
  Alcotest.(check int) "neg clamp" 0 (Stats.Hdr.index h (-3.));
  let last = Stats.Hdr.index h 1e30 in
  Alcotest.(check bool) "high clamp is max index" true
    (last = Stats.Hdr.index h 4000. || last > Stats.Hdr.index h 4000.);
  (* the quantile stays finite even for clamped-high samples *)
  Alcotest.(check bool) "q finite" true
    (Float.is_finite (Stats.Hdr.quantile h 0.99))

let prop_hdr_differential =
  (* tentpole property: histogram quantiles match the exact sorted-sample
     quantile (same rank convention) within the bucket relative-error
     bound, from above *)
  QCheck.Test.make ~name:"hdr quantile vs exact sample quantile" ~count:300
    in_range_samples (fun xs ->
      let h = hdr_of xs in
      let rel = Stats.Hdr.rel_error h in
      List.for_all
        (fun q ->
          let e = exact_quantile xs q in
          let v = Stats.Hdr.quantile h q in
          v >= e && v <= e *. (1. +. rel) *. (1. +. 1e-12))
        [ 0.5; 0.9; 0.95; 0.99; 0.999 ])

let prop_hdr_conservation =
  (* histogram count/total are bit-identical to a Tally fed the same
     observation stream *)
  QCheck.Test.make ~name:"hdr count/total conserve vs tally" ~count:300
    in_range_samples (fun xs ->
      let h = hdr_of xs in
      let t = Stats.Tally.create () in
      List.iter (Stats.Tally.add t) xs;
      Stats.Hdr.count h = Stats.Tally.count t
      && Float.equal (Stats.Hdr.total h) (Stats.Tally.total t))

let prop_hdr_merge_associative =
  (* integer bucket counts merge exactly associatively, so quantiles are
     bit-identical under any parallel aggregation order; totals are float
     sums and only associative up to rounding *)
  QCheck.Test.make ~name:"hdr merge associativity" ~count:200
    QCheck.(triple in_range_samples in_range_samples in_range_samples)
    (fun (xs, ys, zs) ->
      let a = hdr_of xs and b = hdr_of ys and c = hdr_of zs in
      let l = Stats.Hdr.merge (Stats.Hdr.merge a b) c in
      let r = Stats.Hdr.merge a (Stats.Hdr.merge b c) in
      let flat = hdr_of (xs @ ys @ zs) in
      Stats.Hdr.count l = Stats.Hdr.count r
      && Stats.Hdr.count l = Stats.Hdr.count flat
      && List.for_all
           (fun q ->
             Float.equal (Stats.Hdr.quantile l q) (Stats.Hdr.quantile r q)
             && Float.equal (Stats.Hdr.quantile l q)
                  (Stats.Hdr.quantile flat q))
           [ 0.5; 0.9; 0.95; 0.99; 0.999 ]
      && Stats.Hdr.nonzero_bins l = Stats.Hdr.nonzero_bins r
      && Stats.Hdr.nonzero_bins l = Stats.Hdr.nonzero_bins flat
      && abs_float (Stats.Hdr.total l -. Stats.Hdr.total r)
         <= 1e-9 *. (1. +. abs_float (Stats.Hdr.total l)))

let prop_hdr_cumulative =
  QCheck.Test.make ~name:"hdr cumulative counts are monotone to count"
    ~count:200 in_range_samples (fun xs ->
      let h = hdr_of xs in
      let cum = Stats.Hdr.cumulative h in
      let rec mono last = function
        | [] -> true
        | (le, c) :: rest ->
            c > last && le > 0. && (rest = [] || c <= Stats.Hdr.count h)
            && mono c rest
      in
      mono 0 cum
      &&
      match List.rev cum with
      | (_, c) :: _ -> c = Stats.Hdr.count h
      | [] -> Stats.Hdr.count h = 0)

let suite =
  [
    Alcotest.test_case "tally basic" `Quick test_tally_basic;
    Alcotest.test_case "tally empty" `Quick test_tally_empty;
    Alcotest.test_case "tally reset" `Quick test_tally_reset;
    Alcotest.test_case "timeseries average" `Quick test_timeseries_average;
    Alcotest.test_case "timeseries window" `Quick test_timeseries_window;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
    Alcotest.test_case "histogram clamps" `Quick test_histogram_clamps;
    Alcotest.test_case "batch means mean" `Quick test_batch_means_mean;
    Alcotest.test_case "batch means partial batch" `Quick
      test_batch_means_partial_batch_excluded;
    Alcotest.test_case "batch means constant" `Quick
      test_batch_means_constant_signal;
    Alcotest.test_case "batch means reset" `Quick test_batch_means_reset;
    QCheck_alcotest.to_alcotest prop_batch_ci_covers_true_mean;
    QCheck_alcotest.to_alcotest prop_tally_mean_matches_list;
    QCheck_alcotest.to_alcotest prop_tally_minmax;
    Alcotest.test_case "hdr basic" `Quick test_hdr_basic;
    Alcotest.test_case "hdr clamps" `Quick test_hdr_clamps;
    QCheck_alcotest.to_alcotest prop_hdr_differential;
    QCheck_alcotest.to_alcotest prop_hdr_conservation;
    QCheck_alcotest.to_alcotest prop_hdr_merge_associative;
    QCheck_alcotest.to_alcotest prop_hdr_cumulative;
  ]
