(* Machine-level telemetry tests: tail quantiles in Sim_result, the typed
   metric registry and its Prometheus/JSON exposition, and the guarantee
   that histogram observers never perturb the simulation. *)

open Ddbm_model

let small_params ?(algorithm = Params.Twopl) ?(seed = 11) () =
  let d = Params.default in
  {
    Params.database =
      {
        d.Params.database with
        Params.num_proc_nodes = 4;
        partitioning_degree = 4;
        file_size = 100;
      };
    workload =
      {
        d.Params.workload with
        Params.think_time = 1.;
        num_terminals = 32;
        exec_pattern = Params.Parallel;
      };
    resources = d.Params.resources;
    cc = { d.Params.cc with Params.algorithm };
    run =
      {
        Params.seed;
        warmup = 10.;
        measure = 40.;
        restart_delay_floor = 0.5;
        fresh_restart_plan = false;
      };
    durability = Params.default_durability;
    faults = Fault_plan.zero;
    arrivals = Arrival.zero;
  }

(* --- tail quantiles surface in Sim_result --------------------------- *)

let test_tail_quantiles_ordered () =
  let r = Ddbm.Machine.run (small_params ()) in
  let open Ddbm.Sim_result in
  Alcotest.(check bool) "p99 populated" true (r.response_p99 > 0.);
  Alcotest.(check bool) "p999 populated" true (r.response_p999 > 0.);
  Alcotest.(check bool) "p99 >= exact p95" true (r.response_p99 >= r.response_p95);
  Alcotest.(check bool) "p999 >= p99" true (r.response_p999 >= r.response_p99);
  (* the histogram quantile over-reports by at most one bucket width *)
  Alcotest.(check bool)
    "p99 within an order of magnitude of the mean" true
    (r.response_p99 < r.mean_response *. 100.)

let test_csv_has_tail_columns () =
  let header = Ddbm.Sim_result.csv_header in
  List.iter
    (fun col ->
      Alcotest.(check bool)
        (Printf.sprintf "csv header has %s" col)
        true
        (List.exists (String.equal col) (String.split_on_char ',' header)))
    [ "response_p99"; "response_p999" ];
  let r = Ddbm.Machine.run (small_params ()) in
  let row = Ddbm.Sim_result.to_csv_row r in
  Alcotest.(check int)
    "row arity matches header"
    (List.length (String.split_on_char ',' header))
    (List.length (String.split_on_char ',' row))

(* --- registry exposition -------------------------------------------- *)

let run_registry () =
  let m = Ddbm.Machine.create (small_params ()) in
  let _ = Ddbm.Machine.execute m in
  Ddbm.Machine.registry m

let test_prometheus_exposition () =
  let text = Metric.to_prometheus (run_registry ()) in
  let has needle = Astring_contains.contains text needle in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "exposition has %S" needle) true
        (has needle))
    [
      "# TYPE ddbm_commits_total counter";
      "# TYPE ddbm_response_seconds summary";
      "ddbm_response_seconds{quantile=\"0.99\"}";
      "ddbm_response_seconds{quantile=\"0.999\"}";
      "ddbm_response_seconds_count";
      "component=\"t_cpu\"";
      "component=\"t_2pc\"";
      "ddbm_node_cpu_utilization{node=\"0\"}";
      "ddbm_node_disk_queue{node=\"3\"}";
      "ddbm_log_force_seconds";
    ]

let test_json_exposition () =
  let json = Metric.to_json (run_registry ()) in
  (match Test_observability.Json_check.validate json with
  | () -> ()
  | exception Test_observability.Json_check.Bad msg ->
      Alcotest.failf "metrics JSON invalid: %s\n%s" msg json);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "json has %S" needle) true
        (Astring_contains.contains json needle))
    [ "\"p999\""; "\"ddbm_response_seconds\""; "\"buckets\"" ]

(* --- histograms are pure observers ---------------------------------- *)

let test_histograms_off_bit_identical () =
  let params = small_params () in
  let with_h = Ddbm.Machine.run params in
  let m = Ddbm.Machine.create ~histograms:false params in
  let without = Ddbm.Machine.execute m in
  Alcotest.(check (float 0.)) "p99 reads 0 when off" 0.
    without.Ddbm.Sim_result.response_p99;
  Alcotest.(check bool)
    "results identical modulo tail fields" true
    (Ddbm.Sim_result.equal
       { with_h with Ddbm.Sim_result.response_p99 = 0.; response_p999 = 0. }
       without)

let test_per_algorithm_quantiles () =
  (* the tail metrics populate for an optimistic run too, where restarts
     dominate the tail *)
  let r = Ddbm.Machine.run (small_params ~algorithm:Params.Opt ()) in
  Alcotest.(check bool) "opt p999 populated" true
    (r.Ddbm.Sim_result.response_p999 > 0.)

let suite =
  [
    Alcotest.test_case "tail quantiles ordered" `Quick
      test_tail_quantiles_ordered;
    Alcotest.test_case "csv tail columns" `Quick test_csv_has_tail_columns;
    Alcotest.test_case "prometheus exposition" `Quick
      test_prometheus_exposition;
    Alcotest.test_case "json exposition" `Quick test_json_exposition;
    Alcotest.test_case "histograms off is bit-identical" `Quick
      test_histograms_off_bit_identical;
    Alcotest.test_case "opt tail populated" `Quick test_per_algorithm_quantiles;
  ]
