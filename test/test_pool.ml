(* Unit tests for the work-stealing domain pool: deterministic merge
   independent of task order and job count, crash propagation without
   hangs, nested-parallelism rejection, and the jobs=1 serial
   short-circuit. *)

let test_map_matches_serial () =
  let inputs = List.init 100 (fun i -> i) in
  let f i = (i * i) + 7 in
  let expected = List.map f inputs in
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs () in
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d merge equals serial map" jobs)
        expected
        (Par.Pool.map pool f inputs))
    [ 1; 2; 3; 4; 8 ]

let test_map_array_order () =
  let pool = Par.Pool.create ~jobs:4 () in
  let inputs = Array.init 257 string_of_int in
  let out = Par.Pool.map_array pool (fun s -> s ^ "!") inputs in
  Array.iteri
    (fun i s -> Alcotest.(check string) "slot order" (string_of_int i ^ "!") s)
    out

let test_order_independent_merge () =
  (* tasks finish in scrambled order (heavier work at low indices), yet
     the merge is by task index *)
  let pool = Par.Pool.create ~jobs:4 () in
  let spin n =
    let acc = ref 0 in
    for i = 1 to n do
      acc := (!acc + i) mod 7919
    done;
    !acc
  in
  let inputs = List.init 64 (fun i -> i) in
  let f i =
    ignore (Sys.opaque_identity (spin ((64 - i) * 2000)));
    i * 3
  in
  Alcotest.(check (list int))
    "scrambled finish order, ordered merge"
    (List.map (fun i -> i * 3) inputs)
    (Par.Pool.map pool f inputs)

let test_empty_and_singleton () =
  let pool = Par.Pool.create ~jobs:4 () in
  Alcotest.(check (list int)) "empty" [] (Par.Pool.map pool (fun x -> x) []);
  Alcotest.(check (list int))
    "singleton" [ 42 ]
    (Par.Pool.map pool (fun x -> x + 1) [ 41 ])

let test_crash_propagates () =
  (* a single failing task: its exception must come back to the caller
     (no hang, no partial result) at every job count *)
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs () in
      let f i = if i = 17 then failwith "boom" else i in
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d failure propagates" jobs)
        (Failure "boom")
        (fun () -> ignore (Par.Pool.map pool f (List.init 50 Fun.id))))
    [ 1; 2; 4 ]

let test_crash_smallest_index_wins () =
  (* every task fails; cancellation means only a prefix of each worker's
     work actually runs, but whichever failures were recorded, the one
     re-raised must carry the smallest index among tasks that started *)
  let pool = Par.Pool.create ~jobs:4 () in
  let n = 32 in
  let started = Array.init n (fun _ -> Atomic.make false) in
  let f i =
    Atomic.set started.(i) true;
    failwith (string_of_int i)
  in
  match Par.Pool.map pool f (List.init n Fun.id) with
  | _ -> Alcotest.fail "expected a failure to propagate"
  | exception Failure s -> (
      match int_of_string_opt s with
      | None -> Alcotest.failf "unexpected failure payload %S" s
      | Some raised ->
          let smallest = ref None in
          Array.iteri
            (fun i a ->
              if Atomic.get a && !smallest = None then smallest := Some i)
            started;
          Alcotest.(check (option int))
            "re-raised failure has the smallest started index" !smallest
            (Some raised))

let test_nested_parallelism_rejected () =
  let outer = Par.Pool.create ~jobs:2 () in
  let inner = Par.Pool.create ~jobs:2 () in
  Alcotest.check_raises "nested parallel map rejected"
    Par.Pool.Nested_parallelism (fun () ->
      ignore
        (Par.Pool.map outer
           (fun i -> Par.Pool.map inner (fun x -> x) [ i ])
           [ 1; 2; 3; 4 ]))

let test_nested_serial_pool_allowed () =
  (* a jobs=1 pool never spawns domains, so its serial path is legal
     even inside a parallel task *)
  let outer = Par.Pool.create ~jobs:2 () in
  let inner = Par.Pool.create ~jobs:1 () in
  let out =
    Par.Pool.map outer
      (fun i -> List.fold_left ( + ) 0 (Par.Pool.map inner (fun x -> x) [ i; i ]))
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "serial pool nests" [ 2; 4; 6; 8 ] out

let test_jobs1_short_circuits () =
  (* jobs=1 runs every task in the calling domain, in index order *)
  let pool = Par.Pool.create ~jobs:1 () in
  let caller = Domain.self () in
  let order = ref [] in
  let out =
    Par.Pool.map pool
      (fun i ->
        Alcotest.(check bool)
          "task runs in the calling domain" true
          (Domain.self () = caller);
        order := i :: !order;
        i)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results" [ 0; 1; 2; 3 ] out;
  Alcotest.(check (list int)) "index-order execution" [ 0; 1; 2; 3 ]
    (List.rev !order)

let test_create_rejects_zero_jobs () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Par.Pool.create ~jobs:0 ()))

let test_more_jobs_than_tasks () =
  let pool = Par.Pool.create ~jobs:8 () in
  Alcotest.(check (list int))
    "jobs > tasks" [ 10; 20 ]
    (Par.Pool.map pool (fun x -> x * 10) [ 1; 2 ])

let suite =
  [
    Alcotest.test_case "parallel map equals serial map" `Quick
      test_map_matches_serial;
    Alcotest.test_case "map_array preserves slot order" `Quick
      test_map_array_order;
    Alcotest.test_case "merge independent of finish order" `Quick
      test_order_independent_merge;
    Alcotest.test_case "empty and singleton inputs" `Quick
      test_empty_and_singleton;
    Alcotest.test_case "task crash cancels and propagates" `Quick
      test_crash_propagates;
    Alcotest.test_case "smallest-index failure wins" `Quick
      test_crash_smallest_index_wins;
    Alcotest.test_case "nested parallelism rejected" `Quick
      test_nested_parallelism_rejected;
    Alcotest.test_case "nested jobs=1 pool allowed" `Quick
      test_nested_serial_pool_allowed;
    Alcotest.test_case "jobs=1 short-circuits to serial" `Quick
      test_jobs1_short_circuits;
    Alcotest.test_case "create rejects jobs < 1" `Quick
      test_create_rejects_zero_jobs;
    Alcotest.test_case "more jobs than tasks" `Quick test_more_jobs_than_tasks;
  ]
