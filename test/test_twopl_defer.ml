(* 2PL with deferred write locks: writes take no lock during execution,
   exclusive locks are acquired inside prepare, conversion deadlocks at
   prepare time victimize the youngest, and cc_installed reports exactly
   the pages locked exclusively. *)

open Desim
open Ddbm_cc
open Ddbm_model

let mk () =
  let h = Cc_harness.make () in
  (h, Twopl_defer.make h.Cc_harness.hooks)

let spawn_status h f =
  let state = ref `Waiting in
  Engine.spawn h.Cc_harness.eng (fun () ->
      try
        f ();
        state := `Granted
      with Txn.Aborted _ -> state := `Rejected);
  state

let spawn_vote h cc txn =
  let vote = ref None in
  Engine.spawn h.Cc_harness.eng (fun () ->
      vote := Some (cc.Cc_intf.cc_prepare txn));
  vote

let test_write_defers_exclusive_lock () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  (* t0 "writes" p during execution; t1 must still be able to read it *)
  let s0 = spawn_status h (fun () ->
      cc.Cc_intf.cc_read t0 p;
      cc.Cc_intf.cc_write t0 p)
  in
  Cc_harness.settle h;
  let s1 = spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "writer not blocked" true (!s0 = `Granted);
  Alcotest.(check bool) "reader shares during execution" true (!s1 = `Granted);
  Alcotest.(check int) "no exclusive locks yet" 0
    (List.length (cc.Cc_intf.cc_installed t0))

let test_prepare_acquires_and_installs () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let p = Cc_harness.page 1 and q = Cc_harness.page 2 in
  Engine.spawn h.Cc_harness.eng (fun () ->
      cc.Cc_intf.cc_read t0 p;
      cc.Cc_intf.cc_write t0 p;
      cc.Cc_intf.cc_read t0 q);
  Cc_harness.settle h;
  let vote = spawn_vote h cc t0 in
  Cc_harness.settle h;
  Alcotest.(check (option bool)) "votes yes" (Some true) !vote;
  Alcotest.(check (list (pair int int)))
    "only the written page is exclusive"
    [ (0, 1) ]
    (List.map
       (fun pg -> (pg.Ids.Page.file, pg.Ids.Page.index))
       (cc.Cc_intf.cc_installed t0))

let test_prepare_blocks_on_reader () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  Engine.spawn h.Cc_harness.eng (fun () ->
      cc.Cc_intf.cc_read t0 p;
      cc.Cc_intf.cc_write t0 p);
  let s1 = spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "reader shares" true (!s1 = `Granted);
  (* now t0 prepares: its S->X conversion must wait for t1 *)
  let vote = spawn_vote h cc t0 in
  Cc_harness.settle h;
  Alcotest.(check (option bool)) "conversion waits" None !vote;
  Engine.spawn h.Cc_harness.eng (fun () -> cc.Cc_intf.cc_commit t1);
  Cc_harness.settle h;
  Alcotest.(check (option bool)) "granted after reader leaves" (Some true) !vote

let test_prepare_conversion_deadlock_victimizes_youngest () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  (* both read-and-write p during execution (no conflict yet), then both
     prepare: a symmetric upgrade deadlock at commit time *)
  Engine.spawn h.Cc_harness.eng (fun () ->
      cc.Cc_intf.cc_read t0 p;
      cc.Cc_intf.cc_write t0 p);
  Engine.spawn h.Cc_harness.eng (fun () ->
      cc.Cc_intf.cc_read t1 p;
      cc.Cc_intf.cc_write t1 p);
  Cc_harness.settle h;
  Alcotest.(check bool) "execution phase conflict-free" true
    (Cc_harness.requested_aborts h = []);
  let v0 = spawn_vote h cc t0 in
  let v1 = spawn_vote h cc t1 in
  Cc_harness.settle h;
  Alcotest.(check bool) "youngest victimized" true
    (Cc_harness.abort_requested_for h t1);
  Alcotest.(check bool) "oldest spared" false
    (Cc_harness.abort_requested_for h t0);
  (* coordinator aborts the victim; the survivor's prepare completes *)
  Engine.spawn h.Cc_harness.eng (fun () -> cc.Cc_intf.cc_abort t1);
  Cc_harness.settle h;
  Alcotest.(check (option bool)) "survivor votes yes" (Some true) !v0;
  Alcotest.(check (option bool)) "victim votes no" (Some false) !v1

let test_doomed_votes_no_without_locking () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let p = Cc_harness.page 1 in
  Engine.spawn h.Cc_harness.eng (fun () ->
      cc.Cc_intf.cc_read t0 p;
      cc.Cc_intf.cc_write t0 p);
  Cc_harness.settle h;
  t0.Txn.doomed <- true;
  let vote = spawn_vote h cc t0 in
  Cc_harness.settle h;
  Alcotest.(check (option bool)) "doomed votes no" (Some false) !vote;
  Alcotest.(check (list (pair int int))) "nothing installed" []
    (List.map
       (fun pg -> (pg.Ids.Page.file, pg.Ids.Page.index))
       (cc.Cc_intf.cc_installed t0))

let test_abort_clears_write_set () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~attempt:1 ~time:0. () in
  let p = Cc_harness.page 1 in
  Engine.spawn h.Cc_harness.eng (fun () ->
      cc.Cc_intf.cc_read t0 p;
      cc.Cc_intf.cc_write t0 p;
      cc.Cc_intf.cc_abort t0);
  Cc_harness.settle h;
  (* after the abort a re-prepare must find an empty write set and thus
     take no exclusive locks, leaving the page free for others *)
  let t0' = Cc_harness.txn h ~tid:0 ~attempt:2 ~time:2. () in
  let vote = spawn_vote h cc t0' in
  let t1 = Cc_harness.txn h ~tid:1 ~time:3. () in
  let s1 = spawn_status h (fun () ->
      cc.Cc_intf.cc_read t1 p;
      cc.Cc_intf.cc_write t1 p)
  in
  Cc_harness.settle h;
  Alcotest.(check (option bool)) "fresh attempt votes yes" (Some true) !vote;
  Alcotest.(check bool) "page free for the next txn" true (!s1 = `Granted)

let suite =
  [
    Alcotest.test_case "write defers the exclusive lock" `Quick
      test_write_defers_exclusive_lock;
    Alcotest.test_case "prepare acquires and installs" `Quick
      test_prepare_acquires_and_installs;
    Alcotest.test_case "prepare blocks on a reader" `Quick
      test_prepare_blocks_on_reader;
    Alcotest.test_case "prepare conversion deadlock victimizes youngest"
      `Quick test_prepare_conversion_deadlock_victimizes_youngest;
    Alcotest.test_case "doomed txn votes no without locking" `Quick
      test_doomed_votes_no_without_locking;
    Alcotest.test_case "abort clears the write set" `Quick
      test_abort_clears_write_set;
  ]
