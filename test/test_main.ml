let () =
  Alcotest.run "ddbm"
    [
      ("heap", Test_heap.suite);
      ("pool", Test_pool.suite);
      ("rng", Test_rng.suite);
      ("stats", Test_stats.suite);
      ("engine", Test_engine.suite);
      ("cpu", Test_cpu.suite);
      ("cpu-kernel", Test_cpu_kernel.suite);
      ("disk", Test_disk.suite);
      ("sync", Test_sync.suite);
      ("model", Test_model.suite);
      ("wfg", Test_wfg.suite);
      ("lock-table", Test_lock_table.suite);
      ("2pl", Test_twopl.suite);
      ("wound-wait", Test_wound_wait.suite);
      ("bto", Test_bto.suite);
      ("opt", Test_opt.suite);
      ("snoop", Test_snoop.suite);
      ("machine", Test_machine.suite);
      ("experiment", Test_experiment.suite);
      ("audit", Test_audit.suite);
      ("wait-die", Test_wait_die.suite);
      ("replication", Test_replication.suite);
      ("queueing", Test_queueing.suite);
      ("trace", Test_trace.suite);
      ("mailbox", Test_mailbox.suite);
      ("ivar", Test_ivar.suite);
      ("2pl-defer", Test_twopl_defer.suite);
      ("workload", Test_workload.suite);
      ("observability", Test_observability.suite);
      ("conformance", Test_conformance.suite);
      ("parallel", Test_parallel.suite);
      ("faults", Test_faults.suite);
      ("recovery", Test_recovery.suite);
      ("lint", Test_lint.suite);
    ]
