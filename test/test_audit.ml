(* Serializability auditor tests: unit tests of the multiversion
   serialization graph checker, then whole-machine audits proving that
   every concurrency control algorithm produces serializable histories
   under heavy contention. *)

open Ddbm_model

let page i = Ids.Page.make ~file:0 ~index:i

(* --- checker unit tests ------------------------------------------- *)

let mk_txns h n =
  Array.init n (fun i -> Cc_harness.txn h ~tid:i ~time:(float_of_int i) ())

let test_serial_history_ok () =
  let h = Cc_harness.make () in
  let t = mk_txns h 2 in
  let a = Ddbm.Audit.create () in
  (* T0: read p(v0), install p(v1); then T1: read p(v1), install p(v2) *)
  Ddbm.Audit.record_read a t.(0) (page 0);
  Ddbm.Audit.record_install a t.(0) (page 0);
  Ddbm.Audit.record_commit a t.(0);
  Ddbm.Audit.record_read a t.(1) (page 0);
  Ddbm.Audit.record_install a t.(1) (page 0);
  Ddbm.Audit.record_commit a t.(1);
  match Ddbm.Audit.check a with
  | Ok n -> Alcotest.(check int) "2 committed" 2 n
  | Error msg -> Alcotest.fail msg

let test_lost_update_detected () =
  let h = Cc_harness.make () in
  let t = mk_txns h 2 in
  let a = Ddbm.Audit.create () in
  (* classic lost update: both read version 0 of p, both install *)
  Ddbm.Audit.record_read a t.(0) (page 0);
  Ddbm.Audit.record_read a t.(1) (page 0);
  Ddbm.Audit.record_install a t.(0) (page 0);
  Ddbm.Audit.record_commit a t.(0);
  Ddbm.Audit.record_install a t.(1) (page 0);
  Ddbm.Audit.record_commit a t.(1);
  (* T0 -> T1 (ww, wr chain) and T1 -> T0 (rw: T1 read v0, T0 wrote v1) *)
  match Ddbm.Audit.check a with
  | Ok _ -> Alcotest.fail "lost update not detected"
  | Error _ -> ()

let test_write_skew_detected () =
  let h = Cc_harness.make () in
  let t = mk_txns h 2 in
  let a = Ddbm.Audit.create () in
  (* write skew: T0 reads q and writes p; T1 reads p and writes q,
     both reading version 0 *)
  Ddbm.Audit.record_read a t.(0) (page 1);
  Ddbm.Audit.record_read a t.(1) (page 0);
  Ddbm.Audit.record_install a t.(0) (page 0);
  Ddbm.Audit.record_install a t.(1) (page 1);
  Ddbm.Audit.record_commit a t.(0);
  Ddbm.Audit.record_commit a t.(1);
  match Ddbm.Audit.check a with
  | Ok _ -> Alcotest.fail "write skew not detected"
  | Error _ -> ()

let test_aborted_txn_ignored () =
  let h = Cc_harness.make () in
  let t = mk_txns h 2 in
  let a = Ddbm.Audit.create () in
  (* the conflicting reader aborts: history is serializable *)
  Ddbm.Audit.record_read a t.(0) (page 0);
  Ddbm.Audit.record_read a t.(1) (page 0);
  Ddbm.Audit.record_abort a t.(1);
  Ddbm.Audit.record_install a t.(0) (page 0);
  Ddbm.Audit.record_commit a t.(0);
  match Ddbm.Audit.check a with
  | Ok n -> Alcotest.(check int) "1 committed" 1 n
  | Error msg -> Alcotest.fail msg

let test_disjoint_pages_ok () =
  let h = Cc_harness.make () in
  let t = mk_txns h 3 in
  let a = Ddbm.Audit.create () in
  Array.iteri
    (fun i txn ->
      Ddbm.Audit.record_read a txn (page i);
      Ddbm.Audit.record_install a txn (page i);
      Ddbm.Audit.record_commit a txn)
    t;
  match Ddbm.Audit.check a with
  | Ok n -> Alcotest.(check int) "3 committed" 3 n
  | Error msg -> Alcotest.fail msg

(* --- whole-machine audits ------------------------------------------ *)

let audited_run algorithm =
  let d = Params.default in
  let params =
    {
      Params.database =
        { d.Params.database with Params.num_proc_nodes = 4;
          partitioning_degree = 4; file_size = 50 };
      workload =
        { d.Params.workload with Params.think_time = 0.; num_terminals = 48 };
      resources = d.Params.resources;
      cc = { d.Params.cc with Params.algorithm };
      run =
        { Params.seed = 21; warmup = 0.; measure = 60.;
          restart_delay_floor = 0.5; fresh_restart_plan = false };
      durability = Params.default_durability;
      faults = Fault_plan.zero;
      arrivals = Arrival.zero;
    }
  in
  let machine = Ddbm.Machine.create params in
  let audit = Ddbm.Machine.enable_audit machine in
  let result = Ddbm.Machine.execute machine in
  (audit, result)

let test_machine_serializable algorithm () =
  let audit, result = audited_run algorithm in
  Alcotest.(check bool) "contention exercised" true
    (result.Ddbm.Sim_result.commits > 50);
  (* the hot 50-page files guarantee real conflicts for the CC scheme *)
  (match algorithm with
  | Params.Twopl | Params.Wound_wait | Params.Bto | Params.Opt
  | Params.Wait_die | Params.Twopl_defer | Params.O2pl ->
      Alcotest.(check bool) "conflicts occurred" true
        (result.Ddbm.Sim_result.aborts > 0
        || result.Ddbm.Sim_result.blocked_requests > 0)
  | Params.No_dc -> ());
  match Ddbm.Audit.check audit with
  | Ok n ->
      Alcotest.(check bool) "audited all commits" true
        (n >= result.Ddbm.Sim_result.commits)
  | Error msg -> Alcotest.fail msg

let suite =
  [
    Alcotest.test_case "serial history ok" `Quick test_serial_history_ok;
    Alcotest.test_case "lost update detected" `Quick test_lost_update_detected;
    Alcotest.test_case "write skew detected" `Quick test_write_skew_detected;
    Alcotest.test_case "aborted txn ignored" `Quick test_aborted_txn_ignored;
    Alcotest.test_case "disjoint pages ok" `Quick test_disjoint_pages_ok;
    Alcotest.test_case "2PL history serializable" `Slow
      (test_machine_serializable Params.Twopl);
    Alcotest.test_case "WW history serializable" `Slow
      (test_machine_serializable Params.Wound_wait);
    Alcotest.test_case "BTO history serializable" `Slow
      (test_machine_serializable Params.Bto);
    Alcotest.test_case "OPT history serializable" `Slow
      (test_machine_serializable Params.Opt);
    Alcotest.test_case "WD history serializable" `Slow
      (test_machine_serializable Params.Wait_die);
    Alcotest.test_case "2PL-D history serializable" `Slow
      (test_machine_serializable Params.Twopl_defer);
  ]
