(* Durability subsystem: WAL record/digest semantics, jittered backoff,
   crash recovery (redo, presumed abort, re-crash during recovery),
   primary/backup failover, and the no-lost-commit capstone — a sweep of
   random fault plans under which every committed transaction must leave
   durable evidence. *)

open Ddbm_model

(* --- WAL unit tests ------------------------------------------------ *)

(* Run [body] as the sole process of a fresh engine (log forces and
   scans block on the modeled log disk, so they need a process). *)
let in_process body =
  let eng = Desim.Engine.create () in
  let wal =
    Wal.create eng (Desim.Rng.create 7) ~min_time:0.005 ~max_time:0.015
  in
  Desim.Engine.spawn eng (fun () -> body eng wal);
  Desim.Engine.run eng

let test_wal_force_makes_prefix_durable () =
  in_process (fun eng wal ->
      Wal.append wal (Wal.Begin { tid = 1; attempt = 1 });
      Wal.append wal (Wal.Update { tid = 1; attempt = 1; page = Ids.Page.make ~file:0 ~index:0 });
      Wal.append wal (Wal.Prepare { tid = 1; attempt = 1 });
      Alcotest.(check bool) "nothing durable before the force" false
        (Wal.prepared_durable wal ~tid:1 ~attempt:1);
      let t0 = Desim.Engine.now eng in
      Wal.force wal;
      Alcotest.(check bool) "force paid log-disk time" true
        (Desim.Engine.now eng -. t0 >= 0.005);
      Alcotest.(check bool) "prepare durable after the force" true
        (Wal.prepared_durable wal ~tid:1 ~attempt:1);
      Alcotest.(check int) "one force completed" 1 (Wal.forces wal);
      (* Begin only creates the digest entry: the update page and the
         promoted prepare status are the two forced records. *)
      Alcotest.(check int) "update and prepare records forced" 2
        (Wal.forced_records wal);
      Alcotest.(check bool) "utilization accrued" true
        (Wal.busy_time wal > 0.))

let test_wal_crash_drops_volatile_tail () =
  in_process (fun _ wal ->
      Wal.append wal (Wal.Begin { tid = 1; attempt = 1 });
      Wal.append wal (Wal.Update { tid = 1; attempt = 1; page = Ids.Page.make ~file:0 ~index:0 });
      Wal.append wal (Wal.Prepare { tid = 1; attempt = 1 });
      Wal.force wal;
      (* the commit record stays in the volatile tail *)
      Wal.append wal (Wal.Commit { tid = 1; attempt = 1 });
      Wal.on_crash wal;
      Alcotest.(check bool) "durable prepare survives the crash" true
        (Wal.prepared_durable wal ~tid:1 ~attempt:1);
      Alcotest.(check bool) "volatile commit is lost" false
        (Wal.committed_durable wal ~tid:1 ~attempt:1);
      Alcotest.(check (list (pair int int)))
        "the attempt is in doubt"
        [ (1, 1) ]
        (Wal.in_doubt wal);
      Alcotest.(check int) "one update page to redo" 1
        (Wal.redo_pages wal ~tid:1 ~attempt:1))

let test_wal_installed_resolves_doubt () =
  in_process (fun _ wal ->
      Wal.append wal (Wal.Begin { tid = 3; attempt = 2 });
      Wal.append wal (Wal.Update { tid = 3; attempt = 2; page = Ids.Page.make ~file:0 ~index:1 });
      Wal.append wal (Wal.Prepare { tid = 3; attempt = 2 });
      Wal.force wal;
      Wal.mark_installed wal ~tid:3 ~attempt:2;
      Alcotest.(check (list (pair int int)))
        "installed attempts are not in doubt" [] (Wal.in_doubt wal);
      Alcotest.(check bool) "install flag survives a crash" true
        (Wal.on_crash wal;
         Wal.installed wal ~tid:3 ~attempt:2))

let test_wal_checkpoint_prunes_decided () =
  in_process (fun _ wal ->
      Wal.append wal (Wal.Begin { tid = 1; attempt = 1 });
      Wal.append wal (Wal.Update { tid = 1; attempt = 1; page = Ids.Page.make ~file:0 ~index:0 });
      Wal.append wal (Wal.Commit { tid = 1; attempt = 1 });
      Wal.mark_installed wal ~tid:1 ~attempt:1;
      (* an undecided peer must survive the checkpoint *)
      Wal.append wal (Wal.Begin { tid = 2; attempt = 1 });
      Wal.append wal (Wal.Update { tid = 2; attempt = 1; page = Ids.Page.make ~file:0 ~index:2 });
      Wal.append wal (Wal.Prepare { tid = 2; attempt = 1 });
      Wal.append wal (Wal.Checkpoint { active = 1 });
      Wal.force wal;
      Alcotest.(check bool) "decided-and-installed entry pruned" false
        (Wal.tracked wal ~tid:1 ~attempt:1);
      Alcotest.(check bool) "undecided entry survives" true
        (Wal.tracked wal ~tid:2 ~attempt:1))

let test_wal_readonly_not_tracked () =
  in_process (fun _ wal ->
      (* A read-only cohort never logs Begin/Update (the machine gates
         appends on the update footprint); a stray decision record for
         an attempt the log never saw creates no digest entry. *)
      Wal.append wal (Wal.Commit { tid = 9; attempt = 1 });
      Wal.force wal;
      Alcotest.(check bool) "no update footprint, nothing tracked" false
        (Wal.tracked wal ~tid:9 ~attempt:1);
      Alcotest.(check (list (pair int int)))
        "and nothing in doubt" [] (Wal.in_doubt wal))

(* --- jittered backoff ---------------------------------------------- *)

let test_jitter_zero_is_bit_identical () =
  let rng1 = Desim.Rng.create 7 and rng2 = Desim.Rng.create 7 in
  for round = 1 to 8 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "round %d equals plain delay" round)
      (Backoff.delay ~base:0.5 ~cap:4. ~round)
      (Backoff.delay_jittered ~jitter:0. ~rng:rng1 ~base:0.5 ~cap:4. ~round)
  done;
  (* jitter 0 must not consume randomness: the stream is untouched *)
  Alcotest.(check (float 0.)) "no draws consumed" (Desim.Rng.float rng2)
    (Desim.Rng.float rng1)

let test_jitter_bounded_and_deterministic () =
  let deltas seed =
    let rng = Desim.Rng.create seed in
    List.init 100 (fun i ->
        Backoff.delay_jittered ~jitter:0.5 ~rng ~base:0.5 ~cap:4.
          ~round:((i mod 4) + 1))
  in
  let a = deltas 42 and b = deltas 42 in
  Alcotest.(check bool) "same seed, same jitter" true (a = b);
  List.iteri
    (fun i d ->
      let base = Backoff.delay ~base:0.5 ~cap:4. ~round:((i mod 4) + 1) in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d within base*[0.75, 1.25]" i)
        true
        (d >= (base *. 0.75) -. 1e-12 && d <= (base *. 1.25) +. 1e-12))
    a;
  Alcotest.(check bool) "jitter actually varies" true
    (List.exists2 (fun d d' -> not (Float.equal d d')) a (List.tl a @ [ List.hd a ]))

(* --- end-to-end recovery runs -------------------------------------- *)

let durability ?(replicas = 0) ?(log_force = Params.At_prepare) () =
  {
    Params.log_disk = true;
    log_min_time = 0.002;
    log_max_time = 0.006;
    log_force;
    replicas;
  }

let recovery_params ?(algorithm = Params.Twopl) ?(seed = 42)
    ?(faults = Fault_plan.zero) ?(durability = durability ()) () =
  let d = Params.default in
  {
    d with
    Params.database =
      {
        d.Params.database with
        Params.num_proc_nodes = 4;
        partitioning_degree = 4;
      };
    workload =
      { d.Params.workload with Params.num_terminals = 16; think_time = 1.0 };
    cc = { d.Params.cc with Params.algorithm };
    run = { d.Params.run with Params.seed; warmup = 2.0; measure = 20.0 };
    faults;
    durability;
  }

let check_conforming name (r : Ddbm.Sim_result.t) =
  match Ddbm_check.Invariants.check r with
  | [] -> ()
  | errs -> Alcotest.fail (name ^ ": " ^ String.concat "; " errs)

let audited_run params =
  let m = Ddbm.Machine.create params in
  let audit = Ddbm.Machine.enable_audit m in
  let events = ref [] in
  let tracer = Ddbm.Machine.enable_events m in
  Tracer.attach tracer (fun ~time:_ ev -> events := ev :: !events);
  let r = Ddbm.Machine.execute m in
  (match Ddbm.Audit.check audit with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("audit: " ^ msg));
  (r, List.rev !events)

(* Repeated single-node crashes against a lossy network: crashes land in
   every protocol phase, including mid prepare-force. Recovery must
   redo, the termination protocol must finish, and no commit may be
   lost. *)
let crashy_plan =
  {
    Fault_plan.zero with
    Fault_plan.crashes =
      [
        { Fault_plan.target = Ids.Proc 1; at = 5.; duration = 1.5 };
        { Fault_plan.target = Ids.Proc 2; at = 9.; duration = 1. };
        { Fault_plan.target = Ids.Proc 0; at = 14.; duration = 2. };
      ];
    msg_loss = 0.05;
    timeout = 0.5;
    timeout_cap = 2.;
    max_retries = 4;
    fault_seed = 23;
  }

let test_crash_with_wal_recovers () =
  List.iter
    (fun log_force ->
      let r, events =
        audited_run
          (recovery_params ~faults:crashy_plan
             ~durability:(durability ~log_force ()) ())
      in
      let name = Params.log_force_name log_force in
      check_conforming name r;
      Alcotest.(check bool) (name ^ " commits happened") true
        (r.Ddbm.Sim_result.commits > 0);
      Alcotest.(check bool) (name ^ " log forces happened") true
        (r.Ddbm.Sim_result.log_forces > 0);
      Alcotest.(check bool) (name ^ " recoveries ran") true
        (r.Ddbm.Sim_result.recoveries >= 3);
      Alcotest.(check bool) (name ^ " mttr positive") true
        (r.Ddbm.Sim_result.mean_recovery_time > 0.);
      Alcotest.(check int) (name ^ " no commit lost") 0
        r.Ddbm.Sim_result.lost_commits;
      Alcotest.(check int) (name ^ " nothing overdue in doubt") 0
        r.Ddbm.Sim_result.indoubt_overdue_at_end;
      Alcotest.(check bool) (name ^ " recovery events emitted") true
        (List.exists
           (function Event.Recovery_completed _ -> true | _ -> false)
           events))
    [ Params.At_prepare; Params.At_commit ]

(* The same node crashes again while (or shortly after) recovering: the
   abandoned pass must not wedge the machine or double-count installs. *)
let test_double_crash_same_node () =
  let faults =
    {
      Fault_plan.zero with
      Fault_plan.crashes =
        [
          { Fault_plan.target = Ids.Proc 1; at = 5.; duration = 1. };
          { Fault_plan.target = Ids.Proc 1; at = 6.05; duration = 1. };
          { Fault_plan.target = Ids.Proc 1; at = 8.; duration = 1.5 };
        ];
      timeout = 0.5;
      timeout_cap = 2.;
      max_retries = 4;
      fault_seed = 11;
    }
  in
  let r, _ = audited_run (recovery_params ~faults ()) in
  check_conforming "double crash" r;
  Alcotest.(check bool) "commits happened" true (r.Ddbm.Sim_result.commits > 0);
  Alcotest.(check bool) "crashes recorded" true
    (r.Ddbm.Sim_result.node_crashes >= 3);
  Alcotest.(check int) "no commit lost" 0 r.Ddbm.Sim_result.lost_commits;
  Alcotest.(check int) "nothing overdue in doubt" 0
    r.Ddbm.Sim_result.indoubt_overdue_at_end

(* Rate-driven crashes with replication: failovers happen (including
   racing the commit decision — the relocated proxy receives the
   Do_commit meant for its dead primary) and strictly improve on the
   doom-everything baseline. *)
let failover_plan =
  {
    Fault_plan.zero with
    Fault_plan.crash_rate = 0.02;
    mean_repair = 1.5;
    msg_loss = 0.02;
    timeout = 0.5;
    timeout_cap = 2.;
    max_retries = 4;
    fault_seed = 31;
  }

let test_failover_beats_doom_baseline () =
  let run replicas =
    audited_run
      (recovery_params ~faults:failover_plan
         ~durability:(durability ~replicas ()) ())
  in
  let r0, _ = run 0 in
  let r1, events = run 1 in
  check_conforming "replicas=0" r0;
  check_conforming "replicas=1" r1;
  Alcotest.(check int) "no failovers without replicas" 0
    r0.Ddbm.Sim_result.failovers;
  Alcotest.(check bool) "failovers happened" true
    (r1.Ddbm.Sim_result.failovers > 0);
  Alcotest.(check bool) "resurrection events emitted" true
    (List.exists
       (function Event.Cohort_resurrected _ -> true | _ -> false)
       events);
  Alcotest.(check int) "no commit lost with failover" 0
    r1.Ddbm.Sim_result.lost_commits;
  (* the whole point: saved cohorts mean fewer crash-doomed attempts *)
  Alcotest.(check bool)
    (Printf.sprintf "goodput improves (%.2f -> %.2f)"
       r0.Ddbm.Sim_result.goodput r1.Ddbm.Sim_result.goodput)
    true
    (r1.Ddbm.Sim_result.goodput > r0.Ddbm.Sim_result.goodput)

(* Jittered timeouts de-synchronize retries; the run stays conforming
   and deterministic, and jitter 0 remains bit-identical to the
   pre-jitter machine (covered by the faults suite's pins). *)
let test_recovery_runs_replay_exactly () =
  List.iter
    (fun (faults, durability) ->
      let run () = Ddbm.Machine.run (recovery_params ~faults ~durability ()) in
      let a = run () and b = run () in
      match Ddbm.Sim_result.diff a b with
      | [] -> ()
      | diffs ->
          Alcotest.fail
            ("same plan, different runs: " ^ String.concat "; " diffs))
    [
      (crashy_plan, durability ());
      (failover_plan, durability ~replicas:1 ());
      ( { crashy_plan with Fault_plan.timeout_jitter = 0.25 },
        durability ~replicas:1 ~log_force:Params.At_commit () );
    ]

(* --- the capstone sweep -------------------------------------------- *)

(* Random fault plans (crashes, loss, duplication, jitter, replication
   on or off): no committed transaction is ever lost. The count is
   env-capped so CI can dial it down; the default meets the >= 100 bar. *)
let sweep_count () =
  match Sys.getenv_opt "DDBM_RECOVERY_SWEEP" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 100)
  | None -> 100

let random_plan rng =
  let f lo hi = lo +. (Desim.Rng.float rng *. (hi -. lo)) in
  let crashes =
    List.init
      (Desim.Rng.int rng 3)
      (fun _ ->
        {
          Fault_plan.target = Ids.Proc (Desim.Rng.int rng 4);
          at = f 3. 15.;
          duration = f 0.5 2.5;
        })
  in
  {
    Fault_plan.zero with
    Fault_plan.crashes;
    crash_rate = (if Desim.Rng.bool rng ~p:0.5 then f 0.005 0.04 else 0.);
    mean_repair = f 0.5 2.;
    msg_loss = (if Desim.Rng.bool rng ~p:0.5 then f 0.01 0.1 else 0.);
    msg_dup = (if Desim.Rng.bool rng ~p:0.5 then f 0.01 0.05 else 0.);
    msg_delay = f 0. 0.005;
    timeout = 0.5;
    timeout_cap = 2.;
    timeout_jitter = (if Desim.Rng.bool rng ~p:0.5 then f 0.1 0.5 else 0.);
    max_retries = 4;
    fault_seed = Desim.Rng.int rng 1_000_000;
  }

(* Plan generation stays serial (the RNG draws must happen in a fixed
   order regardless of job count); only the independent (seed, params)
   runs fan out over the pool. DDBM_TEST_JOBS sets the job count
   (default 1: plain serial execution in this process). *)
let test_jobs () =
  match Sys.getenv_opt "DDBM_TEST_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1)
  | None -> 1

let test_no_lost_commit_sweep () =
  let rng = Desim.Rng.create 2026 in
  let plans =
    List.init (sweep_count ()) (fun idx ->
        let i = idx + 1 in
        let faults = random_plan rng in
        let faults =
          if Fault_plan.active faults then faults
          else { faults with Fault_plan.msg_loss = 0.02 }
        in
        let replicas = if Desim.Rng.bool rng ~p:0.5 then 1 else 0 in
        let log_force =
          if Desim.Rng.bool rng ~p:0.5 then Params.At_prepare
          else Params.At_commit
        in
        let params =
          recovery_params ~seed:(1000 + i) ~faults
            ~durability:(durability ~replicas ~log_force ())
            ()
        in
        let params =
          {
            params with
            Params.run =
              { params.Params.run with Params.warmup = 1.; measure = 6. };
            workload =
              { params.Params.workload with Params.num_terminals = 8 };
          }
        in
        (i, params))
  in
  let pool = Par.Pool.create ~jobs:(test_jobs ()) () in
  let results =
    Par.Pool.map pool (fun (i, params) -> (i, Ddbm.Machine.run params)) plans
  in
  let lost = ref 0 and checked = ref 0 in
  List.iter
    (fun (i, r) ->
      incr checked;
      lost := !lost + r.Ddbm.Sim_result.lost_commits;
      check_conforming (Printf.sprintf "sweep %d" i) r)
    results;
  Alcotest.(check bool) "sweep ran" true (!checked >= 1);
  Alcotest.(check int)
    (Printf.sprintf "no commit lost across %d random fault plans" !checked)
    0 !lost

let suite =
  [
    Alcotest.test_case "WAL force makes the prefix durable" `Quick
      test_wal_force_makes_prefix_durable;
    Alcotest.test_case "WAL crash drops the volatile tail" `Quick
      test_wal_crash_drops_volatile_tail;
    Alcotest.test_case "WAL installs resolve doubt" `Quick
      test_wal_installed_resolves_doubt;
    Alcotest.test_case "WAL checkpoint prunes decided entries" `Quick
      test_wal_checkpoint_prunes_decided;
    Alcotest.test_case "WAL ignores read-only cohorts" `Quick
      test_wal_readonly_not_tracked;
    Alcotest.test_case "jitter 0 is bit-identical, draw-free" `Quick
      test_jitter_zero_is_bit_identical;
    Alcotest.test_case "jitter bounded and deterministic" `Quick
      test_jitter_bounded_and_deterministic;
    Alcotest.test_case "crashes with WAL recover and lose nothing" `Slow
      test_crash_with_wal_recovers;
    Alcotest.test_case "double crash of one node converges" `Slow
      test_double_crash_same_node;
    Alcotest.test_case "failover beats the doom baseline" `Slow
      test_failover_beats_doom_baseline;
    Alcotest.test_case "recovery-heavy plans replay exactly" `Slow
      test_recovery_runs_replay_exactly;
    Alcotest.test_case "no-lost-commit sweep over random fault plans" `Slow
      test_no_lost_commit_sweep;
  ]
