(* Durability subsystem: WAL record/digest semantics, jittered backoff,
   crash recovery (redo, presumed abort, re-crash during recovery),
   primary/backup failover, and the no-lost-commit capstone — a sweep of
   random fault plans under which every committed transaction must leave
   durable evidence. *)

open Ddbm_model

(* --- WAL unit tests ------------------------------------------------ *)

(* Run [body] as the sole process of a fresh engine (log forces and
   scans block on the modeled log disk, so they need a process). *)
let in_process body =
  let eng = Desim.Engine.create () in
  let wal =
    Wal.create eng (Desim.Rng.create 7) ~min_time:0.005 ~max_time:0.015
  in
  Desim.Engine.spawn eng (fun () -> body eng wal);
  Desim.Engine.run eng

let test_wal_force_makes_prefix_durable () =
  in_process (fun eng wal ->
      Wal.append wal (Wal.Begin { tid = 1; attempt = 1 });
      Wal.append wal (Wal.Update { tid = 1; attempt = 1; page = Ids.Page.make ~file:0 ~index:0 });
      Wal.append wal (Wal.Prepare { tid = 1; attempt = 1 });
      Alcotest.(check bool) "nothing durable before the force" false
        (Wal.prepared_durable wal ~tid:1 ~attempt:1);
      let t0 = Desim.Engine.now eng in
      Wal.force wal;
      Alcotest.(check bool) "force paid log-disk time" true
        (Desim.Engine.now eng -. t0 >= 0.005);
      Alcotest.(check bool) "prepare durable after the force" true
        (Wal.prepared_durable wal ~tid:1 ~attempt:1);
      Alcotest.(check int) "one force completed" 1 (Wal.forces wal);
      (* Begin only creates the digest entry: the update page and the
         promoted prepare status are the two forced records. *)
      Alcotest.(check int) "update and prepare records forced" 2
        (Wal.forced_records wal);
      Alcotest.(check bool) "utilization accrued" true
        (Wal.busy_time wal > 0.))

let test_wal_crash_drops_volatile_tail () =
  in_process (fun _ wal ->
      Wal.append wal (Wal.Begin { tid = 1; attempt = 1 });
      Wal.append wal (Wal.Update { tid = 1; attempt = 1; page = Ids.Page.make ~file:0 ~index:0 });
      Wal.append wal (Wal.Prepare { tid = 1; attempt = 1 });
      Wal.force wal;
      (* the commit record stays in the volatile tail *)
      Wal.append wal (Wal.Commit { tid = 1; attempt = 1 });
      Wal.on_crash wal;
      Alcotest.(check bool) "durable prepare survives the crash" true
        (Wal.prepared_durable wal ~tid:1 ~attempt:1);
      Alcotest.(check bool) "volatile commit is lost" false
        (Wal.committed_durable wal ~tid:1 ~attempt:1);
      Alcotest.(check (list (pair int int)))
        "the attempt is in doubt"
        [ (1, 1) ]
        (Wal.in_doubt wal);
      Alcotest.(check int) "one update page to redo" 1
        (Wal.redo_pages wal ~tid:1 ~attempt:1))

let test_wal_installed_resolves_doubt () =
  in_process (fun _ wal ->
      Wal.append wal (Wal.Begin { tid = 3; attempt = 2 });
      Wal.append wal (Wal.Update { tid = 3; attempt = 2; page = Ids.Page.make ~file:0 ~index:1 });
      Wal.append wal (Wal.Prepare { tid = 3; attempt = 2 });
      Wal.force wal;
      Wal.mark_installed wal ~tid:3 ~attempt:2;
      Alcotest.(check (list (pair int int)))
        "installed attempts are not in doubt" [] (Wal.in_doubt wal);
      Alcotest.(check bool) "install flag survives a crash" true
        (Wal.on_crash wal;
         Wal.installed wal ~tid:3 ~attempt:2))

let test_wal_checkpoint_prunes_decided () =
  in_process (fun _ wal ->
      Wal.append wal (Wal.Begin { tid = 1; attempt = 1 });
      Wal.append wal (Wal.Update { tid = 1; attempt = 1; page = Ids.Page.make ~file:0 ~index:0 });
      Wal.append wal (Wal.Commit { tid = 1; attempt = 1 });
      Wal.mark_installed wal ~tid:1 ~attempt:1;
      (* an undecided peer must survive the checkpoint *)
      Wal.append wal (Wal.Begin { tid = 2; attempt = 1 });
      Wal.append wal (Wal.Update { tid = 2; attempt = 1; page = Ids.Page.make ~file:0 ~index:2 });
      Wal.append wal (Wal.Prepare { tid = 2; attempt = 1 });
      Wal.append wal (Wal.Checkpoint { active = 1 });
      Wal.force wal;
      Alcotest.(check bool) "decided-and-installed entry pruned" false
        (Wal.tracked wal ~tid:1 ~attempt:1);
      Alcotest.(check bool) "undecided entry survives" true
        (Wal.tracked wal ~tid:2 ~attempt:1))

let test_wal_readonly_not_tracked () =
  in_process (fun _ wal ->
      (* A read-only cohort never logs Begin/Update (the machine gates
         appends on the update footprint); a stray decision record for
         an attempt the log never saw creates no digest entry. *)
      Wal.append wal (Wal.Commit { tid = 9; attempt = 1 });
      Wal.force wal;
      Alcotest.(check bool) "no update footprint, nothing tracked" false
        (Wal.tracked wal ~tid:9 ~attempt:1);
      Alcotest.(check (list (pair int int)))
        "and nothing in doubt" [] (Wal.in_doubt wal))

(* --- jittered backoff ---------------------------------------------- *)

let test_jitter_zero_is_bit_identical () =
  let rng1 = Desim.Rng.create 7 and rng2 = Desim.Rng.create 7 in
  for round = 1 to 8 do
    Alcotest.(check (float 0.))
      (Printf.sprintf "round %d equals plain delay" round)
      (Backoff.delay ~base:0.5 ~cap:4. ~round)
      (Backoff.delay_jittered ~jitter:0. ~rng:rng1 ~base:0.5 ~cap:4. ~round)
  done;
  (* jitter 0 must not consume randomness: the stream is untouched *)
  Alcotest.(check (float 0.)) "no draws consumed" (Desim.Rng.float rng2)
    (Desim.Rng.float rng1)

let test_jitter_bounded_and_deterministic () =
  let deltas seed =
    let rng = Desim.Rng.create seed in
    List.init 100 (fun i ->
        Backoff.delay_jittered ~jitter:0.5 ~rng ~base:0.5 ~cap:4.
          ~round:((i mod 4) + 1))
  in
  let a = deltas 42 and b = deltas 42 in
  Alcotest.(check bool) "same seed, same jitter" true (a = b);
  List.iteri
    (fun i d ->
      let base = Backoff.delay ~base:0.5 ~cap:4. ~round:((i mod 4) + 1) in
      Alcotest.(check bool)
        (Printf.sprintf "delay %d within base*[0.75, 1.25]" i)
        true
        (d >= (base *. 0.75) -. 1e-12 && d <= (base *. 1.25) +. 1e-12))
    a;
  Alcotest.(check bool) "jitter actually varies" true
    (List.exists2 (fun d d' -> not (Float.equal d d')) a (List.tl a @ [ List.hd a ]))

(* --- end-to-end recovery runs -------------------------------------- *)

let durability ?(replicas = 0) ?(log_force = Params.At_prepare)
    ?(recovery_jobs = 1) () =
  {
    Params.log_disk = true;
    log_min_time = 0.002;
    log_max_time = 0.006;
    log_force;
    replicas;
    recovery_jobs;
  }

let recovery_params ?(algorithm = Params.Twopl) ?(seed = 42)
    ?(faults = Fault_plan.zero) ?(durability = durability ()) () =
  let d = Params.default in
  {
    d with
    Params.database =
      {
        d.Params.database with
        Params.num_proc_nodes = 4;
        partitioning_degree = 4;
      };
    workload =
      { d.Params.workload with Params.num_terminals = 16; think_time = 1.0 };
    cc = { d.Params.cc with Params.algorithm };
    run = { d.Params.run with Params.seed; warmup = 2.0; measure = 20.0 };
    faults;
    durability;
  }

let check_conforming name (r : Ddbm.Sim_result.t) =
  match Ddbm_check.Invariants.check r with
  | [] -> ()
  | errs -> Alcotest.fail (name ^ ": " ^ String.concat "; " errs)

let audited_run params =
  let m = Ddbm.Machine.create params in
  let audit = Ddbm.Machine.enable_audit m in
  let events = ref [] in
  let tracer = Ddbm.Machine.enable_events m in
  Tracer.attach tracer (fun ~time:_ ev -> events := ev :: !events);
  let r = Ddbm.Machine.execute m in
  (match Ddbm.Audit.check audit with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("audit: " ^ msg));
  (r, List.rev !events)

(* Repeated single-node crashes against a lossy network: crashes land in
   every protocol phase, including mid prepare-force. Recovery must
   redo, the termination protocol must finish, and no commit may be
   lost. *)
let crashy_plan =
  {
    Fault_plan.zero with
    Fault_plan.crashes =
      [
        { Fault_plan.target = Ids.Proc 1; at = 5.; duration = 1.5 };
        { Fault_plan.target = Ids.Proc 2; at = 9.; duration = 1. };
        { Fault_plan.target = Ids.Proc 0; at = 14.; duration = 2. };
      ];
    msg_loss = 0.05;
    timeout = 0.5;
    timeout_cap = 2.;
    max_retries = 4;
    fault_seed = 23;
  }

let test_crash_with_wal_recovers () =
  List.iter
    (fun log_force ->
      let r, events =
        audited_run
          (recovery_params ~faults:crashy_plan
             ~durability:(durability ~log_force ()) ())
      in
      let name = Params.log_force_name log_force in
      check_conforming name r;
      Alcotest.(check bool) (name ^ " commits happened") true
        (r.Ddbm.Sim_result.commits > 0);
      Alcotest.(check bool) (name ^ " log forces happened") true
        (r.Ddbm.Sim_result.log_forces > 0);
      Alcotest.(check bool) (name ^ " recoveries ran") true
        (r.Ddbm.Sim_result.recoveries >= 3);
      Alcotest.(check bool) (name ^ " mttr positive") true
        (r.Ddbm.Sim_result.mean_recovery_time > 0.);
      Alcotest.(check int) (name ^ " no commit lost") 0
        r.Ddbm.Sim_result.lost_commits;
      Alcotest.(check int) (name ^ " nothing overdue in doubt") 0
        r.Ddbm.Sim_result.indoubt_overdue_at_end;
      Alcotest.(check bool) (name ^ " recovery events emitted") true
        (List.exists
           (function Event.Recovery_completed _ -> true | _ -> false)
           events))
    [ Params.At_prepare; Params.At_commit ]

(* The same node crashes again while (or shortly after) recovering: the
   abandoned pass must not wedge the machine or double-count installs. *)
let test_double_crash_same_node () =
  let faults =
    {
      Fault_plan.zero with
      Fault_plan.crashes =
        [
          { Fault_plan.target = Ids.Proc 1; at = 5.; duration = 1. };
          { Fault_plan.target = Ids.Proc 1; at = 6.05; duration = 1. };
          { Fault_plan.target = Ids.Proc 1; at = 8.; duration = 1.5 };
        ];
      timeout = 0.5;
      timeout_cap = 2.;
      max_retries = 4;
      fault_seed = 11;
    }
  in
  let r, _ = audited_run (recovery_params ~faults ()) in
  check_conforming "double crash" r;
  Alcotest.(check bool) "commits happened" true (r.Ddbm.Sim_result.commits > 0);
  Alcotest.(check bool) "crashes recorded" true
    (r.Ddbm.Sim_result.node_crashes >= 3);
  Alcotest.(check int) "no commit lost" 0 r.Ddbm.Sim_result.lost_commits;
  Alcotest.(check int) "nothing overdue in doubt" 0
    r.Ddbm.Sim_result.indoubt_overdue_at_end

(* Rate-driven crashes with replication: failovers happen (including
   racing the commit decision — the relocated proxy receives the
   Do_commit meant for its dead primary) and strictly improve on the
   doom-everything baseline. *)
let failover_plan =
  {
    Fault_plan.zero with
    Fault_plan.crash_rate = 0.02;
    mean_repair = 1.5;
    msg_loss = 0.02;
    timeout = 0.5;
    timeout_cap = 2.;
    max_retries = 4;
    fault_seed = 31;
  }

let test_failover_beats_doom_baseline () =
  let run replicas =
    audited_run
      (recovery_params ~faults:failover_plan
         ~durability:(durability ~replicas ()) ())
  in
  let r0, _ = run 0 in
  let r1, events = run 1 in
  check_conforming "replicas=0" r0;
  check_conforming "replicas=1" r1;
  Alcotest.(check int) "no failovers without replicas" 0
    r0.Ddbm.Sim_result.failovers;
  Alcotest.(check bool) "failovers happened" true
    (r1.Ddbm.Sim_result.failovers > 0);
  Alcotest.(check bool) "resurrection events emitted" true
    (List.exists
       (function Event.Cohort_resurrected _ -> true | _ -> false)
       events);
  Alcotest.(check int) "no commit lost with failover" 0
    r1.Ddbm.Sim_result.lost_commits;
  (* the whole point: saved cohorts mean fewer crash-doomed attempts *)
  Alcotest.(check bool)
    (Printf.sprintf "goodput improves (%.2f -> %.2f)"
       r0.Ddbm.Sim_result.goodput r1.Ddbm.Sim_result.goodput)
    true
    (r1.Ddbm.Sim_result.goodput > r0.Ddbm.Sim_result.goodput)

(* Jittered timeouts de-synchronize retries; the run stays conforming
   and deterministic, and jitter 0 remains bit-identical to the
   pre-jitter machine (covered by the faults suite's pins). *)
let test_recovery_runs_replay_exactly () =
  List.iter
    (fun (faults, durability) ->
      let run () = Ddbm.Machine.run (recovery_params ~faults ~durability ()) in
      let a = run () and b = run () in
      match Ddbm.Sim_result.diff a b with
      | [] -> ()
      | diffs ->
          Alcotest.fail
            ("same plan, different runs: " ^ String.concat "; " diffs))
    [
      (crashy_plan, durability ());
      (failover_plan, durability ~replicas:1 ());
      ( { crashy_plan with Fault_plan.timeout_jitter = 0.25 },
        durability ~replicas:1 ~log_force:Params.At_commit () );
    ]

(* --- dependency-record codec ---------------------------------------- *)

let dep_record_equal (a : Wal.Codec.dep_record) (b : Wal.Codec.dep_record) =
  let pair_eq (x, y) (x', y') = Int.equal x x' && Int.equal y y' in
  Int.equal a.Wal.Codec.tid b.Wal.Codec.tid
  && Int.equal a.Wal.Codec.attempt b.Wal.Codec.attempt
  && Int.equal a.Wal.Codec.lsn b.Wal.Codec.lsn
  && List.equal pair_eq a.Wal.Codec.pages b.Wal.Codec.pages
  && List.equal pair_eq a.Wal.Codec.deps b.Wal.Codec.deps

let print_dep_record (r : Wal.Codec.dep_record) =
  Printf.sprintf "t%d.%d@%d(%dp,%dd)" r.Wal.Codec.tid r.Wal.Codec.attempt
    r.Wal.Codec.lsn
    (List.length r.Wal.Codec.pages)
    (List.length r.Wal.Codec.deps)

let print_dep_log rs = String.concat ";" (List.map print_dep_record rs)

(* Field values are u32 on the wire; keep generators inside that range. *)
let gen_dep_record =
  let open QCheck.Gen in
  let* tid = int_range 0 0xFFFF in
  let* attempt = int_range 1 64 in
  let* lsn = int_range 0 1_000_000 in
  let* pages =
    list_size (int_range 0 8) (pair (int_range 0 31) (int_range 0 4095))
  in
  let* deps =
    list_size (int_range 0 6) (pair (int_range 0 0xFFFF) (int_range 1 64))
  in
  return { Wal.Codec.tid; attempt; lsn; pages; deps }

let gen_dep_log = QCheck.Gen.(list_size (int_range 0 12) gen_dep_record)

let prop_codec_round_trip =
  QCheck.Test.make ~name:"dep-record codec round-trips" ~count:300
    (QCheck.make gen_dep_log ~print:print_dep_log)
    (fun rs ->
      let log = Wal.Codec.encode_log rs in
      let decoded, torn = Wal.Codec.scan_valid log in
      Int.equal torn 0 && List.equal dep_record_equal decoded rs)

(* Cutting the encoded log at any byte leaves exactly the whole frames
   before the cut: the valid prefix is a record prefix, and valid bytes
   plus torn bytes account for every byte kept. *)
let prop_codec_torn_tail =
  QCheck.Test.make ~name:"torn tail truncates to the last valid record"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair (list_size (int_range 1 10) gen_dep_record) (float_bound_inclusive 1.))
       ~print:(fun (rs, frac) ->
         Printf.sprintf "%s cut@%.3f" (print_dep_log rs) frac))
    (fun (rs, frac) ->
      let log = Wal.Codec.encode_log rs in
      let len = String.length log in
      let cut = Stdlib.max 0 (Stdlib.min (len - 1) (int_of_float (frac *. float_of_int len))) in
      let decoded, torn = Wal.Codec.scan_valid (String.sub log 0 cut) in
      let k = List.length decoded in
      k <= List.length rs
      && List.equal dep_record_equal decoded (List.filteri (fun i _ -> i < k) rs)
      && Int.equal (String.length (Wal.Codec.encode_log decoded) + torn) cut)

(* A flipped payload byte fails the frame checksum: the scan keeps
   exactly the records before the corrupt frame and counts the rest as
   torn. *)
let prop_codec_detects_corruption =
  QCheck.Test.make ~name:"corrupt frame stops the scan at its predecessor"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         let* rs = list_size (int_range 1 8) gen_dep_record in
         let* victim = int_range 0 (List.length rs - 1) in
         return (rs, victim))
       ~print:(fun (rs, victim) ->
         Printf.sprintf "%s victim=%d" (print_dep_log rs) victim))
    (fun (rs, victim) ->
      let prefix = List.filteri (fun i _ -> i < victim) rs in
      let before = String.length (Wal.Codec.encode_log prefix) in
      let log = Bytes.of_string (Wal.Codec.encode_log rs) in
      (* first payload byte of the victim frame: magic + u32 length *)
      let p = before + 5 in
      Bytes.set log p (Char.chr (Char.code (Bytes.get log p) lxor 0x5A));
      let decoded, torn = Wal.Codec.scan_valid (Bytes.to_string log) in
      List.equal dep_record_equal decoded prefix
      && Int.equal (before + torn) (Bytes.length log))

(* --- chain partitioner ---------------------------------------------- *)

(* Random transaction sets: distinct keys, small page universe (to force
   sharing), dependency edges both inside and outside the input set. *)
let gen_chain_txns =
  let open QCheck.Gen in
  let* n = int_range 0 20 in
  let gen_txn idx =
    let* pages =
      list_size (int_range 0 4) (pair (int_range 0 15) (int_range 0 7))
    in
    let* deps = list_size (int_range 0 3) (int_range 0 (n + 2)) in
    let* lsn = int_range 0 1000 in
    return
      {
        Wal.Chains.key = (idx, 1);
        pages = List.map (fun (f, i) -> Ids.Page.make ~file:f ~index:i) pages;
        deps = List.map (fun d -> (d, 1)) deps;
        lsn;
      }
  in
  flatten_l (List.init n gen_txn)

let print_chain_txns txns =
  String.concat ";"
    (List.map
       (fun t ->
         let tid, _ = t.Wal.Chains.key in
         Printf.sprintf "t%d@%d(%dp,%dd)" tid t.Wal.Chains.lsn
           (List.length t.Wal.Chains.pages)
           (List.length t.Wal.Chains.deps))
       txns)

let key_compare (t, a) (t', a') =
  match Int.compare t t' with 0 -> Int.compare a a' | c -> c

let prop_chains_partition =
  QCheck.Test.make ~name:"chain partition covers exactly, no cross edges"
    ~count:300
    (QCheck.make gen_chain_txns ~print:print_chain_txns)
    (fun txns ->
      let chains = Wal.Chains.partition txns in
      let input_keys =
        List.sort key_compare (List.map (fun t -> t.Wal.Chains.key) txns)
      in
      let union = List.sort key_compare (List.concat chains) in
      (* union of chains = input key set, each key exactly once *)
      List.equal (fun a b -> Int.equal (key_compare a b) 0) union input_keys
      &&
      let by_key = Hashtbl.create 64 in
      List.iter (fun t -> Hashtbl.replace by_key t.Wal.Chains.key t) txns;
      let chain_of = Hashtbl.create 64 in
      List.iteri
        (fun c members ->
          List.iter (fun k -> Hashtbl.replace chain_of k c) members)
        chains;
      (* no page is written by members of two different chains, and no
         dependency edge inside the input set crosses chains *)
      List.for_all
        (fun t ->
          let c = Hashtbl.find chain_of t.Wal.Chains.key in
          List.for_all
            (fun d ->
              (not (Hashtbl.mem by_key d))
              || Int.equal (Hashtbl.find chain_of d) c)
            t.Wal.Chains.deps
          && List.for_all
               (fun page ->
                 List.for_all
                   (fun t' ->
                     Int.equal (Hashtbl.find chain_of t'.Wal.Chains.key) c
                     || not
                          (List.exists (Ids.Page.equal page)
                             t'.Wal.Chains.pages))
                   txns)
               t.Wal.Chains.pages)
        txns)

(* --- chain-parallel recovery ----------------------------------------- *)

(* Without a crash there is no recovery: the job count is inert and the
   results are bit-identical. *)
let test_recovery_jobs_noop_without_crashes () =
  let run recovery_jobs =
    Ddbm.Machine.run
      (recovery_params ~durability:(durability ~recovery_jobs ()) ())
  in
  let a = run 1 and b = run 4 in
  (* the job count itself lives in Params; neutralize it so the diff
     compares only what the runs measured *)
  let b = { b with Ddbm.Sim_result.params = a.Ddbm.Sim_result.params } in
  match Ddbm.Sim_result.diff a b with
  | [] -> ()
  | diffs ->
      Alcotest.fail ("jobs changed a crash-free run: " ^ String.concat "; " diffs)

(* Chain-parallel recovery is still deterministic: same plan, same
   result, run after run. *)
let test_parallel_recovery_deterministic () =
  let params =
    recovery_params ~faults:crashy_plan
      ~durability:(durability ~recovery_jobs:4 ())
      ()
  in
  let a = Ddbm.Machine.run params and b = Ddbm.Machine.run params in
  match Ddbm.Sim_result.diff a b with
  | [] -> ()
  | diffs ->
      Alcotest.fail
        ("jobs=4 runs differ across replays: " ^ String.concat "; " diffs)

(* The crashy plan drives commit-decided in-doubt transactions through
   the chain path: chains replay, chain lifecycle events fire, and the
   correctness bar (no lost commit) holds exactly as it does serially. *)
let test_parallel_recovery_replays_chains () =
  let run recovery_jobs =
    audited_run
      (recovery_params ~faults:crashy_plan
         ~durability:(durability ~recovery_jobs ())
         ())
  in
  let serial, _ = run 1 in
  let parallel, events = run 4 in
  check_conforming "serial" serial;
  check_conforming "jobs=4" parallel;
  Alcotest.(check int) "serial loses nothing" 0
    serial.Ddbm.Sim_result.lost_commits;
  Alcotest.(check int) "jobs=4 loses nothing" 0
    parallel.Ddbm.Sim_result.lost_commits;
  Alcotest.(check int) "serial never chains" 0
    serial.Ddbm.Sim_result.recovery_chains;
  Alcotest.(check bool) "chains replayed" true
    (parallel.Ddbm.Sim_result.recovery_chains > 0);
  Alcotest.(check int) "nothing degraded without torn tails" 0
    parallel.Ddbm.Sim_result.recovery_degraded;
  Alcotest.(check bool) "chain start events emitted" true
    (List.exists
       (function Event.Recovery_chain_started _ -> true | _ -> false)
       events);
  Alcotest.(check bool) "chain completion events emitted" true
    (List.exists
       (function Event.Recovery_chain_completed _ -> true | _ -> false)
       events)

(* Every crash tears the dropped tail: the dependency DAG is corrupt at
   each recovery, so chain-parallel passes degrade to serial physical
   redo — and still lose nothing. *)
let test_torn_tail_degrades_to_serial () =
  let faults = { crashy_plan with Fault_plan.torn_tail = 1. } in
  let r, _ =
    audited_run
      (recovery_params ~faults ~durability:(durability ~recovery_jobs:4 ()) ())
  in
  check_conforming "torn tail" r;
  Alcotest.(check bool) "tails tore" true (r.Ddbm.Sim_result.wal_torn_tails > 0);
  Alcotest.(check bool) "passes degraded" true
    (r.Ddbm.Sim_result.recovery_degraded > 0);
  (* a crash with an empty volatile tail tears nothing, so a later pass
     may still chain — degradation and chaining are per-pass, not global *)
  Alcotest.(check int) "no commit lost" 0 r.Ddbm.Sim_result.lost_commits;
  Alcotest.(check int) "nothing overdue in doubt" 0
    r.Ddbm.Sim_result.indoubt_overdue_at_end

(* Every recovery pass is interrupted by a second crash: recovery is
   re-entrant and idempotent, so the machine converges and the capstone
   bar still holds. *)
let test_recrash_survives_double_crash () =
  let faults =
    { crashy_plan with Fault_plan.recrash = 1.; mean_repair = 1. }
  in
  let r, _ =
    audited_run
      (recovery_params ~faults ~durability:(durability ~recovery_jobs:4 ()) ())
  in
  check_conforming "recrash" r;
  Alcotest.(check bool) "re-crashes happened beyond the plan" true
    (r.Ddbm.Sim_result.node_crashes > 3);
  Alcotest.(check bool) "some recovery still completed" true
    (r.Ddbm.Sim_result.recoveries > 0);
  Alcotest.(check int) "no commit lost" 0 r.Ddbm.Sim_result.lost_commits;
  Alcotest.(check int) "nothing overdue in doubt" 0
    r.Ddbm.Sim_result.indoubt_overdue_at_end

(* Satellite fix: the recovery checkpoint force joins the same log-force
   latency histogram as the forward path, so with no warmup reset the
   histogram count conserves exactly against Wal.forces. *)
let test_log_force_histogram_conserves () =
  let params = recovery_params ~faults:crashy_plan () in
  let params =
    { params with Params.run = { params.Params.run with Params.warmup = 0. } }
  in
  let m = Ddbm.Machine.create params in
  let r = Ddbm.Machine.execute m in
  Alcotest.(check bool) "recoveries happened" true
    (r.Ddbm.Sim_result.recoveries > 0);
  Alcotest.(check bool) "forces happened" true
    (r.Ddbm.Sim_result.log_forces > 0);
  let count =
    List.find_map
      (fun (fam : Metric.family) ->
        if String.equal fam.Metric.name "ddbm_log_force_seconds" then
          match fam.Metric.samples with
          | { Metric.value = Metric.H h; _ } :: _ ->
              Some (Desim.Stats.Hdr.count h)
          | _ -> None
        else None)
      (Ddbm.Machine.registry m)
  in
  match count with
  | None -> Alcotest.fail "ddbm_log_force_seconds histogram missing"
  | Some n ->
      Alcotest.(check int) "histogram count = completed forces"
        r.Ddbm.Sim_result.log_forces n

(* --- the capstone sweep -------------------------------------------- *)

(* Random fault plans (crashes, loss, duplication, jitter, torn tails,
   crash-during-recovery, replication and chain-parallel recovery on or
   off): no committed transaction is ever lost. The count is env-capped
   so CI can dial it down; the default meets the >= 100 bar. *)
let sweep_count () =
  match Sys.getenv_opt "DDBM_RECOVERY_SWEEP" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 100)
  | None -> 100

let random_plan rng =
  let f lo hi = lo +. (Desim.Rng.float rng *. (hi -. lo)) in
  let crashes =
    List.init
      (Desim.Rng.int rng 3)
      (fun _ ->
        {
          Fault_plan.target = Ids.Proc (Desim.Rng.int rng 4);
          at = f 3. 15.;
          duration = f 0.5 2.5;
        })
  in
  {
    Fault_plan.zero with
    Fault_plan.crashes;
    crash_rate = (if Desim.Rng.bool rng ~p:0.5 then f 0.005 0.04 else 0.);
    mean_repair = f 0.5 2.;
    recrash = (if Desim.Rng.bool rng ~p:0.3 then f 0.1 0.6 else 0.);
    torn_tail = (if Desim.Rng.bool rng ~p:0.3 then f 0.3 1. else 0.);
    msg_loss = (if Desim.Rng.bool rng ~p:0.5 then f 0.01 0.1 else 0.);
    msg_dup = (if Desim.Rng.bool rng ~p:0.5 then f 0.01 0.05 else 0.);
    msg_delay = f 0. 0.005;
    timeout = 0.5;
    timeout_cap = 2.;
    timeout_jitter = (if Desim.Rng.bool rng ~p:0.5 then f 0.1 0.5 else 0.);
    max_retries = 4;
    fault_seed = Desim.Rng.int rng 1_000_000;
  }

(* Plan generation stays serial (the RNG draws must happen in a fixed
   order regardless of job count); only the independent (seed, params)
   runs fan out over the pool. DDBM_TEST_JOBS sets the job count
   (default 1: plain serial execution in this process). *)
let test_jobs () =
  match Sys.getenv_opt "DDBM_TEST_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 1)
  | None -> 1

let test_no_lost_commit_sweep () =
  let rng = Desim.Rng.create 2026 in
  let plans =
    List.init (sweep_count ()) (fun idx ->
        let i = idx + 1 in
        let faults = random_plan rng in
        let faults =
          if Fault_plan.active faults then faults
          else { faults with Fault_plan.msg_loss = 0.02 }
        in
        let replicas = if Desim.Rng.bool rng ~p:0.5 then 1 else 0 in
        let log_force =
          if Desim.Rng.bool rng ~p:0.5 then Params.At_prepare
          else Params.At_commit
        in
        let recovery_jobs = if Desim.Rng.bool rng ~p:0.5 then 4 else 1 in
        let params =
          recovery_params ~seed:(1000 + i) ~faults
            ~durability:(durability ~replicas ~log_force ~recovery_jobs ())
            ()
        in
        let params =
          {
            params with
            Params.run =
              { params.Params.run with Params.warmup = 1.; measure = 6. };
            workload =
              { params.Params.workload with Params.num_terminals = 8 };
          }
        in
        (i, params))
  in
  let pool = Par.Pool.create ~jobs:(test_jobs ()) () in
  let results =
    Par.Pool.map pool (fun (i, params) -> (i, Ddbm.Machine.run params)) plans
  in
  let lost = ref 0 and checked = ref 0 in
  List.iter
    (fun (i, r) ->
      incr checked;
      lost := !lost + r.Ddbm.Sim_result.lost_commits;
      check_conforming (Printf.sprintf "sweep %d" i) r)
    results;
  Alcotest.(check bool) "sweep ran" true (!checked >= 1);
  Alcotest.(check int)
    (Printf.sprintf "no commit lost across %d random fault plans" !checked)
    0 !lost

let suite =
  [
    Alcotest.test_case "WAL force makes the prefix durable" `Quick
      test_wal_force_makes_prefix_durable;
    Alcotest.test_case "WAL crash drops the volatile tail" `Quick
      test_wal_crash_drops_volatile_tail;
    Alcotest.test_case "WAL installs resolve doubt" `Quick
      test_wal_installed_resolves_doubt;
    Alcotest.test_case "WAL checkpoint prunes decided entries" `Quick
      test_wal_checkpoint_prunes_decided;
    Alcotest.test_case "WAL ignores read-only cohorts" `Quick
      test_wal_readonly_not_tracked;
    Alcotest.test_case "jitter 0 is bit-identical, draw-free" `Quick
      test_jitter_zero_is_bit_identical;
    Alcotest.test_case "jitter bounded and deterministic" `Quick
      test_jitter_bounded_and_deterministic;
    Alcotest.test_case "crashes with WAL recover and lose nothing" `Slow
      test_crash_with_wal_recovers;
    Alcotest.test_case "double crash of one node converges" `Slow
      test_double_crash_same_node;
    Alcotest.test_case "failover beats the doom baseline" `Slow
      test_failover_beats_doom_baseline;
    Alcotest.test_case "recovery-heavy plans replay exactly" `Slow
      test_recovery_runs_replay_exactly;
    QCheck_alcotest.to_alcotest prop_codec_round_trip;
    QCheck_alcotest.to_alcotest prop_codec_torn_tail;
    QCheck_alcotest.to_alcotest prop_codec_detects_corruption;
    QCheck_alcotest.to_alcotest prop_chains_partition;
    Alcotest.test_case "recovery jobs are inert without crashes" `Slow
      test_recovery_jobs_noop_without_crashes;
    Alcotest.test_case "chain-parallel recovery is deterministic" `Slow
      test_parallel_recovery_deterministic;
    Alcotest.test_case "chain-parallel recovery replays chains" `Slow
      test_parallel_recovery_replays_chains;
    Alcotest.test_case "torn tails degrade recovery to serial" `Slow
      test_torn_tail_degrades_to_serial;
    Alcotest.test_case "recrash double-crash still loses nothing" `Slow
      test_recrash_survives_double_crash;
    Alcotest.test_case "log-force histogram conserves" `Slow
      test_log_force_histogram_conserves;
    Alcotest.test_case "no-lost-commit sweep over random fault plans" `Slow
      test_no_lost_commit_sweep;
  ]
