(* Tests for the machine-model substrate: ids, timestamps, parameters,
   catalog layouts, plans, workload generation. *)

open Ddbm_model

let mk_ts time uniq = { Timestamp.time; uniq }

let test_timestamp_order () =
  Alcotest.(check bool) "time dominates" true
    (Timestamp.compare (mk_ts 1. 5) (mk_ts 2. 0) < 0);
  Alcotest.(check bool) "uniq breaks ties" true
    (Timestamp.compare (mk_ts 1. 0) (mk_ts 1. 1) < 0);
  Alcotest.(check bool) "equal" true (Timestamp.equal (mk_ts 1. 1) (mk_ts 1. 1))

let test_clock_unique () =
  let clock = Timestamp.Clock.create () in
  let a = Timestamp.Clock.make clock ~time:5. in
  let b = Timestamp.Clock.make clock ~time:5. in
  Alcotest.(check bool) "same time, distinct" false (Timestamp.equal a b);
  Alcotest.(check bool) "allocation order" true (Timestamp.compare a b < 0)

let test_params_default_valid () =
  match Params.validate Params.default with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let invalid cases =
  List.iter
    (fun (name, params) ->
      match Params.validate params with
      | Ok () -> Alcotest.fail (name ^ ": expected validation error")
      | Error _ -> ())
    cases

let test_params_validation_rejects () =
  let d = Params.default in
  invalid
    [
      ( "zero nodes",
        {
          d with
          Params.database = { d.Params.database with Params.num_proc_nodes = 0 };
        } );
      ( "degree > nodes",
        {
          d with
          Params.database =
            {
              d.Params.database with
              Params.num_proc_nodes = 4;
              partitioning_degree = 8;
            };
        } );
      ( "degree does not divide partitions",
        {
          d with
          Params.database =
            { d.Params.database with Params.partitioning_degree = 3 };
        } );
      ( "negative think",
        {
          d with
          Params.workload = { d.Params.workload with Params.think_time = -1. };
        } );
      ( "bad write prob",
        {
          d with
          Params.workload = { d.Params.workload with Params.write_prob = 1.5 };
        } );
      ( "disk times inverted",
        {
          d with
          Params.resources =
            {
              d.Params.resources with
              Params.min_disk_time = 0.05;
              max_disk_time = 0.01;
            };
        } );
    ]

let db ~nodes ~degree =
  {
    Params.default.Params.database with
    Params.num_proc_nodes = nodes;
    partitioning_degree = degree;
  }

let test_catalog_one_node () =
  let c = Catalog.create (db ~nodes:1 ~degree:1) in
  for f = 0 to Catalog.num_files c - 1 do
    Alcotest.(check bool) "all files at node 0" true
      (match Catalog.node_of c ~file:f with
      | Ids.Proc 0 -> true
      | Ids.Proc _ | Ids.Host -> false)
  done

let test_catalog_full_decluster () =
  let c = Catalog.create (db ~nodes:8 ~degree:8) in
  (* every relation spans all 8 nodes, one partition per node *)
  for relation = 0 to 7 do
    let nodes = Catalog.nodes_of_relation c ~relation in
    Alcotest.(check int)
      (Printf.sprintf "relation %d spans 8 nodes" relation)
      8 (List.length nodes)
  done

let test_catalog_one_way_on_8 () =
  let c = Catalog.create (db ~nodes:8 ~degree:1) in
  for relation = 0 to 7 do
    match Catalog.nodes_of_relation c ~relation with
    | [ Ids.Proc n ] ->
        Alcotest.(check int) "relation i at node i" relation n
    | _ -> Alcotest.fail "1-way relation must live at exactly one node"
  done

let test_catalog_balanced_load () =
  (* with the rotation, every node stores the same number of files for
     every degree *)
  List.iter
    (fun degree ->
      let c = Catalog.create (db ~nodes:8 ~degree) in
      let counts = Array.make 8 0 in
      for f = 0 to Catalog.num_files c - 1 do
        match Catalog.node_of c ~file:f with
        | Ids.Proc n -> counts.(n) <- counts.(n) + 1
        | Ids.Host -> Alcotest.fail "file at host"
      done;
      Array.iter
        (fun n ->
          Alcotest.(check int)
            (Printf.sprintf "degree %d balanced" degree)
            8 n)
        counts)
    [ 1; 2; 4; 8 ]

let test_catalog_balanced_on_16_nodes () =
  (* more nodes than relations (footnote 7's 16-node machine): the
     placement must still use and balance every node *)
  let c =
    Catalog.create
      {
        (db ~nodes:16 ~degree:8) with
        Params.num_proc_nodes = 16;
        partitioning_degree = 8;
      }
  in
  let counts = Array.make 16 0 in
  for f = 0 to Catalog.num_files c - 1 do
    match Catalog.node_of c ~file:f with
    | Ids.Proc n -> counts.(n) <- counts.(n) + 1
    | Ids.Host -> Alcotest.fail "file at host"
  done;
  Array.iteri
    (fun n count ->
      Alcotest.(check int) (Printf.sprintf "node %d balanced" n) 4 count)
    counts

let test_catalog_degree_chunks () =
  let c = Catalog.create (db ~nodes:8 ~degree:4) in
  (* relation 0: chunks of 2 partitions on 4 distinct nodes *)
  let nodes = Catalog.nodes_of_relation c ~relation:0 in
  Alcotest.(check int) "4 nodes" 4 (List.length nodes);
  List.iter
    (fun node_ref ->
      match node_ref with
      | Ids.Proc n ->
          Alcotest.(check int)
            "two files per node"
            2
            (List.length (Catalog.files_at c ~relation:0 ~node:n))
      | Ids.Host -> Alcotest.fail "host cannot hold files")
    nodes

let mk_workload ?(nodes = 8) ?(degree = 8) () =
  let params =
    {
      Params.default with
      Params.database = db ~nodes ~degree;
    }
  in
  let catalog = Catalog.create params.Params.database in
  Workload.create params catalog (Desim.Rng.create 7)

let test_plan_structure () =
  let w = mk_workload () in
  for terminal = 0 to 127 do
    let plan = Workload.generate_plan w ~terminal in
    let expected_relation = terminal / 16 in
    Alcotest.(check int) "terminal group" expected_relation plan.Plan.relation;
    Alcotest.(check int) "8 cohorts" 8 (Plan.num_cohorts plan)
  done

let test_plan_page_counts () =
  let w = mk_workload () in
  for terminal = 0 to 40 do
    let plan = Workload.generate_plan w ~terminal in
    List.iter
      (fun (c : Plan.cohort_plan) ->
        let n = List.length c.Plan.ops in
        (* one partition per cohort at degree 8: 4..12 pages *)
        if n < 4 || n > 12 then
          Alcotest.fail (Printf.sprintf "cohort has %d pages" n))
      plan.Plan.cohorts
  done

let test_plan_pages_distinct () =
  let w = mk_workload () in
  let plan = Workload.generate_plan w ~terminal:3 in
  List.iter
    (fun (c : Plan.cohort_plan) ->
      let pages = List.map (fun op -> op.Plan.page) c.Plan.ops in
      let sorted = List.sort_uniq Ids.Page.compare pages in
      Alcotest.(check int) "no duplicate pages" (List.length pages)
        (List.length sorted))
    plan.Plan.cohorts

let test_plan_write_fraction () =
  let w = mk_workload () in
  let reads = ref 0 and writes = ref 0 in
  for terminal = 0 to 127 do
    for _ = 1 to 20 do
      let plan = Workload.generate_plan w ~terminal in
      reads := !reads + Plan.total_reads plan;
      writes := !writes + Plan.total_writes plan
    done
  done;
  let frac = float_of_int !writes /. float_of_int !reads in
  Alcotest.(check bool)
    (Printf.sprintf "write fraction %.3f near 0.25" frac)
    true
    (abs_float (frac -. 0.25) < 0.02)

let test_plan_mean_size () =
  let w = mk_workload () in
  let total = ref 0 and n = ref 0 in
  for terminal = 0 to 127 do
    for _ = 1 to 20 do
      let plan = Workload.generate_plan w ~terminal in
      total := !total + Plan.total_reads plan;
      incr n
    done
  done;
  let mean = float_of_int !total /. float_of_int !n in
  Alcotest.(check bool)
    (Printf.sprintf "mean reads %.1f near 64" mean)
    true
    (abs_float (mean -. 64.) < 2.)

let test_plan_sequential_degree1 () =
  let w = mk_workload ~degree:1 () in
  let plan = Workload.generate_plan w ~terminal:17 in
  Alcotest.(check int) "single cohort" 1 (Plan.num_cohorts plan);
  let c = List.hd plan.Plan.cohorts in
  Alcotest.(check int) "cohort at relation's node" 1 c.Plan.node

let test_txn_seniority () =
  let clock = Timestamp.Clock.create () in
  let mk tid time =
    {
      Txn.tid;
      attempt = 1;
      origin_time = time;
      attempt_time = time;
      startup_ts = Timestamp.Clock.make clock ~time;
      cc_ts = Timestamp.Clock.make clock ~time;
      commit_ts = None;
      plan = { Plan.relation = 0; cohorts = [] };
      phase = Txn.Working;
      doomed = false;
    }
  in
  let a = mk 1 1.0 and b = mk 2 2.0 in
  Alcotest.(check bool) "a older than b" true (Txn.older a b);
  Alcotest.(check bool) "b not older than a" false (Txn.older b a);
  Alcotest.(check bool) "not older than self" false (Txn.older a a)

let test_txn_phase () =
  let clock = Timestamp.Clock.create () in
  let ts = Timestamp.Clock.make clock ~time:0. in
  let txn =
    {
      Txn.tid = 1;
      attempt = 1;
      origin_time = 0.;
      attempt_time = 0.;
      startup_ts = ts;
      cc_ts = ts;
      commit_ts = None;
      plan = { Plan.relation = 0; cohorts = [] };
      phase = Txn.Working;
      doomed = false;
    }
  in
  Alcotest.(check bool) "working not 2nd phase" false (Txn.in_second_phase txn);
  txn.Txn.phase <- Txn.Voting;
  Alcotest.(check bool) "voting not 2nd phase" false (Txn.in_second_phase txn);
  txn.Txn.phase <- Txn.Decided_commit;
  Alcotest.(check bool) "decided commit is 2nd phase" true
    (Txn.in_second_phase txn)

let prop_catalog_node_in_range =
  QCheck.Test.make ~name:"catalog nodes in range" ~count:100
    QCheck.(pair (int_range 1 8) (int_range 0 2))
    (fun (nodes, degree_exp) ->
      let degree = Stdlib.min nodes (1 lsl degree_exp) in
      if 8 mod degree <> 0 then true
      else begin
        let c = Catalog.create (db ~nodes ~degree) in
        let ok = ref true in
        for f = 0 to Catalog.num_files c - 1 do
          match Catalog.node_of c ~file:f with
          | Ids.Proc n -> if n < 0 || n >= nodes then ok := false
          | Ids.Host -> ok := false
        done;
        !ok
      end)

let suite =
  [
    Alcotest.test_case "timestamp order" `Quick test_timestamp_order;
    Alcotest.test_case "clock uniqueness" `Quick test_clock_unique;
    Alcotest.test_case "default params valid" `Quick test_params_default_valid;
    Alcotest.test_case "validation rejects" `Quick test_params_validation_rejects;
    Alcotest.test_case "catalog 1-node" `Quick test_catalog_one_node;
    Alcotest.test_case "catalog 8-way" `Quick test_catalog_full_decluster;
    Alcotest.test_case "catalog 1-way on 8" `Quick test_catalog_one_way_on_8;
    Alcotest.test_case "catalog balanced" `Quick test_catalog_balanced_load;
    Alcotest.test_case "catalog 4-way chunks" `Quick test_catalog_degree_chunks;
    Alcotest.test_case "catalog balanced on 16 nodes" `Quick
      test_catalog_balanced_on_16_nodes;
    Alcotest.test_case "plan structure" `Quick test_plan_structure;
    Alcotest.test_case "plan page counts" `Quick test_plan_page_counts;
    Alcotest.test_case "plan pages distinct" `Quick test_plan_pages_distinct;
    Alcotest.test_case "plan write fraction" `Slow test_plan_write_fraction;
    Alcotest.test_case "plan mean size" `Slow test_plan_mean_size;
    Alcotest.test_case "plan degree-1" `Quick test_plan_sequential_degree1;
    Alcotest.test_case "txn seniority" `Quick test_txn_seniority;
    Alcotest.test_case "txn phase" `Quick test_txn_phase;
    QCheck_alcotest.to_alcotest prop_catalog_node_in_range;
  ]
