(* Property tests for the workload source: on random configurations,
   generated plans must respect the partitioning bounds (cohorts only at
   nodes holding the terminal's relation, accesses only to files stored
   there), page ranges (indices inside the file, counts inside the
   footnote-12 window), ascending distinct page order, replication
   discipline for apply_ops, and per-terminal common-random-numbers
   determinism. *)

open Ddbm_model

let make_workload params =
  let catalog = Catalog.create params.Params.database in
  let rng = Desim.Rng.create params.Params.run.Params.seed in
  (catalog, Workload.create params catalog rng)

let proc_nodes catalog ~relation =
  List.filter_map
    (function Ids.Proc n -> Some n | Ids.Host -> None)
    (Catalog.nodes_of_relation catalog ~relation)

(* Check one plan thoroughly; returns an error description or None. *)
let plan_errors params catalog ~terminal ~relation (plan : Plan.t) =
  let d = params.Params.database and w = params.Params.workload in
  let err = ref [] in
  let add fmt = Printf.ksprintf (fun s -> err := s :: !err) fmt in
  if plan.Plan.relation <> relation then
    add "terminal %d: plan relation %d <> %d" terminal plan.Plan.relation
      relation;
  let primary_nodes = proc_nodes catalog ~relation in
  (* primary cohorts (nonempty ops) must sit exactly at the relation's
     nodes; update-only cohorts may appear elsewhere under replication *)
  let cohort_nodes =
    List.filter_map
      (fun (c : Plan.cohort_plan) ->
        if c.Plan.ops <> [] then Some c.Plan.node else None)
      plan.Plan.cohorts
  in
  if List.sort Int.compare cohort_nodes <> List.sort Int.compare primary_nodes then
    add "terminal %d: primary cohorts at nodes [%s], expected [%s]" terminal
      (String.concat ";" (List.map string_of_int cohort_nodes))
      (String.concat ";" (List.map string_of_int primary_nodes));
  let lo_count = Stdlib.max 1 (w.Params.pages_per_partition / 2) in
  let hi_count =
    Stdlib.min (3 * w.Params.pages_per_partition / 2) d.Params.file_size
  in
  List.iter
    (fun (c : Plan.cohort_plan) ->
      let files_here =
        Catalog.files_at catalog ~relation ~node:c.Plan.node
      in
      (* group the cohort's ops by file, preserving op order *)
      let by_file = Hashtbl.create 4 in
      List.iter
        (fun (op : Plan.page_op) ->
          let f = op.Plan.page.Ids.Page.file in
          if not (List.mem f files_here) then
            add "terminal %d node %d: access to file %d not stored there"
              terminal c.Plan.node f;
          let idx = op.Plan.page.Ids.Page.index in
          if idx < 0 || idx >= d.Params.file_size then
            add "terminal %d: page index %d outside [0,%d)" terminal idx
              d.Params.file_size;
          Hashtbl.replace by_file f
            (idx :: Option.value ~default:[] (Hashtbl.find_opt by_file f)))
        c.Plan.ops;
      (* every file of this node's share is visited, with an in-window
         count of ascending distinct pages *)
      List.iter
        (fun f ->
          match Hashtbl.find_opt by_file f with
          | None -> add "terminal %d node %d: file %d never accessed" terminal c.Plan.node f
          | Some rev_indices ->
              let indices = List.rev rev_indices in
              let k = List.length indices in
              if k < lo_count || k > hi_count then
                add "terminal %d file %d: %d pages outside [%d,%d]" terminal f
                  k lo_count hi_count;
              let rec ascending = function
                | a :: (b :: _ as rest) -> a < b && ascending rest
                | _ -> true
              in
              if not (ascending indices) then
                add "terminal %d file %d: pages not ascending-distinct"
                  terminal f)
        files_here;
      if d.Params.replication = 1 && c.Plan.apply_ops <> [] then
        add "terminal %d node %d: apply_ops without replication" terminal
          c.Plan.node;
      (* an apply site must hold a copy of the file and never be the
         page's own primary cohort *)
      List.iter
        (fun (p : Ids.Page.t) ->
          let copies = Catalog.copy_nodes catalog ~file:p.Ids.Page.file in
          if not (List.mem c.Plan.node copies) then
            add "terminal %d node %d: applies page of file %d without a copy"
              terminal c.Plan.node p.Ids.Page.file)
        c.Plan.apply_ops)
    plan.Plan.cohorts;
  (* under replication, every updated page must be applied at every other
     copy site *)
  if d.Params.replication > 1 then
    List.iter
      (fun (c : Plan.cohort_plan) ->
        List.iter
          (fun (op : Plan.page_op) ->
            if op.Plan.update then
              let copies =
                Catalog.copy_nodes catalog ~file:op.Plan.page.Ids.Page.file
              in
              List.iter
                (fun copy ->
                  if copy <> c.Plan.node then
                    let applied =
                      List.exists
                        (fun (c' : Plan.cohort_plan) ->
                          c'.Plan.node = copy
                          && List.mem op.Plan.page c'.Plan.apply_ops)
                        plan.Plan.cohorts
                    in
                    if not applied then
                      add
                        "terminal %d: update of file %d page %d not applied \
                         at copy node %d"
                        terminal op.Plan.page.Ids.Page.file
                        op.Plan.page.Ids.Page.index copy)
                copies)
          c.Plan.ops)
      plan.Plan.cohorts;
  List.rev !err

let prop_plans_well_formed =
  QCheck.Test.make ~name:"plans respect partitioning bounds and page ranges"
    ~count:100 Ddbm_check.Config_gen.arbitrary (fun params ->
      let catalog, workload = make_workload params in
      let terminals = params.Params.workload.Params.num_terminals in
      let errors = ref [] in
      for terminal = 0 to terminals - 1 do
        let relation = Workload.relation_of_terminal workload ~terminal in
        (* several plans per terminal to exercise the stream *)
        for _ = 1 to 3 do
          let plan = Workload.generate_plan workload ~terminal in
          errors := plan_errors params catalog ~terminal ~relation plan @ !errors
        done
      done;
      match !errors with
      | [] -> true
      | errs -> QCheck.Test.fail_report (String.concat "\n" errs))

let prop_streams_deterministic_per_terminal =
  QCheck.Test.make
    ~name:"per-terminal plan streams are a pure function of the seed"
    ~count:50 Ddbm_check.Config_gen.arbitrary (fun params ->
      let _, w1 = make_workload params in
      let _, w2 = make_workload params in
      Workload.enable_fingerprints w1;
      Workload.enable_fingerprints w2;
      let terminals = params.Params.workload.Params.num_terminals in
      (* generate in different per-terminal interleavings: the streams
         must not influence each other *)
      for terminal = 0 to terminals - 1 do
        for _ = 1 to 2 do
          ignore (Workload.generate_plan w1 ~terminal)
        done
      done;
      for round = 1 to 2 do
        ignore round;
        for terminal = terminals - 1 downto 0 do
          ignore (Workload.generate_plan w2 ~terminal)
        done
      done;
      Workload.fingerprints w1 = Workload.fingerprints w2)

let test_page_count_window () =
  let params = Params.default in
  let _, w = make_workload params in
  let rng = Desim.Rng.create 42 in
  let mean = params.Params.workload.Params.pages_per_partition in
  let lo = Stdlib.max 1 (mean / 2) and hi = 3 * mean / 2 in
  for _ = 1 to 1_000 do
    let k = Workload.draw_page_count w rng in
    if k < lo || k > hi then
      Alcotest.failf "page count %d outside [%d,%d]" k lo hi
  done

let test_fingerprint_sensitive_to_structure () =
  let p1 = Ids.Page.make ~file:0 ~index:1 in
  let base =
    {
      Plan.relation = 0;
      cohorts =
        [ { Plan.node = 0; ops = [ { Plan.page = p1; update = false } ]; apply_ops = [] } ];
    }
  in
  let updated =
    {
      Plan.relation = 0;
      cohorts =
        [ { Plan.node = 0; ops = [ { Plan.page = p1; update = true } ]; apply_ops = [] } ];
    }
  in
  Alcotest.(check bool) "update flag changes the fingerprint" false
    (Workload.plan_fingerprint base = Workload.plan_fingerprint updated);
  Alcotest.(check int) "fingerprint is stable"
    (Workload.plan_fingerprint base)
    (Workload.plan_fingerprint base)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_plans_well_formed;
    QCheck_alcotest.to_alcotest prop_streams_deterministic_per_terminal;
    Alcotest.test_case "page counts stay in the footnote-12 window" `Quick
      test_page_count_window;
    Alcotest.test_case "fingerprint reflects plan structure" `Quick
      test_fingerprint_sensitive_to_structure;
  ]
