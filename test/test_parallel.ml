(* Differential determinism of parallel execution: every per-seed
   Sim_result produced through the pool must be bit-identical to serial
   execution, and the pinned golden trace must be byte-exact when the
   traced run executes inside a worker domain. *)

open Ddbm_model

(* Env-capped so CI can dial coverage up (the default keeps the local
   runtest fast). *)
let config_count () =
  match Sys.getenv_opt "DDBM_PARALLEL_CONFIGS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 6)
  | None -> 6

(* Deterministically generated configuration set: the explicitly seeded
   state makes the points reproducible across runs and job counts. *)
let gen_configs n =
  let rand = Random.State.make [| 0xD1FF |] (* lint: allow ambient *) in
  List.init n (fun _ -> QCheck.Gen.generate1 ~rand Ddbm_check.Config_gen.gen)

let test_serial_vs_jobs () =
  let points = gen_configs (config_count ()) in
  let serial = List.map Ddbm.Machine.run points in
  List.iter
    (fun jobs ->
      let pool = Par.Pool.create ~jobs () in
      let parallel = Par.Pool.map pool Ddbm.Machine.run points in
      List.iteri
        (fun i (a, b) ->
          match Ddbm.Sim_result.diff a b with
          | [] -> ()
          | diffs ->
              Alcotest.failf
                "config %d (seed %d) diverged at jobs=%d:\n%s" i
                b.Ddbm.Sim_result.params.Params.run.Params.seed jobs
                (String.concat "\n" diffs))
        (List.combine serial parallel))
    [ 2; 4; 8 ]

let test_replicates_serial_vs_jobs () =
  (* same config, many seeds — the shape of every figure sweep *)
  let params seed =
    Ddbm.Experiment.params_of_config ~profile:Ddbm.Experiment.Quick ~seed
      {
        Ddbm.Experiment.base_config with
        Ddbm.Experiment.think = 8.;
        terminals = 32;
        nodes = 4;
        degree = 4;
      }
  in
  let points = List.init 8 (fun i -> params (i + 1)) in
  let serial = List.map Ddbm.Machine.run points in
  let pool = Par.Pool.create ~jobs:4 () in
  let parallel = Par.Pool.map pool Ddbm.Machine.run points in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d bit-identical" (i + 1))
        true
        (Ddbm.Sim_result.equal a b))
    (List.combine serial parallel)

let test_prefilled_cache_matches_serial () =
  (* the figure path: a pool-prefilled cache must hold exactly the
     results a serial cache computes *)
  let thinks = [ 0.; 8. ] in
  let gens =
    List.filter (fun (id, _) -> String.equal id "fig2") Ddbm.Figures.all
  in
  let profile = Ddbm.Experiment.Quick in
  let serial_cache = Ddbm.Experiment.create_cache () in
  List.iter
    (fun (_, g) -> ignore (g serial_cache ~profile ~thinks : Ddbm.Figure.t))
    gens;
  let par_cache = Ddbm.Experiment.create_cache () in
  let pool = Par.Pool.create ~jobs:4 () in
  let runs = Ddbm.Figures.prefill_cache par_cache pool ~profile ~thinks gens in
  Alcotest.(check int)
    "prefill runs everything the serial pass ran" serial_cache.Ddbm.Experiment.runs
    runs;
  (* per-entry assertions only, no order dependence *)
  Hashtbl.iter (* lint: allow hashtbl-order *)
    (fun params r ->
      match Hashtbl.find_opt par_cache.Ddbm.Experiment.table params with
      | None -> Alcotest.fail "parallel cache is missing a serial run"
      | Some r' ->
          Alcotest.(check bool)
            "cached result bit-identical" true
            (Ddbm.Sim_result.equal r r'))
    serial_cache.Ddbm.Experiment.table

let test_golden_trace_parallel () =
  (* byte-equality of the pinned Chrome trace when the traced run
     executes inside a worker domain (two tasks, jobs=2: one runs on the
     spawned domain) *)
  let path =
    if Sys.file_exists "golden/trace_tiny.json" then "golden/trace_tiny.json"
    else "test/golden/trace_tiny.json"
  in
  let ic = open_in_bin path in
  let expected = In_channel.input_all ic in
  close_in ic;
  let pool = Par.Pool.create ~jobs:2 () in
  let traces =
    Par.Pool.map pool
      (fun () -> Test_observability.golden_chrome ())
      [ (); () ]
  in
  List.iteri
    (fun i actual ->
      if not (String.equal expected actual) then
        Alcotest.failf
          "golden trace task %d diverged under parallel execution (expected \
           %d bytes, got %d)"
          i (String.length expected) (String.length actual))
    traces

let suite =
  [
    Alcotest.test_case "qcheck configs: serial vs jobs 2/4/8" `Slow
      test_serial_vs_jobs;
    Alcotest.test_case "replicate sweep: serial vs jobs 4" `Slow
      test_replicates_serial_vs_jobs;
    Alcotest.test_case "prefilled cache matches serial cache" `Slow
      test_prefilled_cache_matches_serial;
    Alcotest.test_case "golden trace byte-exact under parallel run" `Quick
      test_golden_trace_parallel;
  ]
