(* Fault-injection subsystem: backoff arithmetic, fault-plan codec,
   message-variant coverage, chaos-registry hygiene, the faults-off
   bit-identity pin, and end-to-end crash / lossy-network runs that must
   stay serializable, conserving and deterministic. *)

open Ddbm_model

(* --- backoff arithmetic -------------------------------------------- *)

let test_backoff_delay () =
  let d round = Backoff.delay ~base:1. ~cap:8. ~round in
  Alcotest.(check (float 0.)) "round 1" 1. (d 1);
  Alcotest.(check (float 0.)) "round 2" 2. (d 2);
  Alcotest.(check (float 0.)) "round 3" 4. (d 3);
  Alcotest.(check (float 0.)) "round 4" 8. (d 4);
  Alcotest.(check (float 0.)) "round 5 capped" 8. (d 5);
  Alcotest.(check (float 0.)) "round 20 capped" 8. (d 20);
  Alcotest.(check (float 0.)) "fractional base" 0.5
    (Backoff.delay ~base:0.25 ~cap:8. ~round:2)

let test_backoff_deadline_total_exhausted () =
  Alcotest.(check (float 0.)) "deadline = now + delay" 12.
    (Backoff.deadline ~now:10. ~base:1. ~cap:8. ~round:2);
  (* the budget includes the final wait before giving up: rounds
     1..max_retries+1 *)
  Alcotest.(check (float 0.)) "total sums the whole budget" 23.
    (Backoff.total ~base:1. ~cap:8. ~max_retries:4);
  Alcotest.(check (float 0.)) "total respects the cap" 9.
    (Backoff.total ~base:1. ~cap:2. ~max_retries:4);
  Alcotest.(check bool) "round 4 of 4 not exhausted" false
    (Backoff.exhausted ~max_retries:4 ~round:4);
  Alcotest.(check bool) "round 5 of 4 exhausted" true
    (Backoff.exhausted ~max_retries:4 ~round:5)

(* --- desim primitives ---------------------------------------------- *)

let test_crashable () =
  let c = Desim.Faults.Crashable.create () in
  Alcotest.(check bool) "fresh is up" true (Desim.Faults.Crashable.up c);
  Desim.Faults.Crashable.crash c;
  Desim.Faults.Crashable.crash c;
  Alcotest.(check bool) "down after crash" false (Desim.Faults.Crashable.up c);
  Alcotest.(check int) "double crash is one transition" 1
    (Desim.Faults.Crashable.epoch c);
  Desim.Faults.Crashable.recover c;
  Alcotest.(check bool) "up after recover" true (Desim.Faults.Crashable.up c);
  Alcotest.(check int) "epoch counts both transitions" 2
    (Desim.Faults.Crashable.epoch c)

let test_link_zero_consumes_no_randomness () =
  let rng1 = Desim.Rng.create 7 and rng2 = Desim.Rng.create 7 in
  let link = Desim.Faults.Link.create rng1 ~loss:0. ~dup:0. ~delay:0. in
  for _ = 1 to 100 do
    Alcotest.(check (list (float 0.)))
      "zero link delivers one immediate copy" [ 0. ]
      (Desim.Faults.Link.judge link)
  done;
  Alcotest.(check (float 0.)) "no draws were consumed"
    (Desim.Rng.float rng2) (Desim.Rng.float rng1)

let test_link_lossy_is_deterministic () =
  let judge_all seed =
    let rng = Desim.Rng.create seed in
    let link =
      Desim.Faults.Link.create rng ~loss:0.3 ~dup:0.2 ~delay:0.01
    in
    List.init 200 (fun _ -> Desim.Faults.Link.judge link)
  in
  let a = judge_all 42 and b = judge_all 42 in
  Alcotest.(check bool) "same seed, same verdicts" true (a = b);
  let dropped = List.length (List.filter (fun c -> c = []) a) in
  let dupped = List.length (List.filter (fun c -> List.length c > 1) a) in
  Alcotest.(check bool) "some messages dropped" true (dropped > 0);
  Alcotest.(check bool) "some messages duplicated" true (dupped > 0);
  Alcotest.(check bool) "most messages delivered" true (dropped < 150)

(* --- fault-plan codec ---------------------------------------------- *)

let test_spec_zero_roundtrip () =
  Alcotest.(check string) "zero prints empty" "" (Fault_plan.to_spec Fault_plan.zero);
  match Fault_plan.of_spec "" with
  | Ok p -> Alcotest.(check bool) "empty parses to zero" true (p = Fault_plan.zero)
  | Error e -> Alcotest.fail e

let full_plan =
  {
    Fault_plan.crashes =
      [
        { Fault_plan.target = Ids.Proc 2; at = 10.; duration = 5. };
        { Fault_plan.target = Ids.Host; at = 30.; duration = 1.5 };
      ];
    crash_rate = 0.01;
    mean_repair = 2.;
    msg_loss = 0.05;
    msg_dup = 0.01;
    msg_delay = 0.002;
    recrash = 0.1;
    torn_tail = 0.25;
    timeout = 0.5;
    timeout_cap = 4.;
    timeout_jitter = 0.25;
    max_retries = 6;
    fault_seed = 99;
    chaos = [ "broken-lock-conversion" ];
  }

let test_spec_full_roundtrip () =
  let spec = Fault_plan.to_spec full_plan in
  match Fault_plan.of_spec spec with
  | Ok p ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trips %S" spec)
        true (p = full_plan)
  | Error e -> Alcotest.fail e

let test_spec_rejects_garbage () =
  List.iter
    (fun spec ->
      match Fault_plan.of_spec spec with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" spec)
      | Error _ -> ())
    [ "loss=2"; "loss=x"; "crash=bogus"; "wibble=1"; "retries=-3"; "crash=proc1@x+1" ]

let test_validate_rejects_out_of_range_crash_target () =
  let plan =
    {
      Fault_plan.zero with
      Fault_plan.crashes =
        [ { Fault_plan.target = Ids.Proc 9; at = 1.; duration = 1. } ];
    }
  in
  match Fault_plan.validate ~num_proc_nodes:4 plan with
  | Ok () -> Alcotest.fail "accepted a crash target beyond the machine"
  | Error _ -> ()

(* --- message-variant coverage -------------------------------------- *)

(* A minimal transaction for constructing message values. *)
let dummy_txn =
  {
    Txn.tid = 1;
    attempt = 1;
    origin_time = 0.;
    attempt_time = 0.;
    startup_ts = { Timestamp.time = 0.; uniq = 1 };
    cc_ts = { Timestamp.time = 0.; uniq = 1 };
    commit_ts = None;
    plan = { Plan.relation = 0; cohorts = [] };
    phase = Txn.Working;
    doomed = false;
  }

(* Every constructor of both protocol-message types: adding a variant
   without extending the name function breaks the library build (the
   match is compiled with exhaustiveness as an error); this test pins
   the names themselves, which the trace tooling keys on. *)
let test_message_names_cover_every_variant () =
  let cohort = Ddbm.Messages.[ Do_prepare; Do_commit; Do_abort ] in
  let coord =
    Ddbm.Messages.
      [
        Work_done 0;
        Cohort_aborted (0, Txn.Peer_abort);
        Vote (0, true);
        Done_ack 0;
        Abort_request (dummy_txn, Txn.Wounded);
        Inquiry (dummy_txn, 0);
      ]
  in
  let cohort_names = List.map Ddbm.Messages.cohort_msg_name cohort in
  let coord_names = List.map Ddbm.Messages.coord_msg_name coord in
  Alcotest.(check int) "distinct cohort names" (List.length cohort)
    (List.length (List.sort_uniq String.compare cohort_names));
  Alcotest.(check int) "distinct coord names" (List.length coord)
    (List.length (List.sort_uniq String.compare coord_names));
  List.iter
    (fun n -> Alcotest.(check bool) ("nonempty " ^ n) true (n <> ""))
    (cohort_names @ coord_names)

(* --- configurations ------------------------------------------------ *)

let faulty_params ?(algorithm = Params.Twopl) ?(seed = 42)
    ?(faults = Fault_plan.zero) () =
  let d = Params.default in
  {
    d with
    Params.database =
      {
        d.Params.database with
        Params.num_proc_nodes = 4;
        partitioning_degree = 4;
      };
    workload =
      { d.Params.workload with Params.num_terminals = 16; think_time = 1.0 };
    cc = { d.Params.cc with Params.algorithm };
    run = { d.Params.run with Params.seed; warmup = 2.0; measure = 20.0 };
    faults;
  }

(* --- chaos-registry hygiene ---------------------------------------- *)

let test_chaos_registry_no_leak () =
  Fun.protect ~finally:Ddbm_cc.Fault.reset (fun () ->
      let chaotic =
        { Fault_plan.zero with Fault_plan.chaos = [ "broken-lock-conversion" ] }
      in
      ignore
        (Ddbm.Machine.create (faulty_params ~faults:chaotic ())
          : Ddbm.Machine.t);
      Alcotest.(check (list string))
        "chaos plan arms exactly its faults"
        [ "broken-lock-conversion" ] (Ddbm_cc.Fault.active ());
      (* the next machine's zero plan must clear the registry: plans
         cannot leak between runs *)
      ignore (Ddbm.Machine.create (faulty_params ()) : Ddbm.Machine.t);
      Alcotest.(check (list string))
        "zero plan disarms everything" [] (Ddbm_cc.Fault.active ()))

let test_unknown_chaos_rejected () =
  Fun.protect ~finally:Ddbm_cc.Fault.reset (fun () ->
      let bogus =
        { Fault_plan.zero with Fault_plan.chaos = [ "no-such-fault" ] }
      in
      (match Ddbm.Machine.create (faulty_params ~faults:bogus ()) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "machine accepted an unknown chaos fault");
      Alcotest.(check (list string))
        "rejection leaves the registry clear" [] (Ddbm_cc.Fault.active ()))

(* --- faults-off bit-identity pin ----------------------------------- *)

(* Pinned with the zero fault plan (same configuration, same seed): the
   zero plan must leave every algorithm's run bit-for-bit unchanged — no
   extra RNG draws, no timers, no stray events. Regenerate with
   `dune exec test/gen_pins.exe` after any intentional numerics change
   (last regenerated for the virtual-time CPU kernel). *)
let faults_off_expected =
  [
    (Params.No_dc, 93, 0, 93, 2295, 39678, "4.6500000000000004", "2.4671111279030993");
    (Params.Twopl, 91, 1, 92, 2401, 39507, "4.5499999999999998", "2.5360236178835005");
    (Params.Wound_wait, 91, 1, 92, 2268, 39273, "4.5499999999999998", "2.5203000168872371");
    (Params.Bto, 92, 1, 93, 2286, 39534, "4.5999999999999996", "2.508082750311043");
    (Params.Opt, 84, 10, 94, 2303, 39343, "4.2000000000000002", "2.8516994390672812");
    (Params.Wait_die, 86, 17, 103, 2337, 38848, "4.2999999999999998", "2.6563220374780863");
    (Params.Twopl_defer, 87, 5, 92, 2425, 39562, "4.3499999999999996", "2.6383243413325839");
    (Params.O2pl, 91, 1, 92, 2401, 39507, "4.5499999999999998", "2.5360236178835005");
  ]

let test_faults_off_bit_identity () =
  List.iter
    (fun (algorithm, commits, aborts, completions, messages, sim_events, tput,
          resp) ->
      let name = Params.cc_algorithm_name algorithm in
      let r = Ddbm.Machine.run (faulty_params ~algorithm ()) in
      Alcotest.(check int) (name ^ " commits") commits r.Ddbm.Sim_result.commits;
      Alcotest.(check int) (name ^ " aborts") aborts r.Ddbm.Sim_result.aborts;
      Alcotest.(check int) (name ^ " completions") completions
        r.Ddbm.Sim_result.completions;
      Alcotest.(check int) (name ^ " messages") messages
        r.Ddbm.Sim_result.messages;
      Alcotest.(check int) (name ^ " sim events") sim_events
        r.Ddbm.Sim_result.sim_events;
      Alcotest.(check string) (name ^ " throughput") tput
        (Printf.sprintf "%.17g" r.Ddbm.Sim_result.throughput);
      Alcotest.(check string) (name ^ " mean response") resp
        (Printf.sprintf "%.17g" r.Ddbm.Sim_result.mean_response);
      (* and the fault metrics read as a fault-free machine *)
      Alcotest.(check (float 0.)) (name ^ " availability") 1.
        r.Ddbm.Sim_result.availability;
      Alcotest.(check int) (name ^ " timeouts") 0 r.Ddbm.Sim_result.timeouts;
      Alcotest.(check int) (name ^ " retries") 0 r.Ddbm.Sim_result.retries;
      Alcotest.(check int) (name ^ " orphaned") 0 r.Ddbm.Sim_result.orphaned)
    faults_off_expected

(* --- end-to-end fault runs ----------------------------------------- *)

let check_conforming name (r : Ddbm.Sim_result.t) =
  match Ddbm_check.Invariants.check r with
  | [] -> ()
  | errs -> Alcotest.fail (name ^ ": " ^ String.concat "; " errs)

let audited_faulty_run ?algorithm ?seed faults =
  let params = faulty_params ?algorithm ?seed ~faults () in
  let m = Ddbm.Machine.create params in
  let audit = Ddbm.Machine.enable_audit m in
  let events = ref [] in
  let tracer = Ddbm.Machine.enable_events m in
  Tracer.attach tracer (fun ~time:_ ev -> events := ev :: !events);
  let r = Ddbm.Machine.execute m in
  (match Ddbm.Audit.check audit with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("audit: " ^ msg));
  (r, List.rev !events)

let lossy_plan =
  {
    Fault_plan.zero with
    Fault_plan.msg_loss = 0.15;
    msg_dup = 0.05;
    msg_delay = 0.002;
    timeout = 0.25;
    timeout_cap = 1.;
    max_retries = 6;
    fault_seed = 5;
  }

let test_lossy_network_still_serializable () =
  let r, _ = audited_faulty_run lossy_plan in
  check_conforming "lossy" r;
  Alcotest.(check bool) "commits happened" true (r.Ddbm.Sim_result.commits > 0);
  Alcotest.(check bool) "losses were observed" true
    (r.Ddbm.Sim_result.msgs_dropped > 0);
  Alcotest.(check bool) "timeouts fired" true (r.Ddbm.Sim_result.timeouts > 0);
  Alcotest.(check bool) "retries recovered the protocol" true
    (r.Ddbm.Sim_result.retries > 0);
  Alcotest.(check int) "no transaction left in doubt" 0
    r.Ddbm.Sim_result.indoubt_open_at_end

let host_crash_plan =
  {
    Fault_plan.zero with
    Fault_plan.crashes =
      [ { Fault_plan.target = Ids.Host; at = 8.; duration = 2. } ];
    timeout = 0.5;
    timeout_cap = 2.;
    max_retries = 4;
    fault_seed = 11;
  }

(* The tentpole termination property: a coordinator (host) crash in the
   middle of the run leaves no cohort permanently in doubt — the
   decision log plus the inquiry protocol resolves every prepared
   cohort once the host is back. *)
let test_host_crash_mid_run_terminates () =
  let r, events = audited_faulty_run host_crash_plan in
  check_conforming "host crash" r;
  Alcotest.(check bool) "commits happened" true (r.Ddbm.Sim_result.commits > 0);
  Alcotest.(check bool) "crash was recorded" true
    (r.Ddbm.Sim_result.node_crashes >= 1);
  Alcotest.(check bool) "availability dented" true
    (r.Ddbm.Sim_result.availability < 1.);
  Alcotest.(check int) "nothing overdue in doubt" 0
    r.Ddbm.Sim_result.indoubt_overdue_at_end;
  let crashed, recovered =
    List.fold_left
      (fun (c, rcv) ev ->
        match ev with
        | Event.Node_crashed { node = Ids.Host } -> (c + 1, rcv)
        | Event.Node_recovered { node = Ids.Host } -> (c, rcv + 1)
        | _ -> (c, rcv))
      (0, 0) events
  in
  Alcotest.(check int) "one host crash event" 1 crashed;
  Alcotest.(check int) "one host recovery event" 1 recovered

let proc_crash_plan =
  {
    Fault_plan.zero with
    Fault_plan.crashes =
      [ { Fault_plan.target = Ids.Proc 1; at = 6.; duration = 1.5 } ];
    msg_loss = 0.05;
    timeout = 0.5;
    timeout_cap = 2.;
    max_retries = 4;
    fault_seed = 23;
  }

let test_proc_crash_mid_run_terminates () =
  List.iter
    (fun algorithm ->
      let r, events = audited_faulty_run ~algorithm proc_crash_plan in
      let name = Params.cc_algorithm_name algorithm in
      check_conforming name r;
      Alcotest.(check bool) (name ^ " commits happened") true
        (r.Ddbm.Sim_result.commits > 0);
      Alcotest.(check bool) (name ^ " crash recorded") true
        (r.Ddbm.Sim_result.node_crashes >= 1);
      Alcotest.(check int) (name ^ " nothing overdue in doubt") 0
        r.Ddbm.Sim_result.indoubt_overdue_at_end;
      Alcotest.(check bool) (name ^ " crash event emitted") true
        (List.exists
           (function
             | Event.Node_crashed { node = Ids.Proc 1 } -> true
             | _ -> false)
           events))
    [ Params.Twopl; Params.Opt; Params.No_dc ]

let test_fault_runs_are_deterministic () =
  List.iter
    (fun faults ->
      let run () = Ddbm.Machine.run (faulty_params ~faults ()) in
      let a = run () and b = run () in
      match Ddbm.Sim_result.diff a b with
      | [] -> ()
      | diffs ->
          Alcotest.fail
            ("same plan, different runs: " ^ String.concat "; " diffs))
    [ lossy_plan; host_crash_plan; proc_crash_plan ]

let test_crash_rate_runs_conform () =
  let plan =
    {
      Fault_plan.zero with
      Fault_plan.crash_rate = 0.02;
      mean_repair = 1.;
      timeout = 0.5;
      timeout_cap = 2.;
      max_retries = 4;
      fault_seed = 31;
    }
  in
  let r, _ = audited_faulty_run plan in
  check_conforming "crash-rate" r;
  Alcotest.(check bool) "commits happened" true (r.Ddbm.Sim_result.commits > 0)

let suite =
  [
    Alcotest.test_case "backoff delay doubles to the cap" `Quick
      test_backoff_delay;
    Alcotest.test_case "backoff deadline, total and budget" `Quick
      test_backoff_deadline_total_exhausted;
    Alcotest.test_case "crashable up/down epochs" `Quick test_crashable;
    Alcotest.test_case "zero link consumes no randomness" `Quick
      test_link_zero_consumes_no_randomness;
    Alcotest.test_case "lossy link deterministic per seed" `Quick
      test_link_lossy_is_deterministic;
    Alcotest.test_case "spec codec: zero" `Quick test_spec_zero_roundtrip;
    Alcotest.test_case "spec codec: full plan" `Quick test_spec_full_roundtrip;
    Alcotest.test_case "spec codec rejects garbage" `Quick
      test_spec_rejects_garbage;
    Alcotest.test_case "validate rejects bad crash target" `Quick
      test_validate_rejects_out_of_range_crash_target;
    Alcotest.test_case "message names cover every variant" `Quick
      test_message_names_cover_every_variant;
    Alcotest.test_case "chaos registry never leaks between runs" `Quick
      test_chaos_registry_no_leak;
    Alcotest.test_case "unknown chaos fault rejected" `Quick
      test_unknown_chaos_rejected;
    Alcotest.test_case "faults-off runs are bit-identical" `Slow
      test_faults_off_bit_identity;
    Alcotest.test_case "lossy network stays serializable" `Slow
      test_lossy_network_still_serializable;
    Alcotest.test_case "host crash mid-run terminates 2PC" `Slow
      test_host_crash_mid_run_terminates;
    Alcotest.test_case "proc crash mid-run terminates 2PC" `Slow
      test_proc_crash_mid_run_terminates;
    Alcotest.test_case "seeded fault runs replay exactly" `Slow
      test_fault_runs_are_deterministic;
    Alcotest.test_case "rate-driven crashes conform" `Slow
      test_crash_rate_runs_conform;
  ]
