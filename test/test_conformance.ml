(* Conformance harness tests: the randomized cross-algorithm sweep
   (serializability audit + conservation invariants + same-seed
   determinism + workload agreement on every generated configuration),
   fault injection proving the audit catches real concurrency control
   bugs, and replay artifact round-trips.

   The sweep's configuration count defaults to 50 and can be capped (or
   raised) with the DDBM_CONFORMANCE_CONFIGS environment variable, which
   CI uses to bound wall time. *)

open Ddbm_model

let conformance_count () =
  match Sys.getenv_opt "DDBM_CONFORMANCE_CONFIGS" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 50)
  | None -> 50

let artifact_dir () = Filename.get_temp_dir_name ()

(* --- the randomized sweep ------------------------------------------ *)

let prop_all_algorithms_conform =
  QCheck.Test.make
    ~name:
      "random configs: every algorithm serializable, conserving, \
       deterministic, workload-agreeing"
    ~count:(conformance_count ())
    Ddbm_check.Config_gen.arbitrary
    (fun params ->
      match
        Ddbm_check.Conformance.check ~artifact_dir:(artifact_dir ()) params
      with
      | Ok () -> true
      | Error (f, artifact) ->
          QCheck.Test.fail_reportf "%s%s"
            (Ddbm_check.Conformance.failure_to_string f)
            (match artifact with
            | Some path -> "\nreplay artifact: " ^ path
            | None -> ""))

(* --- fault injection ----------------------------------------------- *)

(* A deliberately hot configuration: 12-page files fully covered by every
   transaction, half the accesses updating. Under the broken-conversion
   fault two readers of a page can both upgrade to X and commit a lost
   update, which the multiversion audit must flag as a cycle. *)
let hot_2pl_params =
  let d = Params.default in
  {
    Params.database =
      {
        Params.num_proc_nodes = 2;
        num_relations = 2;
        partitions_per_relation = 2;
        file_size = 12;
        partitioning_degree = 2;
        replication = 1;
      };
    workload =
      {
        Params.num_terminals = 12;
        think_time = 0.;
        exec_pattern = Params.Parallel;
        pages_per_partition = 8;
        write_prob = 0.5;
        inst_per_page = 4_000.;
      };
    resources = d.Params.resources;
    cc = { Params.algorithm = Params.Twopl; detection_interval = 1.0 };
    run =
      {
        Params.seed = 7;
        warmup = 2.;
        measure = 8.;
        restart_delay_floor = 0.25;
        fresh_restart_plan = false;
      };
      durability = Params.default_durability;
      faults = Fault_plan.zero;
      arrivals = Arrival.zero;
  }

let test_clean_machine_conforms () =
  (* the same hot configuration passes when nothing is broken *)
  match Ddbm_check.Conformance.check hot_2pl_params with
  | Ok () -> ()
  | Error (f, _) ->
      Alcotest.fail (Ddbm_check.Conformance.failure_to_string f)

let test_injected_fault_caught_and_replayed () =
  (* the chaos fault travels in the parameters: Machine.create applies
     it, so the replay artifact alone reproduces the failure *)
  let broken_params =
    {
      hot_2pl_params with
      Params.faults =
        {
          Fault_plan.zero with
          Fault_plan.chaos = [ "broken-lock-conversion" ];
        };
    }
  in
  Fun.protect ~finally:Ddbm_cc.Fault.reset (fun () ->
      match
        Ddbm_check.Conformance.check ~algorithms:[ Params.Twopl ]
          ~artifact_dir:(artifact_dir ()) broken_params
      with
      | Ok () ->
          Alcotest.fail
            "broken lock conversion produced a serializable history"
      | Error (_, None) -> Alcotest.fail "no replay artifact written"
      | Error (f, Some path) -> (
          Alcotest.(check string) "caught by the audit" "audit" f.Ddbm_check.Conformance.kind;
          Alcotest.(check bool) "artifact exists" true (Sys.file_exists path);
          (* the artifact alone must reproduce the failure: reset the
             fault and let the replay re-activate it from the file *)
          Ddbm_cc.Fault.reset ();
          match Ddbm_check.Conformance.replay_file path with
          | Error msg -> Alcotest.fail msg
          | Ok outcome -> (
              match outcome.Ddbm_check.Conformance.reproduced with
              | None -> Alcotest.fail "replay did not reproduce the failure"
              | Some rf ->
                  Alcotest.(check string)
                    "same failure kind" f.Ddbm_check.Conformance.kind
                    rf.Ddbm_check.Conformance.kind;
                  Alcotest.(check bool)
                    "replay leaves a trace for the post-mortem" true
                    (outcome.Ddbm_check.Conformance.trace_tail <> []))))

let test_replay_without_fault_is_clean () =
  (* an artifact recording no fault replays to a conforming run *)
  let a =
    {
      Ddbm_check.Replay.params = hot_2pl_params;
      kind = "audit";
      detail = "synthetic artifact for a clean machine";
    }
  in
  let path = Ddbm_check.Replay.write ~dir:(artifact_dir ()) a in
  match Ddbm_check.Conformance.replay_file path with
  | Error msg -> Alcotest.fail msg
  | Ok outcome ->
      Alcotest.(check bool) "no reproduction" true
        (outcome.Ddbm_check.Conformance.reproduced = None);
      Alcotest.(check bool) "result collected" true
        (outcome.Ddbm_check.Conformance.result <> None)

(* --- replay codec --------------------------------------------------- *)

let algorithm_arb =
  QCheck.oneofl ~print:Params.cc_algorithm_name Ddbm_cc.Registry.all

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"replay codec round-trips every configuration"
    ~count:100
    QCheck.(pair Ddbm_check.Config_gen.arbitrary algorithm_arb)
    (fun (params, algorithm) ->
      let params =
        { params with Params.cc = { params.Params.cc with Params.algorithm } }
      in
      match
        Ddbm_check.Replay.params_of_string
          (Ddbm_check.Replay.params_to_string params)
      with
      | Ok p -> p = params
      | Error msg -> QCheck.Test.fail_report msg)

let test_artifact_roundtrip () =
  (* the fault plan — chaos fault and machine faults alike — rides in
     the params and must survive the artifact codec *)
  let a =
    {
      Ddbm_check.Replay.params =
        {
          hot_2pl_params with
          Params.faults =
            {
              Fault_plan.zero with
              Fault_plan.msg_loss = 0.1;
              crashes = [ { Fault_plan.target = Ids.Proc 1; at = 2.5; duration = 1. } ];
              fault_seed = 99;
              chaos = [ "broken-lock-conversion" ];
            };
        };
      kind = "audit";
      detail = "serialization graph has a cycle through T3.1";
    }
  in
  let path = Ddbm_check.Replay.write ~dir:(artifact_dir ()) a in
  match Ddbm_check.Replay.load path with
  | Error msg -> Alcotest.fail msg
  | Ok b ->
      Alcotest.(check bool) "params round-trip" true
        (b.Ddbm_check.Replay.params = a.Ddbm_check.Replay.params);
      Alcotest.(check string) "kind" a.Ddbm_check.Replay.kind b.Ddbm_check.Replay.kind;
      Alcotest.(check string) "detail" a.Ddbm_check.Replay.detail
        b.Ddbm_check.Replay.detail

let test_load_rejects_garbage () =
  let dir = artifact_dir () in
  let path = Filename.concat dir "ddbm-replay-garbage.txt" in
  let oc = open_out path in
  output_string oc "not an artifact\n";
  close_out oc;
  (match Ddbm_check.Replay.load path with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Ddbm_check.Replay.load (Filename.concat dir "ddbm-no-such-file.txt") with
  | Ok _ -> Alcotest.fail "accepted a missing file"
  | Error _ -> ()

(* --- result equality and invariants --------------------------------- *)

let test_result_diff_and_equal () =
  let a = Ddbm.Machine.run hot_2pl_params in
  let b = Ddbm.Machine.run hot_2pl_params in
  Alcotest.(check bool) "identical runs are equal" true
    (Ddbm.Sim_result.equal a b);
  let doctored = { b with Ddbm.Sim_result.commits = b.Ddbm.Sim_result.commits + 1 } in
  let diffs = Ddbm.Sim_result.diff a doctored in
  Alcotest.(check bool) "doctored commit count detected" true
    (List.exists
       (fun line -> String.length line >= 7 && String.sub line 0 7 = "commits")
       diffs)

let test_invariants_flag_violations () =
  let r = Ddbm.Machine.run hot_2pl_params in
  Alcotest.(check (list string)) "clean run conserves" []
    (Ddbm_check.Invariants.check r);
  let bad_util = { r with Ddbm.Sim_result.proc_cpu_util = 1.5 } in
  Alcotest.(check bool) "utilization outside [0,1] flagged" true
    (Ddbm_check.Invariants.check bad_util <> []);
  let bad_conservation =
    { r with Ddbm.Sim_result.completions = r.Ddbm.Sim_result.completions + 1 }
  in
  Alcotest.(check bool) "broken conservation flagged" true
    (Ddbm_check.Invariants.check bad_conservation <> [])

let suite =
  [
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| 0xC0DE |])
      prop_all_algorithms_conform;
    Alcotest.test_case "clean machine conforms" `Slow test_clean_machine_conforms;
    Alcotest.test_case "injected fault caught and replayed" `Slow
      test_injected_fault_caught_and_replayed;
    Alcotest.test_case "faultless artifact replays clean" `Slow
      test_replay_without_fault_is_clean;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    Alcotest.test_case "artifact round-trip" `Quick test_artifact_roundtrip;
    Alcotest.test_case "artifact parser rejects garbage" `Quick
      test_load_rejects_garbage;
    Alcotest.test_case "result equality and diff" `Slow
      test_result_diff_and_equal;
    Alcotest.test_case "invariants flag doctored results" `Slow
      test_invariants_flag_violations;
  ]
