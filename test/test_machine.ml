(* End-to-end machine tests: small but complete simulations for every
   algorithm, determinism, conservation properties, and configuration
   variants (sequential execution, 1-node system, partitioning degrees). *)

open Ddbm_model

let small_params ?(algorithm = Params.Twopl) ?(nodes = 4) ?(degree = 4)
    ?(think = 1.) ?(terminals = 32) ?(seed = 11) ?(measure = 40.)
    ?(exec_pattern = Params.Parallel) ?(file_size = 100) () =
  let d = Params.default in
  {
    Params.database =
      {
        d.Params.database with
        Params.num_proc_nodes = nodes;
        partitioning_degree = degree;
        file_size;
      };
    workload =
      {
        d.Params.workload with
        Params.think_time = think;
        num_terminals = terminals;
        exec_pattern;
      };
    resources = d.Params.resources;
    cc = { d.Params.cc with Params.algorithm };
    run = { Params.seed; warmup = 10.; measure; restart_delay_floor = 0.5; fresh_restart_plan = false };
      durability = Params.default_durability;
      faults = Fault_plan.zero;
      arrivals = Arrival.zero;
  }

let check_result_sane (r : Ddbm.Sim_result.t) =
  Alcotest.(check bool) "commits happened" true (r.Ddbm.Sim_result.commits > 0);
  Alcotest.(check bool) "throughput positive" true (r.Ddbm.Sim_result.throughput > 0.);
  Alcotest.(check bool) "response positive" true (r.Ddbm.Sim_result.mean_response > 0.);
  Alcotest.(check bool) "cpu util in [0,1]" true
    (r.Ddbm.Sim_result.proc_cpu_util >= 0. && r.Ddbm.Sim_result.proc_cpu_util <= 1.);
  Alcotest.(check bool) "disk util in [0,1]" true
    (r.Ddbm.Sim_result.proc_disk_util >= 0. && r.Ddbm.Sim_result.proc_disk_util <= 1.);
  Alcotest.(check bool) "host util in [0,1]" true
    (r.Ddbm.Sim_result.host_cpu_util >= 0. && r.Ddbm.Sim_result.host_cpu_util <= 1.);
  Alcotest.(check bool) "messages flowed" true (r.Ddbm.Sim_result.messages > 0);
  Alcotest.(check bool) "active transactions bounded by terminals" true
    (r.Ddbm.Sim_result.mean_active <= 32.1)

let test_runs_every_algorithm () =
  List.iter
    (fun algorithm ->
      let r = Ddbm.Machine.run (small_params ~algorithm ()) in
      check_result_sane r;
      match algorithm with
      | Params.No_dc ->
          Alcotest.(check int) "NO_DC never aborts" 0 r.Ddbm.Sim_result.aborts
      | Params.Twopl | Params.Wound_wait | Params.Bto | Params.Opt
      | Params.Wait_die | Params.Twopl_defer | Params.O2pl ->
          ())
    [
      Params.No_dc; Params.Twopl; Params.Wound_wait; Params.Bto; Params.Opt;
      Params.Wait_die; Params.Twopl_defer;
    ]

let test_determinism () =
  let p = small_params ~algorithm:Params.Twopl () in
  let a = Ddbm.Machine.run p and b = Ddbm.Machine.run p in
  Alcotest.(check int) "same commits" a.Ddbm.Sim_result.commits b.Ddbm.Sim_result.commits;
  Alcotest.(check int) "same aborts" a.Ddbm.Sim_result.aborts b.Ddbm.Sim_result.aborts;
  Alcotest.(check (float 0.)) "same response" a.Ddbm.Sim_result.mean_response
    b.Ddbm.Sim_result.mean_response;
  Alcotest.(check int) "same messages" a.Ddbm.Sim_result.messages
    b.Ddbm.Sim_result.messages;
  Alcotest.(check int) "same event count" a.Ddbm.Sim_result.sim_events
    b.Ddbm.Sim_result.sim_events

let test_seed_changes_trajectory () =
  let a = Ddbm.Machine.run (small_params ~seed:1 ()) in
  let b = Ddbm.Machine.run (small_params ~seed:2 ()) in
  Alcotest.(check bool) "different event streams" true
    (a.Ddbm.Sim_result.sim_events <> b.Ddbm.Sim_result.sim_events)

let test_sequential_execution () =
  let r =
    Ddbm.Machine.run
      (small_params ~algorithm:Params.Twopl ~exec_pattern:Params.Sequential ())
  in
  check_result_sane r

let test_one_node_machine () =
  let r =
    Ddbm.Machine.run
      (small_params ~algorithm:Params.Bto ~nodes:1 ~degree:1 ())
  in
  check_result_sane r

let test_degree_one_on_many_nodes () =
  let r =
    Ddbm.Machine.run
      (small_params ~algorithm:Params.Wound_wait ~nodes:4 ~degree:1 ())
  in
  check_result_sane r

let test_abort_reasons_match_algorithm () =
  let reasons algorithm =
    let r =
      Ddbm.Machine.run
        (small_params ~algorithm ~think:0. ~file_size:60 ~measure:30. ())
    in
    List.map fst r.Ddbm.Sim_result.abort_reasons
  in
  List.iter
    (fun reason ->
      Alcotest.(check bool)
        (reason ^ " valid for 2PL")
        true
        (List.mem reason [ "local-deadlock"; "global-deadlock" ]))
    (reasons Params.Twopl);
  List.iter
    (fun reason ->
      Alcotest.(check bool)
        (reason ^ " valid for WW")
        true
        (List.mem reason [ "wounded" ]))
    (reasons Params.Wound_wait);
  List.iter
    (fun reason ->
      Alcotest.(check bool)
        (reason ^ " valid for BTO")
        true
        (List.mem reason [ "bto-conflict" ]))
    (reasons Params.Bto);
  List.iter
    (fun reason ->
      Alcotest.(check bool)
        (reason ^ " valid for OPT")
        true
        (List.mem reason [ "cert-failed" ]))
    (reasons Params.Opt)

let test_no_dc_upper_bound () =
  (* NO_DC throughput dominates every algorithm under contention *)
  let tput algorithm =
    (Ddbm.Machine.run
       (small_params ~algorithm ~think:0. ~file_size:60 ~measure:30. ()))
      .Ddbm.Sim_result.throughput
  in
  let nodc = tput Params.No_dc in
  List.iter
    (fun algorithm ->
      let t = tput algorithm in
      Alcotest.(check bool)
        (Printf.sprintf "%s <= NO_DC (%.2f vs %.2f)"
           (Params.cc_algorithm_name algorithm) t nodc)
        true
        (t <= nodc *. 1.05))
    [ Params.Twopl; Params.Wound_wait; Params.Bto; Params.Opt ]

let test_contention_causes_aborts () =
  (* a tiny hot database must produce aborts for the abort-based schemes *)
  List.iter
    (fun algorithm ->
      let r =
        Ddbm.Machine.run
          (small_params ~algorithm ~think:0. ~file_size:60 ~measure:30. ())
      in
      Alcotest.(check bool)
        (Params.cc_algorithm_name algorithm ^ " aborts under contention")
        true (r.Ddbm.Sim_result.aborts > 0))
    [ Params.Wound_wait; Params.Bto; Params.Opt ]

let test_think_time_reduces_load () =
  let loaded =
    Ddbm.Machine.run (small_params ~algorithm:Params.No_dc ~think:0. ())
  in
  let idle =
    Ddbm.Machine.run (small_params ~algorithm:Params.No_dc ~think:30. ())
  in
  Alcotest.(check bool) "lighter load, lower utilization" true
    (idle.Ddbm.Sim_result.proc_disk_util < loaded.Ddbm.Sim_result.proc_disk_util);
  Alcotest.(check bool) "lighter load, faster responses" true
    (idle.Ddbm.Sim_result.mean_response < loaded.Ddbm.Sim_result.mean_response)

let test_more_nodes_more_throughput () =
  let t1 =
    (Ddbm.Machine.run
       (small_params ~algorithm:Params.No_dc ~nodes:1 ~degree:1 ~think:0. ()))
      .Ddbm.Sim_result.throughput
  in
  let t4 =
    (Ddbm.Machine.run
       (small_params ~algorithm:Params.No_dc ~nodes:4 ~degree:4 ~think:0. ()))
      .Ddbm.Sim_result.throughput
  in
  Alcotest.(check bool)
    (Printf.sprintf "4 nodes (%.2f) > 2x 1 node (%.2f)" t4 t1)
    true (t4 > 2. *. t1)

let test_csv_roundtrip_shape () =
  let r = Ddbm.Machine.run (small_params ()) in
  let header_cols =
    List.length (String.split_on_char ',' Ddbm.Sim_result.csv_header)
  in
  let row_cols =
    List.length (String.split_on_char ',' (Ddbm.Sim_result.to_csv_row r))
  in
  Alcotest.(check int) "csv columns align" header_cols row_cols

let test_o2pl_equals_2pl_without_replication () =
  (* without replicated copies the two algorithms are the same machine;
     determinism makes the equality exact *)
  let a = Ddbm.Machine.run (small_params ~algorithm:Params.Twopl ()) in
  let b = Ddbm.Machine.run (small_params ~algorithm:Params.O2pl ()) in
  Alcotest.(check int) "same commits" a.Ddbm.Sim_result.commits
    b.Ddbm.Sim_result.commits;
  Alcotest.(check int) "same events" a.Ddbm.Sim_result.sim_events
    b.Ddbm.Sim_result.sim_events

let test_logging_costs_throughput () =
  let with_logging logging =
    let p = small_params ~algorithm:Params.No_dc ~think:0. () in
    let p =
      {
        p with
        Params.resources =
          { p.Params.resources with Params.model_logging = logging };
      }
    in
    Ddbm.Machine.run p
  in
  let off = with_logging false and on = with_logging true in
  Alcotest.(check bool) "logging adds disk work" true
    (on.Ddbm.Sim_result.throughput <= off.Ddbm.Sim_result.throughput +. 0.2)

let test_sequential_audit () =
  let p =
    small_params ~algorithm:Params.Twopl ~exec_pattern:Params.Sequential
      ~file_size:60 ~think:0. ~measure:30. ()
  in
  let m = Ddbm.Machine.create p in
  let audit = Ddbm.Machine.enable_audit m in
  let r = Ddbm.Machine.execute m in
  Alcotest.(check bool) "commits" true (r.Ddbm.Sim_result.commits > 0);
  match Ddbm.Audit.check audit with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let test_validation_rejected () =
  let p = small_params ~nodes:2 ~degree:4 () in
  Alcotest.(check bool) "invalid config raises" true
    (try
       ignore (Ddbm.Machine.run p);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "runs every algorithm" `Slow test_runs_every_algorithm;
    Alcotest.test_case "determinism" `Slow test_determinism;
    Alcotest.test_case "seed sensitivity" `Slow test_seed_changes_trajectory;
    Alcotest.test_case "sequential execution" `Slow test_sequential_execution;
    Alcotest.test_case "one-node machine" `Slow test_one_node_machine;
    Alcotest.test_case "degree 1 on 4 nodes" `Slow test_degree_one_on_many_nodes;
    Alcotest.test_case "abort reasons per algorithm" `Slow
      test_abort_reasons_match_algorithm;
    Alcotest.test_case "NO_DC upper bound" `Slow test_no_dc_upper_bound;
    Alcotest.test_case "contention causes aborts" `Slow
      test_contention_causes_aborts;
    Alcotest.test_case "think time reduces load" `Slow
      test_think_time_reduces_load;
    Alcotest.test_case "more nodes more throughput" `Slow
      test_more_nodes_more_throughput;
    Alcotest.test_case "csv shape" `Slow test_csv_roundtrip_shape;
    Alcotest.test_case "O2PL = 2PL without replication" `Slow
      test_o2pl_equals_2pl_without_replication;
    Alcotest.test_case "logging costs throughput" `Slow
      test_logging_costs_throughput;
    Alcotest.test_case "sequential execution serializable" `Slow
      test_sequential_audit;
    Alcotest.test_case "validation rejected" `Quick test_validation_rejected;
  ]
