(* Equivalence tests for the O(log n) virtual-time processor-sharing CPU
   kernel against the original O(n) list-based implementation, kept here
   as [Cpu_reference], plus a regression test for the adversarial
   demands that could stall the old kernel forever.

   (The M/M/1-PS sojourn-time queueing validation also exercises the new
   kernel — it lives in test_queueing.ml and runs against whatever
   kernel lib/desim ships.) *)

(* --- the original kernel, verbatim semantics ------------------------ *)

module Cpu_reference = struct
  type job = { mutable remaining : float; k : unit -> unit }

  type t = {
    eng : Desim.Engine.t;
    rate : float;
    mutable ps : job list;
    hi : (float * (unit -> unit)) Queue.t;
    mutable hi_busy : bool;
    mutable last : float;
    mutable timer : Desim.Engine.handle option;
  }

  let epsilon = 1e-6

  let create eng ~rate =
    {
      eng;
      rate;
      ps = [];
      hi = Queue.create ();
      hi_busy = false;
      last = Desim.Engine.now eng;
      timer = None;
    }

  let account t =
    let now = Desim.Engine.now t.eng in
    let dt = now -. t.last in
    if dt > 0. then begin
      (if (not t.hi_busy) && t.ps <> [] then
         let share = t.rate *. dt /. float_of_int (List.length t.ps) in
         List.iter
           (fun j -> j.remaining <- Float.max 0. (j.remaining -. share))
           t.ps);
      t.last <- now
    end

  let cancel_timer t =
    match t.timer with
    | Some h ->
        Desim.Engine.cancel h;
        t.timer <- None
    | None -> ()

  let rec reschedule t =
    cancel_timer t;
    if (not t.hi_busy) && t.ps <> [] then begin
      let rmin =
        List.fold_left (fun acc j -> Float.min acc j.remaining) infinity t.ps
      in
      let n = float_of_int (List.length t.ps) in
      let delay = Float.max 0. (rmin *. n /. t.rate) in
      t.timer <-
        Some (Desim.Engine.schedule_after t.eng ~delay (fun () -> on_timer t))
    end

  and on_timer t =
    t.timer <- None;
    account t;
    let done_, live = List.partition (fun j -> j.remaining <= epsilon) t.ps in
    t.ps <- live;
    reschedule t;
    List.iter (fun j -> j.k ()) done_

  let rec pump_hi t =
    if (not t.hi_busy) && not (Queue.is_empty t.hi) then begin
      account t;
      cancel_timer t;
      t.hi_busy <- true;
      let instructions, k = Queue.pop t.hi in
      ignore
        (Desim.Engine.schedule_after t.eng ~delay:(instructions /. t.rate)
           (fun () ->
             account t;
             t.hi_busy <- false;
             pump_hi t;
             if not t.hi_busy then reschedule t;
             k ())
          : Desim.Engine.handle)
    end

  let submit t ~instructions k =
    if instructions <= 0. then k ()
    else begin
      account t;
      t.ps <- { remaining = instructions; k } :: t.ps;
      reschedule t
    end

  let submit_priority t ~instructions k =
    if instructions <= 0. then k ()
    else begin
      Queue.push (instructions, k) t.hi;
      pump_hi t
    end
end

(* --- workload driver ------------------------------------------------ *)

type arrival = { at : float; demand : float; priority : bool }

(* Run one arrival schedule through a kernel; returns completions as
   (job id, completion time) in completion order. *)
let run_kernel ~rate ~submit ~submit_priority ~create arrivals =
  let eng = Desim.Engine.create () in
  let cpu = create eng ~rate in
  let completions = ref [] in
  List.iteri
    (fun id a ->
      ignore
        (Desim.Engine.schedule eng ~at:a.at (fun () ->
             let k () =
               completions := (id, Desim.Engine.now eng) :: !completions
             in
             if a.priority then submit_priority cpu ~instructions:a.demand k
             else submit cpu ~instructions:a.demand k)
          : Desim.Engine.handle))
    arrivals;
  Desim.Engine.run eng;
  List.rev !completions

let run_reference ~rate arrivals =
  run_kernel ~rate ~submit:Cpu_reference.submit
    ~submit_priority:Cpu_reference.submit_priority ~create:Cpu_reference.create
    arrivals

let run_current ~rate arrivals =
  run_kernel ~rate ~submit:Desim.Cpu.submit
    ~submit_priority:Desim.Cpu.submit_priority ~create:Desim.Cpu.create
    arrivals

(* --- equivalence checks --------------------------------------------- *)

(* Completion times agree within [tol] (relative to the busy-period
   scale), and completion order agrees wherever the reference times are
   not a near-tie. Near-ties are legitimately ordered differently: the
   old kernel released simultaneous finishers in reverse-arrival order,
   the new one in arrival order. *)
let check_equivalent ~rate arrivals =
  let ref_out = run_reference ~rate arrivals in
  let cur_out = run_current ~rate arrivals in
  let n = List.length arrivals in
  if List.length ref_out <> n || List.length cur_out <> n then
    Alcotest.failf "lost completions: reference %d, current %d of %d"
      (List.length ref_out) (List.length cur_out) n;
  let ref_time = Array.make n 0. in
  List.iter (fun (id, time) -> ref_time.(id) <- time) ref_out;
  let tol = 1e-5 in
  List.iter
    (fun (id, time) ->
      let dt = Float.abs (time -. ref_time.(id)) in
      if dt > tol then
        Alcotest.failf "job %d completes at %.9f (reference %.9f, delta %g)"
          id time ref_time.(id) dt)
    cur_out;
  (* order agreement outside near-ties *)
  let cur_order = List.map fst cur_out in
  let rec check_order = function
    | [] -> ()
    | a :: rest ->
        List.iter
          (fun b ->
            if ref_time.(a) > ref_time.(b) +. tol then
              Alcotest.failf
                "job %d (ref %.9f) completed before job %d (ref %.9f)" a
                ref_time.(a) b ref_time.(b))
          rest;
        check_order rest
  in
  check_order cur_order

let test_equivalence_basic () =
  check_equivalent ~rate:1_000_000.
    [
      { at = 0.; demand = 10_000.; priority = false };
      { at = 0.; demand = 20_000.; priority = false };
      { at = 0.005; demand = 5_000.; priority = false };
      { at = 0.010; demand = 1_000.; priority = true };
      { at = 0.012; demand = 40_000.; priority = false };
    ]

let test_equivalence_simultaneous () =
  (* equal demands arriving together: a pure tie — times must agree even
     though the two kernels order the callbacks differently *)
  check_equivalent ~rate:1_000_000.
    (List.init 10 (fun i ->
         { at = 0.001 *. float_of_int (i / 5); demand = 7_000.; priority = false }))

let test_equivalence_random =
  QCheck.Test.make ~count:60 ~name:"random schedules: kernels agree"
    QCheck.(
      make
        Gen.(
          let* n = int_range 1 40 in
          let* rate = float_range 1e4 1e7 in
          let* arrivals =
            list_repeat n
              (let* at = float_range 0. 0.5 in
               let* demand = float_range 1. 50_000. in
               let* priority = bool in
               return { at; demand; priority })
          in
          return (rate, arrivals)))
    (fun (rate, arrivals) ->
      check_equivalent ~rate arrivals;
      true)

(* --- adversarial demands: the stall regression ---------------------- *)

(* The old kernel computed the next completion as
   [now +. rmin *. n /. rate]; when that sum rounds back to [now]
   (huge rate, or a clock far from the origin where one ulp exceeds the
   delay) its timer fired with dt = 0, accounted no progress, re-armed
   the identical timer, and span forever. The new kernel force-completes
   the head job whenever the timer it armed for that job fires without
   reaching the finish tag. These inputs hang the old kernel; the test
   passes iff Engine.run returns with every job completed. *)
let test_denormal_demand_completes () =
  let completions =
    run_current ~rate:1e300
      [
        { at = 1.0; demand = 1e-5; priority = false };
        (* above reference epsilon, delay underflows to < 1 ulp of now *)
        { at = 1.0; demand = 2e-5; priority = false };
      ]
  in
  Alcotest.(check int) "all jobs complete" 2 (List.length completions)

let test_coarse_clock_completes () =
  (* far from the time origin one ulp is ~1.2e-4 s, so a 5e-7 s delay
     cannot advance the clock at all *)
  let completions =
    run_current ~rate:1e6
      [
        { at = 1e12; demand = 0.5; priority = false };
        { at = 1e12; demand = 0.25; priority = false };
        { at = 1e12; demand = 1e-320; priority = false };
      ]
  in
  Alcotest.(check int) "all jobs complete" 3 (List.length completions)

let test_denormal_among_normal_jobs () =
  (* a denormal-demand job sharing the CPU with real work must neither
     stall the queue nor perturb the real jobs' completion times *)
  let completions =
    run_current ~rate:1_000_000.
      [
        { at = 0.; demand = 10_000.; priority = false };
        { at = 0.; demand = 1e-310; priority = false };
        { at = 0.002; demand = 5_000.; priority = false };
      ]
  in
  Alcotest.(check int) "all jobs complete" 3 (List.length completions);
  let t0 = List.assoc 0 completions in
  (* job 0: shares briefly, then ~alone; must finish near 10000/1e6 s *)
  Alcotest.(check bool)
    (Printf.sprintf "real work unperturbed (%.6f s)" t0)
    true
    (t0 > 0.009 && t0 < 0.025)

let suite =
  [
    Alcotest.test_case "hand-built schedule equivalence" `Quick
      test_equivalence_basic;
    Alcotest.test_case "simultaneous finishers equivalence" `Quick
      test_equivalence_simultaneous;
    QCheck_alcotest.to_alcotest test_equivalence_random;
    Alcotest.test_case "denormal delay cannot stall the PS queue" `Quick
      test_denormal_demand_completes;
    Alcotest.test_case "coarse clock cannot stall the PS queue" `Quick
      test_coarse_clock_completes;
    Alcotest.test_case "denormal job leaves real work unperturbed" `Quick
      test_denormal_among_normal_jobs;
  ]
