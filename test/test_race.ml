(* ddbm-race: the whole-program domain-safety rules (D7/D8/D9) on
   in-memory fixtures — positive and negative cases, allow-comment and
   baseline interaction — plus a race-enabled self-run over the full
   repository.

   Fixtures are string literals, so this file's own AST never trips the
   rules it is testing. Fixture paths sit under lib/ because task
   submissions are only rooted there (and under bin/): the real test
   tree deliberately shares state across tasks to test the pool. *)

let codes (r : Lint.Driver.report) =
  List.map (fun (f : Lint.Finding.t) -> Lint.Finding.code f.rule) r.findings

let scan sources = Lint.Driver.scan_sources ~race:true sources

let scan1 ?(path = "lib/foo/fixture.ml") src = scan [ (path, src) ]

let check_codes label expected report =
  Alcotest.(check (list string)) label expected (codes report)

(* --- D7: shared mutable top-level state ---------------------------- *)

let test_d7_ref () =
  (* the acceptance fixture: a mutable ref shared across Pool tasks *)
  let flagged =
    scan1
      "let hits = ref 0\n\
       let work pool xs = Par.Pool.map pool (fun x -> incr hits; x) xs"
  in
  check_codes "shared ref across Pool tasks fires D7" [ "D7" ] flagged;
  (match flagged.Lint.Driver.findings with
  | [ f ] ->
      Alcotest.(check int) "finding at the reference line" 2 f.Lint.Finding.line
  | fs -> Alcotest.failf "expected one finding, got %d" (List.length fs));
  check_codes "task-local ref is clean" []
    (scan1
       "let work pool xs =\n\
        \  Par.Pool.map pool (fun x -> let c = ref 0 in incr c; !c + x) xs");
  check_codes "shared ref outside any task is clean" []
    (scan1 "let hits = ref 0\nlet bump () = incr hits")

let test_d7_container () =
  check_codes "top-level Hashtbl reached through a helper fires D7"
    [ "D7" ]
    (scan1
       "let table = Hashtbl.create 16\n\
        let record x = Hashtbl.replace table x ()\n\
        let work pool xs = Par.Pool.map pool (fun x -> record x) xs");
  check_codes "per-task Hashtbl is clean" []
    (scan1
       "let work pool xs =\n\
        \  Par.Pool.map pool\n\
        \    (fun x -> let t = Hashtbl.create 4 in Hashtbl.replace t x (); x)\n\
        \    xs")

let test_d7_cross_module () =
  let flagged =
    scan
      [
        ("lib/foo/state.ml", "let table = Hashtbl.create 7\nlet record x = Hashtbl.replace table x ()");
        ( "lib/foo/use.ml",
          "let work pool xs = Par.Pool.map pool (fun x -> State.record x) xs" );
      ]
  in
  check_codes "cross-module reachability fires D7" [ "D7" ] flagged;
  Alcotest.(check (list string))
    "the finding lands where the state is touched" [ "lib/foo/state.ml" ]
    (List.map
       (fun (f : Lint.Finding.t) -> f.Lint.Finding.file)
       flagged.Lint.Driver.findings)

let test_d7_safe_idioms () =
  check_codes "Domain.DLS state is domain-local and clean" []
    (scan1
       "let slot = Domain.DLS.new_key (fun () -> ref 0)\n\
        let work pool xs =\n\
        \  Par.Pool.map pool (fun x -> Domain.DLS.get slot; x) xs");
  check_codes "a shared mutex is a guard, not guarded state" []
    (scan1
       "let m = Mutex.create ()\n\
        let work pool xs =\n\
        \  Par.Pool.map pool (fun x -> Mutex.lock m; Mutex.unlock m; x) xs");
  (* submissions in the test tree do not root the analysis *)
  check_codes "test-tree submissions are out of scope" []
    (scan
       [
         ( "test/test_fixture.ml",
           "let hits = ref 0\n\
            let work pool xs = Par.Pool.map pool (fun x -> incr hits; x) xs"
         );
       ])

(* --- D8: domain-unsafe stdlib in task scope ------------------------ *)

let test_d8 () =
  check_codes "Format.printf in task scope fires D8" [ "D8" ]
    (scan1
       "let work pool xs =\n\
        \  Par.Pool.map pool (fun x -> Format.printf \"%d\" x; x) xs");
  check_codes "Sys.getenv in task scope fires D8" [ "D8" ]
    (scan1
       "let work pool xs =\n\
        \  Par.Pool.map pool (fun x -> ignore (Sys.getenv \"HOME\"); x) xs");
  (* Random in a task is both ambient (D3, everywhere) and
     domain-unsafe (D8, task scope) *)
  let r =
    scan1
      "let work pool xs = Par.Pool.map pool (fun x -> Random.int x) xs"
  in
  Alcotest.(check bool)
    "ambient Random in a task fires both D3 and D8" true
    (List.mem "D3" (codes r) && List.mem "D8" (codes r));
  check_codes "explicitly seeded Random.State is sanctioned for D8" []
    (Lint.Driver.scan_sources ~race:true
       ~rules:[ Lint.Finding.Unsafe_stdlib ]
       [
         ( "lib/foo/fixture.ml",
           "let work pool xs =\n\
            \  Par.Pool.map pool\n\
            \    (fun x -> Random.State.int (Random.State.make [| x |]) 6)\n\
            \    xs" );
       ]);
  check_codes "Format.printf outside task scope is D8-clean" []
    (scan1 "let report x = Format.printf \"%d\" x");
  check_codes "unsafe stdlib reached through a helper fires D8" [ "D8" ]
    (scan1
       "let shout x = print_endline (string_of_int x)\n\
        let work pool xs = Par.Pool.map pool (fun x -> shout x; x) xs")

(* --- D9: shared lazy suspensions ----------------------------------- *)

let test_d9 () =
  check_codes "forcing a shared suspension fires D9" [ "D9" ]
    (scan1
       "let config = lazy 42\n\
        let work pool xs =\n\
        \  Par.Pool.map pool (fun x -> Lazy.force config + x) xs");
  check_codes "task-local lazy is clean" []
    (scan1
       "let work pool xs =\n\
        \  Par.Pool.map pool (fun x -> Lazy.force (lazy (x + 1))) xs");
  check_codes "shared suspension never touched by a task is clean" []
    (scan1
       "let config = lazy 42\n\
        let work pool xs = Par.Pool.map pool (fun x -> x + 1) xs\n\
        let serial () = Lazy.force config")

(* --- suppression and filtering ------------------------------------- *)

let test_allow () =
  let r =
    scan1
      "let hits = ref 0\n\
       (* lint: allow shared-mutable *)\n\
       let work pool xs = Par.Pool.map pool (fun x -> incr hits; x) xs"
  in
  check_codes "allow comment suppresses D7" [] r;
  Alcotest.(check int) "counted as suppressed" 1 r.Lint.Driver.suppressed;
  check_codes "rule code D7 works as the allow token" []
    (scan1
       "let hits = ref 0\n\
        (* lint: allow D7 *)\n\
        let work pool xs = Par.Pool.map pool (fun x -> incr hits; x) xs");
  check_codes "wrong rule does not suppress" [ "D7" ]
    (scan1
       "let hits = ref 0\n\
        (* lint: allow unsafe-stdlib *)\n\
        let work pool xs = Par.Pool.map pool (fun x -> incr hits; x) xs")

let test_rules_filter () =
  let src =
    "let hits = ref 0\n\
     let work pool xs =\n\
     \  Par.Pool.map pool (fun x -> incr hits; Format.printf \"%d\" x; x) xs"
  in
  let all = scan1 src in
  Alcotest.(check bool)
    "both D7 and D8 present unfiltered" true
    (List.mem "D7" (codes all) && List.mem "D8" (codes all));
  check_codes "--rules D7 restricts the report" [ "D7" ]
    (Lint.Driver.scan_sources ~race:true
       ~rules:[ Lint.Finding.Shared_mutable ]
       [ ("lib/foo/fixture.ml", src) ]);
  (* per-rule counts follow the filtered view *)
  let only_d8 =
    Lint.Driver.scan_sources ~race:true
      ~rules:[ Lint.Finding.Unsafe_stdlib ]
      [ ("lib/foo/fixture.ml", src) ]
  in
  Alcotest.(check (list string))
    "by_rule tallies only the selected rule" [ "D8" ]
    (List.map
       (fun (rule, _) -> Lint.Finding.code rule)
       only_d8.Lint.Driver.by_rule)

(* --- baseline interaction ------------------------------------------ *)

let test_baseline () =
  let path = Filename.temp_file "race_baseline" ".txt" in
  let entries =
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc
              "# race-rule baseline fixture\nD7 lib/foo/fixture.ml # ok\n");
        match Lint.Allow.load_baseline path with
        | Ok e -> e
        | Error msg -> Alcotest.failf "fixture baseline failed to load: %s" msg)
  in
  let finding =
    Lint.Finding.v ~rule:Lint.Finding.Shared_mutable
      ~file:"lib/foo/fixture.ml" ~line:3 ~col:0 ~msg:"m" ~hint:"h"
  in
  Alcotest.(check bool)
    "a D7 baseline entry accepts the finding" true
    (Lint.Allow.baselined ~baseline:entries finding);
  let other =
    Lint.Finding.v ~rule:Lint.Finding.Shared_lazy ~file:"lib/foo/fixture.ml"
      ~line:3 ~col:0 ~msg:"m" ~hint:"h"
  in
  Alcotest.(check bool)
    "a different race rule is not covered" false
    (Lint.Allow.baselined ~baseline:entries other)

(* --- self-run: the checked-in tree is domain-safe ------------------ *)

let repo_root () =
  let rec up dir =
    if
      Sys.file_exists (Filename.concat dir "lint.baseline")
      && Sys.file_exists (Filename.concat dir "dune-project")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  up (Sys.getcwd ())

let test_self_run () =
  match repo_root () with
  | None -> Alcotest.fail "cannot locate the repository root from the test cwd"
  | Some root ->
      let cwd = Sys.getcwd () in
      Fun.protect
        ~finally:(fun () -> Sys.chdir cwd)
        (fun () ->
          Sys.chdir root;
          match
            Lint.Driver.run ~baseline:"lint.baseline" ~race:true
              ~roots:[ "lib"; "bin"; "bench"; "test" ] ()
          with
          | Error msg -> Alcotest.failf "race self-run failed: %s" msg
          | Ok report ->
              if not (Lint.Driver.clean report) then
                Alcotest.failf "tree has domain-safety findings:\n%s"
                  (Lint.Driver.render_text report))

let suite =
  [
    Alcotest.test_case "D7 shared ref across tasks" `Quick test_d7_ref;
    Alcotest.test_case "D7 shared containers" `Quick test_d7_container;
    Alcotest.test_case "D7 cross-module reachability" `Quick
      test_d7_cross_module;
    Alcotest.test_case "D7 safe idioms stay clean" `Quick test_d7_safe_idioms;
    Alcotest.test_case "D8 unsafe stdlib in task scope" `Quick test_d8;
    Alcotest.test_case "D9 shared lazy suspensions" `Quick test_d9;
    Alcotest.test_case "allow comments" `Quick test_allow;
    Alcotest.test_case "--rules filtering" `Quick test_rules_filter;
    Alcotest.test_case "baseline interaction" `Quick test_baseline;
    Alcotest.test_case "race self-run is clean" `Quick test_self_run;
  ]
