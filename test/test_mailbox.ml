(* Dedicated mailbox suite: FIFO discipline under interleaving, waiter
   queueing order, try_recv/length bookkeeping, and send-before-spawn
   buffering. Complements the smoke tests in test_sync.ml. *)

open Desim

let test_buffered_before_any_receiver () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  (* sends happen outside any process, before a receiver exists *)
  Mailbox.send mb 1;
  Mailbox.send mb 2;
  Alcotest.(check int) "buffered" 2 (Mailbox.length mb);
  let got = ref [] in
  Engine.spawn eng (fun () ->
      got := Mailbox.recv mb :: !got;
      got := Mailbox.recv mb :: !got);
  Engine.run eng;
  Alcotest.(check (list int)) "delivered in order" [ 1; 2 ] (List.rev !got);
  Alcotest.(check int) "drained" 0 (Mailbox.length mb)

let test_fifo_across_many_sends () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let n = 100 in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      for _ = 1 to n do
        got := Mailbox.recv mb :: !got
      done);
  Engine.spawn eng (fun () ->
      for i = 1 to n do
        if i mod 7 = 0 then Engine.wait 0.5;
        Mailbox.send mb i
      done);
  Engine.run eng;
  Alcotest.(check (list int))
    "all messages, in send order"
    (List.init n (fun i -> i + 1))
    (List.rev !got)

let test_waiters_served_fifo () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let served = ref [] in
  (* receivers 0..3 start waiting at times 0,1,2,3 *)
  for i = 0 to 3 do
    Engine.spawn eng (fun () ->
        Engine.wait (float_of_int i);
        let v = Mailbox.recv mb in
        served := (i, v) :: !served)
  done;
  Engine.spawn eng (fun () ->
      Engine.wait 10.;
      for v = 0 to 3 do
        Mailbox.send mb v
      done);
  Engine.run eng;
  (* the longest-waiting receiver gets the first message *)
  Alcotest.(check (list (pair int int)))
    "longest waiter first"
    [ (0, 0); (1, 1); (2, 2); (3, 3) ]
    (List.sort
       (fun (a, b) (c, d) ->
         match Int.compare a c with 0 -> Int.compare b d | n -> n)
       !served)

let test_try_recv_does_not_steal_from_waiter () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref None in
  Engine.spawn eng (fun () -> got := Some (Mailbox.recv mb));
  Engine.spawn eng (fun () ->
      Engine.wait 1.;
      Mailbox.send mb 42);
  Engine.run eng;
  Alcotest.(check (option int)) "waiter was woken" (Some 42) !got;
  Alcotest.(check (option int)) "nothing left over" None (Mailbox.try_recv mb)

let test_length_counts_only_undelivered () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let lengths = ref [] in
  Engine.spawn eng (fun () ->
      Mailbox.send mb "a";
      lengths := Mailbox.length mb :: !lengths;
      Mailbox.send mb "b";
      lengths := Mailbox.length mb :: !lengths;
      ignore (Mailbox.recv mb);
      lengths := Mailbox.length mb :: !lengths);
  Engine.run eng;
  Alcotest.(check (list int)) "length after each op" [ 1; 2; 1 ]
    (List.rev !lengths)

let test_interleaved_send_recv_conserves_messages () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let sent = ref 0 and received = ref 0 in
  for sender = 0 to 2 do
    Engine.spawn eng (fun () ->
        for i = 0 to 9 do
          Engine.wait (0.1 +. (0.05 *. float_of_int sender));
          Mailbox.send mb ((sender * 10) + i);
          incr sent
        done)
  done;
  Engine.spawn eng (fun () ->
      for _ = 1 to 30 do
        ignore (Mailbox.recv mb);
        incr received
      done);
  Engine.run eng;
  Alcotest.(check int) "sent all" 30 !sent;
  Alcotest.(check int) "received all" 30 !received;
  Alcotest.(check int) "queue empty" 0 (Mailbox.length mb)

let suite =
  [
    Alcotest.test_case "buffered before any receiver" `Quick
      test_buffered_before_any_receiver;
    Alcotest.test_case "fifo across many sends" `Quick
      test_fifo_across_many_sends;
    Alcotest.test_case "waiters served fifo" `Quick test_waiters_served_fifo;
    Alcotest.test_case "try_recv does not steal from a waiter" `Quick
      test_try_recv_does_not_steal_from_waiter;
    Alcotest.test_case "length counts only undelivered" `Quick
      test_length_counts_only_undelivered;
    Alcotest.test_case "interleaved senders conserve messages" `Quick
      test_interleaved_send_recv_conserves_messages;
  ]
