(* Observability pipeline: typed events, response-time decomposition,
   timeline reconstruction, time-series sampler, trace exporters. *)

open Ddbm_model

let mk_params ?(algorithm = Params.Twopl) ?(nodes = 4) ?(terminals = 16)
    ?(seed = 11) ?(measure = 20.) ?(sequential = false) () =
  let d = Params.default in
  {
    Params.database =
      {
        d.Params.database with
        Params.num_proc_nodes = nodes;
        partitioning_degree = nodes;
        file_size = 60;
      };
    workload =
      {
        d.Params.workload with
        Params.think_time = 0.;
        num_terminals = terminals;
        exec_pattern =
          (if sequential then Params.Sequential else Params.Parallel);
      };
    resources = d.Params.resources;
    cc = { d.Params.cc with Params.algorithm };
    run =
      {
        Params.seed;
        warmup = 0.;
        measure;
        restart_delay_floor = 0.5;
        fresh_restart_plan = false;
      };
      durability = Params.default_durability;
      faults = Fault_plan.zero;
      arrivals = Arrival.zero;
  }

(* Run with the typed-event pipeline attached; returns the result, the
   timeline, and every event in emission order. *)
let run_traced ?(sampler = None) params =
  let m = Ddbm.Machine.create params in
  let tracer = Ddbm.Machine.enable_events m in
  Option.iter (fun interval -> Ddbm.Machine.enable_sampler m ~interval) sampler;
  let timeline = Ddbm.Timeline.of_params params in
  Tracer.attach tracer (Ddbm.Timeline.sink timeline);
  let events = ref [] in
  Tracer.attach tracer (fun ~time ev -> events := (time, ev) :: !events);
  let result = Ddbm.Machine.execute m in
  (result, timeline, List.rev !events)

(* --- decomposition ------------------------------------------------- *)

(* Every reconstructed transaction's decomposition components sum to its
   measured response time, and the machine-side mean decomposition sums
   to the mean response. *)
let test_conservation () =
  let result, timeline, _ = run_traced (mk_params ()) in
  let records = Ddbm.Timeline.committed timeline in
  Alcotest.(check bool) "some commits" true (List.length records > 0);
  List.iter
    (fun (c : Ddbm.Timeline.committed) ->
      let total = Decomp.total c.Ddbm.Timeline.decomp in
      if Float.abs (total -. c.Ddbm.Timeline.response) > 1e-6 then
        Alcotest.failf "txn %d: decomposition %.9f != response %.9f"
          c.Ddbm.Timeline.tid total c.Ddbm.Timeline.response)
    records;
  let mean_total = Decomp.total result.Ddbm.Sim_result.decomp in
  Alcotest.(check (float 1e-6))
    "mean decomposition sums to mean response"
    result.Ddbm.Sim_result.mean_response mean_total

(* With warmup = 0, the timeline reconstructs exactly the windowed
   commits, and folding its per-transaction decompositions reproduces
   the machine's mean decomposition bit for bit: the event stream
   carries the same measured deltas the machine accumulated. *)
let check_cross_validation params =
  let result, timeline, _ = run_traced params in
  let records = Ddbm.Timeline.committed timeline in
  Alcotest.(check int) "timeline commits = windowed commits"
    result.Ddbm.Sim_result.commits (List.length records);
  let n = List.length records in
  let mean =
    Decomp.scale
      (List.fold_left
         (fun acc (c : Ddbm.Timeline.committed) ->
           Decomp.add acc c.Ddbm.Timeline.decomp)
         Decomp.zero records)
      (1. /. float_of_int n)
  in
  let machine = result.Ddbm.Sim_result.decomp in
  List.iter
    (fun (name, get) ->
      if not (Float.equal (get mean) (get machine)) then
        Alcotest.failf "%s: timeline %.17g != machine %.17g" name (get mean)
          (get machine))
    Decomp.fields

let test_cross_validation_parallel () = check_cross_validation (mk_params ())

let test_cross_validation_sequential () =
  check_cross_validation (mk_params ~sequential:true ~algorithm:Params.Bto ())

(* --- event stream -------------------------------------------------- *)

let test_event_stream_shape () =
  let result, _, events = run_traced (mk_params ()) in
  let count p = List.length (List.filter (fun (_, ev) -> p ev) events) in
  let commits = count (function Event.Committed _ -> true | _ -> false) in
  Alcotest.(check int) "committed events" result.Ddbm.Sim_result.commits
    commits;
  Alcotest.(check int) "aborted events" result.Ddbm.Sim_result.aborts
    (count (function Event.Aborted _ -> true | _ -> false));
  let sends = count (function Event.Msg_send _ -> true | _ -> false) in
  let recvs = count (function Event.Msg_recv _ -> true | _ -> false) in
  Alcotest.(check int) "message sends observed"
    result.Ddbm.Sim_result.messages sends;
  Alcotest.(check int) "every send delivered" sends recvs;
  Alcotest.(check bool) "snoop rounds observed (2PL)" true
    (count (function Event.Snoop_round _ -> true | _ -> false) > 0);
  Alcotest.(check bool) "lock grants observed" true
    (count (function Event.Lock_grant _ -> true | _ -> false) > 0);
  (* event times never decrease *)
  let monotone =
    fst
      (List.fold_left
         (fun (ok, prev) (time, _) -> (ok && time >= prev, time))
         (true, 0.) events)
  in
  Alcotest.(check bool) "emission times are monotone" true monotone

(* Attaching the tracer must not change the simulation: same seed with
   and without events yields bit-identical results. *)
let test_tracing_is_transparent () =
  let params = mk_params () in
  let plain = Ddbm.Machine.run params in
  let traced, _, _ = run_traced params in
  match Ddbm.Sim_result.diff plain traced with
  | [] -> ()
  | diffs ->
      Alcotest.failf "tracing changed the simulation:\n%s"
        (String.concat "\n" diffs)

(* --- sampler ------------------------------------------------------- *)

let test_sampler () =
  let params = mk_params ~measure:10. () in
  let interval = 0.5 in
  let _, _, events = run_traced ~sampler:(Some interval) params in
  let samples =
    List.filter_map
      (fun (time, ev) ->
        match ev with Event.Sample s -> Some (time, s) | _ -> None)
      events
  in
  (* one sample per interval over the 10-second run, first at t=0.5 *)
  Alcotest.(check int) "sample count" 20 (List.length samples);
  List.iter
    (fun (time, (s : Event.sample)) ->
      Alcotest.(check bool) "active non-negative" true (s.Event.active >= 0);
      Alcotest.(check bool) "host util in [0,1]" true
        (s.Event.host_cpu_util >= 0. && s.Event.host_cpu_util <= 1. +. 1e-9);
      Array.iter
        (fun (n : Event.node_sample) ->
          Alcotest.(check bool) "node cpu util in [0,1]" true
            (n.Event.cpu_util >= 0. && n.Event.cpu_util <= 1. +. 1e-9);
          Alcotest.(check bool) "node disk util in [0,1]" true
            (n.Event.disk_util >= 0. && n.Event.disk_util <= 1. +. 1e-9);
          Alcotest.(check bool) "queues non-negative" true
            (n.Event.cpu_queue >= 0 && n.Event.disk_queue >= 0))
        s.Event.nodes;
      Alcotest.(check bool) "sample time on the grid" true
        (Float.abs (Float.rem time interval) < 1e-9
        || Float.abs (Float.rem time interval -. interval) < 1e-9))
    samples

(* Cumulative busy time never resets, so interval utilizations can be
   computed by differencing across observation-window resets. *)
let test_busy_time_survives_window_reset () =
  let open Desim in
  let ts = Stats.Timeseries.create ~now:0. ~value:1. in
  Stats.Timeseries.update ts ~now:2. ~value:0.;
  Alcotest.(check (float 1e-9)) "area before reset" 2.
    (Stats.Timeseries.total_area ts ~now:3.);
  Stats.Timeseries.set_window ts ~now:3.;
  Alcotest.(check (float 1e-9)) "window average reset" 0.
    (Stats.Timeseries.average ts ~now:4.);
  Stats.Timeseries.update ts ~now:4. ~value:1.;
  Alcotest.(check (float 1e-9)) "total area keeps accumulating" 3.
    (Stats.Timeseries.total_area ts ~now:5.)

(* --- exporters ----------------------------------------------------- *)

(* Minimal JSON validator: accepts exactly the RFC 8259 grammar this
   repo's exporters can produce (no escapes beyond the ones they emit,
   which are still spec-complete for validation purposes). *)
module Json_check = struct
  exception Bad of string

  let validate (s : string) =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let peek_is c =
      match peek () with Some x -> Char.equal x c | None -> false
    in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some d when d = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word =
      String.iter expect word
    in
    let string_lit () =
      expect '"';
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
            advance ();
            (match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
                advance ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  match peek () with
                  | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                  | _ -> fail "bad \\u escape"
                done
            | _ -> fail "bad escape");
            go ()
        | Some _ ->
            advance ();
            go ()
      in
      go ()
    in
    let number () =
      (match peek () with Some '-' -> advance () | _ -> ());
      let digits () =
        let saw = ref false in
        let rec go () =
          match peek () with
          | Some '0' .. '9' ->
              saw := true;
              advance ();
              go ()
          | _ -> ()
        in
        go ();
        if not !saw then fail "expected digit"
      in
      digits ();
      (match peek () with
      | Some '.' ->
          advance ();
          digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with Some ('+' | '-') -> advance () | _ -> ());
          digits ()
      | _ -> ()
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek_is '}' then advance ()
          else
            let rec members () =
              skip_ws ();
              string_lit ();
              skip_ws ();
              expect ':';
              value ();
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ()
              | Some '}' -> advance ()
              | _ -> fail "expected , or }"
            in
            members ()
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek_is ']' then advance ()
          else
            let rec elements () =
              value ();
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements ()
              | Some ']' -> advance ()
              | _ -> fail "expected , or ]"
            in
            elements ()
      | Some '"' -> string_lit ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail "expected a value"
    in
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage"
end

let check_json label s =
  match Json_check.validate s with
  | () -> ()
  | exception Json_check.Bad msg -> Alcotest.failf "%s: %s" label msg

(* Export a run through both sinks at once; the Chrome document must be
   one valid JSON value and every JSONL line must parse. *)
let run_exported params =
  let m = Ddbm.Machine.create params in
  Ddbm.Machine.enable_sampler m ~interval:1.;
  let tracer = Ddbm.Machine.enable_events m in
  let chrome_buf = Buffer.create 4096 in
  let chrome =
    Ddbm.Trace_export.Chrome.create
      ~num_nodes:params.Params.database.Params.num_proc_nodes
      (Buffer.add_string chrome_buf)
  in
  Tracer.attach tracer (Ddbm.Trace_export.Chrome.sink chrome);
  let jsonl_buf = Buffer.create 4096 in
  Tracer.attach tracer
    (Ddbm.Trace_export.jsonl_sink (Buffer.add_string jsonl_buf));
  let result = Ddbm.Machine.execute m in
  Ddbm.Trace_export.Chrome.close chrome;
  (result, Buffer.contents chrome_buf, Buffer.contents jsonl_buf)

let test_exporters_emit_valid_json () =
  let _, chrome, jsonl = run_exported (mk_params ~measure:5. ()) in
  check_json "chrome document" chrome;
  let lines =
    String.split_on_char '\n' jsonl |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "jsonl non-empty" true (List.length lines > 0);
  List.iteri
    (fun i line -> check_json (Printf.sprintf "jsonl line %d" (i + 1)) line)
    lines

(* Golden Chrome trace of a tiny deterministic run. The simulation is
   bit-for-bit reproducible and the exporter's float formatting is
   OCaml's own, so the bytes are stable. Regenerate with
   [dune exec test/gen_golden.exe] after an intentional format or model
   change. *)
let golden_params =
  mk_params ~algorithm:Params.Twopl ~nodes:2 ~terminals:2 ~seed:3
    ~measure:1.5 ()

let golden_chrome () =
  let _, chrome, _ = run_exported golden_params in
  chrome

let test_golden_chrome_trace () =
  (* cwd is test/ under `dune runtest`, the project root under
     `dune exec test/test_main.exe` *)
  let path =
    if Sys.file_exists "golden/trace_tiny.json" then "golden/trace_tiny.json"
    else "test/golden/trace_tiny.json"
  in
  let ic = open_in_bin path in
  let expected = In_channel.input_all ic in
  close_in ic;
  let actual = golden_chrome () in
  if String.equal expected actual then ()
  else
    Alcotest.failf
      "Chrome trace diverged from golden file (expected %d bytes, got %d); \
       regenerate with `dune exec test/gen_golden.exe` if intentional"
      (String.length expected) (String.length actual)

(* --- Sim_result surface -------------------------------------------- *)

let test_csv_arity () =
  let result = Ddbm.Machine.run (mk_params ~measure:5. ()) in
  let header_cols =
    List.length (String.split_on_char ',' Ddbm.Sim_result.csv_header)
  in
  let row_cols =
    List.length
      (String.split_on_char ',' (Ddbm.Sim_result.to_csv_row result))
  in
  Alcotest.(check int) "header and row column counts" header_cols row_cols;
  Alcotest.(check bool) "decomposition columns present" true
    (List.for_all
       (fun (name, _) ->
         List.mem name (String.split_on_char ',' Ddbm.Sim_result.csv_header))
       Decomp.fields)

let suite =
  [
    Alcotest.test_case "per-transaction conservation" `Slow test_conservation;
    Alcotest.test_case "timeline = machine decomposition (parallel)" `Slow
      test_cross_validation_parallel;
    Alcotest.test_case "timeline = machine decomposition (sequential)" `Slow
      test_cross_validation_sequential;
    Alcotest.test_case "event stream shape" `Slow test_event_stream_shape;
    Alcotest.test_case "tracing is transparent" `Slow
      test_tracing_is_transparent;
    Alcotest.test_case "time-series sampler" `Slow test_sampler;
    Alcotest.test_case "busy time survives window reset" `Quick
      test_busy_time_survives_window_reset;
    Alcotest.test_case "exporters emit valid JSON" `Slow
      test_exporters_emit_valid_json;
    Alcotest.test_case "golden chrome trace" `Slow test_golden_chrome_trace;
    Alcotest.test_case "csv header/row arity" `Slow test_csv_arity;
  ]
