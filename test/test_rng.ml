open Desim

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same stream" true (Rng.float a = Rng.float b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 16 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 16 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "different streams differ" false (xs = ys)

let test_float_range () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.float r in
    if x < 0. || x >= 1. then Alcotest.fail "float out of [0,1)"
  done

let test_exponential_mean () =
  let r = Rng.create 11 in
  let n = 200_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~mean:2.5
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f close to 2.5" mean)
    true
    (abs_float (mean -. 2.5) < 0.05)

let test_exponential_zero_mean () =
  let r = Rng.create 3 in
  Alcotest.(check (float 0.)) "zero mean" 0. (Rng.exponential r ~mean:0.)

let test_int_range_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.int_range r ~lo:4 ~hi:12 in
    if x < 4 || x > 12 then Alcotest.fail "int_range out of bounds"
  done

let test_int_range_covers () =
  let r = Rng.create 6 in
  let seen = Array.make 9 false in
  for _ = 1 to 10_000 do
    seen.(Rng.int_range r ~lo:4 ~hi:12 - 4) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_sample_without_replacement () =
  let r = Rng.create 8 in
  for _ = 1 to 500 do
    let s = Rng.sample_without_replacement r ~n:20 ~k:8 in
    Alcotest.(check int) "k elements" 8 (List.length s);
    let sorted = List.sort_uniq Int.compare s in
    Alcotest.(check int) "distinct" 8 (List.length sorted);
    List.iter
      (fun x -> if x < 0 || x >= 20 then Alcotest.fail "out of range")
      s
  done

let test_sample_full () =
  let r = Rng.create 9 in
  let s = Rng.sample_without_replacement r ~n:5 ~k:5 in
  Alcotest.(check (list int))
    "permutation of 0..4" [ 0; 1; 2; 3; 4 ]
    (List.sort Int.compare s)

let test_permutation () =
  let r = Rng.create 10 in
  let p = Rng.permutation r 10 in
  let sorted = Array.copy p in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int))
    "permutation contents"
    (Array.init 10 Fun.id)
    sorted

let test_bool_probability () =
  let r = Rng.create 12 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bool r ~p:0.25 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "p=0.25 got %.3f" frac)
    true
    (abs_float (frac -. 0.25) < 0.01)

let test_split_independence () =
  let parent = Rng.create 99 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  let xs = List.init 16 (fun _ -> Rng.next_int64 c1) in
  let ys = List.init 16 (fun _ -> Rng.next_int64 c2) in
  Alcotest.(check bool) "children differ" false (xs = ys)

let prop_uniform_in_range =
  QCheck.Test.make ~name:"uniform stays in range" ~count:500
    QCheck.(pair (float_bound_exclusive 100.) (float_bound_exclusive 100.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      let r = Rng.create 1 in
      let x = Rng.uniform r ~lo ~hi in
      x >= lo && (x <= hi))

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "exponential zero mean" `Quick test_exponential_zero_mean;
    Alcotest.test_case "int_range bounds" `Quick test_int_range_bounds;
    Alcotest.test_case "int_range covers" `Quick test_int_range_covers;
    Alcotest.test_case "sample w/o replacement" `Quick
      test_sample_without_replacement;
    Alcotest.test_case "sample full range" `Quick test_sample_full;
    Alcotest.test_case "permutation" `Quick test_permutation;
    Alcotest.test_case "bool probability" `Slow test_bool_probability;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    QCheck_alcotest.to_alcotest prop_uniform_in_range;
  ]
