(* ddbm-lint: rule classification on in-memory fixtures, suppression and
   baseline behaviour, JSON report well-formedness (reusing the
   observability suite's validating parser), and a self-run asserting the
   checked-in tree is clean.

   Fixtures are string literals, so this file's own AST never trips the
   rules it is testing. *)

let codes (r : Lint.Driver.report) =
  List.map (fun (f : Lint.Finding.t) -> Lint.Finding.code f.rule) r.findings

(* Scan a single fixture at a neutral lib/ path. *)
let scan ?(path = "lib/foo/fixture.ml") src =
  Lint.Driver.scan_sources [ (path, src) ]

let check_codes label expected report =
  Alcotest.(check (list string)) label expected (codes report)

(* --- D1: polymorphic compare --------------------------------------- *)

let test_d1 () =
  check_codes "bare comparator flagged" [ "D1" ]
    (scan "let sorted xs = List.sort compare xs");
  check_codes "typed comparator clean" []
    (scan "let sorted xs = List.sort Int.compare xs");
  check_codes "Stdlib.compare flagged" [ "D1" ]
    (scan "let c a b = Stdlib.compare a b");
  check_codes "(=) on argument-carrying constructor" [ "D1" ]
    (scan "let f x = x = Some 1");
  check_codes "(<>) on tuple operand" [ "D1" ]
    (scan "let f p a b = p <> (a, b)");
  check_codes "(=) on nullary constructor is idiomatic" []
    (scan "let f x = x = None");
  check_codes "(=) on ints is clean" [] (scan "let f x = x = 1");
  check_codes "first-class (=) flagged" [ "D1" ]
    (scan "let mem x xs = List.exists (( = ) x) xs");
  check_codes "Hashtbl.hash flagged" [ "D1" ]
    (scan "let h x = Hashtbl.hash x");
  check_codes "local typed compare shadows the polymorphic one" []
    (scan
       "let compare a b = Int.compare a.f b.f\n\
        let sorted xs = List.sort compare xs")

(* --- D2: hash-order escape ----------------------------------------- *)

let test_d2 () =
  check_codes "iter flagged" [ "D2" ]
    (scan "let dump h = Hashtbl.iter (fun k v -> Printf.printf \"%d%d\" k v) h");
  check_codes "escaping fold flagged" [ "D2" ]
    (scan "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h []");
  check_codes "fold sunk into typed sort is clean" []
    (scan
       "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort \
        Int.compare");
  (* a bare-compare sort does not sanction the fold: both hazards fire *)
  let r =
    scan
      "let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort \
       compare"
  in
  Alcotest.(check bool)
    "bare-compare sort sanctions nothing" true
    (List.mem "D2" (codes r) && List.mem "D1" (codes r));
  check_codes "module-named table via to_seq flagged" [ "D2" ]
    (scan "let all page_table = Page_table.to_seq page_table |> List.of_seq")

(* --- D3: ambient nondeterminism ------------------------------------ *)

let test_d3 () =
  check_codes "Random flagged" [ "D3" ] (scan "let roll () = Random.int 6");
  check_codes "Sys.time flagged" [ "D3" ] (scan "let t () = Sys.time ()");
  check_codes "Unix.gettimeofday flagged" [ "D3" ]
    (scan "let t () = Unix.gettimeofday ()");
  check_codes "rng.ml itself is exempt" []
    (scan ~path:"lib/desim/rng.ml" "let roll () = Random.int 6")

(* --- D4: float equality -------------------------------------------- *)

let test_d4 () =
  check_codes "float (=) flagged" [ "D4" ] (scan "let zero x = x = 0.0");
  check_codes "float (<>) flagged" [ "D4" ] (scan "let nz x = x <> 1.5");
  check_codes "float arithmetic operand flagged" [ "D4" ]
    (scan "let f a b c = a = b +. c");
  check_codes "Float.equal is the sanctioned spelling" []
    (scan "let zero x = Float.equal x 0.0")

(* --- D5: required interfaces --------------------------------------- *)

let test_d5 () =
  Alcotest.(check bool)
    "lib/mach requires an mli" true
    (Lint.Driver.mli_required ~path:"lib/mach/foo.ml");
  Alcotest.(check bool)
    "lib/desim requires an mli" true
    (Lint.Driver.mli_required ~path:"lib/desim/foo.ml");
  Alcotest.(check bool)
    "lib/cc requires an mli" true
    (Lint.Driver.mli_required ~path:"lib/cc/foo.ml");
  Alcotest.(check bool)
    "lib/par requires an mli" true
    (Lint.Driver.mli_required ~path:"lib/par/pool.ml");
  Alcotest.(check bool)
    "the lint library holds itself to the same rule" true
    (Lint.Driver.mli_required ~path:"lib/lint/race.ml");
  Alcotest.(check bool)
    "bin does not" false
    (Lint.Driver.mli_required ~path:"bin/ddbm_cli.ml")

(* --- D6: catch-all over protected variants ------------------------- *)

let event_fixture =
  ( "lib/mach/event.ml",
    "type t = Started of int | Finished of int | Cancelled of int" )

let test_d6 () =
  let scan2 use_src =
    Lint.Driver.scan_sources [ event_fixture; ("lib/core/use.ml", use_src) ]
  in
  let flagged =
    scan2 "let f e = match e with Event.Started _ -> 1 | _ -> 0"
  in
  check_codes "catch-all over Event flagged" [ "D6" ] flagged;
  Alcotest.(check (list string))
    "finding is in the consumer" [ "lib/core/use.ml" ]
    (List.map (fun (f : Lint.Finding.t) -> f.file) flagged.findings);
  check_codes "full enumeration clean" []
    (scan2
       "let f e = match e with Event.Started _ -> 1 | Event.Finished _ -> 2 \
        | Event.Cancelled _ -> 3");
  check_codes "unrelated match with wildcard clean" []
    (scan2 "let f s = match s with \"x\" -> 1 | _ -> 0");
  (* outside lib/ and bin/, predicate lambdas over events are fine *)
  check_codes "test code out of scope" []
    (Lint.Driver.scan_sources
       [
         event_fixture;
         ( "test/use.ml",
           "let f e = match e with Event.Started _ -> 1 | _ -> 0" );
       ])

(* --- suppression and baseline -------------------------------------- *)

let test_allow () =
  let r = scan "let sorted xs = List.sort compare xs (* lint: allow poly-compare *)" in
  check_codes "allow comment suppresses" [] r;
  Alcotest.(check int) "counted as suppressed" 1 r.suppressed;
  check_codes "allow on the preceding line" []
    (scan
       "(* lint: allow poly-compare *)\nlet sorted xs = List.sort compare xs");
  check_codes "allow does not reach two lines down" [ "D1" ]
    (scan
       "(* lint: allow poly-compare *)\nlet a = 1\n\
        let sorted xs = List.sort compare xs");
  check_codes "wrong rule does not suppress" [ "D1" ]
    (scan "let sorted xs = List.sort compare xs (* lint: allow ambient *)");
  let file_scope =
    scan "(* lint: allow ambient file *)\nlet a () = Random.int 2\nlet b () = Sys.time ()"
  in
  check_codes "file scope suppresses everywhere" [] file_scope;
  Alcotest.(check int) "both sites counted" 2 file_scope.suppressed;
  check_codes "rule code works as the token" []
    (scan "let roll () = Random.int 6 (* lint: allow D3 *)")

let test_parse_error () =
  check_codes "unparseable file reports P0" [ "P0" ] (scan "let let let")

(* An unreadable .ml file must surface as a P1 finding in the report,
   not silently drop out of the scan. A dangling symlink is the one
   unreadable shape that even a root-run test can produce. *)
let test_unreadable () =
  let dir = Filename.temp_file "lint_walk" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Unix.symlink (Filename.concat dir "nowhere") (Filename.concat dir "gone.ml");
      match Lint.Driver.run ~roots:[ dir ] () with
      | Error msg -> Alcotest.failf "run failed outright: %s" msg
      | Ok report ->
          check_codes "dangling .ml reported as P1" [ "P1" ] report;
          Alcotest.(check int)
            "the file still counts as scanned" 1
            report.Lint.Driver.files_scanned)

(* --- report rendering ---------------------------------------------- *)

let validate_json label s =
  match Test_observability.Json_check.validate s with
  | () -> ()
  | exception Test_observability.Json_check.Bad msg ->
      Alcotest.failf "%s: %s\n%s" label msg s

let test_json () =
  let dirty = scan "let sorted xs = List.sort compare xs" in
  validate_json "report with findings" (Lint.Driver.render_json dirty);
  let clean = scan "let x = 1" in
  validate_json "clean report" (Lint.Driver.render_json clean);
  Alcotest.(check bool)
    "text rendering says clean" true
    (String.starts_with ~prefix:"ddbm-lint: clean"
       (Lint.Driver.render_text clean))

(* --- self-run: the checked-in tree stays at zero findings ---------- *)

let repo_root () =
  let rec up dir =
    if
      Sys.file_exists (Filename.concat dir "lint.baseline")
      && Sys.file_exists (Filename.concat dir "dune-project")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  up (Sys.getcwd ())

let test_self_run () =
  match repo_root () with
  | None -> Alcotest.fail "cannot locate the repository root from the test cwd"
  | Some root ->
      let cwd = Sys.getcwd () in
      Fun.protect
        ~finally:(fun () -> Sys.chdir cwd)
        (fun () ->
          Sys.chdir root;
          match
            Lint.Driver.run ~baseline:"lint.baseline"
              ~roots:[ "lib"; "bin"; "bench"; "test" ] ()
          with
          | Error msg -> Alcotest.failf "lint self-run failed: %s" msg
          | Ok report ->
              validate_json "self-run JSON" (Lint.Driver.render_json report);
              if not (Lint.Driver.clean report) then
                Alcotest.failf "tree has lint findings:\n%s"
                  (Lint.Driver.render_text report))

let suite =
  [
    Alcotest.test_case "D1 poly-compare" `Quick test_d1;
    Alcotest.test_case "D2 hashtbl-order" `Quick test_d2;
    Alcotest.test_case "D3 ambient" `Quick test_d3;
    Alcotest.test_case "D4 float-eq" `Quick test_d4;
    Alcotest.test_case "D5 missing-mli" `Quick test_d5;
    Alcotest.test_case "D6 catch-all-event" `Quick test_d6;
    Alcotest.test_case "allow comments" `Quick test_allow;
    Alcotest.test_case "parse errors surface" `Quick test_parse_error;
    Alcotest.test_case "unreadable files surface" `Quick test_unreadable;
    Alcotest.test_case "JSON report well-formed" `Quick test_json;
    Alcotest.test_case "self-run is clean" `Quick test_self_run;
  ]
