(* Open-loop arrival subsystem: spec codec round-trips, Poisson and
   profile sampling determinism, segment-boundary exactness, admission
   control (shed policies, deadline expiry, MPL limiter) with the
   offered = admitted + shed + expired + still-queued conservation
   identity, closed-loop equivalence, metastable recovery after a flash
   crowd, and a seeded random-spec sweep as the capstone. *)

open Ddbm_model

(* --- spec codec ----------------------------------------------------- *)

let test_codec_roundtrip_handpicked () =
  let specs =
    [
      "";
      "qps=50";
      "qps=5000,cap=128,mpl=32";
      "qps=20,cap=4,shed=oldest,deadline=0.5,mpl=8,retry-base=0.2,retry-cap=3";
      "profile=hold:40/5";
      "profile=ramp:0..50000/60,hold:50000/120";
      "profile=sine:60~80/3/8,spike:20^300/10,mpl=4";
      "profile=hold:0/5,ramp:10..0/2,cap=2";
    ]
  in
  List.iter
    (fun spec ->
      match Arrival.of_spec spec with
      | Error msg -> Alcotest.fail (spec ^ ": " ^ msg)
      | Ok a -> (
          let printed = Arrival.to_spec a in
          match Arrival.of_spec printed with
          | Error msg -> Alcotest.fail (printed ^ ": " ^ msg)
          | Ok b ->
              Alcotest.(check bool)
                (Printf.sprintf "%S round-trips (via %S)" spec printed)
                true (a = b)))
    specs;
  Alcotest.(check string) "zero prints empty" "" (Arrival.to_spec Arrival.zero)

let test_codec_rejects_invalid () =
  List.iter
    (fun spec ->
      match Arrival.of_spec spec with
      | Ok _ -> Alcotest.fail ("accepted " ^ spec)
      | Error _ -> ())
    [
      "qps=0";
      "qps=-5";
      "qps=x";
      "wibble=1";
      "qps=10,profile=hold:1/1";
      (* admission keys without a rate process make no sense *)
      "cap=4";
      "shed=oldest";
      "mpl=8";
      "profile=hold:10/-1";
      "profile=ramp:10/5";
      "profile=";
      "qps=10,shed=sideways";
      "qps=10,retry-base=2,retry-cap=1";
    ]

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"arrival spec codec round-trips" ~count:200
    (QCheck.make Ddbm_check.Config_gen.gen_arrivals ~print:Arrival.to_spec)
    (fun a ->
      match Arrival.of_spec (Arrival.to_spec a) with
      | Ok b -> a = b
      | Error msg -> QCheck.Test.fail_report msg)

(* --- sampling determinism and boundary exactness -------------------- *)

let sample_all spec ~seed ~horizon =
  let a =
    match Arrival.of_spec spec with
    | Ok a -> a
    | Error msg -> Alcotest.fail msg
  in
  let rng = Desim.Rng.create seed in
  let rec go now acc =
    match Arrival.next_arrival a rng ~now ~horizon with
    | None -> List.rev acc
    | Some at -> go at (at :: acc)
  in
  go 0. []

let test_poisson_deterministic_per_seed () =
  let xs = sample_all "qps=25" ~seed:7 ~horizon:40. in
  let ys = sample_all "qps=25" ~seed:7 ~horizon:40. in
  let zs = sample_all "qps=25" ~seed:8 ~horizon:40. in
  Alcotest.(check bool) "draws exist" true (List.length xs > 100);
  Alcotest.(check (list (float 0.))) "same seed, same arrivals" xs ys;
  Alcotest.(check bool) "different seed, different arrivals" true (xs <> zs);
  (* loose rate sanity: ~25/s over 40 s *)
  let n = float_of_int (List.length xs) in
  Alcotest.(check bool)
    (Printf.sprintf "count %.0f near 1000" n)
    true
    (n > 800. && n < 1200.);
  List.iter2
    (fun a b ->
      if b <= a then
        Alcotest.failf "arrivals not strictly increasing: %.17g then %.17g" a b)
    (List.filteri (fun i _ -> i < List.length xs - 1) xs)
    (List.tl xs)

let test_profile_boundaries_exact () =
  (* a dead middle segment: no arrival may land in (5, 10], and the
     profile ends at 15 — no arrival past it even with a larger horizon *)
  let xs = sample_all "profile=hold:40/5,hold:0/5,hold:40/5" ~seed:11 ~horizon:100. in
  Alcotest.(check bool) "both live segments produced arrivals" true
    (List.exists (fun t -> t <= 5.) xs && List.exists (fun t -> t > 10.) xs);
  List.iter
    (fun t ->
      if t > 5. && t <= 10. then
        Alcotest.failf "arrival %.17g inside the zero-rate segment" t;
      if t > 15. then Alcotest.failf "arrival %.17g past the profile end" t)
    xs

let test_rate_function () =
  let a =
    match Arrival.of_spec "profile=ramp:0..100/10,hold:20/5" with
    | Ok a -> a
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check (float 1e-9)) "ramp start" 0. (Arrival.rate a ~at:0.);
  Alcotest.(check (float 1e-9)) "ramp midpoint" 50. (Arrival.rate a ~at:5.);
  Alcotest.(check (float 1e-9)) "hold segment" 20. (Arrival.rate a ~at:12.);
  Alcotest.(check (float 1e-9)) "past the end" 0. (Arrival.rate a ~at:16.);
  Alcotest.(check (float 1e-9)) "qps is flat" 7.
    (Arrival.rate
       (match Arrival.of_spec "qps=7" with Ok a -> a | Error m -> Alcotest.fail m)
       ~at:123.)

(* --- end-to-end machine runs ---------------------------------------- *)

let open_params ?(algorithm = Params.Twopl) ?(seed = 42) ?(warmup = 2.)
    ?(measure = 15.) spec =
  let arrivals =
    match Arrival.of_spec spec with
    | Ok a -> a
    | Error msg -> Alcotest.fail msg
  in
  let d = Params.default in
  {
    d with
    Params.database =
      {
        d.Params.database with
        Params.num_proc_nodes = 2;
        partitioning_degree = 2;
      };
    workload =
      { d.Params.workload with Params.num_terminals = 8; think_time = 0. };
    cc = { d.Params.cc with Params.algorithm };
    run = { d.Params.run with Params.seed; warmup; measure };
    arrivals;
  }

let check_conforming name (r : Ddbm.Sim_result.t) =
  match Ddbm_check.Invariants.check r with
  | [] -> ()
  | errs -> Alcotest.fail (name ^ ": " ^ String.concat "; " errs)

let conservation name (r : Ddbm.Sim_result.t) =
  check_conforming name r;
  Alcotest.(check int)
    (name ^ ": offered = admitted + shed + expired + still_queued")
    r.Ddbm.Sim_result.offered
    (r.Ddbm.Sim_result.admitted + r.Ddbm.Sim_result.shed
   + r.Ddbm.Sim_result.expired + r.Ddbm.Sim_result.still_queued)

let test_shed_newest_conserves_at_2x_capacity () =
  (* mpl 4 and a 4-deep queue against ~30 offered/s: far beyond capacity,
     most arrivals must be shed, and the books must still balance *)
  let r = Ddbm.Machine.run (open_params "qps=30,cap=4,mpl=4") in
  conservation "reject-newest" r;
  Alcotest.(check bool) "commits happened" true (r.Ddbm.Sim_result.commits > 0);
  Alcotest.(check bool) "overload shed arrivals" true
    (r.Ddbm.Sim_result.shed > r.Ddbm.Sim_result.admitted / 2);
  Alcotest.(check bool) "queue depth bounded by cap" true
    (r.Ddbm.Sim_result.queue_depth_max <= 4);
  Alcotest.(check bool) "mean_active bounded by mpl" true
    (r.Ddbm.Sim_result.mean_active <= 4. +. 1e-6)

let test_shed_oldest_conserves_at_2x_capacity () =
  let r = Ddbm.Machine.run (open_params "qps=30,cap=4,mpl=4,shed=oldest") in
  conservation "reject-oldest" r;
  Alcotest.(check bool) "overload shed arrivals" true
    (r.Ddbm.Sim_result.shed > 0);
  Alcotest.(check bool) "queue depth bounded by cap" true
    (r.Ddbm.Sim_result.queue_depth_max <= 4)

let test_deadline_expires_queued_arrivals () =
  let r = Ddbm.Machine.run (open_params "qps=30,cap=16,mpl=1,deadline=0.5") in
  conservation "deadline" r;
  Alcotest.(check bool) "stale arrivals expired" true
    (r.Ddbm.Sim_result.expired > 0)

let test_unlimited_mpl_admits_everything () =
  (* without an MPL gate every arrival dispatches immediately: the queue
     never forms and nothing is shed *)
  let r = Ddbm.Machine.run (open_params ~measure:10. "qps=5") in
  conservation "mpl=0" r;
  Alcotest.(check int) "admitted = offered" r.Ddbm.Sim_result.offered
    r.Ddbm.Sim_result.admitted;
  Alcotest.(check int) "nothing shed" 0 r.Ddbm.Sim_result.shed;
  Alcotest.(check int) "nothing queued" 0 r.Ddbm.Sim_result.queue_depth_max

let test_open_loop_deterministic () =
  let params = open_params "profile=spike:5^120/4,hold:10/30,cap=8,mpl=6" in
  let a = Ddbm.Machine.run params in
  let b = Ddbm.Machine.run params in
  Alcotest.(check bool) "same seed + same spec = identical results" true
    (Ddbm.Sim_result.equal a b);
  conservation "determinism run" a

let test_open_loop_serializable () =
  let params = open_params ~algorithm:Params.Opt "qps=25,cap=8,mpl=8" in
  let m = Ddbm.Machine.create params in
  let audit = Ddbm.Machine.enable_audit m in
  let r = Ddbm.Machine.execute m in
  (match Ddbm.Audit.check audit with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("audit: " ^ msg));
  conservation "audited OPT overload" r

let test_metastable_recovery_after_flash_crowd () =
  (* a flash crowd hammers the machine for a few seconds, then traffic
     settles at a trickle. Measuring after the crowd: the queue must have
     drained (no metastable backlog) and goodput must track the offered
     trickle again. *)
  let r =
    Ddbm.Machine.run
      (open_params ~warmup:20. ~measure:28.
         "profile=spike:1^150/10,hold:1/50,cap=32,mpl=8")
  in
  conservation "flash crowd" r;
  Alcotest.(check bool) "the crowd overloaded the machine" true
    (r.Ddbm.Sim_result.shed > 0);
  Alcotest.(check bool) "queue drained after the crowd" true
    (r.Ddbm.Sim_result.still_queued <= 2);
  Alcotest.(check bool)
    (Printf.sprintf "goodput recovered to the offered trickle (tput %.3f)"
       r.Ddbm.Sim_result.throughput)
    true
    (r.Ddbm.Sim_result.throughput > 0.5 && r.Ddbm.Sim_result.throughput < 3.);
  (* queue stats are windowed: the measurement window opens with the
     crowd's residual backlog still draining, so the max reflects that
     backlog — but it must only shrink, never climb back toward the cap *)
  Alcotest.(check bool)
    (Printf.sprintf "post-crowd queue only drains (max %d, still %d)"
       r.Ddbm.Sim_result.queue_depth_max r.Ddbm.Sim_result.still_queued)
    true
    (r.Ddbm.Sim_result.queue_depth_max <= 24)

(* --- closed-loop equivalence ---------------------------------------- *)

let test_closed_loop_untouched () =
  (* the empty spec is the degenerate closed loop: no arrival runtime is
     installed and the overload counters must all read zero *)
  (match Arrival.of_spec "" with
  | Ok a -> Alcotest.(check bool) "of_spec \"\" is zero" true (a = Arrival.zero)
  | Error msg -> Alcotest.fail msg);
  let d = Params.default in
  let params =
    {
      d with
      Params.database =
        { d.Params.database with Params.num_proc_nodes = 2; partitioning_degree = 2 };
      workload =
        { d.Params.workload with Params.num_terminals = 8; think_time = 1. };
      run = { d.Params.run with Params.warmup = 2.; measure = 10. };
    }
  in
  let r = Ddbm.Machine.run params in
  check_conforming "closed loop" r;
  Alcotest.(check int) "offered = 0" 0 r.Ddbm.Sim_result.offered;
  Alcotest.(check int) "admitted = 0" 0 r.Ddbm.Sim_result.admitted;
  Alcotest.(check int) "shed = 0" 0 r.Ddbm.Sim_result.shed;
  Alcotest.(check int) "expired = 0" 0 r.Ddbm.Sim_result.expired;
  Alcotest.(check int) "still_queued = 0" 0 r.Ddbm.Sim_result.still_queued;
  Alcotest.(check int) "queue_depth_max = 0" 0 r.Ddbm.Sim_result.queue_depth_max;
  Alcotest.(check (float 0.)) "queue_depth_mean = 0" 0.
    r.Ddbm.Sim_result.queue_depth_mean

let test_validate_rejects_fresh_restart_with_open_loop () =
  let p = open_params "qps=10" in
  let p =
    { p with Params.run = { p.Params.run with Params.fresh_restart_plan = true } }
  in
  match Params.validate p with
  | Ok () -> Alcotest.fail "accepted fresh_restart_plan with open-loop arrivals"
  | Error _ -> ()

(* --- result plumbing ------------------------------------------------- *)

let test_diff_detects_overload_mismatch () =
  let r = Ddbm.Machine.run (open_params ~measure:8. "qps=20,cap=4,mpl=4") in
  let mentions field diffs =
    List.exists (fun line -> Astring_contains.contains line field) diffs
  in
  List.iter
    (fun (field, doctor) ->
      let diffs = Ddbm.Sim_result.diff r (doctor r) in
      Alcotest.(check bool) ("doctored " ^ field ^ " detected") true
        (diffs <> [] && mentions field diffs))
    [
      ("offered", fun r -> { r with Ddbm.Sim_result.offered = r.Ddbm.Sim_result.offered + 1 });
      ("shed", fun r -> { r with Ddbm.Sim_result.shed = r.Ddbm.Sim_result.shed - 1 });
      ("expired", fun r -> { r with Ddbm.Sim_result.expired = 99 });
      ("still_queued", fun r -> { r with Ddbm.Sim_result.still_queued = 7 });
      ("queue_depth_max", fun r -> { r with Ddbm.Sim_result.queue_depth_max = 99 });
      ( "queue_depth_mean",
        fun r -> { r with Ddbm.Sim_result.queue_depth_mean = 1e9 } );
    ];
  Alcotest.(check bool) "undoctored result is equal to itself" true
    (Ddbm.Sim_result.equal r r)

let test_pp_and_csv_carry_overload_fields () =
  let open_r = Ddbm.Machine.run (open_params ~measure:8. "qps=20,cap=4,mpl=4") in
  let closed_r = Ddbm.Machine.run (open_params ~measure:8. "") in
  let render r = Format.asprintf "%a" Ddbm.Sim_result.pp r in
  Alcotest.(check bool) "open-loop pp has an overload section" true
    (Astring_contains.contains (render open_r) "overload:");
  Alcotest.(check bool) "closed-loop pp has none" false
    (Astring_contains.contains (render closed_r) "overload:");
  (* the CSV row must stay aligned with the header *)
  let cols s = List.length (String.split_on_char ',' s) in
  Alcotest.(check int) "csv row width matches header"
    (cols Ddbm.Sim_result.csv_header)
    (cols (Ddbm.Sim_result.to_csv_row open_r))

(* --- capstone: seeded random-spec sweep ------------------------------ *)

let sweep_count () =
  match Sys.getenv_opt "DDBM_ARRIVAL_SWEEP" with
  | Some s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> 50)
  | None -> 50

(* Random open-loop specs (the conformance generator's distribution:
   constant rates and multi-segment profiles, flash crowds, tiny queues
   against 2x-plus overload) each run end-to-end: serializability audit,
   conservation, bounded queue, bounded population. Alternates 2PL and
   OPT so both blocking and restart regimes face every overload shape. *)
let test_random_spec_sweep () =
  let st = Random.State.make [| 0xA881 |] (* lint: allow ambient *) in
  let rec draw_open () =
    let a = QCheck.Gen.generate1 ~rand:st Ddbm_check.Config_gen.gen_arrivals in
    if Arrival.open_loop a then a else draw_open ()
  in
  let crafted =
    (* always include the canonical 2x-capacity overload and a flash
       crowd, whatever the random draws produce *)
    [ "qps=40,cap=4,mpl=4"; "profile=spike:5^200/5,hold:5/10,cap=8,mpl=8" ]
    |> List.map (fun s ->
           match Arrival.of_spec s with
           | Ok a -> a
           | Error msg -> Alcotest.fail msg)
  in
  let n = sweep_count () in
  let specs =
    crafted @ List.init (Stdlib.max 0 (n - List.length crafted)) (fun _ -> draw_open ())
  in
  List.iteri
    (fun i arrivals ->
      let spec = Arrival.to_spec arrivals in
      let algorithm = if i mod 2 = 0 then Params.Twopl else Params.Opt in
      let params =
        { (open_params ~algorithm ~seed:(1000 + i) ~warmup:1. ~measure:5. "qps=1")
          with Params.arrivals = arrivals }
      in
      let m = Ddbm.Machine.create params in
      let audit = Ddbm.Machine.enable_audit m in
      let r = Ddbm.Machine.execute m in
      (match Ddbm.Audit.check audit with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "spec %S: audit: %s" spec msg);
      conservation (Printf.sprintf "spec %S" spec) r;
      if r.Ddbm.Sim_result.queue_depth_max > arrivals.Arrival.queue_cap then
        Alcotest.failf "spec %S: queue_depth_max %d beyond cap %d" spec
          r.Ddbm.Sim_result.queue_depth_max arrivals.Arrival.queue_cap;
      if
        arrivals.Arrival.mpl > 0
        && r.Ddbm.Sim_result.mean_active > float_of_int arrivals.Arrival.mpl +. 1e-6
      then
        Alcotest.failf "spec %S: mean_active %.3f beyond mpl %d" spec
          r.Ddbm.Sim_result.mean_active arrivals.Arrival.mpl)
    specs

let suite =
  [
    Alcotest.test_case "codec round-trips handpicked specs" `Quick
      test_codec_roundtrip_handpicked;
    Alcotest.test_case "codec rejects invalid specs" `Quick
      test_codec_rejects_invalid;
    QCheck_alcotest.to_alcotest
      ~rand:(Random.State.make [| 0xA117 |] (* lint: allow ambient *))
      prop_spec_roundtrip;
    Alcotest.test_case "poisson arrivals deterministic per seed" `Quick
      test_poisson_deterministic_per_seed;
    Alcotest.test_case "profile segment boundaries exact" `Quick
      test_profile_boundaries_exact;
    Alcotest.test_case "rate function" `Quick test_rate_function;
    Alcotest.test_case "reject-newest conserves at 2x capacity" `Slow
      test_shed_newest_conserves_at_2x_capacity;
    Alcotest.test_case "reject-oldest conserves at 2x capacity" `Slow
      test_shed_oldest_conserves_at_2x_capacity;
    Alcotest.test_case "deadline expires queued arrivals" `Slow
      test_deadline_expires_queued_arrivals;
    Alcotest.test_case "unlimited mpl admits everything" `Slow
      test_unlimited_mpl_admits_everything;
    Alcotest.test_case "open loop deterministic per seed" `Slow
      test_open_loop_deterministic;
    Alcotest.test_case "open-loop overload stays serializable" `Slow
      test_open_loop_serializable;
    Alcotest.test_case "metastable recovery after a flash crowd" `Slow
      test_metastable_recovery_after_flash_crowd;
    Alcotest.test_case "closed loop pays and records nothing" `Slow
      test_closed_loop_untouched;
    Alcotest.test_case "fresh restart plan rejected with open loop" `Quick
      test_validate_rejects_fresh_restart_with_open_loop;
    Alcotest.test_case "diff detects doctored overload counters" `Slow
      test_diff_detects_overload_mismatch;
    Alcotest.test_case "pp and csv carry the overload fields" `Slow
      test_pp_and_csv_carry_overload_fields;
    Alcotest.test_case "random arrival-spec sweep" `Slow test_random_spec_sweep;
  ]
