open Desim

let test_ivar_fill_before_read () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  Ivar.fill iv 5;
  let got = ref 0 in
  Engine.spawn eng (fun () -> got := Ivar.read iv);
  Engine.run eng;
  Alcotest.(check int) "immediate read" 5 !got

let test_ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already resolved") (fun () -> Ivar.fill iv 2)

exception Poison

let test_ivar_poison () =
  let eng = Engine.create () in
  let iv : int Ivar.t = Ivar.create () in
  let caught = ref false in
  Engine.spawn eng (fun () ->
      try ignore (Ivar.read iv) with Poison -> caught := true);
  Engine.spawn eng (fun () ->
      Engine.wait 1.;
      Ivar.poison iv Poison);
  Engine.run eng;
  Alcotest.(check bool) "poison delivered" true !caught

let test_ivar_peek () =
  let iv = Ivar.create () in
  Alcotest.(check (option int)) "empty" None (Ivar.peek iv);
  Ivar.fill iv 3;
  Alcotest.(check (option int)) "filled" (Some 3) (Ivar.peek iv);
  Alcotest.(check bool) "is_filled" true (Ivar.is_filled iv)

let test_mailbox_order () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  Engine.spawn eng (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Engine.spawn eng (fun () ->
      Mailbox.send mb "a";
      Engine.wait 1.;
      Mailbox.send mb "b";
      Mailbox.send mb "c");
  Engine.run eng;
  Alcotest.(check (list string)) "fifo" [ "a"; "b"; "c" ] (List.rev !got)

let test_mailbox_blocking_recv () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let t_recv = ref nan in
  Engine.spawn eng (fun () ->
      let (_ : int) = Mailbox.recv mb in
      t_recv := Engine.now eng);
  Engine.spawn eng (fun () ->
      Engine.wait 3.;
      Mailbox.send mb 1);
  Engine.run eng;
  Alcotest.(check (float 1e-9)) "woke at send time" 3. !t_recv

let test_mailbox_multiple_receivers () =
  let eng = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  for i = 1 to 2 do
    Engine.spawn eng (fun () ->
        let v = Mailbox.recv mb in
        got := (i, v) :: !got)
  done;
  Engine.spawn eng (fun () ->
      Mailbox.send mb "x";
      Mailbox.send mb "y");
  Engine.run eng;
  (* first-waiting receiver gets first message *)
  Alcotest.(check (list (pair int string)))
    "handed out in order"
    [ (1, "x"); (2, "y") ]
    (List.sort
       (fun (a, x) (b, y) ->
         match Int.compare a b with 0 -> String.compare x y | n -> n)
       !got)

let test_mailbox_try_recv () =
  let mb = Mailbox.create () in
  Alcotest.(check (option int)) "empty" None (Mailbox.try_recv mb);
  Mailbox.send mb 9;
  Alcotest.(check int) "length" 1 (Mailbox.length mb);
  Alcotest.(check (option int)) "nonempty" (Some 9) (Mailbox.try_recv mb);
  Alcotest.(check (option int)) "drained" None (Mailbox.try_recv mb)

let suite =
  [
    Alcotest.test_case "ivar fill before read" `Quick test_ivar_fill_before_read;
    Alcotest.test_case "ivar double fill" `Quick test_ivar_double_fill;
    Alcotest.test_case "ivar poison" `Quick test_ivar_poison;
    Alcotest.test_case "ivar peek" `Quick test_ivar_peek;
    Alcotest.test_case "mailbox order" `Quick test_mailbox_order;
    Alcotest.test_case "mailbox blocking recv" `Quick test_mailbox_blocking_recv;
    Alcotest.test_case "mailbox multiple receivers" `Quick
      test_mailbox_multiple_receivers;
    Alcotest.test_case "mailbox try_recv" `Quick test_mailbox_try_recv;
  ]
