open Desim

let test_push_pop_sorted () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let out = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some x ->
        out := x :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 9; 5; 4; 3; 2; 1; 1 ] !out

let test_empty () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h)

let test_peek_does_not_remove () =
  let h = Heap.create ~cmp:Int.compare in
  Heap.push h 7;
  Alcotest.(check (option int)) "peek" (Some 7) (Heap.peek h);
  Alcotest.(check int) "size" 1 (Heap.size h)

let test_clear () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_fold () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 1; 2; 3; 4 ];
  let sum = Heap.fold h ~init:0 ~f:( + ) in
  Alcotest.(check int) "sum" 10 sum

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with Some x -> drain (x :: acc) | None -> acc
      in
      let out = List.rev (drain []) in
      out = List.sort Int.compare xs)

let prop_heap_size =
  QCheck.Test.make ~name:"heap size tracks pushes" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      Heap.size h = List.length xs)

let suite =
  [
    Alcotest.test_case "push/pop sorted" `Quick test_push_pop_sorted;
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "peek does not remove" `Quick test_peek_does_not_remove;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "fold" `Quick test_fold;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_heap_size;
  ]
