(* Queueing-theoretic validation of the simulation kernel: the resource
   models must match closed-form results for classical queues, and the
   whole machine must satisfy Little's law at steady state. These tests
   give the simulator the credibility its figures rest on. *)

open Desim

let close ~tolerance measured expected =
  abs_float (measured -. expected) /. expected < tolerance

(* M/M/1 with processor sharing: Poisson arrivals rate l, exponential
   service rate m; mean sojourn time = 1 / (m - l), identical to FCFS
   M/M/1. We drive the Cpu model with exponential "instruction" demands. *)
let test_mm1_ps_sojourn () =
  let eng = Engine.create () in
  let rng = Rng.create 4242 in
  let rate = 1000. (* instructions/s *) in
  let cpu = Cpu.create eng ~rate in
  let lambda = 50. and mu = 100. in
  (* service demand: exponential with mean rate/mu instructions *)
  let sojourn = Stats.Tally.create () in
  let n = 30_000 in
  Engine.spawn eng (fun () ->
      for _ = 1 to n do
        Engine.wait (Rng.exponential rng ~mean:(1. /. lambda));
        let demand = Rng.exponential rng ~mean:(rate /. mu) in
        let start = Engine.now eng in
        Engine.spawn eng (fun () ->
            Cpu.consume cpu ~instructions:demand;
            Stats.Tally.add sojourn (Engine.now eng -. start))
      done);
  Engine.run eng;
  let expected = 1. /. (mu -. lambda) in
  let measured = Stats.Tally.mean sojourn in
  Alcotest.(check bool)
    (Printf.sprintf "M/M/1-PS sojourn %.4f ~ %.4f" measured expected)
    true
    (close ~tolerance:0.08 measured expected)

(* M/G/1 FIFO: Poisson arrivals into one disk with uniform service
   [10 ms, 30 ms]. Pollaczek-Khinchine: Wq = l E[S^2] / (2 (1 - rho)). *)
let test_mg1_disk_wait () =
  let eng = Engine.create () in
  let rng = Rng.create 99 in
  let disk = Disk.create eng (Rng.create 7) ~min_time:0.010 ~max_time:0.030 in
  let lambda = 25. in
  let mean_s = 0.020 in
  let var_s = (0.030 -. 0.010) ** 2. /. 12. in
  let e_s2 = var_s +. (mean_s ** 2.) in
  let rho = lambda *. mean_s in
  let expected_wq = lambda *. e_s2 /. (2. *. (1. -. rho)) in
  let expected_t = expected_wq +. mean_s in
  let sojourn = Stats.Tally.create () in
  let n = 30_000 in
  Engine.spawn eng (fun () ->
      for _ = 1 to n do
        Engine.wait (Rng.exponential rng ~mean:(1. /. lambda));
        let start = Engine.now eng in
        Disk.submit_read disk (fun () ->
            Stats.Tally.add sojourn (Engine.now eng -. start))
      done);
  Engine.run eng;
  let measured = Stats.Tally.mean sojourn in
  Alcotest.(check bool)
    (Printf.sprintf "M/G/1 sojourn %.4f ~ %.4f" measured expected_t)
    true
    (close ~tolerance:0.08 measured expected_t);
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.3f ~ %.3f" (Disk.utilization disk) rho)
    true
    (close ~tolerance:0.05 (Disk.utilization disk) rho)

(* Work conservation under priority: high-priority (message) work plus PS
   work on one CPU must complete in exactly total/rate busy time. *)
let test_priority_work_conservation () =
  let eng = Engine.create () in
  let cpu = Cpu.create eng ~rate:1000. in
  let rng = Rng.create 5 in
  let total = ref 0. in
  for _ = 1 to 200 do
    let w = Rng.uniform rng ~lo:10. ~hi:500. in
    total := !total +. w;
    if Rng.bool rng ~p:0.3 then Cpu.submit_priority cpu ~instructions:w ignore
    else Cpu.submit cpu ~instructions:w ignore
  done;
  Engine.run eng;
  let expected = !total /. 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "makespan %.4f = %.4f" (Engine.now eng) expected)
    true
    (abs_float (Engine.now eng -. expected) < 1e-6)

(* Little's law on the whole machine: mean in-flight transactions =
   throughput x mean response time, at steady state. *)
let test_machine_littles_law () =
  let open Ddbm_model in
  let d = Params.default in
  let params =
    {
      Params.database = d.Params.database;
      workload = { d.Params.workload with Params.think_time = 8. };
      resources = d.Params.resources;
      cc = { d.Params.cc with Params.algorithm = Params.No_dc };
      run =
        { Params.seed = 2; warmup = 60.; measure = 400.;
          restart_delay_floor = 0.5; fresh_restart_plan = false };
      durability = Params.default_durability;
      faults = Fault_plan.zero;
      arrivals = Arrival.zero;
    }
  in
  let r = Ddbm.Machine.run params in
  let expected =
    r.Ddbm.Sim_result.throughput *. r.Ddbm.Sim_result.mean_response
  in
  Alcotest.(check bool)
    (Printf.sprintf "L = %.2f ~ lambda W = %.2f" r.Ddbm.Sim_result.mean_active
       expected)
    true
    (close ~tolerance:0.1 r.Ddbm.Sim_result.mean_active expected)

(* And the closed-network form: throughput = N / (R + Z). *)
let test_machine_interactive_response_law () =
  let open Ddbm_model in
  let d = Params.default in
  let think = 16. in
  let params =
    {
      Params.database = d.Params.database;
      workload = { d.Params.workload with Params.think_time = think };
      resources = d.Params.resources;
      cc = { d.Params.cc with Params.algorithm = Params.No_dc };
      run =
        { Params.seed = 3; warmup = 80.; measure = 400.;
          restart_delay_floor = 0.5; fresh_restart_plan = false };
      durability = Params.default_durability;
      faults = Fault_plan.zero;
      arrivals = Arrival.zero;
    }
  in
  let r = Ddbm.Machine.run params in
  let n = float_of_int d.Params.workload.Params.num_terminals in
  let expected = n /. (r.Ddbm.Sim_result.mean_response +. think) in
  Alcotest.(check bool)
    (Printf.sprintf "X = %.2f ~ N/(R+Z) = %.2f" r.Ddbm.Sim_result.throughput
       expected)
    true
    (close ~tolerance:0.08 r.Ddbm.Sim_result.throughput expected)

let suite =
  [
    Alcotest.test_case "M/M/1-PS sojourn" `Slow test_mm1_ps_sojourn;
    Alcotest.test_case "M/G/1 disk wait (P-K)" `Slow test_mg1_disk_wait;
    Alcotest.test_case "priority work conservation" `Quick
      test_priority_work_conservation;
    Alcotest.test_case "Little's law (machine)" `Slow test_machine_littles_law;
    Alcotest.test_case "interactive response-time law" `Slow
      test_machine_interactive_response_law;
  ]
