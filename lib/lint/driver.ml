(** Walks the tree, parses every implementation, applies the rules and
    the suppressions, and renders the report. *)

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)

let parse_source ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn ->
      let line =
        lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum
      in
      Error
        (Finding.v ~rule:Finding.Parse_error ~file:path
           ~line:(if line > 0 then line else 1)
           ~col:0
           ~msg:(Printexc.to_string exn)
           ~hint:"the file does not parse; fix the syntax error first")

(* ------------------------------------------------------------------ *)
(* D5: interface discipline                                             *)

(** Directories whose modules must publish an [.mli]. *)
let mli_required_dirs =
  [ "lib/desim/"; "lib/mach/"; "lib/core/"; "lib/check/"; "lib/cc/" ]

let mli_required ~path =
  String.ends_with ~suffix:".ml" path
  && List.exists (fun dir -> String.starts_with ~prefix:dir path)
       mli_required_dirs

let missing_mli_finding ~path ~has_mli =
  if mli_required ~path && not has_mli then
    Some
      (Finding.v ~rule:Finding.Missing_mli ~file:path ~line:1 ~col:0
         ~msg:"module has no .mli interface"
         ~hint:
           "add one (hides representation accidents that break replay), \
            or baseline the module with a justification")
  else None

(* ------------------------------------------------------------------ *)
(* File walking                                                         *)

let normalize path =
  let path =
    if String.starts_with ~prefix:"./" path then
      String.sub path 2 (String.length path - 2)
    else path
  in
  path

(* Every .ml under [root], with the set of .mli siblings observed along
   the way. Deterministic order: sorted at every directory level. *)
let walk root =
  let mls = ref [] and mlis = ref [] in
  let rec go path =
    if Sys.is_directory path then begin
      let entries = Sys.readdir path in
      Array.sort String.compare entries;
      Array.iter
        (fun entry ->
          if
            not
              (String.starts_with ~prefix:"." entry
              || String.equal entry "_build")
          then go (Filename.concat path entry))
        entries
    end
    else if String.ends_with ~suffix:".ml" path then mls := path :: !mls
    else if String.ends_with ~suffix:".mli" path then mlis := path :: !mlis
  in
  go root;
  (List.rev !mls, List.rev !mlis)

(* ------------------------------------------------------------------ *)
(* Report                                                               *)

type report = {
  findings : Finding.t list;  (** neither suppressed nor baselined *)
  suppressed : int;  (** silenced by [(* lint: allow ... *)] comments *)
  baselined : int;  (** silenced by the baseline file *)
  files_scanned : int;
}

let clean report =
  match report.findings with [] -> true | _ :: _ -> false

(* ------------------------------------------------------------------ *)
(* Scanning                                                             *)

(** Lint in-memory sources [(path, source)]: used by the test fixtures.
    Applies allow comments but no baseline and no D5 (no file system).
    The D6 context is collected from the given sources themselves. *)
let scan_sources sources =
  let parsed =
    List.map
      (fun (path, source) ->
        (normalize path, source, parse_source ~path:(normalize path) source))
      sources
  in
  let ctx =
    Rules.collect_ctx
      (List.filter_map
         (fun (path, _, r) ->
           match r with Ok s -> Some (path, s) | Error _ -> None)
         parsed)
  in
  let findings, suppressed =
    List.fold_left
      (fun (acc, sup) (path, source, r) ->
        let raw =
          match r with
          | Ok structure -> Rules.scan ctx ~path structure
          | Error parse_finding -> [ parse_finding ]
        in
        let allows = Allow.scan source in
        let kept, silenced =
          List.partition (fun f -> not (Allow.suppressed ~allows f)) raw
        in
        (acc @ kept, sup + List.length silenced))
      ([], 0) parsed
  in
  {
    findings = List.sort Finding.compare findings;
    suppressed;
    baselined = 0;
    files_scanned = List.length sources;
  }

(** Lint the tree under [roots] (paths relative to the repository root,
    e.g. [["lib"; "bin"; "bench"; "test"]]), applying [baseline] when
    given. *)
let run ?baseline ~roots () =
  let baseline_entries =
    match baseline with
    | None -> Ok []
    | Some file -> Allow.load_baseline file
  in
  match baseline_entries with
  | Error msg -> Error msg
  | Ok baseline -> (
      match
        List.find_opt (fun root -> not (Sys.file_exists root)) roots
      with
      | Some missing -> Error (Printf.sprintf "no such path: %s" missing)
      | None ->
          let mls, mlis =
            List.fold_left
              (fun (mls, mlis) root ->
                let m, i = walk (normalize root) in
                (mls @ m, mlis @ i))
              ([], []) roots
          in
          let mls = List.map normalize mls in
          let mli_set = List.map normalize mlis in
          let read path = In_channel.with_open_text path In_channel.input_all in
          let parsed =
            List.map
              (fun path ->
                let source = read path in
                (path, source, parse_source ~path source))
              mls
          in
          let ctx =
            Rules.collect_ctx
              (List.filter_map
                 (fun (path, _, r) ->
                   match r with Ok s -> Some (path, s) | Error _ -> None)
                 parsed)
          in
          let all_findings, suppressed =
            List.fold_left
              (fun (acc, sup) (path, source, r) ->
                let raw =
                  match r with
                  | Ok structure -> Rules.scan ctx ~path structure
                  | Error parse_finding -> [ parse_finding ]
                in
                let has_mli =
                  List.exists (String.equal (path ^ "i")) mli_set
                in
                let raw =
                  match missing_mli_finding ~path ~has_mli with
                  | Some f -> raw @ [ f ]
                  | None -> raw
                in
                let allows = Allow.scan source in
                let kept, silenced =
                  List.partition
                    (fun f -> not (Allow.suppressed ~allows f))
                    raw
                in
                (acc @ kept, sup + List.length silenced))
              ([], 0) parsed
          in
          let findings, baselined =
            List.partition
              (fun f -> not (Allow.baselined ~baseline f))
              all_findings
          in
          Ok
            {
              findings = List.sort Finding.compare findings;
              suppressed;
              baselined = List.length baselined;
              files_scanned = List.length mls;
            })

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let render_text report =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Format.asprintf "@[<v>%a@]@." Finding.pp f))
    report.findings;
  Buffer.add_string buf
    (match report.findings with
    | [] ->
        Printf.sprintf
          "ddbm-lint: clean (%d files scanned, %d suppressed, %d baselined)\n"
          report.files_scanned report.suppressed report.baselined
    | fs ->
        Printf.sprintf
          "ddbm-lint: %d finding%s (%d files scanned, %d suppressed, %d \
           baselined)\n"
          (List.length fs)
          (match fs with [ _ ] -> "" | _ -> "s")
          report.files_scanned report.suppressed report.baselined);
  Buffer.contents buf

let render_json report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"tool\":\"ddbm-lint\",\"version\":1,";
  Buffer.add_string buf
    (Printf.sprintf "\"files_scanned\":%d," report.files_scanned);
  Buffer.add_string buf
    (Printf.sprintf
       "\"counts\":{\"reported\":%d,\"suppressed\":%d,\"baselined\":%d},"
       (List.length report.findings)
       report.suppressed report.baselined);
  Buffer.add_string buf "\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Finding.to_json f))
    report.findings;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
