(** Walks the tree, parses every implementation, applies the rules
    (per-file hazards, and the whole-program {!Race} analysis when
    requested) and the suppressions, and renders the report. *)

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)

let parse_source ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn ->
      let line =
        lexbuf.Lexing.lex_curr_p.Lexing.pos_lnum
      in
      Error
        (Finding.v ~rule:Finding.Parse_error ~file:path
           ~line:(if line > 0 then line else 1)
           ~col:0
           ~msg:(Printexc.to_string exn)
           ~hint:"the file does not parse; fix the syntax error first")

(* ------------------------------------------------------------------ *)
(* D5: interface discipline                                             *)

(** Directories whose modules must publish an [.mli]. *)
let mli_required_dirs =
  [
    "lib/desim/"; "lib/mach/"; "lib/core/"; "lib/check/"; "lib/cc/";
    "lib/par/"; "lib/lint/";
  ]

let mli_required ~path =
  String.ends_with ~suffix:".ml" path
  && List.exists (fun dir -> String.starts_with ~prefix:dir path)
       mli_required_dirs

let missing_mli_finding ~path ~has_mli =
  if mli_required ~path && not has_mli then
    Some
      (Finding.v ~rule:Finding.Missing_mli ~file:path ~line:1 ~col:0
         ~msg:"module has no .mli interface"
         ~hint:
           "add one (hides representation accidents that break replay), \
            or baseline the module with a justification")
  else None

(* ------------------------------------------------------------------ *)
(* File walking                                                         *)

let normalize path =
  let path =
    if String.starts_with ~prefix:"./" path then
      String.sub path 2 (String.length path - 2)
    else path
  in
  path

(* Every .ml under [root], with the set of .mli siblings observed along
   the way. Deterministic order: sorted at every directory level. *)
let walk root =
  let mls = ref [] and mlis = ref [] in
  let rec go path =
    (* A dangling symlink is not a directory and must still surface as
       an unreadable file below, not crash the walk. *)
    let is_dir =
      match Sys.is_directory path with
      | d -> d
      | exception Sys_error _ -> false
    in
    if is_dir then begin
      let entries = Sys.readdir path in
      Array.sort String.compare entries;
      Array.iter
        (fun entry ->
          if
            not
              (String.starts_with ~prefix:"." entry
              || String.equal entry "_build")
          then go (Filename.concat path entry))
        entries
    end
    else if String.ends_with ~suffix:".ml" path then mls := path :: !mls
    else if String.ends_with ~suffix:".mli" path then mlis := path :: !mlis
  in
  go root;
  (List.rev !mls, List.rev !mlis)

(* ------------------------------------------------------------------ *)
(* Report                                                               *)

type rule_counts = {
  rc_reported : int;
  rc_suppressed : int;
  rc_baselined : int;
}

type report = {
  findings : Finding.t list;  (** neither suppressed nor baselined *)
  suppressed : int;  (** silenced by [(* lint: allow ... *)] comments *)
  baselined : int;  (** silenced by the baseline file *)
  files_scanned : int;
  by_rule : (Finding.rule * rule_counts) list;
      (** rules with at least one reported/suppressed/baselined
          finding, in rule order *)
}

let clean report =
  match report.findings with [] -> true | _ :: _ -> false

let tally ~findings ~suppressed_fs ~baselined_fs =
  let count rule fs =
    List.length
      (List.filter
         (fun (f : Finding.t) -> Finding.rule_equal f.Finding.rule rule)
         fs)
  in
  List.filter_map
    (fun rule ->
      let rc =
        {
          rc_reported = count rule findings;
          rc_suppressed = count rule suppressed_fs;
          rc_baselined = count rule baselined_fs;
        }
      in
      if rc.rc_reported + rc.rc_suppressed + rc.rc_baselined = 0 then None
      else Some (rule, rc))
    Finding.all_rules

let assemble ~files_scanned ~findings ~suppressed_fs ~baselined_fs =
  {
    findings = List.sort Finding.compare findings;
    suppressed = List.length suppressed_fs;
    baselined = List.length baselined_fs;
    files_scanned;
    by_rule = tally ~findings ~suppressed_fs ~baselined_fs;
  }

(* ------------------------------------------------------------------ *)
(* Shared scanning core                                                 *)

let rule_selected rules (f : Finding.t) =
  match rules with
  | None -> true
  | Some keep ->
      List.exists (fun r -> Finding.rule_equal r f.Finding.rule) keep

(* Race findings grouped onto the file they land in. *)
let race_findings_for ~race parsed =
  if not race then fun _ -> []
  else
    let ok =
      List.filter_map
        (fun (path, _, r) ->
          match r with Ok s -> Some (path, s) | Error _ -> None)
        parsed
    in
    let all = Race.analyze ok in
    fun path ->
      List.filter (fun (f : Finding.t) -> String.equal f.Finding.file path) all

(* Per-file findings -> (kept, suppressed) after allow comments, with
   the whole-program race findings for the file merged in. [source] is
   [None] when the file could not be read (nothing to scan for allow
   comments). *)
let apply_allows ~source raw =
  match source with
  | None -> (raw, [])
  | Some source ->
      let allows = Allow.scan source in
      List.partition (fun f -> not (Allow.suppressed ~allows f)) raw

(* ------------------------------------------------------------------ *)
(* Scanning                                                             *)

(** Lint in-memory sources [(path, source)]: used by the test fixtures.
    Applies allow comments but no baseline and no D5 (no file system).
    The D6 context is collected from the given sources themselves;
    [race] additionally runs the whole-program {!Race} analysis over
    them. *)
let scan_sources ?(race = false) ?rules sources =
  let parsed =
    List.map
      (fun (path, source) ->
        (normalize path, source, parse_source ~path:(normalize path) source))
      sources
  in
  let ctx =
    Rules.collect_ctx
      (List.filter_map
         (fun (path, _, r) ->
           match r with Ok s -> Some (path, s) | Error _ -> None)
         parsed)
  in
  let race_for = race_findings_for ~race parsed in
  let findings, suppressed_fs =
    List.fold_left
      (fun (acc, sup) (path, source, r) ->
        let raw =
          match r with
          | Ok structure -> Rules.scan ctx ~path structure @ race_for path
          | Error parse_finding -> [ parse_finding ]
        in
        let raw = List.filter (rule_selected rules) raw in
        let kept, silenced = apply_allows ~source:(Some source) raw in
        (acc @ kept, sup @ silenced))
      ([], []) parsed
  in
  assemble ~files_scanned:(List.length sources) ~findings ~suppressed_fs
    ~baselined_fs:[]

(** Lint the tree under [roots] (paths relative to the repository root,
    e.g. [["lib"; "bin"; "bench"; "test"]]), applying [baseline] when
    given. [race] adds the whole-program D7/D8/D9 analysis; [rules]
    restricts the report to the given rules. *)
let run ?baseline ?(race = false) ?rules ~roots () =
  let baseline_entries =
    match baseline with
    | None -> Ok []
    | Some file -> Allow.load_baseline file
  in
  match baseline_entries with
  | Error msg -> Error msg
  | Ok baseline -> (
      match
        List.find_opt (fun root -> not (Sys.file_exists root)) roots
      with
      | Some missing -> Error (Printf.sprintf "no such path: %s" missing)
      | None ->
          let mls, mlis =
            List.fold_left
              (fun (mls, mlis) root ->
                let m, i = walk (normalize root) in
                (mls @ m, mlis @ i))
              ([], []) roots
          in
          let mls = List.map normalize mls in
          let mli_set = List.map normalize mlis in
          (* An unreadable file must surface as a finding, not vanish
             from the report (rule P1). *)
          let parsed =
            List.map
              (fun path ->
                match
                  In_channel.with_open_text path In_channel.input_all
                with
                | source -> (path, Some source, parse_source ~path source)
                | exception Sys_error msg ->
                    ( path,
                      None,
                      Error
                        (Finding.v ~rule:Finding.Unreadable ~file:path ~line:1
                           ~col:0 ~msg
                           ~hint:
                             "the file exists in the tree but could not be \
                              read; fix permissions or remove it") ))
              mls
          in
          let ctx =
            Rules.collect_ctx
              (List.filter_map
                 (fun (path, _, r) ->
                   match r with Ok s -> Some (path, s) | Error _ -> None)
                 parsed)
          in
          let race_for = race_findings_for ~race parsed in
          let all_findings, suppressed_fs =
            List.fold_left
              (fun (acc, sup) (path, source, r) ->
                let raw =
                  match r with
                  | Ok structure -> Rules.scan ctx ~path structure @ race_for path
                  | Error finding -> [ finding ]
                in
                let has_mli =
                  List.exists (String.equal (path ^ "i")) mli_set
                in
                let raw =
                  match missing_mli_finding ~path ~has_mli with
                  | Some f -> raw @ [ f ]
                  | None -> raw
                in
                let raw = List.filter (rule_selected rules) raw in
                let kept, silenced = apply_allows ~source raw in
                (acc @ kept, sup @ silenced))
              ([], []) parsed
          in
          let findings, baselined_fs =
            List.partition
              (fun f -> not (Allow.baselined ~baseline f))
              all_findings
          in
          Ok
            (assemble ~files_scanned:(List.length mls) ~findings
               ~suppressed_fs ~baselined_fs))

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)

let pp_counts rcs =
  String.concat " "
    (List.map
       (fun (rule, rc) ->
         Printf.sprintf "%s:%d/%d/%d" (Finding.code rule) rc.rc_reported
           rc.rc_suppressed rc.rc_baselined)
       rcs)

let render_text report =
  let buf = Buffer.create 1024 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Format.asprintf "@[<v>%a@]@." Finding.pp f))
    report.findings;
  Buffer.add_string buf
    (match report.findings with
    | [] ->
        Printf.sprintf
          "ddbm-lint: clean (%d files scanned, %d suppressed, %d baselined)\n"
          report.files_scanned report.suppressed report.baselined
    | fs ->
        Printf.sprintf
          "ddbm-lint: %d finding%s (%d files scanned, %d suppressed, %d \
           baselined)\n"
          (List.length fs)
          (match fs with [ _ ] -> "" | _ -> "s")
          report.files_scanned report.suppressed report.baselined);
  (match report.by_rule with
  | [] -> ()
  | rcs ->
      Buffer.add_string buf
        (Printf.sprintf "per rule (reported/suppressed/baselined): %s\n"
           (pp_counts rcs)));
  Buffer.contents buf

let render_json report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"tool\":\"ddbm-lint\",\"version\":2,";
  Buffer.add_string buf
    (Printf.sprintf "\"files_scanned\":%d," report.files_scanned);
  Buffer.add_string buf
    (Printf.sprintf
       "\"counts\":{\"reported\":%d,\"suppressed\":%d,\"baselined\":%d},"
       (List.length report.findings)
       report.suppressed report.baselined);
  Buffer.add_string buf "\"by_rule\":{";
  List.iteri
    (fun i (rule, rc) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"reported\":%d,\"suppressed\":%d,\"baselined\":%d}"
           (Finding.code rule) rc.rc_reported rc.rc_suppressed
           rc.rc_baselined))
    report.by_rule;
  Buffer.add_string buf "},";
  Buffer.add_string buf "\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Finding.to_json f))
    report.findings;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf
