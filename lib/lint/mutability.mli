(** Classification of top-level mutable state: which bindings of the
    {!Graph} allocate something writable at module-initialization time
    (shared across every domain that can reach them). Allocations inside
    function bodies are per-call and not counted; [Domain.DLS.new_key]
    and mutex/condition/semaphore creation are domain-safe and exempt. *)

type kind =
  | Ref  (** [ref e] *)
  | Container of string  (** [Hashtbl.create], [Queue.create], ... *)
  | Array  (** array literal or [Array.make]-family *)
  | Bytes  (** [Bytes.create]-family *)
  | Mutable_record of string  (** record literal with a mutable field *)
  | Atomic
      (** [Atomic.make]: race-free, but cross-domain update order is
          still nondeterministic *)
  | Lazy_block  (** [lazy e]: a shared suspension (rule D9's concern) *)

val kind_to_string : kind -> string

val mutable_fields : (string * Parsetree.structure) list -> (string, unit) Hashtbl.t
(** Field names declared [mutable] anywhere in the scanned tree
    (name-based: the untyped parsetree cannot connect a record literal
    to its declaration). *)

val classify :
  fields:(string, unit) Hashtbl.t -> Parsetree.expression -> kind option
(** First mutable allocation in a right-hand side, skipping function
    bodies and domain-safe allocations. *)

type entry = { e_key : Graph.key; e_kind : kind; e_file : string; e_line : int }

val census : files:(string * Parsetree.structure) list -> Graph.t -> entry list
(** Every top-level binding that allocates mutable state, in
    deterministic (module, value) order. *)

val find : entry list -> Graph.key -> entry option
