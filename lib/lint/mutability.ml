(** Classification of top-level mutable state.

    A top-level binding is *shared mutable state* when its right-hand
    side allocates something writable at module-initialization time:
    the value then exists once per process and is visible to every
    domain that can reach the binding. The classifier looks at the RHS
    syntactically, without descending into function bodies — a
    [Hashtbl.create] inside [fun () -> ...] allocates per call, but
    [let f = let tbl = Hashtbl.create 4 in fun x -> ...] hides shared
    state behind a closure and is classified mutable.

    Domain-safe idioms are deliberately exempt:
    - [Domain.DLS.new_key] (domain-local by construction);
    - [Mutex.create] / [Condition.create] / [Semaphore] (the guard
      itself, not the guarded state). *)

open Parsetree

type kind =
  | Ref  (** [ref e] *)
  | Container of string  (** [Hashtbl.create], [Queue.create], ... *)
  | Array  (** array literal or [Array.make]-family *)
  | Bytes  (** [Bytes.create]-family *)
  | Mutable_record of string  (** record literal with a mutable field *)
  | Atomic
      (** [Atomic.make]: race-free, but cross-domain update order is
          still nondeterministic *)
  | Lazy_block  (** [lazy e]: a shared suspension (rule D9's concern) *)

let kind_to_string = function
  | Ref -> "ref cell"
  | Container m -> String.lowercase_ascii m ^ " (mutable container)"
  | Array -> "mutable array"
  | Bytes -> "mutable bytes"
  | Mutable_record field ->
      Printf.sprintf "record with mutable field '%s'" field
  | Atomic -> "atomic (nondeterministic cross-domain ordering)"
  | Lazy_block -> "lazy suspension"

(* ------------------------------------------------------------------ *)
(* Mutable-field census                                                 *)

(** Field names declared [mutable] anywhere in the scanned tree. Name-
    rather than type-based: the untyped parsetree cannot connect a
    record literal to its declaration, so a literal mentioning any
    known-mutable field name is treated as constructing mutable state
    (over-approximation, precise in this tree where field names are
    distinctive). *)
let mutable_fields files =
  let fields = Hashtbl.create 32 in
  let record_decl decl =
    match decl.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun l ->
            match l.pld_mutable with
            | Asttypes.Mutable ->
                Hashtbl.replace fields l.pld_name.Location.txt ()
            | Asttypes.Immutable -> ())
          labels
    | Ptype_variant _ | Ptype_abstract | Ptype_open -> ()
  in
  let super = Ast_iterator.default_iterator in
  let type_declaration iter decl =
    record_decl decl;
    super.type_declaration iter decl
  in
  let it = { super with type_declaration } in
  List.iter (fun (_, structure) -> it.structure it structure) files;
  fields

(* ------------------------------------------------------------------ *)
(* RHS classification                                                   *)

let container_modules = [ "Hashtbl"; "Queue"; "Buffer"; "Stack" ]

let allocator_fns =
  [ "create"; "make"; "init"; "of_seq"; "of_list"; "copy"; "of_string" ]

let is_safe_allocation lid =
  match lid with
  | Longident.Ldot (Longident.Ldot (Longident.Lident "Domain", "DLS"), _) ->
      true
  | Longident.Ldot (Longident.Lident ("Mutex" | "Condition" | "Semaphore"), _)
    ->
      true
  | _ -> false

let allocation_kind lid =
  let fn = Graph.last_of lid in
  match Graph.owner_of lid with
  | Some m when List.exists (String.equal m) container_modules
                && List.exists (String.equal fn) allocator_fns ->
      Some (Container m)
  | Some "Array"
    when List.exists (String.equal fn)
           [ "make"; "init"; "of_list"; "copy"; "append"; "concat"; "sub";
             "make_matrix" ] ->
      Some Array
  | Some "Bytes" when List.exists (String.equal fn) allocator_fns ->
      Some Bytes
  | Some "Atomic" when String.equal fn "make" -> Some Atomic
  | _ -> (
      match lid with
      | Longident.Lident "ref"
      | Longident.Ldot (Longident.Lident "Stdlib", "ref") ->
          Some Ref
      | _ -> None)

(** First mutable allocation in [expr], skipping function bodies (a
    per-call allocation is not shared) and safe-by-construction
    allocations (DLS keys, mutexes). *)
let classify ~fields expr =
  let found = ref None in
  let note k = match !found with Some _ -> () | None -> found := Some k in
  let rec go e =
    match !found with
    | Some _ -> ()
    | None -> (
        match e.pexp_desc with
        | Pexp_fun _ | Pexp_function _ -> ()
        | Pexp_newtype (_, inner) -> go inner
        | Pexp_lazy _ -> note Lazy_block
        | Pexp_array _ -> note Array
        | Pexp_record (record_fields, base) ->
            let mut =
              List.find_opt
                (fun ({ Location.txt = lid; _ }, _) ->
                  Hashtbl.mem fields (Graph.last_of lid))
                record_fields
            in
            (match mut with
            | Some ({ Location.txt = lid; _ }, _) ->
                note (Mutable_record (Graph.last_of lid))
            | None ->
                List.iter (fun (_, fe) -> go fe) record_fields;
                Option.iter go base)
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, args)
          ->
            if is_safe_allocation lid then ()
            else (
              (match allocation_kind lid with
              | Some k -> note k
              | None -> ());
              match !found with
              | Some _ -> ()
              | None -> List.iter (fun (_, a) -> go a) args)
        | Pexp_let (_, vbs, body) ->
            List.iter (fun vb -> go vb.pvb_expr) vbs;
            go body
        | Pexp_sequence (a, b) ->
            go a;
            go b
        | Pexp_tuple es -> List.iter go es
        | Pexp_construct (_, arg) | Pexp_variant (_, arg) ->
            Option.iter go arg
        | Pexp_constraint (inner, _) | Pexp_coerce (inner, _, _) -> go inner
        | Pexp_ifthenelse (c, t, f) ->
            go c;
            go t;
            Option.iter go f
        | Pexp_open (_, inner) -> go inner
        | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
            go scrut;
            List.iter (fun c -> go c.pc_rhs) cases
        | _ -> ())
  in
  go expr;
  !found

(* ------------------------------------------------------------------ *)
(* Census over the graph                                                *)

type entry = { e_key : Graph.key; e_kind : kind; e_file : string; e_line : int }

(** Every top-level binding of the graph that allocates mutable state,
    in deterministic (module, value) order. *)
let census ~files graph =
  let fields = mutable_fields files in
  List.filter_map
    (fun (b : Graph.binding) ->
      Option.map
        (fun k ->
          { e_key = b.Graph.b_key; e_kind = k; e_file = b.Graph.b_file;
            e_line = b.Graph.b_line })
        (classify ~fields b.Graph.b_expr))
    (Graph.all_bindings graph)

let find census key =
  List.find_opt (fun e -> Graph.key_equal e.e_key key) census
