(** Whole-program value/closure graph over the scanned tree: top-level
    bindings keyed by (module, value) qualified names, top-level module
    aliases, and syntactically resolved references (functor-free,
    qualified names resolved by their last module component). *)

type key = { km : string;  (** module name, e.g. ["Machine"] *)
             kv : string  (** value name, e.g. ["run"] *) }

val key_compare : key -> key -> int
val key_equal : key -> key -> bool

val key_to_string : key -> string
(** ["Machine.run"]. *)

type site = { s_file : string; s_line : int; s_col : int }

val site_of : file:string -> Location.t -> site

type binding = {
  b_key : key;
  b_file : string;
  b_line : int;
  b_expr : Parsetree.expression;  (** the right-hand side, as parsed *)
}

type reference = { r_target : key; r_site : site }

(** Longident helpers shared with {!Mutability} and {!Race}. *)

val last_of : Longident.t -> string
val owner_of : Longident.t -> string option

val module_of_path : string -> string
(** ["lib/core/machine.ml"] -> ["Machine"]. *)

type t

val build : (string * Parsetree.structure) list -> t
(** Collect every top-level binding, submodule binding and module alias
    of the parsed [(path, structure)] files. *)

val find : t -> key -> binding list
(** All bindings with that qualified name (module-name collisions give
    several; resolution is a deliberate over-approximation). *)

val known_value : t -> key -> bool

val resolve_owner : t -> string -> string list
(** Candidate module names for an owner component, through top-level
    aliases: the owner itself first, then alias targets. *)

val refs_in : t -> self:string -> file:string -> Parsetree.expression -> reference list
(** Resolved top-level references inside an expression. Bare [Lident]s
    resolve against [self] (the expression's own module) only; values
    pulled in by [open] are a documented blind spot. *)

val all_bindings : t -> binding list
(** Every binding, in deterministic (module, value, file, line) order. *)
