(** The determinism-hazard rules (D1-D4, D6), implemented over the
    untyped parsetree. D5 (missing interfaces) lives in {!Driver}, which
    sees the file system. *)

type ctx
(** Constructor names of the protected variant types (D6), collected
    from the tree being scanned. *)

val empty_ctx : ctx
(** No protected variants known: D6 never fires. *)

val collect_ctx : (string * Parsetree.structure) list -> ctx
(** Extract the protected variant constructors from parsed files: type
    [t] of [lib/mach/event.ml] and types [cohort_msg]/[coord_msg] of
    [lib/core/messages.ml] (matched by path suffix). *)

val scan : ctx -> path:string -> Parsetree.structure -> Finding.t list
(** All rule violations in one parsed implementation, in traversal
    order. [path] must be the repository-root-relative path: rule D3
    exempts [lib/desim/rng.ml], and rule D6 only applies under [lib/]
    and [bin/]. Suppression comments are not consulted here (see
    {!Allow}). *)
