(** A single determinism-hazard finding reported by ddbm-lint. *)

type rule =
  | Poly_compare  (** D1 *)
  | Hashtbl_order  (** D2 *)
  | Ambient  (** D3 *)
  | Float_eq  (** D4 *)
  | Missing_mli  (** D5 *)
  | Catch_all_event  (** D6 *)
  | Shared_mutable  (** D7: shared mutable top-level state in task scope *)
  | Unsafe_stdlib  (** D8: domain-unsafe stdlib in task scope *)
  | Shared_lazy  (** D9: shared lazy suspension in task scope *)
  | Parse_error  (** P0: the file could not be parsed at all *)
  | Unreadable  (** P1: the file could not be read at all *)

val all_rules : rule list

val code : rule -> string
(** Short id, e.g. ["D1"]. *)

val name : rule -> string
(** Mnemonic name, e.g. ["poly-compare"]. *)

val describe : rule -> string
(** One-line description of the hazard class. *)

val rule_equal : rule -> rule -> bool

val rule_of_string : string -> rule option
(** Accepts either the code ("D1", case-insensitive) or the name
    ("poly-compare"). *)

type t = {
  rule : rule;
  file : string;  (** path relative to the repository root *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler locations *)
  msg : string;
  hint : string;  (** suggested fix *)
}

val v :
  rule:rule -> file:string -> line:int -> col:int -> msg:string -> hint:string -> t

val compare : t -> t -> int
(** Deterministic report order: file, position, rule, message. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> string
(** One JSON object; keys [rule], [name], [file], [line], [col], [msg],
    [hint]. *)
