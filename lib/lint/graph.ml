(** Whole-program value/closure graph over the scanned tree.

    Nodes are top-level value bindings, identified by (module, value)
    qualified names; edges are references from one binding's
    right-hand side to another binding, resolved syntactically:

    - [Lident v] resolves against the binding's own module only
      (values pulled in by [open M] are a documented blind spot —
      this codebase references cross-module values qualified);
    - [Ldot (p, v)] resolves by the *last* module component of [p],
      which makes [Machine.run], [Ddbm.Machine.run] and
      [Stdlib.Hashtbl.fold] all resolve the same way regardless of
      library wrapping;
    - top-level [module A = X.Y] aliases are expanded (one level,
      functor-free), and [module M = struct ... end] submodules
      contribute their own bindings under [M].

    The graph is deliberately an over-approximation: a resolved name
    collision (two scanned modules with the same name) yields edges to
    both candidates, never silently to neither. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Keys and sites                                                       *)

type key = { km : string;  (** module name, e.g. ["Machine"] *)
             kv : string  (** value name, e.g. ["run"] *) }

let key_compare a b =
  let c = String.compare a.km b.km in
  if c <> 0 then c else String.compare a.kv b.kv

let key_equal a b = key_compare a b = 0
let key_to_string k = k.km ^ "." ^ k.kv

type site = { s_file : string; s_line : int; s_col : int }

let site_of ~file (loc : Location.t) =
  {
    s_file = file;
    s_line = loc.loc_start.Lexing.pos_lnum;
    s_col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol;
  }

type binding = {
  b_key : key;
  b_file : string;
  b_line : int;
  b_expr : expression;  (** the right-hand side, as parsed *)
}

type reference = { r_target : key; r_site : site }

(* ------------------------------------------------------------------ *)
(* Longident helpers (duplicated from Rules to keep the modules
   dependency-light in both directions)                                 *)

let rec last_of = function
  | Longident.Lident n -> n
  | Longident.Ldot (_, n) -> n
  | Longident.Lapply (_, p) -> last_of p

let owner_of = function
  | Longident.Ldot (p, _) -> Some (last_of p)
  | Longident.Lident _ | Longident.Lapply _ -> None

(* ------------------------------------------------------------------ *)
(* The graph                                                            *)

type t = {
  bindings : (string, binding list) Hashtbl.t;
      (** keyed by [key_to_string]; several bindings share a key when
          module names collide across directories *)
  aliases : (string, string list) Hashtbl.t;
      (** top-level module aliases: alias name -> target module names *)
  modules : (string, unit) Hashtbl.t;  (** every module that has bindings *)
}

let module_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let add_binding t b =
  let k = key_to_string b.b_key in
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.bindings k) in
  Hashtbl.replace t.bindings k (prev @ [ b ]);
  Hashtbl.replace t.modules b.b_key.km ()

let add_alias t ~alias ~target =
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.aliases alias) in
  if not (List.exists (String.equal target) prev) then
    Hashtbl.replace t.aliases alias (prev @ [ target ])

(* All value names bound by a pattern (tuples, aliases, constraints). *)
let rec pattern_vars p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> [ txt ]
  | Ppat_alias (inner, { txt; _ }) -> txt :: pattern_vars inner
  | Ppat_tuple ps -> List.concat_map pattern_vars ps
  | Ppat_constraint (inner, _) -> pattern_vars inner
  | _ -> []

let rec collect_structure t ~file ~module_name items =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              List.iter
                (fun v ->
                  add_binding t
                    {
                      b_key = { km = module_name; kv = v };
                      b_file = file;
                      b_line = vb.pvb_loc.Location.loc_start.Lexing.pos_lnum;
                      b_expr = vb.pvb_expr;
                    })
                (pattern_vars vb.pvb_pat))
            vbs
      | Pstr_module mb -> (
          match mb.pmb_name.Location.txt with
          | None -> ()
          | Some sub -> collect_module t ~file ~sub mb.pmb_expr)
      | _ -> ())
    items

and collect_module t ~file ~sub mexpr =
  match mexpr.pmod_desc with
  | Pmod_ident { txt = lid; _ } -> add_alias t ~alias:sub ~target:(last_of lid)
  | Pmod_structure items -> collect_structure t ~file ~module_name:sub items
  | Pmod_constraint (inner, _) -> collect_module t ~file ~sub inner
  | _ -> ()  (* functors and applications are out of scope *)

let build files =
  let t =
    {
      bindings = Hashtbl.create 256;
      aliases = Hashtbl.create 16;
      modules = Hashtbl.create 64;
    }
  in
  List.iter
    (fun (file, structure) ->
      collect_structure t ~file ~module_name:(module_of_path file) structure)
    files;
  t

let find t key = Option.value ~default:[] (Hashtbl.find_opt t.bindings (key_to_string key))

let known_value t key = Hashtbl.mem t.bindings (key_to_string key)

(* Owner module component -> candidate module names, through aliases. *)
let resolve_owner t owner =
  let aliased = Option.value ~default:[] (Hashtbl.find_opt t.aliases owner) in
  owner :: aliased

(* ------------------------------------------------------------------ *)
(* Reference extraction                                                 *)

(** Resolved top-level references inside [expr], attributed to the
    module [self] (for bare [Lident] resolution). *)
let refs_in t ~self ~file expr =
  let acc = ref [] in
  let add lid loc =
    let candidates =
      match lid with
      | Longident.Lident v -> [ { km = self; kv = v } ]
      | Longident.Ldot _ -> (
          match (owner_of lid, lid) with
          | Some owner, Longident.Ldot (_, v) ->
              List.map (fun km -> { km; kv = v }) (resolve_owner t owner)
          | _ -> [])
      | Longident.Lapply _ -> []
    in
    List.iter
      (fun key ->
        if known_value t key then
          acc := { r_target = key; r_site = site_of ~file loc } :: !acc)
      candidates
  in
  let super = Ast_iterator.default_iterator in
  let expr_it iter e =
    (match e.pexp_desc with
    | Pexp_ident { txt = lid; loc } -> add lid loc
    | _ -> ());
    super.expr iter e
  in
  let it = { super with expr = expr_it } in
  it.expr it expr;
  List.rev !acc

(** Every binding, in deterministic (module, value, file) order. *)
let all_bindings t =
  Hashtbl.fold (fun _ bs acc -> bs @ acc) t.bindings []
  |> List.sort (fun a b ->
         let c = key_compare a.b_key b.b_key in
         if c <> 0 then c
         else
           let c = String.compare a.b_file b.b_file in
           if c <> 0 then c else Int.compare a.b_line b.b_line)
