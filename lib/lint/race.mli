(** ddbm-race: whole-program domain-safety analysis over the
    {!Graph}/{!Mutability} layers. Computes the set of top-level
    bindings reachable from closures submitted to
    [Par.Pool.map]/[map_array]/[run] in files under [lib/] and [bin/],
    and reports:

    - {b D7} ([shared-mutable]): top-level mutable state reachable from
      a domain task;
    - {b D8} ([unsafe-stdlib]): shared output channels, the [Logs]
      reporter, ambient [Random], randomized [Hashtbl.hash], and
      ambient [Sys]/[Unix] calls in task scope;
    - {b D9} ([shared-lazy]): a shared top-level lazy suspension
      reachable from task scope (racing [Lazy.force] is undefined).

    Blind spots (untyped, functor-free): functor instantiations,
    [open]ed values, first-class modules, and mutable task *inputs* —
    the dynamic per-seed bit-identity test keeps covering those. *)

val unsafe_stdlib : Longident.t -> string option
(** [Some what] when the identifier is domain-unsafe in task scope. *)

val analyze : (string * Parsetree.structure) list -> Finding.t list
(** Run the whole-program analysis over parsed [(path, structure)]
    files; returns D7/D8/D9 findings (deduplicated, in report order).
    Suppression comments are not consulted here (see {!Allow}). *)
