(** A single determinism-hazard finding. *)

type rule =
  | Poly_compare  (** D1 *)
  | Hashtbl_order  (** D2 *)
  | Ambient  (** D3 *)
  | Float_eq  (** D4 *)
  | Missing_mli  (** D5 *)
  | Catch_all_event  (** D6 *)
  | Shared_mutable  (** D7 *)
  | Unsafe_stdlib  (** D8 *)
  | Shared_lazy  (** D9 *)
  | Parse_error  (** P0: the file could not be parsed at all *)
  | Unreadable  (** P1: the file could not be read at all *)

let all_rules =
  [
    Poly_compare;
    Hashtbl_order;
    Ambient;
    Float_eq;
    Missing_mli;
    Catch_all_event;
    Shared_mutable;
    Unsafe_stdlib;
    Shared_lazy;
    Parse_error;
    Unreadable;
  ]

let code = function
  | Poly_compare -> "D1"
  | Hashtbl_order -> "D2"
  | Ambient -> "D3"
  | Float_eq -> "D4"
  | Missing_mli -> "D5"
  | Catch_all_event -> "D6"
  | Shared_mutable -> "D7"
  | Unsafe_stdlib -> "D8"
  | Shared_lazy -> "D9"
  | Parse_error -> "P0"
  | Unreadable -> "P1"

let name = function
  | Poly_compare -> "poly-compare"
  | Hashtbl_order -> "hashtbl-order"
  | Ambient -> "ambient"
  | Float_eq -> "float-eq"
  | Missing_mli -> "missing-mli"
  | Catch_all_event -> "catch-all-event"
  | Shared_mutable -> "shared-mutable"
  | Unsafe_stdlib -> "unsafe-stdlib"
  | Shared_lazy -> "shared-lazy"
  | Parse_error -> "parse-error"
  | Unreadable -> "unreadable"

let rule_index = function
  | Poly_compare -> 0
  | Hashtbl_order -> 1
  | Ambient -> 2
  | Float_eq -> 3
  | Missing_mli -> 4
  | Catch_all_event -> 5
  | Shared_mutable -> 6
  | Unsafe_stdlib -> 7
  | Shared_lazy -> 8
  | Parse_error -> 9
  | Unreadable -> 10

let rule_equal a b = Int.equal (rule_index a) (rule_index b)

let rule_of_string s =
  let s = String.lowercase_ascii (String.trim s) in
  let matches r =
    String.equal s (String.lowercase_ascii (code r)) || String.equal s (name r)
  in
  List.find_opt matches all_rules

(** One-line description of the hazard class, for the catalogue. *)
let describe = function
  | Poly_compare ->
      "polymorphic compare/(=)/(<>)/Hashtbl.hash on non-scalar operands"
  | Hashtbl_order ->
      "hash-order-dependent Hashtbl.iter/fold/to_seq result escapes unsorted"
  | Ambient ->
      "ambient nondeterminism (Random, wall clock) outside lib/desim/rng.ml"
  | Float_eq -> "float (=)/(<>) comparison"
  | Missing_mli -> "module in an interface-required lib/ directory without an .mli"
  | Catch_all_event ->
      "catch-all _ branch over the Event.t / coordinator-message variants"
  | Shared_mutable ->
      "top-level mutable state reachable from a Par.Pool domain task"
  | Unsafe_stdlib ->
      "domain-unsafe stdlib (shared channels, ambient Random/Sys/Unix) in \
       task scope"
  | Shared_lazy -> "shared top-level lazy suspension reachable from task scope"
  | Parse_error -> "file could not be parsed"
  | Unreadable -> "file could not be read"

type t = {
  rule : rule;
  file : string;
  line : int;
  col : int;
  msg : string;
  hint : string;
}

let v ~rule ~file ~line ~col ~msg ~hint = { rule; file; line; col; msg; hint }

(* Deterministic report order: file, position, rule. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = Int.compare (rule_index a.rule) (rule_index b.rule) in
        if c <> 0 then c else String.compare a.msg b.msg

let pp fmt t =
  Format.fprintf fmt "%s:%d:%d: %s %s: %s@,  hint: %s" t.file t.line t.col
    (code t.rule) (name t.rule) t.msg t.hint

(* --- JSON ---------------------------------------------------------- *)

(* Hand-rolled, like lib/core/trace_export.ml: no external dependency,
   byte-stable output. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  Printf.sprintf
    "{\"rule\":\"%s\",\"name\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"msg\":\"%s\",\"hint\":\"%s\"}"
    (code t.rule) (name t.rule) (json_escape t.file) t.line t.col
    (json_escape t.msg) (json_escape t.hint)
