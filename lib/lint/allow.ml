(** Suppression: [(* lint: allow <rule> ... *)] comments and the
    checked-in baseline file.

    An allow comment lives on one source line and suppresses matching
    findings on that line and the next (so it can sit at the end of the
    offending line or on its own line just above). Appending the token
    [file] widens the scope to the whole file:

    {v
      let xs = List.sort compare xs  (* lint: allow poly-compare *)
      (* lint: allow ambient file *)
    v}

    Rules are named by code ("D3") or name ("ambient"); several may be
    listed in one comment. *)

type scope = Here | Whole_file

type t = { rule : Finding.rule; line : int; scope : scope }

let is_sep c =
  match c with ' ' | '\t' | ',' -> true | _ -> false

(* Tokens of [s] between [start] and the first "*)", stopping there. *)
let tokens_until_close s start =
  let n = String.length s in
  let rec go i acc cur =
    let flush acc cur =
      if String.equal cur "" then acc else cur :: acc
    in
    if i >= n then List.rev (flush acc cur)
    else if i + 1 < n && Char.equal s.[i] '*' && Char.equal s.[i + 1] ')' then
      List.rev (flush acc cur)
    else if is_sep s.[i] then go (i + 1) (flush acc cur) ""
    else go (i + 1) acc (cur ^ String.make 1 s.[i])
  in
  go start [] ""

(* Find "lint:" then "allow" on one line; returns the allow directives. *)
let scan_line ~line_number line =
  let marker = "lint:" in
  let mlen = String.length marker in
  let n = String.length line in
  let rec find i =
    if i + mlen > n then None
    else if String.equal (String.sub line i mlen) marker then Some (i + mlen)
    else find (i + 1)
  in
  match find 0 with
  | None -> []
  | Some start -> (
      match tokens_until_close line start with
      | "allow" :: rest ->
          let scope =
            if List.exists (String.equal "file") rest then Whole_file
            else Here
          in
          List.filter_map
            (fun tok ->
              if String.equal tok "file" then None
              else
                match Finding.rule_of_string tok with
                | Some rule -> Some { rule; line = line_number; scope }
                | None -> None)
            rest
      | _ -> [])

(** All allow directives in [source], in line order. *)
let scan source =
  let lines = String.split_on_char '\n' source in
  List.concat (List.mapi (fun i l -> scan_line ~line_number:(i + 1) l) lines)

let suppresses allow (f : Finding.t) =
  Finding.rule_equal allow.rule f.Finding.rule
  &&
  match allow.scope with
  | Whole_file -> true
  | Here -> f.Finding.line = allow.line || f.Finding.line = allow.line + 1

let suppressed ~allows f = List.exists (fun a -> suppresses a f) allows

(* --- baseline ------------------------------------------------------ *)

(** One baseline entry: accept every finding of [rule] in [path].
    File format, one entry per line:

    {v
      # comment
      <rule-name-or-code> <path>   # justification
    v} *)
type baseline_entry = { b_rule : Finding.rule; b_path : string }

let parse_baseline_line ~file ~line_number line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let fields =
    String.split_on_char ' ' (String.map (fun c -> if Char.equal c '\t' then ' ' else c) line)
    |> List.filter (fun s -> not (String.equal s ""))
  in
  match fields with
  | [] -> Ok None
  | [ rule_tok; path ] -> (
      match Finding.rule_of_string rule_tok with
      | Some b_rule -> Ok (Some { b_rule; b_path = path })
      | None ->
          Error
            (Printf.sprintf "%s:%d: unknown rule %S" file line_number rule_tok))
  | _ ->
      Error
        (Printf.sprintf "%s:%d: expected '<rule> <path>', got %S" file
           line_number (String.trim line))

let load_baseline file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents ->
      let lines = String.split_on_char '\n' contents in
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
            match parse_baseline_line ~file ~line_number:i line with
            | Ok None -> go (i + 1) acc rest
            | Ok (Some e) -> go (i + 1) (e :: acc) rest
            | Error _ as e -> e)
      in
      go 1 [] lines

let baselined ~baseline (f : Finding.t) =
  List.exists
    (fun e ->
      Finding.rule_equal e.b_rule f.Finding.rule
      && String.equal e.b_path f.Finding.file)
    baseline
