(** The determinism-hazard rules, implemented over the untyped parsetree
    ([compiler-libs.common]: {!Parse.implementation} + {!Ast_iterator}).

    Working without types keeps the pass dependency-free and fast, at the
    price of syntactic heuristics; each rule documents its blind spots.
    The rules err toward precision (no finding on idiomatic clean code)
    because the tree is kept at zero non-baselined findings. *)

open Parsetree

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                    *)

let rec last_of = function
  | Longident.Lident n -> n
  | Longident.Ldot (_, n) -> n
  | Longident.Lapply (_, p) -> last_of p

let rec root_of = function
  | Longident.Lident n -> n
  | Longident.Ldot (p, _) -> root_of p
  | Longident.Lapply (p, _) -> root_of p

(* Module component naming the value, e.g. [Hashtbl] in
   [Stdlib.Hashtbl.fold]. *)
let owner_of = function
  | Longident.Ldot (p, _) -> Some (last_of p)
  | Longident.Lident _ | Longident.Lapply _ -> None

let fn_of = function
  | Longident.Lident n | Longident.Ldot (_, n) -> Some n
  | Longident.Lapply _ -> None

(* ------------------------------------------------------------------ *)
(* Locations                                                            *)

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum
let col_of (loc : Location.t) =
  loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol

let loc_equal (a : Location.t) (b : Location.t) =
  Int.equal a.loc_start.Lexing.pos_cnum b.loc_start.Lexing.pos_cnum
  && Int.equal a.loc_end.Lexing.pos_cnum b.loc_end.Lexing.pos_cnum

(* ------------------------------------------------------------------ *)
(* Context: the protected variant types (D6)                            *)

(** Variant constructors of the machine's lifecycle-event and
    coordinator-message types, collected from the tree itself (so the
    rule stays correct when events are added). *)
type ctx = { variant_groups : (string * string list) list }
    (** (qualifying module name, constructor names) *)

let empty_ctx = { variant_groups = [] }

(* Which declarations feed D6: (path suffix, module name, type names). *)
let protected_types =
  [
    ("lib/mach/event.ml", "Event", [ "t" ]);
    ("lib/core/messages.ml", "Messages", [ "cohort_msg"; "coord_msg" ]);
  ]

let collect_ctx files =
  let groups = ref [] in
  List.iter
    (fun (path, structure) ->
      List.iter
        (fun (suffix, qualifier, type_names) ->
          if String.ends_with ~suffix path then
            List.iter
              (fun item ->
                match item.pstr_desc with
                | Pstr_type (_, decls) ->
                    List.iter
                      (fun decl ->
                        if
                          List.exists
                            (String.equal decl.ptype_name.Location.txt)
                            type_names
                        then
                          match decl.ptype_kind with
                          | Ptype_variant ctors ->
                              let names =
                                List.map
                                  (fun c -> c.pcd_name.Location.txt)
                                  ctors
                              in
                              groups := (qualifier, names) :: !groups
                          | Ptype_abstract | Ptype_record _ | Ptype_open ->
                              ())
                      decls
                | _ -> ())
              structure)
        protected_types)
    files;
  { variant_groups = List.rev !groups }

(* ------------------------------------------------------------------ *)
(* Syntactic classifiers                                                *)

let is_stdlib_qualified lid n =
  match lid with
  | Longident.Ldot (Longident.Lident "Stdlib", m) -> String.equal m n
  | _ -> false

(* [compare] that can only be the polymorphic one: bare (unless the file
   rebinds [compare] somewhere, a file-granular shadowing test) or
   [Stdlib.]-qualified. *)
let is_poly_compare ~shadowed lid =
  (match lid with
  | Longident.Lident "compare" -> not shadowed
  | _ -> false)
  || is_stdlib_qualified lid "compare"

let is_poly_hash lid =
  match lid with
  | Longident.Ldot (p, ("hash" | "seeded_hash")) ->
      String.equal (last_of p) "Hashtbl"
  | _ -> false

let eq_operator lid =
  match lid with
  | Longident.Lident (("=" | "<>") as op) -> Some op
  | Longident.Ldot (Longident.Lident "Stdlib", (("=" | "<>") as op)) ->
      Some op
  | _ -> None

(* A module that is (or instantiates) a hash table, by naming
   convention: [Hashtbl] itself or a [Hashtbl.Make] instance named
   [..._table] / [...Tbl] (e.g. [Page_table]). *)
let is_hashtable_module m =
  String.equal m "Hashtbl"
  ||
  let l = String.lowercase_ascii m in
  String.ends_with ~suffix:"_table" l || String.ends_with ~suffix:"tbl" l

let hashtable_escape lid =
  match (owner_of lid, fn_of lid) with
  | Some m, Some fn when is_hashtable_module m -> (
      match fn with
      | "iter" -> Some `Iter
      | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values" -> Some `Escape
      | _ -> None)
  | _ -> None

(* D3: ambient nondeterminism sources. *)
let ambient_source lid =
  let root = root_of lid in
  match (root, fn_of lid) with
  | "Random", _ -> Some "Random"
  | "Sys", Some "time" -> Some "Sys.time"
  | "Unix", Some ("gettimeofday" | "time") -> Some "Unix wall clock"
  | "Hashtbl", Some "randomize" -> Some "Hashtbl.randomize"
  | _ -> None

(* Operand that is syntactically a structured value: constructor or
   polymorphic variant *carrying an argument*, tuple, record, or array.
   Nullary constructors ([None], [[]], [Committed], ...) are immediate
   values — comparing them with (=) is deterministic and idiomatic, so
   they are deliberately out of scope. *)
let rec is_compound e =
  match e.pexp_desc with
  | Pexp_construct (_, Some _)
  | Pexp_variant (_, Some _)
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ ->
      true
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> false
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> is_compound e
  | _ -> false

(* Operand that is syntactically a float: a float literal or float
   arithmetic. (Blind spot: a plain float-typed variable is invisible
   without types.) *)
let rec is_floatish e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_apply
      ( {
          pexp_desc =
            Pexp_ident
              { txt = Longident.Lident ("+." | "-." | "*." | "/." | "**" | "~-.");
                _ };
          _;
        },
        _ ) ->
      true
  | Pexp_constraint (e, _) -> is_floatish e
  | _ -> false

(* An explicit-comparator sort: [List.sort f], [Array.sort f], ... where
   [f] is not itself bare polymorphic [compare]. *)
let is_explicit_sort ~shadowed e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, args) -> (
      match (owner_of lid, fn_of lid) with
      | Some ("List" | "Array" | "ListLabels" | "ArrayLabels"), Some
          ("sort" | "stable_sort" | "fast_sort" | "sort_uniq") -> (
          match
            List.find_opt
              (fun (label, _) ->
                match label with
                | Asttypes.Nolabel -> true
                | Asttypes.Labelled _ | Asttypes.Optional _ -> false)
              args
          with
          | Some
              (_, { pexp_desc = Pexp_ident { txt = cmp_lid; _ }; _ }) ->
              not (is_poly_compare ~shadowed cmp_lid)
          | Some _ -> true
          | None -> false)
      | _ -> false)
  | _ -> false

(* An application whose result carries hash-table contents out in
   iteration order: [Hashtbl.fold ...], [Hashtbl.to_seq ...]. *)
let is_escape_app e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, _) -> (
      match hashtable_escape lid with Some `Escape -> true | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* File-granular [compare] shadowing                                    *)

let shadows_compare structure =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let value_binding iter vb =
    (match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt = "compare"; _ } -> found := true
    | _ -> ());
    super.value_binding iter vb
  in
  let it = { super with value_binding } in
  it.structure it structure;
  !found

(* ------------------------------------------------------------------ *)
(* D6: catch-all over protected variants                                *)

(* Top-level constructor heads of a case pattern, through or-patterns,
   aliases and constraints. *)
let rec pattern_heads p =
  match p.ppat_desc with
  | Ppat_construct ({ txt = lid; _ }, _) -> (
      match lid with
      | Longident.Lident n -> [ (None, n) ]
      | Longident.Ldot (path, n) -> [ (Some (last_of path), n) ]
      | Longident.Lapply _ -> [])
  | Ppat_or (a, b) -> pattern_heads a @ pattern_heads b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pattern_heads p
  | Ppat_open (_, p) -> pattern_heads p
  | _ -> []

let rec catch_all_loc p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> Some p.ppat_loc
  | Ppat_or (a, b) -> (
      match catch_all_loc a with Some l -> Some l | None -> catch_all_loc b)
  | Ppat_alias (p, _) | Ppat_constraint (p, _) | Ppat_open (_, p) ->
      catch_all_loc p
  | _ -> None

(* Does this case list match one of the protected variant types? A
   qualified constructor ([Event.Committed _]) is conclusive; otherwise
   two distinct unqualified constructor names from the same type are
   required, to avoid misfiring on unrelated variants that happen to
   share one name. *)
let matches_protected ctx heads =
  List.exists
    (fun (qualifier, ctors) ->
      let qualified_hit =
        List.exists
          (fun (q, n) ->
            match q with
            | Some q ->
                String.equal q qualifier
                && List.exists (String.equal n) ctors
            | None -> false)
          heads
      in
      let unqualified_hits =
        List.filter_map
          (fun (q, n) ->
            match q with
            | None when List.exists (String.equal n) ctors -> Some n
            | _ -> None)
          heads
        |> List.sort_uniq String.compare
      in
      qualified_hit || List.length unqualified_hits >= 2)
    ctx.variant_groups

(* ------------------------------------------------------------------ *)
(* The scan                                                             *)

let scan ctx ~path structure =
  let findings = ref [] in
  let add ~rule ~loc ~msg ~hint =
    findings :=
      Finding.v ~rule ~file:path ~line:(line_of loc) ~col:(col_of loc) ~msg
        ~hint
      :: !findings
  in
  let shadowed = shadows_compare structure in
  let in_rng = String.ends_with ~suffix:"lib/desim/rng.ml" path in
  let d6_scope =
    String.starts_with ~prefix:"lib/" path
    || String.starts_with ~prefix:"bin/" path
  in
  (* Hashtbl.fold/to_seq applications sanctioned by an enclosing
     explicit-comparator sort; recorded top-down before the node itself
     is visited. *)
  let sunk = ref [] in
  let mark_sunk e = sunk := e.pexp_loc :: !sunk in
  let is_sunk e = List.exists (loc_equal e.pexp_loc) !sunk in

  let check_ident ~applied lid loc =
    (match ambient_source lid with
    | Some what when not in_rng ->
        add ~rule:Finding.Ambient ~loc
          ~msg:(what ^ " is ambient nondeterminism")
          ~hint:
            "draw from the seeded Desim.Rng streams (lib/desim/rng.ml); \
             wall-clock profiling needs a '(* lint: allow ambient *)'"
    | _ -> ());
    if is_poly_compare ~shadowed lid then
      add ~rule:Finding.Poly_compare ~loc
        ~msg:
          (if applied then "polymorphic compare applied to its arguments"
           else "polymorphic compare used as a first-class comparator")
        ~hint:
          "use a typed comparator (Int.compare, Float.compare, \
           Page.compare, ...)";
    if is_poly_hash lid then
      add ~rule:Finding.Poly_compare ~loc
        ~msg:"polymorphic Hashtbl.hash"
        ~hint:"hash the scalar fields explicitly (see Ids.Page.hash)";
    if (not applied) && Option.is_some (eq_operator lid) then
      add ~rule:Finding.Poly_compare ~loc
        ~msg:"polymorphic equality used as a first-class function"
        ~hint:"pass a typed equality (Int.equal, String.equal, ...)"
  in

  let check_eq_apply op args loc =
    match args with
    | (_, a) :: (_, b) :: _ ->
        if is_floatish a || is_floatish b then
          add ~rule:Finding.Float_eq ~loc
            ~msg:
              (Printf.sprintf "float (%s) comparison" op)
            ~hint:
              "exact float equality is a simulated-time hazard: compare \
               with Float.equal (intent explicit) or an epsilon"
        else if is_compound a || is_compound b then
          add ~rule:Finding.Poly_compare ~loc
            ~msg:
              (Printf.sprintf
                 "polymorphic (%s) on a structured operand" op)
            ~hint:
              "match on the shape instead (List.is_empty, Option.is_none, \
               a typed equal)"
    | [ _ ] ->
        (* partial application: the comparison escapes as a function *)
        add ~rule:Finding.Poly_compare ~loc
          ~msg:"polymorphic equality used as a first-class function"
          ~hint:"pass a typed equality (Int.equal, String.equal, ...)"
    | [] -> ()
  in

  let check_cases loc cases =
    if d6_scope then
      let heads = List.concat_map (fun c -> pattern_heads c.pc_lhs) cases in
      if matches_protected ctx heads then
        match
          List.find_map (fun c -> catch_all_loc c.pc_lhs) cases
        with
        | Some wild_loc ->
            add ~rule:Finding.Catch_all_event ~loc:wild_loc
              ~msg:
                "catch-all branch over the lifecycle-event/message variants"
              ~hint:
                "enumerate the remaining constructors so new events cannot \
                 be dropped silently"
        | None -> ignore loc
  in

  let super = Ast_iterator.default_iterator in
  let expr iter e =
    match e.pexp_desc with
    | Pexp_ident { txt = lid; _ } -> check_ident ~applied:false lid e.pexp_loc
    | Pexp_apply (head, args) ->
        (match head.pexp_desc with
        | Pexp_ident { txt = lid; _ } -> (
            check_ident ~applied:true lid head.pexp_loc;
            (match eq_operator lid with
            | Some op -> check_eq_apply op args e.pexp_loc
            | None -> ());
            (match hashtable_escape lid with
            | Some `Iter ->
                add ~rule:Finding.Hashtbl_order ~loc:e.pexp_loc
                  ~msg:"Hashtbl.iter visits bindings in hash order"
                  ~hint:
                    "fold to a list and sort with an explicit comparator, \
                     or justify commutativity with '(* lint: allow \
                     hashtbl-order *)'"
            | Some `Escape when not (is_sunk e) ->
                add ~rule:Finding.Hashtbl_order ~loc:e.pexp_loc
                  ~msg:
                    "hash-order-dependent result escapes without an \
                     explicit-comparator sort"
                  ~hint:
                    "pipe into List.sort with a typed comparator before \
                     the result escapes"
            | Some `Escape | None -> ());
            (* Sanction folds that feed an explicit sort. *)
            match (fn_of lid, args) with
            | Some "|>", [ (_, lhs); (_, rhs) ]
              when is_escape_app lhs && is_explicit_sort ~shadowed rhs ->
                mark_sunk lhs
            | Some "@@", [ (_, f); (_, x) ]
              when is_escape_app x && is_explicit_sort ~shadowed f ->
                mark_sunk x
            | _ ->
                if is_explicit_sort ~shadowed e then
                  List.iter
                    (fun (_, a) -> if is_escape_app a then mark_sunk a)
                    args)
        | _ -> iter.Ast_iterator.expr iter head);
        List.iter (fun (_, a) -> iter.Ast_iterator.expr iter a) args
    | Pexp_match (_, cases) | Pexp_function cases ->
        check_cases e.pexp_loc cases;
        super.expr iter e
    | _ -> super.expr iter e
  in
  let value_binding iter vb =
    (* [let compare = compare]: rebinding the polymorphic comparator
       (e.g. in a [Set.Make] argument) shadows itself, so the ordinary
       ident check above would miss it. *)
    (match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
    | Ppat_var { txt = "compare"; _ }, Pexp_ident { txt = lid; _ }
      when shadowed
           && (match lid with
              | Longident.Lident "compare" -> true
              | _ -> is_stdlib_qualified lid "compare") ->
        add ~rule:Finding.Poly_compare ~loc:vb.pvb_loc
          ~msg:"rebinding the polymorphic compare"
          ~hint:"write an explicit comparator over the key's fields"
    | _ -> ());
    super.value_binding iter vb
  in
  let it = { super with expr; value_binding } in
  it.structure it structure;
  List.rev !findings
