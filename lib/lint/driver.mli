(** Walks the tree, parses every implementation, applies the rules
    (per-file hazards, and the whole-program {!Race} analysis when
    requested) and the suppressions, and renders the report. *)

type rule_counts = {
  rc_reported : int;
  rc_suppressed : int;
  rc_baselined : int;
}

type report = {
  findings : Finding.t list;  (** neither suppressed nor baselined *)
  suppressed : int;  (** silenced by [(* lint: allow ... *)] comments *)
  baselined : int;  (** silenced by the baseline file *)
  files_scanned : int;
  by_rule : (Finding.rule * rule_counts) list;
      (** rules with at least one reported/suppressed/baselined
          finding, in rule order *)
}

val clean : report -> bool

val mli_required : path:string -> bool
(** Rule D5 applies to [path] (an [.ml] under [lib/desim/], [lib/mach/],
    [lib/core/], [lib/check/], [lib/cc/], [lib/par/] or [lib/lint/]). *)

val scan_sources :
  ?race:bool -> ?rules:Finding.rule list -> (string * string) list -> report
(** Lint in-memory [(path, source)] pairs: the test-fixture entry point.
    Allow comments apply; the baseline and rule D5 (which need a file
    system) do not. The D6 variant context is collected from the given
    sources; [race] (default false) additionally runs the whole-program
    D7/D8/D9 analysis over them, and [rules] restricts the report. *)

val run :
  ?baseline:string ->
  ?race:bool ->
  ?rules:Finding.rule list ->
  roots:string list ->
  unit ->
  (report, string) result
(** Lint every [.ml] under [roots] (repository-root-relative paths).
    [baseline] names the baseline file; [race] (default false) adds the
    whole-program D7/D8/D9 analysis; [rules] restricts the report to
    the given rules. An unreadable [.ml] file surfaces as a rule-P1
    finding rather than being skipped. [Error] reports an unreadable
    baseline or a missing root. *)

val render_text : report -> string
val render_json : report -> string
