(** Walks the tree, parses every implementation, applies the rules and
    the suppressions, and renders the report. *)

type report = {
  findings : Finding.t list;  (** neither suppressed nor baselined *)
  suppressed : int;  (** silenced by [(* lint: allow ... *)] comments *)
  baselined : int;  (** silenced by the baseline file *)
  files_scanned : int;
}

val clean : report -> bool

val mli_required : path:string -> bool
(** Rule D5 applies to [path] (an [.ml] under [lib/desim/], [lib/mach/],
    [lib/core/], [lib/check/] or [lib/cc/]). *)

val scan_sources : (string * string) list -> report
(** Lint in-memory [(path, source)] pairs: the test-fixture entry point.
    Allow comments apply; the baseline and rule D5 (which need a file
    system) do not. The D6 variant context is collected from the given
    sources. *)

val run : ?baseline:string -> roots:string list -> unit -> (report, string) result
(** Lint every [.ml] under [roots] (repository-root-relative paths).
    [baseline] names the baseline file; [Error] reports an unreadable
    baseline or a missing root. *)

val render_text : report -> string
val render_json : report -> string
