(** Suppression: [(* lint: allow <rule> ... *)] comments and the
    checked-in baseline file. *)

type scope =
  | Here  (** the comment's line and the next line *)
  | Whole_file  (** the [file] token was present *)

type t = { rule : Finding.rule; line : int; scope : scope }

val scan : string -> t list
(** All allow directives found in a file's source text, in line order.
    A directive must sit on a single line:
    [(* lint: allow <rule> [<rule> ...] [file] *)] where each rule is a
    code ("D1") or a name ("poly-compare"). Unknown rule tokens are
    ignored. *)

val suppressed : allows:t list -> Finding.t -> bool

type baseline_entry = { b_rule : Finding.rule; b_path : string }

val load_baseline : string -> (baseline_entry list, string) result
(** Parse a baseline file: one [<rule> <path>] entry per line, [#]
    comments and blank lines ignored. *)

val baselined : baseline:baseline_entry list -> Finding.t -> bool
