(** ddbm-race: whole-program domain-safety analysis.

    PR 6 moved every fan-out onto a work-stealing pool of OCaml 5
    domains ([Par.Pool]); the only dynamic guard against a data race
    corrupting results is the per-seed bit-identity test. This pass
    makes the guarantee static: it computes the set of top-level
    bindings reachable from closures submitted to
    [Par.Pool.map]/[map_array]/[run] (over the {!Graph} value/closure
    graph) and reports three rules inside that *task scope*:

    - {b D7} ([shared-mutable]): a reference to a top-level binding
      that allocates mutable state at module-initialization time
      ({!Mutability}) — every worker domain sees the same cell.
    - {b D8} ([unsafe-stdlib]): domain-unsafe stdlib — output to the
      shared [stdout]/[stderr]/[Format.std_formatter] channels, the
      [Logs] global reporter, ambient [Random] state, randomized
      [Hashtbl.hash], and ambient [Sys]/[Unix] calls beyond the ones
      rule D3 already bans everywhere.
    - {b D9} ([shared-lazy]): a reference to a shared top-level lazy
      suspension — two domains racing on [Lazy.force] is undefined
      ([CamlinternalLazy.Undefined] or a torn result).

    Task submissions are only rooted in files under [lib/] and [bin/]:
    the test tree deliberately shares state across tasks to test the
    pool itself, and the bench harness runs its pools serially.

    Blind spots, by construction (untyped, functor-free, qualified-name
    resolution): state reached through functor instantiations, values
    pulled in by [open], first-class modules, and mutable values passed
    as task *inputs* (the dynamic bit-identity test keeps covering
    those). *)

open Parsetree

(* Files whose [Par.Pool] submissions root the analysis. *)
let root_prefixes = [ "lib/"; "bin/" ]

let in_root_scope path =
  List.exists (fun p -> String.starts_with ~prefix:p path) root_prefixes

(* ------------------------------------------------------------------ *)
(* Submission sites                                                     *)

let submit_fns = [ "map"; "map_array"; "run" ]

(* [Par.Pool.map], [Pool.map_array], or an alias [module P = Par.Pool]
   followed by [P.map]. *)
let is_submission graph lid =
  match (Graph.owner_of lid, lid) with
  | Some owner, Longident.Ldot (_, fn) ->
      List.exists (String.equal fn) submit_fns
      && List.exists (String.equal "Pool") (Graph.resolve_owner graph owner)
  | _ -> false

type submission = {
  sub_site : Graph.site;  (** the [Pool.map ...] application *)
  sub_closure : expression;  (** the task argument *)
  sub_module : string;  (** module containing the submission *)
  sub_file : string;
}

let positional args =
  List.filter_map
    (fun (label, e) ->
      match label with
      | Asttypes.Nolabel -> Some e
      | Asttypes.Labelled _ | Asttypes.Optional _ -> None)
    args

let submissions graph files =
  let acc = ref [] in
  List.iter
    (fun (file, structure) ->
      if in_root_scope file then begin
        let self = Graph.module_of_path file in
        let super = Ast_iterator.default_iterator in
        let expr iter e =
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = lid; _ }; _ }, args)
            when is_submission graph lid -> (
              (* [map pool task inputs]: the task is the second
                 positional argument. *)
              match positional args with
              | _pool :: task :: _ ->
                  acc :=
                    {
                      sub_site = Graph.site_of ~file e.pexp_loc;
                      sub_closure = task;
                      sub_module = self;
                      sub_file = file;
                    }
                    :: !acc
              | _ -> ())
          | _ -> ());
          super.expr iter e
        in
        let it = { super with expr } in
        it.structure it structure
      end)
    files;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Reachability                                                         *)

(* The scopes to scan: each submission's closure expression itself,
   plus the RHS of every top-level binding reachable from it. Each
   scope carries the submission that (first) reached it, for the
   finding message. *)
type scope = {
  sc_expr : expression;
  sc_module : string;  (** for bare-ident resolution *)
  sc_file : string;
  sc_via : Graph.site;  (** the rooting submission *)
}

let reachable_scopes graph subs =
  let visited = Hashtbl.create 64 in
  let scopes = ref [] in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      scopes :=
        {
          sc_expr = s.sub_closure;
          sc_module = s.sub_module;
          sc_file = s.sub_file;
          sc_via = s.sub_site;
        }
        :: !scopes;
      List.iter
        (fun (r : Graph.reference) ->
          Queue.add (r.Graph.r_target, s.sub_site) queue)
        (Graph.refs_in graph ~self:s.sub_module ~file:s.sub_file s.sub_closure))
    subs;
  while not (Queue.is_empty queue) do
    let key, via = Queue.pop queue in
    let id = Graph.key_to_string key in
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.replace visited id ();
      List.iter
        (fun (b : Graph.binding) ->
          scopes :=
            {
              sc_expr = b.Graph.b_expr;
              sc_module = b.Graph.b_key.Graph.km;
              sc_file = b.Graph.b_file;
              sc_via = via;
            }
            :: !scopes;
          List.iter
            (fun (r : Graph.reference) ->
              Queue.add (r.Graph.r_target, via) queue)
            (Graph.refs_in graph ~self:b.Graph.b_key.Graph.km
               ~file:b.Graph.b_file b.Graph.b_expr))
        (Graph.find graph key)
    end
  done;
  List.rev !scopes

(* ------------------------------------------------------------------ *)
(* D8: domain-unsafe stdlib                                             *)

let list_mem x l = List.exists (String.equal x) l

(** [Some what] when the identifier is domain-unsafe in task scope. *)
let unsafe_stdlib lid =
  let fn = Graph.last_of lid in
  match Graph.owner_of lid with
  | Some "Printf" when list_mem fn [ "printf"; "eprintf" ] ->
      Some ("Printf." ^ fn ^ " writes to a channel shared across domains")
  | Some "Format"
    when list_mem fn
           [ "printf"; "eprintf"; "print_string"; "print_newline";
             "print_flush"; "std_formatter"; "err_formatter";
             "get_std_formatter"; "get_err_formatter" ] ->
      Some
        ("Format." ^ fn
       ^ " uses the process-wide std/err formatter (not domain-safe)")
  | Some "Logs" when list_mem fn [ "app"; "err"; "warn"; "info"; "debug"; "msg" ]
    ->
      Some ("Logs." ^ fn ^ " goes through the global mutable reporter")
  | Some "Random" ->
      Some ("Random." ^ fn ^ " mutates the ambient domain-shared RNG state")
  | Some "Hashtbl" when list_mem fn [ "hash"; "seeded_hash" ] ->
      Some ("Hashtbl." ^ fn ^ " depends on randomized seeding per process")
  | Some "Sys"
    when list_mem fn
           [ "time"; "getenv"; "getenv_opt"; "command"; "chdir"; "getcwd";
             "readdir" ] ->
      Some ("Sys." ^ fn ^ " reads ambient process state")
  | Some "Unix"
    when list_mem fn
           [ "gettimeofday"; "time"; "sleep"; "sleepf"; "fork"; "system";
             "getpid"; "environment"; "getenv" ] ->
      Some ("Unix." ^ fn ^ " reads ambient process state")
  | _ -> (
      match lid with
      | Longident.Lident
          (( "print_string" | "print_endline" | "print_newline" | "print_char"
           | "print_int" | "print_float" | "prerr_string" | "prerr_endline"
           | "prerr_newline" ) as f) ->
          Some (f ^ " writes to a channel shared across domains")
      | _ -> None)

(* [Random.State.x] is the sanctioned, explicitly seeded form: its
   owner is [State], so the [Some "Random"] arm above never sees it. *)

(* ------------------------------------------------------------------ *)
(* The analysis                                                         *)

let where via = Printf.sprintf "(task submitted at %s:%d)" via.Graph.s_file via.Graph.s_line

let scan_scope graph census scope =
  let findings = ref [] in
  let add ~rule ~(site : Graph.site) ~msg ~hint =
    findings :=
      Finding.v ~rule ~file:site.Graph.s_file ~line:site.Graph.s_line
        ~col:site.Graph.s_col ~msg ~hint
      :: !findings
  in
  (* D7 / D9: resolved references to mutable or lazy top-level state. *)
  List.iter
    (fun (r : Graph.reference) ->
      match Mutability.find census r.Graph.r_target with
      | Some entry -> (
          let target = Graph.key_to_string r.Graph.r_target in
          match entry.Mutability.e_kind with
          | Mutability.Lazy_block ->
              add ~rule:Finding.Shared_lazy ~site:r.Graph.r_site
                ~msg:
                  (Printf.sprintf
                     "shared lazy suspension '%s' (defined %s:%d) reachable \
                      from a Par.Pool task %s"
                     target entry.Mutability.e_file entry.Mutability.e_line
                     (where scope.sc_via))
                ~hint:
                  "two domains racing on Lazy.force is undefined; force it \
                   before the fan-out or make it per-task"
          | _ ->
              add ~rule:Finding.Shared_mutable ~site:r.Graph.r_site
                ~msg:
                  (Printf.sprintf
                     "top-level mutable state '%s' — %s (defined %s:%d) — \
                      reachable from a Par.Pool task %s"
                     target
                     (Mutability.kind_to_string entry.Mutability.e_kind)
                     entry.Mutability.e_file entry.Mutability.e_line
                     (where scope.sc_via))
                ~hint:
                  "move the state into the task, thread it as task input, \
                   or justify with '(* lint: allow shared-mutable *)'")
      | None -> ())
    (Graph.refs_in graph ~self:scope.sc_module ~file:scope.sc_file
       scope.sc_expr);
  (* D8: unsafe stdlib at any identifier site in the scope. *)
  let super = Ast_iterator.default_iterator in
  let expr iter e =
    (match e.pexp_desc with
    | Pexp_ident { txt = lid; loc } -> (
        match unsafe_stdlib lid with
        | Some what ->
            add ~rule:Finding.Unsafe_stdlib
              ~site:(Graph.site_of ~file:scope.sc_file loc)
              ~msg:(what ^ " " ^ where scope.sc_via)
              ~hint:
                "draw from seeded per-task state (Desim.Rng, Random.State, \
                 per-task buffers) or justify with '(* lint: allow \
                 unsafe-stdlib *)'"
        | None -> ())
    | _ -> ());
    super.expr iter e
  in
  let it = { super with expr } in
  it.expr it scope.sc_expr;
  List.rev !findings

(** Run the whole-program analysis over parsed [(path, structure)]
    files; returns D7/D8/D9 findings (deduplicated, in report order). *)
let analyze files =
  let graph = Graph.build files in
  let census = Mutability.census ~files graph in
  let subs = submissions graph files in
  let scopes = reachable_scopes graph subs in
  let raw = List.concat_map (fun s -> scan_scope graph census s) scopes in
  (* The same site can be reached from several submissions (e.g. two
     fan-outs sharing Machine.run); report it once. *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (f : Finding.t) ->
      let id =
        Printf.sprintf "%s|%s:%d:%d" (Finding.code f.Finding.rule)
          f.Finding.file f.Finding.line f.Finding.col
      in
      if Hashtbl.mem seen id then false
      else begin
        Hashtbl.replace seen id ();
        true
      end)
    raw
  |> List.sort Finding.compare
