(** Coordinator/cohort message protocol.

    One coordinator mailbox and one mailbox per cohort exist per
    transaction attempt, so messages can never leak between attempts. The
    only cross-attempt traffic, {!coord_msg.Abort_request} and
    {!coord_msg.Inquiry}, carries the target attempt and is dropped (or
    answered from the decision log) at routing time when stale. *)

open Desim
open Ddbm_model

(** Coordinator -> cohort. *)
type cohort_msg =
  | Do_prepare  (** start phase one; [Txn.commit_ts] is already assigned *)
  | Do_commit
  | Do_abort

val cohort_msg_name : cohort_msg -> string

(** Cohort (or CC manager) -> coordinator. *)
type coord_msg =
  | Work_done of int  (** cohort at node finished its reads and writes *)
  | Cohort_aborted of int * Txn.abort_reason
      (** cohort self-aborted (e.g. BTO rejection) *)
  | Vote of int * bool
  | Done_ack of int  (** final acknowledgement of commit or abort *)
  | Abort_request of Txn.t * Txn.abort_reason
      (** a CC manager somewhere demands this transaction's abort *)
  | Inquiry of Txn.t * int
      (** 2PC termination protocol: the in-doubt cohort at [node] asks
          what became of the given attempt. Routed to the live
          coordinator if any; otherwise answered from the host's decision
          log (presumed abort). *)

val coord_msg_name : coord_msg -> string

(** Work-phase resource usage of one cohort, accumulated as wall-clock
    deltas around its CC, disk, and CPU operations; feeds the
    response-time decomposition ({!Decomp}). *)
type cohort_usage = {
  mutable u_blocked : float;  (** CC requests: lock waits + processing *)
  mutable u_disk : float;  (** disk reads: queueing + service *)
  mutable u_cpu : float;  (** page processing under processor sharing *)
  mutable u_log : float;
      (** prepare-record log forces: log-disk queueing + service (zero
          without a modeled log disk) *)
}

(** Per-attempt runtime shared between the coordinator and the message
    routing layer. *)
type attempt_runtime = {
  txn : Txn.t;
  coord_mb : coord_msg Mailbox.t;
  cohort_mbs : (int, cohort_msg Mailbox.t) Hashtbl.t;  (** node -> mailbox *)
  usage : (int, cohort_usage) Hashtbl.t;  (** node -> work-phase usage *)
  mutable last_work_node : int;
      (** node whose Work_done the coordinator processed last (-1 until
          the first arrives); the work-phase critical path under parallel
          execution *)
  mutable last_vote_node : int;
      (** node whose yes vote the coordinator accepted last (-1 until the
          first); its prepare-record force gates the commit decision and
          feeds the decomposition's [log] component *)
  arrived_nodes : (int, unit) Hashtbl.t;
      (** nodes whose load-cohort message was delivered; guards against a
          retransmitted load spawning a twin cohort, and tells the
          coordinator which loads may have been lost *)
  voted_nodes : (int, unit) Hashtbl.t;
      (** nodes that sent a yes vote — their cohorts are prepared
          (in-doubt) and must not be victimized by a node crash *)
  shipped_nodes : (int, unit) Hashtbl.t;
      (** nodes whose cohort's write-set was delivered to its backup
          (primary/backup replication): if the node crashes before the
          cohort votes, the coordinator can fail over to the backup
          instead of dooming the attempt *)
  preparing_nodes : (int, unit) Hashtbl.t;
      (** nodes whose cohort has begun processing Do_prepare (may be
          blocked inside its CC manager); such a cohort cannot be failed
          over — a backup proxy would double-drive the CC manager *)
  relocated : (int, int) Hashtbl.t;
      (** original cohort node -> backup node now running its proxy;
          coordinator sends route to the backup, and the original fiber
          exits silently when it observes the entry *)
  mutable doom_reason : Txn.abort_reason option;
      (** set by fault handling (node crash) when the attempt must abort
          but no message can carry the news; the coordinator checks it on
          every receive timeout *)
}

val make_runtime : Txn.t -> attempt_runtime

(** The usage record of [node], created on first access. *)
val usage : attempt_runtime -> int -> cohort_usage
