(** Trace exporters: JSONL and Chrome trace_event sinks for the typed
    event stream.

    JSON is emitted by hand (one small, dependency-free printer) in two
    shapes:

    - {!jsonl_sink}: one JSON object per line per event — the complete
      stream, including per-interval {!Ddbm_model.Event.Sample} rows
      with nested per-node utilizations;
    - {!Chrome}: the Chrome trace_event format (a JSON document with a
      ["traceEvents"] array), loadable in Perfetto ({:https://ui.perfetto.dev})
      or [chrome://tracing]. Process 0 is the host node and process
      [i+1] is processing node [i]; thread ids are transaction ids, so
      each transaction reads as one horizontal track. Attempts, lock
      waits, disk accesses and CPU slices become duration slices; wounds,
      Snoop rounds and restart waits become instants; sampler rows
      become counter tracks. Raw network messages are deliberately left
      out of the Chrome view (they dominate event volume); use the JSONL
      exporter to see them. *)

open Ddbm_model

(* ------------------------------------------------------------------ *)
(* Minimal JSON printing                                               *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = "\"" ^ escape s ^ "\""

(* Deterministic, JSON-valid float formatting ("%g" may print "1e-07",
   which JSON accepts; infinities and NaNs never occur in the stream). *)
let jfloat f = Printf.sprintf "%.9g" f

let jfield (k, v) =
  jstr k ^ ":"
  ^
  match v with
  | Event.I i -> string_of_int i
  | Event.F f -> jfloat f
  | Event.S s -> jstr s
  | Event.B b -> if b then "true" else "false"

let jobj fields = "{" ^ String.concat "," fields ^ "}"

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)

let sample_json ~time ({ Event.active; host_cpu_util; nodes } : Event.sample)
    =
  let node_json (n : Event.node_sample) =
    jobj
      [
        jstr "cpu" ^ ":" ^ jfloat n.Event.cpu_util;
        jstr "disk" ^ ":" ^ jfloat n.Event.disk_util;
        jstr "cpu_q" ^ ":" ^ string_of_int n.Event.cpu_queue;
        jstr "disk_q" ^ ":" ^ string_of_int n.Event.disk_queue;
      ]
  in
  jobj
    [
      jstr "t" ^ ":" ^ jfloat time;
      jstr "ev" ^ ":" ^ jstr "sample";
      jstr "active" ^ ":" ^ string_of_int active;
      jstr "host_cpu" ^ ":" ^ jfloat host_cpu_util;
      jstr "nodes" ^ ":["
      ^ String.concat "," (Array.to_list (Array.map node_json nodes))
      ^ "]";
    ]

(** A sink writing one JSON object per event to [out], one per line. *)
let jsonl_sink out : Tracer.sink =
 fun ~time ev ->
  let line =
    match[@warning "-4"] ev with
    | Event.Sample s -> sample_json ~time s
    (* The generic arm serializes any event via Event.name/Event.fields,
       which are themselves exhaustive matches. *)
    (* lint: allow catch-all-event *)
    | ev ->
        jobj
          ((jstr "t" ^ ":" ^ jfloat time)
           :: (jstr "ev" ^ ":" ^ jstr (Event.name ev))
           :: List.map jfield (Event.fields ev))
  in
  out line;
  out "\n"

(* ------------------------------------------------------------------ *)
(* Chrome trace_event                                                  *)

module Chrome = struct
  type t = {
    out : string -> unit;
    mutable first : bool;
    attempt_starts : (int * int, float) Hashtbl.t;
        (** (tid, attempt) -> Attempt_start time *)
    prepare_starts : (int * int, float) Hashtbl.t;
    mutable closed : bool;
  }

  let us time = jfloat (time *. 1e6)

  let record t fields =
    if t.first then t.first <- false else t.out ",";
    t.out "\n";
    t.out (jobj fields)

  (* One trace_event record. [ph] "X" needs [dur]; [ts] and [dur] are in
     microseconds. *)
  let event t ~ph ~pid ~tid ~name ~ts ?dur ?(args = []) () =
    record t
      ([
         jstr "ph" ^ ":" ^ jstr ph;
         jstr "pid" ^ ":" ^ string_of_int pid;
         jstr "tid" ^ ":" ^ string_of_int tid;
         jstr "name" ^ ":" ^ jstr name;
         jstr "ts" ^ ":" ^ us ts;
       ]
      @ (match dur with
        | Some d -> [ jstr "dur" ^ ":" ^ us d ]
        | None -> [])
      @
      match args with
      | [] -> []
      | args -> [ jstr "args" ^ ":" ^ jobj (List.map jfield args) ])

  let process_name t ~pid name =
    record t
      [
        jstr "ph" ^ ":" ^ jstr "M";
        jstr "pid" ^ ":" ^ string_of_int pid;
        jstr "name" ^ ":" ^ jstr "process_name";
        jstr "args" ^ ":" ^ jobj [ jstr "name" ^ ":" ^ jstr name ];
      ]

  (** [create ?num_nodes out] starts a Chrome trace document on [out].
      With [num_nodes], processes are named up front ("host",
      "proc 0", ...). Call {!close} to terminate the document. *)
  let create ?num_nodes out =
    let t =
      {
        out;
        first = true;
        attempt_starts = Hashtbl.create 256;
        prepare_starts = Hashtbl.create 256;
        closed = false;
      }
    in
    out "{\"traceEvents\":[";
    (match num_nodes with
    | None -> ()
    | Some n ->
        process_name t ~pid:0 "host";
        for i = 0 to n - 1 do
          process_name t ~pid:(i + 1) (Printf.sprintf "proc %d" i)
        done);
    t

  let page_name prefix page = Format.asprintf "%s %a" prefix Ids.Page.pp page
  let pid_of = function Ids.Host -> 0 | Ids.Proc i -> i + 1

  let sink t : Tracer.sink =
   fun ~time ev ->
    match[@warning "-4"] ev with
    | Event.Attempt_start { tid; attempt } ->
        Hashtbl.replace t.attempt_starts (tid, attempt) time
    | Event.Prepare { tid; attempt } ->
        Hashtbl.replace t.prepare_starts (tid, attempt) time
    | Event.Committed { tid; attempt; response } ->
        (match Hashtbl.find_opt t.prepare_starts (tid, attempt) with
        | Some start ->
            Hashtbl.remove t.prepare_starts (tid, attempt);
            event t ~ph:"X" ~pid:0 ~tid ~name:"2pc" ~ts:start
              ~dur:(time -. start) ()
        | None -> ());
        (match Hashtbl.find_opt t.attempt_starts (tid, attempt) with
        | Some start ->
            Hashtbl.remove t.attempt_starts (tid, attempt);
            event t ~ph:"X" ~pid:0 ~tid
              ~name:(Printf.sprintf "attempt %d (commit)" attempt)
              ~ts:start ~dur:(time -. start)
              ~args:[ ("response", Event.F response) ]
              ()
        | None -> ())
    | Event.Aborted { tid; attempt; reason } -> (
        Hashtbl.remove t.prepare_starts (tid, attempt);
        match Hashtbl.find_opt t.attempt_starts (tid, attempt) with
        | Some start ->
            Hashtbl.remove t.attempt_starts (tid, attempt);
            event t ~ph:"X" ~pid:0 ~tid
              ~name:(Printf.sprintf "attempt %d (abort)" attempt)
              ~ts:start ~dur:(time -. start)
              ~args:[ ("reason", Event.S (Txn.abort_reason_name reason)) ]
              ()
        | None -> ())
    | Event.Lock_grant { tid; node; page; mode; waited; _ } ->
        if waited > 0. then
          event t ~ph:"X" ~pid:(node + 1) ~tid
            ~name:(page_name "lock-wait" page)
            ~ts:(time -. waited) ~dur:waited
            ~args:[ ("mode", Event.S (Event.lock_mode_name mode)) ]
            ()
    | Event.Disk_access { tid; node; write; dur; _ } ->
        event t ~ph:"X" ~pid:(node + 1) ~tid
          ~name:(if write then "disk-write" else "disk-read")
          ~ts:(time -. dur) ~dur ()
    | Event.Cpu_slice { tid; node; dur; _ } ->
        event t ~ph:"X" ~pid:(node + 1) ~tid ~name:"cpu" ~ts:(time -. dur)
          ~dur ()
    | Event.Wound { tid; from_node; reason; _ } ->
        event t ~ph:"i" ~pid:(from_node + 1) ~tid ~name:"wound" ~ts:time
          ~args:[ ("reason", Event.S (Txn.abort_reason_name reason)) ]
          ()
    | Event.Snoop_round { node; edges; victims } ->
        event t ~ph:"i" ~pid:(node + 1) ~tid:0 ~name:"snoop-round" ~ts:time
          ~args:[ ("edges", Event.I edges); ("victims", Event.I victims) ]
          ()
    | Event.Restart_wait { tid; attempt; delay } ->
        event t ~ph:"i" ~pid:0 ~tid ~name:"restart-wait" ~ts:time
          ~args:[ ("attempt", Event.I attempt); ("delay", Event.F delay) ]
          ()
    | Event.Sample { active; host_cpu_util; nodes } ->
        event t ~ph:"C" ~pid:0 ~tid:0 ~name:"active" ~ts:time
          ~args:[ ("active", Event.I active) ]
          ();
        event t ~ph:"C" ~pid:0 ~tid:0 ~name:"util" ~ts:time
          ~args:[ ("cpu", Event.F host_cpu_util) ]
          ();
        Array.iteri
          (fun i (n : Event.node_sample) ->
            event t ~ph:"C" ~pid:(i + 1) ~tid:0 ~name:"util" ~ts:time
              ~args:
                [
                  ("cpu", Event.F n.Event.cpu_util);
                  ("disk", Event.F n.Event.disk_util);
                ]
              ();
            event t ~ph:"C" ~pid:(i + 1) ~tid:0 ~name:"queues" ~ts:time
              ~args:
                [
                  ("cpu", Event.I n.Event.cpu_queue);
                  ("disk", Event.I n.Event.disk_queue);
                ]
              ())
          nodes
    | Event.Node_crashed { node } ->
        event t ~ph:"i" ~pid:(pid_of node) ~tid:0 ~name:"node-crashed"
          ~ts:time ()
    | Event.Node_recovered { node } ->
        event t ~ph:"i" ~pid:(pid_of node) ~tid:0 ~name:"node-recovered"
          ~ts:time ()
    | Event.Txn_orphaned { tid; attempt; node } ->
        event t ~ph:"i" ~pid:(node + 1) ~tid ~name:"txn-orphaned" ~ts:time
          ~args:[ ("attempt", Event.I attempt) ]
          ()
    | Event.Log_forced { tid; node; dur; _ } ->
        event t ~ph:"X" ~pid:(node + 1) ~tid ~name:"log-force"
          ~ts:(time -. dur) ~dur ()
    | Event.Cohort_resurrected { tid; attempt; node; backup } ->
        event t ~ph:"i" ~pid:(backup + 1) ~tid ~name:"cohort-resurrected"
          ~ts:time
          ~args:[ ("attempt", Event.I attempt); ("from_node", Event.I node) ]
          ()
    | Event.Recovery_started { node } ->
        event t ~ph:"i" ~pid:(node + 1) ~tid:0 ~name:"recovery-started"
          ~ts:time ()
    | Event.Recovery_completed { node; duration; redone } ->
        event t ~ph:"X" ~pid:(node + 1) ~tid:0 ~name:"recovery"
          ~ts:(time -. duration) ~dur:duration
          ~args:[ ("redone", Event.I redone) ]
          ()
    (* chain slices ride on per-chain track ids (tid = chain + 1) so a
       chain-parallel recovery renders as stacked lanes under the node *)
    | Event.Recovery_chain_completed { node; chain; txns; duration } ->
        event t ~ph:"X" ~pid:(node + 1) ~tid:(chain + 1)
          ~name:"recovery-chain" ~ts:(time -. duration) ~dur:duration
          ~args:[ ("txns", Event.I txns) ]
          ()
    | Event.Submit _ | Event.Setup_done _ | Event.Cohort_load _
    | Event.Cohort_start _ | Event.Lock_request _ | Event.Lock_release _
    | Event.Msg_send _ | Event.Msg_recv _ | Event.Work_done _ | Event.Vote _
    | Event.Decision _ | Event.Msg_dropped _ | Event.Timeout_fired _
    | Event.Recovery_chain_started _ ->
        ()

  (** Terminate the JSON document (idempotent). *)
  let close t =
    if not t.closed then begin
      t.closed <- true;
      t.out "\n]}\n"
    end
end
