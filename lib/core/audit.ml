(** End-to-end serializability auditor.

    When enabled, the machine records for every *committed* transaction
    the version of each page it read (the page's install counter at the
    instant the access permission was granted) and the versions its
    commit installed. From these we build the multiversion serialization
    graph:

    - ww: the writer of version [v] precedes the writer of version [v+1];
    - wr: the writer of version [v] precedes every reader of [v];
    - rw: every reader of version [v] precedes the writer of [v+1].

    Acyclicity of this graph over the committed transactions proves the
    execution was (multiversion view-) serializable — a whole-machine
    correctness check for every concurrency control algorithm, including
    BTO's Thomas-rule write drops (a dropped write installs nothing and
    simply does not appear). *)

open Ddbm_model
open Ids

type txn_record = {
  key : int * int;
  mutable reads : (Page.t * int) list;  (** page, version observed *)
  mutable writes : (Page.t * int) list;  (** page, version installed *)
  mutable committed : bool;
}

type t = {
  versions : int Page_table.t;  (** current installed version per page *)
  txns : (int * int, txn_record) Hashtbl.t;
  mutable commit_count : int;
}

let create () =
  { versions = Page_table.create 1024; txns = Hashtbl.create 512; commit_count = 0 }

let current_version t page =
  Option.value ~default:0 (Page_table.find_opt t.versions page)

let record_of t txn =
  let key = Txn.key txn in
  match Hashtbl.find_opt t.txns key with
  | Some r -> r
  | None ->
      let r = { key; reads = []; writes = []; committed = false } in
      Hashtbl.add t.txns key r;
      r

(** The cohort's access permission for [page] was granted; remember the
    version it observes. *)
let record_read t txn page =
  let r = record_of t txn in
  r.reads <- (page, current_version t page) :: r.reads

(** The cohort's commit installed its update of [page]. *)
let record_install t txn page =
  let v = current_version t page + 1 in
  Page_table.replace t.versions page v;
  let r = record_of t txn in
  r.writes <- (page, v) :: r.writes

let record_commit t txn =
  (record_of t txn).committed <- true;
  t.commit_count <- t.commit_count + 1

(** Aborted attempts leave no trace. *)
let record_abort t txn = Hashtbl.remove t.txns (Txn.key txn)

let committed_count t = t.commit_count

(* --- graph construction and cycle check --------------------------- *)

let compare_key ((t1, a1) : int * int) ((t2, a2) : int * int) =
  match Int.compare t1 t2 with 0 -> Int.compare a1 a2 | n -> n

module Edge_set = Set.Make (struct
  type t = (int * int) * (int * int)

  let compare (w1, h1) (w2, h2) =
    match compare_key w1 w2 with 0 -> compare_key h1 h2 | n -> n
end)

let build_edges t =
  (* per page: writer of each version, readers of each version *)
  let writers : (Page.t * int, int * int) Hashtbl.t = Hashtbl.create 1024 in
  let readers : (Page.t * int, (int * int) list) Hashtbl.t =
    Hashtbl.create 1024
  in
  (* lint: allow hashtbl-order - fills keyed tables, order immaterial *)
  Hashtbl.iter
    (fun key r ->
      if r.committed then begin
        List.iter (fun (page, v) -> Hashtbl.replace writers (page, v) key) r.writes;
        List.iter
          (fun (page, v) ->
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt readers (page, v))
            in
            Hashtbl.replace readers (page, v) (key :: cur))
          r.reads
      end)
    t.txns;
  let edges = ref Edge_set.empty in
  let add a b = if a <> b then edges := Edge_set.add (a, b) !edges in
  (* ww and wr *)
  (* lint: allow hashtbl-order - accumulates into a set, order immaterial *)
  Hashtbl.iter
    (fun (page, v) writer ->
      (match Hashtbl.find_opt writers (page, v + 1) with
      | Some next_writer -> add writer next_writer
      | None -> ());
      (match Hashtbl.find_opt readers (page, v) with
      | Some rs -> List.iter (fun r -> add writer r) rs
      | None -> ()))
    writers;
  (* rw: reader of v precedes writer of v+1 *)
  (* lint: allow hashtbl-order - accumulates into a set, order immaterial *)
  Hashtbl.iter
    (fun (page, v) rs ->
      match Hashtbl.find_opt writers (page, v + 1) with
      | Some next_writer -> List.iter (fun r -> add r next_writer) rs
      | None -> ())
    readers;
  !edges

(** Check the committed history for serializability. [Ok n] reports the
    number of committed transactions checked; [Error msg] describes a
    cycle. *)
let check t =
  let edges = build_edges t in
  let adj : (int * int, (int * int) list) Hashtbl.t = Hashtbl.create 1024 in
  Edge_set.iter
    (fun (a, b) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt adj a) in
      Hashtbl.replace adj a (b :: cur))
    edges;
  (* iterative three-color DFS *)
  let color : (int * int, [ `Grey | `Black ]) Hashtbl.t = Hashtbl.create 1024 in
  let cycle = ref None in
  let rec visit node =
    match Hashtbl.find_opt color node with
    | Some `Black -> ()
    | Some `Grey ->
        if !cycle = None then cycle := Some node
    | None ->
        Hashtbl.replace color node `Grey;
        List.iter
          (fun next -> if !cycle = None then visit next)
          (Option.value ~default:[] (Hashtbl.find_opt adj node));
        Hashtbl.replace color node `Black
  in
  (* DFS roots in key order: the cycle witness named in the error is then
     independent of hash-table layout. *)
  let roots =
    Hashtbl.fold (fun node _ acc -> node :: acc) adj []
    |> List.sort compare_key
  in
  List.iter (fun node -> if !cycle = None then visit node) roots;
  match !cycle with
  | None -> Ok t.commit_count
  | Some (tid, attempt) ->
      Error
        (Printf.sprintf
           "serialization graph has a cycle through T%d.%d (%d committed, %d edges)"
           tid attempt t.commit_count
           (Edge_set.cardinal edges))
