(** Reproduction of every figure of the paper's evaluation (Section 4).

    Each [figN] function regenerates the series of the corresponding paper
    figure from simulation runs (shared through the {!Experiment.cache}).
    Figure numbers match the paper:

    - Figs 2-7: machine size and parallelism (Section 4.2), 1-node vs
      8-node, small database.
    - Figs 8-13: partitioning impact at fixed 8-node size (Section 4.3),
      1-way vs 8-way declustering, both database sizes.
    - Figs 14-17 (+ the 20K-startup variants described in the text):
      system overheads (Section 4.4), response-time speedup vs
      partitioning degree under different message/startup costs. *)

open Ddbm_model
open Experiment

let algo_label = Params.cc_algorithm_name

let sweep_thinks cache ~profile ~thinks ~config ~algorithm ~metric =
  List.map
    (fun think ->
      let r = run_config cache ~profile { config with algorithm; think } in
      { Figure.x = think; y = metric r })
    thinks

let ratio_sweep cache ~profile ~thinks ~config_num ~config_den ~algorithm
    ~metric ~combine =
  List.map
    (fun think ->
      let num =
        metric (run_config cache ~profile { config_num with algorithm; think })
      in
      let den =
        metric (run_config cache ~profile { config_den with algorithm; think })
      in
      { Figure.x = think; y = combine num den })
    thinks

let throughput (r : Sim_result.t) = r.Sim_result.throughput
let response (r : Sim_result.t) = r.Sim_result.mean_response
let abort_ratio (r : Sim_result.t) = r.Sim_result.abort_ratio
let disk_util (r : Sim_result.t) = r.Sim_result.proc_disk_util
let cpu_util (r : Sim_result.t) = r.Sim_result.proc_cpu_util

let one_node = { base_config with nodes = 1; degree = 1 }
let n_node n = { base_config with nodes = n; degree = n }
let eight_node = n_node 8

(* ---------------- Section 4.2: machine size and parallelism -------- *)

(* Figs 2/3/6/7: metric vs think time for the 1-node and 8-node systems. *)
let size_comparison cache ~profile ~thinks ~metric ~id ~title ~ylabel =
  let series =
    List.concat_map
      (fun (config, tag) ->
        List.map
          (fun algorithm ->
            {
              Figure.label = Printf.sprintf "%s/%s" (algo_label algorithm) tag;
              points =
                sweep_thinks cache ~profile ~thinks ~config ~algorithm ~metric;
            })
          all_algorithms)
      [ (one_node, "1n"); (eight_node, "8n") ]
  in
  { Figure.id; title; xlabel = "think"; ylabel; series }

let fig2 cache ~profile ~thinks =
  size_comparison cache ~profile ~thinks ~metric:throughput ~id:"fig2"
    ~title:"Throughput, 1-node vs 8-node (small DB)"
    ~ylabel:"throughput (tx/s)"

let fig3 cache ~profile ~thinks =
  size_comparison cache ~profile ~thinks ~metric:response ~id:"fig3"
    ~title:"Response time, 1-node vs 8-node (small DB)"
    ~ylabel:"response time (s)"

(* Figs 4/5 (and the 4-node variants discussed in the text): speedup of
   the n-node system over the 1-node system. *)
let size_speedup cache ~profile ~thinks ~n ~metric ~combine ~id ~title ~ylabel
    =
  let series =
    List.map
      (fun algorithm ->
        {
          Figure.label = algo_label algorithm;
          points =
            ratio_sweep cache ~profile ~thinks ~config_num:(n_node n)
              ~config_den:one_node ~algorithm ~metric ~combine;
        })
      all_algorithms
  in
  { Figure.id; title; xlabel = "think"; ylabel; series }

let safe_div a b = if Float.equal b 0. then Float.nan else a /. b

let fig4 cache ~profile ~thinks =
  size_speedup cache ~profile ~thinks ~n:8 ~metric:throughput
    ~combine:safe_div ~id:"fig4" ~title:"Throughput speedup, 8-node / 1-node"
    ~ylabel:"throughput speedup"

let fig5 cache ~profile ~thinks =
  size_speedup cache ~profile ~thinks ~n:8 ~metric:response
    ~combine:(fun r8 r1 -> safe_div r1 r8)
    ~id:"fig5" ~title:"Response time speedup, 8-node / 1-node"
    ~ylabel:"response time speedup"

let fig6 cache ~profile ~thinks =
  size_comparison cache ~profile ~thinks ~metric:disk_util ~id:"fig6"
    ~title:"Disk utilization, 1-node vs 8-node" ~ylabel:"disk utilization"

let fig7 cache ~profile ~thinks =
  size_comparison cache ~profile ~thinks ~metric:cpu_util ~id:"fig7"
    ~title:"CPU utilization, 1-node vs 8-node" ~ylabel:"CPU utilization"

(* 16-node configuration (the paper's footnote 7 reports that 16- and
   32-node runs showed similar trends). With 8 partitions per relation,
   each relation spans 8 of the 16 nodes. *)
let fig16n cache ~profile ~thinks =
  let sixteen = { base_config with nodes = 16; degree = 8 } in
  let series =
    List.map
      (fun algorithm ->
        {
          Figure.label = algo_label algorithm;
          points =
            ratio_sweep cache ~profile ~thinks ~config_num:sixteen
              ~config_den:one_node ~algorithm ~metric:throughput
              ~combine:safe_div;
        })
      all_algorithms
  in
  {
    Figure.id = "fig16n";
    title = "Throughput speedup, 16-node / 1-node (footnote 7 check)";
    xlabel = "think";
    ylabel = "throughput speedup";
    series;
  }

let fig4n cache ~profile ~thinks =
  size_speedup cache ~profile ~thinks ~n:4 ~metric:throughput
    ~combine:safe_div ~id:"fig4n"
    ~title:"Throughput speedup, 4-node / 1-node (Section 4.2 text)"
    ~ylabel:"throughput speedup"

let fig5n cache ~profile ~thinks =
  size_speedup cache ~profile ~thinks ~n:4 ~metric:response
    ~combine:(fun r4 r1 -> safe_div r1 r4)
    ~id:"fig5n"
    ~title:"Response time speedup, 4-node / 1-node (Section 4.2 text)"
    ~ylabel:"response time speedup"

(* ---------------- Section 4.3: partitioning impact ----------------- *)

let one_way = { base_config with nodes = 8; degree = 1 }
let eight_way = { base_config with nodes = 8; degree = 8 }

(* Figs 8/9: response-time speedup of 8-way over 1-way partitioning. *)
let partition_speedup cache ~profile ~thinks ~file_size ~id ~title =
  let series =
    List.map
      (fun algorithm ->
        {
          Figure.label = algo_label algorithm;
          points =
            ratio_sweep cache ~profile ~thinks
              ~config_num:{ eight_way with file_size }
              ~config_den:{ one_way with file_size }
              ~algorithm ~metric:response
              ~combine:(fun r8 r1 -> safe_div r1 r8);
        })
      all_algorithms
  in
  {
    Figure.id;
    title;
    xlabel = "think";
    ylabel = "response time speedup (8-way / 1-way)";
    series;
  }

let fig8 cache ~profile ~thinks =
  partition_speedup cache ~profile ~thinks ~file_size:1200 ~id:"fig8"
    ~title:"Response time improvement from 8-way partitioning (large DB)"

let fig9 cache ~profile ~thinks =
  partition_speedup cache ~profile ~thinks ~file_size:300 ~id:"fig9"
    ~title:"Response time improvement from 8-way partitioning (small DB)"

(* Figs 10/11: percentage response-time degradation relative to NO_DC. *)
let degradation cache ~profile ~thinks ~config ~id ~title =
  let contended =
    [ Params.Twopl; Params.Bto; Params.Wound_wait; Params.Opt ]
  in
  let series =
    List.map
      (fun algorithm ->
        {
          Figure.label = algo_label algorithm;
          points =
            List.map
              (fun think ->
                let r_alg =
                  response
                    (run_config cache ~profile { config with algorithm; think })
                in
                let r_nodc =
                  response
                    (run_config cache ~profile
                       { config with algorithm = Params.No_dc; think })
                in
                {
                  Figure.x = think;
                  y = 100. *. safe_div (r_alg -. r_nodc) r_nodc;
                })
              thinks;
        })
      contended
  in
  {
    Figure.id;
    title;
    xlabel = "think";
    ylabel = "% response time degradation vs NO_DC";
    series;
  }

let fig10 cache ~profile ~thinks =
  degradation cache ~profile ~thinks ~config:eight_way ~id:"fig10"
    ~title:"Degradation vs NO_DC, 8-way partitioning (small DB)"

let fig11 cache ~profile ~thinks =
  degradation cache ~profile ~thinks ~config:one_way ~id:"fig11"
    ~title:"Degradation vs NO_DC, 1-way partitioning (small DB)"

(* Figs 12/13: abort ratios. *)
let abort_ratios cache ~profile ~thinks ~config ~id ~title =
  let contended =
    [ Params.Twopl; Params.Bto; Params.Wound_wait; Params.Opt ]
  in
  let series =
    List.map
      (fun algorithm ->
        {
          Figure.label = algo_label algorithm;
          points =
            sweep_thinks cache ~profile ~thinks ~config ~algorithm
              ~metric:abort_ratio;
        })
      contended
  in
  {
    Figure.id;
    title;
    xlabel = "think";
    ylabel = "abort ratio (aborts per commit)";
    series;
  }

let fig12 cache ~profile ~thinks =
  abort_ratios cache ~profile ~thinks ~config:eight_way ~id:"fig12"
    ~title:"Abort ratio, 8-way partitioning (small DB)"

let fig13 cache ~profile ~thinks =
  abort_ratios cache ~profile ~thinks ~config:one_way ~id:"fig13"
    ~title:"Abort ratio, 1-way partitioning (small DB)"

(* ---------------- Section 4.4: system overheads -------------------- *)

(* Figs 14-17: response-time speedup (relative to 1-way partitioning) as a
   function of partitioning degree, at a fixed think time, under given
   startup/message costs. *)
let overhead_speedup cache ~profile ~think ~inst_per_startup ~inst_per_msg ~id
    ~title =
  let degrees = [ 1; 2; 4; 8 ] in
  let config degree =
    {
      base_config with
      nodes = 8;
      degree;
      think;
      inst_per_startup;
      inst_per_msg;
    }
  in
  let series =
    List.map
      (fun algorithm ->
        let base_response =
          response
            (run_config cache ~profile { (config 1) with algorithm })
        in
        {
          Figure.label = algo_label algorithm;
          points =
            List.map
              (fun degree ->
                let r =
                  response
                    (run_config cache ~profile { (config degree) with algorithm })
                in
                { Figure.x = float_of_int degree; y = safe_div base_response r })
              degrees;
        })
      all_algorithms
  in
  {
    Figure.id;
    title;
    xlabel = "partitioning degree";
    ylabel = "response time speedup vs 1-way";
    series;
  }

let fig14 cache ~profile ~thinks:_ =
  overhead_speedup cache ~profile ~think:0. ~inst_per_startup:0.
    ~inst_per_msg:0. ~id:"fig14"
    ~title:"Speedup vs degree, no overheads, think 0"

let fig15 cache ~profile ~thinks:_ =
  overhead_speedup cache ~profile ~think:8. ~inst_per_startup:0.
    ~inst_per_msg:0. ~id:"fig15"
    ~title:"Speedup vs degree, no overheads, think 8 s"

let fig16 cache ~profile ~thinks:_ =
  overhead_speedup cache ~profile ~think:0. ~inst_per_startup:0.
    ~inst_per_msg:4_000. ~id:"fig16"
    ~title:"Speedup vs degree, 4K-instruction messages, think 0"

let fig17 cache ~profile ~thinks:_ =
  overhead_speedup cache ~profile ~think:8. ~inst_per_startup:0.
    ~inst_per_msg:4_000. ~id:"fig17"
    ~title:"Speedup vs degree, 4K-instruction messages, think 8 s"

let fig16s cache ~profile ~thinks:_ =
  overhead_speedup cache ~profile ~think:0. ~inst_per_startup:20_000.
    ~inst_per_msg:0. ~id:"fig16s"
    ~title:"Speedup vs degree, 20K-instruction startup, think 0 (Sec 4.4 text)"

let fig17s cache ~profile ~thinks:_ =
  overhead_speedup cache ~profile ~think:8. ~inst_per_startup:20_000.
    ~inst_per_msg:0. ~id:"fig17s"
    ~title:"Speedup vs degree, 20K-instruction startup, think 8 s (Sec 4.4 text)"

(* ---------------- Ablations beyond the paper's figures ------------- *)

(* Sequential (RPC-style, Non-Stop SQL) vs parallel (Gamma-style) cohort
   execution, motivated by the paper's introduction. *)
let abl_exec cache ~profile ~thinks =
  let series =
    List.concat_map
      (fun (exec_pattern, tag) ->
        List.map
          (fun algorithm ->
            {
              Figure.label = Printf.sprintf "%s/%s" (algo_label algorithm) tag;
              points =
                sweep_thinks cache ~profile ~thinks
                  ~config:{ eight_way with exec_pattern }
                  ~algorithm ~metric:response;
            })
          [ Params.No_dc; Params.Twopl; Params.Opt ])
      [ (Params.Parallel, "par"); (Params.Sequential, "seq") ]
  in
  {
    Figure.id = "abl-exec";
    title = "Sequential (RPC) vs parallel cohort execution, 8-way";
    xlabel = "think";
    ylabel = "response time (s)";
    series;
  }

(* Sensitivity of 2PL to the Snoop's DetectionInterval (footnote 2 notes
   that such intervals were critical factors in related studies). *)
let abl_snoop cache ~profile ~thinks:_ =
  let intervals = [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let series_of metric label =
    {
      Figure.label;
      points =
        List.map
          (fun detection_interval ->
            let r =
              run_config cache ~profile
                {
                  eight_way with
                  algorithm = Params.Twopl;
                  think = 8.;
                  detection_interval;
                }
            in
            { Figure.x = detection_interval; y = metric r })
          intervals;
    }
  in
  {
    Figure.id = "abl-snoop";
    title = "2PL sensitivity to the Snoop detection interval (think 8 s)";
    xlabel = "detection interval (s)";
    ylabel = "response time (s) / abort ratio";
    series =
      [ series_of response "response"; series_of abort_ratio "abort-ratio" ];
  }

(* Transaction size (the paper also ran 32-read transactions, footnote 9). *)
let abl_txsize cache ~profile ~thinks:_ =
  let sizes = [ 4; 8; 16 ] in
  let series =
    List.map
      (fun algorithm ->
        {
          Figure.label = algo_label algorithm;
          points =
            List.map
              (fun pages_per_partition ->
                let r =
                  run_config cache ~profile
                    {
                      eight_way with
                      algorithm;
                      think = 8.;
                      pages_per_partition;
                    }
                in
                {
                  Figure.x = float_of_int (8 * pages_per_partition);
                  y = abort_ratio r;
                })
              sizes;
        })
      [ Params.Twopl; Params.Bto; Params.Wound_wait; Params.Opt ]
  in
  {
    Figure.id = "abl-txsize";
    title = "Contention vs transaction size (total reads), think 8 s";
    xlabel = "reads per transaction";
    ylabel = "abort ratio";
    series;
  }

(* Write probability: from read-only to update-heavy workloads. *)
let abl_writeprob cache ~profile ~thinks:_ =
  let probs = [ 0.0; 0.1; 0.25; 0.5 ] in
  let series =
    List.map
      (fun algorithm ->
        {
          Figure.label = algo_label algorithm;
          points =
            List.map
              (fun write_prob ->
                let r =
                  run_config cache ~profile
                    { eight_way with algorithm; think = 8.; write_prob }
                in
                { Figure.x = write_prob; y = throughput r })
              probs;
        })
      all_algorithms
  in
  {
    Figure.id = "abl-writeprob";
    title = "Throughput vs write probability, think 8 s";
    xlabel = "write probability";
    ylabel = "throughput (tx/s)";
    series;
  }

(* Multiprogramming level: the classic thrashing curve as the terminal
   population grows at zero think time. *)
let abl_mpl cache ~profile ~thinks:_ =
  let populations = [ 16; 32; 64; 128; 192 ] in
  let series =
    List.map
      (fun algorithm ->
        {
          Figure.label = algo_label algorithm;
          points =
            List.map
              (fun terminals ->
                let r =
                  run_config cache ~profile
                    { eight_way with algorithm; think = 0.; terminals }
                in
                { Figure.x = float_of_int terminals; y = throughput r })
              populations;
        })
      all_algorithms
  in
  {
    Figure.id = "abl-mpl";
    title = "Throughput vs terminal population (think 0): thrashing";
    xlabel = "terminals";
    ylabel = "throughput (tx/s)";
    series;
  }

(* Tail latency vs terminal population: the paper reports only means, so
   its blocking-vs-restart verdict is a mean-response verdict. With the
   deterministic histograms the tails are visible: do 2PL (blocking
   piles up lock queues) and OPT (restarts stretch a minority of
   transactions over many attempts) cross at the same population for
   p99 as for the mean? *)
let tail_mpl cache ~profile ~thinks:_ =
  let populations = [ 16; 32; 64; 128; 192 ] in
  let p99 (r : Sim_result.t) = r.Sim_result.response_p99 in
  let series =
    List.concat_map
      (fun (metric, tag) ->
        List.map
          (fun algorithm ->
            {
              Figure.label = Printf.sprintf "%s/%s" (algo_label algorithm) tag;
              points =
                List.map
                  (fun terminals ->
                    let r =
                      run_config cache ~profile
                        { eight_way with algorithm; think = 0.; terminals }
                    in
                    { Figure.x = float_of_int terminals; y = metric r })
                  populations;
            })
          [ Params.Twopl; Params.Opt ])
      [ (response, "mean"); (p99, "p99") ]
  in
  {
    Figure.id = "tail-mpl";
    title = "Tail latency vs terminal population (think 0): 2PL vs OPT";
    xlabel = "terminals";
    ylabel = "response time (s), mean and p99";
    series;
  }

(* Replicated data (the [Care88] substrate the paper's model includes but
   does not exercise): reproduce footnote 13 — with several copies per
   item and expensive messages, plain 2PL's write-all-at-access messages
   erode its advantage until OPT catches it, while O2PL (write locks on
   remote copies deferred to the commit protocol) restores 2PL's
   dominance. x axis: per-message CPU cost. *)
let ext_replication cache ~profile ~thinks:_ =
  let msg_costs = [ 0.; 1_000.; 2_000.; 4_000.; 8_000. ] in
  let series =
    List.map
      (fun algorithm ->
        {
          Figure.label = algo_label algorithm;
          points =
            List.map
              (fun inst_per_msg ->
                let r =
                  run_config cache ~profile
                    {
                      eight_way with
                      algorithm;
                      think = 8.;
                      replication = 3;
                      inst_per_msg;
                    }
                in
                { Figure.x = inst_per_msg; y = throughput r })
              msg_costs;
        })
      [ Params.Twopl; Params.O2pl; Params.Opt; Params.No_dc ]
  in
  {
    Figure.id = "ext-repl";
    title =
      "Replicated data (3 copies): throughput vs message cost (footnote 13)";
    xlabel = "instructions per message";
    ylabel = "throughput (tx/s)";
    series;
  }

(* Logging model: verify the paper's footnote-5 assumption that forcing
   log pages prior to commit is not the bottleneck. *)
let abl_logging cache ~profile ~thinks =
  let series =
    List.concat_map
      (fun (model_logging, tag) ->
        List.map
          (fun algorithm ->
            {
              Figure.label = Printf.sprintf "%s/%s" (algo_label algorithm) tag;
              points =
                List.map
                  (fun think ->
                    let params =
                      params_of_config ~profile
                        { eight_way with algorithm; think }
                    in
                    let params =
                      {
                        params with
                        Params.resources =
                          {
                            params.Params.resources with
                            Params.model_logging;
                          };
                      }
                    in
                    { Figure.x = think; y = throughput (run cache params) })
                  thinks;
            })
          [ Params.No_dc; Params.Twopl ])
      [ (false, "no-log"); (true, "log") ]
  in
  {
    Figure.id = "abl-logging";
    title = "Forced log writes at prepare (footnote 5 check), 8-way";
    xlabel = "think";
    ylabel = "throughput (tx/s)";
    series;
  }

(* Extension algorithms: wait-die (the other [Rose78] policy) and 2PL
   with deferred write locks ([Care89], footnote 13) against the paper's
   lock-based schemes, on the Figure 2 configuration. *)
let ext_algos cache ~profile ~thinks =
  let algorithms =
    [
      Params.Twopl; Params.Twopl_defer; Params.Wound_wait; Params.Wait_die;
      Params.Opt;
    ]
  in
  let series =
    List.concat_map
      (fun (metric, tag) ->
        List.map
          (fun algorithm ->
            {
              Figure.label = Printf.sprintf "%s/%s" (algo_label algorithm) tag;
              points =
                sweep_thinks cache ~profile ~thinks ~config:eight_way
                  ~algorithm ~metric;
            })
          algorithms)
      [ (throughput, "tput") ]
  in
  let series =
    series
    @ List.map
        (fun algorithm ->
          {
            Figure.label = Printf.sprintf "%s/abort" (algo_label algorithm);
            points =
              sweep_thinks cache ~profile ~thinks ~config:eight_way ~algorithm
                ~metric:abort_ratio;
          })
        algorithms
  in
  {
    Figure.id = "ext-algos";
    title = "Extensions: wait-die and deferred-write-lock 2PL, 8-way";
    xlabel = "think";
    ylabel = "throughput (tx/s) / abort ratio";
    series;
  }

(* Restart policy: rerun the same access plan (the paper's model) vs
   drawing a fresh access set on restart ("fake restarts"). *)
let abl_restart cache ~profile ~thinks =
  let series =
    List.concat_map
      (fun (fresh, tag) ->
        List.map
          (fun algorithm ->
            {
              Figure.label = Printf.sprintf "%s/%s" (algo_label algorithm) tag;
              points =
                List.map
                  (fun think ->
                    let params =
                      params_of_config ~profile
                        { eight_way with algorithm; think }
                    in
                    let params =
                      {
                        params with
                        Params.run =
                          {
                            params.Params.run with
                            Params.fresh_restart_plan = fresh;
                          };
                      }
                    in
                    { Figure.x = think; y = response (run cache params) })
                  thinks;
            })
          [ Params.Twopl; Params.Opt ])
      [ (false, "same-plan"); (true, "fresh-plan") ]
  in
  {
    Figure.id = "abl-restart";
    title = "Restart policy: rerun same plan vs fresh access set, 8-way";
    xlabel = "think";
    ylabel = "response time (s)";
    series;
  }

(* Open-loop saturation: drive the 8-way machine with constant-QPS
   Poisson arrivals through and past its capacity. The paper's closed
   loop self-limits (128 terminals hold at most 128 transactions in
   flight); the open loop exposes the knee instead — throughput flattens
   at machine capacity while p99 climbs and the admission queue starts
   shedding. 2PL (blocking) vs OPT (restarts), as in the tail figures. *)
let saturation cache ~profile ~thinks:_ =
  let rates = [ 2.; 5.; 10.; 20.; 40.; 80. ] in
  let p99 (r : Sim_result.t) = r.Sim_result.response_p99 in
  let run_rate algorithm qps =
    let params =
      params_of_config ~profile { eight_way with algorithm; think = 0. }
    in
    let params =
      {
        params with
        Params.arrivals =
          { Arrival.zero with Arrival.process = Arrival.Qps qps; mpl = 64 };
      }
    in
    run cache params
  in
  let series =
    List.concat_map
      (fun (metric, tag) ->
        List.map
          (fun algorithm ->
            {
              Figure.label = Printf.sprintf "%s/%s" (algo_label algorithm) tag;
              points =
                List.map
                  (fun qps ->
                    { Figure.x = qps; y = metric (run_rate algorithm qps) })
                  rates;
            })
          [ Params.Twopl; Params.Opt ])
      [ (throughput, "tput"); (p99, "p99") ]
  in
  {
    Figure.id = "saturation";
    title = "Open-loop saturation: throughput and p99 vs offered QPS, 8-way";
    xlabel = "offered arrivals (tx/s)";
    ylabel = "throughput (tx/s) / p99 response (s)";
    series;
  }

(* ---------------- Registry ----------------------------------------- *)

type generator =
  Experiment.cache -> profile:Experiment.profile -> thinks:float list ->
  Figure.t

let all : (string * generator) list =
  [
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig4n", fig4n);
    ("fig5n", fig5n);
    ("fig16n", fig16n);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("fig17", fig17);
    ("fig16s", fig16s);
    ("fig17s", fig17s);
    ("abl-exec", abl_exec);
    ("abl-snoop", abl_snoop);
    ("abl-txsize", abl_txsize);
    ("abl-writeprob", abl_writeprob);
    ("abl-mpl", abl_mpl);
    ("tail-mpl", tail_mpl);
    ("saturation", saturation);
    ("abl-restart", abl_restart);
    ("ext-algos", ext_algos);
    ("ext-repl", ext_replication);
    ("abl-logging", abl_logging);
  ]

let find id = List.assoc_opt id all

let prefill_cache cache pool ~profile ~thinks gens =
  let missing =
    Experiment.collect_misses cache (fun cache ->
        List.iter
          (fun (_, gen) -> ignore (gen cache ~profile ~thinks : Figure.t))
          gens)
  in
  Experiment.prefill cache pool missing;
  List.length missing
