(** Trace exporters: JSONL and Chrome trace_event sinks for the typed
    event stream.

    JSON is emitted by hand (one small, dependency-free printer) in two
    shapes:

    - {!jsonl_sink}: one JSON object per line per event — the complete
      stream, including per-interval {!Ddbm_model.Event.Sample} rows
      with nested per-node utilizations;
    - {!Chrome}: the Chrome trace_event format (a JSON document with a
      ["traceEvents"] array), loadable in Perfetto ({:https://ui.perfetto.dev})
      or [chrome://tracing]. Process 0 is the host node and process
      [i+1] is processing node [i]; thread ids are transaction ids, so
      each transaction reads as one horizontal track. Attempts, lock
      waits, disk accesses and CPU slices become duration slices;
      wounds, Snoop rounds, restart waits, node crash/recovery and
      orphaned-cohort cleanups become instants; sampler rows become
      counter tracks. Raw network messages are deliberately left out of
      the Chrome view (they dominate event volume); use the JSONL
      exporter to see them. *)

open Ddbm_model

(** A sink writing one JSON object per event to [out], one per line. *)
val jsonl_sink : (string -> unit) -> Tracer.sink

module Chrome : sig
  type t

  (** [create ?num_nodes out] starts a Chrome trace document on [out].
      When [num_nodes] is given, process-name metadata rows are emitted
      up front so Perfetto labels the host and node tracks. *)
  val create : ?num_nodes:int -> (string -> unit) -> t

  (** The sink to attach with [Tracer.attach]. *)
  val sink : t -> Tracer.sink

  (** Terminate the JSON document (idempotent). *)
  val close : t -> unit
end
