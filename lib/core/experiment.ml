(** Experiment driver: parameter construction helpers, a result cache so
    that figures sharing configurations (e.g. Figures 9-13) reuse runs,
    and simulation-length profiles. *)

open Ddbm_model

(** How long to simulate. Quick keeps the full figure suite in tens of
    seconds of wall time; Standard is the default for reported numbers;
    Full tightens confidence intervals further. *)
type profile = Quick | Standard | Full

let profile_of_string = function
  | "quick" -> Some Quick
  | "standard" -> Some Standard
  | "full" -> Some Full
  | _ -> None

let profile_name = function
  | Quick -> "quick"
  | Standard -> "standard"
  | Full -> "full"

(** Warm-up and measurement windows scale with the think time (at large
    think times transactions are rare, so a fixed window would starve the
    estimators) and inversely with machine size: a saturated 1-node
    system has response times around 100 s, so its windows must be about
    8x longer than an 8-node system's to reach and observe steady state
    (Little's law sanity: X = N / (R + Z) holds only at steady state). *)
let run_params profile ~think ~nodes ~seed =
  let scale = 8. /. float_of_int (Int.max 1 nodes) in
  let warmup, measure =
    match profile with
    | Quick -> (20. +. think, 120. +. (4. *. think))
    | Standard -> (50. +. think, 400. +. (8. *. think))
    | Full -> (100. +. (2. *. think), 1200. +. (16. *. think))
  in
  {
    Params.seed;
    warmup = warmup *. scale;
    measure = measure *. scale;
    restart_delay_floor = 0.5;
    fresh_restart_plan = false;
  }

(** Configuration point: the knobs the paper's experiments turn, plus the
    ablation knobs its text mentions (transaction size, detection
    interval, terminal population, write probability). *)
type config = {
  algorithm : Params.cc_algorithm;
  nodes : int;
  degree : int;
  file_size : int;
  think : float;
  inst_per_startup : float;
  inst_per_msg : float;
  exec_pattern : Params.exec_pattern;
  terminals : int;
  pages_per_partition : int;
  replication : int;
  write_prob : float;
  detection_interval : float;
}

let base_config =
  {
    algorithm = Params.Twopl;
    nodes = 8;
    degree = 8;
    file_size = 300;
    think = 0.;
    inst_per_startup = 2_000.;
    inst_per_msg = 1_000.;
    exec_pattern = Params.Parallel;
    terminals = 128;
    pages_per_partition = 8;
    replication = 1;
    write_prob = 0.25;
    detection_interval = 1.0;
  }

let params_of_config ?(profile = Quick) ?(seed = 1) (c : config) =
  let d = Params.default in
  {
    Params.database =
      {
        d.Params.database with
        Params.num_proc_nodes = c.nodes;
        partitioning_degree = c.degree;
        file_size = c.file_size;
        replication = c.replication;
      };
    workload =
      {
        d.Params.workload with
        Params.think_time = c.think;
        exec_pattern = c.exec_pattern;
        num_terminals = c.terminals;
        pages_per_partition = c.pages_per_partition;
        write_prob = c.write_prob;
      };
    resources =
      {
        d.Params.resources with
        Params.inst_per_startup = c.inst_per_startup;
        inst_per_msg = c.inst_per_msg;
      };
    cc =
      {
        Params.algorithm = c.algorithm;
        detection_interval = c.detection_interval;
      };
    run = run_params profile ~think:c.think ~nodes:c.nodes ~seed;
    durability = Params.default_durability;
    faults = Fault_plan.zero;
    arrivals = Arrival.zero;
  }

(** Memoized runner: figures that share configurations share runs. *)
type cache = {
  table : (Params.t, Sim_result.t) Hashtbl.t;
  mutable runs : int;
  mutable hits : int;
  verbose : bool;
  mutable collecting : Params.t list option;
      (** when [Some acc], {!run} records cache misses (newest first)
          and returns placeholders instead of simulating *)
}

let create_cache ?(verbose = false) () =
  { table = Hashtbl.create 64; runs = 0; hits = 0; verbose; collecting = None }

let run cache params =
  match Hashtbl.find_opt cache.table params with
  | Some r ->
      if cache.collecting = None then cache.hits <- cache.hits + 1;
      r
  | None -> (
      match cache.collecting with
      | Some acc ->
          cache.collecting <- Some (params :: acc);
          Sim_result.placeholder params
      | None ->
          cache.runs <- cache.runs + 1;
          if cache.verbose then
            Printf.eprintf
              "  [run %3d] %s nodes=%d degree=%d think=%g fs=%d\n%!" cache.runs
              (Params.cc_algorithm_name params.Params.cc.Params.algorithm)
              params.Params.database.Params.num_proc_nodes
              params.Params.database.Params.partitioning_degree
              params.Params.workload.Params.think_time
              params.Params.database.Params.file_size;
          let r = Machine.run params in
          Hashtbl.replace cache.table params r;
          r)

(* Parameter points [f] would simulate that are not yet cached, deduped,
   in first-request order. [f]'s output is meaningless during the dry
   pass (it sees placeholder results) and is discarded. *)
let collect_misses cache f =
  match cache.collecting with
  | Some _ -> invalid_arg "Experiment.collect_misses: already collecting"
  | None ->
      cache.collecting <- Some [];
      let restore () =
        let acc =
          match cache.collecting with Some acc -> acc | None -> []
        in
        cache.collecting <- None;
        acc
      in
      let acc =
        match f cache with
        | () -> restore ()
        | exception e ->
            ignore (restore () : Params.t list);
            raise e
      in
      let seen = Hashtbl.create 64 in
      List.fold_left
        (fun uniq p ->
          if Hashtbl.mem seen p then uniq
          else begin
            Hashtbl.replace seen p ();
            p :: uniq
          end)
        [] acc
(* acc is newest-first, so the fold returns first-request order *)

let prefill cache pool params_list =
  let fresh =
    List.filter (fun p -> not (Hashtbl.mem cache.table p)) params_list
  in
  let results = Par.Pool.map pool Machine.run fresh in
  List.iter2
    (fun p (r : Sim_result.t) ->
      cache.runs <- cache.runs + 1;
      Hashtbl.replace cache.table p r)
    fresh results

let run_config cache ?profile ?seed config =
  run cache (params_of_config ?profile ?seed config)

(** Mean and across-replicate 95% CI of the key metrics over independent
    simulation runs (different seeds). Replicates are independent, so the
    plain normal-approximation interval applies. *)
type summary = {
  replicates : int;
  mean_throughput : float;
  ci_throughput : float;
  mean_response : float;
  ci_response : float;
  mean_abort_ratio : float;
  ci_abort_ratio : float;
}

let replicate cache ?profile ?(seeds = [ 1; 2; 3; 4; 5 ]) config =
  let tput = Desim.Stats.Tally.create () in
  let resp = Desim.Stats.Tally.create () in
  let ratio = Desim.Stats.Tally.create () in
  List.iter
    (fun seed ->
      let r = run cache (params_of_config ?profile ~seed config) in
      Desim.Stats.Tally.add tput r.Sim_result.throughput;
      Desim.Stats.Tally.add resp r.Sim_result.mean_response;
      Desim.Stats.Tally.add ratio r.Sim_result.abort_ratio)
    seeds;
  {
    replicates = List.length seeds;
    mean_throughput = Desim.Stats.Tally.mean tput;
    ci_throughput = Desim.Stats.Tally.ci95 tput;
    mean_response = Desim.Stats.Tally.mean resp;
    ci_response = Desim.Stats.Tally.ci95 resp;
    mean_abort_ratio = Desim.Stats.Tally.mean ratio;
    ci_abort_ratio = Desim.Stats.Tally.ci95 ratio;
  }

(** The five curves of every figure. *)
let all_algorithms =
  [ Params.No_dc; Params.Twopl; Params.Bto; Params.Wound_wait; Params.Opt ]

(** Think times swept in the load-dependent figures, spanning the paper's
    0-120 s axis. *)
let default_think_times = [ 0.; 2.; 4.; 8.; 12.; 24.; 48.; 120. ]
