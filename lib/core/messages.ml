(** Coordinator/cohort message protocol.

    One coordinator mailbox and one mailbox per cohort exist per
    transaction attempt, so messages can never leak between attempts. The
    only cross-attempt traffic, {!coord_msg.Abort_request}, carries the
    target attempt and is dropped at routing time when stale. *)

open Desim
open Ddbm_model

(** Coordinator -> cohort. *)
type cohort_msg =
  | Do_prepare  (** start phase one; [Txn.commit_ts] is already assigned *)
  | Do_commit
  | Do_abort

(** Cohort (or CC manager) -> coordinator. *)
type coord_msg =
  | Work_done of int  (** cohort at node finished its reads and writes *)
  | Cohort_aborted of int * Txn.abort_reason
      (** cohort self-aborted (e.g. BTO rejection) *)
  | Vote of int * bool
  | Done_ack of int  (** final acknowledgement of commit or abort *)
  | Abort_request of Txn.t * Txn.abort_reason
      (** a CC manager somewhere demands this transaction's abort *)

(** Work-phase resource usage of one cohort, accumulated as wall-clock
    deltas around its CC, disk, and CPU operations; feeds the
    response-time decomposition ({!Decomp}). *)
type cohort_usage = {
  mutable u_blocked : float;  (** CC requests: lock waits + processing *)
  mutable u_disk : float;  (** disk reads: queueing + service *)
  mutable u_cpu : float;  (** page processing under processor sharing *)
}

(** Per-attempt runtime shared between the coordinator and the message
    routing layer. *)
type attempt_runtime = {
  txn : Txn.t;
  coord_mb : coord_msg Mailbox.t;
  cohort_mbs : (int, cohort_msg Mailbox.t) Hashtbl.t;  (** node -> mailbox *)
  usage : (int, cohort_usage) Hashtbl.t;  (** node -> work-phase usage *)
  mutable last_work_node : int;
      (** node whose Work_done the coordinator processed last (-1 until
          the first arrives); the work-phase critical path under parallel
          execution *)
}

let make_runtime txn =
  {
    txn;
    coord_mb = Mailbox.create ();
    cohort_mbs = Hashtbl.create 8;
    usage = Hashtbl.create 8;
    last_work_node = -1;
  }

(** The usage record of [node], created on first access. *)
let usage rt node =
  match Hashtbl.find_opt rt.usage node with
  | Some u -> u
  | None ->
      let u = { u_blocked = 0.; u_disk = 0.; u_cpu = 0. } in
      Hashtbl.replace rt.usage node u;
      u
