(** Assembly of the distributed database machine and the transaction
    execution protocol (Sections 2.1 and 3 of the paper).

    One host node (terminals + coordinators) and [num_proc_nodes]
    processing nodes (data + cohorts). A transaction's coordinator runs in
    its terminal's process at the host; cohorts are spawned at data nodes
    by "load cohort" messages (paying process-startup CPU), execute their
    page accesses, and participate in a centralized two-phase commit:

      load -> work -> Work_done -> Do_prepare -> Vote -> decision -> ack

    Aborts can be triggered by a cohort's own CC manager (BTO rejection),
    by a remote CC manager or the Snoop detector (wound, deadlock victim;
    routed as an Abort_request message to the coordinator), or by a
    certification "no" vote. The coordinator then broadcasts Do_abort,
    collects one acknowledgement per loaded cohort, waits one mean
    response time, and reruns the same access plan. *)

open Desim
open Ddbm_model
open Ids

(* Fault runtime, installed only when the fault plan is active
   ([Fault_plan.active]). A zero plan leaves [t.faults = None]: no
   timers, no judged messages, no extra RNG draws — the machine is
   bit-for-bit identical to a fault-free build. *)
type fault_rt = {
  plan : Fault_plan.t;
  link : Faults.Link.t;  (** per-message loss/dup/delay judge *)
  node_state : Faults.Crashable.t array;
  host_state : Faults.Crashable.t;
  crash_rngs : Rng.t array;  (** per proc node, rate-driven crashes *)
  decisions : (int * int, bool) Hashtbl.t;
      (** 2PC decision log, (tid, attempt) -> commit; written before any
          phase-two message is sent and kept for the whole run so the
          termination protocol can answer late inquiries *)
  mutable host_down_until : float;
      (** latest scheduled host recovery; gates terminal admission *)
  mutable timeouts : int;
  mutable retries : int;
  mutable msgs_dropped : int;
  mutable msgs_duplicated : int;
  mutable node_crashes : int;
  mutable orphaned : int;
  (* availability accounting: windowed downtime per node (reset with the
     observation windows) plus an unwindowed total feeding the in-doubt
     overdue grace *)
  node_down_since : float option array;
  mutable host_down_since : float option;
  node_downtime : float array;
  mutable host_downtime : float;
  mutable total_downtime : float;
}

type t = {
  eng : Engine.t;
  params : Params.t;
  clock : Timestamp.Clock.t;
  host : Node.t;
  procs : Node.t array;
  net : Net.t;
  metrics : Metrics.t;
  catalog : Catalog.t;
  workload : Workload.t;
  live : (int, Messages.attempt_runtime) Hashtbl.t;
  think_rng : Rng.t;
  mutable next_tid : int;
  mutable faults : fault_rt option;
  mutable snoop : Ddbm_cc.Snoop.t option;
  mutable audit : Audit.t option;
  mutable trace : Trace.t option;
  mutable events : Tracer.t option;  (** typed lifecycle events *)
}

let tracef t ~tag build = Option.iter (fun tr -> Trace.emitf tr ~tag build) t.trace

(* Typed event emission: zero cost unless a tracer is attached — the
   event value is only constructed when [t.events] is [Some _]. *)
let emit t make =
  match t.events with
  | None -> ()
  | Some tr -> Tracer.emit tr ~time:(Engine.now t.eng) (make ())

type attempt_outcome = Committed of Decomp.t | Aborted of Txn.abort_reason

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)

let request_abort t ~from_node (txn : Txn.t) reason =
  (* Wounds (and any other abort demand) are ignored once the transaction
     has entered the second phase of its commit protocol. The doomed flag
     is set eagerly to suppress duplicate victimizations; the coordinator
     still learns of the abort only when the message arrives. *)
  if (not txn.Txn.doomed) && not (Txn.in_second_phase txn) then begin
    txn.Txn.doomed <- true;
    tracef t ~tag:"abort-request" (fun () ->
        Format.asprintf "%a from node %d: %s" Txn.pp txn from_node
          (Txn.abort_reason_name reason));
    emit t (fun () ->
        Event.Wound
          {
            tid = txn.Txn.tid;
            attempt = txn.Txn.attempt;
            from_node;
            reason;
          });
    Net.send_async t.net ~src:(Proc from_node) ~dst:Host (fun () ->
        match Hashtbl.find_opt t.live txn.Txn.tid with
        | Some rt when Txn.same_attempt rt.Messages.txn txn ->
            Mailbox.send rt.Messages.coord_mb
              (Messages.Abort_request (txn, reason))
        | Some _ | None -> ())
  end

let create (params : Params.t) =
  (match Params.validate params with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Machine.create: " ^ msg));
  (* The chaos registry is process-global; overwrite it wholesale from
     the plan so no state leaks between runs. *)
  (match Ddbm_cc.Fault.apply params.Params.faults.Fault_plan.chaos with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Machine.create: " ^ msg));
  let eng = Engine.create () in
  let rng = Rng.create params.Params.run.Params.seed in
  let resources = params.Params.resources in
  let host =
    Node.create eng (Rng.split rng) ~node_ref:Host
      ~mips:resources.Params.host_mips ~resources
  in
  let procs =
    Array.init params.Params.database.Params.num_proc_nodes (fun i ->
        Node.create eng (Rng.split rng) ~node_ref:(Proc i)
          ~mips:resources.Params.node_mips ~resources)
  in
  let cpu_of = function
    | Host -> host.Node.cpu
    | Proc i -> procs.(i).Node.cpu
  in
  let net = Net.create ~eng ~inst_per_msg:resources.Params.inst_per_msg ~cpu_of () in
  let catalog = Catalog.create params.Params.database in
  let workload = Workload.create params catalog (Rng.split rng) in
  let t =
    {
      eng;
      params;
      clock = Timestamp.Clock.create ();
      host;
      procs;
      net;
      metrics =
        Metrics.create eng
          ~restart_delay_floor:params.Params.run.Params.restart_delay_floor;
      catalog;
      workload;
      live = Hashtbl.create 256;
      think_rng = Rng.split rng;
      next_tid = 0;
      faults = None;
      snoop = None;
      audit = None;
      trace = None;
      events = None;
    }
  in
  let algorithm = params.Params.cc.Params.algorithm in
  Array.iteri
    (fun i node ->
      let charge_cc_request =
        let cost = resources.Params.inst_per_cc_req in
        if cost <= 0. then fun () -> ()
        else fun () -> Cpu.consume node.Node.cpu ~instructions:cost
      in
      let hooks =
        {
          Cc_intf.eng;
          clock = t.clock;
          charge_cc_request;
          request_abort = (fun txn reason -> request_abort t ~from_node:i txn reason);
        }
      in
      Node.install_cc node (Ddbm_cc.Registry.make algorithm hooks))
    procs;
  if Ddbm_cc.Registry.needs_snoop algorithm then
    t.snoop <-
      Some
        (Ddbm_cc.Snoop.create eng ~net
           ~num_nodes:(Array.length procs)
           ~detection_interval:params.Params.cc.Params.detection_interval
           ~edges_of:(fun i -> (Node.cc procs.(i)).Cc_intf.cc_edges ())
           ~request_abort:(fun ~from_node txn reason ->
             request_abort t ~from_node txn reason));
  if Fault_plan.active params.Params.faults then begin
    let plan = params.Params.faults in
    (* Dedicated fault RNG: the workload/think/node streams above are
       untouched, so two runs differing only in the fault plan share the
       same offered load (common random numbers). *)
    let frng = Rng.create plan.Fault_plan.fault_seed in
    let link_rng = Rng.split frng in
    let n = Array.length procs in
    let f =
      {
        plan;
        link =
          Faults.Link.create link_rng ~loss:plan.Fault_plan.msg_loss
            ~dup:plan.Fault_plan.msg_dup ~delay:plan.Fault_plan.msg_delay;
        node_state = Array.init n (fun _ -> Faults.Crashable.create ());
        host_state = Faults.Crashable.create ();
        crash_rngs = Array.init n (fun _ -> Rng.split frng);
        decisions = Hashtbl.create 256;
        host_down_until = 0.;
        timeouts = 0;
        retries = 0;
        msgs_dropped = 0;
        msgs_duplicated = 0;
        node_crashes = 0;
        orphaned = 0;
        node_down_since = Array.make n None;
        host_down_since = None;
        node_downtime = Array.make n 0.;
        host_downtime = 0.;
        total_downtime = 0.;
      }
    in
    t.faults <- Some f;
    Net.set_judge t.net
      (Some
         (fun ~src ~dst ->
           let down = function
             | Host -> not (Faults.Crashable.up f.host_state)
             | Proc i -> not (Faults.Crashable.up f.node_state.(i))
           in
           if down src || down dst then begin
             f.msgs_dropped <- f.msgs_dropped + 1;
             emit t (fun () -> Event.Msg_dropped { src; dst });
             []
           end
           else
             match Faults.Link.judge f.link with
             | [] ->
                 f.msgs_dropped <- f.msgs_dropped + 1;
                 emit t (fun () -> Event.Msg_dropped { src; dst });
                 []
             | [ _ ] as verdict -> verdict
             | verdict ->
                 f.msgs_duplicated <- f.msgs_duplicated + 1;
                 verdict))
  end;
  t

(* ------------------------------------------------------------------ *)
(* Crashes and recoveries                                              *)

(* A decision in the log means phase two has begun: the attempt's
   outcome is durable and survives any crash. *)
let decision_of f (txn : Txn.t) =
  Hashtbl.find_opt f.decisions (txn.Txn.tid, txn.Txn.attempt)

let log_decision t (txn : Txn.t) commit =
  match t.faults with
  | None -> ()
  | Some f -> Hashtbl.replace f.decisions (txn.Txn.tid, txn.Txn.attempt) commit

let live_sorted t =
  Hashtbl.fold (fun tid rt acc -> (tid, rt) :: acc) t.live []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let recover_node t f i =
  if not (Faults.Crashable.up f.node_state.(i)) then begin
    Faults.Crashable.recover f.node_state.(i);
    (match f.node_down_since.(i) with
    | Some since ->
        let d = Engine.now t.eng -. since in
        f.node_downtime.(i) <- f.node_downtime.(i) +. d;
        f.total_downtime <- f.total_downtime +. d;
        f.node_down_since.(i) <- None
    | None -> ());
    emit t (fun () -> Event.Node_recovered { node = Proc i })
  end

(* A processing-node crash loses the volatile state of every resident
   cohort that has not yet voted yes: its locks/workspace are torn down
   (out-of-band [cc_abort]) and the whole attempt is doomed. Prepared
   (yes-voted) cohorts survive — their state is durable by the vote rule
   — and are resolved by the 2PC termination protocol. *)
let crash_node t f i ~duration =
  if Faults.Crashable.up f.node_state.(i) then begin
    Faults.Crashable.crash f.node_state.(i);
    f.node_crashes <- f.node_crashes + 1;
    f.node_down_since.(i) <- Some (Engine.now t.eng);
    emit t (fun () -> Event.Node_crashed { node = Proc i });
    List.iter
      (fun (_, (rt : Messages.attempt_runtime)) ->
        let txn = rt.Messages.txn in
        if
          Hashtbl.mem rt.Messages.cohort_mbs i
          && (not (Hashtbl.mem rt.Messages.voted_nodes i))
          && decision_of f txn = None
        then begin
          txn.Txn.doomed <- true;
          if rt.Messages.doom_reason = None then
            rt.Messages.doom_reason <- Some Txn.Crashed;
          (Node.cc t.procs.(i)).Cc_intf.cc_abort txn;
          f.orphaned <- f.orphaned + 1;
          emit t (fun () ->
              Event.Txn_orphaned
                { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = i })
        end)
      (live_sorted t);
    ignore
      (Engine.schedule_after t.eng ~delay:duration (fun () ->
           recover_node t f i)
        : Engine.handle)
  end

let recover_host t f =
  if not (Faults.Crashable.up f.host_state) then begin
    Faults.Crashable.recover f.host_state;
    (match f.host_down_since with
    | Some since ->
        let d = Engine.now t.eng -. since in
        f.host_downtime <- f.host_downtime +. d;
        f.total_downtime <- f.total_downtime +. d;
        f.host_down_since <- None
    | None -> ());
    emit t (fun () -> Event.Node_recovered { node = Host })
  end

(* A host crash kills every coordinator whose decision is not yet
   logged: those attempts abort on recovery (presumed abort). Attempts
   with a logged decision continue — the coordinator fiber surviving
   models recovery replaying the decision log. Terminals admit no new
   transactions while the host is down. *)
let crash_host t f ~duration =
  if Faults.Crashable.up f.host_state then begin
    Faults.Crashable.crash f.host_state;
    f.node_crashes <- f.node_crashes + 1;
    f.host_down_since <- Some (Engine.now t.eng);
    let until = Engine.now t.eng +. duration in
    if until > f.host_down_until then f.host_down_until <- until;
    emit t (fun () -> Event.Node_crashed { node = Host });
    List.iter
      (fun (_, (rt : Messages.attempt_runtime)) ->
        let txn = rt.Messages.txn in
        if decision_of f txn = None then begin
          txn.Txn.doomed <- true;
          if rt.Messages.doom_reason = None then
            rt.Messages.doom_reason <- Some Txn.Crashed
        end)
      (live_sorted t);
    ignore
      (Engine.schedule_after t.eng ~delay:duration (fun () -> recover_host t f)
        : Engine.handle)
  end

let schedule_faults t f =
  List.iter
    (fun (c : Fault_plan.crash) ->
      ignore
        (Engine.schedule t.eng ~at:c.Fault_plan.at (fun () ->
             match c.Fault_plan.target with
             | Host -> crash_host t f ~duration:c.Fault_plan.duration
             | Proc i -> crash_node t f i ~duration:c.Fault_plan.duration)
          : Engine.handle))
    f.plan.Fault_plan.crashes;
  if f.plan.Fault_plan.crash_rate > 0. then
    Array.iteri
      (fun i rng ->
        let rec arm () =
          let gap =
            Rng.exponential rng ~mean:(1. /. f.plan.Fault_plan.crash_rate)
          in
          ignore
            (Engine.schedule_after t.eng ~delay:gap (fun () ->
                 if Faults.Crashable.up f.node_state.(i) then begin
                   let duration =
                     Rng.exponential rng ~mean:f.plan.Fault_plan.mean_repair
                   in
                   crash_node t f i ~duration
                 end;
                 arm ())
              : Engine.handle)
        in
        arm ())
      f.crash_rngs

(* Coordinator-side receive: a plain blocking receive when faults are
   off; otherwise bounded by the plan's (exponentially backed-off)
   timeout. *)
let coord_recv t (rt : Messages.attempt_runtime) ~round =
  match t.faults with
  | None -> Some (Mailbox.recv rt.Messages.coord_mb)
  | Some f ->
      Mailbox.recv_timeout rt.Messages.coord_mb t.eng
        ~timeout:
          (Backoff.delay ~base:f.plan.Fault_plan.timeout
             ~cap:f.plan.Fault_plan.timeout_cap ~round)

let note_timeout t f (txn : Txn.t) ~at_node ~round =
  f.timeouts <- f.timeouts + 1;
  emit t (fun () ->
      Event.Timeout_fired
        { tid = txn.Txn.tid; attempt = txn.Txn.attempt; at_node; round })

(* ------------------------------------------------------------------ *)
(* Cohort process                                                      *)

let check_doomed (txn : Txn.t) =
  if txn.Txn.doomed then raise (Txn.Aborted Txn.Peer_abort)

(* Whether replica copies are write-locked at access time (read-one/
   write-all during execution) or only during the first phase of commit
   (O2PL and the certification/deferred schemes, whose remote write
   intent piggybacks on the prepare message). *)
let write_all_at_access = function
  | Params.No_dc | Params.Twopl | Params.Wound_wait | Params.Wait_die
  | Params.Bto ->
      true
  | Params.Opt | Params.O2pl | Params.Twopl_defer -> false

(* Synchronously obtain write permission on every remote copy of [page]:
   one request message per copy site, a helper process that may block in
   the remote CC manager, and one reply message. Any rejection aborts the
   requester. *)
let acquire_replica_writes t (txn : Txn.t) ~from_node page =
  let copies =
    Catalog.copy_nodes t.catalog ~file:page.Ids.Page.file
    |> List.filter (fun site -> site <> from_node)
  in
  if copies <> [] then begin
    let pending = ref (List.length copies) in
    let failure = ref None in
    let all_in : unit Ivar.t = Ivar.create () in
    List.iter
      (fun site ->
        Net.send t.net ~src:(Proc from_node) ~dst:(Proc site) (fun () ->
            Engine.spawn t.eng (fun () ->
                let outcome =
                  try
                    (Node.cc t.procs.(site)).Cc_intf.cc_write txn page;
                    `Granted
                  with Txn.Aborted reason -> `Failed reason
                in
                Net.send t.net ~src:(Proc site) ~dst:(Proc from_node)
                  (fun () ->
                    (match outcome with
                    | `Failed reason when !failure = None ->
                        failure := Some reason
                    | `Failed _ | `Granted -> ());
                    decr pending;
                    if !pending = 0 then Ivar.fill all_in ()))))
      copies;
    Ivar.read all_in;
    match !failure with
    | Some reason -> raise (Txn.Aborted reason)
    | None -> ()
  end

let run_cohort t (rt : Messages.attempt_runtime) (cplan : Plan.cohort_plan) mb
    =
  let txn = rt.Messages.txn in
  let my_node = cplan.Plan.node in
  let node = t.procs.(my_node) in
  let cc = Node.cc node in
  let self = Proc my_node in
  let resources = t.params.Params.resources in
  let usage = Messages.usage rt my_node in
  (* Timed CC access: the wall time from request to grant (lock waits,
     conversion waits, CC request processing) accrues to the work-phase
     usage record feeding the response-time decomposition. [work:false]
     marks commit-protocol acquisitions, which belong to the 2PC
     component instead. *)
  let cc_access ?(work = true) mode page =
    emit t (fun () ->
        Event.Lock_request
          { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = my_node;
            page; mode });
    let t0 = Engine.now t.eng in
    (match mode with
    | Event.Read -> cc.Cc_intf.cc_read txn page
    | Event.Write -> cc.Cc_intf.cc_write txn page);
    let waited = Engine.now t.eng -. t0 in
    if work then
      usage.Messages.u_blocked <- usage.Messages.u_blocked +. waited;
    emit t (fun () ->
        Event.Lock_grant
          { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = my_node;
            page; mode; waited })
  in
  let release () =
    emit t (fun () ->
        Event.Lock_release
          { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = my_node })
  in
  (* Cohort-protocol traffic rides the faulty channel; everything else
     (replica-write RPCs, abort requests, Snoop rounds) is modeled as a
     reliable control plane. *)
  let send_coord msg =
    Net.send ~faulty:true t.net ~src:self ~dst:Host (fun () ->
        Mailbox.send rt.Messages.coord_mb msg)
  in
  let recv_cohort ~round =
    match t.faults with
    | None -> Some (Mailbox.recv mb)
    | Some f ->
        Mailbox.recv_timeout mb t.eng
          ~timeout:
            (Backoff.delay ~base:f.plan.Fault_plan.timeout
               ~cap:f.plan.Fault_plan.timeout_cap ~round)
  in
  (* 2PC termination protocol: ask the coordinator (if still live on
     this attempt) what was decided; otherwise answer from the host's
     decision log — no entry means presumed abort. *)
  let send_inquiry () =
    Net.send ~faulty:true t.net ~src:self ~dst:Host (fun () ->
        match Hashtbl.find_opt t.live txn.Txn.tid with
        | Some rt' when Txn.same_attempt rt'.Messages.txn txn ->
            Mailbox.send rt'.Messages.coord_mb (Messages.Inquiry (txn, my_node))
        | Some _ | None ->
            let commit =
              match t.faults with
              | Some f -> (
                  match decision_of f txn with Some c -> c | None -> false)
              | None -> false
            in
            Net.send_async ~faulty:true t.net ~src:Host ~dst:self (fun () ->
                Mailbox.send mb
                  (if commit then Messages.Do_commit else Messages.Do_abort)))
  in
  let initiate_deferred_writes () =
    let write_one () =
      Cpu.consume node.Node.cpu ~instructions:resources.Params.inst_per_update;
      Disk.submit_write (Node.random_disk node) ignore
    in
    List.iter
      (fun (op : Plan.page_op) -> if op.Plan.update then write_one ())
      cplan.Plan.ops;
    (* replica copies installed at this node *)
    List.iter (fun (_ : Ids.Page.t) -> write_one ()) cplan.Plan.apply_ops
  in
  try
    emit t (fun () ->
        Event.Cohort_start
          { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = my_node });
    (* Work phase: each page access is a CC request, a disk read, and a
       slice of CPU. The transaction manager knows at access time whether
       the page will be updated, so the read lock of an update access is
       converted to a write lock immediately at access time (a zero-width
       upgrade window, matching the paper's model) and the page's disk
       write is deferred to after commit. *)
    List.iter
      (fun (op : Plan.page_op) ->
        check_doomed txn;
        cc_access Event.Read op.Plan.page;
        if op.Plan.update then begin
          check_doomed txn;
          cc_access Event.Write op.Plan.page;
          (* read-one/write-all: lock the remote copies now unless the
             algorithm defers them to the commit protocol. The round
             trips land in the decomposition's message/other residual. *)
          if
            write_all_at_access t.params.Params.cc.Params.algorithm
            && t.params.Params.database.Params.replication > 1
          then begin
            check_doomed txn;
            acquire_replica_writes t txn ~from_node:my_node op.Plan.page
          end
        end;
        (* permission fully granted: the auditor observes the version
           this access sees, atomically with the grant *)
        Option.iter (fun a -> Audit.record_read a txn op.Plan.page) t.audit;
        check_doomed txn;
        let t0 = Engine.now t.eng in
        Disk.read (Node.random_disk node);
        let disk_dur = Engine.now t.eng -. t0 in
        usage.Messages.u_disk <- usage.Messages.u_disk +. disk_dur;
        emit t (fun () ->
            Event.Disk_access
              { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = my_node;
                write = false; dur = disk_dur });
        check_doomed txn;
        let t0 = Engine.now t.eng in
        Cpu.consume node.Node.cpu
          ~instructions:(Workload.draw_page_instructions t.workload);
        let cpu_dur = Engine.now t.eng -. t0 in
        usage.Messages.u_cpu <- usage.Messages.u_cpu +. cpu_dur;
        emit t (fun () ->
            Event.Cpu_slice
              { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = my_node;
                dur = cpu_dur }))
      cplan.Plan.ops;
    send_coord (Messages.Work_done my_node);
    let my_vote = ref None in
    let rec protocol ~round =
      match recv_cohort ~round with
      | None -> (
          match t.faults with
          | None -> assert false
          | Some f ->
              note_timeout t f txn ~at_node:self ~round;
              f.retries <- f.retries + 1;
              (match !my_vote with
              | None ->
                  (* the coordinator may have missed our Work_done *)
                  send_coord (Messages.Work_done my_node)
              | Some true ->
                  (* in doubt: run the termination protocol *)
                  send_inquiry ()
              | Some false -> send_coord (Messages.Vote (my_node, false)));
              protocol ~round:(round + 1))
      | Some Messages.Do_prepare -> (
          match !my_vote with
          | Some v ->
              (* retransmitted prepare: re-vote from memory; the CC
                 prepare step must not run twice *)
              send_coord (Messages.Vote (my_node, v));
              protocol ~round:1
          | None ->
              (* algorithms that defer replica write permission to the
                 commit protocol obtain it now; the write intent arrived
                 with the prepare message, so no extra messages are
                 charged. O2PL and 2PL-D may block here (covered by the
                 Snoop); OPT merely registers the writes for
                 certification. *)
              (if
                 (not
                    (write_all_at_access t.params.Params.cc.Params.algorithm))
                 && cplan.Plan.apply_ops <> []
               then
                 List.iter
                   (fun page -> cc_access ~work:false Event.Write page)
                   cplan.Plan.apply_ops);
              (* optional logging model: an updating cohort forces its log
                 page to disk before it can vote yes (footnote 5) *)
              if
                resources.Params.model_logging
                && (cplan.Plan.apply_ops <> []
                   || List.exists (fun (op : Plan.page_op) -> op.Plan.update)
                        cplan.Plan.ops)
              then begin
                let t0 = Engine.now t.eng in
                Disk.write (Node.random_disk node);
                emit t (fun () ->
                    Event.Disk_access
                      { tid = txn.Txn.tid; attempt = txn.Txn.attempt;
                        node = my_node; write = true;
                        dur = Engine.now t.eng -. t0 })
              end;
              let vote = cc.Cc_intf.cc_prepare txn in
              my_vote := Some vote;
              (* a yes vote makes the cohort's state durable (in doubt)
                 before the vote can possibly reach the coordinator *)
              if vote then begin
                Hashtbl.replace rt.Messages.voted_nodes my_node ();
                Metrics.record_prepared t.metrics ~tid:txn.Txn.tid
                  ~attempt:txn.Txn.attempt ~node:my_node
              end;
              send_coord (Messages.Vote (my_node, vote));
              protocol ~round:1)
      | Some Messages.Do_commit ->
          Metrics.record_decided t.metrics ~tid:txn.Txn.tid
            ~attempt:txn.Txn.attempt ~node:my_node;
          initiate_deferred_writes ();
          (* snapshot the installs and perform them in the same event *)
          let installed = cc.Cc_intf.cc_installed txn in
          cc.Cc_intf.cc_commit txn;
          release ();
          Option.iter
            (fun a ->
              (* replica installs are physical copies of the same logical
                 page; the auditor counts only primary installs *)
              let primary page =
                List.exists
                  (fun (op : Plan.page_op) -> Ids.Page.equal op.Plan.page page)
                  cplan.Plan.ops
              in
              List.iter
                (fun page ->
                  if primary page then Audit.record_install a txn page)
                installed)
            t.audit;
          send_coord (Messages.Done_ack my_node)
      | Some Messages.Do_abort ->
          Metrics.record_decided t.metrics ~tid:txn.Txn.tid
            ~attempt:txn.Txn.attempt ~node:my_node;
          cc.Cc_intf.cc_abort txn;
          release ();
          send_coord (Messages.Done_ack my_node)
    in
    protocol ~round:1
  with Txn.Aborted reason ->
    cc.Cc_intf.cc_abort txn;
    release ();
    (match reason with
    | Txn.Bto_conflict | Txn.Cert_failed | Txn.Died ->
        (* self-inflicted: the coordinator does not know yet *)
        send_coord (Messages.Cohort_aborted (my_node, reason))
    | Txn.Local_deadlock | Txn.Global_deadlock | Txn.Wounded | Txn.Peer_abort
    | Txn.Crashed | Txn.Timed_out ->
        ());
    (* wait for the coordinator's abort command, then acknowledge; under
       faults the command may be lost, so inquire on timeout (a finished
       attempt is answered from the decision log: presumed abort) *)
    let rec drain ~round =
      match recv_cohort ~round with
      | Some Messages.Do_abort -> ()
      | Some (Messages.Do_prepare | Messages.Do_commit) -> drain ~round
      | None ->
          (match t.faults with
          | None -> assert false
          | Some f ->
              note_timeout t f txn ~at_node:self ~round;
              f.retries <- f.retries + 1;
              send_inquiry ());
          drain ~round:(round + 1)
    in
    drain ~round:1;
    send_coord (Messages.Done_ack my_node)

(* ------------------------------------------------------------------ *)
(* Coordinator (runs inside the submitting terminal's process)         *)

let load_cohort t (rt : Messages.attempt_runtime) (cplan : Plan.cohort_plan) =
  let node_idx = cplan.Plan.node in
  let mb =
    (* a retransmitted load (lost first copy) reuses the mailbox *)
    match Hashtbl.find_opt rt.Messages.cohort_mbs node_idx with
    | Some mb -> mb
    | None ->
        let mb = Mailbox.create () in
        Hashtbl.replace rt.Messages.cohort_mbs node_idx mb;
        mb
  in
  emit t (fun () ->
      Event.Cohort_load
        {
          tid = rt.Messages.txn.Txn.tid;
          attempt = rt.Messages.txn.Txn.attempt;
          node = node_idx;
        });
  let node = t.procs.(node_idx) in
  let startup = t.params.Params.resources.Params.inst_per_startup in
  Net.send ~faulty:true t.net ~src:Host ~dst:(Proc node_idx) (fun () ->
      (* a duplicated load must not spawn a twin cohort *)
      if not (Hashtbl.mem rt.Messages.arrived_nodes node_idx) then begin
        Hashtbl.replace rt.Messages.arrived_nodes node_idx ();
        Cpu.submit node.Node.cpu ~instructions:startup (fun () ->
            Engine.spawn t.eng (fun () -> run_cohort t rt cplan mb))
      end)

let send_cohort t (rt : Messages.attempt_runtime) ~node_idx msg =
  let mb = Hashtbl.find rt.Messages.cohort_mbs node_idx in
  Net.send ~faulty:true t.net ~src:Host ~dst:(Proc node_idx) (fun () ->
      (match msg with
      | Messages.Do_abort ->
          (* unblock the cohort if it is stuck in a CC queue *)
          (Node.cc t.procs.(node_idx)).Cc_intf.cc_abort rt.Messages.txn
      | Messages.Do_prepare | Messages.Do_commit -> ());
      Mailbox.send mb msg)

let loaded_nodes (rt : Messages.attempt_runtime) =
  Hashtbl.fold (fun node _ acc -> node :: acc) rt.Messages.cohort_mbs []
  |> List.sort Int.compare

let pending_sorted pending =
  Hashtbl.fold (fun node () acc -> node :: acc) pending []
  |> List.sort Int.compare

let cohort_plan_of (txn : Txn.t) node =
  List.find_opt
    (fun (c : Plan.cohort_plan) -> c.Plan.node = node)
    txn.Txn.plan.Plan.cohorts

(* Wait for one Work_done per node in [nodes]; an abort trigger
   interrupts. Records the node of each Work_done as it is processed, so
   that when the work phase completes, [last_work_node] identifies the
   cohort on its critical path (under parallel execution). Under faults,
   a timeout re-sends any load message whose delivery was never observed
   (bounded by the retry budget); cohorts that did arrive own the
   retransmission of their Work_done, so the coordinator waits for them
   at the capped timeout without charging its budget. *)
let await_work t (rt : Messages.attempt_runtime) ~nodes =
  let txn = rt.Messages.txn in
  let pending = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace pending n ()) nodes;
  let rec go ~round =
    if Hashtbl.length pending = 0 then `Done
    else
      match coord_recv t rt ~round with
      | Some (Messages.Work_done node) ->
          if Hashtbl.mem pending node then begin
            Hashtbl.remove pending node;
            rt.Messages.last_work_node <- node;
            emit t (fun () ->
                Event.Work_done
                  { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node });
            go ~round:1
          end
          else go ~round
      | Some (Messages.Cohort_aborted (_, reason)) -> `Abort reason
      | Some (Messages.Abort_request (tx, reason))
        when Txn.same_attempt tx txn ->
          `Abort reason
      | Some (Messages.Inquiry _) ->
          (* a cohort only inquires pre-prepare when its Cohort_aborted
             was lost and it is draining: treat as a peer abort *)
          `Abort Txn.Peer_abort
      | Some (Messages.Abort_request _ | Messages.Vote _ | Messages.Done_ack _)
        ->
          go ~round
      | None -> (
          match t.faults with
          | None -> assert false
          | Some f -> (
              note_timeout t f txn ~at_node:Host ~round;
              match rt.Messages.doom_reason with
              | Some reason -> `Abort reason
              | None ->
                  let missing_loads =
                    pending_sorted pending
                    |> List.filter (fun n ->
                           not (Hashtbl.mem rt.Messages.arrived_nodes n))
                  in
                  if missing_loads = [] then go ~round:(round + 1)
                  else if
                    Backoff.exhausted
                      ~max_retries:f.plan.Fault_plan.max_retries ~round
                  then `Abort Txn.Timed_out
                  else begin
                    List.iter
                      (fun n ->
                        f.retries <- f.retries + 1;
                        Option.iter (load_cohort t rt) (cohort_plan_of txn n))
                      missing_loads;
                    go ~round:(round + 1)
                  end))
  in
  go ~round:1

(* Collect one Done_ack per node in [nodes]. Under faults the decision
   is re-sent on timeout; the commit decision is logged and must reach
   every cohort, so its retries are unbounded ([bounded:false]), while
   the abort path gives up after the retry budget and reports the
   unreachable cohorts for out-of-band cleanup. *)
let await_acks t (rt : Messages.attempt_runtime) ~nodes ~decision ~bounded =
  let txn = rt.Messages.txn in
  let pending = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace pending n ()) nodes;
  let rec go ~round =
    if Hashtbl.length pending = 0 then `Done
    else
      match coord_recv t rt ~round with
      | Some (Messages.Done_ack node) ->
          if Hashtbl.mem pending node then begin
            Hashtbl.remove pending node;
            go ~round:1
          end
          else go ~round
      | Some (Messages.Inquiry (_, node)) ->
          if Hashtbl.mem pending node then
            send_cohort t rt ~node_idx:node decision;
          go ~round
      | Some
          ( Messages.Work_done _ | Messages.Cohort_aborted _ | Messages.Vote _
          | Messages.Abort_request _ ) ->
          go ~round
      | None -> (
          match t.faults with
          | None -> assert false
          | Some f ->
              note_timeout t f txn ~at_node:Host ~round;
              if
                bounded
                && Backoff.exhausted ~max_retries:f.plan.Fault_plan.max_retries
                     ~round
              then `Orphaned (pending_sorted pending)
              else begin
                List.iter
                  (fun n ->
                    f.retries <- f.retries + 1;
                    send_cohort t rt ~node_idx:n decision)
                  (pending_sorted pending);
                go ~round:(round + 1)
              end)
  in
  go ~round:1

(* Broadcast the abort decision, collect acknowledgements, and return
   the abort reason. The decision is logged before any phase-two send;
   cohorts that stay unreachable past the retry budget are force-cleaned
   out of band (their locks released via [cc_abort]) and counted as
   orphaned — the late inquiry they eventually make is answered from the
   decision log. *)
let abort_attempt t (rt : Messages.attempt_runtime) reason =
  let txn = rt.Messages.txn in
  txn.Txn.phase <- Txn.Decided_abort;
  txn.Txn.doomed <- true;
  log_decision t txn false;
  emit t (fun () ->
      Event.Decision
        { tid = txn.Txn.tid; attempt = txn.Txn.attempt; commit = false });
  let loaded = loaded_nodes rt in
  List.iter (fun node_idx -> send_cohort t rt ~node_idx Messages.Do_abort) loaded;
  (match await_acks t rt ~nodes:loaded ~decision:Messages.Do_abort ~bounded:true with
  | `Done -> ()
  | `Orphaned missing -> (
      match t.faults with
      | None -> ()
      | Some f ->
          List.iter
            (fun n ->
              (Node.cc t.procs.(n)).Cc_intf.cc_abort txn;
              f.orphaned <- f.orphaned + 1;
              emit t (fun () ->
                  Event.Txn_orphaned
                    { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = n }))
            missing));
  txn.Txn.phase <- Txn.Finished;
  reason

(* The commit decision is durable before phase two begins; its delivery
   is retried (with capped backoff) until every cohort acknowledges. *)
let commit_attempt t (rt : Messages.attempt_runtime) =
  let txn = rt.Messages.txn in
  let cohorts = txn.Txn.plan.Plan.cohorts in
  txn.Txn.phase <- Txn.Decided_commit;
  log_decision t txn true;
  emit t (fun () ->
      Event.Decision
        { tid = txn.Txn.tid; attempt = txn.Txn.attempt; commit = true });
  List.iter
    (fun (c : Plan.cohort_plan) ->
      send_cohort t rt ~node_idx:c.Plan.node Messages.Do_commit)
    cohorts;
  (match
     await_acks t rt
       ~nodes:(List.map (fun (c : Plan.cohort_plan) -> c.Plan.node) cohorts)
       ~decision:Messages.Do_commit ~bounded:false
   with
  | `Done -> ()
  | `Orphaned _ -> assert false (* unbounded retries never orphan *));
  txn.Txn.phase <- Txn.Finished

let run_two_phase_commit t (rt : Messages.attempt_runtime) =
  let txn = rt.Messages.txn in
  let cohorts = txn.Txn.plan.Plan.cohorts in
  txn.Txn.phase <- Txn.Voting;
  txn.Txn.commit_ts <-
    Some (Timestamp.Clock.make t.clock ~time:(Engine.now t.eng));
  emit t (fun () ->
      Event.Prepare { tid = txn.Txn.tid; attempt = txn.Txn.attempt });
  List.iter
    (fun (c : Plan.cohort_plan) ->
      send_cohort t rt ~node_idx:c.Plan.node Messages.Do_prepare)
    cohorts;
  let pending = Hashtbl.create 8 in
  List.iter
    (fun (c : Plan.cohort_plan) -> Hashtbl.replace pending c.Plan.node ())
    cohorts;
  let rec collect_votes ~round =
    if Hashtbl.length pending = 0 then `All_yes
    else
      match coord_recv t rt ~round with
      | Some (Messages.Vote (node, yes)) ->
          if Hashtbl.mem pending node then begin
            Hashtbl.remove pending node;
            emit t (fun () ->
                Event.Vote
                  { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node; yes });
            if yes then collect_votes ~round:1 else `Abort Txn.Cert_failed
          end
          else collect_votes ~round
      | Some (Messages.Cohort_aborted (_, reason)) -> `Abort reason
      | Some (Messages.Abort_request (tx, reason))
        when Txn.same_attempt tx txn ->
          `Abort reason
      | Some (Messages.Inquiry (_, node)) ->
          (* an in-doubt cohort whose vote we may have missed: re-prompt
             it (it re-votes from memory). No round reset — a draining
             cohort's inquiries must not starve the timeout. *)
          if Hashtbl.mem pending node then
            send_cohort t rt ~node_idx:node Messages.Do_prepare;
          collect_votes ~round
      | Some
          (Messages.Abort_request _ | Messages.Work_done _ | Messages.Done_ack _)
        ->
          collect_votes ~round
      | None -> (
          match t.faults with
          | None -> assert false
          | Some f -> (
              note_timeout t f txn ~at_node:Host ~round;
              match rt.Messages.doom_reason with
              | Some reason -> `Abort reason
              | None ->
                  if
                    Backoff.exhausted ~max_retries:f.plan.Fault_plan.max_retries
                      ~round
                  then `Abort Txn.Timed_out
                  else begin
                    List.iter
                      (fun n ->
                        f.retries <- f.retries + 1;
                        send_cohort t rt ~node_idx:n Messages.Do_prepare)
                      (pending_sorted pending);
                    collect_votes ~round:(round + 1)
                  end))
  in
  match collect_votes ~round:1 with
  | `All_yes ->
      commit_attempt t rt;
      `Committed
  | `Abort reason -> `Aborted (abort_attempt t rt reason)

let run_attempt t (txn : Txn.t) =
  let rt = Messages.make_runtime txn in
  Hashtbl.replace t.live txn.Txn.tid rt;
  Fun.protect
    ~finally:(fun () ->
      match Hashtbl.find_opt t.live txn.Txn.tid with
      | Some cur when cur == rt -> Hashtbl.remove t.live txn.Txn.tid
      | Some _ | None -> ())
    (fun () ->
      let t_begin = Engine.now t.eng in
      emit t (fun () ->
          Event.Attempt_start { tid = txn.Txn.tid; attempt = txn.Txn.attempt });
      (* coordinator process startup at the host *)
      Cpu.consume t.host.Node.cpu
        ~instructions:t.params.Params.resources.Params.inst_per_startup;
      let t_setup_end = Engine.now t.eng in
      emit t (fun () ->
          Event.Setup_done { tid = txn.Txn.tid; attempt = txn.Txn.attempt });
      let cohorts = txn.Txn.plan.Plan.cohorts in
      let phase1 =
        match t.params.Params.workload.Params.exec_pattern with
        | Params.Parallel ->
            List.iter (load_cohort t rt) cohorts;
            await_work t rt
              ~nodes:(List.map (fun (c : Plan.cohort_plan) -> c.Plan.node) cohorts)
        | Params.Sequential ->
            let rec go = function
              | [] -> `Done
              | c :: rest -> (
                  load_cohort t rt c;
                  match await_work t rt ~nodes:[ c.Plan.node ] with
                  | `Done -> go rest
                  | `Abort reason -> `Abort reason)
            in
            go cohorts
      in
      match phase1 with
      | `Abort reason -> Aborted (abort_attempt t rt reason)
      | `Done -> (
          let t_work_end = Engine.now t.eng in
          match run_two_phase_commit t rt with
          | `Aborted reason -> Aborted reason
          | `Committed ->
              let t_end = Engine.now t.eng in
              (* Work-phase critical path: the cohort whose Work_done
                 arrived last under parallel execution; the sum over all
                 cohorts (in node order, for float determinism) under
                 sequential execution. *)
              let blocked, disk, cpu =
                match t.params.Params.workload.Params.exec_pattern with
                | Params.Parallel -> (
                    match
                      Hashtbl.find_opt rt.Messages.usage
                        rt.Messages.last_work_node
                    with
                    | Some u ->
                        ( u.Messages.u_blocked,
                          u.Messages.u_disk,
                          u.Messages.u_cpu )
                    | None -> (0., 0., 0.))
                | Params.Sequential ->
                    Hashtbl.fold
                      (fun node u acc -> (node, u) :: acc)
                      rt.Messages.usage []
                    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
                    |> List.fold_left
                         (fun (b, d, c) (_, u) ->
                           ( b +. u.Messages.u_blocked,
                             d +. u.Messages.u_disk,
                             c +. u.Messages.u_cpu ))
                         (0., 0., 0.)
              in
              Committed
                (Decomp.assemble
                   ~restart:(t_begin -. txn.Txn.origin_time)
                   ~setup:(t_setup_end -. t_begin)
                   ~exec:(t_work_end -. t_setup_end)
                   ~blocked ~disk ~cpu
                   ~commit:(t_end -. t_work_end))))

(* ------------------------------------------------------------------ *)
(* Terminals                                                           *)

let fresh_tid t =
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  tid

let make_attempt t ~tid ~attempt ~origin_time ~startup_ts ~plan =
  let now = Engine.now t.eng in
  {
    Txn.tid;
    attempt;
    origin_time;
    attempt_time = now;
    startup_ts;
    cc_ts =
      (if attempt = 1 then startup_ts else Timestamp.Clock.make t.clock ~time:now);
    commit_ts = None;
    plan;
    phase = Txn.Working;
    doomed = false;
  }

(* Terminals live at the host: while it is down no new transaction (or
   restart) can be admitted. The wait is a loop because the host may
   crash again before the recovery the terminal slept towards. *)
let rec await_host_up t =
  match t.faults with
  | None -> ()
  | Some f ->
      if not (Faults.Crashable.up f.host_state) then begin
        Engine.wait (Float.max 1e-9 (f.host_down_until -. Engine.now t.eng));
        await_host_up t
      end

let plan_pages (plan : Plan.t) =
  List.fold_left
    (fun acc (c : Plan.cohort_plan) -> acc + List.length c.Plan.ops)
    0 plan.Plan.cohorts

let run_terminal t ~index =
  Engine.spawn t.eng ~name:(Printf.sprintf "terminal-%d" index) (fun () ->
      let rec session () =
        let think = Workload.think_time t.workload in
        if think > 0. then
          Engine.wait (Rng.exponential t.think_rng ~mean:think);
        await_host_up t;
        let plan = Workload.generate_plan t.workload ~terminal:index in
        let origin_time = Engine.now t.eng in
        Metrics.record_submit t.metrics;
        let tid = fresh_tid t in
        emit t (fun () -> Event.Submit { tid });
        let startup_ts = Timestamp.Clock.make t.clock ~time:origin_time in
        let rec attempt k plan =
          let txn = make_attempt t ~tid ~attempt:k ~origin_time ~startup_ts ~plan in
          let outcome = run_attempt t txn in
          Metrics.record_completion t.metrics;
          match outcome with
          | Committed decomp ->
              Option.iter (fun a -> Audit.record_commit a txn) t.audit;
              tracef t ~tag:"commit" (fun () ->
                  Format.asprintf "%a after %.3fs" Txn.pp txn
                    (Engine.now t.eng -. origin_time));
              emit t (fun () ->
                  Event.Committed
                    {
                      tid;
                      attempt = k;
                      response = Engine.now t.eng -. origin_time;
                    });
              Metrics.record_commit t.metrics ~origin_time
                ~pages:(plan_pages txn.Txn.plan) ~decomp
          | Aborted reason ->
              Option.iter (fun a -> Audit.record_abort a txn) t.audit;
              tracef t ~tag:"abort" (fun () ->
                  Format.asprintf "%a: %s, restarting" Txn.pp txn
                    (Txn.abort_reason_name reason));
              emit t (fun () -> Event.Aborted { tid; attempt = k; reason });
              Metrics.record_abort t.metrics ~reason;
              let delay = Metrics.restart_delay t.metrics in
              emit t (fun () ->
                  Event.Restart_wait { tid; attempt = k; delay });
              Engine.wait delay;
              await_host_up t;
              let plan =
                if t.params.Params.run.Params.fresh_restart_plan then
                  Workload.generate_plan t.workload ~terminal:index
                else plan
              in
              attempt (k + 1) plan
        in
        attempt 1 plan;
        session ()
      in
      session ())

(* ------------------------------------------------------------------ *)
(* Run control and result collection                                   *)

let reset_observation_windows t =
  Metrics.begin_window t.metrics;
  Node.reset_windows t.host;
  Array.iter Node.reset_windows t.procs;
  Array.iter
    (fun node -> Stats.Tally.reset (Node.cc node).Cc_intf.cc_blocking)
    t.procs;
  (* availability is measured over the observation window: discard
     warm-up downtime and clip any open down-spell to the window start *)
  Option.iter
    (fun f ->
      let now = Engine.now t.eng in
      Array.fill f.node_downtime 0 (Array.length f.node_downtime) 0.;
      f.host_downtime <- 0.;
      Array.iteri
        (fun i since -> if since <> None then f.node_down_since.(i) <- Some now)
        f.node_down_since;
      if f.host_down_since <> None then f.host_down_since <- Some now)
    t.faults

let mean_over array f =
  if Array.length array = 0 then 0.
  else Array.fold_left (fun acc x -> acc +. f x) 0. array
       /. float_of_int (Array.length array)

(* Fraction of node-seconds (host + proc nodes) spent up over the
   observation window. *)
let availability t =
  match t.faults with
  | None -> 1.
  | Some f ->
      let window = Metrics.window_duration t.metrics in
      if window <= 0. then 1.
      else begin
        let now = Engine.now t.eng in
        let open_since = function Some s -> now -. s | None -> 0. in
        let down = ref (f.host_downtime +. open_since f.host_down_since) in
        Array.iteri
          (fun i acc -> down := !down +. acc +. open_since f.node_down_since.(i))
          f.node_downtime;
        let nodes = float_of_int (Array.length f.node_state + 1) in
        1. -. Float.min 1. (Float.max 0. (!down /. (nodes *. window)))
      end

(* Grace period after which an open in-doubt interval counts as overdue
   (i.e. the termination protocol failed): the full retry envelope, a
   generous allowance for repeated inquiry loss, and any downtime — a
   cohort at a crashed node legitimately stays in doubt until repair. *)
let indoubt_grace t f =
  let p = f.plan in
  let open_downtime =
    let now = Engine.now t.eng in
    let open_since = function Some s -> now -. s | None -> 0. in
    Array.fold_left
      (fun acc s -> acc +. open_since s)
      (open_since f.host_down_since) f.node_down_since
  in
  Backoff.total ~base:p.Fault_plan.timeout ~cap:p.Fault_plan.timeout_cap
    ~max_retries:p.Fault_plan.max_retries
  +. (20. *. p.Fault_plan.timeout_cap)
  +. f.total_downtime +. open_downtime

let collect_result t ~wall_seconds =
  let blocking_total, blocking_count =
    Array.fold_left
      (fun (tot, cnt) node ->
        let tally = (Node.cc node).Cc_intf.cc_blocking in
        (tot +. Stats.Tally.total tally, cnt + Stats.Tally.count tally))
      (0., 0) t.procs
  in
  {
    Sim_result.algorithm = t.params.Params.cc.Params.algorithm;
    params = t.params;
    throughput = Metrics.throughput t.metrics;
    mean_response = Metrics.mean_response t.metrics;
    response_ci95 = Metrics.response_ci95 t.metrics;
    response_p50 = Metrics.response_percentile t.metrics 0.50;
    response_p95 = Metrics.response_percentile t.metrics 0.95;
    commits = Metrics.commits t.metrics;
    aborts = Metrics.aborts t.metrics;
    completions = Metrics.completions t.metrics;
    abort_ratio = Metrics.abort_ratio t.metrics;
    abort_reasons = Metrics.abort_reason_counts t.metrics;
    mean_blocking =
      (if blocking_count = 0 then 0.
       else blocking_total /. float_of_int blocking_count);
    blocked_requests = blocking_count;
    proc_cpu_util = mean_over t.procs Node.cpu_utilization;
    proc_disk_util = mean_over t.procs Node.disk_utilization;
    host_cpu_util = Node.cpu_utilization t.host;
    mean_active = Metrics.mean_active t.metrics;
    messages = Net.messages_sent t.net;
    availability = availability t;
    goodput = Metrics.goodput t.metrics;
    timeouts = (match t.faults with None -> 0 | Some f -> f.timeouts);
    retries = (match t.faults with None -> 0 | Some f -> f.retries);
    msgs_dropped = (match t.faults with None -> 0 | Some f -> f.msgs_dropped);
    msgs_duplicated =
      (match t.faults with None -> 0 | Some f -> f.msgs_duplicated);
    node_crashes = (match t.faults with None -> 0 | Some f -> f.node_crashes);
    orphaned = (match t.faults with None -> 0 | Some f -> f.orphaned);
    indoubt_mean = Metrics.indoubt_mean t.metrics;
    indoubt_open_at_end = Metrics.indoubt_open t.metrics;
    indoubt_overdue_at_end =
      (match t.faults with
      | None -> 0
      | Some f -> Metrics.indoubt_overdue t.metrics ~grace:(indoubt_grace t f));
    decomp = Metrics.decomp_mean t.metrics;
    sim_events = Engine.events_processed t.eng;
    sim_end = Engine.now t.eng;
    wall_seconds;
    events_per_sec =
      (if wall_seconds > 0. then
         float_of_int (Engine.events_processed t.eng) /. wall_seconds
       else 0.);
    top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
  }

(** Attach an event trace (before {!execute}). *)
let enable_trace ?(capacity = 10_000) t =
  let trace = Trace.create t.eng ~capacity in
  t.trace <- Some trace;
  trace

(** Attach (or retrieve) the typed-event tracer (before {!execute}).
    Idempotent: the first call creates the tracer and wires the network
    and Snoop observers; later calls return the same tracer, so several
    sinks can be attached. Without this call the machine emits no typed
    events and pays no tracing cost. *)
let enable_events t =
  match t.events with
  | Some tracer -> tracer
  | None ->
      let tracer = Tracer.create () in
      t.events <- Some tracer;
      let now () = Engine.now t.eng in
      Net.set_on_msg t.net
        (Some
           (fun ~sent ~src ~dst ->
             Tracer.emit tracer ~time:(now ())
               (if sent then Event.Msg_send { src; dst }
                else Event.Msg_recv { src; dst })));
      Option.iter
        (fun snoop ->
          Ddbm_cc.Snoop.set_on_round snoop
            (Some
               (fun ~node ~edges ~victims ->
                 Tracer.emit tracer ~time:(now ())
                   (Event.Snoop_round { node; edges; victims }))))
        t.snoop;
      tracer

(** Start the time-series sampler (before {!execute}): every [interval]
    simulated seconds, emit an {!Event.Sample} carrying the number of
    in-flight transactions, per-interval CPU and disk utilizations
    (differences of cumulative busy times, so they are exact over the
    interval regardless of observation-window resets), and instantaneous
    queue lengths. Implies {!enable_events}. *)
let enable_sampler t ~interval =
  if not (interval > 0.) then
    invalid_arg "Machine.enable_sampler: interval must be positive";
  let tracer = enable_events t in
  let n = Array.length t.procs in
  let prev_host_cpu = ref (Node.cpu_busy_time t.host) in
  let prev_cpu = Array.init n (fun i -> Node.cpu_busy_time t.procs.(i)) in
  let prev_disk = Array.init n (fun i -> Node.disk_busy_time t.procs.(i)) in
  let prev_time = ref (Engine.now t.eng) in
  let rec tick () =
    let now = Engine.now t.eng in
    let dt = now -. !prev_time in
    if dt > 0. then begin
      let host_busy = Node.cpu_busy_time t.host in
      let host_cpu_util = (host_busy -. !prev_host_cpu) /. dt in
      prev_host_cpu := host_busy;
      let nodes =
        Array.init n (fun i ->
            let node = t.procs.(i) in
            let cpu_busy = Node.cpu_busy_time node in
            let disk_busy = Node.disk_busy_time node in
            let num_disks = Array.length node.Node.disks in
            let sample =
              {
                Event.cpu_util = (cpu_busy -. prev_cpu.(i)) /. dt;
                disk_util =
                  (disk_busy -. prev_disk.(i))
                  /. (dt *. float_of_int num_disks);
                cpu_queue = Cpu.ps_load node.Node.cpu;
                disk_queue = Node.disk_queue node;
              }
            in
            prev_cpu.(i) <- cpu_busy;
            prev_disk.(i) <- disk_busy;
            sample)
      in
      prev_time := now;
      Tracer.emit tracer ~time:now
        (Event.Sample
           { active = Metrics.active t.metrics; host_cpu_util; nodes })
    end;
    ignore (Engine.schedule t.eng ~at:(now +. interval) tick : Engine.handle)
  in
  ignore
    (Engine.schedule t.eng
       ~at:(Engine.now t.eng +. interval)
       tick
      : Engine.handle)

(** Start logging per-terminal plan fingerprints (before {!execute});
    used by the conformance harness to check that the workload stream is
    independent of the concurrency control algorithm. *)
let enable_fingerprints t = Workload.enable_fingerprints t.workload

(** Per-terminal fingerprints of every plan generated so far (empty
    unless {!enable_fingerprints} was called). *)
let workload_fingerprints t = Workload.fingerprints t.workload

(** Attach a serializability auditor (before {!execute}); committed
    transactions' reads and installs are then recorded for
    {!Audit.check}. *)
let enable_audit t =
  let audit = Audit.create () in
  t.audit <- Some audit;
  audit

(** Run an assembled machine to the end of its measurement window and
    collect the result. *)
let execute ?(log = false) t =
  let run_params = t.params.Params.run in
  ignore
    (Engine.schedule t.eng ~at:run_params.Params.warmup (fun () ->
         reset_observation_windows t)
      : Engine.handle);
  for index = 0 to t.params.Params.workload.Params.num_terminals - 1 do
    run_terminal t ~index
  done;
  Option.iter (fun f -> schedule_faults t f) t.faults;
  Option.iter Ddbm_cc.Snoop.start t.snoop;
  (* lint: allow ambient - wall-clock cost is reported, never simulated *)
  let wall_start = Sys.time () in
  Engine.run ~until:(run_params.Params.warmup +. run_params.Params.measure)
    t.eng;
  let wall_seconds = Sys.time () -. wall_start in (* lint: allow ambient *)
  let result = collect_result t ~wall_seconds in
  if log then Logs.info (fun m -> m "%a" Sim_result.pp result);
  result

(** Build and run a complete simulation; returns the measured result. *)
let run ?log (params : Params.t) = execute ?log (create params)
