(** Assembly of the distributed database machine and the transaction
    execution protocol (Sections 2.1 and 3 of the paper).

    One host node (terminals + coordinators) and [num_proc_nodes]
    processing nodes (data + cohorts). A transaction's coordinator runs in
    its terminal's process at the host; cohorts are spawned at data nodes
    by "load cohort" messages (paying process-startup CPU), execute their
    page accesses, and participate in a centralized two-phase commit:

      load -> work -> Work_done -> Do_prepare -> Vote -> decision -> ack

    Aborts can be triggered by a cohort's own CC manager (BTO rejection),
    by a remote CC manager or the Snoop detector (wound, deadlock victim;
    routed as an Abort_request message to the coordinator), or by a
    certification "no" vote. The coordinator then broadcasts Do_abort,
    collects one acknowledgement per loaded cohort, waits one mean
    response time, and reruns the same access plan. *)

open Desim
open Ddbm_model
open Ids

(* Fault runtime, installed only when the fault plan is active
   ([Fault_plan.active]). A zero plan leaves [t.faults = None]: no
   timers, no judged messages, no extra RNG draws — the machine is
   bit-for-bit identical to a fault-free build. *)
type fault_rt = {
  plan : Fault_plan.t;
  link : Faults.Link.t;  (** per-message loss/dup/delay judge *)
  node_state : Faults.Crashable.t array;
  host_state : Faults.Crashable.t;
  crash_rngs : Rng.t array;  (** per proc node, rate-driven crashes *)
  jitter_rng : Rng.t;
      (** drives the optional timeout jitter; untouched (and never drawn
          from) when the plan's [timeout_jitter] is zero *)
  tear_rng : Rng.t;
      (** one draw per WAL-tearing opportunity (a crash dropping a
          non-empty volatile tail); untouched when [torn_tail] is zero *)
  recrash_rng : Rng.t;
      (** one draw per recovery start (plus the re-crash schedule when it
          hits); untouched when [recrash] is zero *)
  decisions : (int * int, bool) Hashtbl.t;
      (** 2PC decision log, (tid, attempt) -> commit; written before any
          phase-two message is sent and kept for the whole run so the
          termination protocol can answer late inquiries *)
  mutable host_down_until : float;
      (** latest scheduled host recovery; gates terminal admission *)
  mutable timeouts : int;
  mutable retries : int;
  mutable msgs_dropped : int;
  mutable msgs_duplicated : int;
  mutable node_crashes : int;
  mutable orphaned : int;
  mutable failovers : int;
      (** cohorts resurrected at their backup node after a primary crash *)
  (* availability accounting: windowed downtime per node (reset with the
     observation windows) plus an unwindowed total feeding the in-doubt
     overdue grace *)
  node_down_since : float option array;
  mutable host_down_since : float option;
  node_downtime : float array;
  mutable host_downtime : float;
  mutable total_downtime : float;
}

(* Open-loop arrival runtime, installed only when the arrival spec is
   open loop ([Arrival.open_loop]). A closed spec leaves [t.arrivals =
   None]: no pump fiber, no admission queue, no extra RNG split — the
   machine is bit-for-bit identical to a closed-loop build. *)
type pending = {
  seq : int;  (** arrival number; selects the workload terminal stream *)
  enqueued_at : float;
  pending_plan : Plan.t;
}

type arrival_rt = {
  spec : Arrival.t;
  arr_rng : Rng.t;
      (** dedicated inter-arrival stream (thinning draws included) *)
  queue : pending Queue.t;  (** bounded FIFO admission queue *)
  mutable in_flight : int;
      (** dispatched and not yet committed; gates the MPL limiter *)
  mutable next_seq : int;
}

type t = {
  eng : Engine.t;
  params : Params.t;
  clock : Timestamp.Clock.t;
  host : Node.t;
  procs : Node.t array;
  net : Net.t;
  metrics : Metrics.t;
  catalog : Catalog.t;
  workload : Workload.t;
  live : (int, Messages.attempt_runtime) Hashtbl.t;
  think_rng : Rng.t;
  wal : Wal.t array option;
      (** one write-ahead log per processing node when the durability
          model is on ([durability.log_disk]); [None] otherwise — the
          zero-config machine pays nothing *)
  mutable next_tid : int;
  mutable recoveries : int;  (** completed crash-recovery passes *)
  mutable recovery_time : float;  (** summed recovery durations *)
  mutable recovery_chains : int;
      (** dependency chains replayed by chain-parallel recovery *)
  mutable recovery_degraded : int;
      (** chain-parallel passes degraded to serial physical redo because
          a torn tail clipped the dependency records *)
  mutable committed_cov : (int * int * int list) list;
      (** durability coverage obligations, newest first: (tid, attempt,
          updating-cohort nodes after failover relocation) of every fully
          committed transaction; checked against the WALs at end of run
          ([lost_commits] must be 0) *)
  arrivals : arrival_rt option;
  mutable faults : fault_rt option;
  mutable snoop : Ddbm_cc.Snoop.t option;
  mutable audit : Audit.t option;
  mutable trace : Trace.t option;
  mutable events : Tracer.t option;  (** typed lifecycle events *)
}

let tracef t ~tag build = Option.iter (fun tr -> Trace.emitf tr ~tag build) t.trace

(* Typed event emission: zero cost unless a tracer is attached — the
   event value is only constructed when [t.events] is [Some _]. *)
let emit t make =
  match t.events with
  | None -> ()
  | Some tr -> Tracer.emit tr ~time:(Engine.now t.eng) (make ())

type attempt_outcome = Committed of Decomp.t | Aborted of Txn.abort_reason

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)

let request_abort t ~from_node (txn : Txn.t) reason =
  (* Wounds (and any other abort demand) are ignored once the transaction
     has entered the second phase of its commit protocol. The doomed flag
     is set eagerly to suppress duplicate victimizations; the coordinator
     still learns of the abort only when the message arrives. *)
  if (not txn.Txn.doomed) && not (Txn.in_second_phase txn) then begin
    txn.Txn.doomed <- true;
    tracef t ~tag:"abort-request" (fun () ->
        Format.asprintf "%a from node %d: %s" Txn.pp txn from_node
          (Txn.abort_reason_name reason));
    emit t (fun () ->
        Event.Wound
          {
            tid = txn.Txn.tid;
            attempt = txn.Txn.attempt;
            from_node;
            reason;
          });
    Net.send_async t.net ~src:(Proc from_node) ~dst:Host (fun () ->
        match Hashtbl.find_opt t.live txn.Txn.tid with
        | Some rt when Txn.same_attempt rt.Messages.txn txn ->
            Mailbox.send rt.Messages.coord_mb
              (Messages.Abort_request (txn, reason))
        | Some _ | None -> ())
  end

let create ?(histograms = true) (params : Params.t) =
  (match Params.validate params with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Machine.create: " ^ msg));
  (* The chaos registry is process-global; overwrite it wholesale from
     the plan so no state leaks between runs. *)
  (match Ddbm_cc.Fault.apply params.Params.faults.Fault_plan.chaos with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Machine.create: " ^ msg));
  let eng = Engine.create () in
  let rng = Rng.create params.Params.run.Params.seed in
  let resources = params.Params.resources in
  let host =
    Node.create eng (Rng.split rng) ~node_ref:Host
      ~mips:resources.Params.host_mips ~resources
  in
  let procs =
    Array.init params.Params.database.Params.num_proc_nodes (fun i ->
        Node.create eng (Rng.split rng) ~node_ref:(Proc i)
          ~mips:resources.Params.node_mips ~resources)
  in
  let cpu_of = function
    | Host -> host.Node.cpu
    | Proc i -> procs.(i).Node.cpu
  in
  let net = Net.create ~eng ~inst_per_msg:resources.Params.inst_per_msg ~cpu_of () in
  let catalog = Catalog.create params.Params.database in
  let workload = Workload.create params catalog (Rng.split rng) in
  (* [think_rng] must be split before any durability stream so the
     offered load is unchanged by turning the log model on or off. *)
  let think_rng = Rng.split rng in
  let wal =
    let d = params.Params.durability in
    if d.Params.log_disk then begin
      let wal_rng = Rng.split rng in
      Some
        (Array.init (Array.length procs) (fun _ ->
             Wal.create eng (Rng.split wal_rng)
               ~min_time:d.Params.log_min_time
               ~max_time:d.Params.log_max_time))
    end
    else None
  in
  (* Open-loop arrival stream: split last, and only when the spec is
     open, so a closed spec performs zero extra splits and every existing
     stream (hence the committed pins and the golden trace) is
     unchanged. *)
  let arrivals =
    let a = params.Params.arrivals in
    if Arrival.open_loop a then
      Some
        {
          spec = a;
          arr_rng = Rng.split rng;
          queue = Queue.create ();
          in_flight = 0;
          next_seq = 0;
        }
    else None
  in
  let t =
    {
      eng;
      params;
      clock = Timestamp.Clock.create ();
      host;
      procs;
      net;
      metrics =
        Metrics.create ~quantiles:histograms eng
          ~restart_delay_floor:params.Params.run.Params.restart_delay_floor;
      catalog;
      workload;
      live = Hashtbl.create 256;
      think_rng;
      wal;
      next_tid = 0;
      recoveries = 0;
      recovery_time = 0.;
      recovery_chains = 0;
      recovery_degraded = 0;
      committed_cov = [];
      arrivals;
      faults = None;
      snoop = None;
      audit = None;
      trace = None;
      events = None;
    }
  in
  let algorithm = params.Params.cc.Params.algorithm in
  Array.iteri
    (fun i node ->
      let charge_cc_request =
        let cost = resources.Params.inst_per_cc_req in
        if cost <= 0. then fun () -> ()
        else fun () -> Cpu.consume node.Node.cpu ~instructions:cost
      in
      let hooks =
        {
          Cc_intf.eng;
          clock = t.clock;
          charge_cc_request;
          request_abort = (fun txn reason -> request_abort t ~from_node:i txn reason);
        }
      in
      Node.install_cc node (Ddbm_cc.Registry.make algorithm hooks))
    procs;
  if Ddbm_cc.Registry.needs_snoop algorithm then
    t.snoop <-
      Some
        (Ddbm_cc.Snoop.create eng ~net
           ~num_nodes:(Array.length procs)
           ~detection_interval:params.Params.cc.Params.detection_interval
           ~edges_of:(fun i -> (Node.cc procs.(i)).Cc_intf.cc_edges ())
           ~request_abort:(fun ~from_node txn reason ->
             request_abort t ~from_node txn reason));
  if Fault_plan.active params.Params.faults then begin
    let plan = params.Params.faults in
    (* Dedicated fault RNG: the workload/think/node streams above are
       untouched, so two runs differing only in the fault plan share the
       same offered load (common random numbers). *)
    let frng = Rng.create plan.Fault_plan.fault_seed in
    let link_rng = Rng.split frng in
    let n = Array.length procs in
    (* split order matters for reproducibility: the crash streams must
       see the same splits as before the jitter stream existed *)
    let crash_rngs = Array.init n (fun _ -> Rng.split frng) in
    let jitter_rng = Rng.split frng in
    (* later additions keep appending: tear and recrash streams split
       after the jitter stream so link/crash/jitter draws are unchanged
       on plans that predate them *)
    let tear_rng = Rng.split frng in
    let recrash_rng = Rng.split frng in
    let f =
      {
        plan;
        link =
          Faults.Link.create link_rng ~loss:plan.Fault_plan.msg_loss
            ~dup:plan.Fault_plan.msg_dup ~delay:plan.Fault_plan.msg_delay;
        node_state = Array.init n (fun _ -> Faults.Crashable.create ());
        host_state = Faults.Crashable.create ();
        crash_rngs;
        jitter_rng;
        tear_rng;
        recrash_rng;
        decisions = Hashtbl.create 256;
        host_down_until = 0.;
        timeouts = 0;
        retries = 0;
        msgs_dropped = 0;
        msgs_duplicated = 0;
        node_crashes = 0;
        orphaned = 0;
        failovers = 0;
        node_down_since = Array.make n None;
        host_down_since = None;
        node_downtime = Array.make n 0.;
        host_downtime = 0.;
        total_downtime = 0.;
      }
    in
    t.faults <- Some f;
    Net.set_judge t.net
      (Some
         (fun ~src ~dst ->
           let down = function
             | Host -> not (Faults.Crashable.up f.host_state)
             | Proc i -> not (Faults.Crashable.up f.node_state.(i))
           in
           if down src || down dst then begin
             f.msgs_dropped <- f.msgs_dropped + 1;
             emit t (fun () -> Event.Msg_dropped { src; dst });
             []
           end
           else
             match Faults.Link.judge f.link with
             | [] ->
                 f.msgs_dropped <- f.msgs_dropped + 1;
                 emit t (fun () -> Event.Msg_dropped { src; dst });
                 []
             | [ _ ] as verdict -> verdict
             | verdict ->
                 f.msgs_duplicated <- f.msgs_duplicated + 1;
                 verdict))
  end;
  t

(* ------------------------------------------------------------------ *)
(* Crashes and recoveries                                              *)

(* A decision in the log means phase two has begun: the attempt's
   outcome is durable and survives any crash. *)
let decision_of f (txn : Txn.t) =
  Hashtbl.find_opt f.decisions (txn.Txn.tid, txn.Txn.attempt)

let log_decision t (txn : Txn.t) commit =
  match t.faults with
  | None -> ()
  | Some f -> Hashtbl.replace f.decisions (txn.Txn.tid, txn.Txn.attempt) commit

let live_sorted t =
  Hashtbl.fold (fun tid rt acc -> (tid, rt) :: acc) t.live []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let loaded_nodes (rt : Messages.attempt_runtime) =
  Hashtbl.fold (fun node _ acc -> node :: acc) rt.Messages.cohort_mbs []
  |> List.sort Int.compare

let cohort_plan_of (txn : Txn.t) node =
  List.find_opt
    (fun (c : Plan.cohort_plan) -> c.Plan.node = node)
    txn.Txn.plan.Plan.cohorts

(* Primary/backup replication: each processing node's backup is its ring
   successor. *)
let backup_of t i = (i + 1) mod Array.length t.procs

(* Where the cohort originally planned at [node] now runs: its backup
   after a failover, [node] itself otherwise. *)
let resident_node (rt : Messages.attempt_runtime) node =
  match Hashtbl.find_opt rt.Messages.relocated node with
  | Some b -> b
  | None -> node

let recover_host t f =
  if not (Faults.Crashable.up f.host_state) then begin
    Faults.Crashable.recover f.host_state;
    (match f.host_down_since with
    | Some since ->
        let d = Engine.now t.eng -. since in
        f.host_downtime <- f.host_downtime +. d;
        f.total_downtime <- f.total_downtime +. d;
        f.host_down_since <- None
    | None -> ());
    emit t (fun () -> Event.Node_recovered { node = Host })
  end

(* A host crash kills every coordinator whose decision is not yet
   logged: those attempts abort on recovery (presumed abort). Attempts
   with a logged decision continue — the coordinator fiber surviving
   models recovery replaying the decision log. Terminals admit no new
   transactions while the host is down. *)
let crash_host t f ~duration =
  if Faults.Crashable.up f.host_state then begin
    Faults.Crashable.crash f.host_state;
    f.node_crashes <- f.node_crashes + 1;
    f.host_down_since <- Some (Engine.now t.eng);
    let until = Engine.now t.eng +. duration in
    if until > f.host_down_until then f.host_down_until <- until;
    emit t (fun () -> Event.Node_crashed { node = Host });
    List.iter
      (fun (_, (rt : Messages.attempt_runtime)) ->
        let txn = rt.Messages.txn in
        if decision_of f txn = None then begin
          txn.Txn.doomed <- true;
          if rt.Messages.doom_reason = None then
            rt.Messages.doom_reason <- Some Txn.Crashed
        end)
      (live_sorted t);
    ignore
      (Engine.schedule_after t.eng ~delay:duration (fun () -> recover_host t f)
        : Engine.handle)
  end

(* Coordinator-side receive: a plain blocking receive when faults are
   off; otherwise bounded by the plan's (exponentially backed-off,
   optionally jittered) timeout. *)
let coord_recv t (rt : Messages.attempt_runtime) ~round =
  match t.faults with
  | None -> Some (Mailbox.recv rt.Messages.coord_mb)
  | Some f ->
      Mailbox.recv_timeout rt.Messages.coord_mb t.eng
        ~timeout:
          (Backoff.delay_jittered ~jitter:f.plan.Fault_plan.timeout_jitter
             ~rng:f.jitter_rng ~base:f.plan.Fault_plan.timeout
             ~cap:f.plan.Fault_plan.timeout_cap ~round)

let note_timeout t f (txn : Txn.t) ~at_node ~round =
  f.timeouts <- f.timeouts + 1;
  emit t (fun () ->
      Event.Timeout_fired
        { tid = txn.Txn.tid; attempt = txn.Txn.attempt; at_node; round })

(* ------------------------------------------------------------------ *)
(* Cohort process                                                      *)

let check_doomed (txn : Txn.t) =
  if txn.Txn.doomed then raise (Txn.Aborted Txn.Peer_abort)

(* Whether replica copies are write-locked at access time (read-one/
   write-all during execution) or only during the first phase of commit
   (O2PL and the certification/deferred schemes, whose remote write
   intent piggybacks on the prepare message). *)
let write_all_at_access = function
  | Params.No_dc | Params.Twopl | Params.Wound_wait | Params.Wait_die
  | Params.Bto ->
      true
  | Params.Opt | Params.O2pl | Params.Twopl_defer -> false

(* Synchronously obtain write permission on every remote copy of [page]:
   one request message per copy site, a helper process that may block in
   the remote CC manager, and one reply message. Any rejection aborts the
   requester. *)
let acquire_replica_writes t (txn : Txn.t) ~from_node page =
  let copies =
    Catalog.copy_nodes t.catalog ~file:page.Ids.Page.file
    |> List.filter (fun site -> site <> from_node)
  in
  if copies <> [] then begin
    let pending = ref (List.length copies) in
    let failure = ref None in
    let all_in : unit Ivar.t = Ivar.create () in
    List.iter
      (fun site ->
        Net.send t.net ~src:(Proc from_node) ~dst:(Proc site) (fun () ->
            Engine.spawn t.eng (fun () ->
                let outcome =
                  try
                    (Node.cc t.procs.(site)).Cc_intf.cc_write txn page;
                    `Granted
                  with Txn.Aborted reason -> `Failed reason
                in
                Net.send t.net ~src:(Proc site) ~dst:(Proc from_node)
                  (fun () ->
                    (match outcome with
                    | `Failed reason when !failure = None ->
                        failure := Some reason
                    | `Failed _ | `Granted -> ());
                    decr pending;
                    if !pending = 0 then Ivar.fill all_in ()))))
      copies;
    Ivar.read all_in;
    match !failure with
    | Some reason -> raise (Txn.Aborted reason)
    | None -> ()
  end

(* [proxy] runs the cohort's commit-protocol role at its backup node
   after a primary crash: the work-phase resources were already spent at
   the primary, the CC footprint stays at the primary's manager
   (modeling dependency-logged lock state shipped with the write-set),
   and logging/installs happen at the backup. Protocol messages still
   carry the original node id, so the coordinator is oblivious to the
   relocation beyond its routing table. *)
let run_cohort ?(proxy = false) t (rt : Messages.attempt_runtime)
    (cplan : Plan.cohort_plan) mb =
  let txn = rt.Messages.txn in
  let tid = txn.Txn.tid in
  let attempt = txn.Txn.attempt in
  let my_node = cplan.Plan.node in
  let exec_node = if proxy then backup_of t my_node else my_node in
  let node = t.procs.(exec_node) in
  let cc = Node.cc t.procs.(my_node) in
  let self = Proc exec_node in
  let resources = t.params.Params.resources in
  let durability = t.params.Params.durability in
  let usage = Messages.usage rt my_node in
  let wal = match t.wal with Some w -> Some w.(exec_node) | None -> None in
  let is_updater =
    cplan.Plan.apply_ops <> []
    || List.exists (fun (op : Plan.page_op) -> op.Plan.update) cplan.Plan.ops
  in
  let wal_append record =
    match wal with
    | Some w when is_updater -> Wal.append w record
    | Some _ | None -> ()
  in
  (* Log forces: blocking FCFS writes on this node's log disk. A prepare
     force gates the cohort's yes vote and accrues to the decomposition's
     [log] component (via the decision-gating cohort); a commit force
     happens after the decision and only shows in log-disk utilization. *)
  let wal_force ~accrue w =
    let t0 = Engine.now t.eng in
    Wal.force w;
    let dur = Engine.now t.eng -. t0 in
    if accrue then usage.Messages.u_log <- usage.Messages.u_log +. dur;
    Metrics.record_log_force t.metrics ~dur;
    emit t (fun () ->
        Event.Log_forced { tid; attempt; node = my_node; dur })
  in
  (* The primary's fiber exits silently once a backup proxy has taken
     over: no sends, no [cc_abort] — the footprint now belongs to the
     proxy. Only ever true when [proxy] is false. *)
  let relocated_away () =
    (not proxy) && Hashtbl.mem rt.Messages.relocated my_node
  in
  (* Timed CC access: the wall time from request to grant (lock waits,
     conversion waits, CC request processing) accrues to the work-phase
     usage record feeding the response-time decomposition. [work:false]
     marks commit-protocol acquisitions, which belong to the 2PC
     component instead. *)
  let cc_access ?(work = true) mode page =
    emit t (fun () ->
        Event.Lock_request
          { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = my_node;
            page; mode });
    let t0 = Engine.now t.eng in
    (match mode with
    | Event.Read -> cc.Cc_intf.cc_read txn page
    | Event.Write -> cc.Cc_intf.cc_write txn page);
    let waited = Engine.now t.eng -. t0 in
    if work then
      usage.Messages.u_blocked <- usage.Messages.u_blocked +. waited;
    emit t (fun () ->
        Event.Lock_grant
          { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = my_node;
            page; mode; waited })
  in
  let release () =
    emit t (fun () ->
        Event.Lock_release
          { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = my_node })
  in
  (* Cohort-protocol traffic rides the faulty channel; everything else
     (replica-write RPCs, abort requests, Snoop rounds) is modeled as a
     reliable control plane. *)
  let send_coord msg =
    Net.send ~faulty:true t.net ~src:self ~dst:Host (fun () ->
        Mailbox.send rt.Messages.coord_mb msg)
  in
  let recv_cohort ~round =
    match t.faults with
    | None -> Some (Mailbox.recv mb)
    | Some f ->
        Mailbox.recv_timeout mb t.eng
          ~timeout:
            (Backoff.delay_jittered ~jitter:f.plan.Fault_plan.timeout_jitter
               ~rng:f.jitter_rng ~base:f.plan.Fault_plan.timeout
               ~cap:f.plan.Fault_plan.timeout_cap ~round)
  in
  (* 2PC termination protocol: ask the coordinator (if still live on
     this attempt) what was decided; otherwise answer from the host's
     decision log — no entry means presumed abort. *)
  let send_inquiry () =
    Net.send ~faulty:true t.net ~src:self ~dst:Host (fun () ->
        match Hashtbl.find_opt t.live txn.Txn.tid with
        | Some rt' when Txn.same_attempt rt'.Messages.txn txn ->
            Mailbox.send rt'.Messages.coord_mb (Messages.Inquiry (txn, my_node))
        | Some _ | None ->
            let commit =
              match t.faults with
              | Some f -> (
                  match decision_of f txn with Some c -> c | None -> false)
              | None -> false
            in
            Net.send_async ~faulty:true t.net ~src:Host ~dst:self (fun () ->
                Mailbox.send mb
                  (if commit then Messages.Do_commit else Messages.Do_abort)))
  in
  let initiate_deferred_writes () =
    let write_one () =
      Cpu.consume node.Node.cpu ~instructions:resources.Params.inst_per_update;
      Disk.submit_write (Node.random_disk node) ignore
    in
    List.iter
      (fun (op : Plan.page_op) -> if op.Plan.update then write_one ())
      cplan.Plan.ops;
    (* replica copies installed at this node *)
    List.iter (fun (_ : Ids.Page.t) -> write_one ()) cplan.Plan.apply_ops
  in
  try
    (if proxy then
       (* the coordinator may have never seen the primary's Work_done;
          a duplicate is ignored *)
       send_coord (Messages.Work_done my_node)
     else begin
       emit t (fun () ->
           Event.Cohort_start { tid; attempt; node = my_node });
       wal_append (Wal.Begin { tid; attempt });
       (* Work phase: each page access is a CC request, a disk read, and
          a slice of CPU. The transaction manager knows at access time
          whether the page will be updated, so the read lock of an update
          access is converted to a write lock immediately at access time
          (a zero-width upgrade window, matching the paper's model) and
          the page's disk write is deferred to after commit. *)
       List.iter
         (fun (op : Plan.page_op) ->
           check_doomed txn;
           cc_access Event.Read op.Plan.page;
           if op.Plan.update then begin
             check_doomed txn;
             cc_access Event.Write op.Plan.page;
             wal_append (Wal.Update { tid; attempt; page = op.Plan.page });
             (* read-one/write-all: lock the remote copies now unless the
                algorithm defers them to the commit protocol. The round
                trips land in the decomposition's message/other residual. *)
             if
               write_all_at_access t.params.Params.cc.Params.algorithm
               && t.params.Params.database.Params.replication > 1
             then begin
               check_doomed txn;
               acquire_replica_writes t txn ~from_node:my_node op.Plan.page
             end
           end;
           (* permission fully granted: the auditor observes the version
              this access sees, atomically with the grant *)
           Option.iter (fun a -> Audit.record_read a txn op.Plan.page) t.audit;
           check_doomed txn;
           let t0 = Engine.now t.eng in
           Disk.read (Node.random_disk node);
           let disk_dur = Engine.now t.eng -. t0 in
           usage.Messages.u_disk <- usage.Messages.u_disk +. disk_dur;
           emit t (fun () ->
               Event.Disk_access
                 { tid; attempt; node = my_node; write = false; dur = disk_dur });
           check_doomed txn;
           let t0 = Engine.now t.eng in
           Cpu.consume node.Node.cpu
             ~instructions:(Workload.draw_page_instructions t.workload);
           let cpu_dur = Engine.now t.eng -. t0 in
           usage.Messages.u_cpu <- usage.Messages.u_cpu +. cpu_dur;
           emit t (fun () ->
               Event.Cpu_slice { tid; attempt; node = my_node; dur = cpu_dur }))
         cplan.Plan.ops;
       (* Primary/backup replication: ship the write-set to the backup
          before reporting the work done, so a crash of this node can be
          survived by failing the cohort over instead of dooming the
          attempt. One faulty-channel message; registration at the backup
          is marked on delivery. *)
       if
         durability.Params.replicas > 0 && is_updater
         && Array.length t.procs > 1
       then begin
         let b = backup_of t my_node in
         Net.send ~faulty:true t.net ~src:self ~dst:(Proc b) (fun () ->
             Hashtbl.replace rt.Messages.shipped_nodes my_node ())
       end;
       send_coord (Messages.Work_done my_node)
     end);
    let my_vote = ref None in
    let rec protocol ~round =
      match recv_cohort ~round with
      | None -> (
          match t.faults with
          | None -> assert false
          | Some f ->
              if relocated_away () then ()
              else begin
                note_timeout t f txn ~at_node:self ~round;
                f.retries <- f.retries + 1;
                (match !my_vote with
                | None ->
                    (* the coordinator may have missed our Work_done *)
                    send_coord (Messages.Work_done my_node)
                | Some true ->
                    (* in doubt: run the termination protocol *)
                    send_inquiry ()
                | Some false -> send_coord (Messages.Vote (my_node, false)));
                protocol ~round:(round + 1)
              end)
      | Some Messages.Do_prepare -> (
          match !my_vote with
          | Some v ->
              (* retransmitted prepare: re-vote from memory; the CC
                 prepare step must not run twice *)
              send_coord (Messages.Vote (my_node, v));
              protocol ~round:1
          | None ->
              (* from here the cohort may block inside its CC manager, so
                 a crash can no longer fail it over to the backup — a
                 proxy would double-drive the manager *)
              Hashtbl.replace rt.Messages.preparing_nodes my_node ();
              (* algorithms that defer replica write permission to the
                 commit protocol obtain it now; the write intent arrived
                 with the prepare message, so no extra messages are
                 charged. O2PL and 2PL-D may block here (covered by the
                 Snoop); OPT merely registers the writes for
                 certification. *)
              (if
                 (not
                    (write_all_at_access t.params.Params.cc.Params.algorithm))
                 && cplan.Plan.apply_ops <> []
               then
                 List.iter
                   (fun page -> cc_access ~work:false Event.Write page)
                   cplan.Plan.apply_ops);
              (* optional logging model: an updating cohort forces its log
                 page to disk before it can vote yes (footnote 5) *)
              if resources.Params.model_logging && is_updater then begin
                let t0 = Engine.now t.eng in
                Disk.write (Node.random_disk node);
                emit t (fun () ->
                    Event.Disk_access
                      { tid; attempt; node = my_node; write = true;
                        dur = Engine.now t.eng -. t0 })
              end;
              (* a proxy replays the shipped write-set into its own
                 node's log; replica installs are logged where they will
                 be applied *)
              if proxy then begin
                wal_append (Wal.Begin { tid; attempt });
                List.iter
                  (fun (op : Plan.page_op) ->
                    if op.Plan.update then
                      wal_append (Wal.Update { tid; attempt; page = op.Plan.page }))
                  cplan.Plan.ops
              end;
              List.iter
                (fun page -> wal_append (Wal.Update { tid; attempt; page }))
                cplan.Plan.apply_ops;
              let vote = cc.Cc_intf.cc_prepare txn in
              my_vote := Some vote;
              (* a yes vote makes the cohort's state durable (in doubt)
                 before the vote can possibly reach the coordinator: the
                 prepare record is forced regardless of the force
                 policy *)
              (match wal with
              | Some w when is_updater ->
                  if vote then begin
                    Wal.append w (Wal.Prepare { tid; attempt });
                    wal_force ~accrue:true w
                  end
                  else Wal.append w (Wal.Abort { tid; attempt })
              | Some _ | None -> ());
              if vote then begin
                Hashtbl.replace rt.Messages.voted_nodes my_node ();
                Metrics.record_prepared t.metrics ~tid ~attempt ~node:my_node
              end;
              send_coord (Messages.Vote (my_node, vote));
              protocol ~round:1)
      | Some Messages.Do_commit ->
          Metrics.record_decided t.metrics ~tid ~attempt ~node:my_node;
          (* crash recovery may have already redone this cohort's
             installs from the durable log; the late Do_commit then only
             releases the CC footprint and acknowledges *)
          let already_installed =
            match wal with
            | Some w -> Wal.installed w ~tid ~attempt
            | None -> false
          in
          if not already_installed then initiate_deferred_writes ();
          (* snapshot the installs and perform them in the same event *)
          let installed = cc.Cc_intf.cc_installed txn in
          cc.Cc_intf.cc_commit txn;
          release ();
          Option.iter
            (fun a ->
              (* replica installs are physical copies of the same logical
                 page; the auditor counts only primary installs *)
              let primary page =
                List.exists
                  (fun (op : Plan.page_op) -> Ids.Page.equal op.Plan.page page)
                  cplan.Plan.ops
              in
              List.iter
                (fun page ->
                  if primary page then Audit.record_install a txn page)
                installed)
            t.audit;
          (match wal with
          | Some w when is_updater ->
              Wal.append w (Wal.Commit { tid; attempt });
              (match durability.Params.log_force with
              | Params.At_commit -> wal_force ~accrue:false w
              | Params.At_prepare -> ());
              Wal.mark_installed w ~tid ~attempt
          | Some _ | None -> ());
          send_coord (Messages.Done_ack my_node)
      | Some Messages.Do_abort ->
          Metrics.record_decided t.metrics ~tid ~attempt ~node:my_node;
          cc.Cc_intf.cc_abort txn;
          release ();
          wal_append (Wal.Abort { tid; attempt });
          send_coord (Messages.Done_ack my_node)
    in
    protocol ~round:1
  with Txn.Aborted reason ->
    cc.Cc_intf.cc_abort txn;
    release ();
    (match reason with
    | Txn.Bto_conflict | Txn.Cert_failed | Txn.Died ->
        (* self-inflicted: the coordinator does not know yet *)
        send_coord (Messages.Cohort_aborted (my_node, reason))
    | Txn.Local_deadlock | Txn.Global_deadlock | Txn.Wounded | Txn.Peer_abort
    | Txn.Crashed | Txn.Timed_out ->
        ());
    (* wait for the coordinator's abort command, then acknowledge; under
       faults the command may be lost, so inquire on timeout (a finished
       attempt is answered from the decision log: presumed abort) *)
    let rec drain ~round =
      match recv_cohort ~round with
      | Some Messages.Do_abort -> ()
      | Some (Messages.Do_prepare | Messages.Do_commit) -> drain ~round
      | None ->
          (match t.faults with
          | None -> assert false
          | Some f ->
              note_timeout t f txn ~at_node:self ~round;
              f.retries <- f.retries + 1;
              send_inquiry ());
          drain ~round:(round + 1)
    in
    drain ~round:1;
    send_coord (Messages.Done_ack my_node)

(* Crash recovery at a processing node (WAL model on), in three stages:

   1. analysis — scan the durable log and resolve the in-doubt set
      against the host's decision log (one control-plane round trip);
   2. partition — group the commit-decided transactions into
      independent redo chains from the dependency records logged with
      each update ([Wal.redo_chains]): transactions whose write-sets
      never met land in different chains;
   3. redo — replay the chains on [durability.recovery_jobs] concurrent
      worker fibers, installing the durable updates of commit-decided
      transactions onto the data disks, then take a truncating
      checkpoint.

   [recovery_jobs = 1] preserves the original serial redo pass exactly.
   When a torn log tail clipped the dependency records
   ([Wal.deps_corrupt]), a chain-parallel pass degrades to the same
   serial physical redo — which needs no dependency information — and
   repairs the dependency index once the checkpoint lands.

   Recovery is re-entrant: a re-crash while recovering abandons the
   pass (the up-guards below), and the next recovery starts over from
   the durable log; redo is idempotent, so no committed update is
   lost. A cohort fiber that later receives the (retried) Do_commit
   finds its installs already done and only releases its CC footprint
   and acknowledges. In-doubt attempts that are still live stay in
   doubt — the ordinary termination protocol resolves them — and
   finished attempts without a logged decision are presumed aborted. *)
let rec spawn_recovery t f i wal =
  Engine.spawn t.eng (fun () ->
      emit t (fun () -> Event.Recovery_started { node = i });
      let t0 = Engine.now t.eng in
      (* crash-during-recovery fault: with probability [recrash] this
         pass is interrupted by a second crash moments after it starts,
         exercising the re-entrancy above. The repair time reuses the
         plan's MTTR stream parameters. *)
      if
        f.plan.Fault_plan.recrash > 0.
        && Rng.bool f.recrash_rng ~p:f.plan.Fault_plan.recrash
      then begin
        let delay =
          Rng.exponential f.recrash_rng
            ~mean:(f.plan.Fault_plan.mean_repair /. 100.)
        in
        let duration =
          Rng.exponential f.recrash_rng ~mean:f.plan.Fault_plan.mean_repair
        in
        ignore
          (Engine.schedule_after t.eng ~delay (fun () ->
               crash_node t f i ~duration)
            : Engine.handle)
      end;
      Wal.scan wal;
      let doubts = Wal.in_doubt wal in
      let resolved = ref [] in
      if doubts <> [] then begin
        let got : unit Ivar.t = Ivar.create () in
        Net.send t.net ~src:(Proc i) ~dst:Host (fun () ->
            let answers =
              List.map
                (fun (tid, attempt) ->
                  let live =
                    match Hashtbl.find_opt t.live tid with
                    | Some rt -> Int.equal rt.Messages.txn.Txn.attempt attempt
                    | None -> false
                  in
                  (tid, attempt, live, Hashtbl.find_opt f.decisions (tid, attempt)))
                doubts
            in
            Net.send_async t.net ~src:Host ~dst:(Proc i) (fun () ->
                resolved := answers;
                Ivar.fill got ()));
        Ivar.read got
      end;
      if Faults.Crashable.up f.node_state.(i) then begin
        let redone = ref 0 in
        let node = t.procs.(i) in
        let inst = t.params.Params.resources.Params.inst_per_update in
        let jobs = t.params.Params.durability.Params.recovery_jobs in
        let corrupt = Wal.deps_corrupt wal in
        let abort_undecided (tid, attempt, live, decision) =
          match decision with
          | Some true -> ()
          | Some false -> Wal.append wal (Wal.Abort { tid; attempt })
          | None ->
              if not live then Wal.append wal (Wal.Abort { tid; attempt })
        in
        let replay_commit ~tid ~attempt =
          for _ = 1 to Wal.redo_pages wal ~tid ~attempt do
            Cpu.consume node.Node.cpu ~instructions:inst;
            Disk.write (Node.random_disk node)
          done;
          Wal.append wal (Wal.Commit { tid; attempt });
          Wal.mark_installed wal ~tid ~attempt;
          incr redone
        in
        if jobs <= 1 || corrupt then begin
          (* serial physical redo: with [jobs = 1] this is the original
             recovery pass, event for event; it doubles as the degraded
             path when corrupt dependency records rule out chaining *)
          if jobs > 1 then t.recovery_degraded <- t.recovery_degraded + 1;
          List.iter
            (fun ((tid, attempt, _, decision) as answer) ->
              match decision with
              | Some true -> replay_commit ~tid ~attempt
              | Some false | None -> abort_undecided answer)
            !resolved
        end
        else begin
          (* chain-parallel redo: aborts are appended up front (pure log
             records, no installs), then the commit-decided set is
             partitioned into dependency chains and dealt round-robin to
             [jobs] worker fibers. Chains share no pages and no
             dependency edges, so the fiber interleaving cannot change
             the recovered state. *)
          List.iter abort_undecided !resolved;
          let commit_keys =
            List.filter_map
              (fun (tid, attempt, _, decision) ->
                match decision with
                | Some true -> Some (tid, attempt)
                | Some false | None -> None)
              !resolved
          in
          let chains = Array.of_list (Wal.redo_chains wal commit_keys) in
          let nchains = Array.length chains in
          (* cross-check the partition on the real domain pool (pure
             wall-clock computation, invisible to simulated time): the
             chains must cover the commit-decided set exactly. Degrades
             to the serial short-circuit when this simulation itself
             runs as a pool task (sweeps, conformance harness). *)
          if nchains > 0 then begin
            let pool_jobs =
              if Par.Pool.inside_task () then 1
              else Stdlib.min jobs (Par.Pool.default_jobs ())
            in
            let pool = Par.Pool.create ~jobs:pool_jobs () in
            let sizes = Par.Pool.map_array pool List.length chains in
            assert (Array.fold_left ( + ) 0 sizes = List.length commit_keys)
          end;
          if nchains > 0 then begin
            let workers = Stdlib.min jobs nchains in
            let dones =
              Array.init workers (fun _ : unit Ivar.t -> Ivar.create ())
            in
            for w = 0 to workers - 1 do
              Engine.spawn t.eng (fun () ->
                  let c = ref w in
                  while !c < nchains do
                    let chain = !c in
                    let members = chains.(chain) in
                    let txns = List.length members in
                    emit t (fun () ->
                        Event.Recovery_chain_started { node = i; chain; txns });
                    let c0 = Engine.now t.eng in
                    List.iter
                      (fun (tid, attempt) ->
                        if Faults.Crashable.up f.node_state.(i) then
                          replay_commit ~tid ~attempt)
                      members;
                    if Faults.Crashable.up f.node_state.(i) then begin
                      let duration = Engine.now t.eng -. c0 in
                      t.recovery_chains <- t.recovery_chains + 1;
                      Metrics.record_chain t.metrics ~dur:duration;
                      emit t (fun () ->
                          Event.Recovery_chain_completed
                            { node = i; chain; txns; duration })
                    end;
                    c := !c + workers
                  done;
                  Ivar.fill dones.(w) ())
            done;
            Array.iter Ivar.read dones
          end
        end;
        Wal.append wal (Wal.Checkpoint { active = List.length doubts });
        (* the recovery checkpoint force queues on the same log disk as
           the forward path's forces; it joins the same latency
           histogram, so histogram counts conserve against [Wal.forces] *)
        let f0 = Engine.now t.eng in
        Wal.force wal;
        Metrics.record_log_force t.metrics ~dur:(Engine.now t.eng -. f0);
        if Faults.Crashable.up f.node_state.(i) then begin
          if corrupt then Wal.repair_deps wal;
          let dur = Engine.now t.eng -. t0 in
          t.recoveries <- t.recoveries + 1;
          t.recovery_time <- t.recovery_time +. dur;
          Metrics.record_recovery t.metrics ~dur;
          emit t (fun () ->
              Event.Recovery_completed
                { node = i; duration = dur; redone = !redone })
        end
      end)

and recover_node t f i =
  if not (Faults.Crashable.up f.node_state.(i)) then begin
    Faults.Crashable.recover f.node_state.(i);
    (match f.node_down_since.(i) with
    | Some since ->
        let d = Engine.now t.eng -. since in
        f.node_downtime.(i) <- f.node_downtime.(i) +. d;
        f.total_downtime <- f.total_downtime +. d;
        f.node_down_since.(i) <- None
    | None -> ());
    emit t (fun () -> Event.Node_recovered { node = Proc i });
    match t.wal with
    | Some wals -> spawn_recovery t f i wals.(i)
    | None -> ()
  end

(* A processing-node crash loses volatile state, including the WAL's
   un-forced tail. A resident cohort that has not yet voted is a
   casualty: with primary/backup replication on, if its write-set was
   delivered to a live backup and it is not already mid-prepare, a proxy
   fiber at the backup takes over its commit-protocol role (failover);
   otherwise the attempt is doomed and the cohort's CC footprint
   force-cleaned out of band, exactly as without replication. Prepared
   (voted) cohorts are in doubt: their durable prepare record and the
   termination protocol finish them after repair. *)
and crash_node t f i ~duration =
  if Faults.Crashable.up f.node_state.(i) then begin
    Faults.Crashable.crash f.node_state.(i);
    f.node_crashes <- f.node_crashes + 1;
    f.node_down_since.(i) <- Some (Engine.now t.eng);
    (match t.wal with
    | Some wals ->
        (* torn-tail fault: the crash not only drops the un-forced tail
           but tears it — the tail's dependency records are clipped and
           the next recovery must degrade to serial physical redo. One
           draw per crash (the tear only takes effect when the dropped
           tail is non-empty); zero draws when the mode is off, so
           existing plans replay unchanged. *)
        let torn =
          f.plan.Fault_plan.torn_tail > 0.
          && Rng.bool f.tear_rng ~p:f.plan.Fault_plan.torn_tail
        in
        Wal.on_crash ~torn wals.(i)
    | None -> ());
    emit t (fun () -> Event.Node_crashed { node = Proc i });
    let replicas = t.params.Params.durability.Params.replicas in
    let startup = t.params.Params.resources.Params.inst_per_startup in
    List.iter
      (fun (_, (rt : Messages.attempt_runtime)) ->
        let txn = rt.Messages.txn in
        if decision_of f txn = None then
          List.iter
            (fun orig ->
              if
                Int.equal (resident_node rt orig) i
                && not (Hashtbl.mem rt.Messages.voted_nodes orig)
              then begin
                let b = backup_of t orig in
                let cplan =
                  if
                    replicas > 0 && b <> orig
                    && Hashtbl.mem rt.Messages.shipped_nodes orig
                    && (not (Hashtbl.mem rt.Messages.preparing_nodes orig))
                    && (not (Hashtbl.mem rt.Messages.relocated orig))
                    && Faults.Crashable.up f.node_state.(b)
                  then cohort_plan_of txn orig
                  else None
                in
                match cplan with
                | Some cplan ->
                    (* failover: route the coordinator to the backup and
                       hand the (possibly in-flight) protocol messages to
                       a fresh mailbox owned by the proxy *)
                    Hashtbl.replace rt.Messages.relocated orig b;
                    let mb = Mailbox.create () in
                    Hashtbl.replace rt.Messages.cohort_mbs orig mb;
                    f.failovers <- f.failovers + 1;
                    emit t (fun () ->
                        Event.Cohort_resurrected
                          { tid = txn.Txn.tid; attempt = txn.Txn.attempt;
                            node = orig; backup = b });
                    Cpu.submit t.procs.(b).Node.cpu ~instructions:startup
                      (fun () ->
                        Engine.spawn t.eng (fun () ->
                            run_cohort ~proxy:true t rt cplan mb))
                | None ->
                    txn.Txn.doomed <- true;
                    if rt.Messages.doom_reason = None then
                      rt.Messages.doom_reason <- Some Txn.Crashed;
                    (Node.cc t.procs.(orig)).Cc_intf.cc_abort txn;
                    f.orphaned <- f.orphaned + 1;
                    emit t (fun () ->
                        Event.Txn_orphaned
                          { tid = txn.Txn.tid; attempt = txn.Txn.attempt;
                            node = orig })
              end)
            (loaded_nodes rt))
      (live_sorted t);
    ignore
      (Engine.schedule_after t.eng ~delay:duration (fun () ->
           recover_node t f i)
        : Engine.handle)
  end

let schedule_faults t f =
  List.iter
    (fun (c : Fault_plan.crash) ->
      ignore
        (Engine.schedule t.eng ~at:c.Fault_plan.at (fun () ->
             match c.Fault_plan.target with
             | Host -> crash_host t f ~duration:c.Fault_plan.duration
             | Proc i -> crash_node t f i ~duration:c.Fault_plan.duration)
          : Engine.handle))
    f.plan.Fault_plan.crashes;
  if f.plan.Fault_plan.crash_rate > 0. then
    Array.iteri
      (fun i rng ->
        let rec arm () =
          let gap =
            Rng.exponential rng ~mean:(1. /. f.plan.Fault_plan.crash_rate)
          in
          ignore
            (Engine.schedule_after t.eng ~delay:gap (fun () ->
                 if Faults.Crashable.up f.node_state.(i) then begin
                   let duration =
                     Rng.exponential rng ~mean:f.plan.Fault_plan.mean_repair
                   in
                   crash_node t f i ~duration
                 end;
                 arm ())
              : Engine.handle)
        in
        arm ())
      f.crash_rngs

(* ------------------------------------------------------------------ *)
(* Coordinator (runs inside the submitting terminal's process)         *)

let load_cohort t (rt : Messages.attempt_runtime) (cplan : Plan.cohort_plan) =
  let node_idx = cplan.Plan.node in
  let mb =
    (* a retransmitted load (lost first copy) reuses the mailbox *)
    match Hashtbl.find_opt rt.Messages.cohort_mbs node_idx with
    | Some mb -> mb
    | None ->
        let mb = Mailbox.create () in
        Hashtbl.replace rt.Messages.cohort_mbs node_idx mb;
        mb
  in
  emit t (fun () ->
      Event.Cohort_load
        {
          tid = rt.Messages.txn.Txn.tid;
          attempt = rt.Messages.txn.Txn.attempt;
          node = node_idx;
        });
  let node = t.procs.(node_idx) in
  let startup = t.params.Params.resources.Params.inst_per_startup in
  Net.send ~faulty:true t.net ~src:Host ~dst:(Proc node_idx) (fun () ->
      (* a duplicated load must not spawn a twin cohort *)
      if not (Hashtbl.mem rt.Messages.arrived_nodes node_idx) then begin
        Hashtbl.replace rt.Messages.arrived_nodes node_idx ();
        Cpu.submit node.Node.cpu ~instructions:startup (fun () ->
            Engine.spawn t.eng (fun () -> run_cohort t rt cplan mb))
      end)

(* Coordinator -> cohort send. The wire destination is resolved through
   the relocation table (a failed-over cohort's proxy lives at its
   backup), and the mailbox is looked up at delivery time — a failover
   racing a message in flight must deliver to the proxy's fresh mailbox,
   never to the dead primary fiber's. The CC footprint always lives at
   the cohort's original node's manager, even after failover. *)
let send_cohort t (rt : Messages.attempt_runtime) ~node_idx msg =
  let dst = resident_node rt node_idx in
  Net.send ~faulty:true t.net ~src:Host ~dst:(Proc dst) (fun () ->
      (match msg with
      | Messages.Do_abort ->
          (* unblock the cohort if it is stuck in a CC queue *)
          (Node.cc t.procs.(node_idx)).Cc_intf.cc_abort rt.Messages.txn
      | Messages.Do_prepare | Messages.Do_commit -> ());
      match Hashtbl.find_opt rt.Messages.cohort_mbs node_idx with
      | Some mb -> Mailbox.send mb msg
      | None -> ())

let pending_sorted pending =
  Hashtbl.fold (fun node () acc -> node :: acc) pending []
  |> List.sort Int.compare

(* Wait for one Work_done per node in [nodes]; an abort trigger
   interrupts. Records the node of each Work_done as it is processed, so
   that when the work phase completes, [last_work_node] identifies the
   cohort on its critical path (under parallel execution). Under faults,
   a timeout re-sends any load message whose delivery was never observed
   (bounded by the retry budget); cohorts that did arrive own the
   retransmission of their Work_done, so the coordinator waits for them
   at the capped timeout without charging its budget. *)
let await_work t (rt : Messages.attempt_runtime) ~nodes =
  let txn = rt.Messages.txn in
  let pending = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace pending n ()) nodes;
  let rec go ~round =
    if Hashtbl.length pending = 0 then `Done
    else
      match coord_recv t rt ~round with
      | Some (Messages.Work_done node) ->
          if Hashtbl.mem pending node then begin
            Hashtbl.remove pending node;
            rt.Messages.last_work_node <- node;
            emit t (fun () ->
                Event.Work_done
                  { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node });
            go ~round:1
          end
          else go ~round
      | Some (Messages.Cohort_aborted (_, reason)) -> `Abort reason
      | Some (Messages.Abort_request (tx, reason))
        when Txn.same_attempt tx txn ->
          `Abort reason
      | Some (Messages.Inquiry _) ->
          (* a cohort only inquires pre-prepare when its Cohort_aborted
             was lost and it is draining: treat as a peer abort *)
          `Abort Txn.Peer_abort
      | Some (Messages.Abort_request _ | Messages.Vote _ | Messages.Done_ack _)
        ->
          go ~round
      | None -> (
          match t.faults with
          | None -> assert false
          | Some f -> (
              note_timeout t f txn ~at_node:Host ~round;
              match rt.Messages.doom_reason with
              | Some reason -> `Abort reason
              | None ->
                  let missing_loads =
                    pending_sorted pending
                    |> List.filter (fun n ->
                           not (Hashtbl.mem rt.Messages.arrived_nodes n))
                  in
                  if missing_loads = [] then go ~round:(round + 1)
                  else if
                    Backoff.exhausted
                      ~max_retries:f.plan.Fault_plan.max_retries ~round
                  then `Abort Txn.Timed_out
                  else begin
                    List.iter
                      (fun n ->
                        f.retries <- f.retries + 1;
                        Option.iter (load_cohort t rt) (cohort_plan_of txn n))
                      missing_loads;
                    go ~round:(round + 1)
                  end))
  in
  go ~round:1

(* Collect one Done_ack per node in [nodes]. Under faults the decision
   is re-sent on timeout; the commit decision is logged and must reach
   every cohort, so its retries are unbounded ([bounded:false]), while
   the abort path gives up after the retry budget and reports the
   unreachable cohorts for out-of-band cleanup. *)
let await_acks t (rt : Messages.attempt_runtime) ~nodes ~decision ~bounded =
  let txn = rt.Messages.txn in
  let pending = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace pending n ()) nodes;
  let rec go ~round =
    if Hashtbl.length pending = 0 then `Done
    else
      match coord_recv t rt ~round with
      | Some (Messages.Done_ack node) ->
          if Hashtbl.mem pending node then begin
            Hashtbl.remove pending node;
            go ~round:1
          end
          else go ~round
      | Some (Messages.Inquiry (_, node)) ->
          if Hashtbl.mem pending node then
            send_cohort t rt ~node_idx:node decision;
          go ~round
      | Some
          ( Messages.Work_done _ | Messages.Cohort_aborted _ | Messages.Vote _
          | Messages.Abort_request _ ) ->
          go ~round
      | None -> (
          match t.faults with
          | None -> assert false
          | Some f ->
              note_timeout t f txn ~at_node:Host ~round;
              if
                bounded
                && Backoff.exhausted ~max_retries:f.plan.Fault_plan.max_retries
                     ~round
              then `Orphaned (pending_sorted pending)
              else begin
                List.iter
                  (fun n ->
                    f.retries <- f.retries + 1;
                    send_cohort t rt ~node_idx:n decision)
                  (pending_sorted pending);
                go ~round:(round + 1)
              end)
  in
  go ~round:1

(* Broadcast the abort decision, collect acknowledgements, and return
   the abort reason. The decision is logged before any phase-two send;
   cohorts that stay unreachable past the retry budget are force-cleaned
   out of band (their locks released via [cc_abort]) and counted as
   orphaned — the late inquiry they eventually make is answered from the
   decision log. *)
let abort_attempt t (rt : Messages.attempt_runtime) reason =
  let txn = rt.Messages.txn in
  txn.Txn.phase <- Txn.Decided_abort;
  txn.Txn.doomed <- true;
  log_decision t txn false;
  emit t (fun () ->
      Event.Decision
        { tid = txn.Txn.tid; attempt = txn.Txn.attempt; commit = false });
  let loaded = loaded_nodes rt in
  List.iter (fun node_idx -> send_cohort t rt ~node_idx Messages.Do_abort) loaded;
  (match await_acks t rt ~nodes:loaded ~decision:Messages.Do_abort ~bounded:true with
  | `Done -> ()
  | `Orphaned missing -> (
      match t.faults with
      | None -> ()
      | Some f ->
          List.iter
            (fun n ->
              (Node.cc t.procs.(n)).Cc_intf.cc_abort txn;
              f.orphaned <- f.orphaned + 1;
              emit t (fun () ->
                  Event.Txn_orphaned
                    { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node = n }))
            missing));
  txn.Txn.phase <- Txn.Finished;
  reason

(* The commit decision is durable before phase two begins; its delivery
   is retried (with capped backoff) until every cohort acknowledges. *)
let commit_attempt t (rt : Messages.attempt_runtime) =
  let txn = rt.Messages.txn in
  let cohorts = txn.Txn.plan.Plan.cohorts in
  txn.Txn.phase <- Txn.Decided_commit;
  log_decision t txn true;
  emit t (fun () ->
      Event.Decision
        { tid = txn.Txn.tid; attempt = txn.Txn.attempt; commit = true });
  List.iter
    (fun (c : Plan.cohort_plan) ->
      send_cohort t rt ~node_idx:c.Plan.node Messages.Do_commit)
    cohorts;
  (match
     await_acks t rt
       ~nodes:(List.map (fun (c : Plan.cohort_plan) -> c.Plan.node) cohorts)
       ~decision:Messages.Do_commit ~bounded:false
   with
  | `Done -> ()
  | `Orphaned _ -> assert false (* unbounded retries never orphan *));
  (* durability coverage obligation: every updating cohort's node (its
     backup if failed over) must hold durable evidence of this commit at
     end of run — checked by [lost_commits] *)
  (match t.wal with
  | Some _ ->
      let updaters =
        List.filter_map
          (fun (c : Plan.cohort_plan) ->
            if
              c.Plan.apply_ops <> []
              || List.exists
                   (fun (op : Plan.page_op) -> op.Plan.update)
                   c.Plan.ops
            then Some (resident_node rt c.Plan.node)
            else None)
          cohorts
      in
      t.committed_cov <-
        (txn.Txn.tid, txn.Txn.attempt, updaters) :: t.committed_cov
  | None -> ());
  txn.Txn.phase <- Txn.Finished

let run_two_phase_commit t (rt : Messages.attempt_runtime) =
  let txn = rt.Messages.txn in
  let cohorts = txn.Txn.plan.Plan.cohorts in
  txn.Txn.phase <- Txn.Voting;
  txn.Txn.commit_ts <-
    Some (Timestamp.Clock.make t.clock ~time:(Engine.now t.eng));
  emit t (fun () ->
      Event.Prepare { tid = txn.Txn.tid; attempt = txn.Txn.attempt });
  List.iter
    (fun (c : Plan.cohort_plan) ->
      send_cohort t rt ~node_idx:c.Plan.node Messages.Do_prepare)
    cohorts;
  let pending = Hashtbl.create 8 in
  List.iter
    (fun (c : Plan.cohort_plan) -> Hashtbl.replace pending c.Plan.node ())
    cohorts;
  let rec collect_votes ~round =
    if Hashtbl.length pending = 0 then `All_yes
    else
      match coord_recv t rt ~round with
      | Some (Messages.Vote (node, yes)) ->
          if Hashtbl.mem pending node then begin
            Hashtbl.remove pending node;
            if yes then rt.Messages.last_vote_node <- node;
            emit t (fun () ->
                Event.Vote
                  { tid = txn.Txn.tid; attempt = txn.Txn.attempt; node; yes });
            if yes then collect_votes ~round:1 else `Abort Txn.Cert_failed
          end
          else collect_votes ~round
      | Some (Messages.Cohort_aborted (_, reason)) -> `Abort reason
      | Some (Messages.Abort_request (tx, reason))
        when Txn.same_attempt tx txn ->
          `Abort reason
      | Some (Messages.Inquiry (_, node)) ->
          (* an in-doubt cohort whose vote we may have missed: re-prompt
             it (it re-votes from memory). No round reset — a draining
             cohort's inquiries must not starve the timeout. *)
          if Hashtbl.mem pending node then
            send_cohort t rt ~node_idx:node Messages.Do_prepare;
          collect_votes ~round
      | Some
          (Messages.Abort_request _ | Messages.Work_done _ | Messages.Done_ack _)
        ->
          collect_votes ~round
      | None -> (
          match t.faults with
          | None -> assert false
          | Some f -> (
              note_timeout t f txn ~at_node:Host ~round;
              match rt.Messages.doom_reason with
              | Some reason -> `Abort reason
              | None ->
                  if
                    Backoff.exhausted ~max_retries:f.plan.Fault_plan.max_retries
                      ~round
                  then `Abort Txn.Timed_out
                  else begin
                    List.iter
                      (fun n ->
                        f.retries <- f.retries + 1;
                        send_cohort t rt ~node_idx:n Messages.Do_prepare)
                      (pending_sorted pending);
                    collect_votes ~round:(round + 1)
                  end))
  in
  match collect_votes ~round:1 with
  | `All_yes ->
      commit_attempt t rt;
      `Committed
  | `Abort reason -> `Aborted (abort_attempt t rt reason)

let run_attempt t (txn : Txn.t) =
  let rt = Messages.make_runtime txn in
  Hashtbl.replace t.live txn.Txn.tid rt;
  Fun.protect
    ~finally:(fun () ->
      match Hashtbl.find_opt t.live txn.Txn.tid with
      | Some cur when cur == rt -> Hashtbl.remove t.live txn.Txn.tid
      | Some _ | None -> ())
    (fun () ->
      let t_begin = Engine.now t.eng in
      emit t (fun () ->
          Event.Attempt_start { tid = txn.Txn.tid; attempt = txn.Txn.attempt });
      (* coordinator process startup at the host *)
      Cpu.consume t.host.Node.cpu
        ~instructions:t.params.Params.resources.Params.inst_per_startup;
      let t_setup_end = Engine.now t.eng in
      emit t (fun () ->
          Event.Setup_done { tid = txn.Txn.tid; attempt = txn.Txn.attempt });
      let cohorts = txn.Txn.plan.Plan.cohorts in
      let phase1 =
        match t.params.Params.workload.Params.exec_pattern with
        | Params.Parallel ->
            List.iter (load_cohort t rt) cohorts;
            await_work t rt
              ~nodes:(List.map (fun (c : Plan.cohort_plan) -> c.Plan.node) cohorts)
        | Params.Sequential ->
            let rec go = function
              | [] -> `Done
              | c :: rest -> (
                  load_cohort t rt c;
                  match await_work t rt ~nodes:[ c.Plan.node ] with
                  | `Done -> go rest
                  | `Abort reason -> `Abort reason)
            in
            go cohorts
      in
      match phase1 with
      | `Abort reason -> Aborted (abort_attempt t rt reason)
      | `Done -> (
          let t_work_end = Engine.now t.eng in
          match run_two_phase_commit t rt with
          | `Aborted reason -> Aborted reason
          | `Committed ->
              let t_end = Engine.now t.eng in
              (* Work-phase critical path: the cohort whose Work_done
                 arrived last under parallel execution; the sum over all
                 cohorts (in node order, for float determinism) under
                 sequential execution. *)
              let blocked, disk, cpu =
                match t.params.Params.workload.Params.exec_pattern with
                | Params.Parallel -> (
                    match
                      Hashtbl.find_opt rt.Messages.usage
                        rt.Messages.last_work_node
                    with
                    | Some u ->
                        ( u.Messages.u_blocked,
                          u.Messages.u_disk,
                          u.Messages.u_cpu )
                    | None -> (0., 0., 0.))
                | Params.Sequential ->
                    Hashtbl.fold
                      (fun node u acc -> (node, u) :: acc)
                      rt.Messages.usage []
                    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
                    |> List.fold_left
                         (fun (b, d, c) (_, u) ->
                           ( b +. u.Messages.u_blocked,
                             d +. u.Messages.u_disk,
                             c +. u.Messages.u_cpu ))
                         (0., 0., 0.)
              in
              (* the decision-gating log write: the prepare force of the
                 last accepted yes vote's cohort *)
              let log =
                match
                  Hashtbl.find_opt rt.Messages.usage rt.Messages.last_vote_node
                with
                | Some u -> u.Messages.u_log
                | None -> 0.
              in
              Committed
                (Decomp.assemble
                   ~restart:(t_begin -. txn.Txn.origin_time)
                   ~setup:(t_setup_end -. t_begin)
                   ~exec:(t_work_end -. t_setup_end)
                   ~blocked ~disk ~cpu ~log
                   ~commit:(t_end -. t_work_end))))

(* ------------------------------------------------------------------ *)
(* Terminals                                                           *)

let fresh_tid t =
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  tid

let make_attempt t ~tid ~attempt ~origin_time ~startup_ts ~plan =
  let now = Engine.now t.eng in
  {
    Txn.tid;
    attempt;
    origin_time;
    attempt_time = now;
    startup_ts;
    cc_ts =
      (if attempt = 1 then startup_ts else Timestamp.Clock.make t.clock ~time:now);
    commit_ts = None;
    plan;
    phase = Txn.Working;
    doomed = false;
  }

(* Terminals live at the host: while it is down no new transaction (or
   restart) can be admitted. The wait is a loop because the host may
   crash again before the recovery the terminal slept towards. *)
let rec await_host_up t =
  match t.faults with
  | None -> ()
  | Some f ->
      if not (Faults.Crashable.up f.host_state) then begin
        Engine.wait (Float.max 1e-9 (f.host_down_until -. Engine.now t.eng));
        await_host_up t
      end

let plan_pages (plan : Plan.t) =
  List.fold_left
    (fun acc (c : Plan.cohort_plan) -> acc + List.length c.Plan.ops)
    0 plan.Plan.cohorts

let run_terminal t ~index =
  Engine.spawn t.eng ~name:(Printf.sprintf "terminal-%d" index) (fun () ->
      let rec session () =
        let think = Workload.think_time t.workload in
        if think > 0. then
          Engine.wait (Rng.exponential t.think_rng ~mean:think);
        await_host_up t;
        let plan = Workload.generate_plan t.workload ~terminal:index in
        let origin_time = Engine.now t.eng in
        Metrics.record_submit t.metrics;
        let tid = fresh_tid t in
        emit t (fun () -> Event.Submit { tid });
        let startup_ts = Timestamp.Clock.make t.clock ~time:origin_time in
        let rec attempt k plan =
          let txn = make_attempt t ~tid ~attempt:k ~origin_time ~startup_ts ~plan in
          let outcome = run_attempt t txn in
          Metrics.record_completion t.metrics;
          match outcome with
          | Committed decomp ->
              Option.iter (fun a -> Audit.record_commit a txn) t.audit;
              tracef t ~tag:"commit" (fun () ->
                  Format.asprintf "%a after %.3fs" Txn.pp txn
                    (Engine.now t.eng -. origin_time));
              emit t (fun () ->
                  Event.Committed
                    {
                      tid;
                      attempt = k;
                      response = Engine.now t.eng -. origin_time;
                    });
              Metrics.record_commit t.metrics ~origin_time
                ~pages:(plan_pages txn.Txn.plan) ~decomp
          | Aborted reason ->
              Option.iter (fun a -> Audit.record_abort a txn) t.audit;
              tracef t ~tag:"abort" (fun () ->
                  Format.asprintf "%a: %s, restarting" Txn.pp txn
                    (Txn.abort_reason_name reason));
              emit t (fun () -> Event.Aborted { tid; attempt = k; reason });
              Metrics.record_abort t.metrics ~reason;
              let delay = Metrics.restart_delay t.metrics in
              emit t (fun () ->
                  Event.Restart_wait { tid; attempt = k; delay });
              Engine.wait delay;
              await_host_up t;
              let plan =
                if t.params.Params.run.Params.fresh_restart_plan then
                  Workload.generate_plan t.workload ~terminal:index
                else plan
              in
              attempt (k + 1) plan
        in
        attempt 1 plan;
        session ()
      in
      session ())

(* ------------------------------------------------------------------ *)
(* Open-loop arrivals and admission control                            *)

let mpl_free a = a.spec.Arrival.mpl = 0 || a.in_flight < a.spec.Arrival.mpl

(* Lazy deadline expiry: overstayed entries are dropped from the queue
   head when we next look at it. Entries that would have expired but are
   never reached before the run ends still count as queued — the
   conservation identity absorbs them in still-queued. *)
let expire_stale t a =
  let deadline = a.spec.Arrival.deadline in
  if deadline > 0. then begin
    let now = Engine.now t.eng in
    let dropped = ref false in
    let rec loop () =
      match Queue.peek_opt a.queue with
      | Some p when now -. p.enqueued_at > deadline ->
          ignore (Queue.pop a.queue : pending);
          Metrics.record_expired t.metrics;
          dropped := true;
          loop ()
      | Some _ | None -> ()
    in
    loop ();
    if !dropped then Metrics.set_queue_depth t.metrics (Queue.length a.queue)
  end

(* Dispatch one admitted arrival: the open-loop analogue of a terminal's
   inner attempt loop. The one behavioural difference is the restart
   wait: closed-loop restarts sleep one observed mean response time,
   which couples restart pressure to the very congestion admission
   control is trying to relieve; open-loop restarts back off on the
   spec's capped-exponential schedule instead. *)
let rec dispatch t a (p : pending) =
  a.in_flight <- a.in_flight + 1;
  Metrics.record_admitted t.metrics;
  Metrics.record_queue_wait t.metrics ~dur:(Engine.now t.eng -. p.enqueued_at);
  Engine.spawn t.eng ~name:(Printf.sprintf "arrival-%d" p.seq) (fun () ->
      await_host_up t;
      let origin_time = Engine.now t.eng in
      Metrics.record_submit t.metrics;
      let tid = fresh_tid t in
      emit t (fun () -> Event.Submit { tid });
      let startup_ts = Timestamp.Clock.make t.clock ~time:origin_time in
      let rec attempt k plan =
        let txn = make_attempt t ~tid ~attempt:k ~origin_time ~startup_ts ~plan in
        let outcome = run_attempt t txn in
        Metrics.record_completion t.metrics;
        match outcome with
        | Committed decomp ->
            Option.iter (fun au -> Audit.record_commit au txn) t.audit;
            tracef t ~tag:"commit" (fun () ->
                Format.asprintf "%a after %.3fs" Txn.pp txn
                  (Engine.now t.eng -. origin_time));
            emit t (fun () ->
                Event.Committed
                  {
                    tid;
                    attempt = k;
                    response = Engine.now t.eng -. origin_time;
                  });
            Metrics.record_commit t.metrics ~origin_time
              ~pages:(plan_pages txn.Txn.plan) ~decomp
        | Aborted reason ->
            Option.iter (fun au -> Audit.record_abort au txn) t.audit;
            tracef t ~tag:"abort" (fun () ->
                Format.asprintf "%a: %s, restarting" Txn.pp txn
                  (Txn.abort_reason_name reason));
            emit t (fun () -> Event.Aborted { tid; attempt = k; reason });
            Metrics.record_abort t.metrics ~reason;
            let delay =
              Backoff.delay ~base:a.spec.Arrival.retry_base
                ~cap:a.spec.Arrival.retry_cap ~round:k
            in
            emit t (fun () -> Event.Restart_wait { tid; attempt = k; delay });
            Engine.wait delay;
            await_host_up t;
            (* [Params.validate] rejects fresh_restart_plan with open-loop
               arrivals, so the retried plan is always the original. *)
            attempt (k + 1) plan
      in
      attempt 1 p.pending_plan;
      a.in_flight <- a.in_flight - 1;
      drain t a)

(* A completion freed an MPL slot (or expiry shortened the queue): move
   queued work into the system while the gate allows. *)
and drain t a =
  expire_stale t a;
  let continue = ref true in
  while !continue do
    if (not (Queue.is_empty a.queue)) && mpl_free a then begin
      let p = Queue.pop a.queue in
      Metrics.set_queue_depth t.metrics (Queue.length a.queue);
      dispatch t a p
    end
    else continue := false
  done

(* Admission: dispatch when the MPL gate is open and nothing waits ahead
   of us; queue while there is room; shed per policy at capacity. *)
let admit t a p =
  expire_stale t a;
  if Queue.is_empty a.queue && mpl_free a then dispatch t a p
  else if Queue.length a.queue < a.spec.Arrival.queue_cap then begin
    Queue.push p a.queue;
    Metrics.set_queue_depth t.metrics (Queue.length a.queue)
  end
  else
    match a.spec.Arrival.shed with
    | Arrival.Reject_newest -> Metrics.record_shed t.metrics
    | Arrival.Reject_oldest ->
        (* head out, arrival in: depth is unchanged *)
        ignore (Queue.pop a.queue : pending);
        Metrics.record_shed t.metrics;
        Queue.push p a.queue

(* The arrival pump: one fiber sampling the rate process and pushing
   arrivals through admission. Plans are drawn at arrival time from the
   per-terminal workload streams, round-robin over [num_terminals], so
   the offered plan sequence depends only on the seed and the arrival
   spec — never on the CC algorithm or on admission outcomes
   (cross-algorithm workload agreement, exactly as in the closed loop). *)
let run_arrival_pump t a =
  let num_terminals = t.params.Params.workload.Params.num_terminals in
  let run = t.params.Params.run in
  let horizon = run.Params.warmup +. run.Params.measure in
  Engine.spawn t.eng ~name:"arrival-pump" (fun () ->
      let rec pump () =
        let now = Engine.now t.eng in
        match Arrival.next_arrival a.spec a.arr_rng ~now ~horizon with
        | None -> ()
        | Some at ->
            if at > now then Engine.wait (at -. now);
            Metrics.record_offered t.metrics;
            let seq = a.next_seq in
            a.next_seq <- seq + 1;
            let plan =
              Workload.generate_plan t.workload ~terminal:(seq mod num_terminals)
            in
            admit t a
              { seq; enqueued_at = Engine.now t.eng; pending_plan = plan };
            pump ()
      in
      pump ())

(* ------------------------------------------------------------------ *)
(* Run control and result collection                                   *)

let reset_observation_windows t =
  Metrics.begin_window t.metrics;
  Node.reset_windows t.host;
  Array.iter Node.reset_windows t.procs;
  (match t.wal with
  | Some wals -> Array.iter Wal.reset_window wals
  | None -> ());
  Array.iter
    (fun node -> Stats.Tally.reset (Node.cc node).Cc_intf.cc_blocking)
    t.procs;
  (* availability is measured over the observation window: discard
     warm-up downtime and clip any open down-spell to the window start *)
  Option.iter
    (fun f ->
      let now = Engine.now t.eng in
      Array.fill f.node_downtime 0 (Array.length f.node_downtime) 0.;
      f.host_downtime <- 0.;
      Array.iteri
        (fun i since -> if since <> None then f.node_down_since.(i) <- Some now)
        f.node_down_since;
      if f.host_down_since <> None then f.host_down_since <- Some now)
    t.faults

let mean_over array f =
  if Array.length array = 0 then 0.
  else Array.fold_left (fun acc x -> acc +. f x) 0. array
       /. float_of_int (Array.length array)

(* Fraction of node-seconds (host + proc nodes) spent up over the
   observation window. *)
let availability t =
  match t.faults with
  | None -> 1.
  | Some f ->
      let window = Metrics.window_duration t.metrics in
      if window <= 0. then 1.
      else begin
        let now = Engine.now t.eng in
        let open_since = function Some s -> now -. s | None -> 0. in
        let down = ref (f.host_downtime +. open_since f.host_down_since) in
        Array.iteri
          (fun i acc -> down := !down +. acc +. open_since f.node_down_since.(i))
          f.node_downtime;
        let nodes = float_of_int (Array.length f.node_state + 1) in
        1. -. Float.min 1. (Float.max 0. (!down /. (nodes *. window)))
      end

(* Grace period after which an open in-doubt interval counts as overdue
   (i.e. the termination protocol failed): the full retry envelope, a
   generous allowance for repeated inquiry loss, and any downtime — a
   cohort at a crashed node legitimately stays in doubt until repair. *)
let indoubt_grace t f =
  let p = f.plan in
  let open_downtime =
    let now = Engine.now t.eng in
    let open_since = function Some s -> now -. s | None -> 0. in
    Array.fold_left
      (fun acc s -> acc +. open_since s)
      (open_since f.host_down_since) f.node_down_since
  in
  (* jittered timeouts stretch each round by up to the jitter fraction *)
  Backoff.total ~base:p.Fault_plan.timeout ~cap:p.Fault_plan.timeout_cap
    ~max_retries:p.Fault_plan.max_retries
  *. (1. +. p.Fault_plan.timeout_jitter)
  +. (20. *. p.Fault_plan.timeout_cap)
  +. f.total_downtime +. open_downtime

(* The capstone durability check: a committed transaction is covered at
   an updating cohort's node when that node's WAL digest shows the
   installs done, a durable commit record, or a durable prepare record
   together with the commit decision in the (stable) host decision log.
   An untracked entry means the log never saw an update footprint there
   or a checkpoint pruned a fully decided-and-installed one — nothing to
   lose either way. Counts committed transactions missing durable
   evidence at one or more nodes; must be zero. *)
let lost_commits t =
  match t.wal with
  | None -> 0
  | Some wals ->
      let decided_commit tid attempt =
        match t.faults with
        | None -> true
        | Some f -> (
            match Hashtbl.find_opt f.decisions (tid, attempt) with
            | Some c -> c
            | None -> false)
      in
      List.fold_left
        (fun acc (tid, attempt, nodes) ->
          let covered node =
            let w = wals.(node) in
            (not (Wal.tracked w ~tid ~attempt))
            || Wal.installed w ~tid ~attempt
            || Wal.committed_durable w ~tid ~attempt
            || (Wal.prepared_durable w ~tid ~attempt
               && decided_commit tid attempt)
          in
          if List.for_all covered nodes then acc else acc + 1)
        0 t.committed_cov

let collect_result t ~wall_seconds =
  let blocking_total, blocking_count =
    Array.fold_left
      (fun (tot, cnt) node ->
        let tally = (Node.cc node).Cc_intf.cc_blocking in
        (tot +. Stats.Tally.total tally, cnt + Stats.Tally.count tally))
      (0., 0) t.procs
  in
  {
    Sim_result.algorithm = t.params.Params.cc.Params.algorithm;
    params = t.params;
    throughput = Metrics.throughput t.metrics;
    mean_response = Metrics.mean_response t.metrics;
    response_ci95 = Metrics.response_ci95 t.metrics;
    response_p50 = Metrics.response_percentile t.metrics 0.50;
    response_p95 = Metrics.response_percentile t.metrics 0.95;
    response_p99 = Metrics.response_quantile t.metrics 0.99;
    response_p999 = Metrics.response_quantile t.metrics 0.999;
    commits = Metrics.commits t.metrics;
    aborts = Metrics.aborts t.metrics;
    completions = Metrics.completions t.metrics;
    abort_ratio = Metrics.abort_ratio t.metrics;
    abort_reasons = Metrics.abort_reason_counts t.metrics;
    mean_blocking =
      (if blocking_count = 0 then 0.
       else blocking_total /. float_of_int blocking_count);
    blocked_requests = blocking_count;
    proc_cpu_util = mean_over t.procs Node.cpu_utilization;
    proc_disk_util = mean_over t.procs Node.disk_utilization;
    host_cpu_util = Node.cpu_utilization t.host;
    mean_active = Metrics.mean_active t.metrics;
    messages = Net.messages_sent t.net;
    availability = availability t;
    goodput = Metrics.goodput t.metrics;
    timeouts = (match t.faults with None -> 0 | Some f -> f.timeouts);
    retries = (match t.faults with None -> 0 | Some f -> f.retries);
    msgs_dropped = (match t.faults with None -> 0 | Some f -> f.msgs_dropped);
    msgs_duplicated =
      (match t.faults with None -> 0 | Some f -> f.msgs_duplicated);
    node_crashes = (match t.faults with None -> 0 | Some f -> f.node_crashes);
    orphaned = (match t.faults with None -> 0 | Some f -> f.orphaned);
    log_forces =
      (match t.wal with
      | None -> 0
      | Some wals -> Array.fold_left (fun acc w -> acc + Wal.forces w) 0 wals);
    log_disk_util =
      (match t.wal with
      | None -> 0.
      | Some wals -> mean_over wals Wal.utilization);
    recoveries = t.recoveries;
    mean_recovery_time =
      (if t.recoveries = 0 then 0.
       else t.recovery_time /. float_of_int t.recoveries);
    recovery_chains = t.recovery_chains;
    recovery_degraded = t.recovery_degraded;
    wal_torn_tails =
      (match t.wal with
      | None -> 0
      | Some wals ->
          Array.fold_left (fun acc w -> acc + Wal.torn_tails w) 0 wals);
    failovers = (match t.faults with None -> 0 | Some f -> f.failovers);
    lost_commits = lost_commits t;
    indoubt_mean = Metrics.indoubt_mean t.metrics;
    indoubt_open_at_end = Metrics.indoubt_open t.metrics;
    indoubt_overdue_at_end =
      (match t.faults with
      | None -> 0
      | Some f -> Metrics.indoubt_overdue t.metrics ~grace:(indoubt_grace t f));
    decomp = Metrics.decomp_mean t.metrics;
    offered = Metrics.offered t.metrics;
    admitted = Metrics.admitted t.metrics;
    shed = Metrics.shed t.metrics;
    expired = Metrics.expired t.metrics;
    still_queued =
      (match t.arrivals with None -> 0 | Some a -> Queue.length a.queue);
    queue_depth_max = Metrics.queue_depth_max t.metrics;
    queue_depth_mean = Metrics.mean_queue_depth t.metrics;
    sim_events = Engine.events_processed t.eng;
    sim_end = Engine.now t.eng;
    wall_seconds;
    events_per_sec =
      (if wall_seconds > 0. then
         float_of_int (Engine.events_processed t.eng) /. wall_seconds
       else 0.);
    top_heap_words = (Gc.quick_stat ()).Gc.top_heap_words;
  }

(** Typed metric registry snapshot: windowed counters and rates, per-node
    utilization and queue-depth rollups (the time-series sampler's
    quantities as end-of-run aggregates), and — when histograms are
    enabled — the tail-latency histogram families for response time,
    every {!Decomp} component, 2PC in-doubt duration, WAL force latency,
    and recovery time. Build after {!execute}; serialize with
    {!Ddbm_model.Metric.to_prometheus} / {!Ddbm_model.Metric.to_json}. *)
let registry t : Metric.t =
  let m = t.metrics in
  let ic name help v = Metric.counter ~name ~help (float_of_int v) in
  let g name help v = Metric.gauge ~name ~help v in
  let per_node ~name ~help get =
    Metric.family ~name ~help ~kind:Metric.Gauge
      (List.init (Array.length t.procs) (fun i ->
           Metric.sample
             ~labels:[ ("node", string_of_int i) ]
             (Metric.V (get t.procs.(i)))))
  in
  let counters =
    [
      ic "ddbm_commits_total" "Committed transactions in the window"
        (Metrics.commits m);
      ic "ddbm_aborts_total" "Aborted attempts in the window"
        (Metrics.aborts m);
      ic "ddbm_completions_total"
        "Attempt completions in the window (commits + aborts)"
        (Metrics.completions m);
      ic "ddbm_messages_total" "Messages sent" (Net.messages_sent t.net);
      ic "ddbm_log_forces_total" "Completed WAL forces across all nodes"
        (match t.wal with
        | None -> 0
        | Some wals -> Array.fold_left (fun acc w -> acc + Wal.forces w) 0 wals);
      ic "ddbm_recoveries_total" "Completed crash-recovery passes"
        t.recoveries;
      ic "ddbm_recovery_chains_total"
        "Dependency chains replayed by chain-parallel recovery"
        t.recovery_chains;
      ic "ddbm_recovery_degraded_total"
        "Chain-parallel recovery passes degraded to serial physical redo"
        t.recovery_degraded;
      ic "ddbm_wal_torn_tails_total"
        "Crashes that tore the WAL's un-forced tail"
        (match t.wal with
        | None -> 0
        | Some wals ->
            Array.fold_left (fun acc w -> acc + Wal.torn_tails w) 0 wals);
      ic "ddbm_node_crashes_total" "Crash events (host and processing nodes)"
        (match t.faults with None -> 0 | Some f -> f.node_crashes);
      ic "ddbm_failovers_total"
        "Cohorts resurrected at their backup after a primary crash"
        (match t.faults with None -> 0 | Some f -> f.failovers);
      ic "ddbm_sim_events_total" "Simulation events processed"
        (Engine.events_processed t.eng);
    ]
  in
  let gauges =
    [
      g "ddbm_throughput_tps"
        "Committed transactions per second over the window"
        (Metrics.throughput m);
      g "ddbm_goodput_pages_per_second"
        "Committed page accesses per second over the window"
        (Metrics.goodput m);
      g "ddbm_abort_ratio" "Aborts per commit" (Metrics.abort_ratio m);
      g "ddbm_mean_active" "Time-average in-flight transactions"
        (Metrics.mean_active m);
      g "ddbm_availability" "Fraction of node-seconds up over the window"
        (availability t);
      g "ddbm_host_cpu_utilization" "Host CPU utilization over the window"
        (Node.cpu_utilization t.host);
      g "ddbm_log_disk_utilization"
        "Mean log-disk utilization over the window (0 without durability)"
        (match t.wal with
        | None -> 0.
        | Some wals -> mean_over wals Wal.utilization);
      g "ddbm_indoubt_open" "Cohorts still awaiting a 2PC decision"
        (float_of_int (Metrics.indoubt_open m));
      g "ddbm_mttr_seconds"
        "Mean completed crash-recovery duration (0 without recoveries)"
        (if t.recoveries = 0 then 0.
         else t.recovery_time /. float_of_int t.recoveries);
      g "ddbm_window_seconds" "Measurement window duration"
        (Metrics.window_duration m);
    ]
  in
  let rollups =
    [
      per_node ~name:"ddbm_node_cpu_utilization"
        ~help:"Per-node CPU utilization over the window" Node.cpu_utilization;
      per_node ~name:"ddbm_node_disk_utilization"
        ~help:"Per-node mean disk utilization over the window"
        Node.disk_utilization;
      per_node ~name:"ddbm_node_cpu_queue"
        ~help:"Instantaneous processor-sharing CPU load (jobs in service)"
        (fun node -> float_of_int (Cpu.ps_load node.Node.cpu));
      per_node ~name:"ddbm_node_disk_queue"
        ~help:
          "Instantaneous disk operations waiting or in service, summed \
           over the node's disks"
        (fun node -> float_of_int (Node.disk_queue node));
    ]
  in
  let histograms =
    if not (Metrics.quantiles_enabled m) then []
    else
      [
        Metric.histogram ~name:"ddbm_response_seconds"
          ~help:"Committed-transaction response time"
          (Metrics.response_hist m);
        Metric.family ~name:"ddbm_response_component_seconds"
          ~help:
            "Per-transaction response-time decomposition components \
             (additive; see Decomp)"
          ~kind:Metric.Histogram
          (List.map
             (fun (name, h) ->
               Metric.sample ~labels:[ ("component", name) ] (Metric.H h))
             (Metrics.component_hists m));
        Metric.histogram ~name:"ddbm_indoubt_seconds"
          ~help:"Closed 2PC in-doubt intervals (yes vote to decision)"
          (Metrics.indoubt_hist m);
        Metric.histogram ~name:"ddbm_log_force_seconds"
          ~help:"WAL force latency" (Metrics.log_force_hist m);
        Metric.histogram ~name:"ddbm_recovery_seconds"
          ~help:"Crash-recovery pass duration" (Metrics.recovery_hist m);
        Metric.histogram ~name:"ddbm_recovery_chain_seconds"
          ~help:"Per-chain redo replay duration (chain-parallel recovery)"
          (Metrics.chain_hist m);
      ]
  in
  (* Overload telemetry only exists on an open-loop run, so closed-loop
     expositions are byte-identical to builds without the subsystem. *)
  let overload =
    match t.arrivals with
    | None -> []
    | Some a ->
        [
          ic "ddbm_offered_total" "Arrivals generated by the rate process"
            (Metrics.offered m);
          ic "ddbm_admitted_total" "Arrivals dispatched into the system"
            (Metrics.admitted m);
          ic "ddbm_shed_total" "Arrivals rejected at a full admission queue"
            (Metrics.shed m);
          ic "ddbm_expired_total"
            "Queued arrivals dropped for overstaying the deadline"
            (Metrics.expired m);
          g "ddbm_admission_queue_depth" "Instantaneous admission-queue depth"
            (float_of_int (Queue.length a.queue));
          g "ddbm_admission_queue_depth_mean"
            "Time-average admission-queue depth over the window"
            (Metrics.mean_queue_depth m);
          g "ddbm_admission_queue_depth_max"
            "Max admission-queue depth over the window"
            (float_of_int (Metrics.queue_depth_max m));
        ]
        @
        if not (Metrics.quantiles_enabled m) then []
        else
          [
            Metric.histogram ~name:"ddbm_admission_queue_wait_seconds"
              ~help:"Admission-queue wait of dispatched arrivals"
              (Metrics.queue_wait_hist m);
          ]
  in
  counters @ gauges @ rollups @ histograms @ overload

(** Attach an event trace (before {!execute}). *)
let enable_trace ?(capacity = 10_000) t =
  let trace = Trace.create t.eng ~capacity in
  t.trace <- Some trace;
  trace

(** Attach (or retrieve) the typed-event tracer (before {!execute}).
    Idempotent: the first call creates the tracer and wires the network
    and Snoop observers; later calls return the same tracer, so several
    sinks can be attached. Without this call the machine emits no typed
    events and pays no tracing cost. *)
let enable_events t =
  match t.events with
  | Some tracer -> tracer
  | None ->
      let tracer = Tracer.create () in
      t.events <- Some tracer;
      let now () = Engine.now t.eng in
      Net.set_on_msg t.net
        (Some
           (fun ~sent ~src ~dst ->
             Tracer.emit tracer ~time:(now ())
               (if sent then Event.Msg_send { src; dst }
                else Event.Msg_recv { src; dst })));
      Option.iter
        (fun snoop ->
          Ddbm_cc.Snoop.set_on_round snoop
            (Some
               (fun ~node ~edges ~victims ->
                 Tracer.emit tracer ~time:(now ())
                   (Event.Snoop_round { node; edges; victims }))))
        t.snoop;
      tracer

(** Start the time-series sampler (before {!execute}): every [interval]
    simulated seconds, emit an {!Event.Sample} carrying the number of
    in-flight transactions, per-interval CPU and disk utilizations
    (differences of cumulative busy times, so they are exact over the
    interval regardless of observation-window resets), and instantaneous
    queue lengths. Implies {!enable_events}. *)
let enable_sampler t ~interval =
  if not (interval > 0.) then
    invalid_arg "Machine.enable_sampler: interval must be positive";
  let tracer = enable_events t in
  let n = Array.length t.procs in
  let prev_host_cpu = ref (Node.cpu_busy_time t.host) in
  let prev_cpu = Array.init n (fun i -> Node.cpu_busy_time t.procs.(i)) in
  let prev_disk = Array.init n (fun i -> Node.disk_busy_time t.procs.(i)) in
  let prev_time = ref (Engine.now t.eng) in
  let rec tick () =
    let now = Engine.now t.eng in
    let dt = now -. !prev_time in
    if dt > 0. then begin
      let host_busy = Node.cpu_busy_time t.host in
      let host_cpu_util = (host_busy -. !prev_host_cpu) /. dt in
      prev_host_cpu := host_busy;
      let nodes =
        Array.init n (fun i ->
            let node = t.procs.(i) in
            let cpu_busy = Node.cpu_busy_time node in
            let disk_busy = Node.disk_busy_time node in
            let num_disks = Array.length node.Node.disks in
            let sample =
              {
                Event.cpu_util = (cpu_busy -. prev_cpu.(i)) /. dt;
                disk_util =
                  (disk_busy -. prev_disk.(i))
                  /. (dt *. float_of_int num_disks);
                cpu_queue = Cpu.ps_load node.Node.cpu;
                disk_queue = Node.disk_queue node;
              }
            in
            prev_cpu.(i) <- cpu_busy;
            prev_disk.(i) <- disk_busy;
            sample)
      in
      prev_time := now;
      Tracer.emit tracer ~time:now
        (Event.Sample
           { active = Metrics.active t.metrics; host_cpu_util; nodes })
    end;
    ignore (Engine.schedule t.eng ~at:(now +. interval) tick : Engine.handle)
  in
  ignore
    (Engine.schedule t.eng
       ~at:(Engine.now t.eng +. interval)
       tick
      : Engine.handle)

(** Start logging per-terminal plan fingerprints (before {!execute});
    used by the conformance harness to check that the workload stream is
    independent of the concurrency control algorithm. *)
let enable_fingerprints t = Workload.enable_fingerprints t.workload

(** Per-terminal fingerprints of every plan generated so far (empty
    unless {!enable_fingerprints} was called). *)
let workload_fingerprints t = Workload.fingerprints t.workload

(** Attach a serializability auditor (before {!execute}); committed
    transactions' reads and installs are then recorded for
    {!Audit.check}. *)
let enable_audit t =
  let audit = Audit.create () in
  t.audit <- Some audit;
  audit

(** Run an assembled machine to the end of its measurement window and
    collect the result. *)
let execute ?(log = false) t =
  let run_params = t.params.Params.run in
  ignore
    (Engine.schedule t.eng ~at:run_params.Params.warmup (fun () ->
         reset_observation_windows t)
      : Engine.handle);
  (match t.arrivals with
  | None ->
      for index = 0 to t.params.Params.workload.Params.num_terminals - 1 do
        run_terminal t ~index
      done
  | Some a -> run_arrival_pump t a);
  Option.iter (fun f -> schedule_faults t f) t.faults;
  Option.iter Ddbm_cc.Snoop.start t.snoop;
  (* Wall-clock cost is reported, never simulated; each worker domain
     reads its own interval. *)
  (* lint: allow ambient unsafe-stdlib *)
  let wall_start = Sys.time () in
  Engine.run ~until:(run_params.Params.warmup +. run_params.Params.measure)
    t.eng;
  let wall_seconds = Sys.time () -. wall_start in (* lint: allow ambient unsafe-stdlib *)
  let result = collect_result t ~wall_seconds in
  (* Logging is off by default; only the serial CLI run path ever
     passes ~log:true, never a Par.Pool task. *)
  (* lint: allow unsafe-stdlib *)
  if log then Logs.info (fun m -> m "%a" Sim_result.pp result);
  result

(** Build and run a complete simulation; returns the measured result. *)
let run ?log (params : Params.t) = execute ?log (create params)
