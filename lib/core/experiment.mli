(** Experiment driver: configuration points for the paper's experiments,
    simulation-length profiles, a memoized runner so figures sharing
    configurations share runs, and multi-seed replication. *)

open Ddbm_model

(** Simulation length: [Quick] keeps the full figure suite in minutes of
    wall time; [Standard] is for reported numbers; [Full] tightens
    confidence intervals further. *)
type profile = Quick | Standard | Full

val profile_of_string : string -> profile option
val profile_name : profile -> string

(** A configuration point: the knobs the paper's experiments turn plus
    the ablation/extension knobs (transaction size, detection interval,
    terminal population, write probability, replication). *)
type config = {
  algorithm : Params.cc_algorithm;
  nodes : int;
  degree : int;
  file_size : int;
  think : float;
  inst_per_startup : float;
  inst_per_msg : float;
  exec_pattern : Params.exec_pattern;
  terminals : int;
  pages_per_partition : int;
  replication : int;
  write_prob : float;
  detection_interval : float;
}

(** Table 4's fixed column: 8 nodes, 8-way, small DB, 128 terminals,
    2K startup / 1K message costs, no replication. *)
val base_config : config

(** Full parameter record for a configuration point. Warm-up and
    measurement windows scale with think time and inversely with machine
    size (a saturated 1-node system needs ~8x longer windows than an
    8-node one to reach steady state). *)
val params_of_config : ?profile:profile -> ?seed:int -> config -> Params.t

(** Memoized runner state; [runs]/[hits] are exposed for reporting. *)
type cache = {
  table : (Params.t, Sim_result.t) Hashtbl.t;
  mutable runs : int;
  mutable hits : int;
  verbose : bool;
  mutable collecting : Params.t list option;
      (** dry-pass mode, managed by {!collect_misses}: when [Some _],
          {!run} records misses and returns placeholders *)
}

val create_cache : ?verbose:bool -> unit -> cache

(** Run (or reuse) the simulation for exactly these parameters. *)
val run : cache -> Params.t -> Sim_result.t

(** [collect_misses cache f] runs [f cache] in dry mode: cache misses
    are recorded (and answered with {!Sim_result.placeholder}s) instead
    of simulated. Returns the missed parameter points, deduped, in
    first-request order — the exact work-list a parallel prefill needs.
    [f]'s own output must be discarded. *)
val collect_misses : cache -> (cache -> unit) -> Params.t list

(** [prefill cache pool params] simulates every not-yet-cached point
    over the pool and stores the results. Each run is an independent
    (seed, params) simulation, so results are bit-identical to serial
    execution regardless of job count. *)
val prefill : cache -> Par.Pool.t -> Params.t list -> unit

val run_config : cache -> ?profile:profile -> ?seed:int -> config -> Sim_result.t

(** Across-replicate mean and 95% CI over independent seeds. *)
type summary = {
  replicates : int;
  mean_throughput : float;
  ci_throughput : float;
  mean_response : float;
  ci_response : float;
  mean_abort_ratio : float;
  ci_abort_ratio : float;
}

val replicate :
  cache -> ?profile:profile -> ?seeds:int list -> config -> summary

(** The five curves of every paper figure: NO_DC, 2PL, BTO, WW, OPT. *)
val all_algorithms : Params.cc_algorithm list

(** Default think-time sweep covering the paper's 0-120 s axis. *)
val default_think_times : float list
