(** Reproduction of every figure of the paper's evaluation section, plus
    ablations and extensions. Figure ids match the paper ("fig2" ...
    "fig17"), with "fig4n"/"fig5n"/"fig16n"/"fig16s"/"fig17s" for the
    variants described in the running text and "abl-*" / "ext-*" for
    studies beyond the paper. See EXPERIMENTS.md for the full index. *)

type generator =
  Experiment.cache -> profile:Experiment.profile -> thinks:float list ->
  Figure.t

(** All generators in presentation order. *)
val all : (string * generator) list

val find : string -> generator option

(** [prefill_cache cache pool ~profile ~thinks gens] discovers every
    simulation the named generators need (a dry pass over placeholder
    results — generators are pure functions of the cache, so the dry
    output is discarded) and runs the missing ones over [pool], filling
    [cache]. A subsequent real generator pass is then all cache hits.
    Returns the number of runs executed. With a [jobs = 1] pool this is
    plain serial execution; at any job count the cached results are
    bit-identical to serial because each run is an independent
    (seed, params) simulation. *)
val prefill_cache :
  Experiment.cache ->
  Par.Pool.t ->
  profile:Experiment.profile ->
  thinks:float list ->
  (string * generator) list ->
  int
