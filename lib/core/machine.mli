(** Assembly and execution of the complete distributed database machine
    (Sections 2.1 and 3 of the paper): host + processing nodes, terminals,
    coordinator/cohort transaction processes, centralized two-phase
    commit, abort/restart handling, and the Snoop detector under 2PL.

    The only entry point most users need is {!run}. *)

type t

(** Build a machine (validating the parameters; raises
    [Invalid_argument] on inconsistent configurations). Exposed for tests
    and custom drivers. [histograms] (default true) enables the
    tail-latency histograms; [~histograms:false] is for pricing their
    overhead in bench and never changes any simulation outcome — only the
    histogram-derived outputs (p99/p999, {!registry} histogram families)
    read 0. *)
val create : ?histograms:bool -> Ddbm_model.Params.t -> t

(** Attach a serializability auditor to a freshly created machine; after
    {!execute}, pass it to {!Audit.check}. *)
val enable_audit : t -> Audit.t

(** Attach a bounded event trace (transaction commits, aborts, abort
    requests) to a freshly created machine. *)
val enable_trace : ?capacity:int -> t -> Desim.Trace.t

(** Attach (or retrieve) the typed lifecycle-event tracer (before
    {!execute}). Idempotent; attach sinks (e.g. {!Trace_export} or
    {!Timeline}) with [Ddbm_model.Tracer.attach]. A machine without
    this call emits no typed events and pays no tracing cost. *)
val enable_events : t -> Ddbm_model.Tracer.t

(** Start the time-series sampler (before {!execute}): every [interval]
    simulated seconds, an {!Ddbm_model.Event.Sample} event is emitted
    with the in-flight transaction count, per-interval CPU/disk
    utilizations and instantaneous queue lengths. Implies
    {!enable_events}. Raises [Invalid_argument] if [interval <= 0]. *)
val enable_sampler : t -> interval:float -> unit

(** Start logging per-terminal plan fingerprints (before {!execute}).
    The conformance harness uses them to check that the workload stream
    is independent of the concurrency control algorithm. *)
val enable_fingerprints : t -> unit

(** Per-terminal plan fingerprints generated so far (empty unless
    {!enable_fingerprints} was called). *)
val workload_fingerprints : t -> int list array

(** Typed metric registry snapshot (build after {!execute}): windowed
    counters and rates, per-node utilization/queue-depth rollups, and the
    tail-latency histogram families for response time, every
    {!Ddbm_model.Decomp} component, 2PC in-doubt duration, WAL force
    latency, and recovery time. Serialize with
    {!Ddbm_model.Metric.to_prometheus} / {!Ddbm_model.Metric.to_json}. *)
val registry : t -> Ddbm_model.Metric.t

(** Run an assembled machine and collect the measured result. *)
val execute : ?log:bool -> t -> Sim_result.t

(** [run params] = [execute (create params)]. Deterministic for a given
    parameter record. *)
val run : ?log:bool -> Ddbm_model.Params.t -> Sim_result.t
