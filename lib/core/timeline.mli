(** Per-transaction timeline reconstruction from the typed event stream.

    A timeline is a {!Ddbm_model.Tracer} sink that folds lifecycle
    events ({!Ddbm_model.Event}) back into the response-time
    decomposition of every committed transaction, using only the
    information carried by the events. The machine computes the same
    decomposition directly while running ({!Sim_result.decomp}); because
    both paths fold the identical measured deltas through
    {!Ddbm_model.Decomp.assemble} in the same order, their results agree
    bit for bit — the conformance suite uses this as a cross-check that
    the event stream is complete and correctly timed. *)

open Ddbm_model

(** One committed transaction, reconstructed. *)
type committed = {
  tid : int;
  attempt : int;  (** the committing attempt *)
  commit_time : float;
  response : float;  (** origination to commit *)
  decomp : Decomp.t;
}

type t

(** [create ~sequential] starts an empty timeline. [sequential] selects
    the work-phase critical path: the sum over all cohorts (RPC-style
    sequential execution) instead of the last [Work_done]'s. *)
val create : sequential:bool -> t

(** Convenience: derive the execution pattern from the run parameters. *)
val of_params : Params.t -> t

(** The sink to attach with [Tracer.attach]. *)
val sink : t -> Tracer.sink

(** Committed transactions reconstructed so far, oldest first. *)
val committed : t -> committed list

(** Events folded so far. *)
val events_seen : t -> int
