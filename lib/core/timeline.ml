(** Per-transaction timeline reconstruction from the typed event stream.

    A timeline is a {!Ddbm_model.Tracer} sink that folds lifecycle
    events ({!Ddbm_model.Event}) back into the response-time
    decomposition of every committed transaction, using only the
    information carried by the events. The machine computes the same
    decomposition directly while running ({!Sim_result.decomp}); because
    both paths fold the identical measured deltas through
    {!Ddbm_model.Decomp.assemble} in the same order, their results agree
    bit for bit — the conformance suite uses this as a cross-check that
    the event stream is complete and correctly timed. *)

open Ddbm_model

(** One committed transaction, reconstructed. *)
type committed = {
  tid : int;
  attempt : int;  (** the committing attempt *)
  commit_time : float;
  response : float;  (** origination to commit *)
  decomp : Decomp.t;
}

(* Work-phase resource accumulator of one cohort (mirrors
   [Messages.cohort_usage]). *)
type acc = {
  mutable a_blocked : float;
  mutable a_disk : float;
  mutable a_cpu : float;
  mutable a_log : float;  (** pre-decision (prepare) log forces *)
}

(* State of an in-flight attempt. *)
type attempt_state = {
  attempt : int;
  start_time : float;
  mutable setup_end : float;
  mutable work_end : float;  (** time of the last Work_done *)
  mutable last_work_node : int;
  mutable last_vote_node : int;
      (** node of the last accepted yes vote: its prepare force is the
          decision-gating log write of the decomposition *)
  mutable in_2pc : bool;  (** Prepare seen: stop accruing work-phase usage *)
  mutable decided : bool;
      (** Decision seen: later log forces are commit forces, not part of
          the [log] component *)
  accs : (int, acc) Hashtbl.t;  (** node -> accumulator *)
}

type t = {
  sequential : bool;
      (** sequential execution pattern: the work-phase critical path is
          the sum over all cohorts instead of the last Work_done's *)
  submits : (int, float) Hashtbl.t;  (** tid -> submission time *)
  inflight : (int, attempt_state) Hashtbl.t;
  mutable committed_rev : committed list;  (** newest first *)
  mutable events_seen : int;
}

let create ~sequential =
  {
    sequential;
    submits = Hashtbl.create 256;
    inflight = Hashtbl.create 256;
    committed_rev = [];
    events_seen = 0;
  }

(** Convenience: derive the execution pattern from the run parameters. *)
let of_params (params : Params.t) =
  create
    ~sequential:
      (match params.Params.workload.Params.exec_pattern with
      | Params.Sequential -> true
      | Params.Parallel -> false)

let acc_of st node =
  match Hashtbl.find_opt st.accs node with
  | Some a -> a
  | None ->
      let a = { a_blocked = 0.; a_disk = 0.; a_cpu = 0.; a_log = 0. } in
      Hashtbl.replace st.accs node a;
      a

(* Critical-path resources, mirroring the machine's computation exactly
   (same fold, same order) so the floats match bit for bit. *)
let critical_path t st =
  if t.sequential then
    Hashtbl.fold (fun node a acc -> (node, a) :: acc) st.accs []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.fold_left
         (fun (b, d, c) (_, a) ->
           (b +. a.a_blocked, d +. a.a_disk, c +. a.a_cpu))
         (0., 0., 0.)
  else
    match Hashtbl.find_opt st.accs st.last_work_node with
    | Some a -> (a.a_blocked, a.a_disk, a.a_cpu)
    | None -> (0., 0., 0.)

(** The sink to attach with [Tracer.attach]. *)
let sink t : Tracer.sink =
 fun ~time ev ->
  t.events_seen <- t.events_seen + 1;
  match ev with
  | Event.Submit { tid } -> Hashtbl.replace t.submits tid time
  | Event.Attempt_start { tid; attempt } ->
      Hashtbl.replace t.inflight tid
        {
          attempt;
          start_time = time;
          setup_end = time;
          work_end = time;
          last_work_node = -1;
          last_vote_node = -1;
          in_2pc = false;
          decided = false;
          accs = Hashtbl.create 8;
        }
  | Event.Setup_done { tid; _ } ->
      Option.iter
        (fun st -> st.setup_end <- time)
        (Hashtbl.find_opt t.inflight tid)
  | Event.Lock_grant { tid; node; waited; _ } ->
      Option.iter
        (fun st ->
          if not st.in_2pc then
            let a = acc_of st node in
            a.a_blocked <- a.a_blocked +. waited)
        (Hashtbl.find_opt t.inflight tid)
  | Event.Disk_access { tid; node; write; dur; _ } ->
      Option.iter
        (fun st ->
          if (not st.in_2pc) && not write then
            let a = acc_of st node in
            a.a_disk <- a.a_disk +. dur)
        (Hashtbl.find_opt t.inflight tid)
  | Event.Cpu_slice { tid; node; dur; _ } ->
      Option.iter
        (fun st ->
          if not st.in_2pc then
            let a = acc_of st node in
            a.a_cpu <- a.a_cpu +. dur)
        (Hashtbl.find_opt t.inflight tid)
  | Event.Work_done { tid; node; _ } ->
      Option.iter
        (fun st ->
          st.last_work_node <- node;
          st.work_end <- time)
        (Hashtbl.find_opt t.inflight tid)
  | Event.Prepare { tid; _ } ->
      Option.iter
        (fun st -> st.in_2pc <- true)
        (Hashtbl.find_opt t.inflight tid)
  | Event.Log_forced { tid; node; dur; _ } ->
      Option.iter
        (fun st ->
          if not st.decided then
            let a = acc_of st node in
            a.a_log <- a.a_log +. dur)
        (Hashtbl.find_opt t.inflight tid)
  | Event.Vote { tid; node; yes; _ } ->
      Option.iter
        (fun st -> if yes then st.last_vote_node <- node)
        (Hashtbl.find_opt t.inflight tid)
  | Event.Decision { tid; _ } ->
      Option.iter
        (fun st -> st.decided <- true)
        (Hashtbl.find_opt t.inflight tid)
  | Event.Committed { tid; attempt; response } ->
      Option.iter
        (fun st ->
          let origin =
            Option.value ~default:st.start_time
              (Hashtbl.find_opt t.submits tid)
          in
          let blocked, disk, cpu = critical_path t st in
          (* the decision-gating log force: the prepare force of the last
             accepted yes vote's cohort (mirrors the machine exactly) *)
          let log =
            match Hashtbl.find_opt st.accs st.last_vote_node with
            | Some a -> a.a_log
            | None -> 0.
          in
          let decomp =
            Decomp.assemble
              ~restart:(st.start_time -. origin)
              ~setup:(st.setup_end -. st.start_time)
              ~exec:(st.work_end -. st.setup_end)
              ~blocked ~disk ~cpu ~log
              ~commit:(time -. st.work_end)
          in
          t.committed_rev <-
            { tid; attempt; commit_time = time; response; decomp }
            :: t.committed_rev;
          Hashtbl.remove t.inflight tid;
          Hashtbl.remove t.submits tid)
        (Hashtbl.find_opt t.inflight tid)
  | Event.Aborted { tid; _ } ->
      (* the submit time survives: restarts count from origination *)
      Hashtbl.remove t.inflight tid
  | Event.Cohort_load _ | Event.Cohort_start _ | Event.Lock_request _
  | Event.Lock_release _ | Event.Msg_send _ | Event.Msg_recv _
  | Event.Wound _ | Event.Restart_wait _
  | Event.Snoop_round _ | Event.Node_crashed _ | Event.Node_recovered _
  | Event.Msg_dropped _ | Event.Timeout_fired _ | Event.Txn_orphaned _
  | Event.Cohort_resurrected _ | Event.Recovery_started _
  | Event.Recovery_completed _ | Event.Recovery_chain_started _
  | Event.Recovery_chain_completed _ | Event.Sample _ ->
      ()

(** Committed transactions reconstructed so far, oldest first. *)
let committed t = List.rev t.committed_rev

(** Events folded so far. *)
let events_seen t = t.events_seen
