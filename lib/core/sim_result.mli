(** Output of one simulation run: the paper's metrics (Section 4.1) plus
    fault/availability metrics and diagnostics. *)

open Ddbm_model

type t = {
  algorithm : Params.cc_algorithm;
  params : Params.t;
  throughput : float;  (** committed transactions per second *)
  mean_response : float;  (** seconds, origination to successful completion *)
  response_ci95 : float;  (** batch-means 95% half-width *)
  response_p50 : float;
  response_p95 : float;
  response_p99 : float;
      (** histogram tail quantile (upper-edge convention, relative error
          <= 2^-6; see {!Desim.Stats.Hdr}); 0 when histograms are off *)
  response_p999 : float;  (** as [response_p99], at q = 0.999 *)
  commits : int;
  aborts : int;
  completions : int;
      (** attempt completions counted independently at the terminal loop;
          conservation: commits + aborts = completions *)
  abort_ratio : float;  (** aborts per commit *)
  abort_reasons : (string * int) list;
  mean_blocking : float;  (** mean CC blocking time per blocked request *)
  blocked_requests : int;
  proc_cpu_util : float;  (** mean over processing nodes *)
  proc_disk_util : float;  (** mean over all processing-node disks *)
  host_cpu_util : float;
  mean_active : float;  (** time-average number of in-flight transactions *)
  messages : int;
  availability : float;
      (** fraction of node-seconds (host + processing nodes) up over the
          observation window; 1.0 under a zero fault plan *)
  goodput : float;
      (** committed page accesses per second — useful work, as opposed to
          per-transaction [throughput] *)
  timeouts : int;  (** protocol receive timeouts that fired *)
  retries : int;  (** messages re-sent after a timeout *)
  msgs_dropped : int;  (** messages lost by the faulty channel *)
  msgs_duplicated : int;  (** messages duplicated by the faulty channel *)
  node_crashes : int;  (** crash events (host and processing nodes) *)
  orphaned : int;
      (** cohorts force-cleaned out of band: crash victims and abort-path
          cohorts unreachable past the retry budget *)
  log_forces : int;  (** completed WAL forces across all nodes *)
  log_disk_util : float;
      (** mean log-disk utilization over the observation window; 0 when
          the durability model is off *)
  recoveries : int;  (** completed crash-recovery passes *)
  mean_recovery_time : float;
      (** mean time from node repair to recovery checkpoint (MTTR's
          recovery component); 0 when no recovery ran *)
  failovers : int;
      (** cohorts resurrected at their backup after a primary crash *)
  lost_commits : int;
      (** committed transactions lacking durable evidence at one or more
          updating cohorts' nodes at end of run — must be 0 *)
  indoubt_mean : float;
      (** mean time a yes-voted cohort waited for the 2PC decision *)
  indoubt_open_at_end : int;
      (** cohorts still awaiting a decision when the run ended *)
  indoubt_overdue_at_end : int;
      (** open in-doubt intervals older than the termination-protocol
          grace — must be 0: no transaction stays in doubt forever *)
  decomp : Decomp.t;
      (** mean per-transaction response-time decomposition; components
          sum to [mean_response] up to float rounding *)
  sim_events : int;
  sim_end : float;
  wall_seconds : float;
  events_per_sec : float;
      (** simulator self-profiling: events processed per wall-clock
          second (wall-clock-dependent, excluded from {!diff}) *)
  top_heap_words : int;
      (** GC heap high-water mark at collection time (process-state
          dependent, excluded from {!diff}) *)
}

val algorithm_name : t -> string

(** All-zero result carrying only the configuration. Stands in for a
    real run during the dry collect pass of a parallel sweep; never a
    valid simulation output. *)
val placeholder : Params.t -> t

val pp : Format.formatter -> t -> unit

(** CSV header matching {!to_csv_row}. *)
val csv_header : string

(** Field-by-field comparison of two results from the *same* (seed,
    params, algorithm), for the determinism check: every simulation
    output must be bit-for-bit reproducible. [wall_seconds],
    [events_per_sec] and [top_heap_words] are wall-clock or process-state
    dependent and excluded. Returns a human-readable line per differing
    field. *)
val diff : t -> t -> string list

(** Bit-for-bit equality of everything {!diff} compares. *)
val equal : t -> t -> bool

val to_csv_row : t -> string
