(** Output of one simulation run: the paper's metrics (Section 4.1) plus
    diagnostics. *)

open Ddbm_model

type t = {
  algorithm : Params.cc_algorithm;
  params : Params.t;
  throughput : float;  (** committed transactions per second *)
  mean_response : float;  (** seconds, origination to successful completion *)
  response_ci95 : float;  (** batch-means 95% half-width *)
  response_p50 : float;
  response_p95 : float;
  response_p99 : float;
      (** histogram tail quantile (upper-edge convention, relative error
          <= 2^-6; see {!Desim.Stats.Hdr}); 0 when histograms are off *)
  response_p999 : float;  (** as [response_p99], at q = 0.999 *)
  commits : int;
  aborts : int;
  completions : int;
      (** attempt completions counted independently at the terminal loop;
          conservation: commits + aborts = completions *)
  abort_ratio : float;  (** aborts per commit *)
  abort_reasons : (string * int) list;
  mean_blocking : float;  (** mean CC blocking time per blocked request *)
  blocked_requests : int;
  proc_cpu_util : float;  (** mean over processing nodes *)
  proc_disk_util : float;  (** mean over all processing-node disks *)
  host_cpu_util : float;
  mean_active : float;  (** time-average number of in-flight transactions *)
  messages : int;
  availability : float;
      (** fraction of node-seconds (host + processing nodes) up over the
          observation window; 1.0 under a zero fault plan *)
  goodput : float;
      (** committed page accesses per second — useful work, as opposed to
          per-transaction [throughput] *)
  timeouts : int;  (** protocol receive timeouts that fired *)
  retries : int;  (** messages re-sent after a timeout *)
  msgs_dropped : int;  (** messages lost by the faulty channel *)
  msgs_duplicated : int;  (** messages duplicated by the faulty channel *)
  node_crashes : int;  (** crash events (host and processing nodes) *)
  orphaned : int;
      (** cohorts force-cleaned out of band: crash victims and abort-path
          cohorts unreachable past the retry budget *)
  log_forces : int;  (** completed WAL forces across all nodes *)
  log_disk_util : float;
      (** mean log-disk utilization over the observation window; 0 when
          the durability model is off *)
  recoveries : int;  (** completed crash-recovery passes *)
  mean_recovery_time : float;
      (** mean time from node repair to recovery checkpoint (MTTR's
          recovery component); 0 when no recovery ran *)
  failovers : int;
      (** cohorts resurrected at their backup after a primary crash *)
  lost_commits : int;
      (** committed transactions lacking durable evidence at one or more
          updating cohorts' nodes at end of run — must be 0 *)
  indoubt_mean : float;
      (** mean time a yes-voted cohort waited for the 2PC decision *)
  indoubt_open_at_end : int;
      (** cohorts still awaiting a decision when the run ended *)
  indoubt_overdue_at_end : int;
      (** open in-doubt intervals older than the termination-protocol
          grace — must be 0: no transaction stays in doubt forever *)
  decomp : Decomp.t;
      (** mean per-transaction response-time decomposition; components
          sum to [mean_response] up to float rounding *)
  sim_events : int;
  sim_end : float;
  wall_seconds : float;
  events_per_sec : float;
      (** simulator self-profiling: events processed per wall-clock
          second (wall-clock-dependent, excluded from {!diff}) *)
  top_heap_words : int;
      (** GC heap high-water mark at collection time (process-state
          dependent, excluded from {!diff}) *)
}

let algorithm_name t = Params.cc_algorithm_name t.algorithm

(* All-zero result carrying only the configuration; stands in for a real
   run during the dry collect pass of a parallel sweep (the dry pass only
   discovers which parameter points are needed — its figure output is
   discarded). *)
let placeholder params =
  {
    algorithm = params.Params.cc.Params.algorithm;
    params;
    throughput = 0.;
    mean_response = 0.;
    response_ci95 = 0.;
    response_p50 = 0.;
    response_p95 = 0.;
    response_p99 = 0.;
    response_p999 = 0.;
    commits = 0;
    aborts = 0;
    completions = 0;
    abort_ratio = 0.;
    abort_reasons = [];
    mean_blocking = 0.;
    blocked_requests = 0;
    proc_cpu_util = 0.;
    proc_disk_util = 0.;
    host_cpu_util = 0.;
    mean_active = 0.;
    messages = 0;
    availability = 1.;
    goodput = 0.;
    timeouts = 0;
    retries = 0;
    msgs_dropped = 0;
    msgs_duplicated = 0;
    node_crashes = 0;
    orphaned = 0;
    log_forces = 0;
    log_disk_util = 0.;
    recoveries = 0;
    mean_recovery_time = 0.;
    failovers = 0;
    lost_commits = 0;
    indoubt_mean = 0.;
    indoubt_open_at_end = 0;
    indoubt_overdue_at_end = 0;
    decomp = Decomp.zero;
    sim_events = 0;
    sim_end = 0.;
    wall_seconds = 0.;
    events_per_sec = 0.;
    top_heap_words = 0;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s: tput %.3f tx/s, resp %.3f s (±%.3f), %d commits, %d aborts \
     (ratio %.3f)@ cpu %.2f disk %.2f host-cpu %.2f, blocking %.4f s \
     (%d blocks), active %.1f, %d msgs@ response = %a@]"
    (algorithm_name t) t.throughput t.mean_response t.response_ci95 t.commits
    t.aborts t.abort_ratio t.proc_cpu_util t.proc_disk_util t.host_cpu_util
    t.mean_blocking t.blocked_requests t.mean_active t.messages Decomp.pp
    t.decomp;
  if t.response_p99 > 0. then
    Format.fprintf fmt "@ tail: p50 %.3f p95 %.3f p99 %.3f p999 %.3f s"
      t.response_p50 t.response_p95 t.response_p99 t.response_p999;
  if Fault_plan.active t.params.Params.faults then
    Format.fprintf fmt
      "@ faults: avail %.4f, goodput %.2f pages/s, %d crashes, %d dropped, \
       %d dup, %d timeouts, %d retries, %d orphaned, in-doubt %.4f s \
       (%d open, %d overdue)"
      t.availability t.goodput t.node_crashes t.msgs_dropped t.msgs_duplicated
      t.timeouts t.retries t.orphaned t.indoubt_mean t.indoubt_open_at_end
      t.indoubt_overdue_at_end;
  if t.params.Params.durability.Params.log_disk then
    Format.fprintf fmt
      "@ durability: %d forces, log-disk %.4f, %d recoveries (mttr %.4f s), \
       %d failovers, %d lost commits"
      t.log_forces t.log_disk_util t.recoveries t.mean_recovery_time
      t.failovers t.lost_commits

(** CSV header matching {!to_csv_row}. *)
let csv_header =
  "algorithm,think_time,proc_nodes,degree,file_size,inst_per_startup,\
   inst_per_msg,throughput,mean_response,response_ci95,response_p50,\
   response_p95,response_p99,response_p999,commits,aborts,completions,\
   abort_ratio,mean_blocking,blocked_requests,proc_cpu_util,proc_disk_util,\
   host_cpu_util,mean_active,messages,availability,goodput,timeouts,retries,\
   msgs_dropped,msgs_duplicated,node_crashes,orphaned,log_forces,\
   log_disk_util,recoveries,mean_recovery_time,failovers,lost_commits,\
   indoubt_mean,indoubt_open_at_end,indoubt_overdue_at_end,sim_events,"
  ^ String.concat "," (List.map fst Decomp.fields)

(** Field-by-field comparison of two results from the *same* (seed,
    params, algorithm), for the determinism check: every simulation
    output must be bit-for-bit reproducible. [wall_seconds] is wall-clock
    and excluded. Returns a human-readable line per differing field. *)
let diff a b =
  let fs name v = Printf.sprintf "%s: %.17g vs %.17g" name v in
  let is name v = Printf.sprintf "%s: %d vs %d" name v in
  let acc = ref [] in
  let chk_f name get =
    let va = get a and vb = get b in
    if not (Float.equal va vb) then acc := fs name va vb :: !acc
  in
  let chk_i name get =
    let va = get a and vb = get b in
    if va <> vb then acc := is name va vb :: !acc
  in
  if a.algorithm <> b.algorithm then
    acc :=
      Printf.sprintf "algorithm: %s vs %s"
        (Params.cc_algorithm_name a.algorithm)
        (Params.cc_algorithm_name b.algorithm)
      :: !acc;
  if a.params <> b.params then acc := "params differ" :: !acc;
  chk_f "throughput" (fun r -> r.throughput);
  chk_f "mean_response" (fun r -> r.mean_response);
  chk_f "response_ci95" (fun r -> r.response_ci95);
  chk_f "response_p50" (fun r -> r.response_p50);
  chk_f "response_p95" (fun r -> r.response_p95);
  chk_f "response_p99" (fun r -> r.response_p99);
  chk_f "response_p999" (fun r -> r.response_p999);
  chk_i "commits" (fun r -> r.commits);
  chk_i "aborts" (fun r -> r.aborts);
  chk_i "completions" (fun r -> r.completions);
  chk_f "abort_ratio" (fun r -> r.abort_ratio);
  if a.abort_reasons <> b.abort_reasons then acc := "abort_reasons differ" :: !acc;
  chk_f "mean_blocking" (fun r -> r.mean_blocking);
  chk_i "blocked_requests" (fun r -> r.blocked_requests);
  chk_f "proc_cpu_util" (fun r -> r.proc_cpu_util);
  chk_f "proc_disk_util" (fun r -> r.proc_disk_util);
  chk_f "host_cpu_util" (fun r -> r.host_cpu_util);
  chk_f "mean_active" (fun r -> r.mean_active);
  chk_i "messages" (fun r -> r.messages);
  chk_f "availability" (fun r -> r.availability);
  chk_f "goodput" (fun r -> r.goodput);
  chk_i "timeouts" (fun r -> r.timeouts);
  chk_i "retries" (fun r -> r.retries);
  chk_i "msgs_dropped" (fun r -> r.msgs_dropped);
  chk_i "msgs_duplicated" (fun r -> r.msgs_duplicated);
  chk_i "node_crashes" (fun r -> r.node_crashes);
  chk_i "orphaned" (fun r -> r.orphaned);
  chk_i "log_forces" (fun r -> r.log_forces);
  chk_f "log_disk_util" (fun r -> r.log_disk_util);
  chk_i "recoveries" (fun r -> r.recoveries);
  chk_f "mean_recovery_time" (fun r -> r.mean_recovery_time);
  chk_i "failovers" (fun r -> r.failovers);
  chk_i "lost_commits" (fun r -> r.lost_commits);
  chk_f "indoubt_mean" (fun r -> r.indoubt_mean);
  chk_i "indoubt_open_at_end" (fun r -> r.indoubt_open_at_end);
  chk_i "indoubt_overdue_at_end" (fun r -> r.indoubt_overdue_at_end);
  List.iter
    (fun (name, get) -> chk_f name (fun r -> get r.decomp))
    Decomp.fields;
  chk_i "sim_events" (fun r -> r.sim_events);
  chk_f "sim_end" (fun r -> r.sim_end);
  (* events_per_sec and top_heap_words are wall-clock and process-state
     dependent, so they are deliberately not compared. *)
  List.rev !acc

(** Bit-for-bit equality of everything but [wall_seconds]. *)
let equal a b = diff a b = []

let to_csv_row t =
  let p = t.params in
  Printf.sprintf
    "%s,%g,%d,%d,%d,%g,%g,%.5f,%.5f,%.5f,%.5f,%.5f,%.5f,%.5f,%d,%d,%d,%.5f,%.5f,%d,%.4f,%.4f,%.4f,%.3f,%d,%.5f,%.5f,%d,%d,%d,%d,%d,%d,%d,%.4f,%d,%.5f,%d,%d,%.5f,%d,%d,%d,%s"
    (algorithm_name t) p.Params.workload.Params.think_time
    p.Params.database.Params.num_proc_nodes
    p.Params.database.Params.partitioning_degree
    p.Params.database.Params.file_size
    p.Params.resources.Params.inst_per_startup
    p.Params.resources.Params.inst_per_msg t.throughput t.mean_response
    t.response_ci95 t.response_p50 t.response_p95 t.response_p99
    t.response_p999 t.commits t.aborts
    t.completions t.abort_ratio t.mean_blocking t.blocked_requests
    t.proc_cpu_util t.proc_disk_util t.host_cpu_util t.mean_active t.messages
    t.availability t.goodput t.timeouts t.retries t.msgs_dropped
    t.msgs_duplicated t.node_crashes t.orphaned t.log_forces t.log_disk_util
    t.recoveries t.mean_recovery_time t.failovers t.lost_commits
    t.indoubt_mean t.indoubt_open_at_end t.indoubt_overdue_at_end t.sim_events
    (String.concat ","
       (List.map
          (fun (_, get) -> Printf.sprintf "%.5f" (get t.decomp))
          Decomp.fields))
