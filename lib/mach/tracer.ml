(** Dispatch point for typed {!Event} streams.

    The machine emits events through a tracer only when one is attached
    (and constructs them inside a closure passed to its guard), so a run
    without observers pays nothing. Multiple sinks — the timeline
    reconstructor, file exporters — can observe the same run. *)

type sink = time:float -> Event.t -> unit

type t = { mutable sinks : sink list }

let create () = { sinks = [] }

(** Sinks observe events in attachment order. *)
let attach t sink = t.sinks <- t.sinks @ [ sink ]

let active t = t.sinks <> []

let emit t ~time ev = List.iter (fun sink -> sink ~time ev) t.sinks
