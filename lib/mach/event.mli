(** Typed lifecycle events of the simulated machine.

    Unlike the free-form string {!Desim.Trace}, these events carry the
    transaction, node and page identifiers needed to reconstruct a
    per-transaction timeline ({!Ddbm.Timeline}) or to export a trace for
    Perfetto. Events are emitted by the machine only while a
    {!Tracer.t} is attached, so tracing costs nothing otherwise. *)

type lock_mode = Read | Write

val lock_mode_name : lock_mode -> string

(** One row of the time-series sampler, for a processing node.
    Utilizations are means over the sampling interval just ended; queue
    lengths are instantaneous. *)
type node_sample = {
  cpu_util : float;
  disk_util : float;  (** mean over the node's disks *)
  cpu_queue : int;  (** jobs in the processor-sharing class *)
  disk_queue : int;  (** operations waiting or in service, all disks *)
}

type sample = {
  active : int;  (** transactions currently in the system *)
  host_cpu_util : float;
  nodes : node_sample array;
}

type t =
  | Submit of { tid : int }  (** terminal submitted a new transaction *)
  | Attempt_start of { tid : int; attempt : int }
  | Setup_done of { tid : int; attempt : int }
      (** coordinator process startup finished; work phase begins *)
  | Cohort_load of { tid : int; attempt : int; node : int }
      (** load-cohort message sent to [node] *)
  | Cohort_start of { tid : int; attempt : int; node : int }
      (** cohort process running at [node] *)
  | Lock_request of {
      tid : int;
      attempt : int;
      node : int;
      page : Ids.Page.t;
      mode : lock_mode;
    }
  | Lock_grant of {
      tid : int;
      attempt : int;
      node : int;
      page : Ids.Page.t;
      mode : lock_mode;
      waited : float;  (** CC blocking time; 0 when granted immediately *)
    }
  | Lock_release of { tid : int; attempt : int; node : int }
      (** all CC footprint at [node] released (commit or abort) *)
  | Disk_access of {
      tid : int;
      attempt : int;
      node : int;
      write : bool;
      dur : float;  (** queueing + service *)
    }
  | Cpu_slice of { tid : int; attempt : int; node : int; dur : float }
      (** page-processing CPU, wall time under processor sharing *)
  | Msg_send of { src : Ids.node_ref; dst : Ids.node_ref }
  | Msg_recv of { src : Ids.node_ref; dst : Ids.node_ref }
  | Work_done of { tid : int; attempt : int; node : int }
      (** coordinator received [node]'s Work_done *)
  | Prepare of { tid : int; attempt : int }
      (** coordinator broadcast Do_prepare; 2PC begins *)
  | Vote of { tid : int; attempt : int; node : int; yes : bool }
  | Decision of { tid : int; attempt : int; commit : bool }
  | Committed of { tid : int; attempt : int; response : float }
  | Aborted of { tid : int; attempt : int; reason : Txn.abort_reason }
  | Wound of {
      tid : int;
      attempt : int;
      from_node : int;
      reason : Txn.abort_reason;
    }  (** a CC manager or the Snoop demanded this transaction's abort *)
  | Restart_wait of { tid : int; attempt : int; delay : float }
  | Snoop_round of { node : int; edges : int; victims : int }
  | Node_crashed of { node : Ids.node_ref }
  | Node_recovered of { node : Ids.node_ref }
  | Msg_dropped of { src : Ids.node_ref; dst : Ids.node_ref }
      (** the fault plan's network judge dropped a protocol message *)
  | Timeout_fired of {
      tid : int;
      attempt : int;
      at_node : Ids.node_ref;
      round : int;
    }
      (** a 2PC participant's receive timed out; [round] counts the
          consecutive timeouts behind the capped backoff *)
  | Txn_orphaned of { tid : int; attempt : int; node : int }
      (** a cohort's CC footprint was cleaned up out-of-band (node crash
          or an exhausted abort-retry budget) *)
  | Log_forced of { tid : int; attempt : int; node : int; dur : float }
      (** a cohort's WAL force completed at [node] after [dur] seconds
          of log-disk queueing + service; forces before the attempt's
          Decision are prepare forces, later ones commit forces *)
  | Cohort_resurrected of { tid : int; attempt : int; node : int; backup : int }
      (** [node] crashed but this cohort's shipped write-set let the
          coordinator fail over to [backup] instead of dooming it *)
  | Recovery_started of { node : int }
      (** crash recovery (analysis + redo over the durable log) began *)
  | Recovery_completed of { node : int; duration : float; redone : int }
      (** recovery finished after [duration] seconds, having resolved
          [redone] in-doubt transactions to commit and redone their
          durable updates *)
  | Recovery_chain_started of { node : int; chain : int; txns : int }
      (** a redo worker began replaying dependency chain [chain]
          ([txns] transactions) of [node]'s recovery *)
  | Recovery_chain_completed of {
      node : int;
      chain : int;
      txns : int;
      duration : float;
    }  (** chain [chain] finished replaying after [duration] seconds *)
  | Sample of sample

val name : t -> string

(** Transaction ids carried by the event, if any. *)
val txn_of : t -> (int * int) option

(** Flat field listing for serialization; {!Sample} payloads are handled
    by exporters directly (they are the only nested events). *)
type field = I of int | F of float | S of string | B of bool

val fields : t -> (string * field) list
val pp : Format.formatter -> t -> unit
