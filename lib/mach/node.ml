(** A node of the machine: one CPU, its disks, and (for processing nodes)
    a concurrency control manager installed by the machine assembly. *)

open Desim

type t = {
  node_ref : Ids.node_ref;
  cpu : Cpu.t;
  disks : Disk.t array;
  disk_rng : Rng.t;
  mutable cc : Cc_intf.node_cc option;
}

let create eng rng ~node_ref ~mips ~(resources : Params.resources) =
  let rate = mips *. 1_000_000. in
  let disks =
    Array.init resources.Params.disks_per_node (fun _ ->
        Disk.create eng (Rng.split rng) ~min_time:resources.Params.min_disk_time
          ~max_time:resources.Params.max_disk_time)
  in
  {
    node_ref;
    cpu = Cpu.create eng ~rate;
    disks;
    disk_rng = Rng.split rng;
    cc = None;
  }

(** Random uniform disk choice: the model assumes files are spread evenly
    over a node's disks (Section 3.4). *)
let random_disk t = t.disks.(Rng.int t.disk_rng (Array.length t.disks))

let install_cc t cc = t.cc <- Some cc

let cc t =
  match t.cc with
  | Some cc -> cc
  | None ->
      invalid_arg
        (Format.asprintf "Node %a has no concurrency control manager"
           Ids.pp_node_ref t.node_ref)

let cpu_utilization t = Cpu.utilization t.cpu

(** Cumulative CPU busy time since creation (never reset). *)
let cpu_busy_time t = Cpu.busy_time t.cpu

(** Cumulative busy time summed over the node's disks (never reset). *)
let disk_busy_time t =
  Array.fold_left (fun acc d -> acc +. Disk.busy_time d) 0. t.disks

(** Operations waiting or in service, summed over the node's disks. *)
let disk_queue t =
  Array.fold_left (fun acc d -> acc + Disk.queue_length d) 0 t.disks

let disk_utilization t =
  let n = Array.length t.disks in
  let total =
    Array.fold_left (fun acc d -> acc +. Disk.utilization d) 0. t.disks
  in
  total /. float_of_int n

let reset_windows t =
  Cpu.reset_window t.cpu;
  Array.iter Disk.reset_window t.disks
