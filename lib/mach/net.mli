(** The network manager (Section 3.5): a switch with negligible wire time.
    A message costs [inst_per_msg] CPU instructions at the sending node
    and again at the receiving node, both served in the CPU's
    high-priority FCFS message class. Local deliveries (src = dst) are
    free procedure calls.

    A fault plan can install a per-message {e judge} (see {!set_judge});
    only sends marked [~faulty:true] are judged — everything else is
    modeled as a reliable control-plane channel. *)

type t

(** [eng] is needed only for judged deliveries with extra delay; a net
    without it delivers judged copies immediately. *)
val create :
  ?eng:Desim.Engine.t ->
  inst_per_msg:float ->
  cpu_of:(Ids.node_ref -> Desim.Cpu.t) ->
  unit ->
  t

(** [send t ~src ~dst deliver] blocks the calling process for the
    sender-side CPU cost, then asynchronously charges the receiver-side
    cost and runs [deliver] at the destination. [~faulty:true] subjects
    the message to the installed judge, if any. *)
val send :
  ?faulty:bool ->
  t ->
  src:Ids.node_ref ->
  dst:Ids.node_ref ->
  (unit -> unit) ->
  unit

(** Fully asynchronous variant, usable outside process context; the
    sender-side cost is still charged to the sender's CPU. With a zero
    per-message cost, delivery happens synchronously inside the call. *)
val send_async :
  ?faulty:bool ->
  t ->
  src:Ids.node_ref ->
  dst:Ids.node_ref ->
  (unit -> unit) ->
  unit

(** Total messages sent (excluding free local deliveries). Judged
    messages count once regardless of the verdict. *)
val messages_sent : t -> int

(** Attach (or detach, with [None]) a message-traffic observer: called
    with [~sent:true] when a message is handed to the sender's CPU and
    [~sent:false] when it is delivered at the destination. Local
    deliveries are never observed; every delivered copy of a duplicated
    message is. No cost when unset. *)
val set_on_msg :
  t -> (sent:bool -> src:Ids.node_ref -> dst:Ids.node_ref -> unit) option -> unit

(** Attach (or detach) the fault judge. Per judged message it returns the
    extra delay of each copy to deliver: [[]] = drop, [[0.]] = one
    immediate copy, [[0.; d]] = a duplicate arriving [d] later. The judge
    is consulted once per {e marked} send; the sender-side cost is
    already paid by then (a dropped message still cost CPU to send). *)
val set_judge :
  t -> (src:Ids.node_ref -> dst:Ids.node_ref -> float list) option -> unit
