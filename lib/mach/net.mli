(** The network manager (Section 3.5): a switch with negligible wire time.
    A message costs [inst_per_msg] CPU instructions at the sending node
    and again at the receiving node, both served in the CPU's
    high-priority FCFS message class. Local deliveries (src = dst) are
    free procedure calls. *)

type t

val create :
  inst_per_msg:float -> cpu_of:(Ids.node_ref -> Desim.Cpu.t) -> t

(** [send t ~src ~dst deliver] blocks the calling process for the
    sender-side CPU cost, then asynchronously charges the receiver-side
    cost and runs [deliver] at the destination. *)
val send :
  t -> src:Ids.node_ref -> dst:Ids.node_ref -> (unit -> unit) -> unit

(** Fully asynchronous variant, usable outside process context; the
    sender-side cost is still charged to the sender's CPU. With a zero
    per-message cost, delivery happens synchronously inside the call. *)
val send_async :
  t -> src:Ids.node_ref -> dst:Ids.node_ref -> (unit -> unit) -> unit

(** Total messages sent (excluding free local deliveries). *)
val messages_sent : t -> int

(** Attach (or detach, with [None]) a message-traffic observer: called
    with [~sent:true] when a message is handed to the sender's CPU and
    [~sent:false] when it is delivered at the destination. Local
    deliveries are never observed. No cost when unset. *)
val set_on_msg :
  t -> (sent:bool -> src:Ids.node_ref -> dst:Ids.node_ref -> unit) option -> unit
