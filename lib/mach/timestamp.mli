(** Globally unique, totally ordered timestamps.

    Built from a simulated time plus a tie-breaking sequence number drawn
    from a shared allocator, as a real system would combine a clock with a
    site/sequence suffix. *)

type t = { time : float; uniq : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val ( < ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Allocator of unique suffixes; one per simulation run. *)
module Clock : sig
  type ts = t
  type t

  val create : unit -> t
  val make : t -> time:float -> ts
end
