(** Simulation parameters, following Tables 1-4 of the paper. *)

(** Whether a transaction's cohorts run one after another (remote procedure
    call style, as in Non-Stop SQL) or all at once (as in Gamma / Bubba /
    Teradata). *)
type exec_pattern = Sequential | Parallel

type cc_algorithm =
  | No_dc  (** "no data contention": every request granted, the NO_DC curve *)
  | Twopl  (** distributed two-phase locking with Snoop deadlock detection *)
  | Wound_wait
  | Bto  (** basic timestamp ordering *)
  | Opt  (** distributed certification [Sinh85, algorithm 1] *)
  | Wait_die
      (** extension: the wait-die policy of [Rose78] (older waits, younger
          aborts itself) — not evaluated in the paper but the natural
          counterpart of wound-wait *)
  | Twopl_defer
      (** extension: 2PL with write-lock requests deferred to the first
          phase of commit, the improvement of [Care89] cited in the
          paper's footnote 13 *)
  | O2pl
      (** optimistic two-phase locking from the underlying [Care88] model
          (mentioned alongside 2PL in the paper's Table 4 text): local
          copies are write-locked at access time, remote *replica* copies
          only during the first phase of commit — identical to 2PL
          without replication *)

val cc_algorithm_name : cc_algorithm -> string
val cc_algorithm_of_string : string -> cc_algorithm option

type database = {
  num_proc_nodes : int;  (** NumProcNodes: 1, 2, 4 or 8 *)
  num_relations : int;  (** 8 relations ... *)
  partitions_per_relation : int;  (** ... of 8 partitions = 64 files *)
  file_size : int;  (** FileSize: pages per partition (300 or 1200) *)
  partitioning_degree : int;
      (** how many nodes each relation is declustered across (1, 2, 4, 8);
          must divide [partitions_per_relation] and be <= [num_proc_nodes] *)
  replication : int;
      (** copies of each file (1 = no replication, the paper's setting).
          Reads use the primary copy; updates are applied to every copy
          (read-one/write-all, per the underlying [Care88] model). *)
}

type workload = {
  num_terminals : int;  (** NumTerminals, attached to the host *)
  think_time : float;  (** ThinkTime: mean exponential think, seconds *)
  exec_pattern : exec_pattern;
  pages_per_partition : int;
      (** NumPages: mean pages read per accessed partition. Actual counts
          are uniform integers in [mean/2, 3*mean/2] (= [4,12] for 8), per
          footnote 12 of the paper. *)
  write_prob : float;  (** WriteProb: probability an accessed page is updated *)
  inst_per_page : float;  (** InstPerPage: mean (exponential) CPU per page *)
}

type resources = {
  host_mips : float;  (** CPURate of the host node, in MIPS *)
  node_mips : float;  (** CPURate of each processing node, in MIPS *)
  disks_per_node : int;  (** NumDisks *)
  min_disk_time : float;  (** MinDiskTime, seconds *)
  max_disk_time : float;  (** MaxDiskTime, seconds *)
  inst_per_update : float;  (** InstPerUpdate: CPU to start a disk write *)
  inst_per_startup : float;  (** InstPerStartup: CPU to start a process *)
  inst_per_msg : float;  (** InstPerMsg: CPU to send or receive a message *)
  inst_per_cc_req : float;  (** InstPerCCReq: CPU per CC request *)
  model_logging : bool;
      (** extension (default false, as in the paper's footnote 5, which
          assumes logging is not the bottleneck): when true, every
          updating cohort forces one log page to disk during prepare,
          before voting. *)
}

type cc = {
  algorithm : cc_algorithm;
  detection_interval : float;
      (** DetectionInterval: Snoop dwell time per node (2PL only) *)
}

(** When a cohort's commit record hits the log disk. The prepare record
    is always forced before voting yes (2PC needs the prepared state to
    survive a crash); the policy only decides whether the commit record
    is forced too. *)
type log_force =
  | At_prepare
      (** lazy commit record: only the prepare force is synchronous; a
          crash after commit is redone from the durable prepare record
          plus the coordinator's decision log *)
  | At_commit
      (** eager commit record: the cohort also forces the commit record
          before acknowledging, trading an extra log I/O per updating
          cohort for locally-complete redo information *)

val log_force_name : log_force -> string
val log_force_of_string : string -> log_force option

type durability = {
  log_disk : bool;
      (** model a per-node log disk: cohorts append typed WAL records and
          block on FCFS log forces, recovery replays the durable prefix.
          false (the paper's footnote-5 assumption) is a true no-op. *)
  log_min_time : float;  (** log-disk service time bounds; sequential log *)
  log_max_time : float;  (** I/O is faster than the data disks' seeks *)
  log_force : log_force;
  replicas : int;
      (** backup nodes per cohort (0 = none): an updating cohort ships
          its write-set to [replicas] successor nodes at work-done, and
          the coordinator fails over to a live backup when the primary
          crashes mid-transaction *)
  recovery_jobs : int;
      (** redo workers per recovering node (>= 1): with more than one,
          recovery partitions the redo set into independent dependency
          chains ({!Wal.redo_chains}) and replays them on [recovery_jobs]
          concurrent workers, so MTTR stays flat as log volume grows.
          1 (the default) preserves the serial redo path bit-for-bit. *)
}

(** Durability switched off entirely: no log disk, no replicas — the
    paper's machine, bit-identical to a build without the subsystem. *)
val default_durability : durability

type run = {
  seed : int;
  warmup : float;  (** simulated seconds discarded before measuring *)
  measure : float;  (** simulated seconds of measurement window *)
  restart_delay_floor : float;
      (** restart delay used before any response time has been observed *)
  fresh_restart_plan : bool;
      (** false (default, the paper's model): an aborted transaction
          reruns the same access plan. true: the restart draws a fresh
          access set, the "fake restart" methodology sometimes used in
          [Agra87a]-style simulators to model a steady stream. *)
}

type t = {
  database : database;
  workload : workload;
  resources : resources;
  cc : cc;
  run : run;
  durability : durability;
      (** write-ahead logging / replication extension
          ({!default_durability} = the paper's machine; a disabled
          durability block is a true no-op) *)
  faults : Fault_plan.t;
      (** seeded fault plan ({!Fault_plan.zero} = the paper's failure-free
          machine; a zero plan is a true no-op) *)
  arrivals : Arrival.t;
      (** open-loop arrival process + admission control ({!Arrival.zero}
          = the paper's closed-loop terminals; a closed spec is a true
          no-op) *)
}

(** Parameter values of Table 4 (the "fixed" column): 8 processing nodes,
    8-way partitioning, small database, 2K startup / 1K message costs. *)
val default : t

val num_files : t -> int
val validate : t -> (unit, string) result
