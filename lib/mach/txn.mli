(** Runtime record of one execution attempt of a transaction.

    A transaction keeps its identity ([tid], [startup_ts], [plan], and
    origination time) across restarts but every attempt gets a fresh
    instance so that stale abort requests and stale lock-table entries can
    never touch a successor attempt. *)

(** Why an attempt was aborted. *)
type abort_reason =
  | Local_deadlock  (** 2PL: victim of block-time local detection *)
  | Global_deadlock  (** 2PL: victim of the Snoop detector *)
  | Wounded  (** WW: wounded by an older transaction *)
  | Bto_conflict  (** BTO: out-of-timestamp-order access *)
  | Cert_failed  (** OPT: local certification rejected a read/write *)
  | Died  (** wait-die: the younger requester aborted itself *)
  | Peer_abort  (** another cohort of the same transaction aborted *)
  | Crashed  (** a participating node (or the host) crashed mid-attempt *)
  | Timed_out  (** a 2PC step exhausted its retry budget *)

val abort_reason_name : abort_reason -> string

(** Raised inside a cohort process to unwind to its abort handler. *)
exception Aborted of abort_reason

(** Coordinator-side protocol phase, used e.g. by wound-wait's "wounds are
    not fatal in the second phase of commit" rule. *)
type phase =
  | Working  (** cohorts executing reads/writes *)
  | Voting  (** prepare sent, collecting votes *)
  | Decided_commit  (** phase two: commit decision made *)
  | Decided_abort
  | Finished

type t = {
  tid : int;
  attempt : int;
  origin_time : float;  (** first submission time (attempt 1) *)
  attempt_time : float;  (** this attempt's start time *)
  startup_ts : Timestamp.t;
      (** initial startup timestamp; identical across attempts. Used for
          2PL victim selection and wound-wait seniority. *)
  cc_ts : Timestamp.t;
      (** timestamp used by timestamp-based CC for this attempt. Equals
          [startup_ts] on attempt 1; BTO redraws it on each restart. *)
  mutable commit_ts : Timestamp.t option;  (** OPT certification timestamp *)
  plan : Plan.t;
  mutable phase : phase;
  mutable doomed : bool;
      (** set as soon as any party decides this attempt must abort *)
}

(** [(tid, attempt)] — the hashtable key distinguishing attempts. *)
val key : t -> int * int

val same_attempt : t -> t -> bool

(** [older a b] per wound-wait seniority: true when [a] started strictly
    before [b]. *)
val older : t -> t -> bool

(** True once the coordinator has entered the second phase of commit. *)
val in_second_phase : t -> bool

val pp : Format.formatter -> t -> unit
