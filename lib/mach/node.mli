(** A node of the machine: one CPU, its disks, and (for processing nodes)
    a concurrency control manager installed by the machine assembly. *)

type t = {
  node_ref : Ids.node_ref;
  cpu : Desim.Cpu.t;
  disks : Desim.Disk.t array;
  disk_rng : Desim.Rng.t;
  mutable cc : Cc_intf.node_cc option;
}

val create :
  Desim.Engine.t ->
  Desim.Rng.t ->
  node_ref:Ids.node_ref ->
  mips:float ->
  resources:Params.resources ->
  t

(** Uniform random disk choice: the model assumes a node's files are
    spread evenly over its disks (Section 3.4). *)
val random_disk : t -> Desim.Disk.t

val install_cc : t -> Cc_intf.node_cc -> unit

(** The node's CC manager. Raises [Invalid_argument] if not installed. *)
val cc : t -> Cc_intf.node_cc

val cpu_utilization : t -> float

(** Cumulative CPU busy time since creation (never reset; for the
    time-series sampler). *)
val cpu_busy_time : t -> float

(** Cumulative busy time summed over the node's disks (never reset). *)
val disk_busy_time : t -> float

(** Operations waiting or in service, summed over the node's disks. *)
val disk_queue : t -> int

(** Mean utilization over the node's disks. *)
val disk_utilization : t -> float

(** Reset CPU and disk observation windows (end of warm-up). *)
val reset_windows : t -> unit
