(** Dispatch point for typed {!Event} streams.

    The machine emits events through a tracer only when one is attached
    (and constructs them inside a closure passed to its guard), so a run
    without observers pays nothing. Multiple sinks — the timeline
    reconstructor, file exporters — can observe the same run. *)

type sink = time:float -> Event.t -> unit

type t

val create : unit -> t

(** Sinks observe events in attachment order. *)
val attach : t -> sink -> unit

val active : t -> bool
val emit : t -> time:float -> Event.t -> unit
