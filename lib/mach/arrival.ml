(* Open-loop arrival process and admission-control spec.

   The closed-loop terminal model caps offered load at NumTerminals; an
   arrival spec replaces the per-terminal fibers with a single rate
   process sampled on its own RNG stream, so millions of users cost one
   pending timer. The spec also carries the host-side admission knobs
   (queue capacity, shed policy, deadline, MPL limiter, retry backoff)
   so one string round-trips through replay artifacts, exactly like
   [Fault_plan]. [zero] (process = [Closed]) is the degenerate spec: the
   machine installs no arrival runtime at all and the legacy terminal
   loop runs untouched. *)

type segment =
  | Hold of { rate : float; duration : float }
  | Ramp of { rate_from : float; rate_to : float; duration : float }
  | Sine of { mean : float; amplitude : float; period : float; duration : float }
  | Spike of { base : float; peak : float; duration : float }

type process = Closed | Qps of float | Profile of segment list
type shed_policy = Reject_newest | Reject_oldest

type t = {
  process : process;
  queue_cap : int;
  shed : shed_policy;
  deadline : float;
  mpl : int;
  retry_base : float;
  retry_cap : float;
}

let zero =
  {
    process = Closed;
    queue_cap = 64;
    shed = Reject_newest;
    deadline = 0.;
    mpl = 0;
    retry_base = 0.1;
    retry_cap = 5.;
  }

let open_loop t =
  match t.process with Closed -> false | Qps _ | Profile _ -> true

(* ------------------------------------------------------------------ *)
(* Rate function                                                       *)

let seg_duration = function
  | Hold { duration; _ }
  | Ramp { duration; _ }
  | Sine { duration; _ }
  | Spike { duration; _ } ->
      duration

(* Instantaneous rate [u] seconds into the segment, clamped >= 0 (a sine
   whose amplitude exceeds its mean bottoms out at zero load). The spike
   decays exponentially from [peak] toward [base] with time constant
   duration/8, so the crowd is essentially gone by segment end. *)
let seg_rate seg u =
  match seg with
  | Hold { rate; _ } -> rate
  | Ramp { rate_from; rate_to; duration } ->
      rate_from +. ((rate_to -. rate_from) *. (u /. duration))
  | Sine { mean; amplitude; period; _ } ->
      Float.max 0. (mean +. (amplitude *. sin (2. *. Float.pi *. u /. period)))
  | Spike { base; peak; duration } ->
      base +. ((peak -. base) *. exp (-.u /. (duration /. 8.)))

let seg_max_rate = function
  | Hold { rate; _ } -> rate
  | Ramp { rate_from; rate_to; _ } -> Float.max rate_from rate_to
  | Sine { mean; amplitude; _ } -> Float.max 0. (mean +. amplitude)
  | Spike { base; peak; _ } -> Float.max base peak

let total_duration segs =
  List.fold_left (fun acc s -> acc +. seg_duration s) 0. segs

(* Offered rate at absolute time [at]. Profiles start at t = 0 and do not
   wrap: past the last segment the rate is zero (arrivals stop). *)
let rate t ~at =
  match t.process with
  | Closed -> 0.
  | Qps r -> r
  | Profile segs ->
      let rec walk start = function
        | [] -> 0.
        | seg :: rest ->
            let stop = start +. seg_duration seg in
            if at < stop then seg_rate seg (at -. start) else walk stop rest
      in
      if at < 0. then 0. else walk 0. segs

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)

(* Next arrival strictly after [now], or None if the process produces no
   further arrival before [horizon]. Time-varying segments are sampled
   by Lewis-Shedler thinning against the segment's max rate; a proposal
   that crosses a segment boundary restarts at the boundary (valid by
   memorylessness), which makes segment boundaries exact: a zero-rate
   segment contributes no arrivals and costs no draws. Constant-rate
   stretches (qps=, hold:) skip the thinning draw entirely. *)
let next_arrival t rng ~now ~horizon =
  match t.process with
  | Closed -> None
  | Qps r ->
      if r <= 0. then None
      else
        let at = now +. Desim.Rng.exponential rng ~mean:(1. /. r) in
        if at > horizon then None else Some at
  | Profile segs ->
      let rec walk start segs now =
        if now > horizon then None
        else
          match segs with
          | [] -> None
          | seg :: rest ->
              let stop = start +. seg_duration seg in
              if now >= stop then walk stop rest now
              else
                let lam = seg_max_rate seg in
                if lam <= 0. then walk stop rest stop
                else
                  let cand =
                    now +. Desim.Rng.exponential rng ~mean:(1. /. lam)
                  in
                  if cand >= stop then walk stop rest stop
                  else if cand > horizon then None
                  else
                    let accept =
                      match seg with
                      | Hold _ -> true
                      | Ramp _ | Sine _ | Spike _ ->
                          Desim.Rng.float rng < seg_rate seg (cand -. start) /. lam
                    in
                    if accept then Some cand else walk start (seg :: rest) cand
      in
      walk 0. segs now

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let ( let* ) = Result.bind
let check cond msg = if cond then Ok () else Error msg

(* Same cap as Fault_plan: keeps the codec's "%.17g" exponent-free. *)
let max_time = 1e9
let max_segments = 64
let max_queue_cap = 1_000_000
let finite_in ~lo ~hi v = Float.is_finite v && v >= lo && v <= hi

let validate_segment seg =
  let* () =
    check
      (finite_in ~lo:1e-9 ~hi:max_time (seg_duration seg))
      "arrivals: segment duration must be positive"
  in
  match seg with
  | Hold { rate; _ } ->
      check (finite_in ~lo:0. ~hi:max_time rate) "arrivals: hold rate out of range"
  | Ramp { rate_from; rate_to; _ } ->
      let* () =
        check
          (finite_in ~lo:0. ~hi:max_time rate_from)
          "arrivals: ramp start rate out of range"
      in
      check
        (finite_in ~lo:0. ~hi:max_time rate_to)
        "arrivals: ramp end rate out of range"
  | Sine { mean; amplitude; period; _ } ->
      let* () =
        check
          (finite_in ~lo:0. ~hi:max_time mean)
          "arrivals: sine mean out of range"
      in
      let* () =
        check
          (finite_in ~lo:0. ~hi:max_time amplitude)
          "arrivals: sine amplitude out of range"
      in
      check
        (finite_in ~lo:1e-9 ~hi:max_time period)
        "arrivals: sine period must be positive"
  | Spike { base; peak; _ } ->
      let* () =
        check
          (finite_in ~lo:0. ~hi:max_time base)
          "arrivals: spike base out of range"
      in
      check
        (finite_in ~lo:0. ~hi:max_time peak)
        "arrivals: spike peak out of range"

let validate t =
  let* () =
    match t.process with
    | Closed -> Ok ()
    | Qps r ->
        check
          (finite_in ~lo:1e-9 ~hi:max_time r)
          "arrivals: qps must be positive"
    | Profile segs ->
        let* () = check (segs <> []) "arrivals: profile needs a segment" in
        let* () =
          check
            (List.length segs <= max_segments)
            "arrivals: too many profile segments"
        in
        List.fold_left
          (fun acc seg ->
            let* () = acc in
            validate_segment seg)
          (Ok ()) segs
  in
  let* () =
    check
      (t.queue_cap >= 1 && t.queue_cap <= max_queue_cap)
      "arrivals: cap must be in [1, 1000000]"
  in
  let* () =
    check (finite_in ~lo:0. ~hi:max_time t.deadline)
      "arrivals: deadline out of range"
  in
  let* () = check (t.mpl >= 0) "arrivals: mpl must be >= 0" in
  let* () =
    check
      (finite_in ~lo:1e-9 ~hi:max_time t.retry_base)
      "arrivals: retry-base must be positive"
  in
  check
    (finite_in ~lo:t.retry_base ~hi:max_time t.retry_cap)
    "arrivals: retry-cap must be >= retry-base"

(* ------------------------------------------------------------------ *)
(* Spec codec                                                          *)

let g = Printf.sprintf "%.17g"

let segment_to_string = function
  | Hold { rate; duration } -> Printf.sprintf "hold:%s/%s" (g rate) (g duration)
  | Ramp { rate_from; rate_to; duration } ->
      Printf.sprintf "ramp:%s..%s/%s" (g rate_from) (g rate_to) (g duration)
  | Sine { mean; amplitude; period; duration } ->
      Printf.sprintf "sine:%s~%s/%s/%s" (g mean) (g amplitude) (g period)
        (g duration)
  | Spike { base; peak; duration } ->
      Printf.sprintf "spike:%s^%s/%s" (g base) (g peak) (g duration)

let to_spec t =
  let items = ref [] in
  let add s = items := s :: !items in
  (* added in reverse display order: the last [add] prints first *)
  if not (Float.equal t.retry_cap zero.retry_cap) then
    add ("retry-cap=" ^ g t.retry_cap);
  if not (Float.equal t.retry_base zero.retry_base) then
    add ("retry-base=" ^ g t.retry_base);
  if t.mpl <> zero.mpl then add (Printf.sprintf "mpl=%d" t.mpl);
  if not (Float.equal t.deadline 0.) then add ("deadline=" ^ g t.deadline);
  (match t.shed with
  | Reject_newest -> ()
  | Reject_oldest -> add "shed=oldest");
  if t.queue_cap <> zero.queue_cap then add (Printf.sprintf "cap=%d" t.queue_cap);
  (match t.process with
  | Closed -> ()
  | Qps r -> add ("qps=" ^ g r)
  | Profile segs ->
      (* tail segments as bare items, profile= on the head, so the head
         prints first: profile=s1,s2,s3,... *)
      let rec go = function
        | [] -> ()
        | [ first ] -> add ("profile=" ^ segment_to_string first)
        | seg :: earlier ->
            add (segment_to_string seg);
            go earlier
      in
      go (List.rev segs));
  String.concat "," !items

let parse_float k v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "arrivals: bad number %S for %s" v k)

let parse_int k v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "arrivals: bad integer %S for %s" v k)

let split2 sep v =
  match String.index_opt v sep with
  | None -> None
  | Some i ->
      Some (String.sub v 0 i, String.sub v (i + 1) (String.length v - i - 1))

let parse_segment v =
  let bad () =
    Error
      (Printf.sprintf
         "arrivals: bad segment %S (want hold:R/D, ramp:A..B/D, sine:M~A/P/D \
          or spike:B^P/D)"
         v)
  in
  match split2 ':' v with
  | None -> bad ()
  | Some (kind, body) -> (
      match kind with
      | "hold" -> (
          match split2 '/' body with
          | None -> bad ()
          | Some (r, d) ->
              let* rate = parse_float "hold" r in
              let* duration = parse_float "hold" d in
              Ok (Hold { rate; duration }))
      | "ramp" -> (
          match split2 '/' body with
          | None -> bad ()
          | Some (rates, d) -> (
              (* A..B: cut at the ".." separator *)
              let n = String.length rates in
              let rec dotdot i =
                if i + 1 >= n then None
                else if rates.[i] = '.' && rates.[i + 1] = '.' then Some i
                else dotdot (i + 1)
              in
              match dotdot 0 with
              | None -> bad ()
              | Some i ->
                  let a = String.sub rates 0 i in
                  let b = String.sub rates (i + 2) (n - i - 2) in
                  let* rate_from = parse_float "ramp" a in
                  let* rate_to = parse_float "ramp" b in
                  let* duration = parse_float "ramp" d in
                  Ok (Ramp { rate_from; rate_to; duration })))
      | "sine" -> (
          match split2 '~' body with
          | None -> bad ()
          | Some (m, rest) -> (
              match split2 '/' rest with
              | None -> bad ()
              | Some (a, rest) -> (
                  match split2 '/' rest with
                  | None -> bad ()
                  | Some (p, d) ->
                      let* mean = parse_float "sine" m in
                      let* amplitude = parse_float "sine" a in
                      let* period = parse_float "sine" p in
                      let* duration = parse_float "sine" d in
                      Ok (Sine { mean; amplitude; period; duration }))))
      | "spike" -> (
          match split2 '^' body with
          | None -> bad ()
          | Some (b, rest) -> (
              match split2 '/' rest with
              | None -> bad ()
              | Some (p, d) ->
                  let* base = parse_float "spike" b in
                  let* peak = parse_float "spike" p in
                  let* duration = parse_float "spike" d in
                  Ok (Spike { base; peak; duration })))
      | _ -> bad ())

let of_spec s =
  let items =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  (* (spec, profile segments in reverse, profile seen) accumulator: a bare
     item (no '=') is a continuation segment of an open profile=, so the
     ISSUE-style "profile=ramp:0..50/60,hold:50/120" parses whole. *)
  let* t, segs_rev, in_profile =
    List.fold_left
      (fun acc item ->
        let* t, segs_rev, in_profile = acc in
        match String.index_opt item '=' with
        | None ->
            if in_profile then
              let* seg = parse_segment item in
              Ok (t, seg :: segs_rev, true)
            else
              Error
                (Printf.sprintf
                   "arrivals: bad item %S (want key=value, or a profile \
                    segment after profile=)"
                   item)
        | Some i -> (
            let k = String.trim (String.sub item 0 i) in
            let v =
              String.trim (String.sub item (i + 1) (String.length item - i - 1))
            in
            match k with
            | "qps" ->
                let* r = parse_float k v in
                if in_profile then
                  Error "arrivals: qps= and profile= are exclusive"
                else Ok ({ t with process = Qps r }, segs_rev, false)
            | "profile" -> (
                let* seg = parse_segment v in
                match t.process with
                | Qps _ -> Error "arrivals: qps= and profile= are exclusive"
                | Closed | Profile _ -> Ok (t, seg :: segs_rev, true))
            | "cap" ->
                let* n = parse_int k v in
                Ok ({ t with queue_cap = n }, segs_rev, in_profile)
            | "shed" -> (
                match v with
                | "newest" -> Ok ({ t with shed = Reject_newest }, segs_rev, in_profile)
                | "oldest" -> Ok ({ t with shed = Reject_oldest }, segs_rev, in_profile)
                | _ ->
                    Error
                      (Printf.sprintf
                         "arrivals: shed must be newest or oldest, not %S" v))
            | "deadline" ->
                let* f = parse_float k v in
                Ok ({ t with deadline = f }, segs_rev, in_profile)
            | "mpl" ->
                let* n = parse_int k v in
                Ok ({ t with mpl = n }, segs_rev, in_profile)
            | "retry-base" ->
                let* f = parse_float k v in
                Ok ({ t with retry_base = f }, segs_rev, in_profile)
            | "retry-cap" ->
                let* f = parse_float k v in
                Ok ({ t with retry_cap = f }, segs_rev, in_profile)
            | _ -> Error (Printf.sprintf "arrivals: unknown key %S" k)))
      (Ok (zero, [], false))
      items
  in
  let t =
    if in_profile then { t with process = Profile (List.rev segs_rev) } else t
  in
  let* () =
    match t.process with
    | Closed ->
        (* admission knobs without a rate process have nothing to govern *)
        check (to_spec t = "") "arrivals: admission keys need qps= or profile="
    | Qps _ | Profile _ -> Ok ()
  in
  let* () = validate t in
  Ok t

let pp fmt t =
  let s = to_spec t in
  Format.pp_print_string fmt (if s = "" then "(closed loop)" else s)
