(** The network manager (Section 3.5).

    A switch with negligible wire time: a message costs [inst_per_msg] CPU
    instructions at the sending node and again at the receiving node, both
    served in the CPU's high-priority FCFS message class. Local deliveries
    (src = dst) are free procedure calls. *)

open Desim

type t = {
  inst_per_msg : float;
  cpu_of : Ids.node_ref -> Cpu.t;
  mutable messages_sent : int;
  mutable on_msg :
    (sent:bool -> src:Ids.node_ref -> dst:Ids.node_ref -> unit) option;
      (** observer of message traffic: called with [~sent:true] when a
          message is handed to the sender's CPU and [~sent:false] when it
          is delivered at the destination. [None] (the default) costs
          nothing. *)
}

let create ~inst_per_msg ~cpu_of =
  { inst_per_msg; cpu_of; messages_sent = 0; on_msg = None }

(** Attach (or detach) the message observer. *)
let set_on_msg t on_msg = t.on_msg <- on_msg

(* Wrap [deliver] so the observer sees the delivery; identity when no
   observer is attached. *)
let observed t ~src ~dst deliver =
  match t.on_msg with
  | None -> deliver
  | Some f ->
      fun () ->
        f ~sent:false ~src ~dst;
        deliver ()

let note_send t ~src ~dst =
  match t.on_msg with Some f -> f ~sent:true ~src ~dst | None -> ()

(** [send t ~src ~dst deliver]: blocks the calling process for the sender-
    side CPU cost, then (asynchronously) charges the receiver-side cost and
    invokes [deliver] at the destination. *)
let send t ~src ~dst deliver =
  if Ids.node_ref_equal src dst then deliver ()
  else begin
    t.messages_sent <- t.messages_sent + 1;
    note_send t ~src ~dst;
    Cpu.consume_priority (t.cpu_of src) ~instructions:t.inst_per_msg;
    Cpu.submit_priority (t.cpu_of dst) ~instructions:t.inst_per_msg
      (observed t ~src ~dst deliver)
  end

(** Like {!send} but fully asynchronous: usable outside process context
    (e.g. from an event callback); the sender-side cost is still charged
    to the sender's CPU. *)
let send_async t ~src ~dst deliver =
  if Ids.node_ref_equal src dst then deliver ()
  else begin
    t.messages_sent <- t.messages_sent + 1;
    note_send t ~src ~dst;
    Cpu.submit_priority (t.cpu_of src) ~instructions:t.inst_per_msg (fun () ->
        Cpu.submit_priority (t.cpu_of dst) ~instructions:t.inst_per_msg
          (observed t ~src ~dst deliver))
  end

let messages_sent t = t.messages_sent
