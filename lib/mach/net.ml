(** The network manager (Section 3.5).

    A switch with negligible wire time: a message costs [inst_per_msg] CPU
    instructions at the sending node and again at the receiving node, both
    served in the CPU's high-priority FCFS message class. Local deliveries
    (src = dst) are free procedure calls.

    A fault plan can install a {e judge}: per protocol message it returns
    the extra delay of each copy to deliver ([[]] = dropped). Only sends
    explicitly marked [~faulty:true] are judged — control-plane traffic
    (replica-write RPCs, abort requests, Snoop rounds) is modeled as a
    reliable channel. With no judge installed, a marked send costs exactly
    the same as an unmarked one. *)

open Desim

type t = {
  inst_per_msg : float;
  cpu_of : Ids.node_ref -> Cpu.t;
  eng : Engine.t option;  (** needed only for judged, delayed deliveries *)
  mutable messages_sent : int;
  mutable on_msg :
    (sent:bool -> src:Ids.node_ref -> dst:Ids.node_ref -> unit) option;
      (** observer of message traffic: called with [~sent:true] when a
          message is handed to the sender's CPU and [~sent:false] when it
          is delivered at the destination. [None] (the default) costs
          nothing. *)
  mutable judge : (src:Ids.node_ref -> dst:Ids.node_ref -> float list) option;
}

let create ?eng ~inst_per_msg ~cpu_of () =
  { inst_per_msg; cpu_of; eng; messages_sent = 0; on_msg = None; judge = None }

(** Attach (or detach) the message observer. *)
let set_on_msg t on_msg = t.on_msg <- on_msg

(** Attach (or detach) the fault judge. *)
let set_judge t judge = t.judge <- judge

(* Wrap [deliver] so the observer sees the delivery; identity when no
   observer is attached. *)
let observed t ~src ~dst deliver =
  match t.on_msg with
  | None -> deliver
  | Some f ->
      fun () ->
        f ~sent:false ~src ~dst;
        deliver ()

let note_send t ~src ~dst =
  match t.on_msg with Some f -> f ~sent:true ~src ~dst | None -> ()

let deliver_at t ~src ~dst deliver =
  Cpu.submit_priority (t.cpu_of dst) ~instructions:t.inst_per_msg
    (observed t ~src ~dst deliver)

(* Receiver-side routing: without a judge (or for reliable sends) exactly
   one immediate delivery; judged sends deliver one copy per verdict
   entry, each after its extra delay. *)
let route t ~faulty ~src ~dst deliver =
  match (if faulty then t.judge else None) with
  | None -> deliver_at t ~src ~dst deliver
  | Some judge ->
      List.iter
        (fun d ->
          if d > 0. then
            match t.eng with
            | Some eng ->
                ignore
                  (Engine.schedule_after eng ~delay:d (fun () ->
                       deliver_at t ~src ~dst deliver)
                    : Engine.handle)
            | None -> deliver_at t ~src ~dst deliver
          else deliver_at t ~src ~dst deliver)
        (judge ~src ~dst)

(** [send t ~src ~dst deliver]: blocks the calling process for the sender-
    side CPU cost, then (asynchronously) charges the receiver-side cost and
    invokes [deliver] at the destination. *)
let send ?(faulty = false) t ~src ~dst deliver =
  if Ids.node_ref_equal src dst then deliver ()
  else begin
    t.messages_sent <- t.messages_sent + 1;
    note_send t ~src ~dst;
    Cpu.consume_priority (t.cpu_of src) ~instructions:t.inst_per_msg;
    route t ~faulty ~src ~dst deliver
  end

(** Like {!send} but fully asynchronous: usable outside process context
    (e.g. from an event callback); the sender-side cost is still charged
    to the sender's CPU. *)
let send_async ?(faulty = false) t ~src ~dst deliver =
  if Ids.node_ref_equal src dst then deliver ()
  else begin
    t.messages_sent <- t.messages_sent + 1;
    note_send t ~src ~dst;
    Cpu.submit_priority (t.cpu_of src) ~instructions:t.inst_per_msg (fun () ->
        route t ~faulty ~src ~dst deliver)
  end

let messages_sent t = t.messages_sent
