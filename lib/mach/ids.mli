(** Identifier types shared across the machine model. *)

(** A node of the database machine: the single host node (terminals,
    coordinators) or one of the processing nodes (data, cohorts). *)
type node_ref = Host | Proc of int

val node_ref_equal : node_ref -> node_ref -> bool
val pp_node_ref : Format.formatter -> node_ref -> unit

(** A page of a file; files model relation partitions. *)
module Page : sig
  type t = { file : int; index : int }

  val make : file:int -> index:int -> t
  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

(** Hashtable keyed by pages. *)
module Page_table : Hashtbl.S with type key = Page.t
