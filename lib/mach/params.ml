(** Simulation parameters, following Tables 1-4 of the paper. *)

(** Whether a transaction's cohorts run one after another (remote procedure
    call style, as in Non-Stop SQL) or all at once (as in Gamma / Bubba /
    Teradata). *)
type exec_pattern = Sequential | Parallel

type cc_algorithm =
  | No_dc  (** "no data contention": every request granted, the NO_DC curve *)
  | Twopl  (** distributed two-phase locking with Snoop deadlock detection *)
  | Wound_wait
  | Bto  (** basic timestamp ordering *)
  | Opt  (** distributed certification [Sinh85, algorithm 1] *)
  | Wait_die
      (** extension: the wait-die policy of [Rose78] (older waits, younger
          aborts itself) — not evaluated in the paper but the natural
          counterpart of wound-wait *)
  | Twopl_defer
      (** extension: 2PL with write-lock requests deferred to the first
          phase of commit, the improvement of [Care89] cited in the
          paper's footnote 13 *)
  | O2pl
      (** optimistic two-phase locking from the underlying [Care88] model
          (mentioned alongside 2PL in the paper's Table 4 text): local
          copies are write-locked at access time, remote *replica* copies
          only during the first phase of commit — identical to 2PL
          without replication *)

let cc_algorithm_name = function
  | No_dc -> "NO_DC"
  | Twopl -> "2PL"
  | Wound_wait -> "WW"
  | Bto -> "BTO"
  | Opt -> "OPT"
  | Wait_die -> "WD"
  | Twopl_defer -> "2PL-D"
  | O2pl -> "O2PL"

let cc_algorithm_of_string s =
  match String.uppercase_ascii s with
  | "NO_DC" | "NODC" -> Some No_dc
  | "2PL" | "TWOPL" -> Some Twopl
  | "WW" | "WOUND_WAIT" | "WOUNDWAIT" -> Some Wound_wait
  | "BTO" -> Some Bto
  | "OPT" -> Some Opt
  | "WD" | "WAIT_DIE" | "WAITDIE" -> Some Wait_die
  | "2PL-D" | "2PLD" | "TWOPL_DEFER" -> Some Twopl_defer
  | "O2PL" -> Some O2pl
  | _ -> None

type database = {
  num_proc_nodes : int;  (** NumProcNodes: 1, 2, 4 or 8 *)
  num_relations : int;  (** 8 relations ... *)
  partitions_per_relation : int;  (** ... of 8 partitions = 64 files *)
  file_size : int;  (** FileSize: pages per partition (300 or 1200) *)
  partitioning_degree : int;
      (** how many nodes each relation is declustered across (1, 2, 4, 8);
          must divide [partitions_per_relation] and be <= [num_proc_nodes] *)
  replication : int;
      (** copies of each file (1 = no replication, the paper's setting).
          Reads use the primary copy; updates are applied to every copy
          (read-one/write-all, per the underlying [Care88] model). *)
}

type workload = {
  num_terminals : int;  (** NumTerminals, attached to the host *)
  think_time : float;  (** ThinkTime: mean exponential think, seconds *)
  exec_pattern : exec_pattern;
  pages_per_partition : int;
      (** NumPages: mean pages read per accessed partition. Actual counts
          are uniform integers in [mean/2, 3*mean/2] (= [4,12] for 8), per
          footnote 12 of the paper. *)
  write_prob : float;  (** WriteProb: probability an accessed page is updated *)
  inst_per_page : float;  (** InstPerPage: mean (exponential) CPU per page *)
}

type resources = {
  host_mips : float;  (** CPURate of the host node, in MIPS *)
  node_mips : float;  (** CPURate of each processing node, in MIPS *)
  disks_per_node : int;  (** NumDisks *)
  min_disk_time : float;  (** MinDiskTime, seconds *)
  max_disk_time : float;  (** MaxDiskTime, seconds *)
  inst_per_update : float;  (** InstPerUpdate: CPU to start a disk write *)
  inst_per_startup : float;  (** InstPerStartup: CPU to start a process *)
  inst_per_msg : float;  (** InstPerMsg: CPU to send or receive a message *)
  inst_per_cc_req : float;  (** InstPerCCReq: CPU per CC request *)
  model_logging : bool;
      (** extension (default false, as in the paper's footnote 5, which
          assumes logging is not the bottleneck): when true, every
          updating cohort forces one log page to disk during prepare,
          before voting. *)
}

type cc = {
  algorithm : cc_algorithm;
  detection_interval : float;
      (** DetectionInterval: Snoop dwell time per node (2PL only) *)
}

(** When a cohort's commit record hits the log disk. The prepare record
    is always forced before voting yes (2PC needs the prepared state to
    survive a crash); the policy only decides whether the commit record
    is forced too. *)
type log_force =
  | At_prepare
      (** lazy commit record: only the prepare force is synchronous; a
          crash after commit is redone from the durable prepare record
          plus the coordinator's decision log *)
  | At_commit
      (** eager commit record: the cohort also forces the commit record
          before acknowledging, trading an extra log I/O per updating
          cohort for locally-complete redo information *)

let log_force_name = function At_prepare -> "prepare" | At_commit -> "commit"

let log_force_of_string s =
  match String.lowercase_ascii s with
  | "prepare" -> Some At_prepare
  | "commit" -> Some At_commit
  | _ -> None

type durability = {
  log_disk : bool;
      (** model a per-node log disk: cohorts append typed WAL records and
          block on FCFS log forces, recovery replays the durable prefix.
          false (the paper's footnote-5 assumption) is a true no-op. *)
  log_min_time : float;  (** log-disk service time bounds; sequential log *)
  log_max_time : float;  (** I/O is faster than the data disks' seeks *)
  log_force : log_force;
  replicas : int;
      (** backup nodes per cohort (0 = none): an updating cohort ships
          its write-set to [replicas] successor nodes at work-done, and
          the coordinator fails over to a live backup when the primary
          crashes mid-transaction *)
  recovery_jobs : int;
      (** redo workers per recovering node (>= 1): with more than one,
          recovery partitions the redo set into independent dependency
          chains and replays them on [recovery_jobs] concurrent workers.
          1 (the default) preserves the serial redo path bit-for-bit. *)
}

let default_durability =
  {
    log_disk = false;
    log_min_time = 0.005;
    log_max_time = 0.015;
    log_force = At_prepare;
    replicas = 0;
    recovery_jobs = 1;
  }

type run = {
  seed : int;
  warmup : float;  (** simulated seconds discarded before measuring *)
  measure : float;  (** simulated seconds of measurement window *)
  restart_delay_floor : float;
      (** restart delay used before any response time has been observed *)
  fresh_restart_plan : bool;
      (** false (default, the paper's model): an aborted transaction
          reruns the same access plan. true: the restart draws a fresh
          access set, the "fake restart" methodology sometimes used in
          [Agra87a]-style simulators to model a steady stream. *)
}

type t = {
  database : database;
  workload : workload;
  resources : resources;
  cc : cc;
  run : run;
  durability : durability;
      (** write-ahead logging / replication extension
          ({!default_durability} = the paper's machine; a disabled
          durability block is a true no-op) *)
  faults : Fault_plan.t;
      (** seeded fault plan ({!Fault_plan.zero} = the paper's failure-free
          machine; a zero plan is a true no-op) *)
  arrivals : Arrival.t;
      (** open-loop arrival process + admission control ({!Arrival.zero}
          = the paper's closed-loop terminals; a closed spec is a true
          no-op) *)
}

(** Parameter values of Table 4 (the "fixed" column): 8 processing nodes,
    8-way partitioning, small database, 2K startup / 1K message costs. *)
let default =
  {
    database =
      {
        num_proc_nodes = 8;
        num_relations = 8;
        partitions_per_relation = 8;
        file_size = 300;
        partitioning_degree = 8;
        replication = 1;
      };
    workload =
      {
        num_terminals = 128;
        think_time = 0.;
        exec_pattern = Parallel;
        pages_per_partition = 8;
        write_prob = 0.25;
        inst_per_page = 8_000.;
      };
    resources =
      {
        host_mips = 10.;
        node_mips = 1.;
        disks_per_node = 2;
        min_disk_time = 0.010;
        max_disk_time = 0.030;
        inst_per_update = 2_000.;
        inst_per_startup = 2_000.;
        inst_per_msg = 1_000.;
        inst_per_cc_req = 0.;
        model_logging = false;
      };
    cc = { algorithm = Twopl; detection_interval = 1.0 };
    run =
      { seed = 1; warmup = 60.; measure = 600.; restart_delay_floor = 0.5; fresh_restart_plan = false };
    durability = default_durability;
    faults = Fault_plan.zero;
    arrivals = Arrival.zero;
  }

let num_files t = t.database.num_relations * t.database.partitions_per_relation

let validate t =
  let d = t.database and w = t.workload and r = t.resources in
  let check cond msg = if not cond then Error msg else Ok () in
  let ( let* ) = Result.bind in
  let* () = check (d.num_proc_nodes > 0) "num_proc_nodes must be positive" in
  let* () = check (d.num_relations > 0) "num_relations must be positive" in
  let* () =
    check
      (d.partitions_per_relation > 0)
      "partitions_per_relation must be positive"
  in
  let* () = check (d.file_size > 0) "file_size must be positive" in
  let* () =
    check
      (d.partitioning_degree >= 1
      && d.partitioning_degree <= d.num_proc_nodes)
      "partitioning_degree must be in [1, num_proc_nodes]"
  in
  let* () =
    check
      (d.partitions_per_relation mod d.partitioning_degree = 0)
      "partitioning_degree must divide partitions_per_relation"
  in
  let* () =
    check
      (d.replication >= 1 && d.replication <= d.num_proc_nodes)
      "replication must be in [1, num_proc_nodes]"
  in
  let* () = check (w.num_terminals > 0) "num_terminals must be positive" in
  let* () = check (w.think_time >= 0.) "think_time must be >= 0" in
  let* () =
    check (w.pages_per_partition >= 1) "pages_per_partition must be >= 1"
  in
  let* () =
    check
      ((3 * w.pages_per_partition + 1) / 2 <= d.file_size)
      "file_size too small for the per-partition page demand"
  in
  let* () =
    check
      (w.write_prob >= 0. && w.write_prob <= 1.)
      "write_prob must be a probability"
  in
  let* () = check (r.host_mips > 0. && r.node_mips > 0.) "MIPS must be > 0" in
  let* () = check (r.disks_per_node > 0) "disks_per_node must be positive" in
  let* () =
    check
      (0. <= r.min_disk_time && r.min_disk_time <= r.max_disk_time)
      "disk times must satisfy 0 <= min <= max"
  in
  let* () =
    check (t.cc.detection_interval > 0.) "detection_interval must be positive"
  in
  let dur = t.durability in
  let* () =
    check
      (0. <= dur.log_min_time && dur.log_min_time <= dur.log_max_time)
      "log-disk times must satisfy 0 <= min <= max"
  in
  let* () =
    check
      (dur.replicas >= 0 && dur.replicas <= d.num_proc_nodes - 1)
      "replicas must be in [0, num_proc_nodes - 1]"
  in
  let* () = check (dur.recovery_jobs >= 1) "recovery_jobs must be >= 1" in
  let* () = Fault_plan.validate ~num_proc_nodes:d.num_proc_nodes t.faults in
  let* () = Arrival.validate t.arrivals in
  (* Open-loop restarts rerun the same plan: a fresh draw at a CC-timed
     restart would interleave with the arrival pump's draws on the shared
     per-class streams and break cross-algorithm workload agreement. *)
  check
    (not (Arrival.open_loop t.arrivals && t.run.fresh_restart_plan))
    "fresh_restart_plan is incompatible with open-loop arrivals"
