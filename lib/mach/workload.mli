(** The source component (Section 3.2): generates transaction access
    plans for terminals.

    Terminals are split evenly into [num_relations] groups; group [i]
    generates transactions that access every partition of relation [i]
    (the paper's 128 terminals in 8 groups of 16).

    Plans are drawn from one independent random stream per terminal, so a
    terminal's plan sequence is identical across concurrency control
    algorithms (common random numbers, the paper's comparison
    methodology). *)

type t

val create : Params.t -> Catalog.t -> Desim.Rng.t -> t

(** Relation accessed by transactions from [terminal]. *)
val relation_of_terminal : t -> terminal:int -> int

(** Mean think time (exposed for the terminal loop). *)
val think_time : t -> float

(** Number of pages accessed in one partition: uniform integer in
    [mean/2, 3*mean/2] (footnote 12 of the paper), capped by file size.
    Draws from the given stream (normally a terminal's plan stream). *)
val draw_page_count : t -> Desim.Rng.t -> int

(** Structural hash of a plan (relation, cohort nodes, page accesses,
    update flags, replica applications). *)
val plan_fingerprint : Plan.t -> int

(** Start logging a fingerprint of every generated plan (off by default). *)
val enable_fingerprints : t -> unit

(** Per-terminal fingerprints of the plans generated so far, in
    generation order; empty unless {!enable_fingerprints} was called. *)
val fingerprints : t -> int list array

(** Fresh access plan for a transaction submitted by [terminal]: one
    cohort per node holding partitions of the terminal's relation, pages
    sampled without replacement and visited in ascending order, each
    updated with probability WriteProb. *)
val generate_plan : t -> terminal:int -> Plan.t

(** Per-page CPU demand draw: exponential with mean InstPerPage. *)
val draw_page_instructions : t -> float
