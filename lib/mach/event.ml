(** Typed lifecycle events of the simulated machine.

    Unlike the free-form string {!Desim.Trace}, these events carry the
    transaction, node and page identifiers needed to reconstruct a
    per-transaction timeline ({!Ddbm.Timeline}) or to export a trace for
    Perfetto. Events are emitted by the machine only while a
    {!Tracer.t} is attached, so tracing costs nothing otherwise. *)

open Ids

type lock_mode = Read | Write

let lock_mode_name = function Read -> "read" | Write -> "write"

(** One row of the time-series sampler, for a processing node.
    Utilizations are means over the sampling interval just ended; queue
    lengths are instantaneous. *)
type node_sample = {
  cpu_util : float;
  disk_util : float;  (** mean over the node's disks *)
  cpu_queue : int;  (** jobs in the processor-sharing class *)
  disk_queue : int;  (** operations waiting or in service, all disks *)
}

type sample = {
  active : int;  (** transactions currently in the system *)
  host_cpu_util : float;
  nodes : node_sample array;
}

type t =
  | Submit of { tid : int }  (** terminal submitted a new transaction *)
  | Attempt_start of { tid : int; attempt : int }
  | Setup_done of { tid : int; attempt : int }
      (** coordinator process startup finished; work phase begins *)
  | Cohort_load of { tid : int; attempt : int; node : int }
      (** load-cohort message sent to [node] *)
  | Cohort_start of { tid : int; attempt : int; node : int }
      (** cohort process running at [node] *)
  | Lock_request of {
      tid : int;
      attempt : int;
      node : int;
      page : Page.t;
      mode : lock_mode;
    }
  | Lock_grant of {
      tid : int;
      attempt : int;
      node : int;
      page : Page.t;
      mode : lock_mode;
      waited : float;  (** CC blocking time; 0 when granted immediately *)
    }
  | Lock_release of { tid : int; attempt : int; node : int }
      (** all CC footprint at [node] released (commit or abort) *)
  | Disk_access of {
      tid : int;
      attempt : int;
      node : int;
      write : bool;
      dur : float;  (** queueing + service *)
    }
  | Cpu_slice of { tid : int; attempt : int; node : int; dur : float }
      (** page-processing CPU, wall time under processor sharing *)
  | Msg_send of { src : node_ref; dst : node_ref }
  | Msg_recv of { src : node_ref; dst : node_ref }
  | Work_done of { tid : int; attempt : int; node : int }
      (** coordinator received [node]'s Work_done *)
  | Prepare of { tid : int; attempt : int }
      (** coordinator broadcast Do_prepare; 2PC begins *)
  | Vote of { tid : int; attempt : int; node : int; yes : bool }
  | Decision of { tid : int; attempt : int; commit : bool }
  | Committed of { tid : int; attempt : int; response : float }
  | Aborted of { tid : int; attempt : int; reason : Txn.abort_reason }
  | Wound of {
      tid : int;
      attempt : int;
      from_node : int;
      reason : Txn.abort_reason;
    }  (** a CC manager or the Snoop demanded this transaction's abort *)
  | Restart_wait of { tid : int; attempt : int; delay : float }
  | Snoop_round of { node : int; edges : int; victims : int }
  | Node_crashed of { node : node_ref }
  | Node_recovered of { node : node_ref }
  | Msg_dropped of { src : node_ref; dst : node_ref }
      (** the fault plan's network judge dropped a protocol message *)
  | Timeout_fired of { tid : int; attempt : int; at_node : node_ref; round : int }
      (** a 2PC participant's receive timed out; [round] counts the
          consecutive timeouts behind the capped backoff *)
  | Txn_orphaned of { tid : int; attempt : int; node : int }
      (** a cohort's CC footprint was cleaned up out-of-band (node crash
          or an exhausted abort-retry budget) *)
  | Log_forced of { tid : int; attempt : int; node : int; dur : float }
      (** a cohort's WAL force completed at [node] after [dur] seconds
          of log-disk queueing + service; forces before the attempt's
          Decision are prepare forces, later ones commit forces *)
  | Cohort_resurrected of { tid : int; attempt : int; node : int; backup : int }
      (** [node] crashed but this cohort's shipped write-set let the
          coordinator fail over to [backup] instead of dooming it *)
  | Recovery_started of { node : int }
      (** crash recovery (analysis + redo over the durable log) began *)
  | Recovery_completed of { node : int; duration : float; redone : int }
      (** recovery finished after [duration] seconds, having resolved
          [redone] in-doubt transactions to commit and redone their
          durable updates *)
  | Recovery_chain_started of { node : int; chain : int; txns : int }
      (** a redo worker began replaying dependency chain [chain]
          ([txns] transactions) of [node]'s recovery *)
  | Recovery_chain_completed of {
      node : int;
      chain : int;
      txns : int;
      duration : float;
    }  (** chain [chain] finished replaying after [duration] seconds *)
  | Sample of sample

let name = function
  | Submit _ -> "submit"
  | Attempt_start _ -> "attempt-start"
  | Setup_done _ -> "setup-done"
  | Cohort_load _ -> "cohort-load"
  | Cohort_start _ -> "cohort-start"
  | Lock_request _ -> "lock-request"
  | Lock_grant _ -> "lock-grant"
  | Lock_release _ -> "lock-release"
  | Disk_access _ -> "disk"
  | Cpu_slice _ -> "cpu"
  | Msg_send _ -> "msg-send"
  | Msg_recv _ -> "msg-recv"
  | Work_done _ -> "work-done"
  | Prepare _ -> "prepare"
  | Vote _ -> "vote"
  | Decision _ -> "decision"
  | Committed _ -> "committed"
  | Aborted _ -> "aborted"
  | Wound _ -> "wound"
  | Restart_wait _ -> "restart-wait"
  | Snoop_round _ -> "snoop-round"
  | Node_crashed _ -> "node-crashed"
  | Node_recovered _ -> "node-recovered"
  | Msg_dropped _ -> "msg-dropped"
  | Timeout_fired _ -> "timeout-fired"
  | Txn_orphaned _ -> "txn-orphaned"
  | Log_forced _ -> "log-forced"
  | Cohort_resurrected _ -> "cohort-resurrected"
  | Recovery_started _ -> "recovery-started"
  | Recovery_completed _ -> "recovery-completed"
  | Recovery_chain_started _ -> "recovery-chain-started"
  | Recovery_chain_completed _ -> "recovery-chain-completed"
  | Sample _ -> "sample"

(** Transaction ids carried by the event, if any. *)
let txn_of = function
  | Submit { tid } -> Some (tid, 1)
  | Attempt_start { tid; attempt }
  | Setup_done { tid; attempt }
  | Prepare { tid; attempt } ->
      Some (tid, attempt)
  | Cohort_load { tid; attempt; _ }
  | Cohort_start { tid; attempt; _ }
  | Lock_request { tid; attempt; _ }
  | Lock_grant { tid; attempt; _ }
  | Lock_release { tid; attempt; _ }
  | Disk_access { tid; attempt; _ }
  | Cpu_slice { tid; attempt; _ }
  | Work_done { tid; attempt; _ }
  | Vote { tid; attempt; _ }
  | Decision { tid; attempt; _ }
  | Committed { tid; attempt; _ }
  | Aborted { tid; attempt; _ }
  | Wound { tid; attempt; _ }
  | Restart_wait { tid; attempt; _ }
  | Timeout_fired { tid; attempt; _ }
  | Txn_orphaned { tid; attempt; _ }
  | Log_forced { tid; attempt; _ }
  | Cohort_resurrected { tid; attempt; _ } ->
      Some (tid, attempt)
  | Msg_send _ | Msg_recv _ | Snoop_round _ | Sample _ | Node_crashed _
  | Node_recovered _ | Msg_dropped _ | Recovery_started _
  | Recovery_completed _ | Recovery_chain_started _
  | Recovery_chain_completed _ ->
      None

(** Flat field listing for serialization; {!Sample} payloads are handled
    by exporters directly (they are the only nested events). *)
type field = I of int | F of float | S of string | B of bool

let fields ev : (string * field) list =
  let page p = S (Format.asprintf "%a" Page.pp p) in
  let node_ref r = S (Format.asprintf "%a" pp_node_ref r) in
  let reason r = S (Txn.abort_reason_name r) in
  match ev with
  | Submit { tid } -> [ ("tid", I tid) ]
  | Attempt_start { tid; attempt } | Setup_done { tid; attempt } ->
      [ ("tid", I tid); ("attempt", I attempt) ]
  | Cohort_load { tid; attempt; node }
  | Cohort_start { tid; attempt; node }
  | Lock_release { tid; attempt; node }
  | Work_done { tid; attempt; node } ->
      [ ("tid", I tid); ("attempt", I attempt); ("node", I node) ]
  | Lock_request { tid; attempt; node; page = p; mode } ->
      [
        ("tid", I tid);
        ("attempt", I attempt);
        ("node", I node);
        ("page", page p);
        ("mode", S (lock_mode_name mode));
      ]
  | Lock_grant { tid; attempt; node; page = p; mode; waited } ->
      [
        ("tid", I tid);
        ("attempt", I attempt);
        ("node", I node);
        ("page", page p);
        ("mode", S (lock_mode_name mode));
        ("waited", F waited);
      ]
  | Disk_access { tid; attempt; node; write; dur } ->
      [
        ("tid", I tid);
        ("attempt", I attempt);
        ("node", I node);
        ("write", B write);
        ("dur", F dur);
      ]
  | Cpu_slice { tid; attempt; node; dur } ->
      [
        ("tid", I tid);
        ("attempt", I attempt);
        ("node", I node);
        ("dur", F dur);
      ]
  | Msg_send { src; dst } | Msg_recv { src; dst } ->
      [ ("src", node_ref src); ("dst", node_ref dst) ]
  | Prepare { tid; attempt } -> [ ("tid", I tid); ("attempt", I attempt) ]
  | Vote { tid; attempt; node; yes } ->
      [
        ("tid", I tid); ("attempt", I attempt); ("node", I node); ("yes", B yes);
      ]
  | Decision { tid; attempt; commit } ->
      [ ("tid", I tid); ("attempt", I attempt); ("commit", B commit) ]
  | Committed { tid; attempt; response } ->
      [ ("tid", I tid); ("attempt", I attempt); ("response", F response) ]
  | Aborted { tid; attempt; reason = r } ->
      [ ("tid", I tid); ("attempt", I attempt); ("reason", reason r) ]
  | Wound { tid; attempt; from_node; reason = r } ->
      [
        ("tid", I tid);
        ("attempt", I attempt);
        ("from_node", I from_node);
        ("reason", reason r);
      ]
  | Restart_wait { tid; attempt; delay } ->
      [ ("tid", I tid); ("attempt", I attempt); ("delay", F delay) ]
  | Snoop_round { node; edges; victims } ->
      [ ("node", I node); ("edges", I edges); ("victims", I victims) ]
  | Node_crashed { node } -> [ ("node", node_ref node) ]
  | Node_recovered { node } -> [ ("node", node_ref node) ]
  | Msg_dropped { src; dst } ->
      [ ("src", node_ref src); ("dst", node_ref dst) ]
  | Timeout_fired { tid; attempt; at_node; round } ->
      [
        ("tid", I tid);
        ("attempt", I attempt);
        ("at_node", node_ref at_node);
        ("round", I round);
      ]
  | Txn_orphaned { tid; attempt; node } ->
      [ ("tid", I tid); ("attempt", I attempt); ("node", I node) ]
  | Log_forced { tid; attempt; node; dur } ->
      [
        ("tid", I tid);
        ("attempt", I attempt);
        ("node", I node);
        ("dur", F dur);
      ]
  | Cohort_resurrected { tid; attempt; node; backup } ->
      [
        ("tid", I tid);
        ("attempt", I attempt);
        ("node", I node);
        ("backup", I backup);
      ]
  | Recovery_started { node } -> [ ("node", I node) ]
  | Recovery_completed { node; duration; redone } ->
      [ ("node", I node); ("duration", F duration); ("redone", I redone) ]
  | Recovery_chain_started { node; chain; txns } ->
      [ ("node", I node); ("chain", I chain); ("txns", I txns) ]
  | Recovery_chain_completed { node; chain; txns; duration } ->
      [
        ("node", I node);
        ("chain", I chain);
        ("txns", I txns);
        ("duration", F duration);
      ]
  | Sample { active; host_cpu_util; nodes } ->
      [
        ("active", I active);
        ("host_cpu", F host_cpu_util);
        ("nodes", I (Array.length nodes));
      ]

let pp fmt ev =
  Format.fprintf fmt "%s" (name ev);
  List.iter
    (fun (k, v) ->
      match v with
      | I i -> Format.fprintf fmt " %s=%d" k i
      | F f -> Format.fprintf fmt " %s=%.6f" k f
      | S s -> Format.fprintf fmt " %s=%s" k s
      | B b -> Format.fprintf fmt " %s=%b" k b)
    (fields ev)
