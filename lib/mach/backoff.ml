let delay ~base ~cap ~round =
  if round <= 1 then Float.min base cap
  else
    (* 2^(round-1) overflows to infinity for huge rounds; min caps it. *)
    Float.min (base *. (2. ** float_of_int (round - 1))) cap

let delay_jittered ~jitter ~rng ~base ~cap ~round =
  let d = delay ~base ~cap ~round in
  if jitter > 0. then
    (* Uniform scale in [1 - jitter/2, 1 + jitter/2]. The draw happens
       only on this path, so a zero-jitter plan leaves the stream (and
       every pre-jitter pin) untouched. *)
    d *. (1. -. (jitter /. 2.) +. (jitter *. Desim.Rng.float rng))
  else d

let deadline ~now ~base ~cap ~round = now +. delay ~base ~cap ~round

let exhausted ~max_retries ~round = round > max_retries

let total ~base ~cap ~max_retries =
  let rec go acc round =
    if round > max_retries + 1 then acc
    else go (acc +. delay ~base ~cap ~round) (round + 1)
  in
  go 0. 1
