(** Additive response-time decomposition of a committed transaction
    (the paper's Section 4-5 analysis vocabulary, made measurable).

    The response time of a committed transaction — origination to commit,
    spanning restarts — is partitioned into mutually exclusive wall-clock
    components observed on the coordinator/critical-cohort timeline:

    - [restart]: everything before the committing attempt began — aborted
      attempts in full plus the adaptive restart delays between attempts;
    - [setup]: the committing attempt's coordinator process startup;
    - [useful_cpu]: page-processing CPU on the work-phase critical path
      (the cohort whose Work_done arrived last; summed over all cohorts
      under sequential execution, whose cohorts run one at a time);
    - [disk]: critical-path disk reads of the work phase;
    - [blocked]: critical-path concurrency control blocking (lock waits,
      conversion waits, CC request processing);
    - [msg_other]: the rest of the work phase — cohort-load messages,
      cohort process startup, replica write-permission round trips, and
      queueing not attributed above;
    - [log]: critical-path log forcing inside the commit protocol — the
      prepare-record force of the cohort whose vote gated the decision
      (zero without a modeled log disk);
    - [commit]: the rest of the two-phase commit protocol, prepare
      through last ack.

    By construction the eight components sum to the measured response
    time (up to float rounding); the conformance suite asserts this per
    transaction. *)

type t = {
  restart : float;
  setup : float;
  useful_cpu : float;
  disk : float;
  blocked : float;
  msg_other : float;
  log : float;
  commit : float;
}

let zero =
  {
    restart = 0.;
    setup = 0.;
    useful_cpu = 0.;
    disk = 0.;
    blocked = 0.;
    msg_other = 0.;
    log = 0.;
    commit = 0.;
  }

let total d =
  d.restart +. d.setup +. d.useful_cpu +. d.disk +. d.blocked +. d.msg_other
  +. d.log +. d.commit

let add a b =
  {
    restart = a.restart +. b.restart;
    setup = a.setup +. b.setup;
    useful_cpu = a.useful_cpu +. b.useful_cpu;
    disk = a.disk +. b.disk;
    blocked = a.blocked +. b.blocked;
    msg_other = a.msg_other +. b.msg_other;
    log = a.log +. b.log;
    commit = a.commit +. b.commit;
  }

let scale d k =
  {
    restart = d.restart *. k;
    setup = d.setup *. k;
    useful_cpu = d.useful_cpu *. k;
    disk = d.disk *. k;
    blocked = d.blocked *. k;
    msg_other = d.msg_other *. k;
    log = d.log *. k;
    commit = d.commit *. k;
  }

(** Assemble a decomposition from the coordinator-timeline phase widths
    and the critical-path cohort resources of the work phase. [msg_other]
    is the work-phase residual, and [log] (the decision-gating cohort's
    prepare force, carved out of the commit width) is clamped to
    [commit], so the components sum to
    [restart + setup + exec + commit] exactly (the max with 0 only
    guards against float rounding; the measured resources lie inside
    their phases by construction). Shared by the machine and the
    event-fold {!Timeline} reconstructor so both produce bit-identical
    results. *)
let assemble ~restart ~setup ~exec ~blocked ~disk ~cpu ~log ~commit =
  let msg_other = Float.max 0. (exec -. (blocked +. disk +. cpu)) in
  let log = Float.min (Float.max 0. log) commit in
  {
    restart;
    setup;
    useful_cpu = cpu;
    disk;
    blocked;
    msg_other;
    log;
    commit = commit -. log;
  }

(** Stable (name, getter) listing used by CSV export and result diffs. *)
let fields =
  [
    ("t_restart", fun d -> d.restart);
    ("t_setup", fun d -> d.setup);
    ("t_cpu", fun d -> d.useful_cpu);
    ("t_disk", fun d -> d.disk);
    ("t_blocked", fun d -> d.blocked);
    ("t_msg", fun d -> d.msg_other);
    ("t_log", fun d -> d.log);
    ("t_2pc", fun d -> d.commit);
  ]

let pp fmt d =
  Format.fprintf fmt
    "restart %.3f + setup %.3f + cpu %.3f + disk %.3f + blocked %.3f + msg \
     %.3f + log %.3f + 2pc %.3f = %.3f s"
    d.restart d.setup d.useful_cpu d.disk d.blocked d.msg_other d.log d.commit
    (total d)
