type crash = { target : Ids.node_ref; at : float; duration : float }

type t = {
  crashes : crash list;
  crash_rate : float;
  mean_repair : float;
  msg_loss : float;
  msg_dup : float;
  msg_delay : float;
  recrash : float;
  torn_tail : float;
  timeout : float;
  timeout_cap : float;
  timeout_jitter : float;
  max_retries : int;
  fault_seed : int;
  chaos : string list;
}

let zero =
  {
    crashes = [];
    crash_rate = 0.;
    mean_repair = 1.;
    msg_loss = 0.;
    msg_dup = 0.;
    msg_delay = 0.;
    recrash = 0.;
    torn_tail = 0.;
    timeout = 1.;
    timeout_cap = 8.;
    timeout_jitter = 0.;
    max_retries = 4;
    fault_seed = 0;
    chaos = [];
  }

let active t =
  t.crashes <> [] || t.crash_rate > 0. || t.msg_loss > 0. || t.msg_dup > 0.
  || t.msg_delay > 0. || t.recrash > 0. || t.torn_tail > 0.

let is_zero t = (not (active t)) && t.chaos = []

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let ( let* ) = Result.bind
let check cond msg = if cond then Ok () else Error msg

(* Time-like values are capped so the spec codec's "%.17g" never needs an
   exponent with a '+' in it (which would collide with the crash-entry
   separator). *)
let max_time = 1e9

let finite_in ~lo ~hi v = Float.is_finite v && v >= lo && v <= hi

let validate_crash ~num_proc_nodes c =
  let* () =
    match c.target with
    | Ids.Host -> Ok ()
    | Ids.Proc i ->
        check
          (i >= 0 && i < num_proc_nodes)
          (Printf.sprintf "faults: crash target proc %d out of range" i)
  in
  let* () =
    check (finite_in ~lo:0. ~hi:max_time c.at) "faults: crash time out of range"
  in
  check
    (finite_in ~lo:0. ~hi:max_time c.duration && c.duration > 0.)
    "faults: crash duration must be positive"

let validate ~num_proc_nodes t =
  let* () =
    List.fold_left
      (fun acc c ->
        let* () = acc in
        validate_crash ~num_proc_nodes c)
      (Ok ()) t.crashes
  in
  let* () =
    check
      (finite_in ~lo:0. ~hi:max_time t.crash_rate)
      "faults: crash-rate out of range"
  in
  let* () =
    check
      ((Float.equal t.crash_rate 0. && Float.equal t.recrash 0.)
      || finite_in ~lo:1e-9 ~hi:max_time t.mean_repair)
      "faults: mttr must be positive when crash-rate or recrash > 0"
  in
  let* () =
    check
      (finite_in ~lo:0. ~hi:1. t.msg_loss && t.msg_loss < 1.)
      "faults: loss must be in [0, 1)"
  in
  let* () =
    check (finite_in ~lo:0. ~hi:1. t.msg_dup) "faults: dup must be in [0, 1]"
  in
  let* () =
    check
      (finite_in ~lo:0. ~hi:max_time t.msg_delay)
      "faults: delay out of range"
  in
  let* () =
    check
      (finite_in ~lo:0. ~hi:1. t.recrash)
      "faults: recrash must be in [0, 1]"
  in
  let* () =
    check
      (finite_in ~lo:0. ~hi:1. t.torn_tail)
      "faults: torn-tail must be in [0, 1]"
  in
  let* () =
    check
      (finite_in ~lo:1e-9 ~hi:max_time t.timeout)
      "faults: timeout must be positive"
  in
  let* () =
    check
      (finite_in ~lo:t.timeout ~hi:max_time t.timeout_cap)
      "faults: timeout-cap must be >= timeout"
  in
  let* () =
    check
      (finite_in ~lo:0. ~hi:1. t.timeout_jitter)
      "faults: jitter must be in [0, 1]"
  in
  check (t.max_retries >= 1) "faults: retries must be >= 1"

(* ------------------------------------------------------------------ *)
(* Spec codec                                                          *)

let g = Printf.sprintf "%.17g"

let target_to_string = function
  | Ids.Host -> "host"
  | Ids.Proc i -> string_of_int i

let to_spec t =
  let items = ref [] in
  let add s = items := s :: !items in
  List.iter (fun n -> add ("chaos=" ^ n)) (List.rev t.chaos);
  if t.fault_seed <> zero.fault_seed then
    add (Printf.sprintf "fault-seed=%d" t.fault_seed);
  if t.max_retries <> zero.max_retries then
    add (Printf.sprintf "retries=%d" t.max_retries);
  if not (Float.equal t.timeout_jitter 0.) then
    add ("jitter=" ^ g t.timeout_jitter);
  if not (Float.equal t.timeout_cap zero.timeout_cap) then
    add ("timeout-cap=" ^ g t.timeout_cap);
  if not (Float.equal t.timeout zero.timeout) then add ("timeout=" ^ g t.timeout);
  if not (Float.equal t.torn_tail 0.) then add ("torn-tail=" ^ g t.torn_tail);
  if not (Float.equal t.recrash 0.) then add ("recrash=" ^ g t.recrash);
  if not (Float.equal t.mean_repair zero.mean_repair) then
    add ("mttr=" ^ g t.mean_repair);
  if not (Float.equal t.crash_rate 0.) then add ("crash-rate=" ^ g t.crash_rate);
  List.iter
    (fun c ->
      add
        (Printf.sprintf "crash=%s@%s+%s" (target_to_string c.target) (g c.at)
           (g c.duration)))
    (List.rev t.crashes);
  if not (Float.equal t.msg_delay 0.) then add ("delay=" ^ g t.msg_delay);
  if not (Float.equal t.msg_dup 0.) then add ("dup=" ^ g t.msg_dup);
  if not (Float.equal t.msg_loss 0.) then add ("loss=" ^ g t.msg_loss);
  String.concat "," !items

let parse_float k v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "faults: bad number %S for %s" v k)

let parse_int k v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "faults: bad integer %S for %s" v k)

let parse_target v =
  if v = "host" then Ok Ids.Host
  else
    match int_of_string_opt v with
    | Some i -> Ok (Ids.Proc i)
    | None -> Error (Printf.sprintf "faults: bad crash target %S" v)

let parse_crash v =
  match String.index_opt v '@' with
  | None -> Error (Printf.sprintf "faults: bad crash spec %S (want TGT@AT+DUR)" v)
  | Some i -> (
      let tgt = String.sub v 0 i in
      let rest = String.sub v (i + 1) (String.length v - i - 1) in
      match String.index_opt rest '+' with
      | None ->
          Error (Printf.sprintf "faults: bad crash spec %S (want TGT@AT+DUR)" v)
      | Some j ->
          let at_s = String.sub rest 0 j in
          let dur_s = String.sub rest (j + 1) (String.length rest - j - 1) in
          let* target = parse_target tgt in
          let* at = parse_float "crash" at_s in
          let* duration = parse_float "crash" dur_s in
          Ok { target; at; duration })

let of_spec s =
  let items =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc item ->
      let* t = acc in
      match String.index_opt item '=' with
      | None -> Error (Printf.sprintf "faults: bad item %S (want key=value)" item)
      | Some i -> (
          let k = String.trim (String.sub item 0 i) in
          let v =
            String.trim (String.sub item (i + 1) (String.length item - i - 1))
          in
          match k with
          | "loss" ->
              let* f = parse_float k v in
              Ok { t with msg_loss = f }
          | "dup" ->
              let* f = parse_float k v in
              Ok { t with msg_dup = f }
          | "delay" ->
              let* f = parse_float k v in
              Ok { t with msg_delay = f }
          | "crash" ->
              let* c = parse_crash v in
              Ok { t with crashes = t.crashes @ [ c ] }
          | "crash-rate" ->
              let* f = parse_float k v in
              Ok { t with crash_rate = f }
          | "mttr" ->
              let* f = parse_float k v in
              Ok { t with mean_repair = f }
          | "recrash" ->
              let* f = parse_float k v in
              Ok { t with recrash = f }
          | "torn-tail" ->
              let* f = parse_float k v in
              Ok { t with torn_tail = f }
          | "timeout" ->
              let* f = parse_float k v in
              Ok { t with timeout = f }
          | "timeout-cap" ->
              let* f = parse_float k v in
              Ok { t with timeout_cap = f }
          | "jitter" ->
              let* f = parse_float k v in
              Ok { t with timeout_jitter = f }
          | "retries" ->
              let* i = parse_int k v in
              Ok { t with max_retries = i }
          | "fault-seed" ->
              let* i = parse_int k v in
              Ok { t with fault_seed = i }
          | "chaos" -> Ok { t with chaos = t.chaos @ [ v ] }
          | _ -> Error (Printf.sprintf "faults: unknown key %S" k)))
    (Ok zero) items
  |> fun parsed ->
  (* range-check everything that does not need the machine size, so the
     CLI rejects a bad spec before a run starts *)
  let* t = parsed in
  let* () = validate ~num_proc_nodes:Stdlib.max_int t in
  Ok t

let pp fmt t =
  let s = to_spec t in
  Format.pp_print_string fmt (if s = "" then "(none)" else s)
