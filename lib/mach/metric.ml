(** Typed metric registry and exposition (Prometheus text + JSON).

    A registry is an ordered list of metric families; each family has a
    stable name, a help string, a kind, and labeled samples. Machines build
    one at end of run ({!Machine.registry}) from their windowed metrics, the
    per-node rollups, and the tail-latency histograms; the CLI serializes it
    behind [--metrics-out]. Families are rendered in registration order and
    labels in the order given, so exposition output is deterministic. *)

open Desim

type kind = Counter | Gauge | Histogram

type value = V of float | H of Stats.Hdr.t

type sample = { labels : (string * string) list; value : value }

type family = {
  name : string;
  help : string;
  kind : kind;
  samples : sample list;
}

type t = family list

(** Quantiles every histogram family exposes, matching the tentpole set. *)
let quantiles = [ 0.5; 0.9; 0.95; 0.99; 0.999 ]

let sample ?(labels = []) value = { labels; value }

let family ~name ~help ~kind samples = { name; help; kind; samples }

let counter ~name ~help v = family ~name ~help ~kind:Counter [ sample (V v) ]
let gauge ~name ~help v = family ~name ~help ~kind:Gauge [ sample (V v) ]

let histogram ~name ~help h =
  family ~name ~help ~kind:Histogram [ sample (H h) ]

(* ------------------------------------------------------------------ *)
(* Rendering *)

let fmt_float x =
  if Float.is_nan x then "0"
  else if Float.is_finite x then Printf.sprintf "%.17g" x
  else if x > 0. then "1e308"
  else "-1e308"

let escape ~quote s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' when quote -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels buf labels =
  match labels with
  | [] -> ()
  | labels ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf k;
          Buffer.add_string buf "=\"";
          Buffer.add_string buf (escape ~quote:true v);
          Buffer.add_char buf '"')
        labels;
      Buffer.add_char buf '}'

let prom_line buf name labels v =
  Buffer.add_string buf name;
  prom_labels buf labels;
  Buffer.add_char buf ' ';
  Buffer.add_string buf (fmt_float v);
  Buffer.add_char buf '\n'

(** Prometheus text exposition format. Histogram families are rendered as
    summaries (explicit [quantile] label per sample plus [_sum]/[_count]),
    which carries p50..p999 directly without a scrape-side
    [histogram_quantile] step; the full bucket detail lives in the JSON
    rendering. *)
let to_prometheus (t : t) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s %s\n" f.name (escape ~quote:false f.help));
      let kind =
        match f.kind with
        | Counter -> "counter"
        | Gauge -> "gauge"
        | Histogram -> "summary"
      in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" f.name kind);
      List.iter
        (fun s ->
          match s.value with
          | V v -> prom_line buf f.name s.labels v
          | H h ->
              List.iter
                (fun q ->
                  prom_line buf f.name
                    (s.labels @ [ ("quantile", Printf.sprintf "%g" q) ])
                    (Stats.Hdr.quantile h q))
                quantiles;
              prom_line buf (f.name ^ "_sum") s.labels (Stats.Hdr.total h);
              prom_line buf (f.name ^ "_count") s.labels
                (float_of_int (Stats.Hdr.count h)))
        f.samples)
    t;
  Buffer.contents buf

let json_str buf s =
  Buffer.add_char buf '"';
  Buffer.add_string buf (escape ~quote:true s);
  Buffer.add_char buf '"'

let json_labels buf labels =
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      json_str buf k;
      Buffer.add_char buf ':';
      json_str buf v)
    labels;
  Buffer.add_char buf '}'

(** JSON rendering: one object per family; histogram samples carry count,
    sum, the {!quantiles} set (keyed ["p50"], ["p99"], ...) and the
    non-empty cumulative buckets as [[upper_edge, cumulative_count]]
    pairs. *)
let to_json (t : t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"families\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "{\"name\":";
      json_str buf f.name;
      Buffer.add_string buf ",\"help\":";
      json_str buf f.help;
      Buffer.add_string buf ",\"type\":";
      json_str buf
        (match f.kind with
        | Counter -> "counter"
        | Gauge -> "gauge"
        | Histogram -> "histogram");
      Buffer.add_string buf ",\"samples\":[";
      List.iteri
        (fun j s ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf "{\"labels\":";
          json_labels buf s.labels;
          (match s.value with
          | V v ->
              Buffer.add_string buf ",\"value\":";
              Buffer.add_string buf (fmt_float v)
          | H h ->
              Buffer.add_string buf
                (Printf.sprintf ",\"count\":%d" (Stats.Hdr.count h));
              Buffer.add_string buf ",\"sum\":";
              Buffer.add_string buf (fmt_float (Stats.Hdr.total h));
              Buffer.add_string buf ",\"quantiles\":{";
              List.iteri
                (fun k q ->
                  if k > 0 then Buffer.add_char buf ',';
                  json_str buf
                    (Printf.sprintf "p%s"
                       (String.concat ""
                          (String.split_on_char '.'
                             (Printf.sprintf "%g" (q *. 100.)))));
                  Buffer.add_char buf ':';
                  Buffer.add_string buf (fmt_float (Stats.Hdr.quantile h q)))
                quantiles;
              Buffer.add_string buf "},\"buckets\":[";
              List.iteri
                (fun k (le, cum) ->
                  if k > 0 then Buffer.add_char buf ',';
                  Buffer.add_string buf
                    (Printf.sprintf "[%s,%d]" (fmt_float le) cum))
                (Stats.Hdr.cumulative h);
              Buffer.add_char buf ']');
          Buffer.add_char buf '}')
        f.samples;
      Buffer.add_string buf "]}")
    t;
  Buffer.add_string buf "]}";
  Buffer.contents buf
