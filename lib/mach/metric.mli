(** Typed metric registry and exposition (Prometheus text + JSON).

    A registry is an ordered list of metric families: stable name, help
    string, kind, labeled samples. Machines build one at end of run from
    their windowed metrics, per-node utilization/queue rollups, and the
    tail-latency histograms; the CLI serializes it behind [--metrics-out].
    Families render in registration order and labels in the order given, so
    exposition output is deterministic. *)

type kind = Counter | Gauge | Histogram

type value =
  | V of float  (** counter / gauge reading *)
  | H of Desim.Stats.Hdr.t  (** histogram state *)

type sample = { labels : (string * string) list; value : value }

type family = {
  name : string;
  help : string;
  kind : kind;
  samples : sample list;
}

type t = family list

(** Quantiles every histogram family exposes: p50/p90/p95/p99/p999. *)
val quantiles : float list

val sample : ?labels:(string * string) list -> value -> sample
val family : name:string -> help:string -> kind:kind -> sample list -> family

(** Single-sample unlabeled family shorthands. *)
val counter : name:string -> help:string -> float -> family

val gauge : name:string -> help:string -> float -> family
val histogram : name:string -> help:string -> Desim.Stats.Hdr.t -> family

(** Prometheus text exposition format. Histogram families render as
    summaries — explicit [quantile]-labeled samples plus [_sum]/[_count] —
    so p50..p999 appear directly in the scrape; full bucket detail lives in
    {!to_json}. *)
val to_prometheus : t -> string

(** JSON rendering: [{"families":[...]}]; histogram samples carry count,
    sum, quantiles (["p50"].."p999"]) and non-empty cumulative buckets as
    [[upper_edge, cumulative_count]] pairs. *)
val to_json : t -> string
