(** Capped exponential backoff arithmetic for protocol timeouts.

    Pure functions: the machine decides {e when} to retry, these decide
    {e how long} to wait. Round numbers start at 1; the wait for round
    [r] is [min cap (base * 2^(r-1))]. *)

(** Wait before/while attempt [round] ([round >= 1]). Monotone in
    [round], never above [cap], and [delay ~round:1 = min base cap]. *)
val delay : base:float -> cap:float -> round:int -> float

(** [now + delay ~base ~cap ~round]. *)
val deadline : now:float -> base:float -> cap:float -> round:int -> float

(** True once [round] has used up its retry budget: a protocol step may
    time out [max_retries] times (rounds [1..max_retries]) before the
    caller gives up. *)
val exhausted : max_retries:int -> round:int -> bool

(** Total wait across a full budget: the sum of [delay] for rounds
    [1..max_retries+1] — an upper bound on how long a bounded retry loop
    can take before declaring failure. *)
val total : base:float -> cap:float -> max_retries:int -> float
