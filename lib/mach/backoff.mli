(** Capped exponential backoff arithmetic for protocol timeouts.

    The machine decides {e when} to retry, these decide {e how long} to
    wait. Round numbers start at 1; the wait for round [r] is
    [min cap (base * 2^(r-1))], optionally scaled by a deterministic
    jitter factor drawn from a caller-supplied RNG stream (so retries
    that timed out together do not keep retrying in lockstep). *)

(** Wait before/while attempt [round] ([round >= 1]). Monotone in
    [round], never above [cap], and [delay ~round:1 = min base cap]. *)
val delay : base:float -> cap:float -> round:int -> float

(** {!delay} scaled by a factor drawn uniformly from
    [1 - jitter/2, 1 + jitter/2] on [rng]. With [jitter = 0] no draw
    happens at all and the result equals {!delay} exactly, so sharing
    [rng] with other decisions stays bit-identical to the jitter-free
    build. *)
val delay_jittered :
  jitter:float ->
  rng:Desim.Rng.t ->
  base:float ->
  cap:float ->
  round:int ->
  float

(** [now + delay ~base ~cap ~round]. *)
val deadline : now:float -> base:float -> cap:float -> round:int -> float

(** True once [round] has used up its retry budget: a protocol step may
    time out [max_retries] times (rounds [1..max_retries]) before the
    caller gives up. *)
val exhausted : max_retries:int -> round:int -> bool

(** Total wait across a full budget: the sum of {!delay} for rounds
    [1..max_retries+1] — an upper bound on how long a bounded retry loop
    can take before declaring failure. Callers using
    {!delay_jittered} should scale by the worst-case factor
    [1 + jitter/2] themselves. *)
val total : base:float -> cap:float -> max_retries:int -> float
