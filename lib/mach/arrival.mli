(** Open-loop arrival process and admission-control spec.

    An arrival spec replaces the closed-loop terminal fibers with a rate
    process sampled on a dedicated RNG stream, plus the host-side
    admission knobs (bounded queue, shed policy, deadline drop, MPL
    limiter, retry backoff). The whole block round-trips through one
    spec string ([to_spec]/[of_spec]) so CLI flags and replay artifacts
    carry it exactly like a {!Fault_plan}. [zero] is the degenerate
    closed-loop spec: no arrival runtime is installed at all. *)

(** One piece of a profile-driven schedule. Durations are seconds of
    simulated time; rates are transactions per second. *)
type segment =
  | Hold of { rate : float; duration : float }
      (** constant rate ("hold:R/D") *)
  | Ramp of { rate_from : float; rate_to : float; duration : float }
      (** linear ramp ("ramp:A..B/D") *)
  | Sine of { mean : float; amplitude : float; period : float; duration : float }
      (** diurnal sine, clamped at zero ("sine:M~A/P/D") *)
  | Spike of { base : float; peak : float; duration : float }
      (** flash crowd: jump to [peak], exponential decay toward [base]
          with time constant duration/8 ("spike:B^P/D") *)

type process =
  | Closed  (** legacy closed loop: one fiber per terminal *)
  | Qps of float  (** constant-rate Poisson ("qps=R") *)
  | Profile of segment list
      (** segments played once from t = 0; rate is zero afterwards *)

type shed_policy =
  | Reject_newest  (** full queue: drop the arriving transaction *)
  | Reject_oldest  (** full queue: drop the head, admit the arrival *)

type t = {
  process : process;
  queue_cap : int;  (** admission-queue capacity ("cap=N", default 64) *)
  shed : shed_policy;  (** full-queue policy ("shed=newest|oldest") *)
  deadline : float;
      (** queued arrivals older than this are dropped as expired at
          dispatch time; 0 = off ("deadline=D") *)
  mpl : int;  (** max in-flight transactions; 0 = unlimited ("mpl=N") *)
  retry_base : float;
      (** capped-exponential restart backoff base ("retry-base=B") *)
  retry_cap : float;  (** restart backoff cap ("retry-cap=C") *)
}

val zero : t
(** Closed loop, default admission knobs; [to_spec zero = ""]. *)

val open_loop : t -> bool
(** [true] iff the spec replaces the terminal loop. *)

val rate : t -> at:float -> float
(** Instantaneous offered rate at absolute time [at] (profiles start at
    t = 0 and do not wrap: the rate is zero past the last segment). *)

val total_duration : segment list -> float

val next_arrival : t -> Desim.Rng.t -> now:float -> horizon:float -> float option
(** Next arrival strictly after [now], or [None] when no further arrival
    occurs before [horizon]. Time-varying segments are sampled by
    Lewis-Shedler thinning against the per-segment max rate; proposals
    that cross a segment boundary restart at the boundary, so boundaries
    are exact (a zero-rate segment contributes no arrivals and consumes
    no draws). Deterministic in (spec, RNG state). *)

val validate : t -> (unit, string) result

val to_spec : t -> string
(** Canonical spec string; emits only non-default fields, so
    [of_spec (to_spec t)] round-trips and [to_spec zero] is [""]. *)

val of_spec : string -> (t, string) result
(** Parse a spec such as ["qps=5000,cap=128,mpl=32"] or
    ["profile=ramp:0..50000/60,hold:50000/120"]. Bare (key-less) items
    extend an open [profile=]. The result is validated. *)

val pp : Format.formatter -> t -> unit
