(** The source component: generates transaction access plans (Section 3.2).

    Each terminal belongs to a class determined by its index: the
    [num_terminals] terminals are split evenly into [num_relations] groups
    and group [i] generates transactions that access every partition of
    relation [i].

    Plan generation draws from one independent splitmix64 stream *per
    terminal* (and per-page CPU demands from yet another stream), so the
    sequence of plans a terminal submits is a pure function of the seed
    and the non-CC parameters: the k-th plan of terminal [i] is identical
    no matter which concurrency control algorithm runs or how executions
    interleave. This is the common-random-numbers discipline the paper
    uses to compare algorithms, and the conformance harness checks it
    across algorithms via {!fingerprints}. *)

open Ids

type t = {
  params : Params.t;
  catalog : Catalog.t;
  plan_rngs : Desim.Rng.t array;  (** one independent stream per terminal *)
  instr_rng : Desim.Rng.t;  (** per-page CPU demand draws *)
  mutable fingerprint_log : int list array option;
      (** when enabled, per-terminal log of plan fingerprints, newest
          first *)
}

let create params catalog rng =
  let num_terminals = params.Params.workload.Params.num_terminals in
  {
    params;
    catalog;
    plan_rngs = Array.init num_terminals (fun _ -> Desim.Rng.split rng);
    instr_rng = Desim.Rng.split rng;
    fingerprint_log = None;
  }

(** Relation accessed by transactions from [terminal]. *)
let relation_of_terminal t ~terminal =
  let w = t.params.Params.workload and d = t.params.Params.database in
  terminal * d.Params.num_relations / w.Params.num_terminals

(** Mean think time, exposed for the terminal loop. *)
let think_time t = t.params.Params.workload.Params.think_time

(** Draw the number of pages accessed in one partition: uniform integer in
    [mean/2, 3*mean/2], capped by the file size (footnote 12). *)
let draw_page_count t rng =
  let w = t.params.Params.workload in
  let mean = w.Params.pages_per_partition in
  let lo = Int.max 1 (mean / 2) and hi = 3 * mean / 2 in
  let hi = Int.min hi t.params.Params.database.Params.file_size in
  Desim.Rng.int_range rng ~lo ~hi

let draw_partition_ops t rng ~file =
  let d = t.params.Params.database and w = t.params.Params.workload in
  let k = draw_page_count t rng in
  let pages =
    Desim.Rng.sample_without_replacement rng ~n:d.Params.file_size ~k
  in
  (* Pages are accessed in ascending page order, as a partition scan
     would: this gives the approximate global lock-ordering discipline
     that keeps 2PL's deadlock rate at the modest levels the paper
     reports (see DESIGN.md). *)
  let pages = List.sort Int.compare pages in
  List.map
    (fun index ->
      {
        Plan.page = Page.make ~file ~index;
        update = Desim.Rng.bool rng ~p:w.Params.write_prob;
      })
    pages

(* --- plan fingerprints (conformance harness support) --------------- *)

(* FNV-1a-style mixing over the plan's structural content, kept within
   OCaml's native int range. *)
let mix h x = (h lxor x) * 0x100000001b3 land max_int

let plan_fingerprint (plan : Plan.t) =
  let h = mix 0x14650FB0739D0383 plan.Plan.relation in
  List.fold_left
    (fun h (c : Plan.cohort_plan) ->
      let h = mix h c.Plan.node in
      let h =
        List.fold_left
          (fun h (op : Plan.page_op) ->
            let h = mix h op.Plan.page.Page.file in
            let h = mix h op.Plan.page.Page.index in
            mix h (if op.Plan.update then 1 else 0))
          h c.Plan.ops
      in
      List.fold_left
        (fun h (p : Page.t) -> mix (mix h p.Page.file) p.Page.index)
        h c.Plan.apply_ops)
    h plan.Plan.cohorts

(** Start logging a fingerprint of every generated plan (off by default;
    costs memory proportional to the number of plans). *)
let enable_fingerprints t =
  t.fingerprint_log <- Some (Array.make (Array.length t.plan_rngs) [])

(** Per-terminal fingerprints of the plans generated so far, in generation
    order. Empty array when {!enable_fingerprints} was not called. *)
let fingerprints t =
  match t.fingerprint_log with
  | None -> [||]
  | Some log -> Array.map List.rev log

(** Generate a fresh access plan for a transaction from [terminal]: one
    cohort per node holding a primary of the terminal's relation, plus
    (under replication) update-application duties at every node holding a
    copy of an updated page — update-only cohorts are appended when such
    a node runs no primary accesses. *)
let generate_plan t ~terminal =
  let rng = t.plan_rngs.(terminal) in
  let relation = relation_of_terminal t ~terminal in
  let nodes = Catalog.nodes_of_relation t.catalog ~relation in
  let primary_cohorts =
    List.map
      (fun node_ref ->
        let node =
          match node_ref with
          | Proc n -> n
          | Host -> invalid_arg "Workload: data stored at host"
        in
        let files = Catalog.files_at t.catalog ~relation ~node in
        let ops =
          List.concat_map (fun file -> draw_partition_ops t rng ~file) files
        in
        (node, ops))
      nodes
  in
  (* replica application sites for every updated page *)
  let applies : (int, Ids.Page.t list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (primary_node, ops) ->
      List.iter
        (fun (op : Plan.page_op) ->
          if op.Plan.update then
            List.iter
              (fun copy_node ->
                if copy_node <> primary_node then
                  Hashtbl.replace applies copy_node
                    (op.Plan.page
                    :: Option.value ~default:[]
                         (Hashtbl.find_opt applies copy_node)))
              (Catalog.copy_nodes t.catalog ~file:op.Plan.page.Page.file))
        ops)
    primary_cohorts;
  let cohorts =
    List.map
      (fun (node, ops) ->
        let apply_ops =
          Option.value ~default:[] (Hashtbl.find_opt applies node)
        in
        Hashtbl.remove applies node;
        { Plan.node; ops; apply_ops })
      primary_cohorts
  in
  let update_only =
    Hashtbl.fold
      (fun node apply_ops acc ->
        { Plan.node; ops = []; apply_ops } :: acc)
      applies []
    |> List.sort (fun a b -> Int.compare a.Plan.node b.Plan.node)
  in
  let plan = { Plan.relation; cohorts = cohorts @ update_only } in
  (match t.fingerprint_log with
  | Some log -> log.(terminal) <- plan_fingerprint plan :: log.(terminal)
  | None -> ());
  plan

(** Per-page processing cost draw (exponential, mean InstPerPage). *)
let draw_page_instructions t =
  Desim.Rng.exponential t.instr_rng
    ~mean:t.params.Params.workload.Params.inst_per_page
