(** Per-node write-ahead log on a modeled log disk.

    Extends the paper's machine (which assumes, per footnote 5, that
    logging is never the bottleneck) with an explicit durability model:
    cohorts append typed records to a volatile log tail, and a {b force}
    flushes the tail with one FCFS write on a dedicated log disk — so
    logging cost shows up in throughput, log-disk utilization, and the
    [log] component of the response-time decomposition.

    The model keeps a per-transaction digest rather than the record
    sequence itself: enough to answer the durability questions recovery
    and the no-lost-commit invariant ask, and to size the redo pass.

    Durability semantics follow ARIES-style redo logging restricted to
    what the simulation observes: a {!force} makes every record appended
    before the call durable once the disk write completes; a crash
    ({!on_crash}) discards the volatile tail and nothing else — data-disk
    installs and the durable log prefix survive.

    Beyond the per-transaction digest, the log keeps {b dependency
    records}: each update append assigns a log sequence number (LSN),
    extends the transaction's write-set fingerprint, and records the
    previous writer of the page as a predecessor edge. Recovery uses
    them to partition the redo set into independent chains
    ({!redo_chains}) that can replay in parallel; {!Codec} is the
    checksummed on-disk framing those records stand for, with
    torn-tail truncation to the last valid record. *)

type record =
  | Begin of { tid : int; attempt : int }
  | Update of { tid : int; attempt : int; page : Ids.Page.t }
  | Prepare of { tid : int; attempt : int }
  | Commit of { tid : int; attempt : int }
  | Abort of { tid : int; attempt : int }
  | Checkpoint of { active : int }
      (** end-of-recovery checkpoint; once durable, the log before it is
          truncated (digest entries of decided-and-installed transactions
          are pruned) *)

type t

(** One log per processing node; [rng] drives the uniform
    [min_time, max_time] log-disk service times. *)
val create :
  Desim.Engine.t -> Desim.Rng.t -> min_time:float -> max_time:float -> t

(** Append a record to the volatile tail (no I/O: appends model buffered
    sequential writes; only {!force} pays). Decision records for
    transactions with no update footprint here (read-only cohorts) are
    counted but tracked no further — there is nothing to redo. *)
val append : t -> record -> unit

(** Flush the tail: one blocking FCFS write on the log disk (valid only
    inside a process). Records appended while the write is in flight
    need a force of their own. *)
val force : t -> unit

(** Recovery's analysis pass: one blocking FCFS read of the log disk,
    modeling a sequential scan of the durable prefix (valid only inside
    a process). *)
val scan : t -> unit

(** The node lost volatile state: drop the un-forced tail. The durable
    prefix and install flags survive. With [~torn:true] (and a
    non-empty tail) the suffix additionally reached the platter
    partially: the tear is counted ({!torn_tails}, {!torn_records}) and
    the dependency DAG is flagged corrupt ({!deps_corrupt}) — the next
    recovery must degrade to serial physical redo until a checkpoint
    rebuilds it ({!repair_deps}). Acknowledged (forced) records are
    never affected, so durability of committed work is preserved. *)
val on_crash : ?torn:bool -> t -> unit

(** The transaction's commit-time deferred page writes reached the data
    disks at this node (data-disk state survives crashes, so an
    installed transaction needs no redo). *)
val mark_installed : t -> tid:int -> attempt:int -> unit

val prepared_durable : t -> tid:int -> attempt:int -> bool
val committed_durable : t -> tid:int -> attempt:int -> bool
val installed : t -> tid:int -> attempt:int -> bool

(** Whether the digest still holds an entry for this attempt. [false]
    means the log never saw an update footprint here (read-only cohort)
    or a durable checkpoint pruned a fully decided-and-installed entry —
    either way, nothing can be lost. *)
val tracked : t -> tid:int -> attempt:int -> bool

(** Durable update records needing redo if the decision is commit. *)
val redo_pages : t -> tid:int -> attempt:int -> int

(** Analysis pass: transactions with a durable prepare record, no
    durable decision record, and no completed installs — exactly the
    set recovery must resolve through the coordinator's decision log.
    Sorted by (tid, attempt) for deterministic iteration. *)
val in_doubt : t -> (int * int) list

(** Records appended (including volatile ones lost to crashes). *)
val records : t -> int

(** Completed {!force} calls. *)
val forces : t -> int

(** Records made durable by completed forces. *)
val forced_records : t -> int

val utilization : t -> float

(** Crashes that tore a partially forced tail (the suffix the next scan
    truncates at the last checksum-valid record). *)
val torn_tails : t -> int

(** Volatile records lost to torn tails specifically. *)
val torn_records : t -> int

(** A torn tail clipped dependency records: the chain partitioner must
    not trust the DAG. Cleared by {!repair_deps} once a full physical
    redo and checkpoint rebuild it. *)
val deps_corrupt : t -> bool

val repair_deps : t -> unit

(** Cumulative log-disk busy time since creation (never reset). *)
val busy_time : t -> float

val reset_window : t -> unit

(** Topological partitioning of dependency records into independent redo
    chains. Pure: a function of the input list alone, so properties are
    checkable without a log or an engine. *)
module Chains : sig
  type txn = {
    key : int * int;  (** (tid, attempt) *)
    pages : Ids.Page.t list;  (** write-set fingerprint *)
    deps : (int * int) list;  (** predecessor transactions *)
    lsn : int;  (** LSN of the latest durable record *)
  }

  (** Partition into chains such that transactions sharing a write-set
      page or connected by a dependency edge (to a key inside the input
      set) land in the same chain. Chains carry no cross-chain edges, so
      they replay in parallel; the union of all chains is exactly the
      input key set. Members are ordered by (LSN, key) — commit order —
      and chains by their first member's (LSN, key). *)
  val partition : txn list -> (int * int) list list
end

(** The dependency records of [keys], partitioned into independent redo
    chains ({!Chains.partition}). Keys the digest no longer tracks
    (read-only cohorts, pruned entries) have an empty footprint and fall
    out as singleton chains. *)
val redo_chains : t -> (int * int) list -> (int * int) list list

(** The checksummed on-disk framing the dependency digest stands for:
    magic byte, length, payload (tid, attempt, LSN, write-set pages,
    predecessor keys — u32 big-endian), FNV-1a checksum. A torn tail
    leaves a checksum-invalid suffix that {!Codec.scan_valid} truncates
    at the last valid record. *)
module Codec : sig
  type dep_record = {
    tid : int;
    attempt : int;
    lsn : int;
    pages : (int * int) list;  (** (file, index) pairs *)
    deps : (int * int) list;  (** predecessor (tid, attempt) pairs *)
  }

  val encode : dep_record -> string

  (** Concatenated frames, in order. *)
  val encode_log : dep_record list -> string

  (** [decode s ~pos] parses one frame at [pos]; [Some (record, next)]
      on a checksum-valid frame, [None] on a torn, corrupt or truncated
      one. *)
  val decode : string -> pos:int -> (dep_record * int) option

  (** Walk frames from the start; stop at the first invalid one.
      Returns the records of the valid prefix and the count of torn
      bytes truncated from the tail. *)
  val scan_valid : string -> dep_record list * int
end
