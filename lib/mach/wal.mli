(** Per-node write-ahead log on a modeled log disk.

    Extends the paper's machine (which assumes, per footnote 5, that
    logging is never the bottleneck) with an explicit durability model:
    cohorts append typed records to a volatile log tail, and a {b force}
    flushes the tail with one FCFS write on a dedicated log disk — so
    logging cost shows up in throughput, log-disk utilization, and the
    [log] component of the response-time decomposition.

    The model keeps a per-transaction digest rather than the record
    sequence itself: enough to answer the durability questions recovery
    and the no-lost-commit invariant ask, and to size the redo pass.

    Durability semantics follow ARIES-style redo logging restricted to
    what the simulation observes: a {!force} makes every record appended
    before the call durable once the disk write completes; a crash
    ({!on_crash}) discards the volatile tail and nothing else — data-disk
    installs and the durable log prefix survive. *)

type record =
  | Begin of { tid : int; attempt : int }
  | Update of { tid : int; attempt : int; page : Ids.Page.t }
  | Prepare of { tid : int; attempt : int }
  | Commit of { tid : int; attempt : int }
  | Abort of { tid : int; attempt : int }
  | Checkpoint of { active : int }
      (** end-of-recovery checkpoint; once durable, the log before it is
          truncated (digest entries of decided-and-installed transactions
          are pruned) *)

type t

(** One log per processing node; [rng] drives the uniform
    [min_time, max_time] log-disk service times. *)
val create :
  Desim.Engine.t -> Desim.Rng.t -> min_time:float -> max_time:float -> t

(** Append a record to the volatile tail (no I/O: appends model buffered
    sequential writes; only {!force} pays). Decision records for
    transactions with no update footprint here (read-only cohorts) are
    counted but tracked no further — there is nothing to redo. *)
val append : t -> record -> unit

(** Flush the tail: one blocking FCFS write on the log disk (valid only
    inside a process). Records appended while the write is in flight
    need a force of their own. *)
val force : t -> unit

(** Recovery's analysis pass: one blocking FCFS read of the log disk,
    modeling a sequential scan of the durable prefix (valid only inside
    a process). *)
val scan : t -> unit

(** The node lost volatile state: drop the un-forced tail. The durable
    prefix and install flags survive. *)
val on_crash : t -> unit

(** The transaction's commit-time deferred page writes reached the data
    disks at this node (data-disk state survives crashes, so an
    installed transaction needs no redo). *)
val mark_installed : t -> tid:int -> attempt:int -> unit

val prepared_durable : t -> tid:int -> attempt:int -> bool
val committed_durable : t -> tid:int -> attempt:int -> bool
val installed : t -> tid:int -> attempt:int -> bool

(** Whether the digest still holds an entry for this attempt. [false]
    means the log never saw an update footprint here (read-only cohort)
    or a durable checkpoint pruned a fully decided-and-installed entry —
    either way, nothing can be lost. *)
val tracked : t -> tid:int -> attempt:int -> bool

(** Durable update records needing redo if the decision is commit. *)
val redo_pages : t -> tid:int -> attempt:int -> int

(** Analysis pass: transactions with a durable prepare record, no
    durable decision record, and no completed installs — exactly the
    set recovery must resolve through the coordinator's decision log.
    Sorted by (tid, attempt) for deterministic iteration. *)
val in_doubt : t -> (int * int) list

(** Records appended (including volatile ones lost to crashes). *)
val records : t -> int

(** Completed {!force} calls. *)
val forces : t -> int

(** Records made durable by completed forces. *)
val forced_records : t -> int

val utilization : t -> float

(** Cumulative log-disk busy time since creation (never reset). *)
val busy_time : t -> float

val reset_window : t -> unit
