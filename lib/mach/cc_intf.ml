(** Interface between the transaction layer and a node's concurrency
    control manager.

    The concurrency control manager is the only module that changes from
    algorithm to algorithm (Section 3.6 of the paper); everything above it
    talks to this record of operations. All operations run in the context
    of the calling cohort process: [read] and [write] may block the cohort
    (by suspending it) and may raise {!Txn.Aborted} when the algorithm
    decides the requesting transaction itself must abort. *)

(** A waits-for edge: [waiter]'s cohort at this node is blocked on a
    resource held by [holder]. Transaction-level granularity, as gathered
    by the Snoop global deadlock detector. *)
type edge = { waiter : Txn.t; holder : Txn.t }

(** Canonical edge order: by waiter key, then holder key. [cc_edges]
    implementations fold hash tables; sorting with this comparator keeps
    the snapshot independent of bucket layout. *)
let compare_edge a b =
  let compare_key (t1, a1) (t2, a2) =
    match Int.compare t1 t2 with 0 -> Int.compare a1 a2 | n -> n
  in
  match compare_key (Txn.key a.waiter) (Txn.key b.waiter) with
  | 0 -> compare_key (Txn.key a.holder) (Txn.key b.holder)
  | n -> n

type node_cc = {
  algorithm : Params.cc_algorithm;
  cc_read : Txn.t -> Ids.Page.t -> unit;
      (** permission to read a page; blocks until granted *)
  cc_write : Txn.t -> Ids.Page.t -> unit;
      (** permission to update an already-read page (lock conversion /
          pending write / write-set note); blocks until granted *)
  cc_prepare : Txn.t -> bool;
      (** local prepare processing; [false] = vote no (OPT certification
          failure). For OPT, [Txn.commit_ts] must be set by the caller. *)
  cc_installed : Txn.t -> Ids.Page.t list;
      (** pages whose updates this node will actually install if the
          transaction commits now — excludes e.g. BTO's Thomas-rule
          dropped writes. Used by the serializability auditor; must be
          called immediately before [cc_commit]. *)
  cc_commit : Txn.t -> unit;
      (** commit point at this node: install pending writes, release locks,
          wake waiters *)
  cc_abort : Txn.t -> unit;
      (** abort at this node: undo, release locks, reject any blocked
          request of this transaction. Must be idempotent and safe to call
          for transactions with no footprint here. *)
  cc_edges : unit -> edge list;
      (** snapshot of this node's waits-for edges (Snoop collection) *)
  cc_blocking : Desim.Stats.Tally.t;
      (** observed per-request blocking times at this node *)
}

(** Services a CC manager needs from the rest of the machine. Constructed
    per node by the machine assembly. *)
type hooks = {
  eng : Desim.Engine.t;
  clock : Timestamp.Clock.t;
  charge_cc_request : unit -> unit;
      (** consume InstPerCCReq CPU at this node (blocking; no-op when the
          cost parameter is zero) *)
  request_abort : Txn.t -> Txn.abort_reason -> unit;
      (** ask the transaction's coordinator to abort it; routed as a
          network message by the machine. Must tolerate duplicates and
          stale attempts. *)
}
