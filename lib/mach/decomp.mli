(** Additive response-time decomposition of a committed transaction
    (the paper's Section 4-5 analysis vocabulary, made measurable).

    The response time of a committed transaction — origination to commit,
    spanning restarts — is partitioned into mutually exclusive wall-clock
    components observed on the coordinator/critical-cohort timeline. By
    construction the eight components sum to the measured response time
    (up to float rounding); the conformance suite asserts this per
    transaction. *)

type t = {
  restart : float;
      (** everything before the committing attempt began — aborted
          attempts in full plus the restart delays between attempts *)
  setup : float;  (** committing attempt's coordinator process startup *)
  useful_cpu : float;
      (** page-processing CPU on the work-phase critical path *)
  disk : float;  (** critical-path disk reads of the work phase *)
  blocked : float;
      (** critical-path concurrency control blocking (lock waits,
          conversion waits, CC request processing) *)
  msg_other : float;
      (** rest of the work phase — messages, cohort startup, replica
          round trips, and queueing not attributed above *)
  log : float;
      (** critical-path log forcing inside the commit protocol — the
          prepare-record force of the cohort whose vote gated the
          decision (zero without a modeled log disk) *)
  commit : float;
      (** the rest of two-phase commit, prepare through last ack *)
}

val zero : t
val total : t -> float
val add : t -> t -> t
val scale : t -> float -> t

(** Assemble a decomposition from the coordinator-timeline phase widths
    and the critical-path cohort resources of the work phase.
    [msg_other] is the work-phase residual and [log] is carved out of
    (and clamped to) the commit width, so the components sum to
    [restart + setup + exec + commit] exactly. Shared by the machine and
    the event-fold {!Timeline} reconstructor so both produce
    bit-identical results. *)
val assemble :
  restart:float ->
  setup:float ->
  exec:float ->
  blocked:float ->
  disk:float ->
  cpu:float ->
  log:float ->
  commit:float ->
  t

(** Stable (name, getter) listing used by CSV export and result diffs. *)
val fields : (string * (t -> float)) list

val pp : Format.formatter -> t -> unit
