(** Simulation output collector for the paper's metrics (Section 4.1).

    Counts and tallies are windowed: {!begin_window} is called at the end
    of warm-up and discards everything observed so far. The running
    (unwindowed) response-time average feeds the abort-restart delay: a
    restarted transaction waits one average response time as observed at
    the coordinator node [Agra87a]. *)

type t

(** [quantiles] (default true) enables the tail-latency histograms; when
    false the histogram record paths are no-ops, so bench can price the
    histogram overhead against an otherwise identical run. *)
val create : ?quantiles:bool -> Desim.Engine.t -> restart_delay_floor:float -> t

(** Discard all observations so far; start the measurement window now. *)
val begin_window : t -> unit

(** A terminal submitted a new transaction. *)
val record_submit : t -> unit

(** A transaction committed; response time is measured from its first
    submission, spanning any restarts. [pages] is the number of page
    accesses in the committed plan (feeds {!goodput}); [decomp] is the
    transaction's response-time decomposition, whose components must sum
    to the response. *)
val record_commit : t -> origin_time:float -> pages:int -> decomp:Decomp.t -> unit

(** A transaction attempt aborted. *)
val record_abort : t -> reason:Txn.abort_reason -> unit

(** An attempt finished (either way); recorded at the terminal loop,
    independently of {!record_commit}/{!record_abort}, so that the
    conservation invariant commits + aborts = completions is a real
    cross-check. *)
val record_completion : t -> unit

val window_duration : t -> float

(** Committed transactions per second over the measurement window. *)
val throughput : t -> float

(** Committed page accesses per second — useful work, as opposed to
    per-transaction {!throughput}. Under faults the gap between the two
    widens as partially-done work is thrown away. *)
val goodput : t -> float

(** A cohort sent a yes vote: it is now in doubt (blocked in 2PC) until
    the coordinator's decision reaches it. *)
val record_prepared : t -> tid:int -> attempt:int -> node:int -> unit

(** The decision reached the cohort; closes the in-doubt interval (no-op
    when none is open). *)
val record_decided : t -> tid:int -> attempt:int -> node:int -> unit

(** Mean closed in-doubt interval over the window, seconds. *)
val indoubt_mean : t -> float

(** Cohorts still awaiting a 2PC decision right now. *)
val indoubt_open : t -> int

(** Open in-doubt intervals older than [grace] seconds — transactions the
    termination protocol should already have resolved. *)
val indoubt_overdue : t -> grace:float -> int

val mean_response : t -> float

(** Batch-means 95% CI on the mean response time (falls back to the iid
    interval before two batches complete). *)
val response_ci95 : t -> float

(** Exact percentile (e.g. [0.95]) of windowed response times. *)
val response_percentile : t -> float -> float
val commits : t -> int
val aborts : t -> int

(** Attempt completions in the window (see {!record_completion}). *)
val completions : t -> int

(** Aborts per commit (the paper's abort ratio). *)
val abort_ratio : t -> float

(** Abort counts by reason name, sorted. *)
val abort_reason_counts : t -> (string * int) list

(** Delay imposed on a restarting transaction: the running mean response
    time, or the configured floor before any commit has been observed. *)
val restart_delay : t -> float

(** Time-average number of in-flight transactions. *)
val mean_active : t -> float

(** Transactions currently in the system (instantaneous; for the
    time-series sampler). *)
val active : t -> int

(** Mean per-transaction response-time decomposition over the windowed
    commits; components sum to {!mean_response} up to float rounding. *)
val decomp_mean : t -> Decomp.t

(** Windowed per-transaction (response, decomposition) pairs, oldest
    first. *)
val decomp_records : t -> (float * Decomp.t) list

(** Aggregated CC blocking-time tally (owned by callers). *)
val blocked_time : t -> Desim.Stats.Tally.t

(** {2 Open-loop admission accounting}

    The admission counters are {e not} windowed: the conservation
    identity offered = admitted + shed + expired + still-queued is an
    exact whole-run integer identity, which a warmup reset would break.
    The queue-depth statistics window like everything else. All of these
    stay zero on a closed-loop run. *)

(** The rate process generated an arrival. *)
val record_offered : t -> unit

(** An arrival was dispatched into the system (immediately or from the
    admission queue). *)
val record_admitted : t -> unit

(** An arrival was rejected at a full admission queue. *)
val record_shed : t -> unit

(** A queued arrival was dropped for overstaying its deadline. *)
val record_expired : t -> unit

(** The admission queue is now [depth] entries deep (updates the depth
    time series and the windowed max). *)
val set_queue_depth : t -> int -> unit

(** A dispatched arrival waited [dur] seconds in the admission queue
    (histogram; no-op with [~quantiles:false]). *)
val record_queue_wait : t -> dur:float -> unit

val offered : t -> int
val admitted : t -> int
val shed : t -> int
val expired : t -> int

(** Instantaneous admission-queue depth (for the time-series sampler). *)
val queue_depth : t -> int

(** Windowed max admission-queue depth. *)
val queue_depth_max : t -> int

(** Time-average admission-queue depth over the window. *)
val mean_queue_depth : t -> float

(** Windowed admission-queue waits of dispatched arrivals. *)
val queue_wait_hist : t -> Desim.Stats.Hdr.t

(** {2 Tail-latency histograms}

    Windowed, deterministic, log-scaled histograms (see
    {!Desim.Stats.Hdr}); all reset by {!begin_window}. Record paths are
    no-ops when the collector was created with [~quantiles:false]. *)

val quantiles_enabled : t -> bool

(** A WAL force completed in [dur] simulated seconds (histogram only; the
    force count and log-disk utilization live in {!Wal}). *)
val record_log_force : t -> dur:float -> unit

(** A crash-recovery pass completed in [dur] simulated seconds. *)
val record_recovery : t -> dur:float -> unit

(** A recovery redo chain finished replaying in [dur] simulated seconds. *)
val record_chain : t -> dur:float -> unit

(** Histogram response-time quantile (upper-edge convention, see
    {!Desim.Stats.Hdr.quantile}); 0 when histograms are disabled or empty. *)
val response_quantile : t -> float -> float

val response_hist : t -> Desim.Stats.Hdr.t

(** Per-{!Decomp}-component histograms as [(field_name, hist)], in
    {!Decomp.fields} order. *)
val component_hists : t -> (string * Desim.Stats.Hdr.t) list

(** Closed 2PC in-doubt interval durations. *)
val indoubt_hist : t -> Desim.Stats.Hdr.t

(** WAL force latencies. *)
val log_force_hist : t -> Desim.Stats.Hdr.t

(** Crash-recovery durations. *)
val recovery_hist : t -> Desim.Stats.Hdr.t

(** Per-chain redo replay durations (chain-parallel recovery only). *)
val chain_hist : t -> Desim.Stats.Hdr.t
