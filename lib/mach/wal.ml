open Desim

type record =
  | Begin of { tid : int; attempt : int }
  | Update of { tid : int; attempt : int; page : Ids.Page.t }
  | Prepare of { tid : int; attempt : int }
  | Commit of { tid : int; attempt : int }
  | Abort of { tid : int; attempt : int }
  | Checkpoint of { active : int }

type status = Absent | Volatile | Durable

(* Per-(tid, attempt) digest of the log records this node holds. The full
   record sequence is never materialized: the model only needs enough to
   answer durability questions and size the redo pass. *)
type txn_log = {
  mutable updates_vol : int;
  mutable updates_dur : int;
  mutable prepared : status;
  mutable committed : status;
  mutable aborted : status;
  mutable installed : bool;
      (** data-page installs completed (commit-time deferred writes hit
          the data disks, which survive crashes) *)
}

type t = {
  disk : Disk.t;
  txns : (int * int, txn_log) Hashtbl.t;
  mutable dirty : (int * int) list;
      (** keys with volatile records, newest first; promoted by [force],
          discarded by [on_crash] *)
  mutable checkpoint_pending : bool;
  mutable records : int;
  mutable forces : int;
  mutable forced_records : int;
}

let create eng rng ~min_time ~max_time =
  {
    disk = Disk.create eng rng ~min_time ~max_time;
    txns = Hashtbl.create 64;
    dirty = [];
    checkpoint_pending = false;
    records = 0;
    forces = 0;
    forced_records = 0;
  }

let fresh_entry () =
  {
    updates_vol = 0;
    updates_dur = 0;
    prepared = Absent;
    committed = Absent;
    aborted = Absent;
    installed = false;
  }

let key_equal (t1, a1) (t2, a2) = Int.equal t1 t2 && Int.equal a1 a2

let key_compare (t1, a1) (t2, a2) =
  match Int.compare t1 t2 with 0 -> Int.compare a1 a2 | n -> n

let entry t ~tid ~attempt = Hashtbl.find_opt t.txns (tid, attempt)

let entry_create t ~tid ~attempt =
  match Hashtbl.find_opt t.txns (tid, attempt) with
  | Some e -> e
  | None ->
      let e = fresh_entry () in
      Hashtbl.replace t.txns (tid, attempt) e;
      e

let mark_dirty t key =
  match t.dirty with
  | k :: _ when key_equal k key -> ()
  | _ -> t.dirty <- key :: t.dirty

(* Forget entries the log no longer needs once a checkpoint is durable:
   durably decided (and installed, for commits) transactions are fully
   redo-covered without any log record. *)
let prune t =
  let dead =
    Hashtbl.fold
      (fun key e acc ->
        match (e.committed, e.aborted) with
        | Durable, _ when e.installed -> key :: acc
        | _, Durable -> key :: acc
        | (Absent | Volatile | Durable), (Absent | Volatile) -> acc)
      t.txns []
    |> List.sort key_compare
  in
  List.iter (Hashtbl.remove t.txns) dead

let append t record =
  t.records <- t.records + 1;
  match record with
  | Begin { tid; attempt } ->
      ignore (entry_create t ~tid ~attempt : txn_log);
      mark_dirty t (tid, attempt)
  | Update { tid; attempt; page = _ } ->
      let e = entry_create t ~tid ~attempt in
      e.updates_vol <- e.updates_vol + 1;
      mark_dirty t (tid, attempt)
  | Prepare { tid; attempt } -> (
      (* decision records without a footprint here (read-only cohort) are
         counted but need no digest entry: there is nothing to redo *)
      match entry t ~tid ~attempt with
      | None -> ()
      | Some e ->
          if e.prepared = Absent then e.prepared <- Volatile;
          mark_dirty t (tid, attempt))
  | Commit { tid; attempt } -> (
      match entry t ~tid ~attempt with
      | None -> ()
      | Some e ->
          if e.committed = Absent then e.committed <- Volatile;
          mark_dirty t (tid, attempt))
  | Abort { tid; attempt } -> (
      match entry t ~tid ~attempt with
      | None -> ()
      | Some e ->
          if e.aborted = Absent then e.aborted <- Volatile;
          mark_dirty t (tid, attempt))
  | Checkpoint _ -> t.checkpoint_pending <- true

let promote t keys checkpointed =
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.txns key with
      | None -> ()
      | Some e ->
          t.forced_records <- t.forced_records + e.updates_vol;
          e.updates_dur <- e.updates_dur + e.updates_vol;
          e.updates_vol <- 0;
          let promote_status s =
            match s with
            | Volatile ->
                t.forced_records <- t.forced_records + 1;
                Durable
            | Absent | Durable -> s
          in
          e.prepared <- promote_status e.prepared;
          e.committed <- promote_status e.committed;
          e.aborted <- promote_status e.aborted)
    keys;
  if checkpointed then prune t

(* A force covers exactly the records appended before it was issued:
   appends racing the disk write land in a fresh dirty list and need a
   force of their own. *)
let force t =
  let keys = t.dirty and checkpointed = t.checkpoint_pending in
  t.dirty <- [];
  t.checkpoint_pending <- false;
  t.forces <- t.forces + 1;
  Disk.write t.disk;
  promote t keys checkpointed

(* Recovery's analysis pass: one sequential read of the durable log. *)
let scan t = Disk.read t.disk

let on_crash t =
  let keys = t.dirty in
  t.dirty <- [];
  t.checkpoint_pending <- false;
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.txns key with
      | None -> ()
      | Some e ->
          e.updates_vol <- 0;
          let drop s = match s with Volatile -> Absent | Absent | Durable -> s in
          e.prepared <- drop e.prepared;
          e.committed <- drop e.committed;
          e.aborted <- drop e.aborted;
          (* an entry the crash emptied again will be recreated if the
             transaction ever re-logs here *)
          if
            e.updates_dur = 0 && e.prepared = Absent && e.committed = Absent
            && e.aborted = Absent && not e.installed
          then Hashtbl.remove t.txns key)
    keys

let mark_installed t ~tid ~attempt =
  let e = entry_create t ~tid ~attempt in
  e.installed <- true

let prepared_durable t ~tid ~attempt =
  match entry t ~tid ~attempt with
  | None -> false
  | Some e -> ( match e.prepared with Durable -> true | Absent | Volatile -> false)

let committed_durable t ~tid ~attempt =
  match entry t ~tid ~attempt with
  | None -> false
  | Some e -> ( match e.committed with Durable -> true | Absent | Volatile -> false)

let installed t ~tid ~attempt =
  match entry t ~tid ~attempt with None -> false | Some e -> e.installed

let tracked t ~tid ~attempt =
  match entry t ~tid ~attempt with None -> false | Some _ -> true

let redo_pages t ~tid ~attempt =
  match entry t ~tid ~attempt with None -> 0 | Some e -> e.updates_dur

let in_doubt t =
  Hashtbl.fold
    (fun key e acc ->
      match (e.prepared, e.committed, e.aborted) with
      | Durable, (Absent | Volatile), (Absent | Volatile) when not e.installed ->
          key :: acc
      | (Absent | Volatile | Durable), _, _ -> acc)
    t.txns []
  |> List.sort key_compare

let records t = t.records
let forces t = t.forces
let forced_records t = t.forced_records
let utilization t = Disk.utilization t.disk
let busy_time t = Disk.busy_time t.disk
let reset_window t = Disk.reset_window t.disk
