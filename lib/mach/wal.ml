open Desim

type record =
  | Begin of { tid : int; attempt : int }
  | Update of { tid : int; attempt : int; page : Ids.Page.t }
  | Prepare of { tid : int; attempt : int }
  | Commit of { tid : int; attempt : int }
  | Abort of { tid : int; attempt : int }
  | Checkpoint of { active : int }

type status = Absent | Volatile | Durable

(* Per-(tid, attempt) digest of the log records this node holds. The full
   record sequence is never materialized: the model only needs enough to
   answer durability questions, size the redo pass, and reconstruct the
   dependency records (write-set pages + predecessor transactions +
   LSNs) that drive chain-parallel recovery. *)
type txn_log = {
  mutable updates_vol : int;
  mutable updates_dur : int;
  mutable prepared : status;
  mutable committed : status;
  mutable aborted : status;
  mutable installed : bool;
      (** data-page installs completed (commit-time deferred writes hit
          the data disks, which survive crashes) *)
  mutable pages_vol : Ids.Page.t list;
      (** write-set pages of volatile update records, newest first *)
  mutable pages_dur : Ids.Page.t list;
      (** write-set pages whose update records are durable *)
  mutable deps_vol : (int * int) list;
      (** predecessor transactions (earlier writers of this write set)
          recorded by volatile dependency records *)
  mutable deps_dur : (int * int) list;  (** durable predecessor records *)
  mutable lsn_vol : int;  (** LSN of the latest appended record *)
  mutable lsn_dur : int;  (** LSN of the latest durable record *)
}

type t = {
  disk : Disk.t;
  txns : (int * int, txn_log) Hashtbl.t;
  mutable dirty : (int * int) list;
      (** keys with volatile records, newest first; promoted by [force],
          discarded by [on_crash] *)
  mutable checkpoint_pending : bool;
  mutable records : int;
  mutable forces : int;
  mutable forced_records : int;
  page_writer : (int * int) Ids.Page_table.t;
      (** last transaction that logged an update for each page; the
          source of the predecessor edges in dependency records *)
  mutable torn_tails : int;
      (** crashes that tore a partially forced tail (checksum-invalid
          suffix truncated by the next scan) *)
  mutable torn_records : int;
      (** volatile records lost to torn tails specifically *)
  mutable deps_corrupt : bool;
      (** a torn tail clipped dependency records: the chain partitioner
          cannot trust the DAG until a full physical redo + checkpoint
          rebuilds it *)
}

let create eng rng ~min_time ~max_time =
  {
    disk = Disk.create eng rng ~min_time ~max_time;
    txns = Hashtbl.create 64;
    dirty = [];
    checkpoint_pending = false;
    records = 0;
    forces = 0;
    forced_records = 0;
    page_writer = Ids.Page_table.create 64;
    torn_tails = 0;
    torn_records = 0;
    deps_corrupt = false;
  }

let fresh_entry () =
  {
    updates_vol = 0;
    updates_dur = 0;
    prepared = Absent;
    committed = Absent;
    aborted = Absent;
    installed = false;
    pages_vol = [];
    pages_dur = [];
    deps_vol = [];
    deps_dur = [];
    lsn_vol = 0;
    lsn_dur = 0;
  }

let key_equal (t1, a1) (t2, a2) = Int.equal t1 t2 && Int.equal a1 a2

let key_compare (t1, a1) (t2, a2) =
  match Int.compare t1 t2 with 0 -> Int.compare a1 a2 | n -> n

let entry t ~tid ~attempt = Hashtbl.find_opt t.txns (tid, attempt)

let entry_create t ~tid ~attempt =
  match Hashtbl.find_opt t.txns (tid, attempt) with
  | Some e -> e
  | None ->
      let e = fresh_entry () in
      Hashtbl.replace t.txns (tid, attempt) e;
      e

let mark_dirty t key =
  match t.dirty with
  | k :: _ when key_equal k key -> ()
  | _ -> t.dirty <- key :: t.dirty

(* Forget entries the log no longer needs once a checkpoint is durable:
   durably decided (and installed, for commits) transactions are fully
   redo-covered without any log record. *)
let prune t =
  let dead =
    Hashtbl.fold
      (fun key e acc ->
        match (e.committed, e.aborted) with
        | Durable, _ when e.installed -> key :: acc
        | _, Durable -> key :: acc
        | (Absent | Volatile | Durable), (Absent | Volatile) -> acc)
      t.txns []
    |> List.sort key_compare
  in
  List.iter (Hashtbl.remove t.txns) dead

let append t record =
  t.records <- t.records + 1;
  (* the running record count doubles as the LSN of this append *)
  let lsn = t.records in
  match record with
  | Begin { tid; attempt } ->
      let e = entry_create t ~tid ~attempt in
      e.lsn_vol <- lsn;
      mark_dirty t (tid, attempt)
  | Update { tid; attempt; page } ->
      let e = entry_create t ~tid ~attempt in
      e.updates_vol <- e.updates_vol + 1;
      e.lsn_vol <- lsn;
      let key = (tid, attempt) in
      if
        not
          (List.exists (Ids.Page.equal page) e.pages_vol
          || List.exists (Ids.Page.equal page) e.pages_dur)
      then e.pages_vol <- page :: e.pages_vol;
      (match Ids.Page_table.find_opt t.page_writer page with
      | Some pred when not (key_equal pred key) ->
          if
            not
              (List.exists (key_equal pred) e.deps_vol
              || List.exists (key_equal pred) e.deps_dur)
          then e.deps_vol <- pred :: e.deps_vol
      | Some _ | None -> ());
      Ids.Page_table.replace t.page_writer page key;
      mark_dirty t (tid, attempt)
  | Prepare { tid; attempt } -> (
      (* decision records without a footprint here (read-only cohort) are
         counted but need no digest entry: there is nothing to redo *)
      match entry t ~tid ~attempt with
      | None -> ()
      | Some e ->
          if e.prepared = Absent then e.prepared <- Volatile;
          e.lsn_vol <- lsn;
          mark_dirty t (tid, attempt))
  | Commit { tid; attempt } -> (
      match entry t ~tid ~attempt with
      | None -> ()
      | Some e ->
          if e.committed = Absent then e.committed <- Volatile;
          e.lsn_vol <- lsn;
          mark_dirty t (tid, attempt))
  | Abort { tid; attempt } -> (
      match entry t ~tid ~attempt with
      | None -> ()
      | Some e ->
          if e.aborted = Absent then e.aborted <- Volatile;
          e.lsn_vol <- lsn;
          mark_dirty t (tid, attempt))
  | Checkpoint _ -> t.checkpoint_pending <- true

let promote t keys checkpointed =
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.txns key with
      | None -> ()
      | Some e ->
          t.forced_records <- t.forced_records + e.updates_vol;
          e.updates_dur <- e.updates_dur + e.updates_vol;
          e.updates_vol <- 0;
          e.pages_dur <- List.rev_append e.pages_vol e.pages_dur;
          e.pages_vol <- [];
          e.deps_dur <- List.rev_append e.deps_vol e.deps_dur;
          e.deps_vol <- [];
          e.lsn_dur <- e.lsn_vol;
          let promote_status s =
            match s with
            | Volatile ->
                t.forced_records <- t.forced_records + 1;
                Durable
            | Absent | Durable -> s
          in
          e.prepared <- promote_status e.prepared;
          e.committed <- promote_status e.committed;
          e.aborted <- promote_status e.aborted)
    keys;
  if checkpointed then prune t

(* A force covers exactly the records appended before it was issued:
   appends racing the disk write land in a fresh dirty list and need a
   force of their own. *)
let force t =
  let keys = t.dirty and checkpointed = t.checkpoint_pending in
  t.dirty <- [];
  t.checkpoint_pending <- false;
  t.forces <- t.forces + 1;
  Disk.write t.disk;
  promote t keys checkpointed

(* Recovery's analysis pass: one sequential read of the durable log. *)
let scan t = Disk.read t.disk

let on_crash ?(torn = false) t =
  let keys = t.dirty in
  t.dirty <- [];
  t.checkpoint_pending <- false;
  let dropped = ref 0 in
  List.iter
    (fun key ->
      match Hashtbl.find_opt t.txns key with
      | None -> ()
      | Some e ->
          dropped := !dropped + e.updates_vol;
          e.updates_vol <- 0;
          e.pages_vol <- [];
          e.deps_vol <- [];
          e.lsn_vol <- e.lsn_dur;
          let drop s =
            match s with
            | Volatile ->
                incr dropped;
                Absent
            | Absent | Durable -> s
          in
          e.prepared <- drop e.prepared;
          e.committed <- drop e.committed;
          e.aborted <- drop e.aborted;
          (* an entry the crash emptied again will be recreated if the
             transaction ever re-logs here *)
          if
            e.updates_dur = 0 && e.prepared = Absent && e.committed = Absent
            && e.aborted = Absent && not e.installed
          then Hashtbl.remove t.txns key)
    keys;
  (* A torn tail is the same volatile suffix, but it partially reached
     the platter: the next scan finds checksum-invalid frames, truncates
     to the last valid record, and — because dependency records ride in
     the clipped suffix — must distrust the dependency DAG until a full
     physical redo and checkpoint rebuild it. *)
  if torn && !dropped > 0 then begin
    t.torn_tails <- t.torn_tails + 1;
    t.torn_records <- t.torn_records + !dropped;
    t.deps_corrupt <- true
  end

let mark_installed t ~tid ~attempt =
  let e = entry_create t ~tid ~attempt in
  e.installed <- true

let prepared_durable t ~tid ~attempt =
  match entry t ~tid ~attempt with
  | None -> false
  | Some e -> ( match e.prepared with Durable -> true | Absent | Volatile -> false)

let committed_durable t ~tid ~attempt =
  match entry t ~tid ~attempt with
  | None -> false
  | Some e -> ( match e.committed with Durable -> true | Absent | Volatile -> false)

let installed t ~tid ~attempt =
  match entry t ~tid ~attempt with None -> false | Some e -> e.installed

let tracked t ~tid ~attempt =
  match entry t ~tid ~attempt with None -> false | Some _ -> true

let redo_pages t ~tid ~attempt =
  match entry t ~tid ~attempt with None -> 0 | Some e -> e.updates_dur

let in_doubt t =
  Hashtbl.fold
    (fun key e acc ->
      match (e.prepared, e.committed, e.aborted) with
      | Durable, (Absent | Volatile), (Absent | Volatile) when not e.installed ->
          key :: acc
      | (Absent | Volatile | Durable), _, _ -> acc)
    t.txns []
  |> List.sort key_compare

let records t = t.records
let forces t = t.forces
let forced_records t = t.forced_records
let torn_tails t = t.torn_tails
let torn_records t = t.torn_records
let deps_corrupt t = t.deps_corrupt
let repair_deps t = t.deps_corrupt <- false
let utilization t = Disk.utilization t.disk
let busy_time t = Disk.busy_time t.disk
let reset_window t = Disk.reset_window t.disk

(* --- chain partitioning -------------------------------------------- *)

module Chains = struct
  type txn = {
    key : int * int;
    pages : Ids.Page.t list;
    deps : (int * int) list;
    lsn : int;
  }

  (* Union-find over transaction indices: two transactions land in the
     same chain when they share a write-set page or a dependency edge
     connects them. Purely structural, so the partition is a function of
     the input list alone. *)
  let partition (txns : txn list) : (int * int) list list =
    let arr = Array.of_list txns in
    let n = Array.length arr in
    let parent = Array.init n Fun.id in
    let rec find i =
      if parent.(i) = i then i
      else begin
        let r = find parent.(i) in
        parent.(i) <- r;
        r
      end
    in
    let union i j =
      let ri = find i and rj = find j in
      if ri <> rj then begin
        let lo = Stdlib.min ri rj and hi = Stdlib.max ri rj in
        parent.(hi) <- lo
      end
    in
    let by_key = Hashtbl.create (2 * n + 1) in
    Array.iteri (fun i tx -> Hashtbl.replace by_key tx.key i) arr;
    let by_page = Ids.Page_table.create (2 * n + 1) in
    Array.iteri
      (fun i tx ->
        List.iter
          (fun p ->
            (match Ids.Page_table.find_opt by_page p with
            | Some j -> union i j
            | None -> ());
            Ids.Page_table.replace by_page p i)
          tx.pages)
      arr;
    Array.iteri
      (fun i tx ->
        List.iter
          (fun d ->
            (* predecessors outside the redo set (already installed, or
               pruned by a checkpoint) constrain nothing *)
            match Hashtbl.find_opt by_key d with
            | Some j -> union i j
            | None -> ())
          tx.deps)
      arr;
    (* materialize components in deterministic order: members sorted by
       (LSN, key) — redo replays each chain in commit order — and chains
       sorted by their first member's LSN *)
    let members = Hashtbl.create (2 * n + 1) in
    for i = n - 1 downto 0 do
      let r = find i in
      let tail = Option.value (Hashtbl.find_opt members r) ~default:[] in
      Hashtbl.replace members r (i :: tail)
    done;
    let chains = ref [] in
    for i = n - 1 downto 0 do
      if find i = i then begin
        let chain =
          Option.value (Hashtbl.find_opt members i) ~default:[]
          |> List.map (fun j -> arr.(j))
          |> List.sort (fun a b ->
                 match Int.compare a.lsn b.lsn with
                 | 0 -> key_compare a.key b.key
                 | c -> c)
        in
        chains := chain :: !chains
      end
    done;
    List.sort
      (fun a b ->
        match (a, b) with
        | ta :: _, tb :: _ -> (
            match Int.compare ta.lsn tb.lsn with
            | 0 -> key_compare ta.key tb.key
            | c -> c)
        | [], _ | _, [] -> 0)
      !chains
    |> List.map (List.map (fun tx -> tx.key))
end

(* [redo_chains t keys]: the dependency records of [keys] partitioned
   into independent redo chains. Keys the digest no longer tracks
   (read-only cohorts, pruned entries) have an empty footprint and fall
   out as singleton chains. *)
let redo_chains t keys =
  let txns =
    List.map
      (fun (tid, attempt) ->
        match entry t ~tid ~attempt with
        | None ->
            {
              Chains.key = (tid, attempt);
              pages = [];
              deps = [];
              lsn = max_int;
            }
        | Some e ->
            {
              Chains.key = (tid, attempt);
              pages = e.pages_dur;
              deps = e.deps_dur;
              lsn = e.lsn_dur;
            })
      keys
  in
  Chains.partition txns

(* --- dependency-record codec --------------------------------------- *)

module Codec = struct
  type dep_record = {
    tid : int;
    attempt : int;
    lsn : int;
    pages : (int * int) list;
    deps : (int * int) list;
  }

  let magic = 0xD7

  (* FNV-1a, 32-bit: cheap, deterministic, and sensitive to every byte —
     exactly what torn-tail truncation needs. *)
  let checksum payload =
    let h = ref 0x811C9DC5 in
    String.iter
      (fun c ->
        h := !h lxor Char.code c;
        h := !h * 0x01000193 land 0xFFFFFFFF)
      payload;
    !h

  let put_u32 buf v =
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr (v land 0xFF))

  let get_u32 s pos =
    (Char.code s.[pos] lsl 24)
    lor (Char.code s.[pos + 1] lsl 16)
    lor (Char.code s.[pos + 2] lsl 8)
    lor Char.code s.[pos + 3]

  (* Frame: magic byte, u32 payload length, payload, u32 FNV-1a of the
     payload. Payload: tid, attempt, lsn, page count, (file, index)
     pairs, dep count, (tid, attempt) pairs — all u32 big-endian. *)
  let encode r =
    let payload = Buffer.create 64 in
    put_u32 payload r.tid;
    put_u32 payload r.attempt;
    put_u32 payload r.lsn;
    put_u32 payload (List.length r.pages);
    List.iter
      (fun (f, i) ->
        put_u32 payload f;
        put_u32 payload i)
      r.pages;
    put_u32 payload (List.length r.deps);
    List.iter
      (fun (t, a) ->
        put_u32 payload t;
        put_u32 payload a)
      r.deps;
    let payload = Buffer.contents payload in
    let frame = Buffer.create (String.length payload + 9) in
    Buffer.add_char frame (Char.chr magic);
    put_u32 frame (String.length payload);
    Buffer.add_string frame payload;
    put_u32 frame (checksum payload);
    Buffer.contents frame

  let encode_log rs = String.concat "" (List.map encode rs)

  let decode s ~pos =
    let len = String.length s in
    if pos + 5 > len then None
    else if Char.code s.[pos] <> magic then None
    else begin
      let plen = get_u32 s (pos + 1) in
      if plen < 16 || pos + 5 + plen + 4 > len then None
      else begin
        let payload = String.sub s (pos + 5) plen in
        if get_u32 s (pos + 5 + plen) <> checksum payload then None
        else begin
          let cursor = ref 0 in
          let next () =
            let v = get_u32 payload !cursor in
            cursor := !cursor + 4;
            v
          in
          let ok = ref true in
          let need n = if !cursor + n > plen then ok := false in
          let tid = next () in
          let attempt = next () in
          let lsn = next () in
          need 4;
          if not !ok then None
          else begin
            let npages = next () in
            need (8 * npages);
            if not !ok then None
            else begin
              let pages =
                List.init npages (fun _ ->
                    let f = next () in
                    let i = next () in
                    (f, i))
              in
              need 4;
              if not !ok then None
              else begin
                let ndeps = next () in
                need (8 * ndeps);
                if (not !ok) || !cursor + (8 * ndeps) <> plen then None
                else begin
                  let deps =
                    List.init ndeps (fun _ ->
                        let t = next () in
                        let a = next () in
                        (t, a))
                  in
                  Some ({ tid; attempt; lsn; pages; deps }, pos + 5 + plen + 4)
                end
              end
            end
          end
        end
      end
    end

  let scan_valid s =
    let len = String.length s in
    let rec go acc pos =
      if pos >= len then (List.rev acc, 0)
      else
        match decode s ~pos with
        | Some (r, next) -> go (r :: acc) next
        | None -> (List.rev acc, len - pos)
    in
    go [] 0
end
