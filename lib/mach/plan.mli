(** Static access plan of a transaction, chosen by the source at submission
    time and reused verbatim on every restart (the paper "reruns the
    transaction"). *)

type page_op = { page : Ids.Page.t; update : bool }

type cohort_plan = {
  node : int;  (** processing node index *)
  ops : page_op list;  (** primary-copy page accesses in execution order *)
  apply_ops : Ids.Page.t list;
      (** replica copies of pages updated by other cohorts that live at
          this node: this cohort must obtain write permission for them
          (at access time or at prepare time, depending on the algorithm)
          and install them at commit. Empty without replication. *)
}

type t = {
  relation : int;
  cohorts : cohort_plan list;  (** in activation order (for sequential) *)
}

val num_cohorts : t -> int
val total_reads : t -> int
val total_writes : t -> int

(** Replica applications across all cohorts (0 without replication). *)
val total_replica_applies : t -> int

val pp : Format.formatter -> t -> unit
