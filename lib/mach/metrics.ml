(** Simulation output collector.

    Counts and tallies are windowed: {!begin_window} is called at the end
    of the warm-up period and discards everything observed so far. The
    running (unwindowed) response-time average also feeds the
    abort-restart delay, per [Agra87a]: a restarted transaction waits one
    average response time as observed at the coordinator node. *)

open Desim

type t = {
  eng : Engine.t;
  restart_delay_floor : float;
  mutable window_start : float;
  mutable commits : int;
  mutable aborts : int;
  mutable completions : int;
      (** attempt completions counted at the terminal loop, independently
          of the commit/abort recorders; conservation demands
          commits + aborts = completions *)
  response : Stats.Tally.t;  (** committed transactions, windowed *)
  response_batches : Stats.Batch_means.t;
      (** batch-means view of the same observations, for honest CIs *)
  mutable response_samples : float list;
      (** windowed raw samples, for exact percentiles *)
  response_running : Stats.Tally.t;  (** never reset; feeds restart delay *)
  blocked_time : Stats.Tally.t;  (** aggregated CC blocking times *)
  mutable active : int;  (** transactions currently in the system *)
  active_ts : Stats.Timeseries.t;
  abort_reasons : (string, int) Hashtbl.t;
  mutable decomp_sum : Decomp.t;
      (** windowed sum of per-transaction response-time decompositions *)
  mutable decomp_records : (float * Decomp.t) list;
      (** windowed (response, decomposition) pairs, newest first; the
          conformance suite checks each decomposition sums to its
          response *)
  mutable committed_pages : int;
      (** windowed page accesses of committed transactions; feeds goodput *)
  indoubt : Stats.Tally.t;
      (** windowed durations of closed in-doubt intervals: yes-vote sent
          until the decision arrived at the cohort *)
  indoubt_open : (int * int * int, float) Hashtbl.t;
      (** (tid, attempt, node) -> yes-vote time, for still-undecided
          cohorts; not windowed, so end-of-run stragglers are visible *)
  quantiles_on : bool;
      (** tail-latency histograms enabled; off-path records are no-ops so
          bench can price the histogram overhead *)
  response_hist : Stats.Hdr.t;  (** windowed response times *)
  component_hists : (string * (Decomp.t -> float) * Stats.Hdr.t) list;
      (** per-{!Decomp} component distributions, in {!Decomp.fields}
          order *)
  indoubt_hist : Stats.Hdr.t;  (** closed 2PC in-doubt intervals *)
  log_force_hist : Stats.Hdr.t;  (** WAL force latencies *)
  recovery_hist : Stats.Hdr.t;  (** crash-recovery durations *)
}

let create ?(quantiles = true) eng ~restart_delay_floor =
  {
    eng;
    restart_delay_floor;
    window_start = Engine.now eng;
    commits = 0;
    aborts = 0;
    completions = 0;
    response = Stats.Tally.create ();
    response_batches = Stats.Batch_means.create ~batch_size:32;
    response_samples = [];
    response_running = Stats.Tally.create ();
    blocked_time = Stats.Tally.create ();
    active = 0;
    active_ts = Stats.Timeseries.create ~now:(Engine.now eng) ~value:0.;
    abort_reasons = Hashtbl.create 8;
    decomp_sum = Decomp.zero;
    decomp_records = [];
    committed_pages = 0;
    indoubt = Stats.Tally.create ();
    indoubt_open = Hashtbl.create 64;
    quantiles_on = quantiles;
    response_hist = Stats.Hdr.create ();
    component_hists =
      List.map (fun (name, get) -> (name, get, Stats.Hdr.create ())) Decomp.fields;
    indoubt_hist = Stats.Hdr.create ();
    log_force_hist = Stats.Hdr.create ();
    recovery_hist = Stats.Hdr.create ();
  }

let begin_window t =
  t.window_start <- Engine.now t.eng;
  t.commits <- 0;
  t.aborts <- 0;
  t.completions <- 0;
  Stats.Tally.reset t.response;
  Stats.Batch_means.reset t.response_batches;
  t.response_samples <- [];
  Stats.Tally.reset t.blocked_time;
  Hashtbl.reset t.abort_reasons;
  t.decomp_sum <- Decomp.zero;
  t.decomp_records <- [];
  t.committed_pages <- 0;
  Stats.Tally.reset t.indoubt;
  Stats.Hdr.reset t.response_hist;
  List.iter (fun (_, _, h) -> Stats.Hdr.reset h) t.component_hists;
  Stats.Hdr.reset t.indoubt_hist;
  Stats.Hdr.reset t.log_force_hist;
  Stats.Hdr.reset t.recovery_hist;
  Stats.Timeseries.set_window t.active_ts ~now:(Engine.now t.eng)

let record_submit t =
  t.active <- t.active + 1;
  Stats.Timeseries.update t.active_ts ~now:(Engine.now t.eng)
    ~value:(float_of_int t.active)

(** One attempt finished (committed or aborted); called by the terminal
    loop before the outcome-specific recorder. *)
let record_completion t = t.completions <- t.completions + 1

let record_commit t ~origin_time ~pages ~decomp =
  let response = Engine.now t.eng -. origin_time in
  t.commits <- t.commits + 1;
  t.committed_pages <- t.committed_pages + pages;
  Stats.Tally.add t.response response;
  Stats.Batch_means.add t.response_batches response;
  t.response_samples <- response :: t.response_samples;
  t.decomp_sum <- Decomp.add t.decomp_sum decomp;
  t.decomp_records <- (response, decomp) :: t.decomp_records;
  if t.quantiles_on then begin
    Stats.Hdr.add t.response_hist response;
    List.iter
      (fun (_, get, h) -> Stats.Hdr.add h (get decomp))
      t.component_hists
  end;
  Stats.Tally.add t.response_running response;
  t.active <- t.active - 1;
  Stats.Timeseries.update t.active_ts ~now:(Engine.now t.eng)
    ~value:(float_of_int t.active)

let record_abort t ~(reason : Txn.abort_reason) =
  t.aborts <- t.aborts + 1;
  let name = Txn.abort_reason_name reason in
  let prev = Option.value ~default:0 (Hashtbl.find_opt t.abort_reasons name) in
  Hashtbl.replace t.abort_reasons name (prev + 1)

let abort_reason_counts t =
  Hashtbl.fold (fun name n acc -> (name, n) :: acc) t.abort_reasons []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let window_duration t = Engine.now t.eng -. t.window_start

(** Transactions committed per second over the measurement window. *)
let throughput t =
  let d = window_duration t in
  if d <= 0. then 0. else float_of_int t.commits /. d

(** Committed page accesses per second: useful work, as opposed to
    per-transaction {!throughput}. Under faults the gap between the two
    widens as partially-done work is thrown away. *)
let goodput t =
  let d = window_duration t in
  if d <= 0. then 0. else float_of_int t.committed_pages /. d

(* -------------------------------------------------------------- *)
(* Time blocked in 2PC: a cohort is in doubt from the moment it sends a
   yes vote until the coordinator's decision reaches it. *)

let record_prepared t ~tid ~attempt ~node =
  Hashtbl.replace t.indoubt_open (tid, attempt, node) (Engine.now t.eng)

let record_decided t ~tid ~attempt ~node =
  match Hashtbl.find_opt t.indoubt_open (tid, attempt, node) with
  | None -> ()
  | Some start ->
      Hashtbl.remove t.indoubt_open (tid, attempt, node);
      let dur = Engine.now t.eng -. start in
      Stats.Tally.add t.indoubt dur;
      if t.quantiles_on then Stats.Hdr.add t.indoubt_hist dur

(** A WAL force completed in [dur] simulated seconds (histogram only; the
    force count and log-disk utilization live in {!Wal}). *)
let record_log_force t ~dur =
  if t.quantiles_on then Stats.Hdr.add t.log_force_hist dur

(** A crash-recovery pass completed in [dur] simulated seconds. *)
let record_recovery t ~dur =
  if t.quantiles_on then Stats.Hdr.add t.recovery_hist dur

(** Mean closed in-doubt interval over the window (seconds). *)
let indoubt_mean t = Stats.Tally.mean t.indoubt

(** Cohorts still awaiting a 2PC decision right now. *)
let indoubt_open t = Hashtbl.length t.indoubt_open

(** Open in-doubt intervals older than [grace] seconds — transactions the
    termination protocol should already have resolved. *)
let indoubt_overdue t ~grace =
  let now = Engine.now t.eng in
  (* a count is the same in any iteration order *)
  Hashtbl.fold (* lint: allow hashtbl-order *)
    (fun _ start acc -> if now -. start > grace then acc + 1 else acc)
    t.indoubt_open 0

let mean_response t = Stats.Tally.mean t.response

(* Successive response times are autocorrelated, so the confidence
   interval comes from batch means; with fewer than two complete batches,
   fall back to the (optimistic) iid interval. *)
let response_ci95 t =
  if Stats.Batch_means.batches t.response_batches >= 2 then
    Stats.Batch_means.ci95 t.response_batches
  else Stats.Tally.ci95 t.response
(* Exact percentile over the windowed samples (0 when empty). *)
let response_percentile t q =
  match t.response_samples with
  | [] -> 0.
  | samples ->
      let sorted = List.sort Float.compare samples in
      let n = List.length sorted in
      let idx =
        Stdlib.min (n - 1)
          (int_of_float (Float.of_int n *. q))
      in
      List.nth sorted idx

let commits t = t.commits
let aborts t = t.aborts
let completions t = t.completions

(** Aborts per commit (the paper's abort ratio). *)
let abort_ratio t =
  if t.commits = 0 then 0.
  else float_of_int t.aborts /. float_of_int t.commits

(** Delay imposed on a restarting transaction: the running mean response
    time, or the configured floor before any commit has been observed. *)
let restart_delay t =
  if Stats.Tally.count t.response_running = 0 then t.restart_delay_floor
  else Stats.Tally.mean t.response_running

let mean_active t = Stats.Timeseries.average t.active_ts ~now:(Engine.now t.eng)
let blocked_time t = t.blocked_time

(** Transactions currently in the system (instantaneous). *)
let active t = t.active

(** Mean per-transaction response-time decomposition over the windowed
    commits; its components sum to {!mean_response} up to rounding. *)
let decomp_mean t =
  if t.commits = 0 then Decomp.zero
  else Decomp.scale t.decomp_sum (1. /. float_of_int t.commits)

(** Windowed per-transaction (response, decomposition) pairs, oldest
    first. *)
let decomp_records t = List.rev t.decomp_records

(* -------------------------------------------------------------- *)
(* Tail-latency histograms *)

let quantiles_enabled t = t.quantiles_on

(** Histogram response-time quantile (upper-edge convention, see
    {!Desim.Stats.Hdr.quantile}); 0 when histograms are disabled or no
    commit has been observed. *)
let response_quantile t q = Stats.Hdr.quantile t.response_hist q

let response_hist t = t.response_hist

(** Per-{!Decomp}-component histograms as [(field_name, hist)], in
    {!Decomp.fields} order. *)
let component_hists t = List.map (fun (n, _, h) -> (n, h)) t.component_hists

let indoubt_hist t = t.indoubt_hist
let log_force_hist t = t.log_force_hist
let recovery_hist t = t.recovery_hist
