(** Typed, seeded fault plan: what goes wrong during a run, and how the
    protocol machinery reacts.

    The plan lives in {!Params.t}, so it is validated with the rest of
    the configuration, recorded in replay artifacts, and can never leak
    between runs the way ad-hoc global fault flags could. A plan drives
    three fault families plus the reaction knobs:

    - {b node crashes}: explicit [crash] schedules (proc node or host)
      and/or a rate-driven model ([crash_rate] exponential inter-crash
      gap per processing node, [mean_repair] exponential downtime);
    - {b message faults}: per-message loss / duplication probability and
      mean exponential extra delay, judged by a dedicated RNG stream
      seeded from [fault_seed];
    - {b chaos switches}: named behavioral faults implemented by the CC
      layer (e.g. ["broken-lock-conversion"]), applied per run;
    - {b reaction}: 2PC timeout base/cap (capped exponential backoff,
      see {!Backoff}) and the retry budget.

    A plan with {!is_zero} is a true no-op: the machine installs no fault
    runtime at all and behaves bit-for-bit like a fault-free build. *)

type crash = {
  target : Ids.node_ref;
  at : float;  (** crash instant, simulated seconds *)
  duration : float;  (** downtime; recovery fires at [at +. duration] *)
}

type t = {
  crashes : crash list;  (** explicit crash/recovery schedule *)
  crash_rate : float;
      (** rate-driven crashes per processing node (1/s exponential inter-
          crash gap; 0 = none). The host only crashes via [crashes]. *)
  mean_repair : float;  (** mean downtime for rate-driven crashes *)
  msg_loss : float;  (** per-message drop probability, in [0, 1) *)
  msg_dup : float;  (** per-message duplication probability *)
  msg_delay : float;  (** mean exponential extra delivery delay (0 = none) *)
  recrash : float;
      (** crash-during-recovery probability in [0, 1]: each time a node's
          recovery starts, the node is crashed again mid-redo with this
          probability (seeded, replayable) — recovery must be re-entrant
          and idempotent, still yielding [lost_commits = 0] *)
  torn_tail : float;
      (** torn-log-tail probability in [0, 1]: each node crash that drops
          a non-empty volatile WAL tail additionally tears it with this
          probability — the suffix partially reached the platter, the
          next scan truncates it at the last checksum-valid record, and
          the clipped dependency records force recovery to degrade to
          serial physical redo (acknowledged records are never affected,
          so no committed work is lost) *)
  timeout : float;  (** base protocol timeout, seconds *)
  timeout_cap : float;  (** backoff cap, >= [timeout] *)
  timeout_jitter : float;
      (** relative backoff jitter in [0, 1] (0 = pure exponential): each
          retry wait is scaled by a factor drawn uniformly from
          [1 - jitter/2, 1 + jitter/2] on a dedicated fault RNG stream,
          de-synchronizing retries that timed out together *)
  max_retries : int;  (** timeouts tolerated before a step gives up *)
  fault_seed : int;  (** dedicated RNG stream for fault decisions *)
  chaos : string list;  (** named CC-layer behavioral faults *)
}

(** The all-off plan (also the [Params.default] setting). *)
val zero : t

(** True when the plan injects machine faults (crashes or message
    faults) — i.e. the machine must install its fault runtime. Chaos
    switches alone do not make a plan active; they change CC behavior,
    not the protocol machinery. *)
val active : t -> bool

(** True when the plan is a complete no-op: not {!active} and no chaos
    switches either. *)
val is_zero : t -> bool

(** Unknown chaos names are accepted here and rejected by the machine,
    which owns the chaos registry. *)
val validate : num_proc_nodes:int -> t -> (unit, string) result

(** Compact one-line spec, the same grammar the CLI accepts:
    comma-separated [key=value] items — [loss=P], [dup=P], [delay=MEAN],
    [crash=TGT\@AT+DUR] (repeatable; TGT a proc index or [host]),
    [crash-rate=R], [mttr=M], [recrash=P], [torn-tail=P], [timeout=T],
    [timeout-cap=C], [jitter=J],
    [retries=N], [fault-seed=S], [chaos=NAME] (repeatable). Defaults are omitted, so
    {!zero} prints as the empty string; floats round-trip exactly. *)
val to_spec : t -> string

(** Parse the {!to_spec} grammar. The empty string is {!zero}. Rejects
    out-of-range values (everything {!validate} checks except the
    machine-size bound on crash targets). *)
val of_spec : string -> (t, string) result

val pp : Format.formatter -> t -> unit
