type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable len : int;
}

let create ~cmp = { cmp; data = [||]; len = 0 }

let size h = h.len
let is_empty h = h.len = 0

let grow h x =
  let cap = Array.length h.data in
  if h.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let nd = Array.make ncap x in
    Array.blit h.data 0 nd 0 h.len;
    h.data <- nd
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.len && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h = if h.len = 0 then None else Some h.data.(0)

exception Empty

let top h =
  if h.len = 0 then raise Empty;
  h.data.(0)

let drop h =
  if h.len = 0 then raise Empty;
  h.len <- h.len - 1;
  if h.len > 0 then begin
    h.data.(0) <- h.data.(h.len);
    sift_down h 0
  end

let pop h =
  if h.len = 0 then None
  else begin
    let x = top h in
    drop h;
    Some x
  end

let clear h =
  h.data <- [||];
  h.len <- 0

let fold h ~init ~f =
  let acc = ref init in
  for i = 0 to h.len - 1 do
    acc := f !acc h.data.(i)
  done;
  !acc
