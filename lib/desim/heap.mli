(** Array-based binary min-heap, specialized for discrete-event scheduling.

    Elements are ordered by a user-supplied total order. Ties must be broken
    by the caller (the simulation engine uses a monotone sequence number) so
    that event ordering is deterministic. *)

type 'a t

(** [create ~cmp] is an empty heap ordered by [cmp] (strictly less = negative). *)
val create : cmp:('a -> 'a -> int) -> 'a t

(** Number of elements currently stored. *)
val size : 'a t -> int

val is_empty : 'a t -> bool

(** Insert an element. Amortized O(log n). *)
val push : 'a t -> 'a -> unit

(** Smallest element, or [None] when empty. Does not remove. *)
val peek : 'a t -> 'a option

exception Empty

(** Smallest element without removing it. Unlike {!peek} this allocates
    nothing — the event loop and the CPU kernel inspect the head once per
    event, and the [Some] wrappers were measurable churn in the Bechamel
    engine benches. Raises {!Empty} when the heap is empty. *)
val top : 'a t -> 'a

(** Remove the smallest element (the one {!top} returns). O(log n).
    Raises {!Empty} when the heap is empty. *)
val drop : 'a t -> unit

(** Remove and return the smallest element, or [None] when empty. *)
val pop : 'a t -> 'a option

(** Remove all elements. *)
val clear : 'a t -> unit

(** Fold over elements in arbitrary (heap) order. *)
val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
