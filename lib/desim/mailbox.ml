(* Receivers park as cancellable cells: a timed-out cell is marked dead
   and skipped by senders, so an expired [recv_timeout] can never steal a
   message from a later receiver. *)
type 'a waiter = {
  mutable live : bool;
  resolver : 'a option Engine.resolver;
}

type 'a t = {
  msgs : 'a Queue.t;
  waiters : 'a waiter Queue.t;
}

let create () = { msgs = Queue.create (); waiters = Queue.create () }

let send t m =
  let rec wake () =
    match Queue.take_opt t.waiters with
    | None -> Queue.push m t.msgs
    | Some w when not w.live -> wake ()
    | Some w ->
        w.live <- false;
        w.resolver.resolve (Some m)
  in
  wake ()

let recv t =
  if not (Queue.is_empty t.msgs) then Queue.pop t.msgs
  else
    match
      Engine.suspend (fun r -> Queue.push { live = true; resolver = r } t.waiters)
    with
    | Some m -> m
    | None -> assert false (* plain recv arms no timer *)

let recv_timeout t eng ~timeout =
  if not (Queue.is_empty t.msgs) then Some (Queue.pop t.msgs)
  else
    Engine.suspend (fun r ->
        let w = { live = true; resolver = r } in
        Queue.push w t.waiters;
        ignore
          (Engine.schedule_after eng ~delay:timeout (fun () ->
               if w.live then begin
                 w.live <- false;
                 w.resolver.resolve None
               end)
            : Engine.handle))

let try_recv t = if Queue.is_empty t.msgs then None else Some (Queue.pop t.msgs)

let length t = Queue.length t.msgs
