(** Disk model per the paper's resource manager (Section 3.4):

    - each disk serves its own queue FCFS;
    - writes are given priority over reads (so the post-commit asynchronous
      write stream keeps up);
    - access times are uniform over [min_time, max_time]. *)

type t

val create : Engine.t -> Rng.t -> min_time:float -> max_time:float -> t

(** Queue a read; [k] runs when the read completes. *)
val submit_read : t -> (unit -> unit) -> unit

(** Queue a write; [k] runs when the write completes. For the paper's
    asynchronous post-commit writes pass [ignore]-like continuations. *)
val submit_write : t -> (unit -> unit) -> unit

(** Blocking read (valid only inside a process). *)
val read : t -> unit

(** Blocking write. *)
val write : t -> unit

(** Reads + writes waiting or in service. *)
val queue_length : t -> int

val utilization : t -> float

(** Cumulative busy time since creation (never reset). *)
val busy_time : t -> float

val reset_window : t -> unit

(** Completed operation counts since creation (reads, writes). *)
val op_counts : t -> int * int
