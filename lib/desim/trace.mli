(** Lightweight event tracing for simulations.

    A bounded ring of timestamped, tagged events; optionally mirrored to a
    live sink (e.g. stderr) as they are emitted. Tracing costs nothing
    when no trace is attached — model code guards emissions with
    [Option.iter]. *)

type event = { time : float; tag : string; message : string }

type t

(** [create eng ~capacity] keeps the last [capacity] events. *)
val create : Engine.t -> capacity:int -> t

(** Record an event at the current simulated time. *)
val emit : t -> tag:string -> string -> unit

(** Like {!emit} but the message is built lazily: when the trace is
    disabled (see {!set_enabled}) the builder is never called. *)
val emitf : t -> tag:string -> (unit -> string) -> unit

(** Enable or disable recording. A disabled trace drops {!emit} calls and
    skips {!emitf} builders entirely; already-recorded events stay in the
    ring. Traces start enabled. *)
val set_enabled : t -> bool -> unit

val enabled : t -> bool

(** Mirror every subsequent event to [f] as it happens. *)
val set_sink : t -> (event -> unit) option -> unit

(** Events currently retained, oldest first. *)
val events : t -> event list

(** Events retained for one tag, oldest first. *)
val events_with_tag : t -> string -> event list

(** Total emitted since creation (including evicted ones). *)
val emitted : t -> int

val clear : t -> unit

(** "t=12.345678 [tag] message" *)
val format_event : event -> string
