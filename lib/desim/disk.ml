type t = {
  eng : Engine.t;
  rng : Rng.t;
  min_time : float;
  max_time : float;
  reads : (unit -> unit) Queue.t;
  writes : (unit -> unit) Queue.t;
  mutable busy : bool;
  util : Stats.Utilization.t;
  mutable n_reads : int;
  mutable n_writes : int;
}

let create eng rng ~min_time ~max_time =
  assert (0. <= min_time && min_time <= max_time);
  {
    eng;
    rng;
    min_time;
    max_time;
    reads = Queue.create ();
    writes = Queue.create ();
    busy = false;
    util = Stats.Utilization.create ~now:(Engine.now eng);
    n_reads = 0;
    n_writes = 0;
  }

let record_util t =
  Stats.Utilization.set_busy_level t.util ~now:(Engine.now t.eng)
    ~level:(if t.busy then 1.0 else 0.0)

let rec pump t =
  if not t.busy then begin
    let next =
      if not (Queue.is_empty t.writes) then Some (`Write, Queue.pop t.writes)
      else if not (Queue.is_empty t.reads) then Some (`Read, Queue.pop t.reads)
      else None
    in
    match next with
    | None -> ()
    | Some (kind, k) ->
        t.busy <- true;
        record_util t;
        let service = Rng.uniform t.rng ~lo:t.min_time ~hi:t.max_time in
        ignore
          (Engine.schedule_after t.eng ~delay:service (fun () ->
               t.busy <- false;
               (match kind with
               | `Read -> t.n_reads <- t.n_reads + 1
               | `Write -> t.n_writes <- t.n_writes + 1);
               record_util t;
               pump t;
               k ())
            : Engine.handle)
  end

let submit_read t k =
  Queue.push k t.reads;
  pump t

let submit_write t k =
  Queue.push k t.writes;
  pump t

let read t =
  Engine.suspend (fun (r : unit Engine.resolver) ->
      submit_read t (fun () -> r.resolve ()))

let write t =
  Engine.suspend (fun (r : unit Engine.resolver) ->
      submit_write t (fun () -> r.resolve ()))

let queue_length t =
  Queue.length t.reads + Queue.length t.writes + if t.busy then 1 else 0

let utilization t = Stats.Utilization.value t.util ~now:(Engine.now t.eng)
let busy_time t = Stats.Utilization.busy_time t.util ~now:(Engine.now t.eng)
let reset_window t = Stats.Utilization.set_window t.util ~now:(Engine.now t.eng)
let op_counts t = (t.n_reads, t.n_writes)
