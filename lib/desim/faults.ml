module Crashable = struct
  type t = { mutable up : bool; mutable epoch : int }

  let create () = { up = true; epoch = 0 }
  let up t = t.up
  let epoch t = t.epoch

  let crash t =
    if t.up then begin
      t.up <- false;
      t.epoch <- t.epoch + 1
    end

  let recover t =
    if not t.up then begin
      t.up <- true;
      t.epoch <- t.epoch + 1
    end
end

module Link = struct
  type t = { rng : Rng.t; loss : float; dup : float; delay : float }

  let create rng ~loss ~dup ~delay = { rng; loss; dup; delay }

  (* Draw from the stream only for nonzero parameters, so a link with a
     parameter at zero consumes no randomness for that decision and a
     fully-zero link consumes none at all. *)
  let judge t =
    if t.loss > 0. && Rng.bool t.rng ~p:t.loss then []
    else begin
      let extra () =
        if t.delay > 0. then Rng.exponential t.rng ~mean:t.delay else 0.
      in
      let first = extra () in
      if t.dup > 0. && Rng.bool t.rng ~p:t.dup then [ first; extra () ]
      else [ first ]
    end
end
