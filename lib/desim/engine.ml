open Effect
open Effect.Deep

exception Not_in_process

(* A scheduled event doubles as its own cancellation handle: the separate
   handle record used to cost one extra allocation per scheduled event,
   which the Bechamel engine benches showed as pure churn. *)
type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type 'a resolver = { resolve : 'a -> unit; reject : exn -> unit }

type t = {
  mutable now : float;
  events : event Heap.t;
  mutable seq : int;
  mutable stop_requested : bool;
  mutable processed : int;
}

(* Effects are parameterized by the engine so that several engines can
   coexist; the handler installed by [spawn] checks identity. *)
type _ Effect.t +=
  | Wait : t * float -> unit Effect.t
  | Suspend : t * ('a resolver -> unit) -> 'a Effect.t

let cmp_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    now = 0.;
    events = Heap.create ~cmp:cmp_event;
    seq = 0;
    stop_requested = false;
    processed = 0;
  }

let now t = t.now

let schedule t ~at action =
  if at < t.now -. 1e-12 then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at %g is in the past (now %g)" at t.now);
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  let ev = { time = at; seq = t.seq; action; cancelled = false } in
  Heap.push t.events ev;
  ev

let schedule_after t ~delay action = schedule t ~at:(t.now +. delay) action

let cancel h = h.cancelled <- true

(* Processes find their engine through a "current engine" slot maintained
   around every resumption, so model code can call [wait]/[suspend] without
   threading the engine value everywhere. The slot is domain-local: each
   worker domain of a parallel sweep runs its own engine, and a global ref
   here would let one domain's resumption clobber another's. *)
let current : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let wait delay =
  match !(Domain.DLS.get current) with
  | None -> raise Not_in_process
  | Some eng -> perform (Wait (eng, delay))

let suspend register =
  match !(Domain.DLS.get current) with
  | None -> raise Not_in_process
  | Some eng -> perform (Suspend (eng, register))

let make_resolver (schedule_resume : (unit -> unit) -> unit)
    (k_resolve : 'a -> unit -> unit) (k_reject : exn -> unit -> unit) :
    'a resolver =
  let used = ref false in
  let once f x =
    if !used then invalid_arg "Engine: resolver used twice";
    used := true;
    schedule_resume (f x)
  in
  { resolve = (fun v -> once k_resolve v); reject = (fun e -> once k_reject e) }

let rec run_fiber (t : t) (f : unit -> unit) : unit =
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Wait (eng, delay) when eng == t ->
              Some
                (fun (k : (a, _) continuation) ->
                  ignore
                    (schedule_after t ~delay (fun () -> resume t k ())
                      : handle))
          | Suspend (eng, register) when eng == t ->
              Some
                (fun (k : (a, _) continuation) ->
                  let schedule_resume thunk =
                    ignore (schedule t ~at:t.now thunk : handle)
                  in
                  let r =
                    make_resolver schedule_resume
                      (fun v () -> resume t k v)
                      (fun e () -> discontinue_in t k e)
                  in
                  register r)
          | _ -> None);
    }

and resume : type a. t -> (a, unit) continuation -> a -> unit =
 fun t k v ->
  let slot = Domain.DLS.get current in
  let saved = !slot in
  slot := Some t;
  Fun.protect ~finally:(fun () -> slot := saved) (fun () -> continue k v)

and discontinue_in : type a. t -> (a, unit) continuation -> exn -> unit =
 fun t k e ->
  let slot = Domain.DLS.get current in
  let saved = !slot in
  slot := Some t;
  Fun.protect ~finally:(fun () -> slot := saved) (fun () -> discontinue k e)

let spawn t ?name:_ f =
  ignore
    (schedule t ~at:t.now (fun () ->
         let slot = Domain.DLS.get current in
         let saved = !slot in
         slot := Some t;
         Fun.protect
           ~finally:(fun () -> slot := saved)
           (fun () -> run_fiber t f))
      : handle)

let stop t = t.stop_requested <- true

let events_processed t = t.processed

let run ?until t =
  t.stop_requested <- false;
  let continue_ = ref true in
  while !continue_ && (not t.stop_requested) && not (Heap.is_empty t.events) do
    let ev = Heap.top t.events in
    match until with
    | Some u when ev.time > u ->
        t.now <- u;
        continue_ := false
    | _ ->
        Heap.drop t.events;
        if not ev.cancelled then begin
          t.now <- ev.time;
          t.processed <- t.processed + 1;
          ev.action ()
        end
  done;
  match until with
  | Some u when (not t.stop_requested) && t.now < u && Heap.is_empty t.events
    ->
      t.now <- u
  | _ -> ()
