type event = { time : float; tag : string; message : string }

type t = {
  eng : Engine.t;
  capacity : int;
  ring : event Queue.t;
  mutable sink : (event -> unit) option;
  mutable emitted : int;
  mutable enabled : bool;
}

let create eng ~capacity =
  assert (capacity > 0);
  {
    eng;
    capacity;
    ring = Queue.create ();
    sink = None;
    emitted = 0;
    enabled = true;
  }

let push t ev =
  t.emitted <- t.emitted + 1;
  Queue.push ev t.ring;
  if Queue.length t.ring > t.capacity then ignore (Queue.pop t.ring);
  match t.sink with Some f -> f ev | None -> ()

let emit t ~tag message =
  if t.enabled then push t { time = Engine.now t.eng; tag; message }

let emitf t ~tag build = if t.enabled then emit t ~tag (build ())

let set_enabled t enabled = t.enabled <- enabled

let enabled t = t.enabled

let set_sink t sink = t.sink <- sink

let events t = List.of_seq (Queue.to_seq t.ring)

let events_with_tag t tag =
  List.filter (fun ev -> ev.tag = tag) (events t)

let emitted t = t.emitted

let clear t = Queue.clear t.ring

let format_event ev =
  Printf.sprintf "t=%.6f [%s] %s" ev.time ev.tag ev.message
