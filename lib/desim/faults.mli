(** Fault-injection primitives for discrete-event simulations.

    Two building blocks, both deterministic: a {!Crashable} up/down state
    for a resource, and a lossy/duplicating/delaying {!Link} judged by a
    dedicated {!Rng} stream. Faults scheduled through these primitives
    are ordinary simulation events, so a seeded run replays exactly. *)

module Crashable : sig
  (** Up/down state of a simulated resource. The state itself carries no
      timing; crash and recovery instants are scheduled by the caller as
      engine events. *)

  type t

  (** A fresh resource, initially up. *)
  val create : unit -> t

  val up : t -> bool

  (** Number of state transitions so far; lets callers detect that a
      resource went down and came back between two observations. *)
  val epoch : t -> int

  (** Take the resource down (no-op when already down). *)
  val crash : t -> unit

  (** Bring the resource back up (no-op when already up). *)
  val recover : t -> unit
end

module Link : sig
  (** A message-fault judge: per message, decides drop, duplication and
      extra delivery delay from a dedicated RNG stream. *)

  type t

  (** [create rng ~loss ~dup ~delay]: [loss] and [dup] are per-message
      probabilities; [delay] is the mean of an exponential extra delivery
      delay (0 = none). Decisions with a zero parameter consume no
      randomness. *)
  val create : Rng.t -> loss:float -> dup:float -> delay:float -> t

  (** Judge one message: the result is one extra-delay value per copy to
      deliver ([0.] = deliver immediately), or [[]] when the message is
      dropped. A duplicated message yields two copies. *)
  val judge : t -> float list
end
