type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = seed }

(* 53 high bits -> float in [0,1) *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let exponential t ~mean =
  assert (mean >= 0.0);
  if Float.equal mean 0.0 then 0.0
  else
    let u = float t in
    (* u is in [0,1); 1-u is in (0,1] so log is finite *)
    -.mean *. log (1.0 -. u)

let int t n =
  assert (n > 0);
  (* Rejection-free for simulation purposes: modulo bias is negligible for
     the small ranges used here (n << 2^63). *)
  let v = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int n))

let int_range t ~lo ~hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t ~p = float t < p

let permutation t n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let sample_without_replacement t ~n ~k =
  assert (0 <= k && k <= n);
  (* Partial Fisher-Yates over a sparse map: O(k) time and space. *)
  let tbl = Hashtbl.create (2 * k) in
  let get i = match Hashtbl.find_opt tbl i with Some v -> v | None -> i in
  let acc = ref [] in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let vi = get i and vj = get j in
    Hashtbl.replace tbl j vi;
    Hashtbl.replace tbl i vj;
    acc := vj :: !acc
  done;
  !acc
