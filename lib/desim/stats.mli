(** Statistics collectors for simulation output analysis. *)

(** Welford-style online accumulator for i.i.d.-ish observations
    (response times, blocking times, ...). *)
module Tally : sig
  type t

  val create : unit -> t
  val reset : t -> unit
  val add : t -> float -> unit
  val count : t -> int
  val total : t -> float
  val mean : t -> float

  (** Sample variance (n-1 denominator); 0 for fewer than 2 observations. *)
  val variance : t -> float

  val stddev : t -> float
  val min : t -> float
  val max : t -> float

  (** Half-width of a normal-approximation 95% confidence interval on the
      mean; 0 for fewer than 2 observations. *)
  val ci95 : t -> float
end

(** Time-weighted average of a piecewise-constant signal (queue lengths,
    number of active transactions, ...). *)
module Timeseries : sig
  type t

  (** [create ~now ~value] starts tracking at simulated time [now]. *)
  val create : now:float -> value:float -> t

  (** [update t ~now ~value] records that the signal changed to [value] at
      time [now]. Times must be non-decreasing. *)
  val update : t -> now:float -> value:float -> unit

  (** [set_window t ~now] discards history before [now] (end of warm-up). *)
  val set_window : t -> now:float -> unit

  (** Current value of the signal. *)
  val value : t -> float

  (** Time-average over the observation window ending at [now]. *)
  val average : t -> now:float -> float

  (** Lifetime integral of the signal up to [now]; unlike {!average} it is
      not affected by {!set_window}, so interval averages can be derived
      by differencing successive readings (the time-series sampler does). *)
  val total_area : t -> now:float -> float
end

(** Busy-time tracker for a single server or a pool: fraction of time the
    tracked quantity was non-zero, plus accumulated busy area. *)
module Utilization : sig
  type t

  val create : now:float -> t

  (** [set_busy_level t ~now ~level] : [level] in [0,1] is the fraction of
      capacity in use from [now] on (1 server busy = 1.0; for a pool of k
      servers pass busy/k). *)
  val set_busy_level : t -> now:float -> level:float -> unit

  val set_window : t -> now:float -> unit

  (** Mean utilization over the observation window ending at [now]. *)
  val value : t -> now:float -> float

  (** Cumulative busy time since creation (never reset by
      {!set_window}). *)
  val busy_time : t -> now:float -> float
end

(** Batch-means estimator: autocorrelated steady-state observations (e.g.
    response times of successive transactions) are grouped into fixed-size
    batches whose means are approximately independent, giving an honest
    confidence interval via the t-distribution over batch means. *)
module Batch_means : sig
  type t

  (** [create ~batch_size] groups every [batch_size] consecutive
      observations into one batch. *)
  val create : batch_size:int -> t

  val add : t -> float -> unit

  (** Total observations seen. *)
  val count : t -> int

  (** Completed batches. *)
  val batches : t -> int

  (** Grand mean over completed batches (0 when none). *)
  val mean : t -> float

  (** Half-width of the 95% confidence interval from the batch means
      (t-quantile approximation); 0 with fewer than 2 batches. *)
  val ci95 : t -> float

  val reset : t -> unit
end

(** Fixed-bin histogram over [lo, hi); out-of-range values are clamped to
    the edge bins. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  val count : t -> int

  (** [quantile t q] for q in [0,1], linear within bins; nan when empty. *)
  val quantile : t -> float -> float

  val bins : t -> (float * float * int) list
end

(** Deterministic log-scaled fixed-bucket (HDR-style) histogram for latency
    tails. Each power-of-two octave in [2^min_exp, 2^max_exp) is split into
    2^sub_bits equal-mantissa buckets; the bucket index is computed from the
    raw IEEE-754 bits of the sample (pure integer arithmetic, no rounding, no
    randomness), so bucketing — and therefore every quantile — is
    bit-identical across hosts and across serial vs [--jobs] parallel runs.
    Values <= 0 (and nan) fall into bucket 0; values >= 2^max_exp clamp into
    the last bucket. Memory: one int per bucket,
    [(max_exp - min_exp) * 2^sub_bits] buckets total. *)
module Hdr : sig
  type t

  (** Defaults ([min_exp = -20], [max_exp = 12], [sub_bits = 6]) track
      latencies from ~1 microsecond to ~4096 simulated seconds at a relative
      error of at most 2^-6 ~ 1.6%, in 2048 buckets (16 KiB). *)
  val create : ?min_exp:int -> ?max_exp:int -> ?sub_bits:int -> unit -> t

  val reset : t -> unit
  val add : t -> float -> unit
  val count : t -> int

  (** Sum of samples in observation order (bit-identical to a {!Tally.total}
      fed the same stream). *)
  val total : t -> float

  (** Worst-case relative over-estimate of {!quantile}: 2^-sub_bits. *)
  val rel_error : t -> float

  (** Bucket index a sample would land in (exposed for tests). *)
  val index : t -> float -> int

  (** [quantile t q] uses the order statistic at
      [idx = min (n-1) (int (n*q))] — the same rank convention as the exact
      sorted-sample percentiles in [Metrics] — and returns the upper edge of
      the bucket holding that sample, so for in-range samples
      [exact <= quantile t q <= exact * (1 + rel_error t)]. 0 when empty. *)
  val quantile : t -> float -> float

  (** [merge a b] is a fresh histogram equivalent to observing both sample
      streams; bucket counts (hence quantiles) merge exactly associatively.
      Both inputs must share the same bucket configuration. *)
  val merge : t -> t -> t

  (** Non-empty buckets as [(lower_edge, upper_edge, count)]. *)
  val nonzero_bins : t -> (float * float * int) list

  (** Cumulative counts at each non-empty bucket's upper edge — the
      Prometheus [le] series, minus the final +Inf entry ({!count}). *)
  val cumulative : t -> (float * int) list
end
