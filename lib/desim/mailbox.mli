(** Unbounded FIFO message queue with blocking receive.

    Multiple senders, multiple (queued) receivers. Used for node message
    dispatch loops and coordinator/cohort communication. *)

type 'a t

val create : unit -> 'a t

(** Enqueue a message; wakes the longest-waiting live receiver, if any. *)
val send : 'a t -> 'a -> unit

(** Dequeue a message, blocking the calling process while empty. *)
val recv : 'a t -> 'a

(** [recv_timeout t eng ~timeout] is [Some m] like {!recv}, or [None] if
    no message arrives within [timeout] simulated seconds. A timed-out
    receive consumes nothing: the next message goes to the next receiver
    (or the queue). The timer is armed only when the call actually
    blocks, so a non-empty mailbox costs no engine event. *)
val recv_timeout : 'a t -> Engine.t -> timeout:float -> 'a option

(** [try_recv t] is [Some m] without blocking, or [None] when empty. *)
val try_recv : 'a t -> 'a option

(** Number of queued (undelivered) messages. *)
val length : 'a t -> int
