module Tally = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable total : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; total = 0.; mn = infinity; mx = neg_infinity }

  let reset t =
    t.n <- 0;
    t.mean <- 0.;
    t.m2 <- 0.;
    t.total <- 0.;
    t.mn <- infinity;
    t.mx <- neg_infinity

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x

  let count t = t.n
  let total t = t.total
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.mn
  let max t = t.mx

  let ci95 t =
    if t.n < 2 then 0.
    else 1.96 *. stddev t /. sqrt (float_of_int t.n)
end

module Timeseries = struct
  type t = {
    mutable window_start : float;
    mutable last_time : float;
    mutable last_value : float;
    mutable area : float;
    mutable total_area : float;  (** lifetime area; never reset *)
  }

  let create ~now ~value =
    {
      window_start = now;
      last_time = now;
      last_value = value;
      area = 0.;
      total_area = 0.;
    }

  let flush t ~now =
    if now > t.last_time then begin
      let slab = t.last_value *. (now -. t.last_time) in
      t.area <- t.area +. slab;
      t.total_area <- t.total_area +. slab;
      t.last_time <- now
    end

  let update t ~now ~value =
    flush t ~now;
    t.last_value <- value

  let set_window t ~now =
    flush t ~now;
    t.window_start <- now;
    t.area <- 0.

  let value t = t.last_value

  let average t ~now =
    let span = now -. t.window_start in
    if span <= 0. then t.last_value
    else t.area +. (t.last_value *. (now -. t.last_time)) |> fun a -> a /. span

  let total_area t ~now =
    t.total_area +. (t.last_value *. Float.max 0. (now -. t.last_time))
end

module Utilization = struct
  type t = Timeseries.t

  let create ~now = Timeseries.create ~now ~value:0.

  let set_busy_level t ~now ~level =
    assert (level >= 0. && level <= 1.0000001);
    Timeseries.update t ~now ~value:level

  let set_window = Timeseries.set_window
  let value t ~now = Timeseries.average t ~now
  let busy_time t ~now = Timeseries.total_area t ~now
end

module Batch_means = struct
  type t = {
    batch_size : int;
    batch_stats : Tally.t;  (** one observation per completed batch *)
    mutable current_sum : float;
    mutable current_n : int;
    mutable total : int;
  }

  let create ~batch_size =
    assert (batch_size > 0);
    {
      batch_size;
      batch_stats = Tally.create ();
      current_sum = 0.;
      current_n = 0;
      total = 0;
    }

  let add t x =
    t.total <- t.total + 1;
    t.current_sum <- t.current_sum +. x;
    t.current_n <- t.current_n + 1;
    if t.current_n = t.batch_size then begin
      Tally.add t.batch_stats (t.current_sum /. float_of_int t.batch_size);
      t.current_sum <- 0.;
      t.current_n <- 0
    end

  let count t = t.total
  let batches t = Tally.count t.batch_stats
  let mean t = Tally.mean t.batch_stats

  (* two-sided 97.5% t quantiles for small degrees of freedom, then the
     normal approximation *)
  let t_quantile df =
    match df with
    | 1 -> 12.706
    | 2 -> 4.303
    | 3 -> 3.182
    | 4 -> 2.776
    | 5 -> 2.571
    | 6 -> 2.447
    | 7 -> 2.365
    | 8 -> 2.306
    | 9 -> 2.262
    | 10 -> 2.228
    | 15 -> 2.131
    | 20 -> 2.086
    | df when df <= 12 -> 2.2
    | df when df <= 17 -> 2.12
    | df when df <= 25 -> 2.07
    | df when df <= 40 -> 2.02
    | _ -> 1.96

  let ci95 t =
    let n = batches t in
    if n < 2 then 0.
    else
      t_quantile (n - 1) *. Tally.stddev t.batch_stats /. sqrt (float_of_int n)

  let reset t =
    Tally.reset t.batch_stats;
    t.current_sum <- 0.;
    t.current_n <- 0;
    t.total <- 0
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    counts : int array;
    mutable n : int;
  }

  let create ~lo ~hi ~bins =
    assert (bins > 0 && hi > lo);
    { lo; hi; counts = Array.make bins 0; n = 0 }

  let nbins t = Array.length t.counts

  let add t x =
    let w = (t.hi -. t.lo) /. float_of_int (nbins t) in
    let i = int_of_float ((x -. t.lo) /. w) in
    let i = if i < 0 then 0 else if i >= nbins t then nbins t - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1

  let count t = t.n

  let quantile t q =
    if t.n = 0 then nan
    else begin
      let target = q *. float_of_int t.n in
      let w = (t.hi -. t.lo) /. float_of_int (nbins t) in
      let rec go i acc =
        if i >= nbins t then t.hi
        else
          let acc' = acc +. float_of_int t.counts.(i) in
          if acc' >= target then
            let frac =
              if t.counts.(i) = 0 then 0.
              else (target -. acc) /. float_of_int t.counts.(i)
            in
            t.lo +. (w *. (float_of_int i +. frac))
          else go (i + 1) acc'
      in
      go 0 0.
    end

  let bins t =
    let w = (t.hi -. t.lo) /. float_of_int (nbins t) in
    List.init (nbins t) (fun i ->
        (t.lo +. (w *. float_of_int i), t.lo +. (w *. float_of_int (i + 1)),
         t.counts.(i)))
end

module Hdr = struct
  (* Bucket edges are exactly representable (power-of-two octave times
     1 + s/2^sub_bits), and the bucket index is derived from the raw IEEE-754
     bits of the sample, so bucketing involves no float arithmetic at all:
     identical samples land in identical buckets on every host, which is what
     keeps quantiles bit-identical across --jobs layouts. *)
  type t = {
    min_exp : int;  (** lowest octave: bucket 0 starts at 2^min_exp *)
    max_exp : int;  (** values >= 2^max_exp clamp into the last bucket *)
    sub_bits : int;  (** 2^sub_bits buckets per octave *)
    counts : int array;
    mutable n : int;
    mutable total : float;
  }

  let create ?(min_exp = -20) ?(max_exp = 12) ?(sub_bits = 6) () =
    assert (max_exp > min_exp);
    assert (sub_bits >= 1 && sub_bits <= 20);
    {
      min_exp;
      max_exp;
      sub_bits;
      counts = Array.make ((max_exp - min_exp) lsl sub_bits) 0;
      n = 0;
      total = 0.;
    }

  let nbuckets t = Array.length t.counts

  let reset t =
    Array.fill t.counts 0 (nbuckets t) 0;
    t.n <- 0;
    t.total <- 0.

  let count t = t.n
  let total t = t.total

  (** Worst-case relative over-estimate of [quantile]: 2^-sub_bits. *)
  let rel_error t = ldexp 1. (-t.sub_bits)

  let index t x =
    if not (x > 0.) then 0 (* <= 0 and nan collapse into the first bucket *)
    else begin
      let bits = Int64.bits_of_float x in
      let biased = Int64.to_int (Int64.shift_right_logical bits 52) land 0x7ff in
      let sub =
        Int64.to_int
          (Int64.logand
             (Int64.shift_right_logical bits (52 - t.sub_bits))
             (Int64.of_int ((1 lsl t.sub_bits) - 1)))
      in
      (* subnormals have biased exponent 0 -> a large negative index -> 0 *)
      let i = ((biased - 1023 - t.min_exp) lsl t.sub_bits) lor sub in
      if i < 0 then 0 else if i >= nbuckets t then nbuckets t - 1 else i
    end

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let i = index t x in
    t.counts.(i) <- t.counts.(i) + 1

  (* Lower edge of bucket [i], built directly from exponent/mantissa bits so
     it is the exact infimum of the floats that map to bucket [i]. Also valid
     for i = nbuckets (the upper edge of the last bucket). *)
  let lower_edge t i =
    let octave = i asr t.sub_bits and sub = i land ((1 lsl t.sub_bits) - 1) in
    Int64.float_of_bits
      (Int64.logor
         (Int64.shift_left (Int64.of_int (octave + t.min_exp + 1023)) 52)
         (Int64.shift_left (Int64.of_int sub) (52 - t.sub_bits)))

  let upper_edge t i = lower_edge t (i + 1)

  (* Same rank convention as exact sorted-sample percentiles elsewhere in the
     repo: the order statistic at idx = min (n-1) (int (n*q)). We return the
     upper edge of the bucket holding that sample, so the result
     over-estimates the exact quantile by at most a factor 1 + 2^-sub_bits
     (for in-range samples). *)
  let quantile t q =
    if t.n = 0 then 0.
    else begin
      let idx =
        Stdlib.min (t.n - 1) (int_of_float (float_of_int t.n *. q))
      in
      let rec go i cum =
        if i >= nbuckets t - 1 then upper_edge t i
        else
          let cum = cum + t.counts.(i) in
          if cum > idx then upper_edge t i else go (i + 1) cum
      in
      go 0 0
    end

  let merge a b =
    assert (a.min_exp = b.min_exp && a.max_exp = b.max_exp
            && a.sub_bits = b.sub_bits);
    let m =
      create ~min_exp:a.min_exp ~max_exp:a.max_exp ~sub_bits:a.sub_bits ()
    in
    Array.blit a.counts 0 m.counts 0 (nbuckets a);
    Array.iteri (fun i c -> m.counts.(i) <- m.counts.(i) + c) b.counts;
    m.n <- a.n + b.n;
    m.total <- a.total +. b.total;
    m

  let nonzero_bins t =
    let acc = ref [] in
    for i = nbuckets t - 1 downto 0 do
      if t.counts.(i) > 0 then
        acc := (lower_edge t i, upper_edge t i, t.counts.(i)) :: !acc
    done;
    !acc

  let cumulative t =
    let acc = ref [] and cum = ref 0 in
    for i = nbuckets t - 1 downto 0 do
      if t.counts.(i) > 0 then acc := (i, t.counts.(i)) :: !acc
    done;
    List.map
      (fun (i, c) ->
        cum := !cum + c;
        (upper_edge t i, !cum))
      !acc
end
