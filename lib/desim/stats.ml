module Tally = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable total : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; total = 0.; mn = infinity; mx = neg_infinity }

  let reset t =
    t.n <- 0;
    t.mean <- 0.;
    t.m2 <- 0.;
    t.total <- 0.;
    t.mn <- infinity;
    t.mx <- neg_infinity

  let add t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.mn then t.mn <- x;
    if x > t.mx then t.mx <- x

  let count t = t.n
  let total t = t.total
  let mean t = if t.n = 0 then 0. else t.mean
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.mn
  let max t = t.mx

  let ci95 t =
    if t.n < 2 then 0.
    else 1.96 *. stddev t /. sqrt (float_of_int t.n)
end

module Timeseries = struct
  type t = {
    mutable window_start : float;
    mutable last_time : float;
    mutable last_value : float;
    mutable area : float;
    mutable total_area : float;  (** lifetime area; never reset *)
  }

  let create ~now ~value =
    {
      window_start = now;
      last_time = now;
      last_value = value;
      area = 0.;
      total_area = 0.;
    }

  let flush t ~now =
    if now > t.last_time then begin
      let slab = t.last_value *. (now -. t.last_time) in
      t.area <- t.area +. slab;
      t.total_area <- t.total_area +. slab;
      t.last_time <- now
    end

  let update t ~now ~value =
    flush t ~now;
    t.last_value <- value

  let set_window t ~now =
    flush t ~now;
    t.window_start <- now;
    t.area <- 0.

  let value t = t.last_value

  let average t ~now =
    let span = now -. t.window_start in
    if span <= 0. then t.last_value
    else t.area +. (t.last_value *. (now -. t.last_time)) |> fun a -> a /. span

  let total_area t ~now =
    t.total_area +. (t.last_value *. Float.max 0. (now -. t.last_time))
end

module Utilization = struct
  type t = Timeseries.t

  let create ~now = Timeseries.create ~now ~value:0.

  let set_busy_level t ~now ~level =
    assert (level >= 0. && level <= 1.0000001);
    Timeseries.update t ~now ~value:level

  let set_window = Timeseries.set_window
  let value t ~now = Timeseries.average t ~now
  let busy_time t ~now = Timeseries.total_area t ~now
end

module Batch_means = struct
  type t = {
    batch_size : int;
    batch_stats : Tally.t;  (** one observation per completed batch *)
    mutable current_sum : float;
    mutable current_n : int;
    mutable total : int;
  }

  let create ~batch_size =
    assert (batch_size > 0);
    {
      batch_size;
      batch_stats = Tally.create ();
      current_sum = 0.;
      current_n = 0;
      total = 0;
    }

  let add t x =
    t.total <- t.total + 1;
    t.current_sum <- t.current_sum +. x;
    t.current_n <- t.current_n + 1;
    if t.current_n = t.batch_size then begin
      Tally.add t.batch_stats (t.current_sum /. float_of_int t.batch_size);
      t.current_sum <- 0.;
      t.current_n <- 0
    end

  let count t = t.total
  let batches t = Tally.count t.batch_stats
  let mean t = Tally.mean t.batch_stats

  (* two-sided 97.5% t quantiles for small degrees of freedom, then the
     normal approximation *)
  let t_quantile df =
    match df with
    | 1 -> 12.706
    | 2 -> 4.303
    | 3 -> 3.182
    | 4 -> 2.776
    | 5 -> 2.571
    | 6 -> 2.447
    | 7 -> 2.365
    | 8 -> 2.306
    | 9 -> 2.262
    | 10 -> 2.228
    | 15 -> 2.131
    | 20 -> 2.086
    | df when df <= 12 -> 2.2
    | df when df <= 17 -> 2.12
    | df when df <= 25 -> 2.07
    | df when df <= 40 -> 2.02
    | _ -> 1.96

  let ci95 t =
    let n = batches t in
    if n < 2 then 0.
    else
      t_quantile (n - 1) *. Tally.stddev t.batch_stats /. sqrt (float_of_int n)

  let reset t =
    Tally.reset t.batch_stats;
    t.current_sum <- 0.;
    t.current_n <- 0;
    t.total <- 0
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    counts : int array;
    mutable n : int;
  }

  let create ~lo ~hi ~bins =
    assert (bins > 0 && hi > lo);
    { lo; hi; counts = Array.make bins 0; n = 0 }

  let nbins t = Array.length t.counts

  let add t x =
    let w = (t.hi -. t.lo) /. float_of_int (nbins t) in
    let i = int_of_float ((x -. t.lo) /. w) in
    let i = if i < 0 then 0 else if i >= nbins t then nbins t - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1;
    t.n <- t.n + 1

  let count t = t.n

  let quantile t q =
    if t.n = 0 then nan
    else begin
      let target = q *. float_of_int t.n in
      let w = (t.hi -. t.lo) /. float_of_int (nbins t) in
      let rec go i acc =
        if i >= nbins t then t.hi
        else
          let acc' = acc +. float_of_int t.counts.(i) in
          if acc' >= target then
            let frac =
              if t.counts.(i) = 0 then 0.
              else (target -. acc) /. float_of_int t.counts.(i)
            in
            t.lo +. (w *. (float_of_int i +. frac))
          else go (i + 1) acc'
      in
      go 0 0.
    end

  let bins t =
    let w = (t.hi -. t.lo) /. float_of_int (nbins t) in
    List.init (nbins t) (fun i ->
        (t.lo +. (w *. float_of_int i), t.lo +. (w *. float_of_int (i + 1)),
         t.counts.(i)))
end
