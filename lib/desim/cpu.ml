(* Processor-sharing via virtual time.

   The old kernel kept a [job list] and, on every accounting step,
   decremented every job's remaining work — O(n) per event, O(n^2) per
   busy period, and the dominant cost of high-MPL runs. This kernel is
   the classical PS virtual-time scheme:

   - virtual time [v] (in instructions-per-job units) advances at
     [rate / n] per real second while the PS class runs with [n] jobs;
   - a job arriving with [w] instructions finishes when [v] reaches
     [v_arrival +. w], so each job is touched exactly twice: once to
     push its finish tag onto a min-heap, once to pop it — O(log n).

   Ties on the finish tag are broken by arrival sequence, so completion
   order is deterministic. (The old kernel released simultaneous
   finishers in reverse-arrival order; this one uses arrival order —
   equally deterministic, and the bit-identity pins were regenerated
   with the kernel change.)

   Stall safety: the timer for the head job's completion is computed as
   [(finish_v - v) * n / rate]. With adversarial demands (denormal
   remaining work, huge rates) that delay can underflow so far that
   [now +. delay = now] — the old kernel then fired at [dt = 0], made no
   progress, re-armed an identical timer, and spun forever. Here, when
   the timer fires and the head job still isn't past its finish tag, we
   force-complete it: the timer was armed for exactly that job's finish,
   so any shortfall is pure float rounding below the resolution of
   simulated time. *)

type job = { finish_v : float; jseq : int; k : unit -> unit }

type t = {
  eng : Engine.t;
  rate : float;
  ps : job Heap.t;
  mutable v : float; (* virtual time, instructions per job *)
  mutable jseq : int;
  hi : (float * (unit -> unit)) Queue.t;
  mutable hi_busy : bool;
  mutable last : float; (* time up to which PS progress is accounted *)
  mutable timer : Engine.handle option;
  util : Stats.Utilization.t;
}

let epsilon = 1e-6 (* instructions *)

let cmp_job a b =
  let c = Float.compare a.finish_v b.finish_v in
  if c <> 0 then c else Int.compare a.jseq b.jseq

let create eng ~rate =
  assert (rate > 0.);
  {
    eng;
    rate;
    ps = Heap.create ~cmp:cmp_job;
    v = 0.;
    jseq = 0;
    hi = Queue.create ();
    hi_busy = false;
    last = Engine.now eng;
    timer = None;
    util = Stats.Utilization.create ~now:(Engine.now eng);
  }

let rate t = t.rate

let busy_level t =
  if t.hi_busy || not (Heap.is_empty t.ps) then 1.0 else 0.0

let record_util t =
  Stats.Utilization.set_busy_level t.util ~now:(Engine.now t.eng)
    ~level:(busy_level t)

(* Account PS progress over [last, now]; the PS class only runs when no
   high-priority work is in service. *)
let account t =
  let now = Engine.now t.eng in
  let dt = now -. t.last in
  if dt > 0. then begin
    let n = Heap.size t.ps in
    if (not t.hi_busy) && n > 0 then
      t.v <- t.v +. (t.rate *. dt /. float_of_int n);
    t.last <- now
  end

let cancel_timer t =
  match t.timer with
  | Some h ->
      Engine.cancel h;
      t.timer <- None
  | None -> ()

(* Pop every job whose finish tag has been reached. When [force] is set
   and no job qualifies, the head job is completed anyway (timer-fired
   rounding shortfall; see the header comment). Completions run after
   all bookkeeping so a callback that resubmits work sees a consistent
   CPU. Returns the completed jobs in deterministic (finish_v, seq)
   order. *)
let take_finished t ~force =
  let done_ = ref [] in
  let continue_ = ref true in
  while !continue_ && not (Heap.is_empty t.ps) do
    let j = Heap.top t.ps in
    if j.finish_v -. t.v <= epsilon then begin
      Heap.drop t.ps;
      done_ := j :: !done_
    end
    else continue_ := false
  done;
  if force && !done_ = [] && not (Heap.is_empty t.ps) then begin
    let j = Heap.top t.ps in
    Heap.drop t.ps;
    done_ := [ j ]
  end;
  (* Reset virtual time whenever the class drains so [v] and the finish
     tags cannot grow without bound (and lose float precision) over a
     long simulation. *)
  if Heap.is_empty t.ps then t.v <- 0.;
  List.rev !done_

let rec reschedule t =
  cancel_timer t;
  if (not t.hi_busy) && not (Heap.is_empty t.ps) then begin
    let j = Heap.top t.ps in
    let n = float_of_int (Heap.size t.ps) in
    let delay = Float.max 0. ((j.finish_v -. t.v) *. n /. t.rate) in
    t.timer <- Some (Engine.schedule_after t.eng ~delay (fun () -> on_timer t))
  end

and on_timer t =
  t.timer <- None;
  account t;
  let done_ = take_finished t ~force:true in
  record_util t;
  reschedule t;
  List.iter (fun j -> j.k ()) done_

let rec pump_hi t =
  if (not t.hi_busy) && not (Queue.is_empty t.hi) then begin
    account t;
    cancel_timer t;
    t.hi_busy <- true;
    record_util t;
    let instructions, k = Queue.pop t.hi in
    ignore
      (Engine.schedule_after t.eng ~delay:(instructions /. t.rate) (fun () ->
           account t;
           t.hi_busy <- false;
           record_util t;
           pump_hi t;
           if not t.hi_busy then reschedule t;
           k ())
        : Engine.handle)
  end

let submit t ~instructions k =
  if instructions <= 0. then k ()
  else begin
    account t;
    t.jseq <- t.jseq + 1;
    Heap.push t.ps { finish_v = t.v +. instructions; jseq = t.jseq; k };
    record_util t;
    reschedule t
  end

let submit_priority t ~instructions k =
  if instructions <= 0. then k ()
  else begin
    Queue.push (instructions, k) t.hi;
    pump_hi t
  end

let consume t ~instructions =
  if instructions > 0. then
    Engine.suspend (fun (r : unit Engine.resolver) ->
        submit t ~instructions (fun () -> r.resolve ()))

let consume_priority t ~instructions =
  if instructions > 0. then
    Engine.suspend (fun (r : unit Engine.resolver) ->
        submit_priority t ~instructions (fun () -> r.resolve ()))

let ps_load t = Heap.size t.ps

let utilization t =
  (* Flush the current level before reading. *)
  Stats.Utilization.value t.util ~now:(Engine.now t.eng)

let busy_time t = Stats.Utilization.busy_time t.util ~now:(Engine.now t.eng)

let reset_window t = Stats.Utilization.set_window t.util ~now:(Engine.now t.eng)
