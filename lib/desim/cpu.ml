type job = { mutable remaining : float; k : unit -> unit }

type t = {
  eng : Engine.t;
  rate : float;
  mutable ps : job list;
  hi : (float * (unit -> unit)) Queue.t;
  mutable hi_busy : bool;
  mutable last : float; (* time up to which PS progress is accounted *)
  mutable timer : Engine.handle option;
  util : Stats.Utilization.t;
}

let epsilon = 1e-6 (* instructions *)

let create eng ~rate =
  assert (rate > 0.);
  {
    eng;
    rate;
    ps = [];
    hi = Queue.create ();
    hi_busy = false;
    last = Engine.now eng;
    timer = None;
    util = Stats.Utilization.create ~now:(Engine.now eng);
  }

let rate t = t.rate

let busy_level t = if t.hi_busy || t.ps <> [] then 1.0 else 0.0

let record_util t =
  Stats.Utilization.set_busy_level t.util ~now:(Engine.now t.eng)
    ~level:(busy_level t)

(* Account PS progress over [last, now]; the PS class only runs when no
   high-priority work is in service. *)
let account t =
  let now = Engine.now t.eng in
  let dt = now -. t.last in
  if dt > 0. then begin
    (if (not t.hi_busy) && t.ps <> [] then
       let share = t.rate *. dt /. float_of_int (List.length t.ps) in
       List.iter
         (fun j -> j.remaining <- Float.max 0. (j.remaining -. share))
         t.ps);
    t.last <- now
  end

let cancel_timer t =
  match t.timer with
  | Some h ->
      Engine.cancel h;
      t.timer <- None
  | None -> ()

let rec reschedule t =
  cancel_timer t;
  if (not t.hi_busy) && t.ps <> [] then begin
    let rmin =
      List.fold_left (fun acc j -> Float.min acc j.remaining) infinity t.ps
    in
    let n = float_of_int (List.length t.ps) in
    let delay = Float.max 0. (rmin *. n /. t.rate) in
    t.timer <- Some (Engine.schedule_after t.eng ~delay (fun () -> on_timer t))
  end

and on_timer t =
  t.timer <- None;
  account t;
  let done_, live = List.partition (fun j -> j.remaining <= epsilon) t.ps in
  t.ps <- live;
  record_util t;
  reschedule t;
  List.iter (fun j -> j.k ()) done_

let rec pump_hi t =
  if (not t.hi_busy) && not (Queue.is_empty t.hi) then begin
    account t;
    cancel_timer t;
    t.hi_busy <- true;
    record_util t;
    let instructions, k = Queue.pop t.hi in
    ignore
      (Engine.schedule_after t.eng ~delay:(instructions /. t.rate) (fun () ->
           account t;
           t.hi_busy <- false;
           record_util t;
           pump_hi t;
           if not t.hi_busy then reschedule t;
           k ())
        : Engine.handle)
  end

let submit t ~instructions k =
  if instructions <= 0. then k ()
  else begin
    account t;
    t.ps <- { remaining = instructions; k } :: t.ps;
    record_util t;
    reschedule t
  end

let submit_priority t ~instructions k =
  if instructions <= 0. then k ()
  else begin
    Queue.push (instructions, k) t.hi;
    pump_hi t
  end

let consume t ~instructions =
  if instructions > 0. then
    Engine.suspend (fun (r : unit Engine.resolver) ->
        submit t ~instructions (fun () -> r.resolve ()))

let consume_priority t ~instructions =
  if instructions > 0. then
    Engine.suspend (fun (r : unit Engine.resolver) ->
        submit_priority t ~instructions (fun () -> r.resolve ()))

let ps_load t = List.length t.ps

let utilization t =
  (* Flush the current level before reading. *)
  Stats.Utilization.value t.util ~now:(Engine.now t.eng)

let busy_time t = Stats.Utilization.busy_time t.util ~now:(Engine.now t.eng)

let reset_window t = Stats.Utilization.set_window t.util ~now:(Engine.now t.eng)
