(** CPU model per the paper's resource manager (Section 3.4):

    - one CPU per node executing [rate] instructions per second;
    - message processing is served FCFS at high priority (it preempts all
      other work);
    - everything else is served processor-sharing.

    The core interface is callback-based so it can be driven both from
    simulation processes (via the blocking wrappers) and from event code
    such as message delivery. *)

type t

(** [create eng ~rate] with [rate] in instructions per second. *)
val create : Engine.t -> rate:float -> t

val rate : t -> float

(** Submit [instructions] of processor-sharing work; [k] runs on
    completion. Zero or negative work completes immediately. *)
val submit : t -> instructions:float -> (unit -> unit) -> unit

(** Submit high-priority FCFS (message-class) work. *)
val submit_priority : t -> instructions:float -> (unit -> unit) -> unit

(** Blocking wrappers (valid only inside a process). *)
val consume : t -> instructions:float -> unit

val consume_priority : t -> instructions:float -> unit

(** Number of jobs currently in the processor-sharing class. *)
val ps_load : t -> int

(** Mean utilization (busy fraction) since the start of the observation
    window. *)
val utilization : t -> float

(** Cumulative busy time since creation; never reset, so samplers can
    difference successive readings for interval utilizations. *)
val busy_time : t -> float

(** Reset the utilization observation window to the current time. *)
val reset_window : t -> unit
