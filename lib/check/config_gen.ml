(** Random-but-valid simulation configurations.

    Composable QCheck generators over {!Ddbm_model.Params.t} that cover
    the paper's whole parameter space — machine size, partitioning,
    terminal population, message/startup costs, workload mix — while
    always satisfying {!Ddbm_model.Params.validate}. Windows are kept
    short (a few simulated seconds) so a conformance sweep of hundreds of
    runs finishes in seconds of wall time.

    The shrinker moves toward *simpler* machines (fewer terminals, fewer
    nodes, no replication, no logging, parallel execution, zero think
    time) while preserving validity, so a failing configuration minimizes
    to something a human can replay and read. *)

open Ddbm_model

let powers_of_two = [ 1; 2; 4; 8 ]

(* Largest valid partitioning degree <= [limit] for the given
   partitions-per-relation count. *)
let clamp_degree ~partitions ~limit degree =
  let candidates =
    List.filter
      (fun d -> d <= limit && partitions mod d = 0)
      (List.sort_uniq Int.compare (1 :: degree :: powers_of_two))
  in
  List.fold_left Stdlib.max 1
    (List.filter (fun d -> d <= degree) candidates)

let build ~nodes ~relations ~partitions ~degree ~file_size ~replication
    ~terminals ~think ~exec_pattern ~pages ~write_prob ~inst_per_page
    ~inst_per_startup ~inst_per_msg ~inst_per_cc_req ~disks ~logging
    ~detection_interval ~seed ~measure ~fresh_restart_plan ~durability ~faults
    ~arrivals =
  let d = Params.default in
  (* open-loop arrivals reject fresh restart plans (see Params.validate) *)
  let fresh_restart_plan =
    fresh_restart_plan && not (Arrival.open_loop arrivals)
  in
  {
    Params.database =
      {
        Params.num_proc_nodes = nodes;
        num_relations = relations;
        partitions_per_relation = partitions;
        file_size;
        partitioning_degree = degree;
        replication;
      };
    workload =
      {
        Params.num_terminals = terminals;
        think_time = think;
        exec_pattern;
        pages_per_partition = pages;
        write_prob;
        inst_per_page;
      };
    resources =
      {
        d.Params.resources with
        Params.disks_per_node = disks;
        inst_per_startup;
        inst_per_msg;
        inst_per_cc_req;
        model_logging = logging;
      };
    cc = { Params.algorithm = Params.Twopl; detection_interval };
    run =
      {
        Params.seed;
        warmup = 2.;
        measure;
        restart_delay_floor = 0.25;
        fresh_restart_plan;
      };
    durability;
    faults;
    arrivals;
  }

(* Fault plans for the conformance sweep: mostly zero (the paper's
   failure-free machine), sometimes message faults and/or crashes. The
   serializability audit, conservation, and determinism must hold under
   any of them. *)
let gen_faults ~nodes : Fault_plan.t QCheck.Gen.t =
  let open QCheck.Gen in
  let z = Fault_plan.zero in
  let* zero_plan = frequencyl [ (2, true); (3, false) ] in
  if zero_plan then return z
  else
    let* msg_loss = oneofl [ 0.; 0.; 0.02; 0.1; 0.3 ] in
    let* msg_dup = oneofl [ 0.; 0.; 0.05 ] in
    let* msg_delay = oneofl [ 0.; 0.; 0.005 ] in
    let* crashes =
      let* kind = oneofl [ `None; `None; `Proc; `Host ] in
      match kind with
      | `None -> return []
      | `Proc ->
          let* target = int_range 0 (nodes - 1) in
          let* at = oneofl [ 1.; 2.5; 4. ] in
          let* duration = oneofl [ 0.5; 1.; 2. ] in
          return [ { Fault_plan.target = Ids.Proc target; at; duration } ]
      | `Host ->
          let* at = oneofl [ 1.; 2.5; 4. ] in
          let* duration = oneofl [ 0.5; 1. ] in
          return [ { Fault_plan.target = Ids.Host; at; duration } ]
    in
    let* crash_rate = oneofl [ 0.; 0.; 0.; 0.05 ] in
    (* recovery-robustness modes: occasionally tear the WAL tail at a
       crash, or crash again during recovery itself — the no-lost-commit
       invariant must survive both *)
    let* torn_tail = oneofl [ 0.; 0.; 0.; 0.5; 1. ] in
    let* recrash = oneofl [ 0.; 0.; 0.; 0.3 ] in
    let* timeout = oneofl [ 0.25; 1. ] in
    let* max_retries = oneofl [ 2; 4 ] in
    let* fault_seed = int_range 1 1_000_000 in
    return
      {
        z with
        Fault_plan.crashes;
        crash_rate;
        mean_repair = 1.;
        msg_loss;
        msg_dup;
        msg_delay;
        recrash;
        torn_tail;
        timeout;
        timeout_cap = 4. *. timeout;
        max_retries;
        fault_seed;
      }

(* Durability blocks for the conformance sweep: mostly off (the paper's
   machine), sometimes a log disk and/or a backup replica — the
   no-lost-commit invariant must hold under every combination with every
   fault plan. *)
let gen_durability ~nodes : Params.durability QCheck.Gen.t =
  let open QCheck.Gen in
  let dd = Params.default_durability in
  let* off = frequencyl [ (2, true); (3, false) ] in
  if off then return dd
  else
    let* log_disk = frequencyl [ (1, false); (3, true) ] in
    let* log_force = oneofl [ Params.At_prepare; Params.At_prepare; Params.At_commit ] in
    let* replicas = if nodes = 1 then return 0 else oneofl [ 0; 1; 1 ] in
    let* recovery_jobs = oneofl [ 1; 1; 2; 4 ] in
    return { dd with Params.log_disk; log_force; replicas; recovery_jobs }

(* Arrival specs for the conformance sweep: mostly closed loop (the
   paper's terminal model), sometimes an open-loop rate process with the
   admission queue sized to overload — including flash-crowd spikes — so
   the serializability audit, the offered = admitted + shed + expired +
   still-queued conservation identity, and determinism are all exercised
   under saturation. The MPL limiter is always on for open-loop draws so
   a high-rate spec cannot flood a tiny machine with unbounded fibers. *)
let gen_arrivals : Arrival.t QCheck.Gen.t =
  let open QCheck.Gen in
  let z = Arrival.zero in
  let* closed = frequencyl [ (3, true); (2, false) ] in
  if closed then return z
  else
    let gen_segment =
      let* kind = oneofl [ `Hold; `Hold; `Ramp; `Sine; `Spike ] in
      match kind with
      | `Hold ->
          let* rate = oneofl [ 0.; 10.; 40.; 120. ] in
          let* duration = oneofl [ 1.; 2.; 4. ] in
          return (Arrival.Hold { rate; duration })
      | `Ramp ->
          let* rate_from = oneofl [ 0.; 20.; 80. ] in
          let* rate_to = oneofl [ 0.; 40.; 160. ] in
          let* duration = oneofl [ 2.; 4. ] in
          return (Arrival.Ramp { rate_from; rate_to; duration })
      | `Sine ->
          let* mean = oneofl [ 20.; 60. ] in
          let* amplitude = oneofl [ 10.; 80. ] in
          let* period = oneofl [ 1.; 3. ] in
          let* duration = oneofl [ 4.; 8. ] in
          return (Arrival.Sine { mean; amplitude; period; duration })
      | `Spike ->
          let* base = oneofl [ 5.; 20. ] in
          let* peak = oneofl [ 100.; 250. ] in
          let* duration = oneofl [ 2.; 4. ] in
          return (Arrival.Spike { base; peak; duration })
    in
    let* process =
      let* profile = frequencyl [ (2, false); (1, true) ] in
      if profile then
        let* segs = list_size (int_range 1 3) gen_segment in
        return (Arrival.Profile segs)
      else
        let* r = oneofl [ 10.; 25.; 50.; 100.; 200. ] in
        return (Arrival.Qps r)
    in
    let* mpl = oneofl [ 2; 4; 8; 16 ] in
    let* queue_cap = oneofl [ 2; 4; 8; 16; 64 ] in
    let* shed =
      oneofl [ Arrival.Reject_newest; Arrival.Reject_newest; Arrival.Reject_oldest ]
    in
    let* deadline = oneofl [ 0.; 0.; 0.5; 1. ] in
    return { z with Arrival.process; mpl; queue_cap; shed; deadline }

let gen : Params.t QCheck.Gen.t =
  let open QCheck.Gen in
  let* nodes = oneofl powers_of_two in
  let* relations = oneofl [ 1; 2; 4; 8 ] in
  let* partitions = oneofl [ 2; 4; 8 ] in
  let* degree =
    oneofl
      (List.filter
         (fun d -> d <= nodes && partitions mod d = 0)
         powers_of_two)
  in
  let* pages = int_range 2 8 in
  (* the validator demands (3*pages+1)/2 <= file_size; small files give
     the contention that actually exercises the algorithms *)
  let* file_size = int_range (Stdlib.max 12 ((3 * pages + 1) / 2)) 120 in
  let* replication = if nodes = 1 then return 1 else oneofl [ 1; 1; 1; 2 ] in
  let* terminals = int_range 4 24 in
  let* think = oneofl [ 0.; 0.; 0.5; 1. ] in
  let* exec_pattern =
    oneofl [ Params.Parallel; Params.Parallel; Params.Sequential ]
  in
  let* write_prob = oneofl [ 0.; 0.1; 0.25; 0.5; 1. ] in
  let* inst_per_page = oneofl [ 4_000.; 8_000. ] in
  let* inst_per_startup = oneofl [ 0.; 2_000.; 20_000. ] in
  let* inst_per_msg = oneofl [ 0.; 1_000.; 4_000. ] in
  let* inst_per_cc_req = oneofl [ 0.; 500. ] in
  let* disks = int_range 1 2 in
  let* logging = bool in
  let* detection_interval = oneofl [ 0.25; 1. ] in
  let* seed = int_range 1 1_000_000 in
  let* measure = oneofl [ 5.; 8. ] in
  let* fresh_restart_plan = bool in
  let* durability = gen_durability ~nodes in
  let* faults = gen_faults ~nodes in
  let* arrivals = gen_arrivals in
  return
    (build ~nodes ~relations ~partitions ~degree ~file_size ~replication
       ~terminals ~think ~exec_pattern ~pages ~write_prob ~inst_per_page
       ~inst_per_startup ~inst_per_msg ~inst_per_cc_req ~disks ~logging
       ~detection_interval ~seed ~measure ~fresh_restart_plan ~durability
       ~faults ~arrivals)

(* Candidate simplifications, each kept only if still valid. *)
let shrink (p : Params.t) : Params.t QCheck.Iter.t =
  let d = p.Params.database
  and w = p.Params.workload
  and r = p.Params.resources
  and run = p.Params.run in
  let candidates =
    List.concat
      [
        (if w.Params.num_terminals > 2 then
           [
             {
               p with
               Params.workload =
                 {
                   w with
                   Params.num_terminals = Stdlib.max 2 (w.Params.num_terminals / 2);
                 };
             };
           ]
         else []);
        (if d.Params.num_proc_nodes > 1 then
           let nodes = d.Params.num_proc_nodes / 2 in
           [
             {
               p with
               Params.database =
                 {
                   d with
                   Params.num_proc_nodes = nodes;
                   partitioning_degree =
                     clamp_degree
                       ~partitions:d.Params.partitions_per_relation
                       ~limit:nodes d.Params.partitioning_degree;
                   replication = Stdlib.min d.Params.replication nodes;
                 };
               (* replica count must stay in range on the smaller machine *)
               durability =
                 {
                   p.Params.durability with
                   Params.replicas =
                     Stdlib.min p.Params.durability.Params.replicas (nodes - 1);
                 };
               (* crash targets must stay in range on the smaller machine *)
               faults =
                 {
                   p.Params.faults with
                   Fault_plan.crashes =
                     List.filter
                       (fun (c : Fault_plan.crash) ->
                         match c.Fault_plan.target with
                         | Ids.Host -> true
                         | Ids.Proc i -> i < nodes)
                       p.Params.faults.Fault_plan.crashes;
                 };
             };
           ]
         else []);
        (if d.Params.replication > 1 then
           [ { p with Params.database = { d with Params.replication = 1 } } ]
         else []);
        (if w.Params.think_time > 0. then
           [ { p with Params.workload = { w with Params.think_time = 0. } } ]
         else []);
        (if w.Params.exec_pattern = Params.Sequential then
           [
             {
               p with
               Params.workload = { w with Params.exec_pattern = Params.Parallel };
             };
           ]
         else []);
        (if r.Params.model_logging then
           [ { p with Params.resources = { r with Params.model_logging = false } } ]
         else []);
        (if run.Params.fresh_restart_plan then
           [ { p with Params.run = { run with Params.fresh_restart_plan = false } } ]
         else []);
        (* durability simplifications: all off first, then one knob at a
           time *)
        (let dur = p.Params.durability in
         (if dur <> Params.default_durability then
            [ { p with Params.durability = Params.default_durability } ]
          else [])
         @ (if dur.Params.replicas > 0 then
              [ { p with Params.durability = { dur with Params.replicas = 0 } } ]
            else [])
         @ (if dur.Params.recovery_jobs > 1 then
              [
                {
                  p with
                  Params.durability = { dur with Params.recovery_jobs = 1 };
                };
              ]
            else [])
         @
         if dur.Params.log_disk then
           [ { p with Params.durability = { dur with Params.log_disk = false } } ]
         else []);
        (if run.Params.measure > 5. then
           [ { p with Params.run = { run with Params.measure = 5. } } ]
         else []);
        (* fault-plan simplifications: all the way to zero first, then
           one fault family at a time *)
        (let fp = p.Params.faults in
         (if Fault_plan.is_zero fp then []
          else [ { p with Params.faults = Fault_plan.zero } ])
         @ (if fp.Fault_plan.crashes <> [] then
              [
                {
                  p with
                  Params.faults = { fp with Fault_plan.crashes = [] };
                };
              ]
            else [])
         @ (if fp.Fault_plan.crash_rate > 0. then
              [
                {
                  p with
                  Params.faults = { fp with Fault_plan.crash_rate = 0. };
                };
              ]
            else [])
         @ (if fp.Fault_plan.torn_tail > 0. then
              [
                {
                  p with
                  Params.faults = { fp with Fault_plan.torn_tail = 0. };
                };
              ]
            else [])
         @ (if fp.Fault_plan.recrash > 0. then
              [
                {
                  p with
                  Params.faults = { fp with Fault_plan.recrash = 0. };
                };
              ]
            else [])
         @
         if
           fp.Fault_plan.msg_loss > 0. || fp.Fault_plan.msg_dup > 0.
           || fp.Fault_plan.msg_delay > 0.
         then
           [
             {
               p with
               Params.faults =
                 {
                   fp with
                   Fault_plan.msg_loss = 0.;
                   msg_dup = 0.;
                   msg_delay = 0.;
                 };
             };
           ]
         else []);
        (* arrival-spec simplifications: back to the closed loop first,
           then one admission knob at a time *)
        (let a = p.Params.arrivals in
         if not (Arrival.open_loop a) then []
         else
           [ { p with Params.arrivals = Arrival.zero } ]
           @ (if a.Arrival.deadline > 0. then
                [ { p with Params.arrivals = { a with Arrival.deadline = 0. } } ]
              else [])
           @ (match a.Arrival.shed with
             | Arrival.Reject_oldest ->
                 [
                   {
                     p with
                     Params.arrivals = { a with Arrival.shed = Arrival.Reject_newest };
                   };
                 ]
             | Arrival.Reject_newest -> [])
           @
           match a.Arrival.process with
           | Arrival.Profile (first :: _ :: _) ->
               [
                 {
                   p with
                   Params.arrivals =
                     { a with Arrival.process = Arrival.Profile [ first ] };
                 };
               ]
           | Arrival.Profile [ Arrival.Hold { rate; _ } ] when rate > 0. ->
               [
                 {
                   p with
                   Params.arrivals = { a with Arrival.process = Arrival.Qps rate };
                 };
               ]
           | Arrival.Closed | Arrival.Qps _ | Arrival.Profile _ -> []);
      ]
  in
  let valid = List.filter (fun c -> Result.is_ok (Params.validate c)) candidates in
  fun yield -> List.iter yield valid

let print (p : Params.t) = Replay.params_to_string p

(** QCheck arbitrary over valid configurations, with printing via the
    replay-artifact codec and validity-preserving shrinking. *)
let arbitrary : Params.t QCheck.arbitrary = QCheck.make ~print ~shrink gen
