(** Random-but-valid simulation configurations for property tests.

    Generates {!Ddbm_model.Params.t} values that always satisfy
    [Params.validate] — including fault plans and durability models —
    with runs sized to finish fast, plus a structure-aware shrinker that
    preserves validity while simplifying counterexamples. *)

open Ddbm_model

(** Generator over valid configurations (fault plan and durability model
    included; roughly half the mass on the zero fault plan). *)
val gen : Params.t QCheck.Gen.t

(** Generator over valid arrival specs: mostly the closed loop, the rest
    open-loop rate processes (constant QPS and multi-segment profiles,
    flash crowds included) with admission queues sized to overload. The
    MPL limiter is always on for open-loop draws. *)
val gen_arrivals : Arrival.t QCheck.Gen.t

(** Shrinker: simplifies toward fewer terminals/nodes/pages, the zero
    fault plan, and the durability model off, never leaving the valid
    region. *)
val shrink : Params.t -> Params.t QCheck.Iter.t

(** One-line round-trippable rendering ({!Replay.params_to_string}). *)
val print : Params.t -> string

(** QCheck arbitrary over valid configurations, with printing via the
    replay codec and structure-aware shrinking. *)
val arbitrary : Params.t QCheck.arbitrary
