(** Cross-algorithm conformance engine.

    For one parameter record this module runs *every* registered
    concurrency control algorithm with the serializability auditor
    attached and asserts, per algorithm: the committed history is
    serializable, the {!Invariants} hold, and the run is bit-for-bit
    deterministic; and across algorithms, that the per-terminal plan
    streams agree (common random numbers). Failures shrink at the QCheck
    layer and are written as replay artifacts ({!Replay}). *)

open Ddbm_model

type failure = {
  params : Params.t;  (** configuration, algorithm included *)
  kind : string;  (** audit | invariant | determinism | agreement *)
  detail : string;
}

val failure_to_string : failure -> string

(** One fully instrumented run: audit + plan fingerprints, optionally an
    event trace and caller instrumentation (e.g. typed-event sinks or
    the time-series sampler), applied between creation and execution. *)
val run_instrumented :
  ?trace_capacity:int ->
  ?instrument:(Ddbm.Machine.t -> unit) ->
  Params.t ->
  Ddbm.Sim_result.t * Ddbm.Audit.t * int list array * Desim.Trace.t option

(** Audit + invariants + determinism for [params] as given (single
    algorithm). Returns the first run's result and fingerprints for the
    cross-algorithm checks, plus the event trace (when requested) for
    post-mortems either way. [instrument] is applied to *both* runs of
    the determinism check. *)
val check_algorithm_traced :
  ?trace_capacity:int ->
  ?instrument:(Ddbm.Machine.t -> unit) ->
  Params.t ->
  (Ddbm.Sim_result.t * int list array, failure) result * Desim.Trace.t option

val check_algorithm :
  Params.t -> (Ddbm.Sim_result.t * int list array, failure) result

(** Run every algorithm in [algorithms] on [params] (the algorithm field
    of [params] is overridden), checking each in isolation and then the
    cross-algorithm workload agreement. On failure, writes a replay
    artifact into [artifact_dir] (when given) and returns the failure
    along with the artifact path. With [pool], the per-algorithm checks
    run in parallel; the reported failure (first in algorithm-list
    order) is independent of job count. *)
val check :
  ?algorithms:Params.cc_algorithm list ->
  ?artifact_dir:string ->
  ?pool:Par.Pool.t ->
  Params.t ->
  (unit, failure * string option) result

(** [sweep ~configs ~gen_seed pool] generates [configs] parameter points
    deterministically (default 50 points from seed [0xC0DE] — the same
    generator the qcheck conformance property uses) and runs the full
    {!check} on each, one configuration per pool task. Returns the
    number of clean configurations, or the first failure in generation
    order — both independent of job count. *)
val sweep :
  ?configs:int ->
  ?gen_seed:int ->
  ?artifact_dir:string ->
  Par.Pool.t ->
  (int, failure * string option) result

type replay_outcome = {
  artifact : Replay.artifact;
  reproduced : failure option;  (** [None]: the run is clean now *)
  result : Ddbm.Sim_result.t option;
      (** measured result of the (first) replayed run, when it completed *)
  trace_tail : string list;  (** last traced events of the failing run *)
}

(** Load an artifact and re-execute its (seed, params, algorithm) with
    audit, invariants, determinism check and an event trace attached. *)
val replay_file :
  ?trace_capacity:int ->
  ?instrument:(Ddbm.Machine.t -> unit) ->
  string ->
  (replay_outcome, string) result
