(** Metric conservation and sanity invariants over a {!Ddbm.Sim_result.t}.

    These hold for *every* configuration and every concurrency control
    algorithm; a violation means the machine model (not the workload) is
    broken. Covered: commit/abort conservation, utilization and
    availability ranges, response-time floors, abort-reason accounting,
    2PC termination (nothing stays in doubt past the grace), zero fault
    metrics under an inactive fault plan, and durability — no committed
    transaction may ever be lost ([lost_commits] = 0), with the log
    metrics zero when the durability model is off. *)

(** All violations found in [r], as human-readable strings (empty when
    the result is conserving and sane). *)
val check : Ddbm.Sim_result.t -> string list
