(** Metric conservation and sanity invariants over a {!Ddbm.Sim_result.t}.

    These hold for *every* configuration and every concurrency control
    algorithm; a violation means the machine model (not the workload)
    is broken. *)

open Ddbm_model

(** All violations found in [r], as human-readable strings (empty when
    the result is conserving and sane). *)
let check (r : Ddbm.Sim_result.t) : string list =
  let p = r.Ddbm.Sim_result.params in
  let errs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let in01 name v =
    if not (v >= 0. && v <= 1. +. 1e-9) then
      add "%s = %.17g outside [0,1]" name v
  in
  let commits = r.Ddbm.Sim_result.commits
  and aborts = r.Ddbm.Sim_result.aborts
  and completions = r.Ddbm.Sim_result.completions in
  if commits < 0 then add "commits = %d negative" commits;
  if aborts < 0 then add "aborts = %d negative" aborts;
  (* conservation: every finished attempt either committed or aborted *)
  if commits + aborts <> completions then
    add "conservation violated: commits (%d) + aborts (%d) <> completions (%d)"
      commits aborts completions;
  in01 "proc_cpu_util" r.Ddbm.Sim_result.proc_cpu_util;
  in01 "proc_disk_util" r.Ddbm.Sim_result.proc_disk_util;
  in01 "host_cpu_util" r.Ddbm.Sim_result.host_cpu_util;
  (* throughput must equal commits over the measurement window *)
  let window = r.Ddbm.Sim_result.sim_end -. p.Params.run.Params.warmup in
  if window > 0. then begin
    let implied = r.Ddbm.Sim_result.throughput *. window in
    if Float.abs (implied -. float_of_int commits) > 1e-6 *. Float.max 1. (float_of_int commits)
    then
      add "throughput %.17g x window %.17g = %.17g but commits = %d"
        r.Ddbm.Sim_result.throughput window implied commits
  end;
  (* abort ratio is aborts per commit *)
  let expected_ratio =
    if commits = 0 then 0. else float_of_int aborts /. float_of_int commits
  in
  if Float.abs (r.Ddbm.Sim_result.abort_ratio -. expected_ratio) > 1e-9 then
    add "abort_ratio %.17g <> aborts/commits %.17g"
      r.Ddbm.Sim_result.abort_ratio expected_ratio;
  (* response time can never beat the service demand: a committed
     transaction reads at least one page from a disk whose service time
     is at least min_disk_time *)
  if commits > 0 then begin
    let floor = p.Params.resources.Params.min_disk_time in
    if r.Ddbm.Sim_result.mean_response < floor then
      add "mean_response %.17g below service-demand floor %.17g"
        r.Ddbm.Sim_result.mean_response floor;
    if r.Ddbm.Sim_result.response_p50 < floor then
      add "response_p50 %.17g below service-demand floor %.17g"
        r.Ddbm.Sim_result.response_p50 floor;
    if r.Ddbm.Sim_result.response_p95 < r.Ddbm.Sim_result.response_p50 then
      add "response_p95 %.17g < response_p50 %.17g"
        r.Ddbm.Sim_result.response_p95 r.Ddbm.Sim_result.response_p50;
    (* histogram tail quantiles (upper-edge convention) dominate the exact
       sample quantiles below them; both read 0 when histograms are off *)
    if r.Ddbm.Sim_result.response_p99 > 0. then begin
      if r.Ddbm.Sim_result.response_p99 < r.Ddbm.Sim_result.response_p95 then
        add "response_p99 %.17g < response_p95 %.17g"
          r.Ddbm.Sim_result.response_p99 r.Ddbm.Sim_result.response_p95;
      if r.Ddbm.Sim_result.response_p999 < r.Ddbm.Sim_result.response_p99 then
        add "response_p999 %.17g < response_p99 %.17g"
          r.Ddbm.Sim_result.response_p999 r.Ddbm.Sim_result.response_p99
    end;
    (* every transaction involves at least one host->node message *)
    if r.Ddbm.Sim_result.messages <= 0 then
      add "commits happened but no messages were sent"
  end;
  if r.Ddbm.Sim_result.response_ci95 < 0. then
    add "response_ci95 %.17g negative" r.Ddbm.Sim_result.response_ci95;
  if r.Ddbm.Sim_result.mean_blocking < 0. then
    add "mean_blocking %.17g negative" r.Ddbm.Sim_result.mean_blocking;
  if r.Ddbm.Sim_result.blocked_requests < 0 then
    add "blocked_requests %d negative" r.Ddbm.Sim_result.blocked_requests;
  (* abort-reason counts must add up to the abort count *)
  let reason_total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 r.Ddbm.Sim_result.abort_reasons
  in
  if reason_total <> aborts then
    add "abort reasons sum to %d but aborts = %d" reason_total aborts;
  let active = r.Ddbm.Sim_result.mean_active in
  let open_loop = Arrival.open_loop p.Params.arrivals in
  (* closed loop: at most one in-flight transaction per terminal; open
     loop: the MPL limiter is the only population bound (unlimited when
     mpl = 0, where any backlog is legal) *)
  let population_cap =
    if open_loop then
      if p.Params.arrivals.Arrival.mpl > 0 then
        Some
          ( float_of_int p.Params.arrivals.Arrival.mpl,
            Printf.sprintf "mpl = %d" p.Params.arrivals.Arrival.mpl )
      else None
    else
      Some
        ( float_of_int p.Params.workload.Params.num_terminals,
          Printf.sprintf "terminals = %d" p.Params.workload.Params.num_terminals
        )
  in
  (match population_cap with
  | Some (cap, what) ->
      if not (active >= 0. && active <= cap +. 1e-6) then
        add "mean_active %.17g outside [0, %s]" active what
  | None -> if active < 0. then add "mean_active %.17g negative" active);
  (* open-loop admission accounting: every offered arrival is admitted,
     shed, expired, or still queued — an exact whole-run identity *)
  let offered = r.Ddbm.Sim_result.offered
  and admitted = r.Ddbm.Sim_result.admitted
  and shed = r.Ddbm.Sim_result.shed
  and expired = r.Ddbm.Sim_result.expired
  and still_queued = r.Ddbm.Sim_result.still_queued in
  if open_loop then begin
    List.iter
      (fun (name, v) -> if v < 0 then add "%s = %d negative" name v)
      [
        ("offered", offered);
        ("admitted", admitted);
        ("shed", shed);
        ("expired", expired);
        ("still_queued", still_queued);
      ];
    if offered <> admitted + shed + expired + still_queued then
      add
        "admission conservation violated: offered (%d) <> admitted (%d) + \
         shed (%d) + expired (%d) + still_queued (%d)"
        offered admitted shed expired still_queued;
    (* the queue is bounded: its depth can never exceed the capacity *)
    let cap = p.Params.arrivals.Arrival.queue_cap in
    if still_queued > cap then
      add "still_queued %d exceeds queue capacity %d" still_queued cap;
    if r.Ddbm.Sim_result.queue_depth_max > cap then
      add "queue_depth_max %d exceeds queue capacity %d"
        r.Ddbm.Sim_result.queue_depth_max cap;
    let qmean = r.Ddbm.Sim_result.queue_depth_mean in
    if not (qmean >= 0. && qmean <= float_of_int cap +. 1e-6) then
      add "queue_depth_mean %.17g outside [0, cap = %d]" qmean cap;
    (* a transaction commits at most once, and only after admission *)
    if commits > admitted then
      add "commits %d exceed admitted %d" commits admitted
  end
  else begin
    (* closed loop: the admission machinery must not exist at all *)
    List.iter
      (fun (name, v) -> if v <> 0 then add "%s = %d on a closed-loop run" name v)
      [
        ("offered", offered);
        ("admitted", admitted);
        ("shed", shed);
        ("expired", expired);
        ("still_queued", still_queued);
        ("queue_depth_max", r.Ddbm.Sim_result.queue_depth_max);
      ];
    if not (Float.equal r.Ddbm.Sim_result.queue_depth_mean 0.) then
      add "queue_depth_mean %.17g on a closed-loop run"
        r.Ddbm.Sim_result.queue_depth_mean
  end;
  (* fault/availability metrics *)
  in01 "availability" r.Ddbm.Sim_result.availability;
  (* goodput counts pages, throughput transactions; every committed
     transaction touches at least one page *)
  if r.Ddbm.Sim_result.goodput < r.Ddbm.Sim_result.throughput -. 1e-9 then
    add "goodput %.17g below throughput %.17g" r.Ddbm.Sim_result.goodput
      r.Ddbm.Sim_result.throughput;
  if r.Ddbm.Sim_result.indoubt_mean < 0. then
    add "indoubt_mean %.17g negative" r.Ddbm.Sim_result.indoubt_mean;
  if r.Ddbm.Sim_result.indoubt_open_at_end < 0 then
    add "indoubt_open_at_end %d negative" r.Ddbm.Sim_result.indoubt_open_at_end;
  (* 2PC termination: no transaction may stay in doubt past the
     termination-protocol grace, under any fault plan *)
  if r.Ddbm.Sim_result.indoubt_overdue_at_end <> 0 then
    add "%d transactions stuck in doubt past the termination grace"
      r.Ddbm.Sim_result.indoubt_overdue_at_end;
  (* durability: a committed transaction is never lost — under every
     fault plan, every updating cohort of every commit must leave durable
     evidence (installs, a durable decision record, or a durable prepare
     plus the logged decision) *)
  if r.Ddbm.Sim_result.lost_commits <> 0 then
    add "%d committed transactions lost durable coverage"
      r.Ddbm.Sim_result.lost_commits;
  if r.Ddbm.Sim_result.recoveries < 0 then
    add "recoveries %d negative" r.Ddbm.Sim_result.recoveries;
  if r.Ddbm.Sim_result.mean_recovery_time < 0. then
    add "mean_recovery_time %.17g negative"
      r.Ddbm.Sim_result.mean_recovery_time;
  if r.Ddbm.Sim_result.recovery_chains < 0 then
    add "recovery_chains %d negative" r.Ddbm.Sim_result.recovery_chains;
  if r.Ddbm.Sim_result.recovery_degraded < 0 then
    add "recovery_degraded %d negative" r.Ddbm.Sim_result.recovery_degraded;
  if r.Ddbm.Sim_result.wal_torn_tails < 0 then
    add "wal_torn_tails %d negative" r.Ddbm.Sim_result.wal_torn_tails;
  (* chain-parallel replay and degradation only exist behind the flag *)
  if
    p.Params.durability.Params.recovery_jobs <= 1
    && r.Ddbm.Sim_result.recovery_chains <> 0
  then
    add "recovery_chains = %d with recovery_jobs = 1"
      r.Ddbm.Sim_result.recovery_chains;
  if
    p.Params.durability.Params.recovery_jobs <= 1
    && r.Ddbm.Sim_result.recovery_degraded <> 0
  then
    add "recovery_degraded = %d with recovery_jobs = 1"
      r.Ddbm.Sim_result.recovery_degraded;
  (* a torn tail requires the torn-tail fault mode *)
  if
    Float.equal p.Params.faults.Fault_plan.torn_tail 0.
    && r.Ddbm.Sim_result.wal_torn_tails <> 0
  then
    add "wal_torn_tails = %d without the torn-tail fault"
      r.Ddbm.Sim_result.wal_torn_tails;
  in01 "log_disk_util" r.Ddbm.Sim_result.log_disk_util;
  if not p.Params.durability.Params.log_disk then begin
    (* the durability model off must cost nothing and record nothing *)
    if r.Ddbm.Sim_result.log_forces <> 0 then
      add "log_forces = %d without a log disk" r.Ddbm.Sim_result.log_forces;
    if not (Float.equal r.Ddbm.Sim_result.log_disk_util 0.) then
      add "log_disk_util %.17g without a log disk"
        r.Ddbm.Sim_result.log_disk_util;
    if r.Ddbm.Sim_result.recoveries <> 0 then
      add "recoveries = %d without a log disk" r.Ddbm.Sim_result.recoveries;
    if r.Ddbm.Sim_result.recovery_chains <> 0 then
      add "recovery_chains = %d without a log disk"
        r.Ddbm.Sim_result.recovery_chains;
    if r.Ddbm.Sim_result.recovery_degraded <> 0 then
      add "recovery_degraded = %d without a log disk"
        r.Ddbm.Sim_result.recovery_degraded;
    if r.Ddbm.Sim_result.wal_torn_tails <> 0 then
      add "wal_torn_tails = %d without a log disk"
        r.Ddbm.Sim_result.wal_torn_tails
  end;
  let fault_active = Fault_plan.active p.Params.faults in
  if not fault_active then begin
    let zero name v = if v <> 0 then add "%s = %d under an inactive fault plan" name v in
    if not (Float.equal r.Ddbm.Sim_result.availability 1.) then
      add "availability %.17g under an inactive fault plan"
        r.Ddbm.Sim_result.availability;
    zero "timeouts" r.Ddbm.Sim_result.timeouts;
    zero "retries" r.Ddbm.Sim_result.retries;
    zero "msgs_dropped" r.Ddbm.Sim_result.msgs_dropped;
    zero "msgs_duplicated" r.Ddbm.Sim_result.msgs_duplicated;
    zero "node_crashes" r.Ddbm.Sim_result.node_crashes;
    zero "orphaned" r.Ddbm.Sim_result.orphaned;
    zero "failovers" r.Ddbm.Sim_result.failovers;
    zero "recoveries" r.Ddbm.Sim_result.recoveries;
    zero "recovery_chains" r.Ddbm.Sim_result.recovery_chains;
    zero "recovery_degraded" r.Ddbm.Sim_result.recovery_degraded;
    zero "wal_torn_tails" r.Ddbm.Sim_result.wal_torn_tails
  end;
  if p.Params.durability.Params.replicas = 0 && r.Ddbm.Sim_result.failovers <> 0
  then add "failovers = %d without replication" r.Ddbm.Sim_result.failovers;
  (* NO_DC grants every request: without machine faults nothing can
     abort (faults add crash/timeout aborts even under NO_DC) *)
  (match r.Ddbm.Sim_result.algorithm with
  | Params.No_dc ->
      if (not fault_active) && aborts <> 0 then
        add "NO_DC recorded %d aborts" aborts
  | _ -> ());
  List.rev !errs
