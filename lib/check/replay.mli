(** Self-contained replay artifacts for conformance failures.

    An artifact is a small line-oriented text file — `key = value`, one
    per line — carrying everything needed to re-execute a failing run:
    the complete parameter record (algorithm, seed, fault plan, and
    durability model included), and the failure kind and detail. Floats
    are printed with ["%.17g"] so they round-trip bit-for-bit.

    `ddbm_cli replay <file>` feeds an artifact back through
    {!Conformance.replay_file}. *)

open Ddbm_model

type artifact = {
  params : Params.t;
      (** full configuration; algorithm in [params.cc], fault plan
          (including chaos switches) in [params.faults] *)
  kind : string;  (** failure class: audit, invariant, determinism, ... *)
  detail : string;  (** human-readable description of the failure *)
}

(** One-line [key=value;...] rendering of a parameter record; total — every
    valid record encodes. *)
val params_to_string : Params.t -> string

(** Inverse of {!params_to_string}. Unknown keys are rejected; optional
    keys added by later schema versions default when absent, so old
    artifacts stay readable. *)
val params_of_string : string -> (Params.t, string) result

(** Multi-line artifact codec (header with {i magic} line included). *)
val artifact_to_string : artifact -> string

val artifact_of_string : string -> (artifact, string) result

(** Deterministic filename derived from the artifact's content hash. *)
val artifact_filename : artifact -> string

(** Write the artifact into [dir] (created if missing) under its
    {!artifact_filename}; returns the full path. *)
val write : dir:string -> artifact -> string

val load : string -> (artifact, string) result
