(** Self-contained replay artifacts for conformance failures.

    An artifact is a small line-oriented text file — `key = value`, one
    per line — carrying everything needed to re-execute a failing run:
    the complete parameter record (algorithm, seed, and the fault plan
    included), and the failure kind and detail. Floats are printed with
    ["%.17g"] so they round-trip bit-for-bit.

    `ddbm_cli replay <file>` feeds an artifact back through
    {!Conformance.replay_file}. *)

open Ddbm_model

let magic = "ddbm-replay 1"

type artifact = {
  params : Params.t;
      (** full configuration; algorithm in [params.cc], fault plan
          (including chaos switches) in [params.faults] *)
  kind : string;  (** failure class: audit, invariant, determinism, ... *)
  detail : string;  (** human-readable description of the failure *)
}

(* --- encoding ------------------------------------------------------ *)

let exec_pattern_name = function
  | Params.Sequential -> "sequential"
  | Params.Parallel -> "parallel"

let exec_pattern_of_string = function
  | "sequential" -> Some Params.Sequential
  | "parallel" -> Some Params.Parallel
  | _ -> None

(* newlines would break the line-oriented format *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let params_fields (p : Params.t) =
  let d = p.Params.database
  and w = p.Params.workload
  and r = p.Params.resources
  and c = p.Params.cc
  and dur = p.Params.durability
  and run = p.Params.run in
  let f = Printf.sprintf "%.17g" in
  [
    ("algorithm", Params.cc_algorithm_name c.Params.algorithm);
    ("num_proc_nodes", string_of_int d.Params.num_proc_nodes);
    ("num_relations", string_of_int d.Params.num_relations);
    ("partitions_per_relation", string_of_int d.Params.partitions_per_relation);
    ("file_size", string_of_int d.Params.file_size);
    ("partitioning_degree", string_of_int d.Params.partitioning_degree);
    ("replication", string_of_int d.Params.replication);
    ("num_terminals", string_of_int w.Params.num_terminals);
    ("think_time", f w.Params.think_time);
    ("exec_pattern", exec_pattern_name w.Params.exec_pattern);
    ("pages_per_partition", string_of_int w.Params.pages_per_partition);
    ("write_prob", f w.Params.write_prob);
    ("inst_per_page", f w.Params.inst_per_page);
    ("host_mips", f r.Params.host_mips);
    ("node_mips", f r.Params.node_mips);
    ("disks_per_node", string_of_int r.Params.disks_per_node);
    ("min_disk_time", f r.Params.min_disk_time);
    ("max_disk_time", f r.Params.max_disk_time);
    ("inst_per_update", f r.Params.inst_per_update);
    ("inst_per_startup", f r.Params.inst_per_startup);
    ("inst_per_msg", f r.Params.inst_per_msg);
    ("inst_per_cc_req", f r.Params.inst_per_cc_req);
    ("model_logging", string_of_bool r.Params.model_logging);
    ("detection_interval", f c.Params.detection_interval);
    ("log_disk", string_of_bool dur.Params.log_disk);
    ("log_min_time", f dur.Params.log_min_time);
    ("log_max_time", f dur.Params.log_max_time);
    ("log_force", Params.log_force_name dur.Params.log_force);
    ("replicas", string_of_int dur.Params.replicas);
    ("recovery_jobs", string_of_int dur.Params.recovery_jobs);
    ("seed", string_of_int run.Params.seed);
    ("warmup", f run.Params.warmup);
    ("measure", f run.Params.measure);
    ("restart_delay_floor", f run.Params.restart_delay_floor);
    ("fresh_restart_plan", string_of_bool run.Params.fresh_restart_plan);
    (* the spec value may itself contain '='; split_kv cuts at the first
       one, so the line round-trips *)
    ("faults", Fault_plan.to_spec p.Params.faults);
    ("arrivals", Arrival.to_spec p.Params.arrivals);
  ]

(** The parameter record as `key = value` lines (no header); also used as
    the QCheck counterexample printer. *)
let params_to_string p =
  params_fields p
  |> List.map (fun (k, v) -> Printf.sprintf "%s = %s" k v)
  |> String.concat "\n"

let artifact_to_string a =
  String.concat "\n"
    [
      magic;
      Printf.sprintf "kind = %s" (one_line a.kind);
      Printf.sprintf "detail = %s" (one_line a.detail);
      params_to_string a.params;
      "";
    ]

(* --- decoding ------------------------------------------------------ *)

let split_kv line =
  match String.index_opt line '=' with
  | None -> None
  | Some i ->
      let key = String.trim (String.sub line 0 i) in
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      Some (key, value)

let ( let* ) = Result.bind

let field assoc key conv =
  match List.assoc_opt key assoc with
  | None -> Error (Printf.sprintf "replay artifact: missing field %S" key)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None ->
          Error (Printf.sprintf "replay artifact: bad value %S for %S" v key))

let int_conv s = int_of_string_opt s
let float_conv s = float_of_string_opt s
let bool_conv s = bool_of_string_opt s

let params_of_assoc assoc =
  let* algorithm = field assoc "algorithm" Params.cc_algorithm_of_string in
  let* num_proc_nodes = field assoc "num_proc_nodes" int_conv in
  let* num_relations = field assoc "num_relations" int_conv in
  let* partitions_per_relation =
    field assoc "partitions_per_relation" int_conv
  in
  let* file_size = field assoc "file_size" int_conv in
  let* partitioning_degree = field assoc "partitioning_degree" int_conv in
  let* replication = field assoc "replication" int_conv in
  let* num_terminals = field assoc "num_terminals" int_conv in
  let* think_time = field assoc "think_time" float_conv in
  let* exec_pattern = field assoc "exec_pattern" exec_pattern_of_string in
  let* pages_per_partition = field assoc "pages_per_partition" int_conv in
  let* write_prob = field assoc "write_prob" float_conv in
  let* inst_per_page = field assoc "inst_per_page" float_conv in
  let* host_mips = field assoc "host_mips" float_conv in
  let* node_mips = field assoc "node_mips" float_conv in
  let* disks_per_node = field assoc "disks_per_node" int_conv in
  let* min_disk_time = field assoc "min_disk_time" float_conv in
  let* max_disk_time = field assoc "max_disk_time" float_conv in
  let* inst_per_update = field assoc "inst_per_update" float_conv in
  let* inst_per_startup = field assoc "inst_per_startup" float_conv in
  let* inst_per_msg = field assoc "inst_per_msg" float_conv in
  let* inst_per_cc_req = field assoc "inst_per_cc_req" float_conv in
  let* model_logging = field assoc "model_logging" bool_conv in
  let* detection_interval = field assoc "detection_interval" float_conv in
  (* the durability block is absent in artifacts written before the WAL
     subsystem existed: default to durability-off, the paper's machine *)
  let opt_field key conv default =
    match List.assoc_opt key assoc with
    | None -> Ok default
    | Some v -> (
        match conv v with
        | Some x -> Ok x
        | None ->
            Error (Printf.sprintf "replay artifact: bad value %S for %S" v key))
  in
  let dd = Params.default_durability in
  let* log_disk = opt_field "log_disk" bool_conv dd.Params.log_disk in
  let* log_min_time = opt_field "log_min_time" float_conv dd.Params.log_min_time in
  let* log_max_time = opt_field "log_max_time" float_conv dd.Params.log_max_time in
  let* log_force = opt_field "log_force" Params.log_force_of_string dd.Params.log_force in
  let* replicas = opt_field "replicas" int_conv dd.Params.replicas in
  let* recovery_jobs =
    opt_field "recovery_jobs" int_conv dd.Params.recovery_jobs
  in
  let* seed = field assoc "seed" int_conv in
  let* warmup = field assoc "warmup" float_conv in
  let* measure = field assoc "measure" float_conv in
  let* restart_delay_floor = field assoc "restart_delay_floor" float_conv in
  let* fresh_restart_plan = field assoc "fresh_restart_plan" bool_conv in
  (* absent in artifacts written before fault plans existed: zero plan *)
  let* faults =
    match List.assoc_opt "faults" assoc with
    | None -> Ok Fault_plan.zero
    | Some spec -> Fault_plan.of_spec spec
  in
  (* absent in artifacts written before open-loop arrivals existed:
     closed loop *)
  let* arrivals =
    match List.assoc_opt "arrivals" assoc with
    | None -> Ok Arrival.zero
    | Some spec -> Arrival.of_spec spec
  in
  (* legacy artifacts carried chaos switches as separate `fault = name`
     lines; fold them into the plan *)
  let faults =
    let legacy =
      List.filter_map (fun (k, v) -> if k = "fault" then Some v else None) assoc
      |> List.filter (fun name -> not (List.mem name faults.Fault_plan.chaos))
    in
    { faults with Fault_plan.chaos = faults.Fault_plan.chaos @ legacy }
  in
  let params =
    {
      Params.database =
        {
          Params.num_proc_nodes;
          num_relations;
          partitions_per_relation;
          file_size;
          partitioning_degree;
          replication;
        };
      workload =
        {
          Params.num_terminals;
          think_time;
          exec_pattern;
          pages_per_partition;
          write_prob;
          inst_per_page;
        };
      resources =
        {
          Params.host_mips;
          node_mips;
          disks_per_node;
          min_disk_time;
          max_disk_time;
          inst_per_update;
          inst_per_startup;
          inst_per_msg;
          inst_per_cc_req;
          model_logging;
        };
      cc = { Params.algorithm; detection_interval };
      run =
        {
          Params.seed;
          warmup;
          measure;
          restart_delay_floor;
          fresh_restart_plan;
        };
      durability =
        {
          Params.log_disk;
          log_min_time;
          log_max_time;
          log_force;
          replicas;
          recovery_jobs;
        };
      faults;
      arrivals;
    }
  in
  match Params.validate params with
  | Ok () -> Ok params
  | Error msg -> Error ("replay artifact: invalid parameters: " ^ msg)

(** Parse `key = value` parameter lines (the body of an artifact or the
    output of {!params_to_string}). *)
let params_of_string s =
  let assoc =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None else split_kv line)
  in
  params_of_assoc assoc

let artifact_of_string s =
  match String.split_on_char '\n' s with
  | [] -> Error "replay artifact: empty file"
  | first :: rest ->
      if String.trim first <> magic then
        Error
          (Printf.sprintf "replay artifact: bad header %S (want %S)"
             (String.trim first) magic)
      else
        let lines =
          List.filter_map
            (fun line ->
              let line = String.trim line in
              if line = "" || line.[0] = '#' then None else split_kv line)
            rest
        in
        let* params = params_of_assoc lines in
        let get key = Option.value ~default:"" (List.assoc_opt key lines) in
        Ok { params; kind = get "kind"; detail = get "detail" }

(* --- files --------------------------------------------------------- *)

(** Deterministic artifact filename for a failure (no timestamps, so
    repeated failing runs overwrite rather than accumulate). *)
let artifact_filename a =
  let sanitize s =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
        | _ -> '_')
      s
  in
  Printf.sprintf "ddbm-replay-%s-seed%d-%s.txt"
    (sanitize (Params.cc_algorithm_name a.params.Params.cc.Params.algorithm))
    a.params.Params.run.Params.seed (sanitize a.kind)

(** Write the artifact into [dir]; returns its path. *)
let write ~dir a =
  let path = Filename.concat dir (artifact_filename a) in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (artifact_to_string a));
  path

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> artifact_of_string s
  | exception Sys_error msg -> Error ("replay artifact: " ^ msg)
