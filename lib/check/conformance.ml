(** Cross-algorithm conformance engine.

    For one parameter record this module runs *every* registered
    concurrency control algorithm with the serializability auditor
    attached and asserts, per algorithm:

    - the committed history is (multiversion view-) serializable;
    - the metric conservation invariants of {!Invariants};
    - bit-for-bit determinism: the same (seed, params, algorithm) run
      twice yields identical {!Ddbm.Sim_result.t}s;

    and across algorithms:

    - workload agreement: the per-terminal plan streams — which
      concurrency control must not influence — are prefix-identical
      across all algorithms (common random numbers).

    Any failure shrinks (via {!Config_gen}) at the QCheck layer and is
    written as a self-contained replay artifact that
    [ddbm_cli replay <file>] re-executes. *)

open Ddbm_model

type failure = {
  params : Params.t;  (** configuration, algorithm included *)
  kind : string;  (** audit | invariant | determinism | agreement *)
  detail : string;
}

let failure_to_string f =
  Printf.sprintf "[%s] %s under %s (seed %d):\n%s" f.kind
    (Params.cc_algorithm_name f.params.Params.cc.Params.algorithm)
    (match f.params.Params.workload.Params.exec_pattern with
    | Params.Parallel -> "parallel execution"
    | Params.Sequential -> "sequential execution")
    f.params.Params.run.Params.seed f.detail

let with_algorithm params algorithm =
  { params with Params.cc = { params.Params.cc with Params.algorithm } }

(** One fully instrumented run: audit + plan fingerprints, optionally an
    event trace and caller instrumentation (e.g. typed-event sinks or
    the time-series sampler), applied between creation and execution. *)
let run_instrumented ?trace_capacity ?instrument params =
  let m = Ddbm.Machine.create params in
  let audit = Ddbm.Machine.enable_audit m in
  Ddbm.Machine.enable_fingerprints m;
  let trace = Option.map (fun capacity -> Ddbm.Machine.enable_trace ~capacity m) trace_capacity in
  Option.iter (fun f -> f m) instrument;
  let result = Ddbm.Machine.execute m in
  (result, audit, Ddbm.Machine.workload_fingerprints m, trace)

(* Prefix agreement of two per-terminal fingerprint streams: the shorter
   run must be a prefix of the longer (the algorithms completed different
   numbers of transactions, but the k-th plan of a terminal is fixed). *)
let rec prefix_mismatch pos a b =
  match (a, b) with
  | [], _ | _, [] -> None
  | x :: a', y :: b' ->
      if x <> y then Some pos else prefix_mismatch (pos + 1) a' b'

(** Audit + invariants + determinism for [params] as given (single
    algorithm). Returns the first run's result and fingerprints for the
    cross-algorithm checks, plus the event trace (when requested) for
    post-mortems either way. [instrument] is applied to *both* runs of
    the determinism check — asymmetric instrumentation (the sampler
    schedules engine events) would make the two runs legitimately
    diverge. *)
let check_algorithm_traced ?trace_capacity ?instrument params :
    (Ddbm.Sim_result.t * int list array, failure) result
    * Desim.Trace.t option =
  let r1, audit, prints, trace =
    run_instrumented ?trace_capacity ?instrument params
  in
  let fail kind detail = (Error { params; kind; detail }, trace) in
  match Ddbm.Audit.check audit with
  | Error msg -> fail "audit" msg
  | Ok audited_commits ->
      (* the audit sees every commit since time zero, the metrics window
         only those after warm-up *)
      if audited_commits < r1.Ddbm.Sim_result.commits then
        fail "audit"
          (Printf.sprintf
             "audit saw %d commits but the window recorded %d"
             audited_commits r1.Ddbm.Sim_result.commits)
      else begin
        match Invariants.check r1 with
        | _ :: _ as violations ->
            fail "invariant" (String.concat "\n" violations)
        | [] -> (
            let r2, _, _, _ = run_instrumented ?instrument params in
            match Ddbm.Sim_result.diff r1 r2 with
            | [] -> (Ok (r1, prints), trace)
            | diffs ->
                fail "determinism"
                  ("same seed, different results:\n" ^ String.concat "\n" diffs)
            )
      end

let check_algorithm params = fst (check_algorithm_traced params)

(** Run every algorithm in [algorithms] on [params] (the algorithm field
    of [params] is overridden), checking each in isolation and then the
    cross-algorithm workload agreement. On failure, writes a replay
    artifact into [artifact_dir] (when given) and returns the failure
    along with the artifact path. *)
let check ?(algorithms = Ddbm_cc.Registry.all) ?artifact_dir ?pool params :
    (unit, failure * string option) result =
  let record f =
    let artifact =
      Option.map
        (fun dir ->
          Replay.write ~dir
            { Replay.params = f.params; kind = f.kind; detail = f.detail })
        artifact_dir
    in
    Error (f, artifact)
  in
  (* Serially or over a pool, the per-algorithm outcomes are collected in
     algorithm-list order and the first failure (in that order) wins, so
     the reported failure is independent of job count. The serial path
     still short-circuits on the first failure. *)
  let per_algorithm () =
    match pool with
    | Some pool ->
        let outcomes =
          Par.Pool.map pool
            (fun algorithm ->
              (algorithm, check_algorithm (with_algorithm params algorithm)))
            algorithms
        in
        List.fold_right
          (fun (algorithm, outcome) acc ->
            match outcome with
            | Error f -> Error f
            | Ok (_, prints) ->
                Result.map (fun rest -> (algorithm, prints) :: rest) acc)
          outcomes (Ok [])
    | None ->
        let rec loop acc = function
          | [] -> Ok (List.rev acc)
          | algorithm :: rest -> (
              match check_algorithm (with_algorithm params algorithm) with
              | Error f -> Error f
              | Ok (_, prints) -> loop ((algorithm, prints) :: acc) rest)
        in
        loop [] algorithms
  in
  match per_algorithm () with
  | Error f -> record f
  | Ok [] -> Ok ()
  | Ok ((ref_algorithm, ref_prints) :: others) ->
      let agreement =
        List.find_map
          (fun (algorithm, prints) ->
            if Array.length prints <> Array.length ref_prints then
              Some
                ( algorithm,
                  Printf.sprintf "terminal count differs from %s"
                    (Params.cc_algorithm_name ref_algorithm) )
            else
              Array.to_seq
                (Array.mapi
                   (fun terminal stream ->
                     Option.map
                       (fun pos ->
                         ( algorithm,
                           Printf.sprintf
                             "terminal %d: plan %d differs from %s's (CC \
                              leaked into the workload stream)"
                             terminal pos
                             (Params.cc_algorithm_name ref_algorithm) ))
                       (prefix_mismatch 0 ref_prints.(terminal) stream))
                   prints)
              |> Seq.find_map Fun.id)
          others
      in
      (match agreement with
      | None -> Ok ()
      | Some (algorithm, detail) ->
          record { params = with_algorithm params algorithm; kind = "agreement"; detail })

(* --- sweep --------------------------------------------------------- *)

(* The sweep parallelizes across *configurations*, one whole [check] per
   pool task (each already runs every algorithm twice — plenty of work
   per task), so [check] below must not itself receive the pool: a
   nested parallel map would be rejected by [Par.Pool]. *)
let sweep ?(configs = 50) ?(gen_seed = 0xC0DE) ?artifact_dir pool :
    (int, failure * string option) result =
  (* Deterministic workload generation: the same (configs, gen_seed)
     always yields the same parameter points, independent of job count.
     The ambient-RNG lint rule targets simulation code; here the state
     is explicitly seeded and local. *)
  let rand = Random.State.make [| gen_seed |] (* lint: allow ambient *) in
  let points =
    List.init configs (fun _ -> QCheck.Gen.generate1 ~rand Config_gen.gen)
  in
  let outcomes =
    Par.Pool.map pool (fun params -> check ?artifact_dir params) points
  in
  (* first failure in generation order wins, independent of job count *)
  List.fold_right
    (fun outcome acc ->
      match outcome with
      | Error _ as e -> e
      | Ok () -> Result.map (fun n -> n + 1) acc)
    outcomes (Ok 0)

(* --- replay -------------------------------------------------------- *)

type replay_outcome = {
  artifact : Replay.artifact;
  reproduced : failure option;  (** [None]: the run is clean now *)
  result : Ddbm.Sim_result.t option;
      (** measured result of the (first) replayed run, when it completed *)
  trace_tail : string list;  (** last traced events of the failing run *)
}

(** Load an artifact and re-execute its (seed, params, algorithm) with
    audit, invariants, determinism check and an event trace attached.
    The fault plan — chaos switches included — rides in the artifact's
    parameters, so [Machine.create] re-applies it; nothing needs
    resetting afterwards. [instrument] is applied to every machine (see
    {!check_algorithm_traced}). *)
let replay_file ?(trace_capacity = 5_000) ?instrument path :
    (replay_outcome, string) result =
  match Replay.load path with
  | Error msg -> Error msg
  | Ok artifact -> (
      match
        check_algorithm_traced ~trace_capacity ?instrument
          artifact.Replay.params
      with
      | exception Invalid_argument msg -> Error msg
      | outcome, trace ->
          let trace_tail =
            match trace with
            | Some tr ->
                List.map Desim.Trace.format_event (Desim.Trace.events tr)
            | None -> []
          in
          Ok
            (match outcome with
            | Ok (result, _) ->
                {
                  artifact;
                  reproduced = None;
                  result = Some result;
                  trace_tail = [];
                }
            | Error f ->
                { artifact; reproduced = Some f; result = None; trace_tail }))
