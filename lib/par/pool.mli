(** Hand-rolled work-stealing domain pool for embarrassingly parallel
    batches of simulation runs.

    A batch fixes its worker set ([min jobs n] domains) up front; tasks
    are dealt round-robin into per-worker deques (owners pop from the
    front, thieves steal from the back) and results are merged into an
    array slot per task index, so the output is independent of execution
    order. Each task must be a pure function of its input — the
    simulator's per-(seed, params) determinism provides exactly that —
    which makes a parallel map value-identical to the serial one at any
    job count. *)

type t

(** Raised when a parallel map is attempted from inside a pool task.
    Fan-out sites in this codebase are all top-level; nesting would
    silently oversubscribe the machine. A [jobs = 1] pool never raises
    this: its serial path is safe anywhere. *)
exception Nested_parallelism

(** [Domain.recommended_domain_count ()]: the default for [create] and
    for every [--jobs] flag. *)
val default_jobs : unit -> int

(** Whether the current domain is executing a pool task. Embedded
    fan-out sites (e.g. recovery's chain analysis inside a simulation
    that may itself run as a pool task) use this to degrade to a
    [jobs = 1] pool — safe anywhere — instead of raising
    {!Nested_parallelism}. *)
val inside_task : unit -> bool

(** [create ~jobs ()] with [jobs >= 1] worker domains per batch
    (default {!default_jobs}). [jobs = 1] short-circuits every map to
    the plain serial path on the calling domain — no domains are
    spawned at all. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** [map_array t f inputs] applies [f] to every element, in parallel
    over the pool, and returns the results in input order. The calling
    domain participates as a worker. If any task raises, the batch is
    cancelled (no further task starts), all workers are joined, and the
    failure with the smallest task index is re-raised — the call never
    hangs and never returns partial results. *)
val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val map : t -> ('a -> 'b) -> 'a list -> 'b list
