(* Hand-rolled work-stealing pool over OCaml 5 domains (no Domainslib).

   The unit of work here is coarse — a whole seeded simulation run takes
   hundreds of milliseconds — so the scheduler optimizes for simplicity
   and determinism, not for nanosecond steal latency:

   - a batch fixes its worker set up front: [min jobs n] domains, each
     owning one deque;
   - tasks are dealt round-robin into the deques by task index; owners
     pop from the front (their own lowest-index work, preserving rough
     submission order), thieves steal from the back;
   - results land in a slot array at their task index, so the merge is
     by construction independent of execution order;
   - the first (lowest-task-index) exception cancels the batch: no new
     task starts, every worker drains and joins, and the exception is
     re-raised in the caller. Nothing hangs.

   Determinism contract: each task must be a self-contained function of
   its input (the simulator guarantees this per (seed, params)); the
   pool adds no shared state beyond the slot array, so a parallel map
   is value-identical to the serial map at any job count. *)

exception Nested_parallelism

(* Is the current domain executing a pool task? Used to reject nested
   parallel maps: a task that fans out again would deadlock-or-oversubscribe
   silently, and every legitimate fan-out site in this codebase is
   top-level. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Exposed so embedded fan-out sites (e.g. recovery's chain analysis)
   can degrade to a jobs = 1 pool instead of tripping the rejection when
   the whole simulation already runs inside a pool task. *)
let inside_task () = Domain.DLS.get in_task

type t = { jobs : int }

let default_jobs () = Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  { jobs }

let jobs t = t.jobs

(* One per-worker deque: mutex-protected slice of the task-index space.
   [own] serves the owner from the front, [steal] serves thieves from
   the back. Tasks are only ever removed, never added, after the batch
   starts, so an empty deque stays empty. *)
type deque = {
  lock : Mutex.t;
  tasks : int array;  (** task indices dealt to this worker *)
  mutable front : int;
  mutable back : int;  (** exclusive *)
}

let own d =
  Mutex.lock d.lock;
  let r =
    if d.front < d.back then begin
      let i = d.tasks.(d.front) in
      d.front <- d.front + 1;
      i
    end
    else -1
  in
  Mutex.unlock d.lock;
  r

let steal d =
  Mutex.lock d.lock;
  let r =
    if d.front < d.back then begin
      d.back <- d.back - 1;
      d.tasks.(d.back)
    end
    else -1
  in
  Mutex.unlock d.lock;
  r

type 'b batch = {
  deques : deque array;
  slots : 'b option array;
  stop : bool Atomic.t;
  fail_lock : Mutex.t;
  mutable failures : (int * exn * Printexc.raw_backtrace) list;
}

let record_failure b index exn bt =
  Mutex.lock b.fail_lock;
  b.failures <- (index, exn, bt) :: b.failures;
  Mutex.unlock b.fail_lock;
  Atomic.set b.stop true

(* Find the next task for worker [w]: own deque first, then sweep the
   others starting just past [w] so thieves spread out. *)
let next_task b w =
  let n = Array.length b.deques in
  let i = own b.deques.(w) in
  if i >= 0 then i
  else begin
    let found = ref (-1) in
    let k = ref 1 in
    while !found < 0 && !k < n do
      let v = steal b.deques.((w + !k) mod n) in
      if v >= 0 then found := v;
      incr k
    done;
    !found
  end

let worker_loop b f inputs w =
  let continue_ = ref true in
  while !continue_ do
    if Atomic.get b.stop then continue_ := false
    else begin
      let i = next_task b w in
      if i < 0 then continue_ := false
      else
        match f inputs.(i) with
        | v -> b.slots.(i) <- Some v
        | exception exn ->
            record_failure b i exn (Printexc.get_raw_backtrace ())
    end
  done

let run_batch t f inputs =
  let n = Array.length inputs in
  let workers = Stdlib.min t.jobs n in
  let deques =
    Array.init workers (fun w ->
        let mine = ref [] in
        for i = n - 1 downto 0 do
          if i mod workers = w then mine := i :: !mine
        done;
        let tasks = Array.of_list !mine in
        { lock = Mutex.create (); tasks; front = 0; back = Array.length tasks })
  in
  let b =
    {
      deques;
      slots = Array.make n None;
      stop = Atomic.make false;
      fail_lock = Mutex.create ();
      failures = [];
    }
  in
  let in_worker w () =
    Domain.DLS.set in_task true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_task false)
      (fun () -> worker_loop b f inputs w)
  in
  (* Workers 1..n-1 are fresh domains; the caller serves as worker 0 so
     [jobs] counts every executing core, not helpers-plus-one. *)
  let domains =
    Array.init (workers - 1) (fun k -> Domain.spawn (in_worker (k + 1)))
  in
  in_worker 0 ();
  Array.iter Domain.join domains;
  (match
     List.sort
       (fun (i, _, _) (j, _, _) -> Int.compare i j)
       b.failures
   with
  | (_, exn, bt) :: _ -> Printexc.raise_with_backtrace exn bt
  | [] -> ());
  Array.map Option.get b.slots

let map_array t f inputs =
  if Array.length inputs = 0 then [||]
  else if t.jobs = 1 then
    (* serial short-circuit: no domains, no deques, caller's domain does
       the work in index order *)
    Array.map f inputs
  else if Domain.DLS.get in_task then raise Nested_parallelism
  else run_batch t f inputs

let map t f inputs = Array.to_list (map_array t f (Array.of_list inputs))
