(** Construction of a node's concurrency control manager by algorithm. *)

val make :
  Ddbm_model.Params.cc_algorithm ->
  Ddbm_model.Cc_intf.hooks ->
  Ddbm_model.Cc_intf.node_cc

(** Every registered algorithm, in a stable order. *)
val all : Ddbm_model.Params.cc_algorithm list

(** Whether the algorithm needs the Snoop global deadlock detector. *)
val needs_snoop : Ddbm_model.Params.cc_algorithm -> bool
