(** Page-level lock manager with shared/exclusive modes, FCFS queuing, and
    read-to-write lock conversion (upgrade) that jumps ahead of ordinary
    waiters — the locking substrate of both 2PL and wound-wait.

    Policy decisions (what to do when a request must wait) are delegated to
    the caller through the [on_block] callback, which fires after the
    request is enqueued and receives the set of transactions currently
    blocking it. *)

open Desim
open Ddbm_model
open Ids

type mode = S | X

let mode_compatible a b = a = S && b = S

type waiting = {
  w_txn : Txn.t;
  w_mode : mode;
  w_conversion : bool;
  w_resolver : unit Engine.resolver;
  w_enqueued : float;
}

type lock_entry = {
  mutable holders : (Txn.t * mode) list;
  mutable queue : waiting list;  (** grant order: conversions first *)
}

type t = {
  eng : Engine.t;
  blocking : Stats.Tally.t;
  table : lock_entry Page_table.t;
  footprint : (int * int, Page.t list ref) Hashtbl.t;
      (** pages where a transaction holds or awaits a lock *)
}

let create eng ~blocking =
  { eng; blocking; table = Page_table.create 512; footprint = Hashtbl.create 64 }

let entry_of t page =
  match Page_table.find_opt t.table page with
  | Some e -> e
  | None ->
      let e = { holders = []; queue = [] } in
      Page_table.add t.table page e;
      e

let note_footprint t txn page =
  let k = Txn.key txn in
  match Hashtbl.find_opt t.footprint k with
  | Some pages -> if not (List.exists (Page.equal page) !pages) then
        pages := page :: !pages
  | None -> Hashtbl.add t.footprint k (ref [ page ])

let held_mode entry txn =
  List.find_map
    (fun (h, m) -> if Txn.same_attempt h txn then Some m else None)
    entry.holders

let sole_holder entry txn =
  match entry.holders with
  | [ (h, _) ] -> Txn.same_attempt h txn
  | _ -> false

(** Transactions currently preventing [w] from being granted: incompatible
    holders plus incompatible waiters queued ahead of it. *)
let blockers_of entry (w : waiting) =
  let ahead =
    let rec take acc = function
      | [] -> acc (* w not found: it was granted concurrently *)
      | q :: rest ->
          if q == w then acc
          else if
            (not (mode_compatible q.w_mode w.w_mode))
            && not (Txn.same_attempt q.w_txn w.w_txn)
          then take (q.w_txn :: acc) rest
          else take acc rest
    in
    take [] entry.queue
  in
  let holding =
    List.filter_map
      (fun (h, m) ->
        if Txn.same_attempt h w.w_txn then None
        else if mode_compatible m w.w_mode then None
        else Some h)
      entry.holders
  in
  holding @ ahead

let insert_waiter entry w =
  if w.w_conversion then begin
    (* conversions go ahead of ordinary requests, FIFO among themselves *)
    let convs, others = List.partition (fun q -> q.w_conversion) entry.queue in
    entry.queue <- convs @ [ w ] @ others
  end
  else entry.queue <- entry.queue @ [ w ]

let grant t entry w =
  entry.queue <- List.filter (fun q -> not (q == w)) entry.queue;
  (if w.w_conversion then
     entry.holders <-
       List.map
         (fun (h, m) -> if Txn.same_attempt h w.w_txn then (h, X) else (h, m))
         entry.holders
   else entry.holders <- (w.w_txn, w.w_mode) :: entry.holders);
  Stats.Tally.add t.blocking (Engine.now t.eng -. w.w_enqueued);
  w.w_resolver.Engine.resolve ()

(** Grant eligible queued requests, strictly in queue order (head only, to
    avoid starvation): stop at the first request that cannot be granted. *)
let rec grant_pass t entry =
  match entry.queue with
  | [] -> ()
  | w :: _ ->
      let grantable =
        if w.w_conversion then sole_holder entry w.w_txn
        else
          List.for_all (fun (_, m) -> mode_compatible m w.w_mode) entry.holders
      in
      if grantable then begin
        grant t entry w;
        grant_pass t entry
      end

(** Outcome of an acquisition attempt before any blocking. *)
type attempt = Granted | Conflict of { conversion : bool }

let try_acquire entry txn mode =
  match held_mode entry txn with
  | Some X -> Granted (* X covers everything *)
  | Some S when mode = S -> Granted
  | Some S ->
      (* conversion S -> X: jumps the queue, needs sole holdership only
         (unless the conformance fault hook breaks the check) *)
      if sole_holder entry txn || Fault.broken_lock_conversion () then begin
        entry.holders <-
          List.map
            (fun (h, m) -> if Txn.same_attempt h txn then (h, X) else (h, m))
            entry.holders;
        Granted
      end
      else Conflict { conversion = true }
  | None ->
      if
        entry.queue = []
        && List.for_all (fun (_, m) -> mode_compatible m mode) entry.holders
      then begin
        entry.holders <- (txn, mode) :: entry.holders;
        Granted
      end
      else Conflict { conversion = false }

(** Blockers a fresh request by [txn] would face, computed before it is
    enqueued (used by pre-blocking policies like wait-die, which must be
    able to abort the requester by raising instead of waiting). *)
let prospective_blockers entry txn mode conversion =
  let holding =
    List.filter_map
      (fun (h, m) ->
        if Txn.same_attempt h txn then None
        else if mode_compatible m mode then None
        else Some h)
      entry.holders
  in
  let queued =
    List.filter_map
      (fun q ->
        if Txn.same_attempt q.w_txn txn then None
        else if conversion && not q.w_conversion then
          (* a conversion only queues behind other conversions *)
          None
        else if mode_compatible q.w_mode mode then None
        else Some q.w_txn)
      entry.queue
  in
  holding @ queued

(** [request t txn page mode ~on_block] acquires [mode] on [page] for
    [txn], blocking the calling cohort process until granted. When the
    request must wait, [pre_block] (if given) runs first, in the caller's
    process context, with the prospective blockers — it may raise to
    abort the request instead of waiting (wait-die). Then the waiter is
    enqueued and [on_block] is invoked with its actual blockers (wounds,
    deadlock detection). Raises whatever exception the waiter is rejected
    with when the transaction is aborted while blocked. *)
let request ?pre_block t txn page mode ~on_block =
  let entry = entry_of t page in
  match try_acquire entry txn mode with
  | Granted -> note_footprint t txn page
  | Conflict { conversion } ->
      (match pre_block with
      | Some f -> f (prospective_blockers entry txn mode conversion)
      | None -> ());
      note_footprint t txn page;
      Engine.suspend (fun (r : unit Engine.resolver) ->
          let w =
            {
              w_txn = txn;
              w_mode = mode;
              w_conversion = conversion;
              w_resolver = r;
              w_enqueued = Engine.now t.eng;
            }
          in
          insert_waiter entry w;
          on_block (blockers_of entry w))

(** Release every lock and waiting request of [txn]. Blocked requests are
    rejected with [reject]. Newly grantable waiters are granted. *)
let release_all t txn ~reject =
  match Hashtbl.find_opt t.footprint (Txn.key txn) with
  | None -> ()
  | Some pages ->
      Hashtbl.remove t.footprint (Txn.key txn);
      List.iter
        (fun page ->
          match Page_table.find_opt t.table page with
          | None -> ()
          | Some entry ->
              entry.holders <-
                List.filter
                  (fun (h, _) -> not (Txn.same_attempt h txn))
                  entry.holders;
              let mine, rest =
                List.partition
                  (fun q -> Txn.same_attempt q.w_txn txn)
                  entry.queue
              in
              entry.queue <- rest;
              List.iter (fun q -> q.w_resolver.Engine.reject reject) mine;
              grant_pass t entry;
              if entry.holders = [] && entry.queue = [] then
                Page_table.remove t.table page)
        !pages

(** Waits-for edges of this node's lock table. *)
let edges t =
  Page_table.fold
    (fun _ entry acc ->
      List.fold_left
        (fun acc w ->
          List.fold_left
            (fun acc holder ->
              { Cc_intf.waiter = w.w_txn; holder } :: acc)
            acc (blockers_of entry w))
        acc entry.queue)
    t.table []
  |> List.sort Cc_intf.compare_edge

(** Number of transactions currently blocked in the table. *)
let num_waiting t =
  (* lint: allow hashtbl-order - commutative integer sum *)
  Page_table.fold (fun _ e acc -> acc + List.length e.queue) t.table 0

(** Current blockers of [txn]'s waiting request on [page] (testing). *)
let current_blockers t txn page =
  match Page_table.find_opt t.table page with
  | None -> []
  | Some entry -> (
      match List.find_opt (fun w -> Txn.same_attempt w.w_txn txn) entry.queue with
      | None -> []
      | Some w -> blockers_of entry w)

(** Pages on which [txn] currently holds an exclusive lock — exactly the
    updates a lock-based scheme installs at commit. *)
let exclusive_pages t txn =
  match Hashtbl.find_opt t.footprint (Txn.key txn) with
  | None -> []
  | Some pages ->
      List.filter
        (fun page ->
          match Page_table.find_opt t.table page with
          | None -> false
          | Some entry -> (
              match held_mode entry txn with
              | Some X -> true
              | Some S | None -> false))
        !pages

(** Mode held by [txn] on [page], if any (testing). *)
let held t txn page =
  match Page_table.find_opt t.table page with
  | None -> None
  | Some entry -> held_mode entry txn
