(** The rotating "Snoop" global deadlock detector for 2PL (Section 2.2),
    after Distributed INGRES [Ston79]: each processing node in turn waits
    [detection_interval], gathers waits-for edges from every node (one
    request and one reply message per remote node), breaks every global
    cycle by aborting its youngest member, and passes the token on. *)

open Ddbm_model

type t

val create :
  Desim.Engine.t ->
  net:Net.t ->
  num_nodes:int ->
  detection_interval:float ->
  edges_of:(int -> Cc_intf.edge list) ->
  request_abort:(from_node:int -> Txn.t -> Txn.abort_reason -> unit) ->
  t

(** Run one collection + detection pass as [snoop_node] (blocking;
    exposed for tests). *)
val detection_round : t -> snoop_node:int -> unit

(** Attach (or detach, with [None]) an observer called after every
    detection round with the collecting node, the number of waits-for
    edges gathered, and the victims selected. *)
val set_on_round :
  t -> (node:int -> edges:int -> victims:int -> unit) option -> unit

(** Start the rotating detector process (node 0 first). *)
val start : t -> unit

(** Completed detection rounds. *)
val rounds : t -> int

(** Total victims requested. *)
val victims : t -> int
