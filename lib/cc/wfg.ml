(** Waits-for graphs and cycle detection.

    Used both for block-time local deadlock detection (2PL) and by the
    Snoop global detector, which unions the edges of all nodes. Vertices
    are transaction attempts; edges through doomed attempts are treated as
    already broken. *)

open Ddbm_model

type key = int * int

module Key_table = Hashtbl

type t = {
  adj : (key, Txn.t list) Key_table.t;  (** waiter -> holders *)
  txns : (key, Txn.t) Key_table.t;
}

let create () = { adj = Key_table.create 64; txns = Key_table.create 64 }

let vertex t txn =
  if not (Key_table.mem t.txns (Txn.key txn)) then
    Key_table.replace t.txns (Txn.key txn) txn

let add_edge t ~(waiter : Txn.t) ~(holder : Txn.t) =
  if not (Txn.same_attempt waiter holder) then begin
    vertex t waiter;
    vertex t holder;
    let k = Txn.key waiter in
    let cur = Option.value ~default:[] (Key_table.find_opt t.adj k) in
    if not (List.exists (Txn.same_attempt holder) cur) then
      Key_table.replace t.adj k (holder :: cur)
  end

let of_edges edges =
  let t = create () in
  List.iter
    (fun { Cc_intf.waiter; holder } -> add_edge t ~waiter ~holder)
    edges;
  t

let successors t txn =
  Option.value ~default:[] (Key_table.find_opt t.adj (Txn.key txn))

let alive (txn : Txn.t) ~(removed : (key, unit) Key_table.t) =
  (not txn.Txn.doomed) && not (Key_table.mem removed (Txn.key txn))

(** [find_cycle_through t start ~removed] is a cycle containing [start]
    (as the list of its member transactions), ignoring doomed and removed
    vertices, or [None]. Depth-first search following waits-for edges. *)
let find_cycle_through t start ~removed =
  if not (alive start ~removed) then None
  else begin
    let visited = Key_table.create 16 in
    let rec dfs path txn =
      List.fold_left
        (fun acc next ->
          match acc with
          | Some _ -> acc
          | None ->
              if Txn.same_attempt next start then Some (List.rev (txn :: path))
              else if (not (alive next ~removed))
                      || Key_table.mem visited (Txn.key next)
              then None
              else begin
                Key_table.replace visited (Txn.key next) ();
                dfs (txn :: path) next
              end)
        None (successors t txn)
    in
    Key_table.replace visited (Txn.key start) ();
    dfs [] start
  end

(** Youngest member of a cycle = most recent initial startup time (the
    paper's deadlock victim rule). *)
let youngest cycle =
  match cycle with
  | [] -> invalid_arg "Wfg.youngest: empty cycle"
  | first :: rest ->
      List.fold_left
        (fun acc (txn : Txn.t) ->
          if Timestamp.compare txn.Txn.startup_ts acc.Txn.startup_ts > 0 then
            txn
          else acc)
        first rest

(** Repeatedly find a cycle anywhere in the graph, select its youngest
    member as the victim, remove it, and continue until acyclic. Returns
    the victims (used by the Snoop detector). *)
let compare_key ((t1, a1) : key) ((t2, a2) : key) =
  match Int.compare t1 t2 with 0 -> Int.compare a1 a2 | n -> n

let break_all_cycles t =
  let removed = Key_table.create 8 in
  let victims = ref [] in
  (* Visit vertices in key order, not bucket order, so the cycle found
     first (and hence the victim set when cycles overlap) is independent
     of hash-table layout. *)
  let vertices =
    Key_table.fold (fun key txn acc -> (key, txn) :: acc) t.txns []
    |> List.sort (fun (k1, _) (k2, _) -> compare_key k1 k2)
  in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (_, txn) ->
        if not !progress then
          match find_cycle_through t txn ~removed with
          | Some cycle ->
              let victim = youngest cycle in
              Key_table.replace removed (Txn.key victim) ();
              victims := victim :: !victims;
              progress := true
          | None -> ())
      vertices
  done;
  !victims
