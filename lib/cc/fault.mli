(** Chaos switches: named behavioral faults in the CC layer.

    The conformance harness must be able to prove that its end-to-end
    serializability audit catches real concurrency control bugs, not just
    that correct algorithms pass it. Each flag deliberately breaks one
    protocol decision; all flags are off by default.

    The flags are domain-local: the lock table reads them on its hot path,
    and parallel sweep workers each run their own machine with their own
    fault plan, so a process-global flag would leak one worker's chaos
    into another's run. They are {e managed} exclusively through the typed
    fault plan: [Machine.create] calls {!apply} with the plan's [chaos]
    names, overwriting every flag in the calling domain to exactly the
    plan's set. *)

(** When set, the lock table grants a read-to-write conversion even when
    the converter is not the sole holder — two readers of the same page
    can then both upgrade and write concurrently, producing lost updates
    under 2PL/WW/2PL-D that the multiversion audit must flag. *)
val broken_lock_conversion : unit -> bool

(** Registered chaos names, for validation and docs. *)
val names : string list

(** Names of the faults currently active in this domain. *)
val active : unit -> string list

(** Turn all faults off in this domain (test teardown). *)
val reset : unit -> unit

(** [apply names] overwrites the whole registry for this domain: exactly
    the listed flags are set, all others cleared. Rejects unknown names
    (with the registry left fully cleared, never half-applied). *)
val apply : string list -> (unit, string) result
