(** Basic timestamp ordering (Section 2.4, [Bern80b, Bern81]).

    Every page carries a read timestamp and a write timestamp. Accesses
    must occur in timestamp order or the requester aborts, except that
    write-write conflicts apply the Thomas write rule. Writers keep their
    updates in a private workspace until commit: granted writes queue in
    timestamp order without blocking the writer and are installed as the
    writers commit; accepted reads that would see a pending (uncommitted)
    earlier write block until that write becomes visible at commit time.

    Restarted transactions draw a fresh timestamp (otherwise an aborted
    transaction's ever-older timestamp would doom it forever). *)

open Desim
open Ddbm_model
open Ids

type pending_write = {
  pw_txn : Txn.t;
  pw_ts : Timestamp.t;
  mutable pw_committed : bool;
}

type waiting_read = {
  wr_txn : Txn.t;
  wr_ts : Timestamp.t;
  wr_resolver : unit Engine.resolver;
  wr_enqueued : float;
}

type page_state = {
  mutable rts : Timestamp.t option;
  mutable wts : Timestamp.t option;
  mutable pending : pending_write list;  (** ascending timestamp order *)
  mutable waiting : waiting_read list;  (** ascending timestamp order *)
}

type t = {
  hooks : Cc_intf.hooks;
  blocking : Stats.Tally.t;
  pages : page_state Page_table.t;
  footprint : (int * int, Page.t list ref) Hashtbl.t;
}

let create hooks ~blocking =
  {
    hooks;
    blocking;
    pages = Page_table.create 512;
    footprint = Hashtbl.create 64;
  }

let state_of t page =
  match Page_table.find_opt t.pages page with
  | Some s -> s
  | None ->
      let s = { rts = None; wts = None; pending = []; waiting = [] } in
      Page_table.add t.pages page s;
      s

let note_footprint t txn page =
  let k = Txn.key txn in
  match Hashtbl.find_opt t.footprint k with
  | Some pages ->
      if not (List.exists (Page.equal page) !pages) then pages := page :: !pages
  | None -> Hashtbl.add t.footprint k (ref [ page ])

let ts_lt a b = Timestamp.compare a b < 0
let opt_gt opt ts = match opt with Some o -> ts_lt ts o | None -> false

(** An uncommitted-or-uninstalled pending write older than [ts] forces a
    reader at [ts] to wait. *)
let must_wait state ts =
  List.exists (fun pw -> ts_lt pw.pw_ts ts) state.pending

(** Install committed pending writes in timestamp order from the head, then
    wake now-eligible readers. *)
let settle t state =
  let rec install () =
    match state.pending with
    | pw :: rest when pw.pw_committed ->
        state.wts <-
          Some
            (match state.wts with
            | Some w -> Timestamp.max w pw.pw_ts
            | None -> pw.pw_ts);
        state.pending <- rest;
        install ()
    | _ -> ()
  in
  install ();
  let ready, still =
    List.partition (fun wr -> not (must_wait state wr.wr_ts)) state.waiting
  in
  state.waiting <- still;
  List.iter
    (fun wr ->
      state.rts <-
        Some
          (match state.rts with
          | Some r -> Timestamp.max r wr.wr_ts
          | None -> wr.wr_ts);
      Stats.Tally.add t.blocking (Engine.now t.hooks.Cc_intf.eng -. wr.wr_enqueued);
      wr.wr_resolver.Engine.resolve ())
    ready

let insert_sorted_pending state pw =
  let rec go = function
    | [] -> [ pw ]
    | p :: rest ->
        if ts_lt pw.pw_ts p.pw_ts then pw :: p :: rest else p :: go rest
  in
  state.pending <- go state.pending

let insert_sorted_waiting state wr =
  let rec go = function
    | [] -> [ wr ]
    | w :: rest ->
        if ts_lt wr.wr_ts w.wr_ts then wr :: w :: rest else w :: go rest
  in
  state.waiting <- go state.waiting

let cc_read t (txn : Txn.t) page =
  t.hooks.Cc_intf.charge_cc_request ();
  let ts = txn.Txn.cc_ts in
  let state = state_of t page in
  if opt_gt state.wts ts then raise (Txn.Aborted Txn.Bto_conflict);
  note_footprint t txn page;
  if must_wait state ts then
    Engine.suspend (fun (r : unit Engine.resolver) ->
        insert_sorted_waiting state
          {
            wr_txn = txn;
            wr_ts = ts;
            wr_resolver = r;
            wr_enqueued = Engine.now t.hooks.Cc_intf.eng;
          })
  else
    state.rts <-
      Some
        (match state.rts with
        | Some r -> Timestamp.max r ts
        | None -> ts)

let cc_write t (txn : Txn.t) page =
  t.hooks.Cc_intf.charge_cc_request ();
  let ts = txn.Txn.cc_ts in
  let state = state_of t page in
  if opt_gt state.rts ts then raise (Txn.Aborted Txn.Bto_conflict);
  if opt_gt state.wts ts then
    (* Thomas write rule: a logically overwritten write is simply dropped *)
    ()
  else begin
    note_footprint t txn page;
    insert_sorted_pending state
      { pw_txn = txn; pw_ts = ts; pw_committed = false }
  end

let for_footprint t txn f =
  match Hashtbl.find_opt t.footprint (Txn.key txn) with
  | None -> ()
  | Some pages -> List.iter f !pages

(* Pages with a pending write of [txn]: exactly the installs its commit
   will perform (Thomas-rule dropped writes never became pending). *)
let cc_installed t txn =
  let acc = ref [] in
  for_footprint t txn (fun page ->
      match Page_table.find_opt t.pages page with
      | None -> ()
      | Some state ->
          if
            List.exists (fun pw -> Txn.same_attempt pw.pw_txn txn) state.pending
          then acc := page :: !acc);
  !acc

let cc_commit t txn =
  for_footprint t txn (fun page ->
      match Page_table.find_opt t.pages page with
      | None -> ()
      | Some state ->
          List.iter
            (fun pw ->
              if Txn.same_attempt pw.pw_txn txn then pw.pw_committed <- true)
            state.pending;
          settle t state);
  Hashtbl.remove t.footprint (Txn.key txn)

let cc_abort t txn =
  for_footprint t txn (fun page ->
      match Page_table.find_opt t.pages page with
      | None -> ()
      | Some state ->
          state.pending <-
            List.filter
              (fun pw -> not (Txn.same_attempt pw.pw_txn txn))
              state.pending;
          let mine, rest =
            List.partition
              (fun wr -> Txn.same_attempt wr.wr_txn txn)
              state.waiting
          in
          state.waiting <- rest;
          List.iter
            (fun wr -> wr.wr_resolver.Engine.reject (Txn.Aborted Txn.Peer_abort))
            mine;
          settle t state);
  Hashtbl.remove t.footprint (Txn.key txn)

(** Readers blocked behind pending writes wait for those writers: these are
    genuine waits-for edges and are reported for completeness (the Snoop
    detector only runs under 2PL, but tests exercise this). *)
let edges t =
  Page_table.fold
    (fun _ state acc ->
      List.fold_left
        (fun acc wr ->
          List.fold_left
            (fun acc pw ->
              if ts_lt pw.pw_ts wr.wr_ts then
                { Cc_intf.waiter = wr.wr_txn; holder = pw.pw_txn } :: acc
              else acc)
            acc state.pending)
        acc state.waiting)
    t.pages []
  |> List.sort Cc_intf.compare_edge

let make (hooks : Cc_intf.hooks) : Cc_intf.node_cc =
  let blocking = Stats.Tally.create () in
  let t = create hooks ~blocking in
  {
    algorithm = Params.Bto;
    cc_read = (fun txn page -> cc_read t txn page);
    cc_write = (fun txn page -> cc_write t txn page);
    cc_prepare = (fun txn -> not txn.Txn.doomed);
    cc_installed = (fun txn -> cc_installed t txn);
    cc_commit = (fun txn -> cc_commit t txn);
    cc_abort = (fun txn -> cc_abort t txn);
    cc_edges = (fun () -> edges t);
    cc_blocking = blocking;
  }
