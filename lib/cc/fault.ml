(** Chaos switches: named behavioral faults in the CC layer.

    The conformance harness must be able to prove that its end-to-end
    serializability audit catches real concurrency control bugs, not just
    that correct algorithms pass it. Each flag here deliberately breaks
    one protocol decision; all flags are off by default.

    The flags are process-global (the lock table reads them on its hot
    path), but they are {e managed} exclusively through the typed fault
    plan: [Machine.create] calls {!apply} with the plan's [chaos] names,
    overwriting every flag to exactly the plan's set. A run therefore
    cannot inherit chaos state from a previous run, and the active set is
    always recorded in replay artifacts with the rest of the plan. *)

(** When set, the lock table grants a read-to-write conversion even when
    the converter is not the sole holder — two readers of the same page
    can then both upgrade and write concurrently, producing lost updates
    under 2PL/WW/2PL-D that the multiversion audit must flag. *)
let broken_lock_conversion = ref false

let all = [ ("broken-lock-conversion", broken_lock_conversion) ]

(** Registered chaos names, for validation and docs. *)
let names = List.map fst all

(** Names of the currently active faults. *)
let active () =
  List.filter_map (fun (name, flag) -> if !flag then Some name else None) all

(** Turn all faults off (test teardown). *)
let reset () = List.iter (fun (_, flag) -> flag := false) all

(** [apply names] overwrites the whole registry: exactly the listed
    flags are set, all others cleared. Rejects unknown names (with the
    registry left fully cleared, never half-applied). *)
let apply names_to_set =
  reset ();
  List.fold_left
    (fun acc name ->
      match acc with
      | Error _ as e -> e
      | Ok () -> (
          match List.assoc_opt name all with
          | Some flag ->
              flag := true;
              Ok ()
          | None ->
              reset ();
              Error (Printf.sprintf "unknown chaos fault %S" name)))
    (Ok ()) names_to_set
