(** Test-only fault injection points.

    The conformance harness must be able to prove that its end-to-end
    serializability audit catches real concurrency control bugs, not just
    that correct algorithms pass it. Each flag here deliberately breaks
    one protocol decision; all flags are off by default and are never set
    outside tests and replay runs.

    Active faults are recorded in replay artifacts so that
    [ddbm_cli replay] reproduces the same broken machine. *)

(** When set, the lock table grants a read-to-write conversion even when
    the converter is not the sole holder — two readers of the same page
    can then both upgrade and write concurrently, producing lost updates
    under 2PL/WW/2PL-D that the multiversion audit must flag. *)
let broken_lock_conversion = ref false

let all = [ ("broken-lock-conversion", broken_lock_conversion) ]

(** Names of the currently active faults. *)
let active () =
  List.filter_map (fun (name, flag) -> if !flag then Some name else None) all

(** Turn all faults off (test teardown). *)
let reset () = List.iter (fun (_, flag) -> flag := false) all

(** Activate a fault by name. *)
let set name =
  match List.assoc_opt name all with
  | Some flag ->
      flag := true;
      Ok ()
  | None -> Error (Printf.sprintf "unknown fault %S" name)
