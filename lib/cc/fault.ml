(** Chaos switches: named behavioral faults in the CC layer.

    The conformance harness must be able to prove that its end-to-end
    serializability audit catches real concurrency control bugs, not just
    that correct algorithms pass it. Each flag here deliberately breaks
    one protocol decision; all flags are off by default.

    The flags are domain-local: the lock table reads them on its hot
    path, and parallel sweep workers each run their own machine with
    their own fault plan, so a process-global flag would leak one
    worker's chaos into another's run. They are {e managed} exclusively
    through the typed fault plan: [Machine.create] calls {!apply} with
    the plan's [chaos] names, overwriting every flag in the calling
    domain to exactly the plan's set. A run therefore cannot inherit
    chaos state from a previous run, and the active set is always
    recorded in replay artifacts with the rest of the plan. *)

type flags = { mutable broken_lock_conversion : bool }

let flags : flags Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { broken_lock_conversion = false })

(** When set, the lock table grants a read-to-write conversion even when
    the converter is not the sole holder — two readers of the same page
    can then both upgrade and write concurrently, producing lost updates
    under 2PL/WW/2PL-D that the multiversion audit must flag. *)
let broken_lock_conversion () = (Domain.DLS.get flags).broken_lock_conversion

let all =
  [
    ( "broken-lock-conversion",
      ( broken_lock_conversion,
        fun v -> (Domain.DLS.get flags).broken_lock_conversion <- v ) );
  ]

(** Registered chaos names, for validation and docs. *)
let names = List.map fst all

(** Names of the faults currently active in this domain. *)
let active () =
  List.filter_map
    (fun (name, (get, _)) -> if get () then Some name else None)
    all

(** Turn all faults off in this domain (test teardown). *)
let reset () = List.iter (fun (_, (_, set)) -> set false) all

(** [apply names] overwrites the whole registry for this domain: exactly
    the listed flags are set, all others cleared. Rejects unknown names
    (with the registry left fully cleared, never half-applied). *)
let apply names_to_set =
  reset ();
  List.fold_left
    (fun acc name ->
      match acc with
      | Error _ as e -> e
      | Ok () -> (
          match List.assoc_opt name all with
          | Some (_, set) ->
              set true;
              Ok ()
          | None ->
              reset ();
              Error (Printf.sprintf "unknown chaos fault %S" name)))
    (Ok ()) names_to_set
