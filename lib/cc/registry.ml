(** Construction of a node's concurrency control manager by algorithm. *)

open Ddbm_model

let make (algorithm : Params.cc_algorithm) (hooks : Cc_intf.hooks) :
    Cc_intf.node_cc =
  match algorithm with
  | Params.No_dc -> No_dc.make hooks
  | Params.Twopl -> Twopl.make hooks
  | Params.Wound_wait -> Wound_wait.make hooks
  | Params.Bto -> Bto.make hooks
  | Params.Opt -> Opt_cert.make hooks
  | Params.Wait_die -> Wait_die.make hooks
  | Params.Twopl_defer -> Twopl_defer.make hooks
  | Params.O2pl -> Twopl.make ~algorithm:Params.O2pl hooks

(** Every registered algorithm, in a stable order. The conformance
    harness runs each of these on every generated configuration. *)
let all =
  [
    Params.No_dc;
    Params.Twopl;
    Params.Wound_wait;
    Params.Bto;
    Params.Opt;
    Params.Wait_die;
    Params.Twopl_defer;
    Params.O2pl;
  ]

(** Whether the algorithm needs the Snoop global deadlock detector. *)
let needs_snoop = function
  | Params.Twopl | Params.Twopl_defer | Params.O2pl -> true
  | Params.No_dc | Params.Wound_wait | Params.Bto | Params.Opt
  | Params.Wait_die ->
      false
