(** The rotating "Snoop" global deadlock detector for 2PL (Section 2.2),
    modeled after Distributed INGRES [Ston79].

    Each processing node takes a turn as the Snoop node: after waiting
    [detection_interval], it gathers waits-for edges from every node (one
    request and one reply message per remote node), unions them, breaks
    every global cycle by aborting the youngest member, and passes the
    Snoop responsibility to the next node with a token message. *)

open Desim
open Ddbm_model

type t = {
  eng : Engine.t;
  net : Net.t;
  num_nodes : int;
  detection_interval : float;
  edges_of : int -> Cc_intf.edge list;
      (** waits-for snapshot of a processing node *)
  request_abort : from_node:int -> Txn.t -> Txn.abort_reason -> unit;
  mutable rounds : int;
  mutable victims : int;
  mutable on_round : (node:int -> edges:int -> victims:int -> unit) option;
      (** observer of completed detection rounds (for typed tracing) *)
}

let create eng ~net ~num_nodes ~detection_interval ~edges_of ~request_abort =
  {
    eng;
    net;
    num_nodes;
    detection_interval;
    edges_of;
    request_abort;
    rounds = 0;
    victims = 0;
    on_round = None;
  }

(** Attach (or detach) the per-round observer. *)
let set_on_round t on_round = t.on_round <- on_round

(* Collect edges from every node. Requests go out in parallel; each remote
   node replies with its snapshot (taken at reply time). *)
let collect t ~snoop_node =
  (* Count the expected replies before sending anything: with a zero
     message cost, deliveries run synchronously inside the send call. *)
  let pending = ref (t.num_nodes - 1) in
  let collected = ref (t.edges_of snoop_node) in
  let all_in : unit Ivar.t = Ivar.create () in
  for j = 0 to t.num_nodes - 1 do
    if j <> snoop_node then begin
      Net.send_async t.net ~src:(Ids.Proc snoop_node) ~dst:(Ids.Proc j)
        (fun () ->
          let edges = t.edges_of j in
          Net.send_async t.net ~src:(Ids.Proc j) ~dst:(Ids.Proc snoop_node)
            (fun () ->
              collected := edges @ !collected;
              decr pending;
              if !pending = 0 then Ivar.fill all_in ()))
    end
  done;
  if !pending > 0 then Ivar.read all_in;
  !collected

let detection_round t ~snoop_node =
  t.rounds <- t.rounds + 1;
  let edges = collect t ~snoop_node in
  let graph = Wfg.of_edges edges in
  let victims = Wfg.break_all_cycles graph in
  List.iter
    (fun victim ->
      t.victims <- t.victims + 1;
      t.request_abort ~from_node:snoop_node victim Txn.Global_deadlock)
    victims;
  match t.on_round with
  | Some f ->
      f ~node:snoop_node ~edges:(List.length edges)
        ~victims:(List.length victims)
  | None -> ()

(** Start the rotating detector process. Runs for the whole simulation. *)
let start t =
  Engine.spawn t.eng ~name:"snoop" (fun () ->
      let rec turn snoop_node =
        Engine.wait t.detection_interval;
        detection_round t ~snoop_node;
        let next = (snoop_node + 1) mod t.num_nodes in
        (* pass the Snoop token to the next node *)
        if next <> snoop_node then begin
          let arrived : unit Ivar.t = Ivar.create () in
          Net.send_async t.net ~src:(Ids.Proc snoop_node) ~dst:(Ids.Proc next)
            (fun () -> Ivar.fill arrived ());
          Ivar.read arrived
        end;
        turn next
      in
      turn 0)

let rounds t = t.rounds
let victims t = t.victims
