(* Shared scaffolding for concurrency-control unit tests: a mini engine,
   hooks that record abort requests (mimicking the machine's doomed-flag
   behaviour), and transaction-instance builders. *)

open Desim
open Ddbm_model

type t = {
  eng : Engine.t;
  clock : Timestamp.Clock.t;
  abort_requests : (Txn.t * Txn.abort_reason) list ref;
  hooks : Cc_intf.hooks;
}

let make () =
  let eng = Engine.create () in
  let clock = Timestamp.Clock.create () in
  let abort_requests = ref [] in
  let hooks =
    {
      Cc_intf.eng;
      clock;
      charge_cc_request = (fun () -> ());
      request_abort =
        (fun txn reason ->
          if (not txn.Txn.doomed) && not (Txn.in_second_phase txn) then begin
            txn.Txn.doomed <- true;
            abort_requests := (txn, reason) :: !abort_requests
          end);
    }
  in
  { eng; clock; abort_requests; hooks }

let empty_plan = { Plan.relation = 0; cohorts = [] }

(* Transactions with increasing [time] are increasingly "young". *)
let txn t ?(tid = 0) ?(attempt = 1) ~time () =
  let ts = Timestamp.Clock.make t.clock ~time in
  {
    Txn.tid;
    attempt;
    origin_time = time;
    attempt_time = time;
    startup_ts = ts;
    cc_ts = ts;
    commit_ts = None;
    plan = empty_plan;
    phase = Txn.Working;
    doomed = false;
  }

let page ?(file = 0) index = Ids.Page.make ~file ~index

let give_commit_ts t txn =
  txn.Txn.commit_ts <-
    Some (Timestamp.Clock.make t.clock ~time:(Engine.now t.eng))

(* Run the engine until quiescent. *)
let settle t = Engine.run t.eng

let requested_aborts t = List.rev !(t.abort_requests)

let abort_requested_for t victim =
  List.exists (fun (v, _) -> Txn.same_attempt v victim) !(t.abort_requests)
