(* Tests for the experiment driver and figure plumbing: config-to-params
   mapping, run caching, window scaling, and table/CSV rendering. *)

open Ddbm_model

let test_params_of_config_mapping () =
  let c =
    {
      Ddbm.Experiment.algorithm = Params.Bto;
      nodes = 4;
      degree = 2;
      file_size = 1200;
      think = 12.;
      inst_per_startup = 0.;
      inst_per_msg = 4000.;
      exec_pattern = Params.Sequential;
      terminals = 64;
      pages_per_partition = 4;
      replication = 2;
      write_prob = 0.5;
      detection_interval = 2.0;
    }
  in
  let p = Ddbm.Experiment.params_of_config ~profile:Ddbm.Experiment.Quick c in
  Alcotest.(check bool) "algorithm" true (p.Params.cc.Params.algorithm = Params.Bto);
  Alcotest.(check int) "nodes" 4 p.Params.database.Params.num_proc_nodes;
  Alcotest.(check int) "degree" 2 p.Params.database.Params.partitioning_degree;
  Alcotest.(check int) "file size" 1200 p.Params.database.Params.file_size;
  Alcotest.(check (float 0.)) "think" 12. p.Params.workload.Params.think_time;
  Alcotest.(check (float 0.)) "startup" 0.
    p.Params.resources.Params.inst_per_startup;
  Alcotest.(check (float 0.)) "msg" 4000. p.Params.resources.Params.inst_per_msg;
  Alcotest.(check int) "terminals" 64 p.Params.workload.Params.num_terminals;
  Alcotest.(check int) "pages" 4 p.Params.workload.Params.pages_per_partition;
  Alcotest.(check int) "replication" 2 p.Params.database.Params.replication;
  Alcotest.(check (float 0.)) "write prob" 0.5
    p.Params.workload.Params.write_prob;
  Alcotest.(check (float 0.)) "detection interval" 2.0
    p.Params.cc.Params.detection_interval;
  Alcotest.(check bool) "sequential" true
    (p.Params.workload.Params.exec_pattern = Params.Sequential);
  match Params.validate p with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_window_scaling_with_machine_size () =
  let p_of nodes =
    Ddbm.Experiment.params_of_config ~profile:Ddbm.Experiment.Quick
      { Ddbm.Experiment.base_config with Ddbm.Experiment.nodes; degree = 1 }
  in
  let small = p_of 1 and big = p_of 8 in
  Alcotest.(check bool) "1-node windows ~8x longer" true
    (small.Params.run.Params.measure > 7. *. big.Params.run.Params.measure)

let test_profiles_ordered () =
  let measure profile =
    (Ddbm.Experiment.params_of_config ~profile Ddbm.Experiment.base_config)
      .Params.run.Params.measure
  in
  Alcotest.(check bool) "quick < standard < full" true
    (measure Ddbm.Experiment.Quick < measure Ddbm.Experiment.Standard
    && measure Ddbm.Experiment.Standard < measure Ddbm.Experiment.Full)

let tiny_config =
  {
    Ddbm.Experiment.base_config with
    Ddbm.Experiment.algorithm = Params.No_dc;
    nodes = 2;
    degree = 2;
    terminals = 8;
    think = 1.;
  }

let tiny_params =
  let p =
    Ddbm.Experiment.params_of_config ~profile:Ddbm.Experiment.Quick tiny_config
  in
  { p with Params.run = { p.Params.run with Params.warmup = 5.; measure = 20. } }

let test_cache_reuses_runs () =
  let cache = Ddbm.Experiment.create_cache () in
  let a = Ddbm.Experiment.run cache tiny_params in
  let b = Ddbm.Experiment.run cache tiny_params in
  Alcotest.(check int) "one run" 1 cache.Ddbm.Experiment.runs;
  Alcotest.(check int) "one hit" 1 cache.Ddbm.Experiment.hits;
  Alcotest.(check bool) "identical result" true (a == b)

let test_cache_distinguishes_configs () =
  let cache = Ddbm.Experiment.create_cache () in
  let p2 =
    { tiny_params with
      Params.workload =
        { tiny_params.Params.workload with Params.think_time = 2. } }
  in
  ignore (Ddbm.Experiment.run cache tiny_params);
  ignore (Ddbm.Experiment.run cache p2);
  Alcotest.(check int) "two distinct runs" 2 cache.Ddbm.Experiment.runs

let test_replicate_summary () =
  let cache = Ddbm.Experiment.create_cache () in
  let s =
    Ddbm.Experiment.replicate cache ~profile:Ddbm.Experiment.Quick
      ~seeds:[ 1; 2; 3 ] tiny_config
  in
  Alcotest.(check int) "replicates" 3 s.Ddbm.Experiment.replicates;
  Alcotest.(check bool) "throughput positive" true
    (s.Ddbm.Experiment.mean_throughput > 0.);
  Alcotest.(check bool) "ci nonnegative" true
    (s.Ddbm.Experiment.ci_throughput >= 0.);
  Alcotest.(check int) "three runs" 3 cache.Ddbm.Experiment.runs

let sample_figure =
  {
    Ddbm.Figure.id = "figX";
    title = "sample";
    xlabel = "x";
    ylabel = "y";
    series =
      [
        {
          Ddbm.Figure.label = "a";
          points =
            [ { Ddbm.Figure.x = 0.; y = 1.5 }; { Ddbm.Figure.x = 1.; y = 2.5 } ];
        };
        {
          Ddbm.Figure.label = "b";
          points =
            [ { Ddbm.Figure.x = 0.; y = 10. }; { Ddbm.Figure.x = 1.; y = 20. } ];
        };
      ];
  }

let test_figure_table_renders () =
  let table = Ddbm.Figure.to_table sample_figure in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "table contains %S" needle)
        true
        (Astring_contains.contains table needle))
    [ "figX"; "a"; "b"; "1.5"; "20" ]

let test_figure_csv_shape () =
  let csv = Ddbm.Figure.to_csv sample_figure in
  let lines =
    String.split_on_char '\n' (String.trim csv)
  in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "x,a,b" (List.hd lines);
  Alcotest.(check string) "row 0" "0,1.5,10" (List.nth lines 1)

let test_figures_registry_complete () =
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " registered") true
        (Ddbm.Figures.find id <> None))
    [
      "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9";
      "fig10"; "fig11"; "fig12"; "fig13"; "fig14"; "fig15"; "fig16"; "fig17";
      "fig4n"; "fig5n"; "fig16s"; "fig17s"; "abl-exec"; "abl-snoop";
      "abl-txsize"; "abl-writeprob"; "abl-mpl"; "abl-restart"; "ext-algos"; "fig16n"; "ext-repl";
      "abl-logging";
    ];
  Alcotest.(check (option Alcotest.reject)) "unknown id" None
    (Option.map ignore (Ddbm.Figures.find "fig99"))

let suite =
  [
    Alcotest.test_case "config mapping" `Quick test_params_of_config_mapping;
    Alcotest.test_case "window scaling" `Quick
      test_window_scaling_with_machine_size;
    Alcotest.test_case "profiles ordered" `Quick test_profiles_ordered;
    Alcotest.test_case "cache reuses runs" `Slow test_cache_reuses_runs;
    Alcotest.test_case "cache distinguishes configs" `Slow
      test_cache_distinguishes_configs;
    Alcotest.test_case "replicate summary" `Slow test_replicate_summary;
    Alcotest.test_case "figure table renders" `Quick test_figure_table_renders;
    Alcotest.test_case "figure csv shape" `Quick test_figure_csv_shape;
    Alcotest.test_case "figures registry" `Quick test_figures_registry_complete;
  ]
