(* Wait-die tests: die decisions by seniority and the no-deadlock
   guarantee. *)

open Desim
open Ddbm_cc
open Ddbm_model

let mk () =
  let h = Cc_harness.make () in
  (h, Wait_die.make h.Cc_harness.hooks)

let spawn_status h f =
  let state = ref `Waiting in
  Engine.spawn h.Cc_harness.eng (fun () ->
      try
        f ();
        state := `Granted
      with
      | Txn.Aborted Txn.Died -> state := `Died
      | Txn.Aborted _ -> state := `Rejected);
  state

let test_younger_requester_dies () =
  let h, cc = mk () in
  let old_txn = Cc_harness.txn h ~tid:0 ~time:0. () in
  let young_txn = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (spawn_status h (fun () ->
      cc.Cc_intf.cc_read old_txn p;
      cc.Cc_intf.cc_write old_txn p));
  Cc_harness.settle h;
  let s = spawn_status h (fun () -> cc.Cc_intf.cc_read young_txn p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "younger dies immediately" true (!s = `Died)

let test_older_requester_waits () =
  let h, cc = mk () in
  let old_txn = Cc_harness.txn h ~tid:0 ~time:0. () in
  let young_txn = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (spawn_status h (fun () ->
      cc.Cc_intf.cc_read young_txn p;
      cc.Cc_intf.cc_write young_txn p));
  Cc_harness.settle h;
  let s = spawn_status h (fun () -> cc.Cc_intf.cc_read old_txn p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "older waits" true (!s = `Waiting);
  Engine.spawn h.Cc_harness.eng (fun () -> cc.Cc_intf.cc_commit young_txn);
  Cc_harness.settle h;
  Alcotest.(check bool) "older granted after commit" true (!s = `Granted)

let test_no_abort_requests_issued () =
  (* wait-die aborts are always self-inflicted: request_abort is unused *)
  let h, cc = mk () in
  let old_txn = Cc_harness.txn h ~tid:0 ~time:0. () in
  let young_txn = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (spawn_status h (fun () ->
      cc.Cc_intf.cc_read old_txn p;
      cc.Cc_intf.cc_write old_txn p));
  Cc_harness.settle h;
  ignore (spawn_status h (fun () -> cc.Cc_intf.cc_read young_txn p));
  Cc_harness.settle h;
  Alcotest.(check bool) "no remote aborts" true
    (Cc_harness.requested_aborts h = [])

let test_die_against_queued_older () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let t2 = Cc_harness.txn h ~tid:2 ~time:2. () in
  let p = Cc_harness.page 1 in
  (* t1 holds X; t0 (older) waits; t2 (youngest) must die because t0 and
     t1 are both older and in its way *)
  ignore (spawn_status h (fun () ->
      cc.Cc_intf.cc_read t1 p;
      cc.Cc_intf.cc_write t1 p));
  Cc_harness.settle h;
  let s0 = spawn_status h (fun () -> cc.Cc_intf.cc_read t0 p) in
  Cc_harness.settle h;
  let s2 = spawn_status h (fun () -> cc.Cc_intf.cc_write t2 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "older waits" true (!s0 = `Waiting);
  Alcotest.(check bool) "youngest dies" true (!s2 = `Died)

let suite =
  [
    Alcotest.test_case "younger requester dies" `Quick
      test_younger_requester_dies;
    Alcotest.test_case "older requester waits" `Quick test_older_requester_waits;
    Alcotest.test_case "no remote abort requests" `Quick
      test_no_abort_requests_issued;
    Alcotest.test_case "die against queued older" `Quick
      test_die_against_queued_older;
  ]
