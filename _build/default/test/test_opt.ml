(* Distributed certification (OPT) tests: reads/writes never block,
   certification accepts/rejects per [Sinh85]'s rules, commit installs
   versions. *)

open Desim
open Ddbm_cc
open Ddbm_model

let mk () =
  let h = Cc_harness.make () in
  (h, Opt_cert.make h.Cc_harness.hooks)

let run_now h f = Engine.spawn h.Cc_harness.eng f

(* All OPT operations are non-blocking, so a helper that runs a sequence
   inside the engine and returns the result. *)
let eval h f =
  let slot = ref None in
  Engine.spawn h.Cc_harness.eng (fun () -> slot := Some (f ()));
  Cc_harness.settle h;
  match !slot with Some v -> v | None -> Alcotest.fail "process did not run"

let test_reads_never_block () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  let done_ = eval h (fun () ->
      cc.Cc_intf.cc_read t0 p;
      cc.Cc_intf.cc_write t0 p;
      (* a concurrent reader is never delayed *)
      cc.Cc_intf.cc_read t1 p;
      true)
  in
  Alcotest.(check bool) "no blocking" true done_

let test_disjoint_transactions_certify () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  run_now h (fun () ->
      cc.Cc_intf.cc_read t0 (Cc_harness.page 1);
      cc.Cc_intf.cc_write t0 (Cc_harness.page 1);
      cc.Cc_intf.cc_read t1 (Cc_harness.page 2));
  Cc_harness.settle h;
  Cc_harness.give_commit_ts h t0;
  Cc_harness.give_commit_ts h t1;
  let v0 = eval h (fun () -> cc.Cc_intf.cc_prepare t0) in
  let v1 = eval h (fun () -> cc.Cc_intf.cc_prepare t1) in
  Alcotest.(check bool) "both certify" true (v0 && v1);
  run_now h (fun () ->
      cc.Cc_intf.cc_commit t0;
      cc.Cc_intf.cc_commit t1);
  Cc_harness.settle h

let test_stale_read_fails_certification () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  run_now h (fun () ->
      (* t1 reads the initial version; t0 writes and commits first *)
      cc.Cc_intf.cc_read t1 p;
      cc.Cc_intf.cc_read t0 p;
      cc.Cc_intf.cc_write t0 p);
  Cc_harness.settle h;
  Cc_harness.give_commit_ts h t0;
  let v0 = eval h (fun () -> cc.Cc_intf.cc_prepare t0) in
  Alcotest.(check bool) "writer certifies" true v0;
  run_now h (fun () -> cc.Cc_intf.cc_commit t0);
  Cc_harness.settle h;
  Cc_harness.give_commit_ts h t1;
  let v1 = eval h (fun () -> cc.Cc_intf.cc_prepare t1) in
  Alcotest.(check bool) "stale reader rejected" false v1;
  run_now h (fun () -> cc.Cc_intf.cc_abort t1);
  Cc_harness.settle h

let test_certified_uncommitted_write_blocks_read_cert () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  run_now h (fun () ->
      cc.Cc_intf.cc_read t1 p;
      cc.Cc_intf.cc_write t0 p);
  Cc_harness.settle h;
  (* t0 certifies (uncommitted) with an earlier timestamp than t1 *)
  Cc_harness.give_commit_ts h t0;
  let v0 = eval h (fun () -> cc.Cc_intf.cc_prepare t0) in
  Alcotest.(check bool) "writer certifies" true v0;
  Cc_harness.give_commit_ts h t1;
  let v1 = eval h (fun () -> cc.Cc_intf.cc_prepare t1) in
  Alcotest.(check bool)
    "read certification fails against certified earlier write" false v1;
  run_now h (fun () ->
      cc.Cc_intf.cc_commit t0;
      cc.Cc_intf.cc_abort t1);
  Cc_harness.settle h

let test_write_rejected_by_committed_later_read () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  run_now h (fun () ->
      cc.Cc_intf.cc_read t1 p;
      cc.Cc_intf.cc_write t0 p);
  Cc_harness.settle h;
  (* t1 certifies and commits its read first (later timestamp) *)
  Cc_harness.give_commit_ts h t1;
  let v1 = eval h (fun () -> cc.Cc_intf.cc_prepare t1) in
  Alcotest.(check bool) "reader certifies" true v1;
  run_now h (fun () -> cc.Cc_intf.cc_commit t1);
  Cc_harness.settle h;
  (* now t0's write would invalidate the committed later read *)
  Cc_harness.give_commit_ts h t0;
  (* force an EARLIER certification timestamp than t1's: build it from the
     transaction's own startup time *)
  t0.Txn.commit_ts <- Some t0.Txn.startup_ts;
  let v0 = eval h (fun () -> cc.Cc_intf.cc_prepare t0) in
  Alcotest.(check bool) "write rejected by later committed read" false v0;
  run_now h (fun () -> cc.Cc_intf.cc_abort t0);
  Cc_harness.settle h

let test_write_rejected_by_certified_later_read () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  run_now h (fun () ->
      cc.Cc_intf.cc_read t1 p;
      cc.Cc_intf.cc_write t0 p);
  Cc_harness.settle h;
  Cc_harness.give_commit_ts h t1;
  let v1 = eval h (fun () -> cc.Cc_intf.cc_prepare t1) in
  Alcotest.(check bool) "reader locally certified" true v1;
  (* t1 not yet committed; t0's earlier write must still be rejected *)
  t0.Txn.commit_ts <- Some t0.Txn.startup_ts;
  let v0 = eval h (fun () -> cc.Cc_intf.cc_prepare t0) in
  Alcotest.(check bool) "write rejected by certified later read" false v0;
  run_now h (fun () ->
      cc.Cc_intf.cc_commit t1;
      cc.Cc_intf.cc_abort t0);
  Cc_harness.settle h

let test_abort_clears_certificates () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  run_now h (fun () ->
      cc.Cc_intf.cc_write t0 p;
      cc.Cc_intf.cc_read t1 p);
  Cc_harness.settle h;
  Cc_harness.give_commit_ts h t0;
  Alcotest.(check bool) "writer certifies" true
    (eval h (fun () -> cc.Cc_intf.cc_prepare t0));
  (* the writer aborts after certification (e.g. another cohort voted no):
     its certificate must not keep blocking the reader *)
  run_now h (fun () -> cc.Cc_intf.cc_abort t0);
  Cc_harness.settle h;
  Cc_harness.give_commit_ts h t1;
  Alcotest.(check bool) "reader certifies after writer abort" true
    (eval h (fun () -> cc.Cc_intf.cc_prepare t1))

let test_commit_installs_version () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t2 = Cc_harness.txn h ~tid:2 ~time:2. () in
  let p = Cc_harness.page 1 in
  run_now h (fun () ->
      cc.Cc_intf.cc_write t0 p);
  Cc_harness.settle h;
  Cc_harness.give_commit_ts h t0;
  Alcotest.(check bool) "certify" true (eval h (fun () -> cc.Cc_intf.cc_prepare t0));
  run_now h (fun () -> cc.Cc_intf.cc_commit t0);
  Cc_harness.settle h;
  (* a read taken after the install sees the new version and certifies *)
  run_now h (fun () -> cc.Cc_intf.cc_read t2 p);
  Cc_harness.settle h;
  Cc_harness.give_commit_ts h t2;
  Alcotest.(check bool) "fresh read certifies" true
    (eval h (fun () -> cc.Cc_intf.cc_prepare t2))

let test_doomed_votes_no () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  t0.Txn.doomed <- true;
  Cc_harness.give_commit_ts h t0;
  Alcotest.(check bool) "doomed votes no" false
    (eval h (fun () -> cc.Cc_intf.cc_prepare t0))

(* Serializability-flavoured property: two transactions that both
   read-modify-write the same page can never both certify. *)
let prop_rmw_mutual_exclusion =
  QCheck.Test.make ~name:"OPT: conflicting RMWs never both certify" ~count:100
    QCheck.(pair (int_range 0 3) (int_range 0 3))
    (fun (pa, pb) ->
      let h, cc = mk () in
      let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
      let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
      let conflict = pa = pb in
      Engine.spawn h.Cc_harness.eng (fun () ->
          cc.Cc_intf.cc_read t0 (Cc_harness.page pa);
          cc.Cc_intf.cc_write t0 (Cc_harness.page pa);
          cc.Cc_intf.cc_read t1 (Cc_harness.page pb);
          cc.Cc_intf.cc_write t1 (Cc_harness.page pb));
      Cc_harness.settle h;
      Cc_harness.give_commit_ts h t0;
      Cc_harness.give_commit_ts h t1;
      let v0 = eval h (fun () -> cc.Cc_intf.cc_prepare t0) in
      Engine.spawn h.Cc_harness.eng (fun () ->
          if v0 then cc.Cc_intf.cc_commit t0 else cc.Cc_intf.cc_abort t0);
      Cc_harness.settle h;
      let v1 = eval h (fun () -> cc.Cc_intf.cc_prepare t1) in
      Engine.spawn h.Cc_harness.eng (fun () ->
          if v1 then cc.Cc_intf.cc_commit t1 else cc.Cc_intf.cc_abort t1);
      Cc_harness.settle h;
      if conflict then not (v0 && v1) else v0 && v1)

let suite =
  [
    Alcotest.test_case "reads never block" `Quick test_reads_never_block;
    Alcotest.test_case "disjoint certify" `Quick
      test_disjoint_transactions_certify;
    Alcotest.test_case "stale read fails" `Quick
      test_stale_read_fails_certification;
    Alcotest.test_case "certified write blocks read cert" `Quick
      test_certified_uncommitted_write_blocks_read_cert;
    Alcotest.test_case "write vs committed later read" `Quick
      test_write_rejected_by_committed_later_read;
    Alcotest.test_case "write vs certified later read" `Quick
      test_write_rejected_by_certified_later_read;
    Alcotest.test_case "abort clears certificates" `Quick
      test_abort_clears_certificates;
    Alcotest.test_case "commit installs version" `Quick
      test_commit_installs_version;
    Alcotest.test_case "doomed votes no" `Quick test_doomed_votes_no;
    QCheck_alcotest.to_alcotest prop_rmw_mutual_exclusion;
  ]
