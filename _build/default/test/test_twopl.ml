(* 2PL node-manager tests: blocking, release on commit/abort, block-time
   local deadlock detection with youngest-victim selection. *)

open Desim
open Ddbm_cc
open Ddbm_model

let mk () =
  let h = Cc_harness.make () in
  (h, Twopl.make h.Cc_harness.hooks)

let spawn_status h f =
  let state = ref `Waiting in
  Engine.spawn h.Cc_harness.eng (fun () ->
      try
        f ();
        state := `Granted
      with Txn.Aborted _ -> state := `Rejected);
  state

let test_write_conflict_blocks_until_commit () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  let s0 = spawn_status h (fun () ->
      cc.Cc_intf.cc_read t0 p;
      cc.Cc_intf.cc_write t0 p)
  in
  Cc_harness.settle h;
  let s1 = spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "writer granted" true (!s0 = `Granted);
  Alcotest.(check bool) "reader blocked" true (!s1 = `Waiting);
  Engine.spawn h.Cc_harness.eng (fun () -> cc.Cc_intf.cc_commit t0);
  Cc_harness.settle h;
  Alcotest.(check bool) "reader granted after commit" true (!s1 = `Granted)

let test_readers_share () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  let s0 = spawn_status h (fun () -> cc.Cc_intf.cc_read t0 p) in
  let s1 = spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "both read" true (!s0 = `Granted && !s1 = `Granted);
  Alcotest.(check bool) "no aborts requested" true
    (Cc_harness.requested_aborts h = [])

let test_local_deadlock_detected () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 and q = Cc_harness.page 2 in
  (* t0 writes p, t1 writes q, then each requests the other's page *)
  let s0 = spawn_status h (fun () ->
      cc.Cc_intf.cc_read t0 p;
      cc.Cc_intf.cc_write t0 p;
      Engine.wait 1.;
      cc.Cc_intf.cc_read t0 q)
  in
  let s1 = spawn_status h (fun () ->
      cc.Cc_intf.cc_read t1 q;
      cc.Cc_intf.cc_write t1 q;
      Engine.wait 1.;
      cc.Cc_intf.cc_read t1 p)
  in
  Cc_harness.settle h;
  (* deadlock: the youngest (t1) must have been victimized *)
  Alcotest.(check bool) "victim requested" true
    (Cc_harness.abort_requested_for h t1);
  Alcotest.(check bool) "older not victimized" false
    (Cc_harness.abort_requested_for h t0);
  (* simulate the coordinator abort: t1's blocked request is rejected and
     t0 unblocks *)
  Engine.spawn h.Cc_harness.eng (fun () -> cc.Cc_intf.cc_abort t1);
  Cc_harness.settle h;
  Alcotest.(check bool) "t1 rejected" true (!s1 = `Rejected);
  Alcotest.(check bool) "t0 proceeds" true (!s0 = `Granted)

let test_no_false_deadlock () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (spawn_status h (fun () ->
      cc.Cc_intf.cc_read t0 p;
      cc.Cc_intf.cc_write t0 p));
  Cc_harness.settle h;
  ignore (spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p));
  Cc_harness.settle h;
  (* a plain wait is not a deadlock *)
  Alcotest.(check bool) "no abort requested" true
    (Cc_harness.requested_aborts h = []);
  Engine.spawn h.Cc_harness.eng (fun () -> cc.Cc_intf.cc_commit t0);
  Cc_harness.settle h

let test_abort_is_idempotent () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let p = Cc_harness.page 1 in
  ignore (spawn_status h (fun () -> cc.Cc_intf.cc_read t0 p));
  Cc_harness.settle h;
  Engine.spawn h.Cc_harness.eng (fun () ->
      cc.Cc_intf.cc_abort t0;
      cc.Cc_intf.cc_abort t0;
      (* and for a transaction with no footprint at all *)
      let t9 = Cc_harness.txn h ~tid:9 ~time:9. () in
      cc.Cc_intf.cc_abort t9);
  Cc_harness.settle h

let test_prepare_votes () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  Alcotest.(check bool) "healthy txn votes yes" true (cc.Cc_intf.cc_prepare t0);
  t0.Txn.doomed <- true;
  Alcotest.(check bool) "doomed txn votes no" false (cc.Cc_intf.cc_prepare t0)

let test_conversion_deadlock () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  (* both read p, then both try to convert: a classic upgrade deadlock *)
  ignore (spawn_status h (fun () -> cc.Cc_intf.cc_read t0 p));
  ignore (spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p));
  Cc_harness.settle h;
  ignore (spawn_status h (fun () -> cc.Cc_intf.cc_write t0 p));
  ignore (spawn_status h (fun () -> cc.Cc_intf.cc_write t1 p));
  Cc_harness.settle h;
  Alcotest.(check bool) "upgrade deadlock victimizes youngest" true
    (Cc_harness.abort_requested_for h t1)

let suite =
  [
    Alcotest.test_case "write blocks reader until commit" `Quick
      test_write_conflict_blocks_until_commit;
    Alcotest.test_case "readers share" `Quick test_readers_share;
    Alcotest.test_case "local deadlock detected" `Quick
      test_local_deadlock_detected;
    Alcotest.test_case "no false deadlock" `Quick test_no_false_deadlock;
    Alcotest.test_case "abort idempotent" `Quick test_abort_is_idempotent;
    Alcotest.test_case "prepare votes" `Quick test_prepare_votes;
    Alcotest.test_case "conversion deadlock" `Quick test_conversion_deadlock;
  ]
