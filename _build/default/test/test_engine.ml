open Desim

let test_schedule_order () =
  let eng = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule eng ~at:2. (fun () -> log := 2 :: !log));
  ignore (Engine.schedule eng ~at:1. (fun () -> log := 1 :: !log));
  ignore (Engine.schedule eng ~at:3. (fun () -> log := 3 :: !log));
  Engine.run eng;
  Alcotest.(check (list int)) "in time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 0.)) "final time" 3. (Engine.now eng)

let test_same_time_fifo () =
  let eng = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~at:1. (fun () -> log := i :: !log))
  done;
  Engine.run eng;
  Alcotest.(check (list int)) "fifo at equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_cancel () =
  let eng = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule eng ~at:1. (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run eng;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_until () =
  let eng = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule eng ~at:10. (fun () -> fired := true));
  Engine.run ~until:5. eng;
  Alcotest.(check bool) "later event pending" false !fired;
  Alcotest.(check (float 0.)) "clock at until" 5. (Engine.now eng);
  Engine.run eng;
  Alcotest.(check bool) "fires on resume" true !fired

let test_process_wait () =
  let eng = Engine.create () in
  let times = ref [] in
  Engine.spawn eng (fun () ->
      times := Engine.now eng :: !times;
      Engine.wait 1.5;
      times := Engine.now eng :: !times;
      Engine.wait 2.5;
      times := Engine.now eng :: !times);
  Engine.run eng;
  Alcotest.(check (list (float 1e-9))) "wait advances time" [ 0.; 1.5; 4. ]
    (List.rev !times)

let test_suspend_resolve () =
  let eng = Engine.create () in
  let slot = ref None in
  let got = ref 0 in
  Engine.spawn eng (fun () ->
      let v = Engine.suspend (fun r -> slot := Some r) in
      got := v);
  ignore
    (Engine.schedule eng ~at:7. (fun () ->
         match !slot with
         | Some r -> r.Engine.resolve 42
         | None -> Alcotest.fail "resolver not registered"));
  Engine.run eng;
  Alcotest.(check int) "resolved value" 42 !got;
  Alcotest.(check (float 0.)) "resumed at resolver time" 7. (Engine.now eng)

exception Test_abort

let test_suspend_reject () =
  let eng = Engine.create () in
  let slot = ref None in
  let caught = ref false in
  Engine.spawn eng (fun () ->
      try
        let (_ : int) = Engine.suspend (fun r -> slot := Some r) in
        ()
      with Test_abort -> caught := true);
  ignore
    (Engine.schedule eng ~at:1. (fun () ->
         match !slot with
         | Some r -> r.Engine.reject Test_abort
         | None -> ()));
  Engine.run eng;
  Alcotest.(check bool) "rejection raised in process" true !caught

let test_resolver_single_use () =
  let eng = Engine.create () in
  let slot = ref None in
  Engine.spawn eng (fun () ->
      let (_ : int) = Engine.suspend (fun r -> slot := Some r) in
      ());
  ignore
    (Engine.schedule eng ~at:1. (fun () ->
         match !slot with
         | Some r ->
             r.Engine.resolve 1;
             Alcotest.check_raises "second use rejected"
               (Invalid_argument "Engine: resolver used twice") (fun () ->
                 r.Engine.resolve 2)
         | None -> ()));
  Engine.run eng

let test_nested_spawn () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng (fun () ->
      log := "parent" :: !log;
      Engine.spawn eng (fun () ->
          Engine.wait 1.;
          log := "child" :: !log);
      Engine.wait 2.;
      log := "parent-done" :: !log);
  Engine.run eng;
  Alcotest.(check (list string))
    "interleaving" [ "parent"; "child"; "parent-done" ]
    (List.rev !log)

let test_wait_outside_process () =
  Alcotest.check_raises "not in process" Engine.Not_in_process (fun () ->
      Engine.wait 1.)

let test_stop () =
  let eng = Engine.create () in
  let count = ref 0 in
  Engine.spawn eng (fun () ->
      for _ = 1 to 100 do
        incr count;
        if !count = 10 then Engine.stop eng;
        Engine.wait 1.
      done);
  Engine.run eng;
  Alcotest.(check int) "stopped early" 10 !count

let test_ivar_between_processes () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 3 do
    Engine.spawn eng (fun () -> sum := !sum + Ivar.read iv)
  done;
  Engine.spawn eng (fun () ->
      Engine.wait 5.;
      Ivar.fill iv 7);
  Engine.run eng;
  Alcotest.(check int) "all readers woke" 21 !sum

let test_events_processed () =
  let eng = Engine.create () in
  for i = 1 to 5 do
    ignore (Engine.schedule eng ~at:(float_of_int i) ignore)
  done;
  Engine.run eng;
  Alcotest.(check int) "counted" 5 (Engine.events_processed eng)

let test_schedule_in_past_rejected () =
  let eng = Engine.create () in
  ignore (Engine.schedule eng ~at:5. ignore);
  Engine.run eng;
  Alcotest.(check bool) "past schedule raises" true
    (try
       ignore (Engine.schedule eng ~at:1. ignore);
       false
     with Invalid_argument _ -> true)

let test_cancel_after_fire_harmless () =
  let eng = Engine.create () in
  let h = Engine.schedule eng ~at:1. ignore in
  Engine.run eng;
  Engine.cancel h;
  Alcotest.(check pass) "no effect" () ()

let test_zero_delay_wait_keeps_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.spawn eng (fun () ->
      log := "a1" :: !log;
      Engine.wait 0.;
      log := "a2" :: !log);
  Engine.spawn eng (fun () -> log := "b" :: !log);
  Engine.run eng;
  (* the zero-delay wait yields to the already-scheduled process *)
  Alcotest.(check (list string)) "yield order" [ "a1"; "b"; "a2" ]
    (List.rev !log)

let test_many_processes () =
  let eng = Engine.create () in
  let done_ = ref 0 in
  for i = 1 to 1000 do
    Engine.spawn eng (fun () ->
        Engine.wait (float_of_int (i mod 7));
        incr done_)
  done;
  Engine.run eng;
  Alcotest.(check int) "all processes ran" 1000 !done_

let suite =
  [
    Alcotest.test_case "schedule order" `Quick test_schedule_order;
    Alcotest.test_case "past schedule rejected" `Quick
      test_schedule_in_past_rejected;
    Alcotest.test_case "cancel after fire" `Quick test_cancel_after_fire_harmless;
    Alcotest.test_case "zero-delay wait yields" `Quick
      test_zero_delay_wait_keeps_order;
    Alcotest.test_case "many processes" `Quick test_many_processes;
    Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "run until" `Quick test_until;
    Alcotest.test_case "process wait" `Quick test_process_wait;
    Alcotest.test_case "suspend/resolve" `Quick test_suspend_resolve;
    Alcotest.test_case "suspend/reject" `Quick test_suspend_reject;
    Alcotest.test_case "resolver single-use" `Quick test_resolver_single_use;
    Alcotest.test_case "nested spawn" `Quick test_nested_spawn;
    Alcotest.test_case "wait outside process" `Quick test_wait_outside_process;
    Alcotest.test_case "stop" `Quick test_stop;
    Alcotest.test_case "ivar between processes" `Quick
      test_ivar_between_processes;
    Alcotest.test_case "events processed" `Quick test_events_processed;
  ]
