(* Wound-wait tests: wound decisions by seniority, second-phase immunity,
   and the no-deadlock guarantee on random conflict patterns. *)

open Desim
open Ddbm_cc
open Ddbm_model

let mk () =
  let h = Cc_harness.make () in
  (h, Wound_wait.make h.Cc_harness.hooks)

let spawn_status h f =
  let state = ref `Waiting in
  Engine.spawn h.Cc_harness.eng (fun () ->
      try
        f ();
        state := `Granted
      with Txn.Aborted _ -> state := `Rejected);
  state

let test_older_wounds_younger () =
  let h, cc = mk () in
  let old_txn = Cc_harness.txn h ~tid:0 ~time:0. () in
  let young_txn = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (spawn_status h (fun () ->
      cc.Cc_intf.cc_read young_txn p;
      cc.Cc_intf.cc_write young_txn p));
  Cc_harness.settle h;
  let s_old = spawn_status h (fun () -> cc.Cc_intf.cc_read old_txn p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "young holder wounded" true
    (Cc_harness.abort_requested_for h young_txn);
  (match Cc_harness.requested_aborts h with
  | [ (_, reason) ] ->
      Alcotest.(check string) "reason" "wounded" (Txn.abort_reason_name reason)
  | _ -> Alcotest.fail "expected exactly one wound");
  (* the old transaction keeps waiting until the victim is gone *)
  Alcotest.(check bool) "old waits" true (!s_old = `Waiting);
  Engine.spawn h.Cc_harness.eng (fun () -> cc.Cc_intf.cc_abort young_txn);
  Cc_harness.settle h;
  Alcotest.(check bool) "old granted after wound completes" true
    (!s_old = `Granted)

let test_younger_waits_quietly () =
  let h, cc = mk () in
  let old_txn = Cc_harness.txn h ~tid:0 ~time:0. () in
  let young_txn = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (spawn_status h (fun () ->
      cc.Cc_intf.cc_read old_txn p;
      cc.Cc_intf.cc_write old_txn p));
  Cc_harness.settle h;
  let s_young = spawn_status h (fun () -> cc.Cc_intf.cc_read young_txn p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "no wound issued" true
    (Cc_harness.requested_aborts h = []);
  Alcotest.(check bool) "young waits" true (!s_young = `Waiting);
  Engine.spawn h.Cc_harness.eng (fun () -> cc.Cc_intf.cc_commit old_txn);
  Cc_harness.settle h;
  Alcotest.(check bool) "young granted after commit" true (!s_young = `Granted)

let test_wound_ignored_in_second_phase () =
  let h, cc = mk () in
  let old_txn = Cc_harness.txn h ~tid:0 ~time:0. () in
  let young_txn = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  ignore (spawn_status h (fun () ->
      cc.Cc_intf.cc_read young_txn p;
      cc.Cc_intf.cc_write young_txn p));
  Cc_harness.settle h;
  (* the younger transaction enters phase two of commit *)
  young_txn.Txn.phase <- Txn.Decided_commit;
  let s_old = spawn_status h (fun () -> cc.Cc_intf.cc_read old_txn p) in
  Cc_harness.settle h;
  (* the harness request_abort honors the second-phase rule *)
  Alcotest.(check bool) "wound not fatal" false young_txn.Txn.doomed;
  Engine.spawn h.Cc_harness.eng (fun () -> cc.Cc_intf.cc_commit young_txn);
  Cc_harness.settle h;
  Alcotest.(check bool) "old granted after young commits" true
    (!s_old = `Granted)

let test_wound_through_waiters () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let t2 = Cc_harness.txn h ~tid:2 ~time:2. () in
  let p = Cc_harness.page 1 in
  (* t1 holds X; t2 queues an X; then the oldest t0 arrives: both the
     holder t1 and the queued t2 are younger -> both wounded *)
  ignore (spawn_status h (fun () ->
      cc.Cc_intf.cc_read t1 p;
      cc.Cc_intf.cc_write t1 p));
  Cc_harness.settle h;
  ignore (spawn_status h (fun () -> cc.Cc_intf.cc_write t2 p));
  Cc_harness.settle h;
  ignore (spawn_status h (fun () -> cc.Cc_intf.cc_read t0 p));
  Cc_harness.settle h;
  Alcotest.(check bool) "holder wounded" true (Cc_harness.abort_requested_for h t1);
  Alcotest.(check bool) "queued younger wounded" true
    (Cc_harness.abort_requested_for h t2)

(* The no-deadlock guarantee: random conflicting workloads always drain
   once wounds are acted upon (here: wounded transactions abort after a
   short delay, mimicking the coordinator's abort protocol). *)
let prop_no_deadlock =
  QCheck.Test.make ~name:"wound-wait never deadlocks" ~count:40
    QCheck.(
      list_of_size
        Gen.(int_range 2 25)
        (triple (int_range 0 7) (int_range 0 4) bool))
    (fun ops ->
      let h, cc = mk () in
      let eng = h.Cc_harness.eng in
      let txns =
        Array.init 8 (fun i ->
            Cc_harness.txn h ~tid:i ~time:(float_of_int i) ())
      in
      let current = Array.copy txns in
      let outstanding = ref 0 in
      let finished = ref 0 in
      (* group ops per transaction to run them in one cohort process *)
      let per_txn = Array.make 8 [] in
      List.iter
        (fun (tid, page_idx, update) ->
          per_txn.(tid) <- (page_idx, update) :: per_txn.(tid))
        ops;
      Array.iteri
        (fun tid accesses ->
          if accesses <> [] then begin
            incr outstanding;
            Engine.spawn eng (fun () ->
                let rec attempt k =
                  if k > 2000 then failwith "livelock in wound-wait test";
                  let me =
                    if k = 1 then txns.(tid)
                    else
                      (* restarted attempt keeps the original startup ts *)
                      {
                        (txns.(tid)) with
                        Txn.attempt = k;
                        doomed = false;
                      }
                  in
                  current.(tid) <- me;
                  try
                    List.iter
                      (fun (page_idx, update) ->
                        if me.Txn.doomed then
                          raise (Txn.Aborted Txn.Peer_abort);
                        cc.Cc_intf.cc_read me (Cc_harness.page page_idx);
                        if update then
                          cc.Cc_intf.cc_write me (Cc_harness.page page_idx);
                        Engine.wait 0.01)
                      accesses;
                    cc.Cc_intf.cc_commit me;
                    incr finished
                  with Txn.Aborted _ ->
                    cc.Cc_intf.cc_abort me;
                    Engine.wait 0.1;
                    attempt (k + 1)
                in
                attempt 1)
          end)
        per_txn;
      (* doom-propagation daemon: abort wounded victims that are blocked *)
      Engine.spawn eng (fun () ->
          for _ = 1 to 100_000 do
            Engine.wait 0.05;
            Array.iter
              (fun (t : Txn.t) -> if t.Txn.doomed then cc.Cc_intf.cc_abort t)
              current
          done);
      Engine.run ~until:3000. eng;
      !finished = !outstanding)

let suite =
  [
    Alcotest.test_case "older wounds younger" `Quick test_older_wounds_younger;
    Alcotest.test_case "younger waits quietly" `Quick test_younger_waits_quietly;
    Alcotest.test_case "wound ignored in 2nd phase" `Quick
      test_wound_ignored_in_second_phase;
    Alcotest.test_case "wound through waiters" `Quick test_wound_through_waiters;
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 7341 |]) prop_no_deadlock;
  ]
