(* Tiny substring-search helper for tests (avoids a regex dependency). *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  if nl = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= hl - nl do
      if String.sub haystack !i nl = needle then found := true;
      incr i
    done;
    !found
  end
