(* Basic timestamp ordering tests: timestamp-order enforcement, the Thomas
   write rule, pending-write queues and blocked readers. *)

open Desim
open Ddbm_cc
open Ddbm_model

let mk () =
  let h = Cc_harness.make () in
  (h, Bto.make h.Cc_harness.hooks)

let spawn_status h f =
  let state = ref `Waiting in
  Engine.spawn h.Cc_harness.eng (fun () ->
      try
        f ();
        state := `Granted
      with Txn.Aborted Txn.Bto_conflict -> state := `Conflict
         | Txn.Aborted _ -> state := `Rejected);
  state

let run_now h f = Engine.spawn h.Cc_harness.eng f

let test_in_order_access () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  let s0 = spawn_status h (fun () -> cc.Cc_intf.cc_read t0 p) in
  Cc_harness.settle h;
  let s1 = spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "reads in order fine" true
    (!s0 = `Granted && !s1 = `Granted)

let test_late_write_after_read_aborts () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  (* the younger reads first, bumping rts; the older write must abort *)
  ignore (spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p));
  Cc_harness.settle h;
  let s0 = spawn_status h (fun () -> cc.Cc_intf.cc_write t0 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "older write rejected" true (!s0 = `Conflict)

let test_late_read_after_write_aborts () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  (* the younger writes and commits (wts = ts1); the older read aborts *)
  run_now h (fun () ->
      cc.Cc_intf.cc_write t1 p;
      cc.Cc_intf.cc_commit t1);
  Cc_harness.settle h;
  let s0 = spawn_status h (fun () -> cc.Cc_intf.cc_read t0 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "older read rejected" true (!s0 = `Conflict)

let test_thomas_write_rule () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  run_now h (fun () ->
      cc.Cc_intf.cc_write t1 p;
      cc.Cc_intf.cc_commit t1);
  Cc_harness.settle h;
  (* write-write out of order: ignored, not aborted *)
  let s0 = spawn_status h (fun () -> cc.Cc_intf.cc_write t0 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "older write silently dropped" true (!s0 = `Granted)

let test_reader_blocks_behind_pending_write () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  (* older writer leaves a pending (uncommitted) write *)
  run_now h (fun () -> cc.Cc_intf.cc_write t0 p);
  Cc_harness.settle h;
  let s1 = spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "younger reader blocks" true (!s1 = `Waiting);
  run_now h (fun () -> cc.Cc_intf.cc_commit t0);
  Cc_harness.settle h;
  Alcotest.(check bool) "reader granted at writer commit" true (!s1 = `Granted)

let test_reader_passes_newer_pending_write () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  (* younger writer pending; an older reader does not wait for it *)
  run_now h (fun () -> cc.Cc_intf.cc_write t1 p);
  Cc_harness.settle h;
  let s0 = spawn_status h (fun () -> cc.Cc_intf.cc_read t0 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "older reader unimpeded" true (!s0 = `Granted)

let test_abort_unblocks_reader () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  run_now h (fun () -> cc.Cc_intf.cc_write t0 p);
  Cc_harness.settle h;
  let s1 = spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "reader blocked" true (!s1 = `Waiting);
  run_now h (fun () -> cc.Cc_intf.cc_abort t0);
  Cc_harness.settle h;
  Alcotest.(check bool) "reader granted on writer abort" true (!s1 = `Granted)

let test_blocked_reader_rejected_on_own_abort () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  run_now h (fun () -> cc.Cc_intf.cc_write t0 p);
  Cc_harness.settle h;
  let s1 = spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p) in
  Cc_harness.settle h;
  run_now h (fun () -> cc.Cc_intf.cc_abort t1);
  Cc_harness.settle h;
  Alcotest.(check bool) "blocked reader rejected" true (!s1 = `Rejected)

let test_multiple_pending_install_in_order () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let t2 = Cc_harness.txn h ~tid:2 ~time:2. () in
  let p = Cc_harness.page 1 in
  run_now h (fun () -> cc.Cc_intf.cc_write t0 p);
  run_now h (fun () -> cc.Cc_intf.cc_write t1 p);
  Cc_harness.settle h;
  (* reader at ts2 must wait for both *)
  let s2 = spawn_status h (fun () -> cc.Cc_intf.cc_read t2 p) in
  Cc_harness.settle h;
  Alcotest.(check bool) "waits" true (!s2 = `Waiting);
  (* the newer writer commits first: still blocked by the older pending *)
  run_now h (fun () -> cc.Cc_intf.cc_commit t1);
  Cc_harness.settle h;
  Alcotest.(check bool) "still waits for older pending" true (!s2 = `Waiting);
  run_now h (fun () -> cc.Cc_intf.cc_commit t0);
  Cc_harness.settle h;
  Alcotest.(check bool) "released once both visible" true (!s2 = `Granted)

let test_waits_for_edges () =
  let h, cc = mk () in
  let t0 = Cc_harness.txn h ~tid:0 ~time:0. () in
  let t1 = Cc_harness.txn h ~tid:1 ~time:1. () in
  let p = Cc_harness.page 1 in
  run_now h (fun () -> cc.Cc_intf.cc_write t0 p);
  Cc_harness.settle h;
  ignore (spawn_status h (fun () -> cc.Cc_intf.cc_read t1 p));
  Cc_harness.settle h;
  match cc.Cc_intf.cc_edges () with
  | [ { Cc_intf.waiter; holder } ] ->
      Alcotest.(check (pair int int))
        "reader waits for writer" (1, 0)
        (waiter.Txn.tid, holder.Txn.tid)
  | edges ->
      Alcotest.fail
        (Printf.sprintf "expected one edge, got %d" (List.length edges))

(* Timestamp-order invariant: for any interleaving of reads/writes/commits
   the installed write timestamp never decreases. *)
let prop_wts_monotonic =
  QCheck.Test.make ~name:"BTO installed versions are monotonic" ~count:80
    QCheck.(
      list_of_size Gen.(int_range 1 30) (pair (int_range 0 9) bool))
    (fun ops ->
      let h, cc = mk () in
      let txns =
        Array.init 10 (fun i ->
            Cc_harness.txn h ~tid:i ~time:(float_of_int i) ())
      in
      let p = Cc_harness.page 0 in
      let seen = Array.make 10 false in
      List.iter
        (fun (tid, commit) ->
          Engine.spawn h.Cc_harness.eng (fun () ->
              let t = txns.(tid) in
              try
                if not seen.(tid) then begin
                  seen.(tid) <- true;
                  cc.Cc_intf.cc_write t p;
                  if commit then cc.Cc_intf.cc_commit t
                  else cc.Cc_intf.cc_abort t
                end
              with Txn.Aborted _ -> cc.Cc_intf.cc_abort t))
        ops;
      Cc_harness.settle h;
      (* survivor readers with the largest timestamp must not be blocked
         by anything and must succeed or conflict-abort cleanly *)
      let t_late =
        Cc_harness.txn h ~tid:99 ~time:1000. ()
      in
      let ok = ref false in
      Engine.spawn h.Cc_harness.eng (fun () ->
          try
            cc.Cc_intf.cc_read t_late p;
            ok := true
          with Txn.Aborted _ -> ());
      (* abort any writer still pending so the late reader can proceed *)
      Array.iter
        (fun t -> Engine.spawn h.Cc_harness.eng (fun () -> cc.Cc_intf.cc_abort t))
        txns;
      Cc_harness.settle h;
      !ok)

let suite =
  [
    Alcotest.test_case "in-order access" `Quick test_in_order_access;
    Alcotest.test_case "late write aborts" `Quick
      test_late_write_after_read_aborts;
    Alcotest.test_case "late read aborts" `Quick
      test_late_read_after_write_aborts;
    Alcotest.test_case "thomas write rule" `Quick test_thomas_write_rule;
    Alcotest.test_case "reader blocks behind pending" `Quick
      test_reader_blocks_behind_pending_write;
    Alcotest.test_case "reader passes newer pending" `Quick
      test_reader_passes_newer_pending_write;
    Alcotest.test_case "abort unblocks reader" `Quick test_abort_unblocks_reader;
    Alcotest.test_case "blocked reader rejected on own abort" `Quick
      test_blocked_reader_rejected_on_own_abort;
    Alcotest.test_case "pending installs in order" `Quick
      test_multiple_pending_install_in_order;
    Alcotest.test_case "waits-for edges" `Quick test_waits_for_edges;
    QCheck_alcotest.to_alcotest prop_wts_monotonic;
  ]
