test/test_trace.ml: Alcotest Ddbm Ddbm_model Desim Engine List Params Printf Stdlib Trace
