test/test_opt.ml: Alcotest Cc_harness Cc_intf Ddbm_cc Ddbm_model Desim Engine Opt_cert QCheck QCheck_alcotest Txn
