test/test_snoop.ml: Alcotest Array Cc_harness Cc_intf Cpu Ddbm_cc Ddbm_model Desim Engine Ids List Net Printf Snoop Txn
